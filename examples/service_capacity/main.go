// Service capacity: size a whole websearch service on different server
// designs, including the scale-out overheads the paper's §4 warns
// about. For a target aggregate load this prints how many servers and
// racks each design needs, what the deployment costs over three years,
// and where Amdahl's-law-style partitioning limits bite.
//
// Run with:
//
//	go run ./examples/service_capacity
package main

import (
	"fmt"
	"log"

	"warehousesim/internal/core"
	"warehousesim/internal/platform"
	"warehousesim/internal/scaleout"
	"warehousesim/internal/workload"
)

func main() {
	log.SetFlags(0)

	const targetRPS = 1500.0
	p := workload.WebsearchProfile()
	ev := core.NewEvaluator()

	fmt.Printf("sizing a %.0f-RPS websearch service (typical scale-out overheads):\n\n", targetRPS)
	fmt.Printf("%-8s %10s %8s %8s %14s %12s %12s\n",
		"design", "rps/srvr", "servers", "racks", "fleet TCO $", "fleet kW", "efficiency")

	designs := []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN1(),
		core.NewN2(),
	}
	u := scaleout.TypicalScaleOut()
	for _, d := range designs {
		ms, err := ev.Evaluate(d, []workload.Profile{p})
		if err != nil {
			log.Fatal(err)
		}
		resolved, err := d.Resolve()
		if err != nil {
			log.Fatal(err)
		}
		_, _, tco := resolved.ServerTCO(ev.Cost)
		dep, err := scaleout.Size(targetRPS, ms[0].Perf, u,
			resolved.Rack.ServersPerRack, tco, ms[0].PowerW)
		if err != nil {
			fmt.Printf("%-8s %10.1f %8s\n", d.Name, ms[0].Perf, "unreachable")
			continue
		}
		fmt.Printf("%-8s %10.1f %8d %8d %14.0f %12.1f %11.0f%%\n",
			d.Name, ms[0].Perf, dep.Servers, dep.Racks,
			dep.TCOUSD, dep.PowerW/1e3, dep.Efficiency*100)
	}

	fmt.Println("\nscaling-law sensitivity for N2 (search-like fan-in overheads):")
	for _, tc := range []struct {
		name string
		u    scaleout.USL
	}{
		{"perfect", scaleout.PerfectScaling()},
		{"typical", scaleout.TypicalScaleOut()},
		{"search-like", scaleout.SearchLike()},
	} {
		ms, err := ev.Evaluate(core.NewN2(), []workload.Profile{p})
		if err != nil {
			log.Fatal(err)
		}
		n, err := scaleout.ServersFor(targetRPS, ms[0].Perf, tc.u)
		if err != nil {
			fmt.Printf("  %-12s unreachable (ceiling %.0fx one server)\n",
				tc.name, tc.u.MaxSpeedup())
			continue
		}
		fmt.Printf("  %-12s %d servers (per-server efficiency %.0f%%)\n",
			tc.name, n, tc.u.Efficiency(float64(n))*100)
	}
	fmt.Println("\nthe paper's §4 caveat in numbers: the cheaper the node, the")
	fmt.Println("more partitioning overheads erode its ensemble advantage.")
}
