// Datacenter design: compose your own ensemble-level server
// architecture from the library's building blocks and benchmark it
// against the paper's baselines and unified designs. This example
// builds a "N1.5": desktop-class boards in dual-entry enclosures with
// flash-fronted remote laptop disks, but without memory sharing.
//
// Run with:
//
//	go run ./examples/datacenter_design
package main

import (
	"fmt"
	"log"

	"warehousesim/internal/cooling"
	"warehousesim/internal/core"
	"warehousesim/internal/metrics"
	"warehousesim/internal/paper"
	"warehousesim/internal/platform"
)

func main() {
	log.SetFlags(0)

	custom := core.Design{
		Name:      "N1.5-custom",
		Base:      platform.Desk(),
		Enclosure: cooling.DualEntry, // desk's 135W exceeds the 78W blade budget: falls back to 40/rack
		Storage:   core.RemoteLaptopFlashStorage,
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}
	resolved, err := custom.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom design %q resolves to:\n", custom.Name)
	fmt.Printf("  server: $%.0f hardware, %.0f W max\n",
		resolved.Server.HardwarePriceUSD(), resolved.Server.MaxPowerW())
	fmt.Printf("  rack:   %d systems (cooling efficiency %.1fx conventional)\n\n",
		resolved.Density, resolved.CoolingEfficiency)

	ev := core.NewEvaluator()
	designs := []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Desk()),
		core.NewN1(),
		core.NewN2(),
		custom,
	}
	tbl, err := ev.EvaluateSuite(designs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Perf/TCO-$ relative to srvr1:")
	rel := tbl.Relative(metrics.PerfPerTCO, "srvr1")
	hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
	fmt.Printf("%-11s", "")
	names := []string{"desk", "N1", "N2", custom.Name}
	for _, n := range names {
		fmt.Printf("%14s", n)
	}
	fmt.Println()
	for _, w := range paper.Workloads {
		fmt.Printf("%-11s", w)
		for _, n := range names {
			fmt.Printf("%13.2fx", rel[w][n])
		}
		fmt.Println()
	}
	fmt.Printf("%-11s", "HMean")
	for _, n := range names {
		fmt.Printf("%13.2fx", hm[n])
	}
	fmt.Println()

	fmt.Println("\nthe custom design shows the ensemble lesson of the paper:")
	fmt.Println("individual optimizations compose, but the biggest wins need")
	fmt.Println("the platform change (embedded CPUs) that N2 makes.")
}
