// Quickstart: evaluate two server platforms on the warehouse-computing
// benchmark suite and print the paper's headline metric, performance per
// TCO dollar.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"warehousesim/internal/core"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
)

func main() {
	log.SetFlags(0)

	// An evaluator bundles the paper's performance, power and cost
	// models with their default parameters (K1=1.33, L1=0.8, K2=0.667,
	// $100/MWh, activity factor 0.75, 3-year depreciation).
	ev := core.NewEvaluator()

	// Compare the mid-range server baseline against the embedded
	// platform the paper advocates.
	designs := []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Emb1()),
	}
	table, err := ev.EvaluateSuite(designs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sustained performance under QoS (per server):")
	for _, m := range table.Rows() {
		fmt.Printf("  %-10s on %-6s %10.4g %-4s  (QoS met: %v, TCO $%.0f)\n",
			m.Workload, m.System, m.Perf, m.Unit, m.QoSMet, m.TCOUSD)
	}

	fmt.Println("\nperformance per TCO dollar, relative to srvr1:")
	rel := table.Relative(metrics.PerfPerTCO, "srvr1")
	for w, row := range rel {
		fmt.Printf("  %-10s emb1 = %.2fx\n", w, row["emb1"])
	}
	hm := table.HMeanRelative(metrics.PerfPerTCO, "srvr1")
	fmt.Printf("\nsuite harmonic mean: emb1 = %.2fx srvr1 — the \"sweet spot\"\n", hm["emb1"])
	fmt.Println("finding of the paper (its Figure 2c reports 1.92x).")
}
