// TCO explorer: sweep the burdened power-and-cooling model's external
// parameters — electricity tariff and activity factor — and watch how
// the platform ranking responds. The paper (§2.2) claims its results are
// qualitatively stable across these ranges; this example lets you see
// that directly, and also locates the tariff at which power-and-cooling
// dollars overtake hardware dollars for each platform.
//
// Run with:
//
//	go run ./examples/tco_explorer
package main

import (
	"fmt"
	"log"

	"warehousesim/internal/core"
	"warehousesim/internal/cost"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Perf/TCO-$ suite harmonic mean relative to srvr1,")
	fmt.Println("by electricity tariff (rows) and platform (columns):")
	fmt.Printf("%-10s", "tariff")
	names := []string{"srvr2", "desk", "mobl", "emb1", "emb2"}
	for _, n := range names {
		fmt.Printf("%8s", n)
	}
	fmt.Println()

	for _, tariff := range []float64{50, 75, 100, 135, 170} {
		pc := cost.DefaultPCParams()
		pc.TariffUSDPerMWh = tariff
		ev := core.NewEvaluator()
		ev.Cost = cost.Model{Power: power.DefaultModel(), PC: pc}
		tbl, err := ev.EvaluateSuite(core.AllBaselines())
		if err != nil {
			log.Fatal(err)
		}
		hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
		fmt.Printf("$%-3.0f/MWh  ", tariff)
		for _, n := range names {
			fmt.Printf("%7.2fx", hm[n])
		}
		fmt.Println()
	}

	fmt.Println("\ntariff at which burdened P&C overtakes hardware cost:")
	for _, s := range platform.All() {
		crossover := -1.0
		for tariff := 10.0; tariff <= 400; tariff += 5 {
			pc := cost.DefaultPCParams()
			pc.TariffUSDPerMWh = tariff
			m := cost.Model{Power: power.DefaultModel(), PC: pc}
			inf, pcUSD, _ := m.ServerTCO(s, platform.DefaultRack())
			if pcUSD >= inf {
				crossover = tariff
				break
			}
		}
		if crossover < 0 {
			fmt.Printf("  %-7s never below $400/MWh\n", s.Name)
			continue
		}
		fmt.Printf("  %-7s ~$%.0f/MWh\n", s.Name, crossover)
	}
	fmt.Println("\n(at the paper's default $100/MWh, P&C is already comparable to")
	fmt.Println("hardware for the server platforms — its Figure 1 observation)")
}
