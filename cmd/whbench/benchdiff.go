package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchDiffLine is one benchmark's old-vs-new comparison.
type benchDiffLine struct {
	name               string
	oldNs, newNs       float64
	oldBytes, newBytes int64
	oldAlloc, newAlloc int64
	missing            bool // present in old, absent in new
	regressed          []string
}

// readBenchDoc loads and validates a warehousesim-bench/v1 record.
func readBenchDoc(path string) (benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return benchDoc{}, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return benchDoc{}, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != "warehousesim-bench/v1" {
		return benchDoc{}, fmt.Errorf("%s: unexpected schema %q", path, doc.Schema)
	}
	return doc, nil
}

// relDelta returns (new-old)/old; 0 when old is 0.
func relDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// diffBenchDocs compares the two records benchmark by benchmark.
// B/op and allocs/op are deterministic for a fixed seed, so ANY
// increase is a regression; ns/op moves with the machine, so it only
// regresses beyond nsTolerance (a fraction, e.g. 0.10 = +10%).
// Benchmarks present only in the new record are informational;
// benchmarks that disappeared are regressions (a silently dropped
// benchmark hides whatever it guarded).
func diffBenchDocs(oldDoc, newDoc benchDoc, nsTolerance float64) []benchDiffLine {
	newByName := map[string]benchRecord{}
	for _, r := range newDoc.Benchmarks {
		newByName[r.Name] = r
	}
	var out []benchDiffLine
	for _, o := range oldDoc.Benchmarks {
		n, ok := newByName[o.Name]
		if !ok {
			out = append(out, benchDiffLine{name: o.Name, missing: true,
				regressed: []string{"benchmark disappeared"}})
			continue
		}
		l := benchDiffLine{
			name:  o.Name,
			oldNs: o.NsPerOp, newNs: n.NsPerOp,
			oldBytes: o.BytesPerOp, newBytes: n.BytesPerOp,
			oldAlloc: o.AllocsPerOp, newAlloc: n.AllocsPerOp,
		}
		if d := relDelta(o.NsPerOp, n.NsPerOp); d > nsTolerance {
			l.regressed = append(l.regressed, fmt.Sprintf("ns/op +%.1f%% (tolerance %.0f%%)", d*100, nsTolerance*100))
		}
		if n.BytesPerOp > o.BytesPerOp {
			l.regressed = append(l.regressed, fmt.Sprintf("B/op %d -> %d", o.BytesPerOp, n.BytesPerOp))
		}
		if n.AllocsPerOp > o.AllocsPerOp {
			l.regressed = append(l.regressed, fmt.Sprintf("allocs/op %d -> %d", o.AllocsPerOp, n.AllocsPerOp))
		}
		out = append(out, l)
	}
	return out
}

// runBenchDiff prints the comparison table and returns an error when
// any benchmark regressed — so `whbench -bench-diff old.json new.json`
// exits non-zero and CI can gate on it.
func runBenchDiff(oldPath, newPath string, nsTolerance float64) error {
	oldDoc, err := readBenchDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := readBenchDoc(newPath)
	if err != nil {
		return err
	}
	lines := diffBenchDocs(oldDoc, newDoc, nsTolerance)

	fmt.Printf("bench-diff %s (%s) -> %s (%s)\n", oldPath, oldDoc.GitRev, newPath, newDoc.GitRev)
	fmt.Printf("%-22s %14s %14s %12s %12s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs/op Δ", "verdict")
	bad := 0
	for _, l := range lines {
		if l.missing {
			fmt.Printf("%-22s %14s %14s %12s %12s\n", l.name, "-", "-", "-", "MISSING")
			bad++
			continue
		}
		verdict := "ok"
		if len(l.regressed) > 0 {
			verdict = "REGRESSED"
			bad++
		}
		fmt.Printf("%-22s %+13.1f%% %+13.1f%% %+11.1f%% %12s\n",
			l.name,
			relDelta(l.oldNs, l.newNs)*100,
			relDelta(float64(l.oldBytes), float64(l.newBytes))*100,
			relDelta(float64(l.oldAlloc), float64(l.newAlloc))*100,
			verdict)
		for _, r := range l.regressed {
			fmt.Printf("    %s\n", r)
		}
	}
	if bad > 0 {
		return fmt.Errorf("bench-diff: %d of %d benchmarks regressed", bad, len(lines))
	}
	fmt.Printf("no regressions (%d benchmarks, ns/op tolerance %.0f%%)\n", len(lines), nsTolerance*100)
	return nil
}
