package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchDiffLine is one benchmark's old-vs-new comparison.
type benchDiffLine struct {
	name               string
	oldNs, newNs       float64
	oldBytes, newBytes int64
	oldAlloc, newAlloc int64
	missing            bool // present in old, absent in new
	regressed          []string
}

// readBenchDoc loads and validates a warehousesim-bench/v1 record.
func readBenchDoc(path string) (benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return benchDoc{}, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return benchDoc{}, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != "warehousesim-bench/v1" {
		return benchDoc{}, fmt.Errorf("%s: unexpected schema %q", path, doc.Schema)
	}
	return doc, nil
}

// relDelta returns (new-old)/old; 0 when old is 0.
func relDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// allocSlack is the amortization allowance for the per-op allocation
// figures. Steady-state allocations are deterministic for a fixed
// seed, but testing.B divides one-time setup cost (trial tables, sink
// arena chunks) by an iteration count it picks from machine speed — so
// two honest records of identical code can differ by a few bytes/op
// when their b.N differ. The slack covers that rounding (max of ~1.5%
// relative or a small absolute floor) while still catching any real
// per-iteration allocation: one extra heap object per op moves B/op by
// at least 16 bytes on every benchmark whose baseline is under ~1 KB,
// and by >1.5% on the rest.
func allocSlack(oldV, floor int64) int64 {
	if s := oldV / 64; s > floor {
		return s
	}
	return floor
}

// sameMachine reports whether both records carry the same machine
// fingerprint: CPU model, CPU count, and GOMAXPROCS. Records that
// predate any fingerprint component (or come from a platform without
// one) never match: ns/op and parallel-efficiency comparability cannot
// be assumed, so it must be proven by matching fingerprints — a
// GOMAXPROCS=1 record is serial regardless of the CPU count.
func sameMachine(oldDoc, newDoc benchDoc) bool {
	return oldDoc.CPUModel != "" && oldDoc.CPUModel == newDoc.CPUModel &&
		oldDoc.CPUs == newDoc.CPUs &&
		oldDoc.GOMAXPROCS != 0 && oldDoc.GOMAXPROCS == newDoc.GOMAXPROCS
}

// fingerprint renders a record's machine identity for messages.
func fingerprint(d benchDoc) string {
	return fmt.Sprintf("%q cpus=%d gomaxprocs=%d", d.CPUModel, d.CPUs, d.GOMAXPROCS)
}

// diffBenchDocs compares the two records benchmark by benchmark.
// B/op and allocs/op are deterministic up to setup-cost amortization
// (see allocSlack), so any increase past the slack is a regression on
// any machine. ns/op only regresses beyond nsTolerance (a fraction,
// e.g. 0.10 = +10%), and only when gateNs is set — identical code
// measures tens of percent apart across CPU generations, so callers
// pass gateNs = sameMachine(old, new) and a cross-machine ns/op delta
// is reported without failing the gate.
// Benchmarks present only in the new record are informational;
// benchmarks that disappeared are regressions (a silently dropped
// benchmark hides whatever it guarded).
func diffBenchDocs(oldDoc, newDoc benchDoc, nsTolerance float64, gateNs bool) []benchDiffLine {
	newByName := map[string]benchRecord{}
	for _, r := range newDoc.Benchmarks {
		newByName[r.Name] = r
	}
	var out []benchDiffLine
	for _, o := range oldDoc.Benchmarks {
		n, ok := newByName[o.Name]
		if !ok {
			out = append(out, benchDiffLine{name: o.Name, missing: true,
				regressed: []string{"benchmark disappeared"}})
			continue
		}
		l := benchDiffLine{
			name:  o.Name,
			oldNs: o.NsPerOp, newNs: n.NsPerOp,
			oldBytes: o.BytesPerOp, newBytes: n.BytesPerOp,
			oldAlloc: o.AllocsPerOp, newAlloc: n.AllocsPerOp,
		}
		if d := relDelta(o.NsPerOp, n.NsPerOp); d > nsTolerance && gateNs {
			l.regressed = append(l.regressed, fmt.Sprintf("ns/op +%.1f%% (tolerance %.0f%%)", d*100, nsTolerance*100))
		}
		if n.BytesPerOp > o.BytesPerOp+allocSlack(o.BytesPerOp, 32) {
			l.regressed = append(l.regressed, fmt.Sprintf("B/op %d -> %d", o.BytesPerOp, n.BytesPerOp))
		}
		if n.AllocsPerOp > o.AllocsPerOp+allocSlack(o.AllocsPerOp, 1) {
			l.regressed = append(l.regressed, fmt.Sprintf("allocs/op %d -> %d", o.AllocsPerOp, n.AllocsPerOp))
		}
		out = append(out, l)
	}
	return out
}

// kernelEfficiencyAt returns the record's kernel-workload efficiency
// point at the given shard count, nil when the record has no such
// point (old schema, or the rows were missing).
func kernelEfficiencyAt(doc benchDoc, shards int) *efficiencyPoint {
	for i := range doc.ParallelCurve {
		if p := &doc.ParallelCurve[i]; p.Workload == "kernel" && p.Shards == shards {
			return p
		}
	}
	return nil
}

// diffEfficiency handles the parallel-efficiency side of bench-diff.
// Efficiency figures are only meaningful within one machine
// fingerprint, so a cross-fingerprint old-vs-new comparison is refused
// with a clear error rather than reported as a bogus delta. The floor
// (when > 0) gates the NEW record's own kernel efficiency at
// smokeShards shards — shards=N vs shards=1 rows of one record are
// fingerprint-matched by construction — and is skipped, loudly, when
// the recording machine could not physically show a speedup (fewer
// CPUs or GOMAXPROCS than shards).
func diffEfficiency(oldDoc, newDoc benchDoc, floor float64) error {
	oldPt, newPt := kernelEfficiencyAt(oldDoc, smokeShards), kernelEfficiencyAt(newDoc, smokeShards)
	if oldPt != nil && newPt != nil {
		if !sameMachine(oldDoc, newDoc) {
			fmt.Printf("parallel efficiency: refusing to compare across machine fingerprints (old %s vs new %s): efficiency deltas are meaningless across machines\n",
				fingerprint(oldDoc), fingerprint(newDoc))
			if floor > 0 {
				return fmt.Errorf("bench-diff: -eff-floor %.2f needs fingerprint-matched records to anchor the comparison; re-record the baseline on this machine", floor)
			}
		} else {
			fmt.Printf("parallel efficiency (kernel, %d shards): %.2f -> %.2f\n",
				smokeShards, oldPt.Efficiency, newPt.Efficiency)
		}
	}
	if floor <= 0 {
		return nil
	}
	if newPt == nil {
		return fmt.Errorf("bench-diff: -eff-floor %.2f but %s has no kernel efficiency point at %d shards (record it with a current -bench-json)", floor, "the new record", smokeShards)
	}
	if newDoc.CPUs < smokeShards || newDoc.GOMAXPROCS < smokeShards {
		fmt.Printf("parallel efficiency floor skipped: the new record's machine (%s) cannot run %d shards in parallel\n",
			fingerprint(newDoc), smokeShards)
		return nil
	}
	if newPt.Efficiency < floor {
		return fmt.Errorf("bench-diff: kernel parallel efficiency %.2f at %d shards below the %.2f floor (speedup %.2fx)",
			newPt.Efficiency, smokeShards, floor, newPt.Speedup)
	}
	fmt.Printf("parallel efficiency floor met: %.2f >= %.2f at %d shards\n", newPt.Efficiency, floor, smokeShards)
	return nil
}

// runBenchDiff prints the comparison table and returns an error when
// any benchmark regressed — so `whbench -bench-diff old.json new.json`
// exits non-zero and CI can gate on it.
func runBenchDiff(oldPath, newPath string, nsTolerance, effFloor float64) error {
	oldDoc, err := readBenchDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := readBenchDoc(newPath)
	if err != nil {
		return err
	}
	gateNs := sameMachine(oldDoc, newDoc)
	lines := diffBenchDocs(oldDoc, newDoc, nsTolerance, gateNs)

	fmt.Printf("bench-diff %s (%s) -> %s (%s)\n", oldPath, oldDoc.GitRev, newPath, newDoc.GitRev)
	if !gateNs {
		fmt.Printf("records come from different machines (fingerprints %s vs %s): ns/op reported but not gated\n",
			fingerprint(oldDoc), fingerprint(newDoc))
	}
	fmt.Printf("%-22s %14s %14s %12s %12s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs/op Δ", "verdict")
	bad := 0
	for _, l := range lines {
		if l.missing {
			fmt.Printf("%-22s %14s %14s %12s %12s\n", l.name, "-", "-", "-", "MISSING")
			bad++
			continue
		}
		verdict := "ok"
		if len(l.regressed) > 0 {
			verdict = "REGRESSED"
			bad++
		}
		fmt.Printf("%-22s %+13.1f%% %+13.1f%% %+11.1f%% %12s\n",
			l.name,
			relDelta(l.oldNs, l.newNs)*100,
			relDelta(float64(l.oldBytes), float64(l.newBytes))*100,
			relDelta(float64(l.oldAlloc), float64(l.newAlloc))*100,
			verdict)
		for _, r := range l.regressed {
			fmt.Printf("    %s\n", r)
		}
	}
	if bad > 0 {
		return fmt.Errorf("bench-diff: %d of %d benchmarks regressed", bad, len(lines))
	}
	if err := diffEfficiency(oldDoc, newDoc, effFloor); err != nil {
		return err
	}
	if gateNs {
		fmt.Printf("no regressions (%d benchmarks, ns/op tolerance %.0f%%)\n", len(lines), nsTolerance*100)
	} else {
		fmt.Printf("no regressions (%d benchmarks, allocation figures only)\n", len(lines))
	}
	return nil
}
