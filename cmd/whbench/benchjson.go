package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"warehousesim/internal/cluster"
	"warehousesim/internal/flashcache"
	"warehousesim/internal/memblade"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// benchRecord is one benchmark result in the warehousesim-bench/v1
// export: the testing.B figures that regression tooling diffs across
// commits. ns/op moves with the machine; B/op and allocs/op are
// deterministic for a fixed seed and are the tracked numbers.
type benchRecord struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchDoc is the machine-readable benchmark record written by
// -bench-json. GitRev ties the record to a commit ("unknown" outside a
// git checkout); Seed is the simulation seed every bench ran with.
type benchDoc struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GitRev    string `json:"git_rev"`
	// CPUs is runtime.NumCPU() on the recording machine. Parallel-kernel
	// numbers (ShardedTrial*, KernelTrial*) only show wall-clock speedup
	// when CPUs exceeds the shard count — a record taken on a one-CPU
	// container honestly documents that its sharded rows measure
	// synchronization overhead, not speedup.
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the scheduler's parallelism cap at recording time —
	// part of the machine fingerprint because a GOMAXPROCS=1 record on
	// a 16-CPU machine is serial no matter what CPUs says. Absent (0)
	// in records predating the field; such records never fingerprint-
	// match, so their ns/op and efficiency figures are not gated.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// CPUModel fingerprints the recording machine (the kernel's CPU
	// model string; empty when unavailable). bench-diff gates ns/op only
	// when old and new records carry the same fingerprint: identical
	// code measures tens of percent apart across CPU generations, so a
	// cross-machine ns/op delta is reported but is not a regression.
	CPUModel   string        `json:"cpu_model,omitempty"`
	Seed       uint64        `json:"seed"`
	WallSec    float64       `json:"wall_sec"`
	Benchmarks []benchRecord `json:"benchmarks"`
	// Parallel summarizes the sharded kernel's parallel efficiency,
	// derived from the ShardedTrial rows already in Benchmarks. Derived
	// and machine-dependent, so bench-diff never treats it as a plain
	// regression figure (old records without the field load fine —
	// plain json.Unmarshal leaves it nil); -eff-floor gates the curve
	// explicitly, and only fingerprint-matched.
	Parallel *parallelSummary `json:"parallel_efficiency,omitempty"`
	// ParallelCurve is the per-shard-count efficiency curve for both
	// workloads: "rack" (the SAN-coupled ShardedTrial model, whose
	// efficiency is physics-bounded) and "kernel" (the compute-dense
	// KernelTrial load, whose efficiency measures the engine itself).
	ParallelCurve []efficiencyPoint `json:"parallel_efficiency_curve,omitempty"`
}

// efficiencyPoint is one (workload, shard count) scaling measurement:
// Speedup is the workload's shards=1 ns/op over this row's ns/op,
// Efficiency divides by the shard count.
type efficiencyPoint struct {
	Workload        string  `json:"workload"`
	Shards          int     `json:"shards"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	ShardedNsPerOp  float64 `json:"sharded_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	Efficiency      float64 `json:"efficiency"`
}

// parallelSummary is the whbench parallel-efficiency record: how much
// wall-clock the sharded kernel's extra heaps actually buy on this
// machine. Speedup is baseline/sharded ns_per_op; Efficiency divides
// by the shard count (1.0 = perfect scaling; below 1/shards means the
// synchronization costs more than the parallelism returns, expected
// whenever CPUs < shards).
type parallelSummary struct {
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	ShardedNsPerOp  float64 `json:"sharded_ns_per_op"`
	Shards          int     `json:"shards"`
	Speedup         float64 `json:"speedup"`
	Efficiency      float64 `json:"efficiency"`
	CPUs            int     `json:"cpus"`
}

// gitRev returns the short HEAD revision, or "unknown" when git or the
// repository is unavailable (e.g. a release tarball).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// cpuModel returns the kernel's CPU model string, or "" when the
// platform does not expose one (non-Linux, restricted /proc).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// desTrial benchmarks one adaptive DES trial; mode selects how much
// observability is attached, so the record documents the cost ladder
// plain -> obs -> obs+spans (the plain row must not move when tracing
// code evolves — tracing off is allocation-free by design).
func desTrial(mode string, seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		cfg := cluster.Config{Server: platform.Desk()}
		gen := workload.FixedGenerator{P: workload.WebsearchProfile()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := cluster.SimOptions{Seed: seed, WarmupSec: 5, MeasureSec: 20, MaxClients: 64}
			switch mode {
			case "obs":
				opts.Obs = obs.NewSink()
			case "traced":
				opts.Obs = obs.NewSink()
				opts.TraceEvery = 1
			}
			if _, err := cfg.Simulate(gen, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func membladeAccess(seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		sim, err := memblade.New(memblade.Config{
			FootprintPages: 1 << 20, LocalFraction: 0.25, Policy: memblade.LRU, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		r := stats.NewRNG(seed + 1)
		z, err := stats.NewZipf(1<<20, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Access(int64(z.Rank(r)), i%5 == 0)
		}
	}
}

func membladeAccessTraced(seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		sim, err := memblade.New(memblade.Config{
			FootprintPages: 1 << 20, LocalFraction: 0.25, Policy: memblade.LRU, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		sink := obs.NewSink()
		sim.Instrument(sink, 1024)
		sim.InstrumentSpans(span.NewTracer(sink, 64))
		r := stats.NewRNG(seed + 1)
		z, err := stats.NewZipf(1<<20, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Access(int64(z.Rank(r)), i%5 == 0)
		}
	}
}

// shardedTrial benchmarks one 64-board rack run (16 enclosures x 4
// boards) on the sharded kernel at the given shard count. Results are
// byte-identical at every shard count, so the shards=1 row is the
// single-heap baseline and the shards=4 row shows what the conservative
// synchronization costs (and, with >= 4 CPUs, what it buys).
func shardedTrial(shards int, seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		cfg := cluster.Config{Server: platform.Desk()}
		gen := workload.FixedGenerator{P: workload.WebsearchProfile()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := cluster.SimOptions{
				Seed: seed, WarmupSec: 2, MeasureSec: 10, MaxClients: 512,
				Topology: &cluster.ShardedTopology{
					Enclosures: 16, BoardsPerEnclosure: 4, Shards: shards,
				},
			}
			if _, err := cfg.Simulate(gen, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func flashCacheOp(seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		sim, err := flashcache.New(flashcache.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		r := stats.NewRNG(seed + 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			block := r.Int63n(1 << 22)
			if i%10 == 0 {
				sim.Write(block)
			} else {
				sim.Read(block)
			}
		}
	}
}

func analyticSolve(b *testing.B) {
	cfg := cluster.Config{Server: platform.Emb1()}
	p := workload.WebsearchProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

func zipfRank(seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		z, err := stats.NewZipf(1<<20, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		r := stats.NewRNG(seed + 3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			z.Rank(r)
		}
	}
}

// parallelEfficiency derives the sharded-kernel scaling summary from
// the ShardedTrial/ShardedTrial4 rows, nil when either row is missing.
func parallelEfficiency(doc benchDoc) *parallelSummary {
	var base, sharded float64
	for _, r := range doc.Benchmarks {
		switch r.Name {
		case "ShardedTrial":
			base = r.NsPerOp
		case "ShardedTrial4":
			sharded = r.NsPerOp
		}
	}
	if base <= 0 || sharded <= 0 {
		return nil
	}
	const shards = 4 // ShardedTrial4's shard count
	return &parallelSummary{
		BaselineNsPerOp: base,
		ShardedNsPerOp:  sharded,
		Shards:          shards,
		Speedup:         base / sharded,
		Efficiency:      base / sharded / shards,
		CPUs:            doc.CPUs,
	}
}

// efficiencyCurve derives the per-shard-count scaling points from the
// rack and kernel benchmark rows present in the record.
func efficiencyCurve(doc benchDoc) []efficiencyPoint {
	ns := map[string]float64{}
	for _, r := range doc.Benchmarks {
		ns[r.Name] = r.NsPerOp
	}
	var out []efficiencyPoint
	for _, w := range []struct{ workload, baseRow, prefix string }{
		{"rack", "ShardedTrial", "ShardedTrial"},
		{"kernel", "KernelTrial", "KernelTrial"},
	} {
		base := ns[w.baseRow]
		if base <= 0 {
			continue
		}
		for _, shards := range []int{2, 4, 8} {
			sharded := ns[fmt.Sprintf("%s%d", w.prefix, shards)]
			if sharded <= 0 {
				continue
			}
			out = append(out, efficiencyPoint{
				Workload:        w.workload,
				Shards:          shards,
				BaselineNsPerOp: base,
				ShardedNsPerOp:  sharded,
				Speedup:         base / sharded,
				Efficiency:      base / sharded / float64(shards),
			})
		}
	}
	return out
}

// writeBenchJSON runs the substrate micro-benchmark suite via
// testing.Benchmark and writes a warehousesim-bench/v1 record to path.
// The suite is the whsim hot path at three instrumentation levels plus
// the standalone simulators, so one record answers both "did the
// substrate regress" and "what does tracing cost".
func writeBenchJSON(path string, seed uint64) error {
	suite := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"AnalyticSolve", analyticSolve},
		{"DESTrial", desTrial("plain", seed)},
		{"DESTrialObs", desTrial("obs", seed)},
		{"DESTrialTraced", desTrial("traced", seed)},
		{"ShardedTrial", shardedTrial(1, seed)},
		{"ShardedTrial2", shardedTrial(2, seed)},
		{"ShardedTrial4", shardedTrial(4, seed)},
		{"ShardedTrial8", shardedTrial(8, seed)},
		{"KernelTrial", kernelTrial(1, seed)},
		{"KernelTrial2", kernelTrial(2, seed)},
		{"KernelTrial4", kernelTrial(4, seed)},
		{"KernelTrial8", kernelTrial(8, seed)},
		{"MembladeAccess", membladeAccess(seed)},
		{"MembladeAccessTraced", membladeAccessTraced(seed)},
		{"FlashCacheOp", flashCacheOp(seed)},
		{"ZipfRank", zipfRank(seed)},
	}

	doc := benchDoc{
		Schema:     "warehousesim-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GitRev:     gitRev(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Seed:       seed,
	}
	start := time.Now()
	for _, s := range suite {
		// Best of three: ns/op is exposed to transient machine load, so
		// keep the fastest run (B/op and allocs/op are deterministic for
		// a fixed seed and do not move between runs).
		r := testing.Benchmark(s.fn)
		for rerun := 0; rerun < 2; rerun++ {
			if c := testing.Benchmark(s.fn); c.T.Nanoseconds()*int64(r.N) < r.T.Nanoseconds()*int64(c.N) {
				r = c
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, benchRecord{
			Name:        s.name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "whbench: %-22s %10d iters  %12.0f ns/op  %10d B/op  %8d allocs/op\n",
			s.name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	doc.WallSec = time.Since(start).Seconds()
	doc.Parallel = parallelEfficiency(doc)
	doc.ParallelCurve = efficiencyCurve(doc)
	if p := doc.Parallel; p != nil {
		fmt.Fprintf(os.Stderr, "whbench: parallel efficiency %.2f (speedup %.2fx over %d shards, %d CPUs)\n",
			p.Efficiency, p.Speedup, p.Shards, p.CPUs)
	}
	for _, pt := range doc.ParallelCurve {
		fmt.Fprintf(os.Stderr, "whbench: %s workload at %d shards: speedup %.2fx, efficiency %.2f\n",
			pt.Workload, pt.Shards, pt.Speedup, pt.Efficiency)
	}

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "whbench: wrote %s (%d benchmarks) in %.1fs wall\n",
		path, len(doc.Benchmarks), doc.WallSec)
	return nil
}
