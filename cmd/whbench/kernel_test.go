package main

import "testing"

// TestKernelRunInvariant: the speedup-smoke workload's checksum and
// event count are pure functions of the seed — identical at every
// shard count — so a smoke-gate pass also proves the partitioning
// did not change the trajectory.
func TestKernelRunInvariant(t *testing.T) {
	refSum, refFired, err := kernelRun(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if refSum == 0 || refFired == 0 {
		t.Fatalf("degenerate reference: sum %d, fired %d", refSum, refFired)
	}
	for _, shards := range []int{2, 4, 8} {
		sum, fired, err := kernelRun(shards, 7)
		if err != nil {
			t.Fatal(err)
		}
		if sum != refSum || fired != refFired {
			t.Errorf("shards=%d: (sum %d, fired %d) != single-shard (%d, %d)",
				shards, sum, fired, refSum, refFired)
		}
	}
	// A different seed must change the checksum, or the probe is inert.
	otherSum, _, err := kernelRun(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if otherSum == refSum {
		t.Error("checksum did not move with the seed")
	}
}
