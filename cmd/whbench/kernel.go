package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"warehousesim/internal/des"
	"warehousesim/internal/des/shard"
)

// The kernel-scaling workload: a synthetic, compute-dense load on the
// sharded engine itself, with dense local event traffic and rare
// cross-shard messages. The rack benchmarks (ShardedTrial*) measure
// the model the paper cares about — but every interactive request
// there round-trips the shared SAN, so their shard coupling is part of
// the physics and their parallel efficiency is bounded by it. This
// workload is the other calibration point: it measures what the
// engine's synchronization costs when the model itself scales, which
// is the number the speedup-smoke CI gate and the kernel rows of the
// parallel-efficiency curve track.
//
// The trajectory is a pure function of the seed and is partition-
// independent (local timing never depends on cross traffic, and the
// cross pokes only bump a commutative checksum), so the checksum
// doubles as a cheap cross-shard-count invariance probe.
const (
	kernelEntities   = 8    // divisible by every benchmarked shard count
	kernelHorizon    = 0.1  // simulated seconds
	kernelLookahead  = 2e-3 // wide windows: hundreds of local events per round
	kernelCrossEvery = 256  // local events between cross-shard pokes
	kernelSpin       = 256  // per-event arithmetic, the parallelizable work
)

type kernelEnt struct {
	sh     *shard.Shard
	id     shard.EntityID
	peer   *kernelEnt
	rng    uint64
	events int64
	sum    uint64

	stepFn, pokeFn des.Action
}

// step is one dense local event: spin the per-entity LCG (the "work"),
// occasionally poke the next entity cross-shard, and reschedule with a
// deterministic jittered gap well below the lookahead.
func (k *kernelEnt) step() {
	x := k.rng
	for i := 0; i < kernelSpin; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	k.rng = x
	k.sum += x
	k.events++
	if k.events%kernelCrossEvery == 0 {
		k.sh.Post(k.id, k.peer.id, 2*kernelLookahead, k.peer.pokeFn)
	}
	dt := des.Time(5e-6) + des.Time(x>>40)*1e-12 // 5–22 µs, mean ~13 µs
	k.sh.Sim.Schedule(dt, k.stepFn)
}

// poke runs on the receiving entity's shard and touches only its own
// commutative state, so delivery order across shard counts cannot show.
func (k *kernelEnt) poke() { k.sum++ }

// kernelRun executes one kernel trial and returns the checksum over
// all entities (identical at every shard count) and the events fired.
func kernelRun(shards int, seed uint64) (sum uint64, fired uint64, err error) {
	eng, err := shard.NewEngine(shard.Config{
		Shards:    shards,
		Entities:  kernelEntities,
		Lookahead: kernelLookahead,
	})
	if err != nil {
		return 0, 0, err
	}
	ents := make([]*kernelEnt, kernelEntities)
	for i := range ents {
		sid := i * shards / kernelEntities
		eng.Assign(shard.EntityID(i), sid)
		ents[i] = &kernelEnt{
			sh:  eng.Shard(sid),
			id:  shard.EntityID(i),
			rng: seed + 0x9e3779b97f4a7c15*uint64(i+1),
		}
		ents[i].stepFn = ents[i].step
		ents[i].pokeFn = ents[i].poke
	}
	for i, k := range ents {
		k.peer = ents[(i+1)%kernelEntities]
		k.sh.Sim.Schedule(des.Time(i+1)*1e-6, k.stepFn)
	}
	eng.Run(kernelHorizon)
	for _, k := range ents {
		sum += k.sum
	}
	return sum, eng.Fired(), nil
}

// kernelTrial benchmarks one kernel trial at the given shard count.
func kernelTrial(shards int, seed uint64) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := kernelRun(shards, seed); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// smokeShards and smokeFloor are the speedup-smoke contract: on a
// machine with at least smokeShards CPUs (and GOMAXPROCS), the kernel
// workload at smokeShards shards must beat one shard by smokeFloor in
// wall-clock. 1.3x is deliberately far below the ~3x the workload
// reaches on an unloaded 4-core machine: the gate must not flake on a
// busy CI runner, it only has to prove the engine parallelizes at all.
const (
	smokeShards = 4
	smokeFloor  = 1.3
)

// runSpeedupSmoke measures the kernel workload at 1 vs smokeShards
// shards and enforces the smokeFloor wall-clock speedup — skipping
// (exit 0, with a message) on machines that cannot physically show
// one. Each side is best-of-three to shrug off transient load.
func runSpeedupSmoke(seed uint64) error {
	if runtime.NumCPU() < smokeShards || runtime.GOMAXPROCS(0) < smokeShards {
		fmt.Fprintf(os.Stderr, "whbench: speedup-smoke skipped: need >= %d CPUs and GOMAXPROCS, have %d/%d (a %d-shard run cannot beat 1 shard without the cores)\n",
			smokeShards, runtime.NumCPU(), runtime.GOMAXPROCS(0), smokeShards)
		return nil
	}
	measure := func(shards int) (time.Duration, uint64, error) {
		best := time.Duration(0)
		var sum uint64
		for i := 0; i < 3; i++ {
			start := time.Now()
			s, _, err := kernelRun(shards, seed)
			d := time.Since(start)
			if err != nil {
				return 0, 0, err
			}
			if best == 0 || d < best {
				best = d
			}
			sum = s
		}
		return best, sum, nil
	}
	base, baseSum, err := measure(1)
	if err != nil {
		return err
	}
	par, parSum, err := measure(smokeShards)
	if err != nil {
		return err
	}
	if baseSum != parSum {
		return fmt.Errorf("speedup-smoke: checksum diverged across shard counts: %d at 1 shard vs %d at %d shards", baseSum, parSum, smokeShards)
	}
	speedup := float64(base) / float64(par)
	fmt.Fprintf(os.Stderr, "whbench: speedup-smoke: %v at 1 shard, %v at %d shards -> %.2fx (floor %.1fx, %d CPUs)\n",
		base, par, smokeShards, speedup, smokeFloor, runtime.NumCPU())
	if speedup < smokeFloor {
		return fmt.Errorf("speedup-smoke: %.2fx below the %.1fx floor: the sharded kernel is not delivering wall-clock speedup on %d CPUs", speedup, smokeFloor, runtime.NumCPU())
	}
	return nil
}
