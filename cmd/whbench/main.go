// Command whbench regenerates the paper's evaluation: every table and
// figure (plus the ablation studies) as textual reports comparing the
// model against the published numbers.
//
// Usage:
//
//	whbench              # run everything
//	whbench -exp fig2c   # run one experiment
//	whbench -list        # list experiment ids
//	whbench -obs -obs-out suite.jsonl   # record per-experiment streams
//	whbench -bench-json BENCH.json      # machine-readable micro-bench record
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"warehousesim/experiments"
	"warehousesim/internal/core/cliflags"
	"warehousesim/internal/obs"
	//whvet:allow nohttp whbench opts into the HTTP stack for the -http live-introspection endpoint; the cost is paid only by this binary
	"warehousesim/internal/obs/introspect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whbench: ")
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	obsFlags := cliflags.AddObs(flag.CommandLine, "registry-level observability streams", "bench.jsonl")
	benchJSON := flag.String("bench-json", "", "run the substrate micro-benchmarks and write a warehousesim-bench/v1 JSON record here, then exit")
	benchDiff := flag.Bool("bench-diff", false, "compare two bench-json records (args: old.json new.json) and exit non-zero on regression")
	diffThreshold := flag.Float64("diff-threshold", 0.10, "relative ns/op regression tolerance for -bench-diff (B/op and allocs/op must not regress at all)")
	effFloor := flag.Float64("eff-floor", 0, "with -bench-diff: fail when the new record's kernel parallel efficiency at 4 shards is below this floor (skipped when the recording machine had fewer CPUs or GOMAXPROCS than shards)")
	speedupSmoke := flag.Bool("speedup-smoke", false, "measure the kernel workload at 1 vs 4 shards and exit non-zero unless wall-clock speedup reaches 1.3x (skips on machines with fewer than 4 CPUs), then exit")
	parFlag := cliflags.AddPar(flag.CommandLine, runtime.NumCPU(),
		"worker goroutines for the experiment suite and its internal sweeps (1 = sequential; reports are identical at any value)")
	httpFlag := cliflags.AddHTTP(flag.CommandLine, "/obs snapshot with per-experiment progress")
	seed := flag.Uint64("seed", 1, "simulation seed for -bench-json")
	sharding := cliflags.AddSharding(flag.CommandLine)
	fleet := cliflags.AddFleet(flag.CommandLine, sharding)
	profiles := cliflags.AddProfiles(flag.CommandLine)
	flag.Parse()

	if err := cliflags.Validate(sharding, fleet); err != nil {
		log.Fatal(err)
	}
	obsOn := obsFlags.Enabled()
	par, err := parFlag.Value()
	if err != nil {
		log.Fatal(err)
	}

	if *benchDiff {
		if flag.NArg() != 2 {
			log.Fatal("-bench-diff needs exactly two arguments: old.json new.json")
		}
		if err := runBenchDiff(flag.Arg(0), flag.Arg(1), *diffThreshold, *effFloor); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *speedupSmoke {
		if err := runSpeedupSmoke(*seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, titles[id])
		}
		return
	}

	// Live /obs progress snapshots need a sink even when no export was
	// requested — but only an explicit ask should write an obs file.
	intro, bound, err := introspect.ServeAddr(httpFlag.Addr())
	if err != nil {
		log.Fatal(err)
	}
	if intro != nil {
		log.Printf("introspection: serving http://%s (/obs, /debug/pprof) for the process lifetime", bound)
	}

	var sink *obs.Sink
	if obsOn || intro != nil {
		sink = obs.NewSink()
	}
	start := time.Now()

	// One RunSpec covers every call shape: -exp restricts the selection,
	// -obs attaches the recorder, -par sizes the suite pool, and the
	// introspection hook rides Progress. Per-experiment progress is
	// published with the experiment id as the phase; the hook fires on
	// the commit goroutine, so suite workers never touch the sink.
	spec := experiments.RunSpec{Parallelism: par}
	if sink != nil {
		spec.Recorder = sink
	}
	if ft := fleet.Topology(); ft != nil {
		spec.Fleet = ft
	}
	runID := "all"
	if *exp != "" {
		runID = *exp
		spec.IDs = []string{*exp}
	}
	if intro != nil {
		pub := func(phase string, done, total int) {
			if b, err := sink.Snapshot(obs.Progress{
				Phase: phase, SimTimeSec: float64(done), HorizonSec: float64(total),
			}); err == nil {
				intro.Publish(b)
			}
		}
		total := len(experiments.IDs())
		if *exp != "" {
			total = 1
		}
		pub("start", 0, total)
		spec.Progress = func(p experiments.SuiteProgress) { pub(p.ID, p.Done, p.Total) }
		defer func() { pub("done", total, total) }()
	}

	experiments.SetSweepParallelism(par)
	reps, err := experiments.Execute(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *exp != "" {
		fmt.Print(reps[0])
	} else {
		for _, rep := range reps {
			fmt.Println(rep)
		}
	}

	if sink != nil && obsOn {
		man := obs.NewManifest("suite", runID, 0)
		man.Config["experiments"] = fmt.Sprintf("%d", sink.CounterValue("experiments.runs"))
		man.WallSec = time.Since(start).Seconds()
		sink.SetManifest(man)
		out := obsFlags.Path()
		if err := sink.WriteFile(out); err != nil {
			log.Fatal(err)
		}
		log.Printf("obs: wrote %s (%d experiments) in %.2fs wall",
			out, sink.CounterValue("experiments.runs"), man.WallSec)
	}
}
