// Command whbench regenerates the paper's evaluation: every table and
// figure (plus the ablation studies) as textual reports comparing the
// model against the published numbers.
//
// Usage:
//
//	whbench              # run everything
//	whbench -exp fig2c   # run one experiment
//	whbench -list        # list experiment ids
//	whbench -obs -obs-out suite.jsonl   # record per-experiment streams
//	whbench -bench-json BENCH.json      # machine-readable micro-bench record
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"warehousesim/experiments"
	"warehousesim/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whbench: ")
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	obsOn := flag.Bool("obs", false, "record registry-level observability streams")
	obsOut := flag.String("obs-out", "", "write the obs export here (.csv for CSV, else JSONL; implies -obs; default bench.jsonl)")
	benchJSON := flag.String("bench-json", "", "run the substrate micro-benchmarks and write a warehousesim-bench/v1 JSON record here, then exit")
	seed := flag.Uint64("seed", 1, "simulation seed for -bench-json")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *obsOut != "" {
		*obsOn = true
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, titles[id])
		}
		return
	}

	var sink *obs.Sink
	var rec obs.Recorder
	if *obsOn {
		sink = obs.NewSink()
		rec = sink
	}
	start := time.Now()

	runID := "all"
	if *exp != "" {
		runID = *exp
		rep, err := experiments.RunWith(*exp, rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
	} else {
		reps, err := experiments.RunAllWith(rec)
		if err != nil {
			log.Fatal(err)
		}
		for _, rep := range reps {
			fmt.Println(rep)
		}
	}

	if sink != nil {
		man := obs.NewManifest("suite", runID, 0)
		man.Config["experiments"] = fmt.Sprintf("%d", sink.CounterValue("experiments.runs"))
		man.WallSec = time.Since(start).Seconds()
		sink.SetManifest(man)
		out := *obsOut
		if out == "" {
			out = "bench.jsonl"
		}
		if err := sink.WriteFile(out); err != nil {
			log.Fatal(err)
		}
		log.Printf("obs: wrote %s (%d experiments) in %.2fs wall",
			out, sink.CounterValue("experiments.runs"), man.WallSec)
	}
}
