// Command whbench regenerates the paper's evaluation: every table and
// figure (plus the ablation studies) as textual reports comparing the
// model against the published numbers.
//
// Usage:
//
//	whbench              # run everything
//	whbench -exp fig2c   # run one experiment
//	whbench -list        # list experiment ids
//	whbench -obs -obs-out suite.jsonl   # record per-experiment streams
//	whbench -bench-json BENCH.json      # machine-readable micro-bench record
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"warehousesim/experiments"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/introspect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whbench: ")
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	obsOn := flag.Bool("obs", false, "record registry-level observability streams")
	obsOut := flag.String("obs-out", "", "write the obs export here (.csv for CSV, else JSONL; implies -obs; default bench.jsonl)")
	benchJSON := flag.String("bench-json", "", "run the substrate micro-benchmarks and write a warehousesim-bench/v1 JSON record here, then exit")
	benchDiff := flag.Bool("bench-diff", false, "compare two bench-json records (args: old.json new.json) and exit non-zero on regression")
	diffThreshold := flag.Float64("diff-threshold", 0.10, "relative ns/op regression tolerance for -bench-diff (B/op and allocs/op must not regress at all)")
	par := flag.Int("par", runtime.NumCPU(), "worker goroutines for the experiment suite and its internal sweeps (1 = sequential; reports are identical at any value)")
	httpAddr := flag.String("http", "", "serve live introspection (/obs snapshot with per-experiment progress, /debug/pprof) on this address, e.g. :6060")
	seed := flag.Uint64("seed", 1, "simulation seed for -bench-json")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *obsOut != "" {
		*obsOn = true
	}
	if *par < 1 {
		log.Fatalf("-par must be >= 1, got %d", *par)
	}

	if *benchDiff {
		if flag.NArg() != 2 {
			log.Fatal("-bench-diff needs exactly two arguments: old.json new.json")
		}
		if err := runBenchDiff(flag.Arg(0), flag.Arg(1), *diffThreshold); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, titles[id])
		}
		return
	}

	// Live /obs progress snapshots need a sink even when no export was
	// requested — but only an explicit ask should write an obs file.
	exportObs := *obsOn
	var intro *introspect.Server
	if *httpAddr != "" {
		*obsOn = true
		intro = introspect.New()
		bound, _, err := intro.Serve(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("introspection: serving http://%s (/obs, /debug/pprof) for the process lifetime", bound)
	}

	var sink *obs.Sink
	var rec obs.Recorder
	if *obsOn {
		sink = obs.NewSink()
		rec = sink
	}
	start := time.Now()

	// Per-experiment progress rides the introspection snapshot with the
	// experiment id as the phase; the hook fires on the commit goroutine,
	// so suite workers never touch the sink.
	var onDone func(experiments.SuiteProgress)
	if intro != nil {
		pub := func(phase string, done, total int) {
			if b, err := sink.Snapshot(obs.Progress{
				Phase: phase, SimTimeSec: float64(done), HorizonSec: float64(total),
			}); err == nil {
				intro.Publish(b)
			}
		}
		pub("start", 0, len(experiments.IDs()))
		onDone = func(p experiments.SuiteProgress) { pub(p.ID, p.Done, p.Total) }
		defer func() { pub("done", len(experiments.IDs()), len(experiments.IDs())) }()
	}

	experiments.SetSweepParallelism(*par)
	runID := "all"
	if *exp != "" {
		runID = *exp
		rep, err := experiments.RunWith(*exp, rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
	} else {
		reps, err := experiments.RunAllPar(rec, *par, onDone)
		if err != nil {
			log.Fatal(err)
		}
		for _, rep := range reps {
			fmt.Println(rep)
		}
	}

	if sink != nil && exportObs {
		man := obs.NewManifest("suite", runID, 0)
		man.Config["experiments"] = fmt.Sprintf("%d", sink.CounterValue("experiments.runs"))
		man.WallSec = time.Since(start).Seconds()
		sink.SetManifest(man)
		out := *obsOut
		if out == "" {
			out = "bench.jsonl"
		}
		if err := sink.WriteFile(out); err != nil {
			log.Fatal(err)
		}
		log.Printf("obs: wrote %s (%d experiments) in %.2fs wall",
			out, sink.CounterValue("experiments.runs"), man.WallSec)
	}
}
