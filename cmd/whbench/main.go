// Command whbench regenerates the paper's evaluation: every table and
// figure (plus the ablation studies) as textual reports comparing the
// model against the published numbers.
//
// Usage:
//
//	whbench              # run everything
//	whbench -exp fig2c   # run one experiment
//	whbench -list        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"warehousesim/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whbench: ")
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, titles[id])
		}
		return
	}

	if *exp != "" {
		rep, err := experiments.Run(*exp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
		return
	}

	reps, err := experiments.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reps {
		fmt.Println(rep)
	}
	os.Exit(0)
}
