package main

import (
	"os"
	"path/filepath"
	"testing"
)

func doc(recs ...benchRecord) benchDoc {
	return benchDoc{Schema: "warehousesim-bench/v1", Benchmarks: recs}
}

func rec(name string, ns float64, bytes, allocs int64) benchRecord {
	return benchRecord{Name: name, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func regressions(lines []benchDiffLine) int {
	n := 0
	for _, l := range lines {
		if len(l.regressed) > 0 {
			n++
		}
	}
	return n
}

func TestDiffBenchDocsOK(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 10), rec("b", 50, 0, 0))
	newDoc := doc(rec("a", 105, 900, 8), rec("b", 54, 0, 0)) // ns within 10%, fewer allocs
	lines := diffBenchDocs(oldDoc, newDoc, 0.10, true)
	if got := regressions(lines); got != 0 {
		t.Fatalf("%d regressions, want 0: %+v", got, lines)
	}
}

func TestDiffBenchDocsNsTolerance(t *testing.T) {
	oldDoc := doc(rec("a", 100, 0, 0))
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 125, 0, 0)), 0.10, true)); got != 1 {
		t.Fatalf("ns/op +25%% past 10%% tolerance: %d regressions, want 1", got)
	}
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 125, 0, 0)), 0.30, true)); got != 0 {
		t.Fatalf("ns/op +25%% within 30%% tolerance: %d regressions, want 0", got)
	}
}

func TestDiffBenchDocsAllocRegression(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 100))
	// ns/op improved, but the per-op allocation figures grew past the
	// amortization slack (max of ~1.5% or a small floor) — regression
	// even on a faster run.
	lines := diffBenchDocs(oldDoc, doc(rec("a", 90, 1040, 100)), 0.10, true)
	if got := regressions(lines); got != 1 {
		t.Fatalf("B/op +40 past slack: %d regressions, want 1", got)
	}
	lines = diffBenchDocs(oldDoc, doc(rec("a", 90, 1000, 103)), 0.10, true)
	if got := regressions(lines); got != 1 {
		t.Fatalf("allocs/op +3 past slack: %d regressions, want 1", got)
	}
	// Within the slack: setup-cost amortization over a different b.N,
	// not a code change.
	lines = diffBenchDocs(oldDoc, doc(rec("a", 90, 1001, 101)), 0.10, true)
	if got := regressions(lines); got != 0 {
		t.Fatalf("B/op +1, allocs/op +1 within slack: %d regressions, want 0", got)
	}
}

func TestDiffBenchDocsCrossMachine(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 100))
	// ns/op doubled but gateNs is off (different recording machines):
	// reported, not a regression.
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 200, 1000, 100)), 0.10, false)); got != 0 {
		t.Fatalf("cross-machine ns/op: %d regressions, want 0", got)
	}
	// Allocation figures gate on any machine.
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 200, 2000, 100)), 0.10, false)); got != 1 {
		t.Fatalf("cross-machine B/op doubled: %d regressions, want 1", got)
	}
}

func TestSameMachine(t *testing.T) {
	fp := func(model string, cpus int) benchDoc {
		d := doc()
		d.CPUModel, d.CPUs = model, cpus
		return d
	}
	if !sameMachine(fp("cpu-x", 4), fp("cpu-x", 4)) {
		t.Fatal("matching fingerprints not recognized")
	}
	if sameMachine(fp("cpu-x", 4), fp("cpu-y", 4)) {
		t.Fatal("different models matched")
	}
	if sameMachine(fp("cpu-x", 4), fp("cpu-x", 8)) {
		t.Fatal("different cpu counts matched")
	}
	// Records without a fingerprint (pre-cpu_model schema, non-Linux)
	// never match: comparability must be proven, not assumed.
	if sameMachine(fp("", 4), fp("", 4)) {
		t.Fatal("fingerprintless records matched")
	}
}

func TestDiffBenchDocsMissingBenchmark(t *testing.T) {
	oldDoc := doc(rec("a", 100, 0, 0), rec("gone", 10, 0, 0))
	lines := diffBenchDocs(oldDoc, doc(rec("a", 100, 0, 0)), 0.10, true)
	if got := regressions(lines); got != 1 {
		t.Fatalf("disappeared benchmark: %d regressions, want 1", got)
	}
	for _, l := range lines {
		if l.name == "gone" && !l.missing {
			t.Fatal("disappeared benchmark not flagged missing")
		}
	}
	// A benchmark only in the new record is informational, not a diff line.
	lines = diffBenchDocs(oldDoc, doc(rec("a", 100, 0, 0), rec("gone", 10, 0, 0), rec("new", 1, 0, 0)), 0.10, true)
	if got := regressions(lines); got != 0 {
		t.Fatalf("new-only benchmark: %d regressions, want 0", got)
	}
}

func TestReadBenchDocValidatesSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v2","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchDoc(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := readBenchDoc(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestParallelEfficiencyDerivation: the summary derives from the two
// ShardedTrial rows and is nil when either is absent, so old records
// (which predate the field) neither produce nor require it.
func TestParallelEfficiencyDerivation(t *testing.T) {
	doc := benchDoc{CPUs: 8, Benchmarks: []benchRecord{
		{Name: "ShardedTrial", NsPerOp: 4e9},
		{Name: "ShardedTrial4", NsPerOp: 2e9},
	}}
	p := parallelEfficiency(doc)
	if p == nil {
		t.Fatal("summary missing with both rows present")
	}
	if p.Speedup != 2 || p.Efficiency != 0.5 || p.Shards != 4 || p.CPUs != 8 {
		t.Errorf("summary = %+v", p)
	}
	if parallelEfficiency(benchDoc{Benchmarks: []benchRecord{{Name: "ShardedTrial", NsPerOp: 1}}}) != nil {
		t.Error("summary produced without the sharded row")
	}
}
