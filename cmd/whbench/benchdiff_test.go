package main

import (
	"os"
	"path/filepath"
	"testing"
)

func doc(recs ...benchRecord) benchDoc {
	return benchDoc{Schema: "warehousesim-bench/v1", Benchmarks: recs}
}

func rec(name string, ns float64, bytes, allocs int64) benchRecord {
	return benchRecord{Name: name, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func regressions(lines []benchDiffLine) int {
	n := 0
	for _, l := range lines {
		if len(l.regressed) > 0 {
			n++
		}
	}
	return n
}

func TestDiffBenchDocsOK(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 10), rec("b", 50, 0, 0))
	newDoc := doc(rec("a", 105, 900, 8), rec("b", 54, 0, 0)) // ns within 10%, fewer allocs
	lines := diffBenchDocs(oldDoc, newDoc, 0.10)
	if got := regressions(lines); got != 0 {
		t.Fatalf("%d regressions, want 0: %+v", got, lines)
	}
}

func TestDiffBenchDocsNsTolerance(t *testing.T) {
	oldDoc := doc(rec("a", 100, 0, 0))
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 125, 0, 0)), 0.10)); got != 1 {
		t.Fatalf("ns/op +25%% past 10%% tolerance: %d regressions, want 1", got)
	}
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 125, 0, 0)), 0.30)); got != 0 {
		t.Fatalf("ns/op +25%% within 30%% tolerance: %d regressions, want 0", got)
	}
}

func TestDiffBenchDocsAllocRegressionHasNoTolerance(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 10))
	// ns/op improved, but a single extra byte per op is deterministic
	// for a fixed seed — any increase regresses.
	lines := diffBenchDocs(oldDoc, doc(rec("a", 90, 1001, 10)), 0.10)
	if got := regressions(lines); got != 1 {
		t.Fatalf("B/op +1: %d regressions, want 1", got)
	}
	lines = diffBenchDocs(oldDoc, doc(rec("a", 90, 1000, 11)), 0.10)
	if got := regressions(lines); got != 1 {
		t.Fatalf("allocs/op +1: %d regressions, want 1", got)
	}
}

func TestDiffBenchDocsMissingBenchmark(t *testing.T) {
	oldDoc := doc(rec("a", 100, 0, 0), rec("gone", 10, 0, 0))
	lines := diffBenchDocs(oldDoc, doc(rec("a", 100, 0, 0)), 0.10)
	if got := regressions(lines); got != 1 {
		t.Fatalf("disappeared benchmark: %d regressions, want 1", got)
	}
	for _, l := range lines {
		if l.name == "gone" && !l.missing {
			t.Fatal("disappeared benchmark not flagged missing")
		}
	}
	// A benchmark only in the new record is informational, not a diff line.
	lines = diffBenchDocs(oldDoc, doc(rec("a", 100, 0, 0), rec("gone", 10, 0, 0), rec("new", 1, 0, 0)), 0.10)
	if got := regressions(lines); got != 0 {
		t.Fatalf("new-only benchmark: %d regressions, want 0", got)
	}
}

func TestReadBenchDocValidatesSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v2","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchDoc(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := readBenchDoc(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
