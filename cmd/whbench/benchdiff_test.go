package main

import (
	"os"
	"path/filepath"
	"testing"
)

func doc(recs ...benchRecord) benchDoc {
	return benchDoc{Schema: "warehousesim-bench/v1", Benchmarks: recs}
}

func rec(name string, ns float64, bytes, allocs int64) benchRecord {
	return benchRecord{Name: name, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func regressions(lines []benchDiffLine) int {
	n := 0
	for _, l := range lines {
		if len(l.regressed) > 0 {
			n++
		}
	}
	return n
}

func TestDiffBenchDocsOK(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 10), rec("b", 50, 0, 0))
	newDoc := doc(rec("a", 105, 900, 8), rec("b", 54, 0, 0)) // ns within 10%, fewer allocs
	lines := diffBenchDocs(oldDoc, newDoc, 0.10, true)
	if got := regressions(lines); got != 0 {
		t.Fatalf("%d regressions, want 0: %+v", got, lines)
	}
}

func TestDiffBenchDocsNsTolerance(t *testing.T) {
	oldDoc := doc(rec("a", 100, 0, 0))
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 125, 0, 0)), 0.10, true)); got != 1 {
		t.Fatalf("ns/op +25%% past 10%% tolerance: %d regressions, want 1", got)
	}
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 125, 0, 0)), 0.30, true)); got != 0 {
		t.Fatalf("ns/op +25%% within 30%% tolerance: %d regressions, want 0", got)
	}
}

func TestDiffBenchDocsAllocRegression(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 100))
	// ns/op improved, but the per-op allocation figures grew past the
	// amortization slack (max of ~1.5% or a small floor) — regression
	// even on a faster run.
	lines := diffBenchDocs(oldDoc, doc(rec("a", 90, 1040, 100)), 0.10, true)
	if got := regressions(lines); got != 1 {
		t.Fatalf("B/op +40 past slack: %d regressions, want 1", got)
	}
	lines = diffBenchDocs(oldDoc, doc(rec("a", 90, 1000, 103)), 0.10, true)
	if got := regressions(lines); got != 1 {
		t.Fatalf("allocs/op +3 past slack: %d regressions, want 1", got)
	}
	// Within the slack: setup-cost amortization over a different b.N,
	// not a code change.
	lines = diffBenchDocs(oldDoc, doc(rec("a", 90, 1001, 101)), 0.10, true)
	if got := regressions(lines); got != 0 {
		t.Fatalf("B/op +1, allocs/op +1 within slack: %d regressions, want 0", got)
	}
}

func TestDiffBenchDocsCrossMachine(t *testing.T) {
	oldDoc := doc(rec("a", 100, 1000, 100))
	// ns/op doubled but gateNs is off (different recording machines):
	// reported, not a regression.
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 200, 1000, 100)), 0.10, false)); got != 0 {
		t.Fatalf("cross-machine ns/op: %d regressions, want 0", got)
	}
	// Allocation figures gate on any machine.
	if got := regressions(diffBenchDocs(oldDoc, doc(rec("a", 200, 2000, 100)), 0.10, false)); got != 1 {
		t.Fatalf("cross-machine B/op doubled: %d regressions, want 1", got)
	}
}

func TestSameMachine(t *testing.T) {
	fp := func(model string, cpus, maxprocs int) benchDoc {
		d := doc()
		d.CPUModel, d.CPUs, d.GOMAXPROCS = model, cpus, maxprocs
		return d
	}
	if !sameMachine(fp("cpu-x", 4, 4), fp("cpu-x", 4, 4)) {
		t.Fatal("matching fingerprints not recognized")
	}
	if sameMachine(fp("cpu-x", 4, 4), fp("cpu-y", 4, 4)) {
		t.Fatal("different models matched")
	}
	if sameMachine(fp("cpu-x", 4, 4), fp("cpu-x", 8, 4)) {
		t.Fatal("different cpu counts matched")
	}
	// Same hardware, different GOMAXPROCS: a GOMAXPROCS=1 record is
	// serial regardless of the CPU count, so the runs are not comparable.
	if sameMachine(fp("cpu-x", 4, 1), fp("cpu-x", 4, 4)) {
		t.Fatal("different GOMAXPROCS matched")
	}
	// Records that predate the gomaxprocs field (0) never match, even
	// against each other: comparability must be proven, not assumed.
	if sameMachine(fp("cpu-x", 4, 0), fp("cpu-x", 4, 0)) {
		t.Fatal("gomaxprocs-less records matched")
	}
	// Records without a fingerprint (pre-cpu_model schema, non-Linux)
	// never match either.
	if sameMachine(fp("", 4, 4), fp("", 4, 4)) {
		t.Fatal("fingerprintless records matched")
	}
}

func TestDiffBenchDocsMissingBenchmark(t *testing.T) {
	oldDoc := doc(rec("a", 100, 0, 0), rec("gone", 10, 0, 0))
	lines := diffBenchDocs(oldDoc, doc(rec("a", 100, 0, 0)), 0.10, true)
	if got := regressions(lines); got != 1 {
		t.Fatalf("disappeared benchmark: %d regressions, want 1", got)
	}
	for _, l := range lines {
		if l.name == "gone" && !l.missing {
			t.Fatal("disappeared benchmark not flagged missing")
		}
	}
	// A benchmark only in the new record is informational, not a diff line.
	lines = diffBenchDocs(oldDoc, doc(rec("a", 100, 0, 0), rec("gone", 10, 0, 0), rec("new", 1, 0, 0)), 0.10, true)
	if got := regressions(lines); got != 0 {
		t.Fatalf("new-only benchmark: %d regressions, want 0", got)
	}
}

func TestReadBenchDocValidatesSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v2","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchDoc(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := readBenchDoc(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestParallelEfficiencyDerivation: the summary derives from the two
// ShardedTrial rows and is nil when either is absent, so old records
// (which predate the field) neither produce nor require it.
func TestParallelEfficiencyDerivation(t *testing.T) {
	doc := benchDoc{CPUs: 8, Benchmarks: []benchRecord{
		{Name: "ShardedTrial", NsPerOp: 4e9},
		{Name: "ShardedTrial4", NsPerOp: 2e9},
	}}
	p := parallelEfficiency(doc)
	if p == nil {
		t.Fatal("summary missing with both rows present")
	}
	if p.Speedup != 2 || p.Efficiency != 0.5 || p.Shards != 4 || p.CPUs != 8 {
		t.Errorf("summary = %+v", p)
	}
	if parallelEfficiency(benchDoc{Benchmarks: []benchRecord{{Name: "ShardedTrial", NsPerOp: 1}}}) != nil {
		t.Error("summary produced without the sharded row")
	}
}

// TestEfficiencyCurve: the curve derives one point per (workload,
// shard-count) pair whose rows are both present, and skips the rest —
// so records from older suites (no KernelTrial rows) produce a partial
// curve rather than an error.
func TestEfficiencyCurve(t *testing.T) {
	d := benchDoc{Benchmarks: []benchRecord{
		{Name: "ShardedTrial", NsPerOp: 8e9},
		{Name: "ShardedTrial2", NsPerOp: 5e9},
		{Name: "KernelTrial", NsPerOp: 4e9},
		{Name: "KernelTrial4", NsPerOp: 1e9},
	}}
	curve := efficiencyCurve(d)
	if len(curve) != 2 {
		t.Fatalf("curve has %d points, want 2 (rack@2, kernel@4): %+v", len(curve), curve)
	}
	rack, kernel := curve[0], curve[1]
	if rack.Workload != "rack" || rack.Shards != 2 || rack.Speedup != 1.6 || rack.Efficiency != 0.8 {
		t.Errorf("rack point = %+v", rack)
	}
	if kernel.Workload != "kernel" || kernel.Shards != 4 || kernel.Speedup != 4 || kernel.Efficiency != 1 {
		t.Errorf("kernel point = %+v", kernel)
	}
	d.ParallelCurve = curve
	if p := kernelEfficiencyAt(d, 4); p == nil || p.Efficiency != 1 {
		t.Errorf("kernelEfficiencyAt(4) = %+v", p)
	}
	if kernelEfficiencyAt(d, 8) != nil {
		t.Error("kernelEfficiencyAt(8) found a point that was never derived")
	}
	if efficiencyCurve(benchDoc{}) != nil {
		t.Error("empty record produced a curve")
	}
}

// effDoc builds a record with a kernel efficiency point at smokeShards.
func effDoc(model string, cpus, maxprocs int, eff float64) benchDoc {
	d := doc()
	d.CPUModel, d.CPUs, d.GOMAXPROCS = model, cpus, maxprocs
	d.ParallelCurve = []efficiencyPoint{{
		Workload: "kernel", Shards: smokeShards,
		Speedup: eff * smokeShards, Efficiency: eff,
	}}
	return d
}

func TestDiffEfficiencyFloor(t *testing.T) {
	same := func(eff float64) (benchDoc, benchDoc) {
		return effDoc("cpu-x", 8, 8, 0.50), effDoc("cpu-x", 8, 8, eff)
	}
	// Floor met: no error.
	oldD, newD := same(0.45)
	if err := diffEfficiency(oldD, newD, 0.40); err != nil {
		t.Errorf("efficiency 0.45 over 0.40 floor: %v", err)
	}
	// Floor violated: error.
	oldD, newD = same(0.30)
	if err := diffEfficiency(oldD, newD, 0.40); err == nil {
		t.Error("efficiency 0.30 under 0.40 floor not rejected")
	}
	// No floor requested: never an error.
	if err := diffEfficiency(oldD, newD, 0); err != nil {
		t.Errorf("floorless diff errored: %v", err)
	}
	// The machine cannot run smokeShards in parallel: floor skipped,
	// even though the efficiency figure is under it.
	weak := effDoc("cpu-1", 1, 1, 0.24)
	if err := diffEfficiency(weak, weak, 0.40); err != nil {
		t.Errorf("floor not skipped on a %d-CPU record: %v", weak.CPUs, err)
	}
	// New record has no kernel point at all: the floor cannot be
	// evaluated, which is an error (the gate was explicitly requested).
	if err := diffEfficiency(oldD, doc(), 0.40); err == nil {
		t.Error("missing kernel point accepted with a floor set")
	}
}

func TestDiffEfficiencyCrossFingerprint(t *testing.T) {
	oldD := effDoc("cpu-x", 8, 8, 0.50)
	newD := effDoc("cpu-y", 8, 8, 0.50)
	// Cross-fingerprint with a floor: refused with an error, even though
	// the new record on its own would pass the floor.
	if err := diffEfficiency(oldD, newD, 0.40); err == nil {
		t.Error("cross-fingerprint efficiency comparison with a floor not refused")
	}
	// Without a floor the refusal is informational only.
	if err := diffEfficiency(oldD, newD, 0); err != nil {
		t.Errorf("floorless cross-fingerprint diff errored: %v", err)
	}
}
