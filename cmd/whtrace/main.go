// Command whtrace works with the memory-access traces behind the
// Figure 4 experiments: generate a trace from one of the real workload
// engines (or a synthetic popularity model), save/load it in the
// compact binary format, print its locality statistics, and replay it
// through the two-level memory simulator.
//
// Usage:
//
//	whtrace -workload websearch -requests 5000 -out ws.trace
//	whtrace -in ws.trace -stats
//	whtrace -in ws.trace -replay -local 0.25 -policy lru
//	whtrace -in ws.trace -replay -obs-out replay.jsonl -trace-out replay.trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"warehousesim/internal/core/cliflags"
	"warehousesim/internal/memblade"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
	"warehousesim/internal/workload"
	"warehousesim/internal/workload/mapreduce"
	"warehousesim/internal/workload/webmail"
	"warehousesim/internal/workload/websearch"
	"warehousesim/internal/workload/ytube"
)

func tracerFor(name string) (trace.PageTracer, workload.Profile, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, workload.Profile{}, fmt.Errorf("unknown workload %q", name)
	}
	switch p.Class {
	case workload.Websearch:
		e, err := websearch.New(websearch.DefaultConfig(), p)
		return e, p, err
	case workload.Webmail:
		e, err := webmail.New(webmail.DefaultConfig(), p)
		return e, p, err
	case workload.Ytube:
		e, err := ytube.New(ytube.DefaultConfig(), p)
		return e, p, err
	case workload.MapReduceWC:
		e, err := mapreduce.NewWordCount(mapreduce.DefaultCorpusConfig(), p)
		return e, p, err
	case workload.MapReduceWR:
		e, err := mapreduce.NewWrite(mapreduce.DefaultCorpusConfig(), 64, p)
		return e, p, err
	default:
		return nil, p, fmt.Errorf("workload %q has no tracer", name)
	}
}

func policyFor(name string) (memblade.Policy, error) {
	switch name {
	case "lru":
		return memblade.LRU, nil
	case "random":
		return memblade.Random, nil
	case "clock":
		return memblade.Clock, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (lru, random, clock)", name)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("whtrace: ")
	wl := flag.String("workload", "websearch", "workload engine to trace")
	requests := flag.Int("requests", 5000, "requests to trace")
	seed := flag.Uint64("seed", 1, "trace seed")
	out := flag.String("out", "", "write the trace to this file")
	in := flag.String("in", "", "read a trace from this file instead of generating")
	showStats := flag.Bool("stats", true, "print locality statistics")
	replay := flag.Bool("replay", false, "replay through the two-level memory simulator")
	local := flag.Float64("local", 0.25, "local-memory fraction for -replay")
	policy := flag.String("policy", "random", "replacement policy for -replay")
	obsFlags := cliflags.AddObs(flag.CommandLine, "the replay's memblade hit/miss streams (requires -replay)", "replay.jsonl")
	traceOut := flag.String("trace-out", "", "write a Perfetto trace of the replay's swap/CBF spans here (implies -obs)")
	traceEvery := flag.Int64("trace-every", 1, "span-sample every Nth access by access index (1 = all)")
	sampleEvery := flag.Int64("sample-every", 1024, "hit-rate series sampling stride, accesses")
	profiles := cliflags.AddProfiles(flag.CommandLine)
	flag.Parse()

	obsOn := obsFlags.Enabled() || *traceOut != ""
	if obsOn && !*replay {
		log.Fatal("-obs records the replay; add -replay")
	}
	if *traceEvery < 1 {
		log.Fatalf("-trace-every must be >= 1, got %d", *traceEvery)
	}

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	var tr *trace.PageTrace
	var footprint int64

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err = trace.DecodePages(f)
		if err != nil {
			log.Fatal(err)
		}
		footprint = trace.AnalyzePages(tr).MaxPage + 1
		fmt.Printf("loaded %s: %d requests, %d accesses\n", *in, tr.Requests(), len(tr.Accesses))
	} else {
		tracer, p, err := tracerFor(*wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tracing %d %s requests...\n", *requests, p.Name)
		tr = trace.CollectPages(tracer, stats.NewRNG(*seed), *requests)
		footprint = int64(p.MemFootprintMB * 1e6 / 4096)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.EncodePages(f, tr); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(*out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes, %.2f bytes/access)\n",
			*out, info.Size(), float64(info.Size())/float64(len(tr.Accesses)))
	}

	if *showStats {
		fmt.Println(trace.AnalyzePages(tr))
	}

	if *replay {
		pol, err := policyFor(*policy)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := memblade.New(memblade.Config{
			FootprintPages: footprint,
			LocalFraction:  *local,
			Policy:         pol,
			Seed:           *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sink *obs.Sink
		if obsOn {
			sink = obs.NewSink()
			sim.Instrument(sink, *sampleEvery)
			sim.InstrumentSpans(span.NewTracer(sink, *traceEvery))
		}
		start := time.Now()
		st := memblade.Replay(sim, tr)
		wall := time.Since(start)
		fmt.Printf("replay: local %.3g (%d pages, %s): miss rate %.2f%%, %.2f misses/request, %d writebacks\n",
			*local, sim.Capacity(), pol, st.MissRate()*100, st.MissesPerRequest(), st.Writebacks)
		for _, ic := range []memblade.Interconnect{memblade.PCIeX4(), memblade.CBF()} {
			fmt.Printf("  %s stall per request: %.1f us\n",
				ic.Name, st.MissesPerRequest()*ic.StallPerMissSec*1e6)
		}

		if sink != nil {
			// The replay's time axis is the access count, so the manifest
			// reports accesses in SimTimeSec's role and hit/miss streams
			// export exactly like the cluster path's request streams.
			man := obs.NewManifest(*wl, "memblade", *seed)
			man.Config["local_fraction"] = strconv.FormatFloat(*local, 'g', -1, 64)
			man.Config["policy"] = pol.String()
			man.Config["footprint_pages"] = strconv.FormatInt(footprint, 10)
			man.Config["trace_every"] = strconv.FormatInt(*traceEvery, 10)
			man.SimTimeSec = float64(st.Accesses)
			man.WallSec = wall.Seconds()
			sink.SetManifest(man)

			out := obsFlags.Path()
			if err := sink.WriteFile(out); err != nil {
				log.Fatal(err)
			}
			log.Printf("obs: wrote %s (%d events) in %.2fs wall", out, len(sink.Events()), wall.Seconds())
			if *traceOut != "" {
				if err := span.WriteTraceFile(*traceOut, sink); err != nil {
					log.Fatal(err)
				}
				log.Printf("trace: wrote %s (time axis = access index; load it at ui.perfetto.dev)", *traceOut)
			}
		}
	}
}
