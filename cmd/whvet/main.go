// Command whvet runs the repo's static-invariant analyzer suite
// (internal/analysis) over the given package patterns and exits
// non-zero when any finding survives //whvet:allow suppression.
//
//	whvet ./...                  # the make lint invocation
//	whvet -checks nodeterm ./internal/des/...
//	whvet -json ./...            # machine-readable findings
//
// The five checks and their invariants are documented in DESIGN.md
// §11; `whvet -list` prints the registry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"warehousesim/internal/analysis"
	"warehousesim/internal/analysis/checks"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as JSON (schema warehousesim-whvet/v1) instead of text")
		checkList = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list      = flag.Bool("list", false, "list the registered checks and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: whvet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Static enforcement of the repo's determinism, allocation and link-boundary\ninvariants. Packages default to ./...\n\nChecks:\n")
		for _, a := range checks.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range checks.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := checks.ByName(*checkList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whvet:", err)
		os.Exit(2)
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whvet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(analysis.Options{
		Dir:       dir,
		Patterns:  flag.Args(),
		Analyzers: selected,
		// Directive validation always knows the full registry, so
		// running a subset never misreports valid directives for the
		// other checks.
		KnownChecks: checks.Names(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whvet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := struct {
			Schema   string             `json:"schema"`
			Findings []analysis.Finding `json:"findings"`
		}{Schema: "warehousesim-whvet/v1", Findings: findings}
		if out.Findings == nil {
			out.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "whvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) == 0 {
			fmt.Printf("whvet: %d checks clean\n", len(selected))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
