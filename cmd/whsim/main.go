// Command whsim evaluates a single (design, workload) pair and prints
// the operating point: sustained performance under QoS, latency,
// per-station utilization, and the cost metrics.
//
// Usage:
//
//	whsim -system emb1 -workload websearch
//	whsim -system N2 -workload ytube
//	whsim -system desk -workload webmail -des   # discrete-event run
//	whsim -system emb1 -workload websearch -des -obs -obs-out run.jsonl
//	whsim -system emb1 -workload websearch -des -trace-out run.trace.json -attr-out attr.csv
//	whsim -system emb1 -workload websearch -des -energy-window 1s -energy-out energy.jsonl
//	whsim -system emb1 -workload websearch -des -obs -http :6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"time"

	"warehousesim/internal/cluster"
	"warehousesim/internal/cooling"
	"warehousesim/internal/core"
	"warehousesim/internal/core/cliflags"
	"warehousesim/internal/des/shard"
	"warehousesim/internal/metrics"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	//whvet:allow nohttp whsim opts into the HTTP stack for the -http live-introspection endpoint; the cost is paid only by this binary
	"warehousesim/internal/obs/introspect"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/workload"
)

// schemaShards versions the /obs/shards live document.
const schemaShards = "warehousesim-shards/v1"

// shardsDoc is the /obs/shards snapshot: the shard engine's live
// wall-clock counters. Flat runs serve it with Shards 0 and no stats,
// so a poller can tell "flat model" from "not published yet" (503).
type shardsDoc struct {
	Schema       string            `json:"schema"`
	Phase        string            `json:"phase"`
	Shards       int               `json:"shards"`
	LookaheadSec float64           `json:"lookahead_sec"`
	Stats        []shard.LiveStats `json:"stats"`
}

func liveShardStats(live cluster.LiveHandles) []shard.LiveStats {
	if live.ShardStats == nil {
		return []shard.LiveStats{}
	}
	return live.ShardStats()
}

// placementInfo renders the run's placement for the manifest: the
// strategy name and the enclosure-to-shard assignment (enclosure e
// went to shard assignment[e]). It normalizes the options the same way
// Simulate does, so the recorded packing is exactly the one the run
// used, and the assignment is a pure function of the topology
// (PlacementOf) — the manifest alone reproduces it.
func placementInfo(opt cluster.SimOptions) (strategy, assignment string) {
	n, err := opt.Normalize()
	if err != nil {
		return "", ""
	}
	t := rackTopoOf(n.Topology)
	if t == nil {
		return "", ""
	}
	asn := t.PlacementOf()
	parts := make([]string, len(asn))
	for e, s := range asn {
		parts[e] = strconv.Itoa(s)
	}
	return t.Placement, strings.Join(parts, ",")
}

// rackTopoOf returns the per-rack topology behind a Topology value: the
// rack itself, or a fleet's rack template (which every rack in the
// fleet instantiates). Nil for the flat model.
func rackTopoOf(t cluster.Topology) *cluster.ShardedTopology {
	switch v := t.(type) {
	case *cluster.ShardedTopology:
		return v
	case *cluster.FleetTopology:
		return &v.Rack
	}
	return nil
}

// boardList renders a heterogeneous rack's per-enclosure board counts
// as the comma list -boards accepts, "" for a uniform rack.
func boardList(boards []int) string {
	if len(boards) == 0 {
		return ""
	}
	parts := make([]string, len(boards))
	for i, b := range boards {
		parts[i] = strconv.Itoa(b)
	}
	return strings.Join(parts, ",")
}

func designByName(name string) (core.Design, error) {
	switch name {
	case "N1":
		return core.NewN1(), nil
	case "N2":
		return core.NewN2(), nil
	}
	if s, ok := platform.ByName(name); ok {
		return core.BaselineDesign(s), nil
	}
	names := []string{"N1", "N2"}
	for _, s := range platform.All() {
		names = append(names, s.Name)
	}
	return core.Design{}, fmt.Errorf("unknown system %q (known: %s)", name, strings.Join(names, ", "))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("whsim: ")
	system := flag.String("system", "srvr1", "platform or unified design (srvr1..emb2, N1, N2)")
	wl := flag.String("workload", "websearch", "benchmark name")
	useDES := flag.Bool("des", false, "run the discrete-event simulation instead of the analytic solver")
	seed := flag.Uint64("seed", 1, "simulation seed (DES only)")
	parFlag := cliflags.AddPar(flag.CommandLine, runtime.NumCPU(),
		"worker goroutines for speculative search trials (1 = sequential; results are identical at any value)")
	measure := flag.Float64("measure", 120, "DES measurement window seconds")
	obsFlags := cliflags.AddObs(flag.CommandLine, "observability streams of the DES run (requires -des)", "run.jsonl")
	probeInterval := flag.Float64("probe-interval", 1, "obs timeline sampling interval, simulated seconds")
	traceOut := flag.String("trace-out", "", "write a Perfetto/Chrome trace-event JSON of the run's causal spans here (implies -obs)")
	attrOut := flag.String("attr-out", "", "write the critical-path latency-attribution table as CSV here (implies -obs)")
	traceEvery := flag.Int64("trace-every", 1, "span-sample every Nth request by arrival index (deterministic; 1 = all)")
	sharding := cliflags.AddSharding(flag.CommandLine)
	fleet := cliflags.AddFleet(flag.CommandLine, sharding)
	sloFlags := cliflags.AddSLO(flag.CommandLine)
	energyFlags := cliflags.AddEnergy(flag.CommandLine)
	httpFlag := cliflags.AddHTTP(flag.CommandLine, "/obs snapshot")
	profiles := cliflags.AddProfiles(flag.CommandLine)
	flag.Parse()

	// Flag validation: fail on nonsense, warn on silently-dead flags.
	if err := cliflags.Validate(sharding, fleet, sloFlags, energyFlags); err != nil {
		log.Fatal(err)
	}
	if *measure <= 0 {
		log.Fatalf("-measure must be positive, got %g", *measure)
	}
	par, err := parFlag.Value()
	if err != nil {
		log.Fatal(err)
	}
	tracing := *traceOut != "" || *attrOut != ""
	// Live /obs snapshots are published from the instrumented replay, so a
	// DES run with -http needs a sink even when no export was requested —
	// but only an explicit ask should write an obs file.
	exportObs := obsFlags.Enabled() || tracing
	sloOn := sloFlags.Enabled()
	energyOn := energyFlags.Enabled()
	// The windowed-SLO and energy planes tap the recorder stream, so
	// they need a sink even when no obs export was asked for.
	obsOn := exportObs || sloOn || energyOn
	if !*useDES {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "measure", "probe-interval", "trace-every", "par",
				"shards", "enclosures", "boards", "clients-per-board", "shard-diag",
				"racks", "hot-racks", "hot-set", "balancer":
				log.Printf("warning: -%s has no effect without -des", f.Name)
			}
		})
		if sloOn {
			log.Fatal("-slo-window collects windowed metrics from the discrete-event run; add -des")
		}
		if energyOn {
			log.Fatal("-energy-window derives watts from the discrete-event run; add -des")
		}
		if obsOn {
			log.Fatal("-obs instruments the discrete-event run; add -des")
		}
	}
	if *probeInterval <= 0 {
		log.Fatalf("-probe-interval must be positive, got %g", *probeInterval)
	}
	if *traceEvery < 1 {
		log.Fatalf("-trace-every must be >= 1, got %d", *traceEvery)
	}
	if !tracing {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "trace-every" {
				log.Print("warning: -trace-every has no effect without -trace-out or -attr-out")
			}
		})
	}
	if !sharding.Enabled() && !fleet.Enabled() {
		// -shard-diag without -shards is an error (cliflags.Validate above);
		// the sizing flags merely default and only warrant a warning. With
		// -racks they size the fleet's per-rack template instead.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "enclosures", "boards", "clients-per-board":
				log.Printf("warning: -%s has no effect without -shards or -racks", f.Name)
			}
		})
	}

	intro, bound, err := introspect.ServeAddr(httpFlag.Addr())
	if err != nil {
		log.Fatal(err)
	}
	if intro != nil {
		log.Printf("introspection: serving http://%s (/obs, /obs/windows, /obs/shards, /obs/energy, /debug/pprof) for the process lifetime", bound)
		if *useDES {
			obsOn = true
		}
	}

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	d, err := designByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	p, ok := workload.ProfileByName(*wl)
	if !ok {
		log.Fatalf("unknown workload %q", *wl)
	}

	ev := core.NewEvaluator()
	ms, err := ev.Evaluate(d, []workload.Profile{p})
	if err != nil {
		log.Fatal(err)
	}
	m := ms[0]

	fmt.Printf("system    %s\n", d.Name)
	fmt.Printf("workload  %s\n", p.Name)
	fmt.Printf("perf      %.4g %s (QoS met: %v)\n", m.Perf, m.Unit, m.QoSMet)
	fmt.Printf("power     %.1f W consumed/server\n", m.PowerW)
	fmt.Printf("inf-$     %.0f   p&c-$ %.0f   tco-$ %.0f (per server, 3yr)\n",
		m.InfUSD, m.PCUSD, m.TCOUSD)
	fmt.Printf("perf/W    %.4g   perf/inf-$ %.4g   perf/tco-$ %.4g\n",
		m.Value(metrics.PerfPerWatt), m.Value(metrics.PerfPerInf), m.Value(metrics.PerfPerTCO))

	if *useDES {
		cfg, err := ev.ClusterConfig(d, p)
		if err != nil {
			log.Fatal(err)
		}
		opts := cluster.DefaultSimOptions()
		opts.Seed = *seed
		opts.MeasureSec = *measure
		opts.ProbeIntervalSec = *probeInterval
		opts.Parallelism = par
		// Assign through concrete pointers: storing a typed-nil
		// *ShardedTopology in the Topology interface would defeat the nil
		// check in Simulate (see SimOptions.Topology).
		if ft := fleet.Topology(); ft != nil {
			opts.Topology = ft
		} else if t := sharding.Topology(); t != nil {
			opts.Topology = t
		}
		var diagSink *obs.Sink
		if sharding.DiagOut() != "" && opts.Topology != nil {
			diagSink = obs.NewSink()
			opts.ShardDiag = diagSink
		}

		var sink *obs.Sink
		if obsOn {
			sink = obs.NewSink()
			opts.Obs = sink
			opts.SLOWindowSec = sloFlags.WindowSec()
			if energyOn {
				pb, err := ev.PowerBreakdown(d)
				if err != nil {
					log.Fatal(err)
				}
				opts.Energy = &energy.Config{
					WidthSec: energyFlags.WindowSec(),
					Model:    energy.Model{Active: pb, Idle: power.DefaultIdleFractions()},
				}
			}
			if tracing {
				opts.TraceEvery = *traceEvery
			}
		}
		// OnLive and OnProbeTick both fire on the goroutine driving the
		// instrumented replay, so `live` needs no locking; the HTTP side
		// only ever sees published bytes.
		var live cluster.LiveHandles
		if intro != nil && sink != nil {
			opts.OnLive = func(h cluster.LiveHandles) { live = h }
			horizon := opts.WarmupSec + opts.MeasureSec
			if p.Batch {
				horizon = 0 // open-ended: the job defines its own end
			}
			pub := func(phase string, simNow float64) {
				if b, err := sink.Snapshot(obs.Progress{
					Phase: phase, SimTimeSec: simNow, HorizonSec: horizon,
				}); err == nil {
					intro.Publish(b)
				}
				if len(live.SLO) > 0 {
					if b, err := window.LiveSnapshot(live.SLO); err == nil {
						intro.PublishWindows(b)
					}
				}
				if len(live.Energy) > 0 {
					if b, err := energy.LiveSnapshot(live.Energy); err == nil {
						intro.PublishEnergy(b)
					}
				}
				if b, err := json.Marshal(shardsDoc{
					Schema:       schemaShards,
					Phase:        phase,
					Shards:       live.Shards,
					LookaheadSec: live.LookaheadSec,
					Stats:        liveShardStats(live),
				}); err == nil {
					intro.PublishShards(b)
				}
			}
			// The adaptive search runs uninstrumented (see cluster docs),
			// so live progress covers the instrumented replay.
			pub("search", 0)
			opts.OnProbeTick = func(simNow float64) { pub("replay", simNow) }
			defer func() { pub("done", horizon) }()
		}

		start := time.Now()
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opts)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)

		fmt.Printf("\ndiscrete-event validation:\n")
		fmt.Printf("  throughput %.4g rps with %d clients (QoS met: %v)\n",
			res.Throughput, res.Clients, res.QoSMet)
		if !p.Batch {
			fmt.Printf("  latency mean %.1f ms, p95 %.1f ms\n",
				res.MeanLatency*1e3, res.P95Latency*1e3)
		} else {
			fmt.Printf("  job execution %.1f s\n", res.ExecTime)
		}
		fmt.Printf("  bottleneck %s; utilization cpu %.0f%% disk %.0f%% net %.0f%%\n",
			res.Bottleneck, res.Utilization["cpu"]*100,
			res.Utilization["disk"]*100, res.Utilization["net"]*100)
		if fb := res.Fleet; fb != nil {
			fmt.Printf("  fleet: %d racks (%d hot DES, %d analytic), balancer %s, %.4g rps/rack demand\n",
				fb.Racks, len(fb.HotIDs), fb.Racks-len(fb.HotIDs), fb.Balancer, fb.PerRackDemand)
			if fb.ColdUnserved > 0 {
				fmt.Printf("  fleet: %.4g rps demand unserved (cold racks at capacity)\n", fb.ColdUnserved)
			}
		}

		if res.SLO != nil {
			ws := res.SLO.Windows()
			violating := 0
			for _, w := range ws {
				if w.Violating {
					violating++
				}
			}
			eps := res.SLO.Episodes(res.SLOParts...)
			fmt.Printf("  slo: %d windows of %gs, %d violating, %d episodes, %.2f violation-minutes\n",
				len(ws), opts.SLOWindowSec, violating, len(eps), window.ViolationSec(eps)/60)
			if path := sloFlags.OutPath(); path != "" {
				if err := res.SLO.WriteFile(path, res.SLOParts...); err != nil {
					log.Fatal(err)
				}
				log.Printf("slo: wrote %s (%d windows; byte-identical at any -shards/-par)", path, len(ws))
			}
		}

		if res.Energy != nil {
			t := res.Energy.Totals()
			prop := res.Energy.Proportionality()
			fmt.Printf("  energy: %.0f J over %.0f s (%d windows of %gs); mean %.1f W vs static %.1f W\n",
				t.Joules, t.SpanSec, t.Windows, opts.Energy.WidthSec, t.MeanW, t.StaticW)
			fmt.Printf("  energy: %.2f J/req, %.2f J/good-req, %.4g req/J; proportionality slope %.1f W/util, intercept %.1f W\n",
				t.JoulesPerRequest, t.JoulesPerGoodRequest, t.PerfPerWatt, prop.SlopeWPerUtil, prop.InterceptW)
			if rollup, err := res.Energy.TCO(ev.Cost.PC, cooling.EnclosureFor(d.Enclosure)); err == nil {
				fmt.Printf("  energy tco: %s\n", rollup)
			}
			if path := energyFlags.OutPath(); path != "" {
				if err := res.Energy.WriteFile(path); err != nil {
					log.Fatal(err)
				}
				log.Printf("energy: wrote %s (%d windows; byte-identical at any -shards/-par)", path, t.Windows)
			}
		}

		if diagSink != nil {
			dman := obs.NewManifest(p.Name, d.Name, *seed)
			if rt := rackTopoOf(opts.Topology); rt != nil {
				dman.Config["shards"] = strconv.Itoa(rt.Shards)
			}
			strategy, assignment := placementInfo(opts)
			dman.Config["placement"] = strategy
			dman.Config["placement_assignment"] = assignment
			dman.WallSec = wall.Seconds()
			diagSink.SetManifest(dman)
			if err := diagSink.WriteFile(sharding.DiagOut()); err != nil {
				log.Fatal(err)
			}
			log.Printf("shard-diag: wrote %s (scheduling-dependent; not byte-stable across runs)", sharding.DiagOut())
		}

		if sink != nil {
			man := obs.NewManifest(p.Name, d.Name, *seed)
			man.Config["warmup_sec"] = strconv.FormatFloat(opts.WarmupSec, 'g', -1, 64)
			man.Config["measure_sec"] = strconv.FormatFloat(opts.MeasureSec, 'g', -1, 64)
			man.Config["probe_interval_sec"] = strconv.FormatFloat(*probeInterval, 'g', -1, 64)
			man.Config["max_clients"] = strconv.Itoa(opts.MaxClients)
			man.Config["clients"] = strconv.Itoa(res.Clients)
			if opts.TraceEvery > 0 {
				man.Config["trace_every"] = strconv.FormatInt(opts.TraceEvery, 10)
			}
			// Fleet fields come from the normalized topology so the manifest
			// records the resolved hot set and balancer, not "" defaults.
			if nopts, err := opts.Normalize(); err == nil {
				if ft, ok := nopts.Topology.(*cluster.FleetTopology); ok {
					man.Config["racks"] = strconv.Itoa(ft.Racks)
					man.Config["hot_racks"] = strconv.Itoa(ft.HotRacks)
					if hs := boardList(ft.HotSet); hs != "" {
						man.Config["hot_set"] = hs
					}
					man.Config["balancer"] = ft.Balancer
				}
			}
			if t := rackTopoOf(opts.Topology); t != nil {
				man.Config["shards"] = strconv.Itoa(t.Shards)
				man.Config["enclosures"] = strconv.Itoa(t.Enclosures)
				if bl := boardList(t.Boards); bl != "" {
					man.Config["boards"] = bl
				} else {
					man.Config["boards_per_enclosure"] = strconv.Itoa(t.BoardsPerEnclosure)
				}
				strategy, assignment := placementInfo(opts)
				man.Config["placement"] = strategy
				man.Config["placement_assignment"] = assignment
			}
			if p.Batch {
				man.SimTimeSec = res.ExecTime
			} else {
				man.SimTimeSec = opts.WarmupSec + opts.MeasureSec
			}
			man.SetEvents(sink.CounterValue("des.events"))
			man.WallSec = wall.Seconds()
			sink.SetManifest(man)

			if exportObs {
				out := obsFlags.Path()
				if err := sink.WriteFile(out); err != nil {
					log.Fatal(err)
				}
				// Wall time and wall-clock event throughput go to stderr:
				// the export stays byte-identical across same-seed runs.
				log.Printf("obs: wrote %s (%d series, %d events) in %.2fs wall (%.3g events/wall-sec)",
					out, len(sink.SeriesNames()), len(sink.Events()), wall.Seconds(),
					float64(man.Events)/wall.Seconds())
			}

			if opts.TraceEvery > 0 {
				attr := span.Analyze(sink.Events())
				fmt.Printf("\n%s", attr)
				if *traceOut != "" {
					if err := span.WriteTraceFile(*traceOut, sink); err != nil {
						log.Fatal(err)
					}
					log.Printf("trace: wrote %s (load it at ui.perfetto.dev)", *traceOut)
				}
				if *attrOut != "" {
					if err := attr.WriteCSVFile(*attrOut); err != nil {
						log.Fatal(err)
					}
					log.Printf("trace: wrote attribution table %s", *attrOut)
				}
			}
		}
	}
}
