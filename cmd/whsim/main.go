// Command whsim evaluates a single (design, workload) pair and prints
// the operating point: sustained performance under QoS, latency,
// per-station utilization, and the cost metrics.
//
// Usage:
//
//	whsim -system emb1 -workload websearch
//	whsim -system N2 -workload ytube
//	whsim -system desk -workload webmail -des   # discrete-event run
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"warehousesim/internal/cluster"
	"warehousesim/internal/core"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func designByName(name string) (core.Design, error) {
	switch name {
	case "N1":
		return core.NewN1(), nil
	case "N2":
		return core.NewN2(), nil
	}
	if s, ok := platform.ByName(name); ok {
		return core.BaselineDesign(s), nil
	}
	names := []string{"N1", "N2"}
	for _, s := range platform.All() {
		names = append(names, s.Name)
	}
	return core.Design{}, fmt.Errorf("unknown system %q (known: %s)", name, strings.Join(names, ", "))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("whsim: ")
	system := flag.String("system", "srvr1", "platform or unified design (srvr1..emb2, N1, N2)")
	wl := flag.String("workload", "websearch", "benchmark name")
	useDES := flag.Bool("des", false, "run the discrete-event simulation instead of the analytic solver")
	seed := flag.Uint64("seed", 1, "simulation seed (DES only)")
	measure := flag.Float64("measure", 120, "DES measurement window seconds")
	flag.Parse()

	d, err := designByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	p, ok := workload.ProfileByName(*wl)
	if !ok {
		log.Fatalf("unknown workload %q", *wl)
	}

	ev := core.NewEvaluator()
	ms, err := ev.Evaluate(d, []workload.Profile{p})
	if err != nil {
		log.Fatal(err)
	}
	m := ms[0]

	fmt.Printf("system    %s\n", d.Name)
	fmt.Printf("workload  %s\n", p.Name)
	fmt.Printf("perf      %.4g %s (QoS met: %v)\n", m.Perf, m.Unit, m.QoSMet)
	fmt.Printf("power     %.1f W consumed/server\n", m.PowerW)
	fmt.Printf("inf-$     %.0f   p&c-$ %.0f   tco-$ %.0f (per server, 3yr)\n",
		m.InfUSD, m.PCUSD, m.TCOUSD)
	fmt.Printf("perf/W    %.4g   perf/inf-$ %.4g   perf/tco-$ %.4g\n",
		m.Value(metrics.PerfPerWatt), m.Value(metrics.PerfPerInf), m.Value(metrics.PerfPerTCO))

	if *useDES {
		cfg, err := ev.ClusterConfig(d, p)
		if err != nil {
			log.Fatal(err)
		}
		opts := cluster.DefaultSimOptions()
		opts.Seed = *seed
		opts.MeasureSec = *measure
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndiscrete-event validation:\n")
		fmt.Printf("  throughput %.4g rps with %d clients (QoS met: %v)\n",
			res.Throughput, res.Clients, res.QoSMet)
		if !p.Batch {
			fmt.Printf("  latency mean %.1f ms, p95 %.1f ms\n",
				res.MeanLatency*1e3, res.P95Latency*1e3)
		} else {
			fmt.Printf("  job execution %.1f s\n", res.ExecTime)
		}
		fmt.Printf("  bottleneck %s; utilization cpu %.0f%% disk %.0f%% net %.0f%%\n",
			res.Bottleneck, res.Utilization["cpu"]*100,
			res.Utilization["disk"]*100, res.Utilization["net"]*100)
	}
}
