// Command whcalib fits the workload demand profiles against the paper's
// Figure 2(c) relative-performance matrix and prints the fitted
// constants as Go literals ready to be frozen into
// internal/workload/profiles.go (see DESIGN.md §2, "Calibration").
//
// Usage:
//
//	whcalib [-samples N] [-sweeps N] [-seed S] [-workload name]
package main

import (
	"flag"
	"fmt"
	"log"

	"warehousesim/internal/calib"
	"warehousesim/internal/core/cliflags"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whcalib: ")
	samples := flag.Int("samples", 30000, "random search probes per workload")
	sweeps := flag.Int("sweeps", 400, "coordinate-descent sweeps")
	seed := flag.Uint64("seed", 20080621, "search seed")
	only := flag.String("workload", "", "fit a single workload (default: all)")
	evalOnly := flag.Bool("eval", false, "evaluate the frozen profiles instead of fitting")
	profiles := cliflags.AddProfiles(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	tasks := calib.SuiteTasks()
	if *evalOnly {
		for _, t := range tasks {
			rel, base, err := calib.RelativePerf(t.Template)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("// %s (frozen): srvr1 perf %.4g\n", t.Template.Name, base)
			fmt.Print(calib.FormatComparison(t.Targets, rel))
			fmt.Println()
		}
		return
	}
	if *only != "" {
		t, err := calib.TaskFor(*only)
		if err != nil {
			log.Fatal(err)
		}
		tasks = []calib.Task{t}
	}

	for _, t := range tasks {
		res, err := calib.Fit(t, *samples, *sweeps, *seed)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Profile
		fmt.Printf("// %s: RMSLE %.3f, srvr1 perf %.4g\n", p.Name, res.RMSLE, res.BasePerf)
		fmt.Print(calib.FormatComparison(t.Targets, res.Model))
		fmt.Printf("CPURefSec:         %.4g,\n", p.CPURefSec)
		fmt.Printf("DiskOps:           %.4g,\n", p.DiskOps)
		if t.WriteHeavy {
			fmt.Printf("DiskWriteBytes:    %.4g,\n", p.DiskWriteBytes)
		} else {
			fmt.Printf("DiskReadBytes:     %.4g,\n", p.DiskReadBytes)
		}
		fmt.Printf("NetBytes:          %.4g,\n", p.NetBytes)
		fmt.Printf("CacheWorkingSetMB: %.4g,\n", p.CacheWorkingSetMB)
		fmt.Printf("CacheMissPenalty:  %.4g,\n", p.CacheMissPenalty)
		fmt.Printf("CoreScalingBeta:   %.4g,\n", p.CoreScalingBeta)
		fmt.Println()
	}
}
