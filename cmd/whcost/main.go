// Command whcost explores the cost model: per-server hardware and
// burdened power-and-cooling dollars under adjustable burdening factors,
// electricity tariffs and activity factors (§2.2, Figure 1).
//
// Usage:
//
//	whcost -system srvr2
//	whcost -system emb1 -tariff 170 -af 0.9
//	whcost -system N2
//	whcost -system emb1 -json   # machine-readable breakdown
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"warehousesim/internal/core"
	"warehousesim/internal/core/cliflags"
	"warehousesim/internal/cost"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whcost: ")
	system := flag.String("system", "srvr1", "platform or unified design (srvr1..emb2, N1, N2)")
	tariff := flag.Float64("tariff", 100, "electricity tariff $/MWh (paper range 50-170)")
	k1 := flag.Float64("k1", 1.33, "power-delivery infrastructure factor K1")
	l1 := flag.Float64("l1", 0.8, "cooling electricity ratio L1")
	k2 := flag.Float64("k2", 0.667, "cooling capital factor K2")
	af := flag.Float64("af", power.DefaultActivityFactor, "activity factor (0.5-1.0)")
	years := flag.Float64("years", 3, "depreciation cycle")
	jsonOut := flag.Bool("json", false, "emit the full breakdown as JSON on stdout instead of the table")
	profiles := cliflags.AddProfiles(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	pm, err := power.NewModel(*af)
	if err != nil {
		log.Fatal(err)
	}
	pc := cost.PCParams{K1: *k1, L1: *l1, K2: *k2, TariffUSDPerMWh: *tariff, Years: *years}
	if err := pc.Validate(); err != nil {
		log.Fatal(err)
	}
	model := cost.Model{Power: pm, PC: pc}

	var srv platform.Server
	var rack platform.Rack
	switch *system {
	case "N1", "N2":
		d := core.NewN1()
		if *system == "N2" {
			d = core.NewN2()
		}
		r, err := d.Resolve()
		if err != nil {
			log.Fatal(err)
		}
		srv, rack = r.Server, r.Rack
	default:
		s, ok := platform.ByName(*system)
		if !ok {
			log.Fatalf("unknown system %q", *system)
		}
		srv, rack = s, platform.DefaultRack()
	}

	b := model.ServerBreakdown(srv, rack)
	if *jsonOut {
		pw := pm.ServerConsumed(srv, rack)
		doc := struct {
			Schema string `json:"schema"`
			System string `json:"system"`
			Rack   struct {
				Name           string `json:"name"`
				ServersPerRack int    `json:"servers_per_rack"`
			} `json:"rack"`
			Params struct {
				K1               float64 `json:"k1"`
				L1               float64 `json:"l1"`
				K2               float64 `json:"k2"`
				TariffUSDPerMWh  float64 `json:"tariff_usd_per_mwh"`
				ActivityFactor   float64 `json:"activity_factor"`
				Years            float64 `json:"years"`
				BurdenMultiplier float64 `json:"burden_multiplier"`
			} `json:"params"`
			PowerW struct {
				CPU    float64 `json:"cpu"`
				Memory float64 `json:"memory"`
				Disk   float64 `json:"disk"`
				Board  float64 `json:"board"`
				Fan    float64 `json:"fan"`
				Flash  float64 `json:"flash"`
				Switch float64 `json:"switch"`
				Total  float64 `json:"total"`
			} `json:"power_watts"`
			HardwareUSD     map[string]float64 `json:"hardware_usd"`
			PowerCoolingUSD map[string]float64 `json:"power_cooling_usd"`
			Totals          struct {
				HardwareUSD     float64 `json:"hardware_usd"`
				PowerCoolingUSD float64 `json:"power_cooling_usd"`
				TCOUSD          float64 `json:"tco_usd"`
			} `json:"totals"`
		}{Schema: "warehousesim-cost/v1", System: *system}
		doc.Rack.Name = rack.Name
		doc.Rack.ServersPerRack = rack.ServersPerRack
		doc.Params.K1, doc.Params.L1, doc.Params.K2 = pc.K1, pc.L1, pc.K2
		doc.Params.TariffUSDPerMWh = pc.TariffUSDPerMWh
		doc.Params.ActivityFactor = pm.ActivityFactor
		doc.Params.Years = pc.Years
		doc.Params.BurdenMultiplier = pc.BurdenMultiplier()
		doc.PowerW.CPU, doc.PowerW.Memory, doc.PowerW.Disk = pw.CPUW, pw.MemoryW, pw.DiskW
		doc.PowerW.Board, doc.PowerW.Fan, doc.PowerW.Flash = pw.BoardW, pw.FanW, pw.FlashW
		doc.PowerW.Switch, doc.PowerW.Total = pw.SwitchW, pw.TotalW()
		doc.HardwareUSD = map[string]float64{
			"cpu": b.CPUHW, "memory": b.MemHW, "disk": b.DiskHW, "board": b.BoardHW,
			"fan": b.FanHW, "flash": b.FlashHW, "rack": b.RackHW,
		}
		doc.PowerCoolingUSD = map[string]float64{
			"cpu": b.CPUPC, "memory": b.MemPC, "disk": b.DiskPC, "board": b.BoardPC,
			"fan": b.FanPC, "flash": b.FlashPC, "rack": b.RackPC,
		}
		doc.Totals.HardwareUSD = b.HardwareUSD()
		doc.Totals.PowerCoolingUSD = b.PowerCoolingUSD()
		doc.Totals.TCOUSD = b.TotalUSD()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("system %s in %s (%d servers/rack)\n", *system, rack.Name, rack.ServersPerRack)
	fmt.Printf("burden multiplier %.4f, tariff $%.0f/MWh, AF %.2f, %g years\n\n",
		pc.BurdenMultiplier(), pc.TariffUSDPerMWh, pm.ActivityFactor, pc.Years)
	fmt.Printf("%-12s %10s %14s\n", "component", "hw $", "p&c $")
	rows := []struct {
		name   string
		hw, pc float64
	}{
		{"cpu", b.CPUHW, b.CPUPC},
		{"memory", b.MemHW, b.MemPC},
		{"disk", b.DiskHW, b.DiskPC},
		{"board", b.BoardHW, b.BoardPC},
		{"fans", b.FanHW, b.FanPC},
		{"flash", b.FlashHW, b.FlashPC},
		{"rack share", b.RackHW, b.RackPC},
	}
	for _, row := range rows {
		if row.hw == 0 && row.pc == 0 {
			continue
		}
		fmt.Printf("%-12s %10.2f %14.2f\n", row.name, row.hw, row.pc)
	}
	fmt.Printf("%-12s %10.2f %14.2f\n", "TOTAL", b.HardwareUSD(), b.PowerCoolingUSD())
	fmt.Printf("\nTCO per server: $%.0f over %g years\n", b.TotalUSD(), pc.Years)

	fr := b.Fractions()
	fmt.Printf("\nlargest shares: ")
	printed := 0
	for _, k := range metrics.SortedKeys(fr) {
		if fr[k] >= 0.15 {
			fmt.Printf("%s %.0f%%  ", k, fr[k]*100)
			printed++
		}
	}
	if printed == 0 {
		fmt.Printf("(none above 15%%)")
	}
	fmt.Println()
}
