// Command whcost explores the cost model: per-server hardware and
// burdened power-and-cooling dollars under adjustable burdening factors,
// electricity tariffs and activity factors (§2.2, Figure 1).
//
// Usage:
//
//	whcost -system srvr2
//	whcost -system emb1 -tariff 170 -af 0.9
//	whcost -system N2
package main

import (
	"flag"
	"fmt"
	"log"

	"warehousesim/internal/core"
	"warehousesim/internal/core/cliflags"
	"warehousesim/internal/cost"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whcost: ")
	system := flag.String("system", "srvr1", "platform or unified design (srvr1..emb2, N1, N2)")
	tariff := flag.Float64("tariff", 100, "electricity tariff $/MWh (paper range 50-170)")
	k1 := flag.Float64("k1", 1.33, "power-delivery infrastructure factor K1")
	l1 := flag.Float64("l1", 0.8, "cooling electricity ratio L1")
	k2 := flag.Float64("k2", 0.667, "cooling capital factor K2")
	af := flag.Float64("af", power.DefaultActivityFactor, "activity factor (0.5-1.0)")
	years := flag.Float64("years", 3, "depreciation cycle")
	profiles := cliflags.AddProfiles(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	pm, err := power.NewModel(*af)
	if err != nil {
		log.Fatal(err)
	}
	pc := cost.PCParams{K1: *k1, L1: *l1, K2: *k2, TariffUSDPerMWh: *tariff, Years: *years}
	if err := pc.Validate(); err != nil {
		log.Fatal(err)
	}
	model := cost.Model{Power: pm, PC: pc}

	var srv platform.Server
	var rack platform.Rack
	switch *system {
	case "N1", "N2":
		d := core.NewN1()
		if *system == "N2" {
			d = core.NewN2()
		}
		r, err := d.Resolve()
		if err != nil {
			log.Fatal(err)
		}
		srv, rack = r.Server, r.Rack
	default:
		s, ok := platform.ByName(*system)
		if !ok {
			log.Fatalf("unknown system %q", *system)
		}
		srv, rack = s, platform.DefaultRack()
	}

	b := model.ServerBreakdown(srv, rack)
	fmt.Printf("system %s in %s (%d servers/rack)\n", *system, rack.Name, rack.ServersPerRack)
	fmt.Printf("burden multiplier %.4f, tariff $%.0f/MWh, AF %.2f, %g years\n\n",
		pc.BurdenMultiplier(), pc.TariffUSDPerMWh, pm.ActivityFactor, pc.Years)
	fmt.Printf("%-12s %10s %14s\n", "component", "hw $", "p&c $")
	rows := []struct {
		name   string
		hw, pc float64
	}{
		{"cpu", b.CPUHW, b.CPUPC},
		{"memory", b.MemHW, b.MemPC},
		{"disk", b.DiskHW, b.DiskPC},
		{"board", b.BoardHW, b.BoardPC},
		{"fans", b.FanHW, b.FanPC},
		{"flash", b.FlashHW, b.FlashPC},
		{"rack share", b.RackHW, b.RackPC},
	}
	for _, row := range rows {
		if row.hw == 0 && row.pc == 0 {
			continue
		}
		fmt.Printf("%-12s %10.2f %14.2f\n", row.name, row.hw, row.pc)
	}
	fmt.Printf("%-12s %10.2f %14.2f\n", "TOTAL", b.HardwareUSD(), b.PowerCoolingUSD())
	fmt.Printf("\nTCO per server: $%.0f over %g years\n", b.TotalUSD(), pc.Years)

	fr := b.Fractions()
	fmt.Printf("\nlargest shares: ")
	printed := 0
	for _, k := range metrics.SortedKeys(fr) {
		if fr[k] >= 0.15 {
			fmt.Printf("%s %.0f%%  ", k, fr[k]*100)
			printed++
		}
	}
	if printed == 0 {
		fmt.Printf("(none above 15%%)")
	}
	fmt.Println()
}
