package experiments

import (
	"warehousesim/internal/cooling"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
)

func init() {
	register("fig3", "Figure 3 — packaging/cooling architectures", runFig3)
	register("rackpower", "§3.2 — rack power comparison", runRackPower)
}

func runFig3() (Report, error) {
	r := Report{ID: "fig3", Title: "Figure 3 — packaging/cooling architectures"}
	r.addf("%-28s %10s %12s %14s", "design", "efficiency", "paper claim", "systems/rack")
	claims := map[cooling.Design]string{
		cooling.Conventional:         "1.0x (base)",
		cooling.DualEntry:            "~2x",
		cooling.AggregatedMicroblade: "~4x",
	}
	// Densities at the representative server power for each design:
	// srvr-class 1U boxes, 75W mobile blades, emb-class microblades.
	powerFor := map[cooling.Design]float64{
		cooling.Conventional:         340,
		cooling.DualEntry:            75,
		cooling.AggregatedMicroblade: 30,
	}
	for _, d := range []cooling.Design{cooling.Conventional, cooling.DualEntry, cooling.AggregatedMicroblade} {
		e := cooling.EnclosureFor(d)
		r.addf("%-28s %10s %12s %14d", d, ratioX(e.EfficiencyVsConventional()),
			claims[d], e.Density(powerFor[d]))
	}
	r.addf("")
	r.addf("fan power needed per system (airflow model):")
	r.addf("%-28s %10s %10s %10s", "design", "340W IT", "75W IT", "30W IT")
	for _, d := range []cooling.Design{cooling.Conventional, cooling.DualEntry, cooling.AggregatedMicroblade} {
		e := cooling.EnclosureFor(d)
		r.addf("%-28s %9.1fW %9.2fW %9.2fW", d, e.FanPowerW(340), e.FanPowerW(75), e.FanPowerW(30))
	}
	return r, nil
}

func runRackPower() (Report, error) {
	r := Report{ID: "rackpower", Title: "§3.2 — rack power comparison"}
	rack := platform.DefaultRack()
	srvr1 := power.RackNameplateW(platform.Srvr1(), rack)
	emb1 := power.RackNameplateW(platform.Emb1(), rack)
	r.addf("42U rack of 40 servers (nameplate):")
	r.addf("  srvr1: %5.1f kW   (paper: 13.6 kW)", srvr1/1e3)
	r.addf("  emb1:  %5.1f kW   (paper:  2.7 kW)", emb1/1e3)
	r.addf("  ratio: %.1fx less power for emb1", srvr1/emb1)
	return r, nil
}
