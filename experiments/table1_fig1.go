package experiments

import (
	"warehousesim/internal/cost"
	"warehousesim/internal/metrics"
	"warehousesim/internal/paper"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func init() {
	register("table1", "Table 1 — benchmark suite summary", runTable1)
	register("fig1", "Figure 1 — cost model and breakdowns (srvr1/srvr2)", runFig1)
	register("table2", "Table 2 — the six platforms (Watt, Inf-$)", runTable2)
	register("fig2ab", "Figure 2(a,b) — per-platform $ breakdowns", runFig2ab)
}

func runTable1() (Report, error) {
	r := Report{ID: "table1", Title: "Table 1 — benchmark suite summary"}
	r.addf("%-10s %-9s %-7s %-10s %-8s %s", "workload", "class", "perf", "QoS", "think", "job")
	for _, p := range workload.SuiteProfiles() {
		perf := "RPS w/ QoS"
		qos := "-"
		job := "-"
		if p.Batch {
			perf = "exec time"
			job = itoa(p.JobRequests) + " tasks"
		}
		if p.QoSLatencySec > 0 {
			qos = pct(p.QoSPercentile) + " < " + fseconds(p.QoSLatencySec)
		}
		r.addf("%-10s %-9s %-7s %-10s %-8s %s", p.Name, p.Class, perf, qos, fseconds(p.ThinkTimeSec), job)
	}
	r.addf("")
	r.addf("engines: websearch=inverted index (BM25, 25%% terms cached);")
	r.addf("         webmail=mailbox store + LoadSim-style sessions;")
	r.addf("         ytube=Zipf video catalog, chunked streaming;")
	r.addf("         mapreduce=MapReduce runtime over replicated DFS (wc & write)")
	return r, nil
}

func runFig1() (Report, error) {
	r := Report{ID: "fig1", Title: "Figure 1 — cost model and breakdowns (srvr1/srvr2)"}
	m := cost.DefaultModel()
	rack := platform.DefaultRack()
	r.addf("%-8s %12s %12s %12s %10s", "system", "per-srvr HW$", "3yr P&C $", "total $", "paper tot")
	for _, s := range []platform.Server{platform.Srvr1(), platform.Srvr2()} {
		inf, pc, tot := m.ServerTCO(s, rack)
		r.addf("%-8s %12.0f %12.0f %12.0f %10.0f (paper P&C %0.f)",
			s.Name, inf, pc, tot, paper.Figure1TotalUSD[s.Name], paper.Figure1PCUSD[s.Name])
	}
	r.addf("")
	r.addf("burden multiplier (1+K1+L1*(1+K2)) = %.4f; tariff $%.0f/MWh; AF %.2f",
		m.PC.BurdenMultiplier(), m.PC.TariffUSDPerMWh, m.Power.ActivityFactor)
	r.addf("")
	r.addf("srvr2 cost breakdown (Figure 1b):")
	b := m.ServerBreakdown(platform.Srvr2(), rack)
	fr := b.Fractions()
	for _, k := range metrics.SortedKeys(fr) {
		if fr[k] < 0.005 {
			continue
		}
		r.addf("  %-10s %s", k, pct(fr[k]))
	}
	return r, nil
}

func runTable2() (Report, error) {
	r := Report{ID: "table2", Title: "Table 2 — the six platforms (Watt, Inf-$)"}
	m := cost.DefaultModel()
	rack := platform.DefaultRack()
	r.addf("%-7s %6s %10s %8s %10s  %s", "system", "watt", "paper W", "inf-$", "paper $", "config")
	for _, s := range platform.All() {
		inf, _, _ := m.ServerTCO(s, rack)
		pipeline := "OoO"
		if !s.CPU.OutOfOrder {
			pipeline = "in-order"
		}
		r.addf("%-7s %6.0f %10.0f %8.0f %10.0f  %dp x %d @ %.1fGHz %s, %gMB L2",
			s.Name, s.MaxPowerW(), paper.Table2Watt[s.Name],
			inf, paper.Table2InfUSD[s.Name],
			s.CPU.Sockets, s.CPU.CoresPerSocket, s.CPU.FreqGHz, pipeline, s.CPU.L2MB)
	}
	return r, nil
}

func runFig2ab() (Report, error) {
	r := Report{ID: "fig2ab", Title: "Figure 2(a,b) — per-platform $ breakdowns"}
	m := cost.DefaultModel()
	rack := platform.DefaultRack()
	r.addf("infrastructure-$ shares per server:")
	r.addf("%-7s %6s %6s %6s %6s %6s %6s", "system", "cpu", "mem", "disk", "board", "fans", "rack")
	for _, s := range platform.All() {
		b := m.ServerBreakdown(s, rack)
		hw := b.HardwareUSD()
		r.addf("%-7s %6s %6s %6s %6s %6s %6s", s.Name,
			pct(b.CPUHW/hw), pct(b.MemHW/hw), pct(b.DiskHW/hw),
			pct(b.BoardHW/hw), pct(b.FanHW/hw), pct(b.RackHW/hw))
	}
	r.addf("")
	r.addf("burdened P&C-$ shares per server:")
	r.addf("%-7s %6s %6s %6s %6s %6s %6s", "system", "cpu", "mem", "disk", "board", "fans", "rack")
	for _, s := range platform.All() {
		b := m.ServerBreakdown(s, rack)
		pc := b.PowerCoolingUSD()
		r.addf("%-7s %6s %6s %6s %6s %6s %6s", s.Name,
			pct(b.CPUPC/pc), pct(b.MemPC/pc), pct(b.DiskPC/pc),
			pct(b.BoardPC/pc), pct(b.FanPC/pc), pct(b.RackPC/pc))
	}
	return r, nil
}

func itoa(v int) string { return fmtInt(v) }
