package experiments

import (
	"warehousesim/internal/cluster"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
	"warehousesim/internal/workload/mapreduce"
	"warehousesim/internal/workload/webmail"
	"warehousesim/internal/workload/websearch"
	"warehousesim/internal/workload/ytube"
)

func init() {
	register("validate", "Methodology — DES vs analytic cross-validation", runValidate)
}

// validationGenerator builds a right-sized engine for DES validation.
func validationGenerator(p workload.Profile) (workload.Generator, error) {
	switch p.Class {
	case workload.Websearch:
		cfg := websearch.Config{NumDocs: 3000, VocabSize: 5000, MeanDocLen: 80,
			CorpusZipfS: 1.0, QueryZipfS: 0.9, CachedTermFraction: 0.25, Seed: 2}
		return websearch.New(cfg, p)
	case workload.Webmail:
		cfg := webmail.Config{Users: 200, InitialMessages: 15, MaxMessagesPerFolder: 60,
			AttachmentProb: 0.25, Seed: 2}
		return webmail.New(cfg, p)
	case workload.Ytube:
		cfg := ytube.DefaultConfig()
		cfg.Videos = 3000
		cfg.Seed = 2
		return ytube.New(cfg, p)
	case workload.MapReduceWC:
		cfg := mapreduce.DefaultCorpusConfig()
		cfg.TotalBytes = 2 << 20
		cfg.Seed = 2
		pp := p
		pp.JobRequests = 400
		return mapreduce.NewWordCount(cfg, pp)
	case workload.MapReduceWR:
		cfg := mapreduce.DefaultCorpusConfig()
		cfg.Seed = 2
		pp := p
		pp.JobRequests = 400
		return mapreduce.NewWrite(cfg, 64, pp)
	default:
		return workload.FixedGenerator{P: p}, nil
	}
}

// runValidate cross-checks the analytic solver (used by every headline
// experiment) against the discrete-event simulation driven by the REAL
// workload engines — the two-path methodology DESIGN.md §5 commits to.
func runValidate() (Report, error) {
	r := Report{ID: "validate", Title: "Methodology — DES vs analytic cross-validation"}
	opts := cluster.SimOptions{Seed: 7, WarmupSec: 10, MeasureSec: 60, MaxClients: 4096}
	platforms := []platform.Server{platform.Srvr2(), platform.Desk(), platform.Emb1()}

	r.addf("sustained perf: engine-driven DES / analytic solver (ratio);")
	r.addf("batch rows compare job execution time (inverse):")
	hdr := pad("", 11)
	for _, s := range platforms {
		hdr += pad(s.Name, 24)
	}
	r.Lines = append(r.Lines, hdr)

	// Every (profile, platform) cell is self-contained — fresh generator,
	// fresh Sim, fixed seed — so the grid fans across the sweep engine's
	// workers and merges in cell order (byte-identical to sequential).
	profiles := workload.SuiteProfiles()
	type cellResult struct {
		text string
		err  error
	}
	cells := make([]cellResult, len(profiles)*len(platforms))
	runCells(SweepParallelism(), len(cells), func(i int) {
		prof := profiles[i/len(platforms)]
		if prof.Batch {
			prof.JobRequests = 400 // keep DES runs short; ratio is scale-free
		}
		cfg := cluster.Config{Server: platforms[i%len(platforms)]}
		ana, err := cfg.Analyze(prof)
		if err != nil {
			cells[i].err = err
			return
		}
		gen, err := validationGenerator(prof)
		if err != nil {
			cells[i].err = err
			return
		}
		sim, err := cfg.Simulate(gen, opts)
		if err != nil {
			cells[i].err = err
			return
		}
		cell := ratioX(sim.Perf / ana.Perf)
		if sim.QoSMet != ana.QoSMet {
			cell += " *"
		}
		cells[i].text = cell
	})
	for pi, p := range profiles {
		row := pad(p.Name, 11)
		for si := range platforms {
			c := cells[pi*len(platforms)+si]
			if c.err != nil {
				return Report{}, c.err
			}
			row += pad(c.text, 24)
		}
		r.Lines = append(r.Lines, row)
	}
	r.addf("")
	r.addf("ratios near 1.0x validate the open-network approximation.")
	r.addf("* = the two paths disagree on QoS feasibility: these cells sit on")
	r.addf("the QoS knife edge, where the engines' heavier-than-exponential")
	r.addf("tails (attachment fetches, mailbox searches) force the adaptive")
	r.addf("driver to back off far earlier than the M/M/m model predicts —")
	r.addf("the paper's own caveat that QoS constraints punish slow platforms.")
	return r, nil
}
