package experiments

import (
	"warehousesim/internal/core"
	"warehousesim/internal/metrics"
	"warehousesim/internal/paper"
)

func init() {
	register("fig2c", "Figure 2(c) — Perf / Perf-per-$ / Perf-per-W matrix", runFig2c)
}

// paperFig2cBlock returns the published block for one metric.
func paperFig2cBlock(k metrics.Metric) map[string]map[string]float64 {
	switch k {
	case metrics.Perf:
		return paper.Figure2cPerf
	case metrics.PerfPerInf:
		return paper.Figure2cPerfPerInf
	case metrics.PerfPerWatt:
		return paper.Figure2cPerfPerW
	case metrics.PerfPerTCO:
		return paper.Figure2cPerfPerTCO
	default:
		return nil
	}
}

func runFig2c() (Report, error) {
	r := Report{ID: "fig2c", Title: "Figure 2(c) — Perf / Perf-per-$ / Perf-per-W matrix"}
	ev := core.NewEvaluator()
	tbl, err := ev.EvaluateSuite(core.AllBaselines())
	if err != nil {
		return Report{}, err
	}

	systems := []string{"srvr2", "desk", "mobl", "emb1", "emb2"}
	for _, k := range []metrics.Metric{metrics.Perf, metrics.PerfPerInf, metrics.PerfPerWatt, metrics.PerfPerTCO} {
		rel := tbl.Relative(k, "srvr1")
		pub := paperFig2cBlock(k)
		r.addf("%s (relative to srvr1; model / paper):", k)
		for _, w := range paper.Workloads {
			row := "  " + pad(w, 10)
			for _, s := range systems {
				row += pad(pct(rel[w][s])+"/"+pct(pub[w][s]), 11)
			}
			r.Lines = append(r.Lines, row)
		}
		hm := tbl.HMeanRelative(k, "srvr1")
		pubHM := paper.Figure2cHMean[k.String()]
		row := "  " + pad("HMean", 10)
		for _, s := range systems {
			row += pad(pct(hm[s])+"/"+pct(pubHM[s]), 11)
		}
		r.Lines = append(r.Lines, row)
		hdr := "  " + pad("", 10)
		for _, s := range systems {
			hdr += pad(s, 11)
		}
		r.Lines = append(r.Lines, hdr)
		r.addf("")
	}
	return r, nil
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}
