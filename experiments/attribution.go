package experiments

import (
	"fmt"

	"warehousesim/internal/cluster"
	"warehousesim/internal/core"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-critpath", "Extension — critical-path latency attribution from causal spans", runExtCritpath)
}

// runExtCritpath traces every request of a short DES run per
// (design, workload) pair and reduces the span trees to the
// queue/service/remote-memory/disk attribution table — the span-layer
// answer to "where does a request's time go on this design". The
// remote-memory column makes the §3.4 trade visible end to end: the
// memory-blade designs (N2) trade cpu-service time for blade-swap
// stalls, which the analytic solver folds into a scalar slowdown but
// the spans keep attributable.
func runExtCritpath() (Report, error) {
	r := Report{ID: "ext-critpath", Title: "Extension — critical-path latency attribution from causal spans"}
	designs := []core.Design{
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN2(),
	}
	profiles := []workload.Profile{
		workload.WebsearchProfile(),
		workload.WebmailProfile(),
		workload.YtubeProfile(),
	}
	ev := core.NewEvaluator()

	r.addf("share of traced request time per category (every request of a")
	r.addf("seed-9 DES run; shares of one row sum to 100%%):")
	r.addf("")
	r.addf("%-11s %-10s %8s %9s %13s %6s %10s", "design", "workload",
		"queue", "service", "remote-mem", "disk", "p95-ms")

	for _, d := range designs {
		for _, p := range profiles {
			cfg, err := ev.ClusterConfig(d, p)
			if err != nil {
				return Report{}, err
			}
			sink := obs.NewSink()
			opts := cluster.SimOptions{
				Seed: 9, WarmupSec: 5, MeasureSec: 30, MaxClients: 512,
				Obs: sink, TraceEvery: 1,
			}
			res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opts)
			if err != nil {
				return Report{}, err
			}
			attr := span.Analyze(sink.Events())
			if attr.Requests == 0 {
				return Report{}, fmt.Errorf("ext-critpath: %s/%s traced no completed requests", d.Name, p.Name)
			}
			shares := map[string]float64{}
			for _, row := range attr.Rows {
				shares[row.Category] = row.Share
			}
			r.addf("%-11s %-10s %7.1f%% %8.1f%% %12.1f%% %5.1f%% %10.2f",
				d.Name, p.Name,
				shares[span.CatQueue]*100, shares[span.CatService]*100,
				shares[span.CatRemoteMem]*100, shares[span.CatDisk]*100,
				res.P95Latency*1e3)
		}
	}
	r.addf("")
	r.addf("reading: queue share rises as the adaptive driver loads a design")
	r.addf("to its QoS edge; N2's remote-mem column is the memory-blade swap")
	r.addf("stall the blade designs accept in exchange for cheaper DRAM.")
	return r, nil
}
