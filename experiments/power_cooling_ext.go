package experiments

import (
	"warehousesim/internal/cooling"
	"warehousesim/internal/core"
	"warehousesim/internal/diurnal"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
)

func init() {
	register("abl-coolingcredit", "Ablation — room-cooling credit for new enclosures", runAblCoolingCredit)
	register("ext-powerprov", "Extension — power provisioning headroom (after Fan et al.)", runExtPowerProv)
}

// runAblCoolingCredit turns on the second-order CRAC credit: directed
// airflow returns warmer exhaust, so room-level cooling (the L1/K2
// burdening factors) does less work per IT watt. The paper holds K1/L1/K2
// fixed; this ablation bounds what that conservatism leaves on the table.
func runAblCoolingCredit() (Report, error) {
	r := Report{ID: "abl-coolingcredit", Title: "Ablation — room-cooling credit for new enclosures"}
	r.addf("room-cooling factors (L1,K2 multipliers): dual-entry %.2f, aggregated %.2f",
		cooling.EnclosureFor(cooling.DualEntry).RoomCoolingFactor(),
		cooling.EnclosureFor(cooling.AggregatedMicroblade).RoomCoolingFactor())
	r.addf("")
	r.addf("Perf/TCO-$ hmean vs srvr1:")
	r.addf("%-24s %8s %8s", "model", "N1", "N2")
	for _, credit := range []bool{false, true} {
		ev := core.NewEvaluator()
		ev.EnclosureCoolingCredit = credit
		tbl, err := ev.EvaluateSuite([]core.Design{
			core.BaselineDesign(platform.Srvr1()), core.NewN1(), core.NewN2(),
		})
		if err != nil {
			return Report{}, err
		}
		hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
		label := "paper (fixed K1/L1/K2)"
		if credit {
			label = "with CRAC credit"
		}
		r.addf("%-24s %8s %8s", label, ratioX(hm["N1"]), ratioX(hm["N2"]))
	}
	return r, nil
}

// runExtPowerProv applies Fan et al.'s power-provisioning insight (the
// paper's reference [11]) to the platform catalog: datacenters
// provisioned by nameplate power strand capacity that activity-factored
// and diurnal-average consumption would let them use.
func runExtPowerProv() (Report, error) {
	r := Report{ID: "ext-powerprov", Title: "Extension — power provisioning headroom (after Fan et al.)"}
	const budgetKW = 500.0
	curve := diurnal.TypicalInternet()
	pm := core.NewEvaluator().Cost.Power
	rack := platform.DefaultRack()

	r.addf("servers a %.0f kW datacenter can host, by provisioning basis", budgetKW)
	r.addf("(diurnal mean uses each platform's BoM-derived idle power):")
	r.addf("%-8s %12s %14s %14s %12s", "system", "nameplate", "activity 0.75", "diurnal mean", "headroom")
	for _, s := range platform.All() {
		nameplate := s.MaxPowerW() + rack.SwitchPowerPerServerW()
		consumed := pm.ServerConsumed(s, rack)
		peak := consumed.TotalW()
		// CPU power collapses at idle; the rest of the board does not —
		// the same energy-proportionality model as ext-diurnal.
		sp := diurnal.ServerPower{IdleW: peak - 0.8*consumed.CPUW, PeakW: peak}
		meanW := 0.0
		for _, load := range curve {
			meanW += sp.At(load)
		}
		meanW /= 24
		nByName := int(budgetKW * 1e3 / nameplate)
		nByAF := int(budgetKW * 1e3 / peak)
		nByDiurnal := int(budgetKW * 1e3 / meanW)
		r.addf("%-8s %12d %14d %14d %11.0f%%", s.Name,
			nByName, nByAF, nByDiurnal,
			100*(float64(nByDiurnal)/float64(nByName)-1))
	}
	r.addf("")
	r.addf("(oversubscribing toward the diurnal mean hosts 38-55%% more servers")
	r.addf(" in the same envelope — most for CPU-dominated platforms, whose")
	r.addf(" consumption swings hardest; ensemble power capping is the safety")
	r.addf(" net, per Fan et al.)")
	return r, nil
}
