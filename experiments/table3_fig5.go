package experiments

import (
	"warehousesim/internal/core"
	"warehousesim/internal/metrics"
	"warehousesim/internal/paper"
	"warehousesim/internal/platform"
)

func init() {
	register("table3", "Table 3 — low-power disks with flash disk caches", runTable3)
	register("fig5", "Figure 5 — unified designs N1/N2 vs srvr1", runFig5)
	register("fig5alt", "§3.6 — N1/N2 vs srvr2 and desk baselines", runFig5Alt)
}

func runTable3() (Report, error) {
	r := Report{ID: "table3", Title: "Table 3 — low-power disks with flash disk caches"}
	ev := core.NewEvaluator()

	base := core.BaselineDesign(platform.Emb1())
	variants := []core.Design{base}
	for _, k := range []core.StorageKind{
		core.RemoteLaptopStorage, core.RemoteLaptopFlashStorage, core.RemoteLaptop2FlashStorage,
	} {
		d := base
		d.Name = k.String()
		d.Storage = k
		variants = append(variants, d)
	}
	tbl, err := ev.EvaluateSuite(variants)
	if err != nil {
		return Report{}, err
	}

	r.addf("emb1 with alternate disk subsystems, suite harmonic means")
	r.addf("relative to the local desktop disk (model / paper):")
	r.addf("%-22s %14s %14s %14s", "disk subsystem", "Perf/Inf-$", "Perf/W", "Perf/TCO-$")
	for _, d := range variants[1:] {
		hmI := tbl.HMeanRelative(metrics.PerfPerInf, "emb1")[d.Name]
		hmW := tbl.HMeanRelative(metrics.PerfPerWatt, "emb1")[d.Name]
		hmT := tbl.HMeanRelative(metrics.PerfPerTCO, "emb1")[d.Name]
		pub := paper.Table3b[d.Name]
		r.addf("%-22s %6s/%-6s %6s/%-6s %6s/%-6s", d.Name,
			pct(hmI), pct(pub["Perf/Inf-$"]),
			pct(hmW), pct(pub["Perf/W"]),
			pct(hmT), pct(pub["Perf/TCO-$"]))
	}
	r.addf("")
	r.addf("per-workload Perf relative to local desktop disk:")
	hdr := pad("", 12)
	for _, d := range variants[1:] {
		hdr += pad(d.Name, 22)
	}
	r.Lines = append(r.Lines, hdr)
	rel := tbl.Relative(metrics.Perf, "emb1")
	for _, w := range paper.Workloads {
		row := pad(w, 12)
		for _, d := range variants[1:] {
			row += pad(pct(rel[w][d.Name]), 22)
		}
		r.Lines = append(r.Lines, row)
	}
	return r, nil
}

func fig5Table() (*metrics.Table, error) {
	ev := core.NewEvaluator()
	designs := append(core.AllBaselines(), core.NewN1(), core.NewN2())
	return ev.EvaluateSuite(designs)
}

func runFig5() (Report, error) {
	r := Report{ID: "fig5", Title: "Figure 5 — unified designs N1/N2 vs srvr1"}
	tbl, err := fig5Table()
	if err != nil {
		return Report{}, err
	}
	for _, k := range []metrics.Metric{metrics.PerfPerInf, metrics.PerfPerWatt, metrics.PerfPerTCO} {
		rel := tbl.Relative(k, "srvr1")
		hm := tbl.HMeanRelative(k, "srvr1")
		r.addf("%s relative to srvr1:", k)
		for _, w := range paper.Workloads {
			line := "  " + pad(w, 11) +
				pad("N1 "+ratioX(rel[w]["N1"]), 11) +
				pad("N2 "+ratioX(rel[w]["N2"]), 11)
			if k == metrics.PerfPerTCO {
				pub := paper.Figure5PerfPerTCO[w]
				line += "  (paper ~" + ratioX(pub["N1"]) + " / ~" + ratioX(pub["N2"]) + ")"
			}
			r.Lines = append(r.Lines, line)
		}
		line := "  " + pad("HMean", 11) +
			pad("N1 "+ratioX(hm["N1"]), 11) +
			pad("N2 "+ratioX(hm["N2"]), 11)
		if k == metrics.PerfPerTCO {
			pub := paper.Figure5PerfPerTCO["hmean"]
			line += "  (paper ~" + ratioX(pub["N1"]) + " / ~" + ratioX(pub["N2"]) + ")"
		}
		r.Lines = append(r.Lines, line)
		r.addf("")
	}
	// Compaction claim of §3.6.
	n2rack, err := core.RackFor(core.NewN2())
	if err != nil {
		return Report{}, err
	}
	n1rack, err := core.RackFor(core.NewN1())
	if err != nil {
		return Report{}, err
	}
	r.addf("compaction: N1 %d systems/rack, N2 %d systems/rack (baseline 40)",
		n1rack.ServersPerRack, n2rack.ServersPerRack)
	return r, nil
}

func runFig5Alt() (Report, error) {
	r := Report{ID: "fig5alt", Title: "§3.6 — N1/N2 vs srvr2 and desk baselines"}
	tbl, err := fig5Table()
	if err != nil {
		return Report{}, err
	}
	for _, baseline := range []string{"srvr2", "desk"} {
		hm := tbl.HMeanRelative(metrics.PerfPerTCO, baseline)
		rel := tbl.Relative(metrics.PerfPerTCO, baseline)
		r.addf("vs %s: N1 hmean %s, N2 hmean %s (paper: N2 ~1.8-2x)",
			baseline, ratioX(hm["N1"]), ratioX(hm["N2"]))
		for _, w := range []string{"ytube", "mapred-wc", "mapred-wr"} {
			r.addf("  %-10s N1 %s  N2 %s", w, ratioX(rel[w]["N1"]), ratioX(rel[w]["N2"]))
		}
	}
	return r, nil
}
