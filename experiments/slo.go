package experiments

import (
	"fmt"

	"warehousesim/internal/cluster"
	"warehousesim/internal/core"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-slo", "Extension — windowed QoS-violation accounting per design", runExtSLO)
}

// runExtSLO runs each (design, workload) pair under the windowed SLO
// metrics plane and reports QoS-violation-minutes: how much of the
// measured interval each design spends inside a violation episode, how
// many distinct episodes that time splits into, and how far the worst
// window's tail latency overshoots the bound. The adaptive driver
// holds every design at its own QoS edge, so the mean utilization
// columns of the paper hide this structure — two designs with the same
// sustained throughput can differ sharply in how their violations
// cluster, which is what an operator's burn-rate alerting sees.
func runExtSLO() (Report, error) {
	r := Report{ID: "ext-slo", Title: "Extension — windowed QoS-violation accounting per design"}
	designs := []core.Design{
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN2(),
	}
	profiles := []workload.Profile{
		workload.WebsearchProfile(),
		workload.WebmailProfile(),
		workload.YtubeProfile(),
	}
	ev := core.NewEvaluator()

	const windowSec = 2.0
	r.addf("QoS-violation accounting over %gs tumbling windows (seed-9 DES", windowSec)
	r.addf("run at each design's adaptive operating point):")
	r.addf("")
	r.addf("%-11s %-10s %8s %10s %9s %10s %11s", "design", "workload",
		"windows", "violating", "episodes", "viol-min", "peak-exc-ms")

	for _, d := range designs {
		for _, p := range profiles {
			cfg, err := ev.ClusterConfig(d, p)
			if err != nil {
				return Report{}, err
			}
			sink := obs.NewSink()
			opts := cluster.SimOptions{
				Seed: 9, WarmupSec: 5, MeasureSec: 30, MaxClients: 512,
				Obs: sink, SLOWindowSec: windowSec,
			}
			res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opts)
			if err != nil {
				return Report{}, err
			}
			if res.SLO == nil {
				return Report{}, fmt.Errorf("ext-slo: %s/%s returned no SLO collector", d.Name, p.Name)
			}
			ws := res.SLO.Windows()
			violating := 0
			for _, w := range ws {
				if w.Violating {
					violating++
				}
			}
			eps := res.SLO.Episodes(res.SLOParts...)
			peakExcess := 0.0
			for _, e := range eps {
				if e.PeakExcessSec > peakExcess {
					peakExcess = e.PeakExcessSec
				}
			}
			r.addf("%-11s %-10s %8d %10d %9d %10.2f %11.1f",
				d.Name, p.Name, len(ws), violating, len(eps),
				window.ViolationSec(eps)/60, peakExcess*1e3)
		}
	}
	r.addf("")
	r.addf("reading: viol-min is the wall an operator's error budget burns;")
	r.addf("many short episodes and one long one can carry the same mean")
	r.addf("latency while tripping very different burn-rate alerts. peak-exc")
	r.addf("is the worst window's tail overshoot past the workload's bound.")
	return r, nil
}
