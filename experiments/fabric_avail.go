package experiments

import (
	"warehousesim/internal/avail"
	"warehousesim/internal/core"
	"warehousesim/internal/fabric"
	"warehousesim/internal/platform"
	"warehousesim/internal/scaleout"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-fabric", "§5 extension — rack fabric for dense packaging", runExtFabric)
	register("ext-availability", "§1 extension — software HA sparing costs", runExtAvailability)
}

// runExtFabric replaces the paper's flat per-server switch share with a
// designed two-tier fabric and shows what the dense racks of §3.3
// actually pay for networking.
func runExtFabric() (Report, error) {
	r := Report{ID: "ext-fabric", Title: "§5 extension — rack fabric for dense packaging"}
	r.addf("two-tier rack fabric (48-port GbE edge, 10G aggregation):")
	r.addf("%-10s %8s %8s %12s %12s %14s", "rack", "oversub",
		"switches", "$/server", "W/server", "eff. Gbps/srv")
	for _, rackSize := range []int{40, 320, 1250} {
		for _, over := range []float64{1, 4, 8} {
			cfg := fabric.DefaultConfig(rackSize)
			cfg.Oversubscription = over
			plan, err := fabric.Design(cfg)
			if err != nil {
				r.addf("%-10d %8.0f  infeasible", rackSize, over)
				continue
			}
			r.addf("%-10d %8.0f %8d %12.0f %12.2f %14.2f",
				rackSize, over, plan.EdgeSwitches,
				plan.PerServerCostUSD(), plan.PerServerPowerW(),
				plan.EffectiveServerGbps())
		}
	}
	r.addf("")
	r.addf("the paper's flat $69/server share prices edge downlinks only; a")
	r.addf("designed fabric adds uplinks and aggregation (~$100-150/server at")
	r.addf("4:1-8:1 oversub) — but crucially the per-server cost is nearly")
	r.addf("FLAT across 40/320/1250-server racks, so the §3.3 compaction")
	r.addf("survives honest networking.")
	return r, nil
}

// runExtAvailability prices the "high availability in software" decision
// (§1): more, smaller servers need proportionally fewer spares for the
// same service availability — scale-out helps reliability economics too.
func runExtAvailability() (Report, error) {
	r := Report{ID: "ext-availability", Title: "§1 extension — software HA sparing costs"}
	// Per-server availability: 2-year MTBF, 8-hour MTTR (auto-reimaged).
	perServer, err := avail.ServerAvailability(2*8766, 8)
	if err != nil {
		return Report{}, err
	}
	const target = 0.9999
	r.addf("spares for %.2f%% service availability (server MTBF 2y, MTTR 8h",
		target*100)
	r.addf("-> per-server availability %.4f); captures a websearch service", perServer)
	r.addf("sized as in ext-scaleout:")
	r.addf("%-8s %10s %9s %9s %12s %14s", "design", "capacity", "fleet", "spares", "overhead", "spare TCO $")

	ev := core.NewEvaluator()
	p := workload.WebsearchProfile()
	const targetRPS = 1500.0
	u := scaleout.TypicalScaleOut()
	for _, d := range []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN2(),
	} {
		ms, err := ev.Evaluate(d, []workload.Profile{p})
		if err != nil {
			return Report{}, err
		}
		k, err := scaleout.ServersFor(targetRPS, ms[0].Perf, u)
		if err != nil {
			return Report{}, err
		}
		n, err := avail.ServersForTarget(k, perServer, target)
		if err != nil {
			return Report{}, err
		}
		resolved, err := d.Resolve()
		if err != nil {
			return Report{}, err
		}
		_, _, tco := resolved.ServerTCO(ev.Cost)
		r.addf("%-8s %10d %9d %9d %12s %14.0f", d.Name, k, n, n-k,
			pct(avail.SparingOverhead(n, k)), float64(n-k)*tco)
	}
	r.addf("")
	r.addf("(bigger fleets need a smaller sparing *fraction* — the binomial")
	r.addf(" tail tightens with n — and each spare is cheaper: scale-out")
	r.addf(" makes software HA economical, the bet §1 describes)")
	return r, nil
}
