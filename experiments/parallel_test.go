package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"warehousesim/internal/obs"
)

// withStubRegistry swaps the package registry for synthetic entries so
// the suite engine can be exercised without running real experiments.
func withStubRegistry(t *testing.T, entries []entry) {
	t.Helper()
	saved := registry
	registry = entries
	t.Cleanup(func() { registry = saved })
}

func stubEntries(n int, failAt int) []entry {
	out := make([]entry, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = entry{
			id:    fmt.Sprintf("stub%02d", i),
			title: fmt.Sprintf("stub experiment %d", i),
			order: i,
			run: func() (Report, error) {
				if i == failAt {
					return Report{}, errors.New("synthetic failure")
				}
				r := Report{ID: fmt.Sprintf("stub%02d", i), Title: "stub"}
				for l := 0; l <= i; l++ {
					r.addf("line %d of %d", l, i)
				}
				return r, nil
			},
		}
	}
	return out
}

// suiteRun captures everything observable from one full-registry
// Execute call.
type suiteRun struct {
	reps     []Report
	err      string
	export   []byte
	progress []SuiteProgress
}

func runSuite(t *testing.T, par int) suiteRun {
	t.Helper()
	sink := obs.NewSink()
	var prog []SuiteProgress
	reps, err := Execute(RunSpec{Recorder: sink, Parallelism: par,
		Progress: func(p SuiteProgress) { prog = append(prog, p) }})
	var buf bytes.Buffer
	if werr := sink.WriteJSONL(&buf); werr != nil {
		t.Fatal(werr)
	}
	s := suiteRun{reps: reps, export: buf.Bytes(), progress: prog}
	if err != nil {
		s.err = err.Error()
	}
	return s
}

// TestExecuteParMatchesSequential: reports, recorded observability, and
// progress callbacks are byte-identical at any worker count.
func TestExecuteParMatchesSequential(t *testing.T) {
	withStubRegistry(t, stubEntries(9, -1))
	seq := runSuite(t, 1)
	if len(seq.reps) != 9 {
		t.Fatalf("sequential run returned %d reports, want 9", len(seq.reps))
	}
	for _, par := range []int{2, 4, 16} {
		got := runSuite(t, par)
		if !reflect.DeepEqual(got.reps, seq.reps) {
			t.Fatalf("par=%d reports differ from sequential", par)
		}
		if !bytes.Equal(got.export, seq.export) {
			t.Fatalf("par=%d obs export differs from sequential", par)
		}
		if !reflect.DeepEqual(got.progress, seq.progress) {
			t.Fatalf("par=%d progress %+v != sequential %+v", par, got.progress, seq.progress)
		}
	}
}

// TestExecuteParErrorEquivalence: an error at registry position i
// yields the same error and the same recorded prefix at any worker
// count — speculative results past the failure are discarded
// uncommitted.
func TestExecuteParErrorEquivalence(t *testing.T) {
	withStubRegistry(t, stubEntries(7, 3))
	seq := runSuite(t, 1)
	if seq.err == "" {
		t.Fatal("sequential run did not surface the synthetic failure")
	}
	if len(seq.progress) != 3 {
		t.Fatalf("sequential run committed %d experiments before the failure, want 3", len(seq.progress))
	}
	for _, par := range []int{2, 8} {
		got := runSuite(t, par)
		if got.err != seq.err {
			t.Fatalf("par=%d error %q != sequential %q", par, got.err, seq.err)
		}
		if !bytes.Equal(got.export, seq.export) {
			t.Fatalf("par=%d obs export differs from sequential after failure", par)
		}
		if !reflect.DeepEqual(got.progress, seq.progress) {
			t.Fatalf("par=%d progress after failure %+v != %+v", par, got.progress, seq.progress)
		}
	}
}

// TestRunCells: every cell runs exactly once, slot writes land, and the
// merged view is independent of the worker count.
func TestRunCells(t *testing.T) {
	const n = 37
	for _, par := range []int{1, 3, 64} {
		out := make([]int, n)
		var calls atomic.Int64
		runCells(par, n, func(i int) {
			calls.Add(1)
			out[i] = i * i
		})
		if calls.Load() != n {
			t.Fatalf("par=%d: %d cell calls, want %d", par, calls.Load(), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: slot %d = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestSetSweepParallelismClamps(t *testing.T) {
	saved := SweepParallelism()
	t.Cleanup(func() { SetSweepParallelism(saved) })
	SetSweepParallelism(-5)
	if got := SweepParallelism(); got != 1 {
		t.Fatalf("SweepParallelism after SetSweepParallelism(-5) = %d, want 1", got)
	}
	SetSweepParallelism(8)
	if got := SweepParallelism(); got != 8 {
		t.Fatalf("SweepParallelism = %d, want 8", got)
	}
}
