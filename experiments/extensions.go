package experiments

import (
	"warehousesim/internal/cluster"
	"warehousesim/internal/core"
	"warehousesim/internal/cost"
	"warehousesim/internal/diurnal"
	"warehousesim/internal/memblade"
	"warehousesim/internal/metrics"
	"warehousesim/internal/paper"
	"warehousesim/internal/platform"
	"warehousesim/internal/scaleout"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-memtech", "§4 extension — blade contention, page sharing, compression", runExtMemtech)
	register("ext-flashdisk", "§4 extension — flash as a disk replacement", runExtFlashdisk)
	register("ext-scaleout", "§4 extension — Amdahl's-law limits on scale-out", runExtScaleout)
	register("ext-diurnal", "§4 extension — time-of-day load and ensemble power", runExtDiurnal)
}

func runExtMemtech() (Report, error) {
	r := Report{ID: "ext-memtech", Title: "§4 extension — blade contention, page sharing, compression"}

	// Blade contention: the second-order PCIe effect the paper's trace
	// methodology ignores. Quantify the stall inflation at websearch's
	// fault rate.
	blade := memblade.DefaultBladeModel()
	p := workload.WebsearchProfile()
	emb1 := cluster.Config{Server: platform.Emb1()}
	res, err := emb1.Analyze(p)
	if err != nil {
		return Report{}, err
	}
	// Fault rate per server at the operating point: the fig4b calibrated
	// websearch slowdown (4.7%) implies this miss traffic per second.
	service := emb1.MeanDemands(p).Total()
	missStallPerReq := paper.Figure4bSlowdown["pcie-x4"]["websearch"] * service
	missesPerReq := missStallPerReq / memblade.PCIeX4().StallPerMissSec
	missesPerSec := missesPerReq * res.Throughput
	r.addf("blade contention (8 servers/blade, websearch at %.1f rps/server):", res.Throughput)
	r.addf("  per-server fault rate %.0f pages/s, blade utilization %s",
		missesPerSec, pct(blade.Utilization(missesPerSec)))
	r.addf("  stall inflation %.3fx; headroom to 80%% util: %.0f faults/s/server",
		blade.StallInflation(missesPerSec), blade.MaxMissRatePerServer(0.8))
	r.addf("")

	// Page sharing and compression economics on N2's dynamic scheme.
	m := cost.DefaultModel()
	rack := platform.DefaultRack()
	base := platform.Emb1()
	baseline, err := memblade.DynamicScheme().Apply(base)
	if err != nil {
		return Report{}, err
	}
	baseInf, _, baseTCO := m.ServerTCO(baseline, rack)
	r.addf("dynamic scheme + §3.4's content sharing and MXT-style compression:")
	r.addf("%-22s %12s %12s %12s", "variant", "mem $", "inf $", "tco $")
	inf0, _, tco0 := baseInf, 0.0, baseTCO
	r.addf("%-22s %12.0f %12.0f %12.0f", "dynamic (paper)", baseline.Memory.PriceUSD, inf0, tco0)

	sharing := memblade.DefaultContentSharing()
	comp := memblade.DefaultCompression()
	variants := []struct {
		name string
		sh   *memblade.ContentSharing
		cp   *memblade.Compression
	}{
		{"+ page sharing", &sharing, nil},
		{"+ compression", nil, &comp},
		{"+ both", &sharing, &comp},
	}
	for _, v := range variants {
		sc, ic, err := memblade.EffectiveScheme(memblade.DynamicScheme(), v.sh, v.cp)
		if err != nil {
			return Report{}, err
		}
		srv, err := sc.Apply(base)
		if err != nil {
			return Report{}, err
		}
		inf, _, tco := m.ServerTCO(srv, rack)
		r.addf("%-22s %12.0f %12.0f %12.0f   (stall/miss %.2gus)",
			v.name, srv.Memory.PriceUSD, inf, tco, ic.StallPerMissSec*1e6)
	}
	return r, nil
}

func runExtFlashdisk() (Report, error) {
	r := Report{ID: "ext-flashdisk", Title: "§4 extension — flash as a disk replacement"}
	ev := core.NewEvaluator()
	base := core.BaselineDesign(platform.Emb1())
	ssd := base
	ssd.Name = "emb1-ssd"
	ssd.Storage = core.FlashSSDStorage
	tbl, err := ev.EvaluateSuite([]core.Design{base, ssd})
	if err != nil {
		return Report{}, err
	}
	rel := tbl.Relative(metrics.Perf, "emb1")
	relT := tbl.Relative(metrics.PerfPerTCO, "emb1")
	r.addf("emb1 with a 32 GB flash SSD replacing the desktop disk:")
	r.addf("%-11s %10s %14s", "workload", "perf", "perf/TCO-$")
	for _, w := range paper.Workloads {
		r.addf("%-11s %10s %14s", w, pct(rel[w]["emb1-ssd"]), pct(relT[w]["emb1-ssd"]))
	}
	hm := tbl.HMeanRelative(metrics.PerfPerTCO, "emb1")
	r.addf("%-11s %10s %14s", "HMean", "", pct(hm["emb1-ssd"]))
	r.addf("")
	// Flag QoS-status changes: a faster disk can flip a configuration
	// from QoS-violating best-effort throughput to (lower) compliant
	// throughput, which makes raw Perf ratios misleading.
	for _, w := range paper.Workloads {
		b, _ := tbl.Get(w, "emb1")
		s, _ := tbl.Get(w, "emb1-ssd")
		if b.QoSMet != s.QoSMet {
			r.addf("note: %s QoS met changed %v -> %v (the SSD makes the 0.5s", w, b.QoSMet, s.QoSMet)
			r.addf("      bound reachable; the baseline number carries violations)")
		}
	}
	r.addf("(no seeks: IO-bound workloads leap; the $448 device and the")
	r.addf(" capacity shortfall are why the paper kept flash as a cache)")
	return r, nil
}

func runExtScaleout() (Report, error) {
	r := Report{ID: "ext-scaleout", Title: "§4 extension — Amdahl's-law limits on scale-out"}
	ev := core.NewEvaluator()
	p := workload.WebsearchProfile()

	// Size a 2,000-RPS websearch service on each design under three
	// partitioning-quality assumptions.
	const target = 2000.0
	r.addf("servers (racks) to serve %.0f websearch RPS:", target)
	r.addf("%-8s %18s %20s %16s", "design", "perfect scaling", "typical scale-out", "search-like")
	designs := []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN1(), core.NewN2(),
	}
	for _, d := range designs {
		ms, err := ev.Evaluate(d, []workload.Profile{p})
		if err != nil {
			return Report{}, err
		}
		resolved, err := d.Resolve()
		if err != nil {
			return Report{}, err
		}
		_, _, tco := resolved.ServerTCO(ev.Cost)
		row := pad(d.Name, 8)
		for _, u := range []scaleout.USL{
			scaleout.PerfectScaling(), scaleout.TypicalScaleOut(), scaleout.SearchLike(),
		} {
			dep, err := scaleout.Size(target, ms[0].Perf, u,
				resolved.Rack.ServersPerRack, tco, ms[0].PowerW)
			if err != nil {
				row += pad("unreachable", 20)
				continue
			}
			row += pad(fmtInt(dep.Servers)+" ("+fmtInt(dep.Racks)+" racks)", 20)
		}
		r.Lines = append(r.Lines, row)
	}
	r.addf("")
	r.addf("the paper's caveat quantified: under search-like partitioning")
	r.addf("overheads, small-server designs need disproportionately more")
	r.addf("nodes — or hit the scaling ceiling outright.")
	return r, nil
}

func runExtDiurnal() (Report, error) {
	r := Report{ID: "ext-diurnal", Title: "§4 extension — time-of-day load and ensemble power"}
	curve := diurnal.TypicalInternet()
	r.addf("diurnal curve: mean load %s of peak (trough %s, peak %s)",
		pct(curve.Mean()), pct(curve[4]), pct(curve.Peak()))
	r.addf("")
	r.addf("daily energy for a 1000-server fleet provisioned for peak,")
	r.addf("all-on vs consolidate-and-power-off. Idle power is derived from")
	r.addf("each platform's BoM (CPU drops ~80%% at idle, the rest stays):")
	r.addf("%-8s %8s %12s %14s %10s", "design", "idle", "all-on kWh", "consolidated", "savings")
	pm := core.NewEvaluator().Cost.Power
	rack := platform.DefaultRack()
	for _, d := range []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN2(),
	} {
		resolved, err := d.Resolve()
		if err != nil {
			return Report{}, err
		}
		consumed := pm.ServerConsumed(resolved.Server, rack)
		peakW := consumed.TotalW()
		// CPU power collapses at idle; board/memory/disk/fans largely do
		// not — which is exactly why small-CPU platforms are LESS
		// energy-proportional.
		idleW := peakW - 0.8*consumed.CPUW
		sp := diurnal.ServerPower{IdleW: idleW, PeakW: peakW}
		allOn, err := diurnal.EnergyKWhPerDay(1000, sp, curve, diurnal.AllOn, 0.75)
		if err != nil {
			return Report{}, err
		}
		cons, err := diurnal.EnergyKWhPerDay(1000, sp, curve, diurnal.Consolidate, 0.75)
		if err != nil {
			return Report{}, err
		}
		sav, err := diurnal.SavingsFraction(1000, sp, curve, 0.75)
		if err != nil {
			return Report{}, err
		}
		r.addf("%-8s %8s %12.0f %14.0f %10s", d.Name, pct(idleW/peakW), allOn, cons, pct(sav))
	}
	r.addf("")
	r.addf("(the paper evaluates sustained load only; ensemble power")
	r.addf(" management compounds the embedded designs' energy advantage)")
	return r, nil
}
