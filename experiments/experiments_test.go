package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1", "fig1", "table2", "fig2ab", "fig2c", "fig3", "rackpower",
		"fig4b", "fig4c", "table3", "fig5", "fig5alt",
		"abl-activity", "abl-tariff", "abl-policy", "abl-cbf", "abl-flash", "abl-cooling",
		"ext-memtech", "ext-flashdisk", "ext-scaleout", "ext-diurnal", "ext-hybrid",
		"abl-querycache", "abl-locality", "ext-ensemble", "abl-realestate", "validate", "abl-coolingcredit", "ext-powerprov", "ext-fabric", "ext-availability", "ext-datacenter",
		"ext-fleet",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Errorf("experiment %q has no title", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Execute(RunSpec{IDs: []string{"nope"}}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Every experiment must be bit-for-bit reproducible (DESIGN.md §5).
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"fig1", "table2", "fig3", "fig4c", "abl-policy"} {
		a := mustRun(t, id)
		b := mustRun(t, id)
		if a.String() != b.String() {
			t.Errorf("%s: two runs differ", id)
		}
	}
}

func mustRun(t *testing.T, id string) Report {
	t.Helper()
	reps, err := Execute(RunSpec{IDs: []string{id}})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	rep := reps[0]
	if rep.ID != id || len(rep.Lines) == 0 {
		t.Fatalf("%s: empty report %+v", id, rep)
	}
	return rep
}

func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"table1", "fig1", "table2", "fig2ab", "fig3", "rackpower", "fig4c", "abl-policy", "abl-cbf", "abl-flash"} {
		rep := mustRun(t, id)
		if !strings.Contains(rep.String(), rep.Title) {
			t.Errorf("%s: title missing from render", id)
		}
	}
}

func TestFig1PinsInReport(t *testing.T) {
	rep := mustRun(t, "fig1")
	body := rep.String()
	for _, pin := range []string{"5758", "2464", "1561", "3.6636"} {
		if !strings.Contains(body, pin) {
			t.Errorf("fig1 report missing pinned value %q\n%s", pin, body)
		}
	}
}

func TestTable2PinsInReport(t *testing.T) {
	rep := mustRun(t, "table2")
	body := rep.String()
	for _, pin := range []string{"340", "3294", "849", "499", "in-order"} {
		if !strings.Contains(body, pin) {
			t.Errorf("table2 report missing %q", pin)
		}
	}
}

func TestFig3ReportsDensities(t *testing.T) {
	rep := mustRun(t, "fig3")
	body := rep.String()
	for _, pin := range []string{"320", "1250", "40"} {
		if !strings.Contains(body, pin) {
			t.Errorf("fig3 report missing density %q", pin)
		}
	}
}

func TestFig4cCloseToPaper(t *testing.T) {
	rep := mustRun(t, "fig4c")
	body := rep.String()
	// Both schemes must report a Perf/TCO gain (>=100%).
	if !strings.Contains(body, "static") || !strings.Contains(body, "dynamic") {
		t.Fatalf("schemes missing:\n%s", body)
	}
}

func TestFig2cRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2c is heavyweight")
	}
	rep := mustRun(t, "fig2c")
	if !strings.Contains(rep.String(), "HMean") {
		t.Error("fig2c missing harmonic-mean rows")
	}
}

func TestFig5HeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 is heavyweight")
	}
	rep := mustRun(t, "fig5")
	body := rep.String()
	// The abstract's 2X claim: N2's Perf/TCO hmean must render as >= 1.8x.
	if !strings.Contains(body, "compaction: N1 320 systems/rack, N2 1250 systems/rack") {
		t.Errorf("fig5 missing compaction line:\n%s", body)
	}
}

func TestFig4bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4b builds all engines")
	}
	rep := mustRun(t, "fig4b")
	body := rep.String()
	for _, w := range []string{"websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"} {
		if !strings.Contains(body, w) {
			t.Errorf("fig4b missing workload %s", w)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 is heavyweight")
	}
	rep := mustRun(t, "table3")
	body := rep.String()
	for _, s := range []string{"remote-laptop", "remote-laptop+flash", "remote-laptop2+flash"} {
		if !strings.Contains(body, s) {
			t.Errorf("table3 missing storage row %s", s)
		}
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions are heavyweight")
	}
	for _, id := range []string{"ext-memtech", "ext-flashdisk", "ext-scaleout", "ext-diurnal", "ext-hybrid"} {
		rep := mustRun(t, id)
		if len(rep.Lines) < 3 {
			t.Errorf("%s report too thin", id)
		}
	}
}

func TestExtHybridHeterogeneityWins(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	rep := mustRun(t, "ext-hybrid")
	if !strings.Contains(rep.String(), "heterogeneity saves") {
		t.Errorf("hybrid report lacks the savings line:\n%s", rep)
	}
}
