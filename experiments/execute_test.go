package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"warehousesim/internal/obs"
)

// TestExecuteShapeConsistency: every restriction of the spec space is
// consistent with the zero-value full run — a single-id selection
// returns exactly that experiment's report from the full run, and a
// recorded parallel run matches an unrecorded sequential one report for
// report.
func TestExecuteShapeConsistency(t *testing.T) {
	withStubRegistry(t, stubEntries(6, -1))

	zero, err := Execute(RunSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(zero) != 6 {
		t.Fatalf("zero spec ran %d experiments, want 6", len(zero))
	}

	sink := obs.NewSink()
	var prog []SuiteProgress
	reps, err := Execute(RunSpec{Recorder: sink, Parallelism: 4,
		Progress: func(p SuiteProgress) { prog = append(prog, p) }})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reps, zero) {
		t.Fatal("recorded parallel run reports differ from zero-spec run")
	}
	if len(prog) != 6 || buf.Len() == 0 {
		t.Fatalf("full spec recorded %d progress calls and %d export bytes", len(prog), buf.Len())
	}

	sel, err := Execute(RunSpec{IDs: []string{"stub03"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || !reflect.DeepEqual(sel[0], zero[3]) {
		t.Fatalf("Execute single-id selection %+v != full-run report %+v", sel, zero[3])
	}
}

// TestExecuteSelection: IDs run in the order given, and an unknown id
// fails the whole call before any experiment runs or records.
func TestExecuteSelection(t *testing.T) {
	withStubRegistry(t, stubEntries(5, -1))
	reps, err := Execute(RunSpec{IDs: []string{"stub04", "stub01"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].ID != "stub04" || reps[1].ID != "stub01" {
		t.Fatalf("selection order not honored: %+v", reps)
	}

	sink := obs.NewSink()
	if _, err := Execute(RunSpec{IDs: []string{"stub00", "nope"}, Recorder: sink}); err == nil {
		t.Fatal("unknown id accepted")
	} else if !strings.Contains(err.Error(), `unknown id "nope"`) {
		t.Fatalf("unhelpful error: %v", err)
	}
	if sink.CounterValue("experiments.runs") != 0 {
		t.Fatal("experiments ran despite unknown id in spec")
	}
}
