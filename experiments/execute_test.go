package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"warehousesim/internal/obs"
)

// TestExecuteMatchesLegacy: every legacy call shape must be a pure
// restriction of Execute — same reports, same recorded bytes, same
// progress sequence.
func TestExecuteMatchesLegacy(t *testing.T) {
	withStubRegistry(t, stubEntries(6, -1))

	legacy := runSuite(t, 4) // RunAllPar(sink, 4, progress)
	sink := obs.NewSink()
	var prog []SuiteProgress
	reps, err := Execute(RunSpec{Recorder: sink, Parallelism: 4,
		Progress: func(p SuiteProgress) { prog = append(prog, p) }})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reps, legacy.reps) || !bytes.Equal(buf.Bytes(), legacy.export) ||
		!reflect.DeepEqual(prog, legacy.progress) {
		t.Fatal("Execute(full spec) differs from RunAllPar")
	}

	one, err := RunWith("stub03", nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Execute(RunSpec{IDs: []string{"stub03"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || !reflect.DeepEqual(sel[0], one) {
		t.Fatalf("Execute single-id selection %+v != RunWith %+v", sel, one)
	}

	all, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Execute(RunSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, zero) {
		t.Fatal("Execute zero spec differs from RunAll")
	}
}

// TestExecuteSelection: IDs run in the order given, and an unknown id
// fails the whole call before any experiment runs or records.
func TestExecuteSelection(t *testing.T) {
	withStubRegistry(t, stubEntries(5, -1))
	reps, err := Execute(RunSpec{IDs: []string{"stub04", "stub01"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].ID != "stub04" || reps[1].ID != "stub01" {
		t.Fatalf("selection order not honored: %+v", reps)
	}

	sink := obs.NewSink()
	if _, err := Execute(RunSpec{IDs: []string{"stub00", "nope"}, Recorder: sink}); err == nil {
		t.Fatal("unknown id accepted")
	} else if !strings.Contains(err.Error(), `unknown id "nope"`) {
		t.Fatalf("unhelpful error: %v", err)
	}
	if sink.CounterValue("experiments.runs") != 0 {
		t.Fatal("experiments ran despite unknown id in spec")
	}
}
