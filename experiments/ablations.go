package experiments

import (
	"warehousesim/internal/cooling"
	"warehousesim/internal/core"
	"warehousesim/internal/cost"
	"warehousesim/internal/flashcache"
	"warehousesim/internal/memblade"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
)

func init() {
	register("abl-activity", "Ablation — activity factor 0.5..1.0 (§2.2)", runAblActivity)
	register("abl-tariff", "Ablation — electricity tariff $50..$170/MWh (§2.2)", runAblTariff)
	register("abl-policy", "Ablation — replacement policy (LRU/random/clock)", runAblPolicy)
	register("abl-cbf", "Ablation — CBF benefit across local-memory fractions", runAblCBF)
	register("abl-flash", "Ablation — flash cache size sweep", runAblFlash)
	register("abl-cooling", "Ablation — unified designs without new cooling", runAblCooling)
}

// runAblActivity verifies the paper's claim that results are
// qualitatively similar for activity factors 0.5–1.0.
func runAblActivity() (Report, error) {
	r := Report{ID: "abl-activity", Title: "Ablation — activity factor 0.5..1.0 (§2.2)"}
	r.addf("emb1 Perf/TCO-$ hmean relative to srvr1 under different activity factors:")
	for _, af := range []float64{0.5, 0.625, 0.75, 0.875, 1.0} {
		pm, err := power.NewModel(af)
		if err != nil {
			return Report{}, err
		}
		ev := core.NewEvaluator()
		ev.Cost = cost.Model{Power: pm, PC: cost.DefaultPCParams()}
		tbl, err := ev.EvaluateSuite([]core.Design{
			core.BaselineDesign(platform.Srvr1()), core.BaselineDesign(platform.Emb1()),
		})
		if err != nil {
			return Report{}, err
		}
		hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
		r.addf("  AF %.3f: emb1 %s", af, ratioX(hm["emb1"]))
	}
	return r, nil
}

func runAblTariff() (Report, error) {
	r := Report{ID: "abl-tariff", Title: "Ablation — electricity tariff $50..$170/MWh (§2.2)"}
	r.addf("emb1 Perf/TCO-$ hmean relative to srvr1 under different tariffs:")
	for _, tariff := range []float64{50, 100, 170} {
		pc := cost.DefaultPCParams()
		pc.TariffUSDPerMWh = tariff
		ev := core.NewEvaluator()
		ev.Cost = cost.Model{Power: power.DefaultModel(), PC: pc}
		tbl, err := ev.EvaluateSuite([]core.Design{
			core.BaselineDesign(platform.Srvr1()), core.BaselineDesign(platform.Emb1()),
		})
		if err != nil {
			return Report{}, err
		}
		hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
		r.addf("  $%3.0f/MWh: emb1 %s", tariff, ratioX(hm["emb1"]))
	}
	return r, nil
}

// ablTrace builds one synthetic trace for the policy/CBF ablations
// (engines are exercised in fig4b; the ablation isolates the simulator).
func ablTrace() (*trace.PageTrace, int64, error) {
	const footprint = 50000
	sp, err := trace.NewSyntheticPages(footprint, 0.9, 30, 0.25, 21)
	if err != nil {
		return nil, 0, err
	}
	r := stats.NewRNG(22)
	// 600k accesses over 50k pages: the local memory fills well before
	// the measurement ends, so capacity effects dominate cold misses.
	return trace.CollectPages(sp, r, 20000), footprint, nil
}

func runAblPolicy() (Report, error) {
	r := Report{ID: "abl-policy", Title: "Ablation — replacement policy (LRU/random/clock)"}
	tr, footprint, err := ablTrace()
	if err != nil {
		return Report{}, err
	}
	r.addf("miss rate on a Zipf(0.9) trace, by local fraction and policy:")
	r.addf("%-8s %10s %10s %10s", "local", "lru", "random", "clock")
	for _, frac := range []float64{0.125, 0.25, 0.5} {
		row := pad(pct(frac), 8)
		for _, pol := range []memblade.Policy{memblade.LRU, memblade.Random, memblade.Clock} {
			sim, err := memblade.New(memblade.Config{
				FootprintPages: footprint, LocalFraction: frac, Policy: pol, Seed: 5})
			if err != nil {
				return Report{}, err
			}
			st := memblade.Replay(sim, tr)
			row += pad(pct(st.MissRate()), 11)
		}
		r.Lines = append(r.Lines, row)
	}
	r.addf("")
	r.addf("(paper §3.4: an implementable policy lands between LRU and random)")
	return r, nil
}

func runAblCBF() (Report, error) {
	r := Report{ID: "abl-cbf", Title: "Ablation — CBF benefit across local-memory fractions"}
	tr, footprint, err := ablTrace()
	if err != nil {
		return Report{}, err
	}
	r.addf("relative stall time (PCIe=1.0 at 25%% local):")
	fracs := []float64{0.5, 0.25, 0.125, 0.0625}
	stalls := make([]float64, len(fracs))
	for i, frac := range fracs {
		sim, err := memblade.New(memblade.Config{
			FootprintPages: footprint, LocalFraction: frac, Policy: memblade.Random, Seed: 5})
		if err != nil {
			return Report{}, err
		}
		st := memblade.Replay(sim, tr)
		stalls[i] = st.MissesPerRequest() * memblade.PCIeX4().StallPerMissSec
	}
	base := stalls[1] // normalize at 25% local
	cbfRatio := memblade.CBF().StallPerMissSec / memblade.PCIeX4().StallPerMissSec
	r.addf("%-8s %10s %10s", "local", "pcie-x4", "cbf")
	for i, frac := range fracs {
		r.addf("%-8s %10.2f %10.2f", pct(frac), stalls[i]/base, stalls[i]*cbfRatio/base)
	}
	r.addf("(CBF cuts every point by the %.0f%% latency ratio; gains grow as local memory shrinks)",
		100*(1-memblade.CBF().StallPerMissSec/memblade.PCIeX4().StallPerMissSec))
	return r, nil
}

func runAblFlash() (Report, error) {
	r := Report{ID: "abl-flash", Title: "Ablation — flash cache size sweep"}
	ws := flashcache.DiskWorkingSets()["websearch"]
	r.addf("websearch disk-trace read hit rate by flash size:")
	for _, gb := range []float64{0.25, 0.5, 1, 2, 4} {
		sim, err := flashcache.New(flashcache.Config{
			CacheBytes: int64(gb * (1 << 30)), BlockBytes: 4096})
		if err != nil {
			return Report{}, err
		}
		rng := stats.NewRNG(9)
		// Long warm-up so even the 4 GB variant fills before measuring.
		flashcache.Replay(sim, &ws, rng, 30000)
		warm := sim.Stats()
		flashcache.Replay(sim, &ws, rng, 30000)
		st := sim.Stats()
		hits := st.ReadHits - warm.ReadHits
		reads := st.Reads - warm.Reads
		hr := 0.0
		if reads > 0 {
			hr = float64(hits) / float64(reads)
		}
		r.addf("  %4.2f GB: %s", gb, pct(hr))
	}
	r.addf("(the paper's 1 GB device sits at the knee for its scaled datasets)")
	return r, nil
}

// runAblCooling quantifies how much of N1/N2's advantage comes from the
// packaging redesign alone.
func runAblCooling() (Report, error) {
	r := Report{ID: "abl-cooling", Title: "Ablation — unified designs without new cooling"}
	ev := core.NewEvaluator()
	n1Conv := core.NewN1()
	n1Conv.Name = "N1-conv"
	n1Conv.Enclosure = cooling.Conventional
	n2Conv := core.NewN2()
	n2Conv.Name = "N2-conv"
	n2Conv.Enclosure = cooling.Conventional
	tbl, err := ev.EvaluateSuite([]core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.NewN1(), n1Conv, core.NewN2(), n2Conv,
	})
	if err != nil {
		return Report{}, err
	}
	hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
	r.addf("Perf/TCO-$ hmean vs srvr1:")
	for _, name := range []string{"N1", "N1-conv", "N2", "N2-conv"} {
		r.addf("  %-8s %s", name, ratioX(hm[name]))
	}
	r.addf("(the cooling redesign's contribution is the N1 vs N1-conv and N2 vs N2-conv gap)")
	return r, nil
}
