package experiments

import (
	"math"

	"warehousesim/internal/core"
	"warehousesim/internal/platform"
	"warehousesim/internal/scaleout"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-hybrid", "Extension — heterogeneous fleet (best design per workload)", runExtHybrid)
}

// runExtHybrid sizes a datacenter serving all five benchmarks with
// dedicated pools, comparing homogeneous fleets against a heterogeneous
// fleet that picks the cheapest design per workload. The paper's webmail
// regression on N1/N2 (§3.6) is exactly the case where heterogeneity
// pays.
func runExtHybrid() (Report, error) {
	r := Report{ID: "ext-hybrid", Title: "Extension — heterogeneous fleet (best design per workload)"}
	ev := core.NewEvaluator()
	designs := []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Srvr2()),
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN1(),
		core.NewN2(),
	}

	// Target load per workload: what 100 srvr1 servers sustain.
	const baselineServers = 100.0
	srvr1 := designs[0]

	type sized struct {
		design  string
		servers int
		tco     float64
	}
	best := map[string]sized{}
	fleetTCO := map[string]float64{} // per design name, homogeneous total
	reached := map[string]int{}      // pools each design can serve
	u := scaleout.TypicalScaleOut()

	for _, p := range workload.SuiteProfiles() {
		baseMs, err := ev.Evaluate(srvr1, []workload.Profile{p})
		if err != nil {
			return Report{}, err
		}
		target := baseMs[0].Perf * baselineServers
		for _, d := range designs {
			ms, err := ev.Evaluate(d, []workload.Profile{p})
			if err != nil {
				return Report{}, err
			}
			resolved, err := d.Resolve()
			if err != nil {
				return Report{}, err
			}
			_, _, tco := resolved.ServerTCO(ev.Cost)
			dep, err := scaleout.Size(target, ms[0].Perf, u,
				resolved.Rack.ServersPerRack, tco, ms[0].PowerW)
			if err != nil {
				continue // design cannot reach the target at this scaling law
			}
			fleetTCO[d.Name] += dep.TCOUSD
			reached[d.Name]++
			if cur, ok := best[p.Name]; !ok || dep.TCOUSD < cur.tco {
				best[p.Name] = sized{design: d.Name, servers: dep.Servers, tco: dep.TCOUSD}
			}
		}
	}

	r.addf("serving each workload at the level 100 srvr1 servers sustain:")
	r.addf("%-11s %-8s %9s %14s", "workload", "best", "servers", "pool TCO $")
	hybridTotal := 0.0
	for _, p := range workload.SuiteProfiles() {
		b := best[p.Name]
		hybridTotal += b.tco
		r.addf("%-11s %-8s %9d %14.0f", p.Name, b.design, b.servers, b.tco)
	}
	r.addf("")
	r.addf("fleet totals (all five pools):")
	pools := len(workload.SuiteProfiles())
	for _, d := range designs {
		if reached[d.Name] < pools {
			r.addf("  homogeneous %-7s cannot serve all pools (%d/%d reachable)",
				d.Name, reached[d.Name], pools)
			continue
		}
		r.addf("  homogeneous %-7s $%11.0f", d.Name, fleetTCO[d.Name])
	}
	r.addf("  heterogeneous      $%11.0f", hybridTotal)
	bestHomog := math.Inf(1)
	bestName := ""
	for name, total := range fleetTCO {
		if reached[name] == pools && total < bestHomog {
			bestHomog, bestName = total, name
		}
	}
	if !math.IsInf(bestHomog, 1) {
		r.addf("")
		r.addf("heterogeneity saves %s over the best complete homogeneous fleet (%s)",
			pct(1-hybridTotal/bestHomog), bestName)
	}
	return r, nil
}
