// Package experiments regenerates every table and figure of the paper's
// evaluation (Lim et al., ISCA 2008). Each experiment is a named Runner
// producing a textual Report with model results side by side with the
// published numbers (from internal/paper); cmd/whbench drives the
// registry, and EXPERIMENTS.md records the outcomes.
package experiments

import (
	"fmt"
	"strings"

	"warehousesim/internal/obs"
)

// Report is the rendered outcome of one experiment.
type Report struct {
	// ID is the registry key (e.g. "fig2c").
	ID string
	// Title names the paper artifact reproduced.
	Title string
	// Lines is the rendered body.
	Lines []string
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// addf appends a formatted line.
func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Runner executes one experiment.
type Runner func() (Report, error)

// entry pairs a runner with its registry order.
type entry struct {
	id    string
	title string
	run   Runner
	order int
}

var registry []entry

// register adds an experiment at the next registry position.
func register(id, title string, run Runner) {
	registry = append(registry, entry{id: id, title: title, run: run, order: len(registry)})
}

// IDs returns the experiment ids in registry order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Titles maps id -> title.
func Titles() map[string]string {
	out := map[string]string{}
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// recordEntry records one finished experiment's registry-level
// observability. The event's time axis is the registry order, which is
// stable across builds — and, in parallel suite runs, the commit order,
// so recorded streams are identical at any worker count.
func recordEntry(e entry, r Report, err error, rec obs.Recorder) {
	if !obs.On(rec) {
		return
	}
	rec.Count("experiments.runs", 1)
	if err != nil {
		rec.Count("experiments.errors", 1)
		rec.Event("experiment", float64(e.order),
			obs.FS("id", e.id), obs.FS("error", err.Error()))
	} else {
		rec.Observe("experiment.report_lines", float64(len(r.Lines)))
		rec.Event("experiment", float64(e.order),
			obs.FS("id", e.id), obs.F("report_lines", float64(len(r.Lines))))
	}
}

// pct renders a fraction as a percent string.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// ratioX renders a multiple (e.g. "2.1x").
func ratioX(v float64) string { return fmt.Sprintf("%.2fx", v) }
