package experiments

import (
	"fmt"

	"warehousesim/internal/cluster"
	"warehousesim/internal/core"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-energy", "Extension — time-resolved energy: joules/request and proportionality per design", runExtEnergy)
}

// runExtEnergy runs each (design, workload) pair under the
// utilization-conditioned energy plane and tabulates what the paper's
// static activity-factor wattage hides: the energy actually spent per
// completed request and the design's energy-proportionality slope (how
// many watts move per unit of cpu utilization; a static model's slope
// is 0 and a perfectly proportional server's intercept is 0). Designs
// with the same static watts separate once draw follows the measured
// utilization timeline — the low-power platforms spend fewer joules
// per request both because they draw less and because the adaptive
// driver holds them at higher utilization.
func runExtEnergy() (Report, error) {
	r := Report{ID: "ext-energy", Title: "Extension — time-resolved energy: joules/request and proportionality per design"}
	designs := []core.Design{
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN2(),
	}
	profiles := []workload.Profile{
		workload.WebsearchProfile(),
		workload.WebmailProfile(),
		workload.YtubeProfile(),
	}
	ev := core.NewEvaluator()

	const windowSec = 2.0
	r.addf("utilization-conditioned power over %gs tumbling windows (seed-9 DES", windowSec)
	r.addf("run at each design's adaptive operating point; idle/active split")
	r.addf("from the platform catalog):")
	r.addf("")
	r.addf("%-11s %-10s %9s %8s %8s %9s %11s %10s", "design", "workload",
		"static-W", "mean-W", "J/req", "req/J", "slope-W/u", "intcpt-W")

	for _, d := range designs {
		for _, p := range profiles {
			cfg, err := ev.ClusterConfig(d, p)
			if err != nil {
				return Report{}, err
			}
			pb, err := ev.PowerBreakdown(d)
			if err != nil {
				return Report{}, err
			}
			sink := obs.NewSink()
			opts := cluster.SimOptions{
				Seed: 9, WarmupSec: 5, MeasureSec: 30, MaxClients: 512,
				Obs: sink,
				Energy: &energy.Config{
					WidthSec: windowSec,
					Model:    energy.Model{Active: pb, Idle: power.DefaultIdleFractions()},
				},
			}
			res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opts)
			if err != nil {
				return Report{}, err
			}
			if res.Energy == nil {
				return Report{}, fmt.Errorf("ext-energy: %s/%s returned no energy collector", d.Name, p.Name)
			}
			t := res.Energy.Totals()
			prop := res.Energy.Proportionality()
			r.addf("%-11s %-10s %9.1f %8.1f %8.3f %9.3f %11.1f %10.1f",
				d.Name, p.Name, t.StaticW, t.MeanW,
				t.JoulesPerRequest, t.PerfPerWatt,
				prop.SlopeWPerUtil, prop.InterceptW)
		}
	}
	r.addf("")
	r.addf("reading: static-W is what the paper's flat activity-factor model")
	r.addf("charges regardless of load; mean-W follows the run's utilization")
	r.addf("timeline. slope-W/u is the least-squares watts-vs-cpu-utilization")
	r.addf("fit across windows — the fraction of the draw that is actually")
	r.addf("load-proportional — and intcpt-W is the fixed floor paid at idle.")
	return r, nil
}
