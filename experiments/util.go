package experiments

import (
	"fmt"
	"strconv"
)

func fmtInt(v int) string { return strconv.Itoa(v) }

// fseconds renders a duration in seconds compactly.
func fseconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1e3)
	default:
		return fmt.Sprintf("%.3gs", s)
	}
}
