package experiments

import (
	"warehousesim/internal/core"
	"warehousesim/internal/cost"
	"warehousesim/internal/memblade"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
)

func init() {
	register("ext-ensemble", "§3.4 motivation — ensemble memory overprovisioning", runExtEnsemble)
	register("abl-realestate", "Ablation — real-estate cost and compaction (§2.2)", runAblRealEstate)
}

// runExtEnsemble quantifies the claim that motivates memory blades:
// per-server peak sizing wastes DRAM that pool-level sizing recovers.
func runExtEnsemble() (Report, error) {
	r := Report{ID: "ext-ensemble", Title: "§3.4 motivation — ensemble memory overprovisioning"}
	r.addf("Monte Carlo: per-server p99 provisioning vs blade-pool p99")
	r.addf("(log-normal per-server demand, p99/mean = 2.0):")
	r.addf("%-14s %14s %14s %12s", "pool size", "per-server GB", "pooled GB/srv", "DRAM saved")
	for _, servers := range []int{4, 8, 16, 32, 64} {
		cfg := memblade.DefaultEnsembleConfig()
		cfg.Servers = servers
		res, err := memblade.SimulateEnsemble(cfg)
		if err != nil {
			return Report{}, err
		}
		r.addf("%-14d %14.2f %14.2f %12s", servers,
			res.PerServerGB, res.PooledPerServerGB, pct(res.SavingsFraction()))
	}
	r.addf("")
	r.addf("demand-variability sensitivity (16-server pool):")
	r.addf("%-14s %12s", "p99/mean", "DRAM saved")
	for _, ratio := range []float64{1.3, 1.6, 2.0, 2.5, 3.0} {
		cfg := memblade.DefaultEnsembleConfig()
		cfg.PeakToMean = ratio
		res, err := memblade.SimulateEnsemble(cfg)
		if err != nil {
			return Report{}, err
		}
		r.addf("%-14.1f %12s", ratio, pct(res.SavingsFraction()))
	}
	r.addf("")
	r.addf("(the paper's dynamic scheme assumes 15%% total-DRAM savings;")
	r.addf(" pool-level sizing supports considerably more at high variability)")
	return r, nil
}

// runAblRealEstate adds the floor-space cost §2.2 mentions but the
// paper's published dollars exclude — the channel through which the
// 320/1250-per-rack compaction of §3.3 pays off directly.
func runAblRealEstate() (Report, error) {
	r := Report{ID: "abl-realestate", Title: "Ablation — real-estate cost and compaction (§2.2)"}
	r.addf("N1/N2 Perf/TCO-$ hmean vs srvr1, by floor-space cost per rack-year:")
	r.addf("%-16s %10s %10s", "$/rack-year", "N1", "N2")
	for _, rate := range []float64{0, 1200, 2400, 6000} {
		ev := core.NewEvaluator()
		m := cost.DefaultModel()
		m.RealEstateUSDPerRackYear = rate
		ev.Cost = m
		tbl, err := ev.EvaluateSuite([]core.Design{
			core.BaselineDesign(platform.Srvr1()), core.NewN1(), core.NewN2(),
		})
		if err != nil {
			return Report{}, err
		}
		hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
		r.addf("%-16.0f %10s %10s", rate, ratioX(hm["N1"]), ratioX(hm["N2"]))
	}
	r.addf("")
	r.addf("(at $0 this matches fig5; floor-space cost rewards the 8x/31x")
	r.addf(" compaction — the paper's 'consumes 30%% less racks' benefit)")
	return r, nil
}
