package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"warehousesim/internal/cluster"
	"warehousesim/internal/obs"
)

// RunSpec describes one experiments invocation: which experiments to
// run, where to record registry-level observability, how many suite
// workers to fan across, and what to call as results commit. The zero
// value runs the whole registry sequentially with no recording; it is
// the only entry point — the legacy Run/RunAll wrapper family was
// removed in favor of spelling the point in this space directly.
type RunSpec struct {
	// IDs selects experiments by registry id, in the order given; an
	// unknown id fails the whole call before anything runs. Empty means
	// every registered experiment in registry order.
	IDs []string
	// Recorder receives registry-level observability — an "experiment"
	// event plus run/error counters per experiment (see recordEntry).
	// Nil records nothing.
	Recorder obs.Recorder
	// Parallelism is the suite-level worker count; values <= 1 run
	// sequentially. Output is byte-identical at every value: workers
	// speculate ahead, but reports, recorder contents, and Progress
	// calls commit strictly in selection order.
	Parallelism int
	// Progress, when non-nil, is called after each experiment commits.
	Progress func(SuiteProgress)
	// Fleet, when non-nil, overrides the fleet shape the ext-fleet
	// experiment sweeps (whbench wires the -racks/-hot-racks/-balancer
	// flags through here). Experiments other than ext-fleet ignore it.
	Fleet *cluster.FleetTopology
}

// fleetOverride is the RunSpec.Fleet value of the Execute call in
// flight, consumed by the ext-fleet experiment (fleet.go). Execute
// resets it after its workers drain, so it is never read concurrently
// with a write.
var fleetOverride *cluster.FleetTopology

// Execute runs the experiments selected by spec and returns their
// reports in selection order. An error from the experiment at selection
// position i aborts the suite with that error; speculative results past
// i are discarded, exactly as a sequential loop would never have
// produced them.
func Execute(spec RunSpec) ([]Report, error) {
	entries, err := selectEntries(spec.IDs)
	if err != nil {
		return nil, err
	}
	if spec.Fleet != nil {
		fleetOverride = spec.Fleet
		// executeEntries waits for its speculative workers before
		// returning, so the reset cannot race a reader.
		defer func() { fleetOverride = nil }()
	}
	return executeEntries(entries, spec.Recorder, spec.Parallelism, spec.Progress)
}

// selectEntries resolves a RunSpec id list against the registry.
func selectEntries(ids []string) ([]entry, error) {
	if len(ids) == 0 {
		return registry, nil
	}
	byID := make(map[string]entry, len(registry))
	for _, e := range registry {
		byID[e.id] = e
	}
	out := make([]entry, 0, len(ids))
	for _, id := range ids {
		e, ok := byID[id]
		if !ok {
			known := IDs()
			sort.Strings(known)
			return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// executeEntries is the speculative-but-ordered suite engine behind
// Execute: workers may compute ahead of the commit point, but nothing
// observable (report order, recorder contents, error selection,
// progress calls) depends on completion order, so output is
// byte-identical to the sequential path at any worker count.
func executeEntries(entries []entry, rec obs.Recorder, par int, onDone func(SuiteProgress)) ([]Report, error) {
	if par > len(entries) {
		par = len(entries)
	}
	out := make([]Report, 0, len(entries))
	commit := func(e entry, r Report, err error) error {
		recordEntry(e, r, err, rec)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, r)
		if onDone != nil {
			onDone(SuiteProgress{ID: e.id, Index: e.order, Done: len(out), Total: len(entries)})
		}
		return nil
	}

	if par <= 1 {
		for _, e := range entries {
			r, err := e.run()
			if err := commit(e, r, err); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	type result struct {
		rep Report
		err error
	}
	results := make([]result, len(entries))
	ready := make([]chan struct{}, len(entries))
	next := make(chan int, len(entries))
	for i := range entries {
		ready[i] = make(chan struct{})
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := entries[i].run()
				results[i] = result{rep: r, err: err}
				close(ready[i])
			}
		}()
	}
	// On early error the remaining speculative runs are left to drain;
	// they touch only their own slots.
	defer wg.Wait()

	for i, e := range entries {
		<-ready[i]
		if err := commit(e, results[i].rep, results[i].err); err != nil {
			return nil, err
		}
	}
	return out, nil
}
