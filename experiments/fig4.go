package experiments

import (
	"warehousesim/internal/cluster"
	"warehousesim/internal/cost"
	"warehousesim/internal/memblade"
	"warehousesim/internal/paper"
	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
	"warehousesim/internal/workload"
	"warehousesim/internal/workload/mapreduce"
	"warehousesim/internal/workload/webmail"
	"warehousesim/internal/workload/websearch"
	"warehousesim/internal/workload/ytube"
)

func init() {
	register("fig4b", "Figure 4(b) — memory-blade slowdowns", runFig4b)
	register("fig4c", "Figure 4(c) — memory provisioning efficiencies", runFig4c)
}

// traceRequests is the per-workload trace length replayed through the
// two-level memory simulator. Long enough that the local memory fills
// and capacity misses dominate cold misses.
const traceRequests = 20000

// pageTracers builds the engine-backed page tracers for the suite.
// Engines run their real data structures; see each package.
func pageTracers() (map[string]trace.PageTracer, error) {
	out := map[string]trace.PageTracer{}

	ws, err := websearch.New(websearch.DefaultConfig(), workload.WebsearchProfile())
	if err != nil {
		return nil, err
	}
	out["websearch"] = ws

	wm, err := webmail.New(webmail.DefaultConfig(), workload.WebmailProfile())
	if err != nil {
		return nil, err
	}
	out["webmail"] = wm

	yt, err := ytube.New(ytube.DefaultConfig(), workload.YtubeProfile())
	if err != nil {
		return nil, err
	}
	out["ytube"] = yt

	corpus := mapreduce.DefaultCorpusConfig()
	wc, err := mapreduce.NewWordCount(corpus, workload.MapReduceWCProfile())
	if err != nil {
		return nil, err
	}
	out["mapred-wc"] = wc

	wr, err := mapreduce.NewWrite(corpus, 64, workload.MapReduceWRProfile())
	if err != nil {
		return nil, err
	}
	out["mapred-wr"] = wr
	return out, nil
}

// memReplay replays a trace at one configuration and returns
// steady-state misses per request: the first half of the trace warms the
// local memory, only the second half is measured (cold misses would
// otherwise mask the capacity behavior the experiment studies).
func memReplay(tr *trace.PageTrace, footprintPages int64, localFrac float64, pol memblade.Policy) (float64, error) {
	sim, err := memblade.New(memblade.Config{
		FootprintPages: footprintPages,
		LocalFraction:  localFrac,
		Policy:         pol,
		Seed:           7,
	})
	if err != nil {
		return 0, err
	}
	half := len(tr.RequestEnds) / 2
	split := tr.RequestEnds[half-1]
	warm := &trace.PageTrace{Accesses: tr.Accesses[:split], RequestEnds: tr.RequestEnds[:half]}
	measure := &trace.PageTrace{Accesses: tr.Accesses[split:], RequestEnds: make([]int, 0, len(tr.RequestEnds)-half)}
	for _, e := range tr.RequestEnds[half:] {
		measure.RequestEnds = append(measure.RequestEnds, e-split)
	}
	before := memblade.Replay(sim, warm)
	after := memblade.Replay(sim, measure)
	st := memblade.Stats{
		Accesses: after.Accesses - before.Accesses,
		Misses:   after.Misses - before.Misses,
		Requests: after.Requests - before.Requests,
	}
	return st.MissesPerRequest(), nil
}

func runFig4b() (Report, error) {
	r := Report{ID: "fig4b", Title: "Figure 4(b) — memory-blade slowdowns"}
	tracers, err := pageTracers()
	if err != nil {
		return Report{}, err
	}
	emb1 := cluster.Config{Server: platform.Emb1()}

	r.addf("slowdown vs all-local memory (model / paper where published);")
	r.addf("access scale calibrated on the PCIe@25%%/random cell, other cells predicted:")
	r.addf("%-10s %12s %12s %12s %12s %8s", "workload",
		"pcie@25%", "cbf@25%", "pcie@12.5%", "cbf@12.5%", "lru@25%")

	for _, p := range workload.SuiteProfiles() {
		tracer := tracers[p.Name]
		footprint := int64(p.MemFootprintMB * 1e6 / 4096)
		rng := stats.NewRNG(11)
		tr := trace.CollectPages(tracer, rng, traceRequests)

		mpr25, err := memReplay(tr, footprint, 0.25, memblade.Random)
		if err != nil {
			return Report{}, err
		}
		mpr125, err := memReplay(tr, footprint, 0.125, memblade.Random)
		if err != nil {
			return Report{}, err
		}
		mprLRU, err := memReplay(tr, footprint, 0.25, memblade.LRU)
		if err != nil {
			return Report{}, err
		}

		service := emb1.MeanDemands(p).Total()
		pub := paper.Figure4bSlowdown["pcie-x4"][p.Name]
		// Calibrate the trace-to-full-memory-reference scale on the
		// published PCIe@25% cell (DESIGN.md §2).
		scale := 1.0
		if mpr25 > 0 && pub > 0 {
			scale = pub * service / (mpr25 * memblade.PCIeX4().StallPerMissSec)
		}
		slow := func(mpr float64, ic memblade.Interconnect) float64 {
			s, err := memblade.Slowdown(memblade.Stats{Misses: int64(mpr * 1e6), Requests: 1e6},
				ic, service, scale)
			if err != nil {
				return -1
			}
			return s
		}
		pcie25 := slow(mpr25, memblade.PCIeX4())
		cbf25 := slow(mpr25, memblade.CBF())
		pcie125 := slow(mpr125, memblade.PCIeX4())
		cbf125 := slow(mpr125, memblade.CBF())
		lru25 := slow(mprLRU, memblade.PCIeX4())

		pubCBF := paper.Figure4bSlowdown["cbf"][p.Name]
		r.addf("%-10s %5.1f%%/%4.1f%% %5.1f%%/%4.1f%% %11.1f%% %11.1f%% %7.1f%%",
			p.Name, pcie25*100, pub*100, cbf25*100, pubCBF*100,
			pcie125*100, cbf125*100, lru25*100)
	}
	r.addf("")
	r.addf("paper text bounds: pcie@25%% <= 5%%, pcie@12.5%% <= 10%%, cbf@25%% ~1%%, cbf@12.5%% ~2.5%%")
	return r, nil
}

func runFig4c() (Report, error) {
	r := Report{ID: "fig4c", Title: "Figure 4(c) — memory provisioning efficiencies"}
	m := cost.DefaultModel()
	rack := platform.DefaultRack()
	base := platform.Emb1()
	baseInf, basePC, baseTCO := m.ServerTCO(base, rack)
	basePwr := m.Power.ServerConsumed(base, rack).TotalW()

	r.addf("emb1 baseline vs memory-sharing schemes (2%% assumed slowdown):")
	r.addf("%-9s %12s %10s %12s %14s", "scheme", "Perf/Inf-$", "Perf/W", "Perf/TCO-$", "paper (I/W/T)")
	for _, sc := range []memblade.Scheme{memblade.StaticScheme(), memblade.DynamicScheme()} {
		srv, err := sc.Apply(base)
		if err != nil {
			return Report{}, err
		}
		inf, pc, tco := m.ServerTCO(srv, rack)
		_ = pc
		pwr := m.Power.ServerConsumed(srv, rack).TotalW()
		perfFactor := 1 - sc.AssumedSlowdown
		relInf := perfFactor / (inf / baseInf)
		relW := perfFactor / (pwr / basePwr)
		relTCO := perfFactor / (tco / baseTCO)
		pub := paper.Figure4c[sc.Name]
		r.addf("%-9s %12s %10s %12s   %s/%s/%s",
			sc.Name, pct(relInf), pct(relW), pct(relTCO),
			pct(pub["Perf/Inf-$"]), pct(pub["Perf/W"]), pct(pub["Perf/TCO-$"]))
	}
	r.addf("")
	r.addf("(baseline P&C $%.0f; emb1 inf $%.0f)", basePC, baseInf)
	return r, nil
}
