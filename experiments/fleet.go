package experiments

import (
	"fmt"

	"warehousesim/internal/cluster"
	"warehousesim/internal/core"
	"warehousesim/internal/obs"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func init() {
	register("ext-fleet", "Extension — warehouse-scale hybrid fleet Perf/TCO", runExtFleet)
}

// fleetCell is one point of the ext-fleet sweep: a fleet shape
// evaluated for one design on one profile under one balancer policy.
type fleetCell struct {
	design   core.Design
	profile  workload.Profile
	topo     cluster.FleetTopology
	seed     uint64
	tcoUSD   float64 // per server, from the evaluator
	res      cluster.Result
	sloViol  int
	sloTotal int
	err      error
}

// fleetShapes returns the fleet configurations the sweep covers: the
// RunSpec.Fleet override when one was passed (whbench -racks ...), else
// the default warehouse-scale ladder. Every shape keeps the hot set
// small — the point of the hybrid is that DES cost scales with the hot
// set while fleet size rides the analytic stand-in for free.
func fleetShapes() []cluster.FleetTopology {
	if fleetOverride != nil {
		t := *fleetOverride
		t.HotSet = append([]int(nil), fleetOverride.HotSet...)
		t.Rack.Boards = append([]int(nil), fleetOverride.Rack.Boards...)
		if t.Rack.Enclosures == 0 {
			t.Rack = defaultFleetRack()
		}
		return []cluster.FleetTopology{t}
	}
	rack := defaultFleetRack()
	return []cluster.FleetTopology{
		{Racks: 100, HotRacks: 2, Rack: rack},
		{Racks: 200, HotRacks: 2, Rack: rack},
		{Racks: 400, HotRacks: 2, Rack: rack},
	}
}

// defaultFleetRack is the per-rack template of the default sweep: a
// small sharded rack so each hot rack's DES stays cheap.
func defaultFleetRack() cluster.ShardedTopology {
	return cluster.ShardedTopology{Enclosures: 2, BoardsPerEnclosure: 2, Shards: 2}
}

// runExtFleet scales the paper's Perf/TCO comparison from one server to
// a warehouse floor: fleets of hundreds of racks, a few hot racks under
// full DES, the cold remainder on the analytic stand-in, under both
// balancer policies. The table reports fleet throughput, fleet-level
// Perf/TCO (3-year, every server in every rack priced), and the QoS
// picture — per-rack violations plus windowed violation counts from the
// hot racks' SLO plane.
func runExtFleet() (Report, error) {
	r := Report{ID: "ext-fleet", Title: "Extension — warehouse-scale hybrid fleet Perf/TCO"}
	designs := []core.Design{
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN2(),
	}
	profiles := []workload.Profile{
		workload.WebsearchProfile(),
		workload.WebmailProfile(),
	}
	balancers := []string{cluster.BalancerWRR, cluster.BalancerLeastLoaded}
	shapes := fleetShapes()
	ev := core.NewEvaluator()

	cells := make([]fleetCell, 0, len(shapes)*len(designs)*len(profiles)*len(balancers))
	for _, shape := range shapes {
		for _, d := range designs {
			for _, p := range profiles {
				for _, b := range balancers {
					t := shape
					t.HotSet = append([]int(nil), shape.HotSet...)
					t.Rack.Boards = append([]int(nil), shape.Rack.Boards...)
					t.Balancer = b
					cells = append(cells, fleetCell{design: d, profile: p, topo: t, seed: 11})
				}
			}
		}
	}

	runCells(SweepParallelism(), len(cells), func(i int) {
		c := &cells[i]
		cfg, err := ev.ClusterConfig(c.design, c.profile)
		if err != nil {
			c.err = err
			return
		}
		ms, err := ev.Evaluate(c.design, []workload.Profile{c.profile})
		if err != nil {
			c.err = err
			return
		}
		c.tcoUSD = ms[0].TCOUSD
		topo := c.topo
		sink := obs.NewSink()
		opts := cluster.SimOptions{
			Seed: c.seed, WarmupSec: 5, MeasureSec: 20, MaxClients: 512,
			Obs: sink, SLOWindowSec: 2, Topology: &topo,
		}
		c.res, c.err = cfg.Simulate(workload.FixedGenerator{P: c.profile}, opts)
		if c.err != nil {
			return
		}
		if c.res.SLO != nil {
			for _, w := range c.res.SLO.Windows() {
				c.sloTotal++
				if w.Violating {
					c.sloViol++
				}
			}
		}
	})

	boards := 0
	if n := shapes[0].Rack.Enclosures * shapes[0].Rack.BoardsPerEnclosure; n > 0 {
		boards = n
	}
	r.addf("hybrid fleet sweep: hot racks on full sharded DES, cold racks on")
	r.addf("the analytic M/M/m stand-in at the balancer's operating point;")
	r.addf("Perf/TCO prices every server in every rack over 3 years (seed-11")
	r.addf("runs; exports are byte-identical at any -shards/-par/hot-set order):")
	r.addf("")
	r.addf("%-7s %-10s %6s %4s %-12s %11s %8s %10s %9s %9s", "design", "workload",
		"racks", "hot", "balancer", "fleet-rps", "qos-ok", "viol-rk", "slo-wnd", "perf/M$")
	for i := range cells {
		c := &cells[i]
		if c.err != nil {
			return Report{}, fmt.Errorf("ext-fleet: %s/%s racks=%d %s: %w",
				c.design.Name, c.profile.Name, c.topo.Racks, c.topo.Balancer, c.err)
		}
		fb := c.res.Fleet
		if fb == nil {
			return Report{}, fmt.Errorf("ext-fleet: %s/%s returned no fleet breakdown", c.design.Name, c.profile.Name)
		}
		violRacks := 0
		for _, fr := range fb.RackResults {
			if !fr.QoSMet {
				violRacks++
			}
		}
		rackBoards := boards
		if len(c.topo.Rack.Boards) > 0 || rackBoards == 0 {
			rackBoards = 0
			for _, bn := range c.topo.Rack.Boards {
				rackBoards += bn
			}
			if rackBoards == 0 {
				rackBoards = c.topo.Rack.Enclosures * c.topo.Rack.BoardsPerEnclosure
			}
		}
		fleetTCO := c.tcoUSD * float64(rackBoards) * float64(fb.Racks)
		perfPerMegaUSD := 0.0
		if fleetTCO > 0 {
			perfPerMegaUSD = c.res.Throughput / fleetTCO * 1e6
		}
		r.addf("%-7s %-10s %6d %4d %-12s %11.4g %8v %8d %6d/%-3d %9.4g",
			c.design.Name, c.profile.Name, fb.Racks, len(fb.HotIDs), fb.Balancer,
			c.res.Throughput, c.res.QoSMet, violRacks, c.sloViol, c.sloTotal,
			perfPerMegaUSD)
	}
	r.addf("")
	r.addf("reading: fleet-rps scales linearly with racks while DES cost stays")
	r.addf("fixed at the hot set — the hybrid's point. perf/M$ is fleet rps per")
	r.addf("million TCO dollars, so the paper's per-server efficiency ordering")
	r.addf("must (and does) survive the jump to warehouse scale. viol-rk counts")
	r.addf("racks whose own QoS failed; slo-wnd the hot racks' violating/total")
	r.addf("SLO windows. wrr and least-loaded agree on homogeneous fleets at")
	r.addf("steady state — divergence appears once racks saturate and")
	r.addf("least-loaded leaves excess demand unserved instead of overloading.")
	return r, nil
}
