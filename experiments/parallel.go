package experiments

import "sync"

// This file is the deterministic parallel sweep engine. Two levels of
// parallelism compose:
//
//   - Execute (execute.go) fans whole experiments across a worker pool
//     and commits their results — reports, registry-level observability,
//     progress callbacks — strictly in registry order.
//   - runCells fans the independent (design x profile x trial) cells
//     INSIDE an experiment (see validate.go) across a pool, with results
//     written to caller-indexed slots and merged in cell order.
//
// Both are speculative-but-ordered: workers may compute ahead of the
// commit point, but nothing observable (report order, recorder
// contents, error selection) depends on completion order, so output is
// byte-identical to the sequential path at any worker count. Each cell
// must be self-contained — own Sim, own RNG, own generator — which
// every registered experiment already guarantees.

// SweepParallelism is the worker count experiments use for their
// internal cell sweeps (runCells callers read it); 1 means sequential.
// Set it once, before running experiments — it is read concurrently by
// suite workers and must not change mid-run.
var sweepParallelism = 1

// SetSweepParallelism sets the internal-sweep worker count (values < 1
// clamp to 1). Call before Run/RunAll, never during.
func SetSweepParallelism(n int) {
	if n < 1 {
		n = 1
	}
	sweepParallelism = n
}

// SweepParallelism returns the current internal-sweep worker count.
func SweepParallelism() int { return sweepParallelism }

// runCells executes n independent cells across min(par, n) workers and
// returns when all have finished. Cells receive their index and must
// write results only to their own slot of a caller-owned slice; the
// caller merges in index order afterwards, which keeps any derived
// output identical to running the cells sequentially.
func runCells(par, n int, cell func(i int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			cell(i)
		}
		return
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cell(i)
			}
		}()
	}
	wg.Wait()
}

// SuiteProgress describes one committed experiment of a suite run.
type SuiteProgress struct {
	// ID is the experiment just committed; Index its registry position.
	ID    string
	Index int
	// Done experiments out of Total have committed (Done = Index+1 as
	// long as no experiment errored).
	Done, Total int
}
