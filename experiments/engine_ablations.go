package experiments

import (
	"strconv"

	"warehousesim/internal/cluster"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
	"warehousesim/internal/workload/mapreduce"
	"warehousesim/internal/workload/websearch"
)

func init() {
	register("abl-querycache", "Ablation — websearch front-end result cache", runAblQueryCache)
	register("abl-locality", "Ablation — DFS replication vs map-task locality", runAblLocality)
}

// runAblQueryCache measures what a front-end result cache does to
// websearch's sustained throughput — an application-stack optimization
// of the kind the paper says this sector moves into software.
func runAblQueryCache() (Report, error) {
	r := Report{ID: "abl-querycache", Title: "Ablation — websearch front-end result cache"}
	prof := workload.WebsearchProfile()
	cfg := websearch.Config{
		NumDocs: 4000, VocabSize: 6000, MeanDocLen: 100,
		CorpusZipfS: 1.0, QueryZipfS: 0.9, CachedTermFraction: 0.25, Seed: 1,
	}
	opts := cluster.SimOptions{Seed: 5, WarmupSec: 10, MeasureSec: 60, MaxClients: 2048}
	server := cluster.Config{Server: platform.Desk()}

	r.addf("desk websearch sustained throughput (discrete-event, real engine):")
	r.addf("%-14s %12s %10s %10s", "cache", "throughput", "hit rate", "p95")
	for _, entries := range []int{0, 1024, 16384} {
		eng, err := websearch.New(cfg, prof)
		if err != nil {
			return Report{}, err
		}
		label := "none"
		if entries > 0 {
			eng.SetQueryCache(websearch.NewQueryCache(entries))
			label = fmtInt(entries) + " entries"
		}
		res, err := server.Simulate(eng, opts)
		if err != nil {
			return Report{}, err
		}
		r.addf("%-14s %9.1f rps %10s %8.0fms", label, res.Throughput,
			pct(eng.QueryCacheHitRate()), res.P95Latency*1e3)
	}
	ix, err := websearch.Build(cfg)
	if err != nil {
		return Report{}, err
	}
	r.addf("")
	r.addf("index: %d docs, %d terms, %.1fx posting-list compression",
		ix.Docs(), ix.Vocab(), ix.CompressionRatio())
	return r, nil
}

// runAblLocality sweeps DFS replication and reports the map scheduler's
// data-locality rate — the knob that trades storage overhead against
// shuffle-in network traffic.
func runAblLocality() (Report, error) {
	r := Report{ID: "abl-locality", Title: "Ablation — DFS replication vs map-task locality"}
	r.addf("8 datanodes, 96 x 4MB chunks, locality-aware map scheduling;")
	r.addf("data-local task fraction as datanodes fail:")
	r.addf("%-12s %10s %10s %10s %10s %12s", "replication",
		"0 down", "1 down", "2 down", "3 down", "stored GB")
	for _, repl := range []int{1, 2, 3, 4} {
		d, err := mapreduce.NewDFS(mapreduce.DFSConfig{
			Nodes: 8, Replication: repl, ChunkBytes: 4 << 20}, 7)
		if err != nil {
			return Report{}, err
		}
		if err := d.Create("in", make([]byte, 96*(4<<20))); err != nil {
			return Report{}, err
		}
		row := pad(fmtInt(repl), 12)
		for downCount := 0; downCount <= 3; downCount++ {
			down := map[int]bool{}
			for n := 0; n < downCount; n++ {
				down[n] = true
			}
			_, st, err := mapreduce.ScheduleMapTasksExcluding(d, "in", down)
			if err != nil {
				return Report{}, err
			}
			row += pad(pct(st.LocalityRate()), 11)
		}
		row += pad(formatGB(d.TotalStoredBytes()), 12)
		r.Lines = append(r.Lines, row)
	}
	r.addf("")
	r.addf("(replication 3 — the Hadoop default the paper's setup used — keeps")
	r.addf(" locality near 100%% through node failures; replication 1 collapses)")
	return r, nil
}

func formatGB(b int64) string {
	return strconv.FormatFloat(float64(b)/1e9, 'f', 2, 64) + " GB"
}
