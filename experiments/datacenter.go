package experiments

import (
	"warehousesim/internal/core"
	"warehousesim/internal/platform"
)

func init() {
	register("ext-datacenter", "Capstone — whole green-field datacenter TCO", runExtDatacenter)
}

// runExtDatacenter plans a complete green-field datacenter per design:
// multi-workload pool sizing with scale-out overheads, availability
// sparing, packaging density, a designed network fabric, diurnal energy
// with consolidation, and floor space — every substrate in one number.
func runExtDatacenter() (Report, error) {
	r := Report{ID: "ext-datacenter", Title: "Capstone — whole green-field datacenter TCO"}
	// A mid-size service mix: the load ~50 srvr1 servers sustain.
	targets := map[string]float64{
		"websearch": 800,
		"webmail":   1800,
		"ytube":     1800,
		"mapred-wc": 0.2,
		"mapred-wr": 0.17,
	}
	r.addf("service mix: websearch 800 rps, webmail 1800 rps, ytube 1800 rps,")
	r.addf("mapreduce 0.2/0.17 jobs/s; 99.99%% availability, 4:1 fabric,")
	r.addf("$2,400/rack-year floor space, diurnal consolidation, 3 years:")
	r.addf("")
	r.addf("%-8s %8s %7s %10s %9s %10s %9s %11s %9s", "design",
		"servers", "racks", "server $", "fabric $", "P&C $", "space $", "TOTAL $", "vs srvr1")

	ev := core.NewEvaluator()
	var baseline float64
	for _, d := range []core.Design{
		core.BaselineDesign(platform.Srvr1()),
		core.BaselineDesign(platform.Srvr2()),
		core.BaselineDesign(platform.Desk()),
		core.BaselineDesign(platform.Emb1()),
		core.NewN1(),
		core.NewN2(),
	} {
		plan, err := ev.PlanDatacenter(core.DefaultDatacenterSpec(d, targets))
		if err != nil {
			r.addf("%-8s cannot serve the mix: %v", d.Name, err)
			continue
		}
		total := plan.TotalUSD()
		if d.Name == "srvr1" {
			baseline = total
		}
		rel := "-"
		if baseline > 0 {
			rel = pct(total / baseline)
		}
		r.addf("%-8s %8d %7d %10.0f %9.0f %10.0f %9.0f %11.0f %9s",
			d.Name, plan.TotalServers, plan.Racks,
			plan.ServerHardwareUSD, plan.FabricUSD,
			plan.PowerCoolingUSD, plan.RealEstateUSD, total, rel)
	}
	r.addf("")
	r.addf("the per-server advantage survives whole-datacenter pricing (N1/N2")
	r.addf("at ~2/3 of srvr1's total), tempered by the webmail pool — the")
	r.addf("workload the paper itself shows regressing on low-end platforms;")
	r.addf("ext-hybrid shows per-pool design selection recovers the rest.")
	return r, nil
}
