// Package bench is the benchmark harness required by the reproduction:
// one testing.B benchmark per paper table and figure (each regenerates
// the artifact through the experiments registry), plus micro-benchmarks
// of the core simulators so performance regressions in the substrate are
// visible.
//
// Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"testing"

	"warehousesim/experiments"
	"warehousesim/internal/cluster"
	"warehousesim/internal/flashcache"
	"warehousesim/internal/memblade"
	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
	"warehousesim/internal/workload"
	"warehousesim/internal/workload/mapreduce"
	"warehousesim/internal/workload/websearch"
)

// benchExperiment runs one registry experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		reps, err := experiments.Execute(experiments.RunSpec{IDs: []string{id}})
		if err != nil {
			b.Fatal(err)
		}
		rep := reps[0]
		if len(rep.Lines) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

// One benchmark per paper artifact (DESIGN.md per-experiment index).

func BenchmarkTable1(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)             { benchExperiment(b, "fig1") }
func BenchmarkTable2(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkFig2Breakdowns(b *testing.B)   { benchExperiment(b, "fig2ab") }
func BenchmarkFig2Efficiency(b *testing.B)   { benchExperiment(b, "fig2c") }
func BenchmarkFig3Cooling(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4Memory(b *testing.B)       { benchExperiment(b, "fig4b") }
func BenchmarkFig4Provisioning(b *testing.B) { benchExperiment(b, "fig4c") }
func BenchmarkTable3Flash(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFig5Unified(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig5AltBaselines(b *testing.B) { benchExperiment(b, "fig5alt") }
func BenchmarkRackPower(b *testing.B)        { benchExperiment(b, "rackpower") }

// Ablation benches (design choices DESIGN.md calls out).

func BenchmarkAblActivityFactor(b *testing.B) { benchExperiment(b, "abl-activity") }
func BenchmarkAblTariff(b *testing.B)         { benchExperiment(b, "abl-tariff") }
func BenchmarkAblPolicy(b *testing.B)         { benchExperiment(b, "abl-policy") }
func BenchmarkAblCBF(b *testing.B)            { benchExperiment(b, "abl-cbf") }
func BenchmarkAblFlashSize(b *testing.B)      { benchExperiment(b, "abl-flash") }
func BenchmarkAblCooling(b *testing.B)        { benchExperiment(b, "abl-cooling") }
func BenchmarkAblQueryCache(b *testing.B)     { benchExperiment(b, "abl-querycache") }
func BenchmarkAblLocality(b *testing.B)       { benchExperiment(b, "abl-locality") }

// §4 extension benches.

func BenchmarkExtMemtech(b *testing.B)   { benchExperiment(b, "ext-memtech") }
func BenchmarkExtFlashdisk(b *testing.B) { benchExperiment(b, "ext-flashdisk") }
func BenchmarkExtScaleout(b *testing.B)  { benchExperiment(b, "ext-scaleout") }
func BenchmarkExtDiurnal(b *testing.B)   { benchExperiment(b, "ext-diurnal") }
func BenchmarkExtHybrid(b *testing.B)    { benchExperiment(b, "ext-hybrid") }

// --- substrate micro-benchmarks -----------------------------------------

func BenchmarkAnalyticSolve(b *testing.B) {
	cfg := cluster.Config{Server: platform.Emb1()}
	p := workload.WebsearchProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESTrial(b *testing.B) {
	cfg := cluster.Config{Server: platform.Desk()}
	p := workload.WebsearchProfile()
	gen := workload.FixedGenerator{P: p}
	opts := cluster.SimOptions{Seed: 1, WarmupSec: 5, MeasureSec: 20, MaxClients: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Simulate(gen, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchQuery(b *testing.B) {
	ix, err := websearch.Build(websearch.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ix.NewQuery(r)
		ix.Search(q, 10)
	}
}

func BenchmarkMapReduceWordCount(b *testing.B) {
	cfg := mapreduce.DefaultCorpusConfig()
	cfg.TotalBytes = 1 << 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := mapreduce.NewDFS(mapreduce.DefaultDFSConfig(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := mapreduce.GenerateCorpus(d, "c", cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := mapreduce.Run(d, mapreduce.WordCountJob("c", "out")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMembladeAccess(b *testing.B) {
	sim, err := memblade.New(memblade.Config{
		FootprintPages: 1 << 20, LocalFraction: 0.25, Policy: memblade.LRU, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(2)
	z, err := stats.NewZipf(1<<20, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Access(int64(z.Rank(r)), i%5 == 0)
	}
}

func BenchmarkFlashCacheOp(b *testing.B) {
	sim, err := flashcache.New(flashcache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := r.Int63n(1 << 22)
		if i%10 == 0 {
			sim.Write(block)
		} else {
			sim.Read(block)
		}
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z, err := stats.NewZipf(1<<20, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Rank(r)
	}
}

func BenchmarkPageTraceCollect(b *testing.B) {
	sp, err := trace.NewSyntheticPages(1<<18, 0.9, 20, 0.25, 5)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace.CollectPages(sp, r, 10)
	}
}

func BenchmarkExtEnsemble(b *testing.B)   { benchExperiment(b, "ext-ensemble") }
func BenchmarkAblRealEstate(b *testing.B) { benchExperiment(b, "abl-realestate") }

func BenchmarkValidate(b *testing.B) { benchExperiment(b, "validate") }

func BenchmarkAblCoolingCredit(b *testing.B) { benchExperiment(b, "abl-coolingcredit") }
func BenchmarkExtPowerProv(b *testing.B)     { benchExperiment(b, "ext-powerprov") }

func BenchmarkExtFabric(b *testing.B)       { benchExperiment(b, "ext-fabric") }
func BenchmarkExtAvailability(b *testing.B) { benchExperiment(b, "ext-availability") }

func BenchmarkExtDatacenter(b *testing.B) { benchExperiment(b, "ext-datacenter") }

func BenchmarkExtCritpath(b *testing.B) { benchExperiment(b, "ext-critpath") }

func BenchmarkExtFleet(b *testing.B) { benchExperiment(b, "ext-fleet") }
