package cooling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConventionalFanPowerMatchesCatalogScale(t *testing.T) {
	// A 340W 1U server (srvr1 class) should need ~40W of fans — the value
	// the platform catalog carries.
	got := EnclosureFor(Conventional).FanPowerW(340)
	if math.Abs(got-40)/40 > 0.05 {
		t.Errorf("conventional fan power for 340W = %gW, want ~40W", got)
	}
}

func TestFanPowerZeroForIdle(t *testing.T) {
	for _, d := range []Design{Conventional, DualEntry, AggregatedMicroblade} {
		if got := EnclosureFor(d).FanPowerW(0); got != 0 {
			t.Errorf("%v: fan power for 0W IT = %g", d, got)
		}
	}
}

// The paper claims the two new designs "have the potential to improve
// efficiencies by 2X and 4X" (§3.3).
func TestEfficiencyFactorsMatchPaper(t *testing.T) {
	dual := EnclosureFor(DualEntry).EfficiencyVsConventional()
	if dual < 1.8 || dual > 2.8 {
		t.Errorf("dual-entry efficiency = %.2fx, paper ~2x", dual)
	}
	agg := EnclosureFor(AggregatedMicroblade).EfficiencyVsConventional()
	if agg < 3.4 || agg > 4.6 {
		t.Errorf("aggregated efficiency = %.2fx, paper ~4x", agg)
	}
	if agg <= dual {
		t.Errorf("aggregated (%g) should beat dual-entry (%g)", agg, dual)
	}
}

func TestEfficiencyConsistentWithFanPower(t *testing.T) {
	// EfficiencyVsConventional must equal the fan-power ratio.
	for _, d := range []Design{DualEntry, AggregatedMicroblade} {
		e := EnclosureFor(d)
		want := EnclosureFor(Conventional).FanPowerW(100) / e.FanPowerW(100)
		got := e.EfficiencyVsConventional()
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%v: efficiency %g != fan ratio %g", d, got, want)
		}
	}
}

// Paper densities: 40 baseline, 320 dual-entry (75W blades), 1250
// aggregated microblades.
func TestDensitiesMatchPaper(t *testing.T) {
	if got := EnclosureFor(Conventional).Density(340); got != 40 {
		t.Errorf("conventional density = %d", got)
	}
	if got := EnclosureFor(DualEntry).Density(75); got != 320 {
		t.Errorf("dual-entry density = %d", got)
	}
	if got := EnclosureFor(AggregatedMicroblade).Density(30); got != 1250 {
		t.Errorf("aggregated density = %d", got)
	}
}

func TestDensityFallsBackWhenTooHot(t *testing.T) {
	if got := EnclosureFor(DualEntry).Density(340); got != 40 {
		t.Errorf("hot server in dual-entry should fall back to 40, got %d", got)
	}
	if got := EnclosureFor(AggregatedMicroblade).Density(78); got != 40 {
		t.Errorf("mobl-class in aggregated should fall back to 40, got %d", got)
	}
}

func TestRoomCoolingFactor(t *testing.T) {
	if got := EnclosureFor(Conventional).RoomCoolingFactor(); math.Abs(got-1) > 1e-12 {
		t.Errorf("conventional factor = %g, want 1", got)
	}
	dual := EnclosureFor(DualEntry).RoomCoolingFactor()
	agg := EnclosureFor(AggregatedMicroblade).RoomCoolingFactor()
	if dual >= 1 || agg >= dual {
		t.Errorf("factors not improving: dual %g, aggregated %g", dual, agg)
	}
	// Consistency with the allowed-rise ratios that drive fan power.
	want := EnclosureFor(Conventional).allowedRiseC() / EnclosureFor(DualEntry).allowedRiseC()
	if math.Abs(dual-want) > 1e-12 {
		t.Errorf("dual factor %g inconsistent with rise ratio %g", dual, want)
	}
}

func TestHeatPipeConductionGain(t *testing.T) {
	// Planar heat pipes transfer heat at 3x copper's conductivity
	// (Figure 3b), i.e. one third the conduction resistance.
	cu := ThermalResistance(copperConductivity, 0.1, 0.0004)
	hp := ThermalResistance(heatPipeConductivity, 0.1, 0.0004)
	if math.Abs(cu/hp-3) > 1e-9 {
		t.Errorf("heat pipe gain = %g, want 3", cu/hp)
	}
}

func TestThermalResistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad spec did not panic")
		}
	}()
	ThermalResistance(0, 1, 1)
}

// Edge inputs: negative IT power draws no fans, an enclosure whose
// pre-heat consumes the whole air budget floors at a 1C rise instead of
// dividing by zero (or going negative), and the degenerate geometry
// still produces finite positive fan power.
func TestFanPowerEdgeInputs(t *testing.T) {
	for _, d := range []Design{Conventional, DualEntry, AggregatedMicroblade} {
		if got := EnclosureFor(d).FanPowerW(-50); got != 0 {
			t.Errorf("%v: fan power for negative IT = %g, want 0", d, got)
		}
	}
	hot := EnclosureFor(Conventional)
	hot.PreheatC = maxAirTempC - inletTempC + 10 // pre-heat past the exhaust limit
	if got := hot.allowedRiseC(); got != 1 {
		t.Errorf("over-preheated rise = %g, want the 1C floor", got)
	}
	fan := hot.FanPowerW(100)
	if math.IsNaN(fan) || math.IsInf(fan, 0) || fan <= 0 {
		t.Errorf("over-preheated fan power = %g, want finite positive", fan)
	}
	// The floor makes an impossibly pre-heated enclosure strictly worse
	// than the design geometry, never better.
	if fan <= EnclosureFor(Conventional).FanPowerW(100) {
		t.Errorf("over-preheated enclosure got cheaper fans: %g", fan)
	}
}

func TestThermalResistanceRejectsBadArea(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero area did not panic")
		}
	}()
	ThermalResistance(copperConductivity, 0.1, 0)
}

func TestDesignString(t *testing.T) {
	for d, want := range map[Design]string{
		Conventional:         "conventional-1U",
		DualEntry:            "dual-entry-directed-airflow",
		AggregatedMicroblade: "aggregated-microblade",
		Design(99):           "Design(99)",
	} {
		if got := d.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(d), got, want)
		}
	}
}

// Property: fan power is positive and monotone in IT power for all
// designs, and the new designs never need more fan power than the
// conventional one.
func TestQuickFanPowerMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		p1 := math.Abs(a)
		p2 := p1 + math.Abs(b)
		if p1 > 1e6 || p2 > 1e6 {
			return true // skip absurd inputs
		}
		conv := EnclosureFor(Conventional)
		for _, d := range []Design{Conventional, DualEntry, AggregatedMicroblade} {
			e := EnclosureFor(d)
			f1, f2 := e.FanPowerW(p1), e.FanPowerW(p2)
			if f1 < 0 || f2 < f1-1e-12 {
				return false
			}
			if f1 > conv.FanPowerW(p1)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
