// Package cooling implements the paper's packaging and cooling models
// (§3.3, Figure 3).
//
// Three packaging designs are modeled:
//
//   - Conventional: 40 1U "pizza box" servers per 42U rack, each with its
//     own fans forcing air front-to-back over the full chassis depth.
//
//   - Dual-entry enclosure with directed airflow: blades insert from the
//     front and the back onto a midplane; inlet and exhaust plenums direct
//     cold air vertically through all blades in parallel ("a parallel
//     connection of resistances versus a serial one"). The flow length
//     shortens and pre-heat drops, cutting the pressure drop and the
//     volume flow. The paper credits this with ~50% better cooling
//     efficiency and 320 systems per rack (40 blades of 75 W per 5U
//     enclosure, 8 enclosures per rack).
//
//   - Board-level aggregated heat removal: small (≈25 W) server modules
//     interspersed with planar heat pipes whose effective conductivity is
//     three times copper, moving heat to one central optimized heat sink
//     per carrier blade; up to 1250 systems per rack.
//
// The model is a first-principles fan-power calculation: the volume flow
// needed to carry the IT power at the allowed air temperature rise
// (reduced by pre-heat and extended by better spreading), and fan power =
// volume flow x pressure drop / fan efficiency, with pressure drop
// proportional to flow length at the design face velocity. Tests verify
// the model lands on the paper's claimed ~2X and ~4X cooling-efficiency
// factors for the two new designs.
package cooling

import (
	"fmt"
	"math"
)

// Air and packaging constants. Only ductFriction is fitted (once, so that
// a 340 W conventional 1U server needs ~40 W of fans, matching the
// catalog's srvr1 fan wattage); everything else is physical or geometric.
const (
	airDensity  = 1.16   // kg/m^3 at ~35C
	airHeatCap  = 1007.0 // J/(kg K)
	inletTempC  = 25.0
	maxAirTempC = 45.0 // allowed exhaust temperature

	copperConductivity   = 400.0 // W/(m K)
	heatPipeConductivity = 3 * copperConductivity

	fanEfficiency = 0.30
	// ductFriction is the lumped pressure drop per meter of flow length
	// at the design face velocity (Pa/m).
	ductFriction = 589.0
	// spreadingAirBudget converts spreading-conductivity gain into extra
	// allowed air temperature rise (diminishing returns).
	spreadingAirBudget = 0.175
	// sharedSinkGain is the extra air-side budget from one large
	// optimized heat sink versus many small ones.
	sharedSinkGain = 1.25
)

// Design identifies a packaging/cooling architecture.
type Design int

// The three packaging designs of §3.3.
const (
	Conventional Design = iota
	DualEntry
	AggregatedMicroblade
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case Conventional:
		return "conventional-1U"
	case DualEntry:
		return "dual-entry-directed-airflow"
	case AggregatedMicroblade:
		return "aggregated-microblade"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// Enclosure carries the geometry of one packaging design.
type Enclosure struct {
	Design Design
	// FlowLengthM is the distance air travels across heat-dissipating
	// components (including plenum losses).
	FlowLengthM float64
	// PreheatC is the temperature rise of air before it reaches the
	// component being cooled (serial flow preheats; directed parallel
	// flow barely does).
	PreheatC float64
	// SpreaderConductivity is the conductivity of the heat path from
	// component to sink (copper baseline; planar heat pipes for the
	// aggregated design).
	SpreaderConductivity float64
	// SharedSink is true when one large optimized sink serves several
	// modules (larger extraction area, lower sink resistance).
	SharedSink bool
	// MaxServerPowerW is the densest-packing power budget per system; a
	// server hotter than this falls back to conventional density.
	MaxServerPowerW float64
	// SystemsPerRack is the packing density when the power budget holds.
	SystemsPerRack int
}

// EnclosureFor returns the paper's geometry for each design.
func EnclosureFor(d Design) Enclosure {
	switch d {
	case DualEntry:
		return Enclosure{
			Design:               DualEntry,
			FlowLengthM:          0.45, // to the midplane, plus plenum losses
			PreheatC:             5,
			SpreaderConductivity: copperConductivity,
			MaxServerPowerW:      78, // 75W blades plus margin (mobl fits)
			SystemsPerRack:       320,
		}
	case AggregatedMicroblade:
		return Enclosure{
			Design:               AggregatedMicroblade,
			FlowLengthM:          0.45,
			PreheatC:             5,
			SpreaderConductivity: heatPipeConductivity,
			SharedSink:           true,
			MaxServerPowerW:      55, // 25W modules; emb-class boards fit
			SystemsPerRack:       1250,
		}
	default:
		return Enclosure{
			Design:               Conventional,
			FlowLengthM:          0.70, // full 1U chassis depth
			PreheatC:             10,
			SpreaderConductivity: copperConductivity,
			MaxServerPowerW:      math.Inf(1),
			SystemsPerRack:       40,
		}
	}
}

// allowedRiseC returns the usable air temperature rise for this
// enclosure, folding in pre-heat, spreading conductivity and sink
// sharing.
func (e Enclosure) allowedRiseC() float64 {
	dt := maxAirTempC - inletTempC - e.PreheatC
	gain := e.SpreaderConductivity / copperConductivity
	if gain > 1 {
		dt *= 1 + spreadingAirBudget*(gain-1)
	}
	if e.SharedSink {
		dt *= sharedSinkGain
	}
	if dt < 1 {
		dt = 1
	}
	return dt
}

// FanPowerW returns the fan power needed to remove itPowerW from one
// system in this enclosure.
func (e Enclosure) FanPowerW(itPowerW float64) float64 {
	if itPowerW <= 0 {
		return 0
	}
	q := itPowerW / (airDensity * airHeatCap * e.allowedRiseC()) // m^3/s
	dp := ductFriction * e.FlowLengthM                           // Pa
	return q * dp / fanEfficiency
}

// EfficiencyVsConventional returns how many times less fan power this
// enclosure needs than the conventional design for the same IT power —
// the paper's "2X and 4X" cooling-efficiency improvements.
func (e Enclosure) EfficiencyVsConventional() float64 {
	conv := EnclosureFor(Conventional)
	// Power cancels in the ratio.
	return (conv.FlowLengthM / e.FlowLengthM) * (e.allowedRiseC() / conv.allowedRiseC())
}

// Density returns how many systems of the given max power fit in a 42U
// rack under this design, falling back to conventional density when the
// per-system power budget is exceeded.
func (e Enclosure) Density(serverMaxPowerW float64) int {
	if serverMaxPowerW > e.MaxServerPowerW {
		return EnclosureFor(Conventional).SystemsPerRack
	}
	return e.SystemsPerRack
}

// RoomCoolingFactor returns the multiplier on room-level cooling work
// (the L1 electricity ratio and K2 capital factor of the burdened-cost
// model) that this enclosure earns. Directed airflow returns warmer,
// better-mixed exhaust to the CRAC units; chiller work per watt of IT
// load scales inversely with the supply-return temperature split, so
// the factor is the ratio of allowed rises. The conventional enclosure
// returns 1.0.
//
// This is a second-order credit the paper's cost model does not take
// (its K1/L1/K2 are fixed constants), so the evaluator applies it only
// when explicitly enabled (see core.Evaluator.EnclosureCoolingCredit
// and the abl-coolingcredit experiment).
func (e Enclosure) RoomCoolingFactor() float64 {
	conv := EnclosureFor(Conventional)
	return conv.allowedRiseC() / e.allowedRiseC()
}

// ThermalResistance returns the conduction thermal resistance (K/W) of a
// spreading path with the given conductivity, length and cross-section —
// used to verify the claimed 3x conduction improvement of planar heat
// pipes over copper.
func ThermalResistance(conductivity, lengthM, areaM2 float64) float64 {
	if conductivity <= 0 || areaM2 <= 0 {
		panic(fmt.Sprintf("cooling: invalid resistance spec k=%g A=%g", conductivity, areaM2))
	}
	return lengthM / (conductivity * areaM2)
}
