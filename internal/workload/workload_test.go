package workload

import (
	"math"
	"testing"

	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
)

func validProfile() Profile {
	return Profile{
		Name: "p", Class: Websearch,
		CPURefSec: 0.01, DiskOps: 1, DiskReadBytes: 1e5, NetBytes: 1e4,
		CacheWorkingSetMB: 2, CacheMissPenalty: 1, CoreScalingBeta: 0.8,
		QoSLatencySec: 0.5, QoSPercentile: 0.95, ThinkTimeSec: 1,
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Websearch: "websearch", Webmail: "webmail", Ytube: "ytube",
		MapReduceWC: "mapred-wc", MapReduceWR: "mapred-wr",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bads := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.CPURefSec = -1 },
		func(p *Profile) { p.CPURefSec, p.DiskOps, p.DiskReadBytes, p.NetBytes = 0, 0, 0, 0 },
		func(p *Profile) { p.CoreScalingBeta = 0 },
		func(p *Profile) { p.CoreScalingBeta = 1.5 },
		func(p *Profile) { p.QoSLatencySec = -1 },
		func(p *Profile) { p.QoSPercentile = 0 },
		func(p *Profile) { p.Batch, p.JobRequests = true, 0 },
	}
	for i, mutate := range bads {
		p := validProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestBatchWithoutQoSValidates(t *testing.T) {
	p := validProfile()
	p.Batch = true
	p.JobRequests = 100
	p.QoSLatencySec = 0
	p.QoSPercentile = 0
	if err := p.Validate(); err != nil {
		t.Fatalf("batch profile rejected: %v", err)
	}
}

func TestRelativeCoreSpeedReference(t *testing.T) {
	p := validProfile()
	if got := p.RelativeCoreSpeed(platform.Srvr1().CPU); math.Abs(got-1) > 1e-12 {
		t.Errorf("srvr1 relative speed = %g, want 1", got)
	}
	if got := p.RelativeCoreSpeed(platform.Emb2().CPU); got >= 0.5 {
		t.Errorf("emb2 relative speed = %g, want well below srvr1", got)
	}
}

func TestEffectiveCores(t *testing.T) {
	p := validProfile()
	p.CoreScalingBeta = 1
	if got := p.EffectiveCores(8); got != 8 {
		t.Errorf("beta=1 effective cores = %g", got)
	}
	p.CoreScalingBeta = 0.5
	if got := p.EffectiveCores(4); math.Abs(got-2) > 1e-12 {
		t.Errorf("beta=0.5, 4 cores = %g, want 2", got)
	}
}

func TestMeanRequestRoundTrip(t *testing.T) {
	p := validProfile()
	r := p.MeanRequest()
	if r.CPURefSec != p.CPURefSec || r.DiskOps != p.DiskOps ||
		r.DiskReadBytes != p.DiskReadBytes || r.NetBytes != p.NetBytes {
		t.Error("MeanRequest dropped fields")
	}
}

func TestFixedGeneratorDeterministic(t *testing.T) {
	g := FixedGenerator{P: validProfile(), Deterministic: true}
	r := stats.NewRNG(1)
	a, b := g.Sample(r), g.Sample(r)
	if a != b || a.CPURefSec != validProfile().CPURefSec {
		t.Error("deterministic generator varied")
	}
}

func TestFixedGeneratorMeansConverge(t *testing.T) {
	p := validProfile()
	g := FixedGenerator{P: p}
	r := stats.NewRNG(2)
	var cpu stats.Summary
	for i := 0; i < 100000; i++ {
		cpu.Add(g.Sample(r).CPURefSec)
	}
	if m := cpu.Mean(); math.Abs(m-p.CPURefSec)/p.CPURefSec > 0.03 {
		t.Errorf("sampled CPU mean %g, profile %g", m, p.CPURefSec)
	}
}

func TestIsStateless(t *testing.T) {
	if !IsStateless(FixedGenerator{P: validProfile()}) {
		t.Error("FixedGenerator must carry the stateless marker")
	}
	if IsStateless(statefulTestGen{}) {
		t.Error("a generator without the marker must not report stateless")
	}
	if IsStateless(nil) {
		t.Error("nil generator must not report stateless")
	}
}

// statefulTestGen deliberately lacks the Stateless marker method.
type statefulTestGen struct{}

func (statefulTestGen) Profile() Profile            { return validProfile() }
func (statefulTestGen) Sample(r *stats.RNG) Request { return Request{} }
