package workload

import "testing"

func TestSuiteProfilesCanonical(t *testing.T) {
	ps := SuiteProfiles()
	if len(ps) != 5 {
		t.Fatalf("suite has %d profiles", len(ps))
	}
	wantOrder := []string{"websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"}
	for i, p := range ps {
		if p.Name != wantOrder[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, wantOrder[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		if p.Name != p.Class.String() {
			t.Errorf("%s: name/class mismatch (%s)", p.Name, p.Class)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) = %v, %v", name, p.Name, ok)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile found")
	}
}

func TestCanonicalQoSMatchesPaper(t *testing.T) {
	ws, _ := ProfileByName("websearch")
	if ws.QoSLatencySec != 0.5 || ws.QoSPercentile != 0.95 {
		t.Errorf("websearch QoS %g@%g, paper says 0.5s@95%%", ws.QoSLatencySec, ws.QoSPercentile)
	}
	wm, _ := ProfileByName("webmail")
	if wm.QoSLatencySec != 0.8 {
		t.Errorf("webmail QoS %g, paper says 0.8s", wm.QoSLatencySec)
	}
	for _, name := range []string{"mapred-wc", "mapred-wr"} {
		p, _ := ProfileByName(name)
		if !p.Batch || p.JobRequests != 1280 {
			t.Errorf("%s: batch=%v jobs=%d, paper: 5GB/4MB = 1280 tasks", name, p.Batch, p.JobRequests)
		}
	}
}

func TestBatchProfilesHaveNoQoS(t *testing.T) {
	for _, p := range SuiteProfiles() {
		if p.Batch && p.QoSLatencySec != 0 {
			t.Errorf("%s: batch job with a QoS bound", p.Name)
		}
		if !p.Batch && p.QoSLatencySec == 0 {
			t.Errorf("%s: interactive benchmark without a QoS bound", p.Name)
		}
	}
}

func TestWriteJobIsWriteDominated(t *testing.T) {
	wr, _ := ProfileByName("mapred-wr")
	if wr.DiskWriteBytes <= wr.DiskReadBytes {
		t.Error("mapred-wr not write-dominated")
	}
	wc, _ := ProfileByName("mapred-wc")
	if wc.DiskReadBytes <= wc.DiskWriteBytes {
		t.Error("mapred-wc not read-dominated")
	}
}
