package mapreduce

import (
	"strconv"
	"strings"
	"testing"

	"warehousesim/internal/stats"
)

func TestScheduleMapTasksLocality(t *testing.T) {
	cfg := DFSConfig{Nodes: 6, Replication: 3, ChunkBytes: 1024}
	d, err := NewDFS(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 60*1024) // 60 chunks over 6 nodes
	if err := d.Create("in", data); err != nil {
		t.Fatal(err)
	}
	as, st, err := ScheduleMapTasks(d, "in")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 60 || len(as) != 60 {
		t.Fatalf("tasks = %d", st.Tasks)
	}
	// With replication 3 on 6 nodes and balanced placement, locality
	// should be essentially perfect.
	if st.LocalityRate() < 0.9 {
		t.Errorf("locality rate %.2f too low", st.LocalityRate())
	}
	// Balance: max/min within the cap slack.
	if st.Imbalance() > 1.5 {
		t.Errorf("imbalance %.2f (max %d, min %d)", st.Imbalance(), st.MaxLoad, st.MinLoad)
	}
	// Local assignments must actually sit on replica holders.
	ids := d.files["in"]
	for _, a := range as {
		if !a.Local {
			continue
		}
		found := false
		for _, n := range d.chunks[ids[a.Chunk]].replicas {
			if n == a.Node {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("chunk %d claimed local on non-replica node %d", a.Chunk, a.Node)
		}
	}
	// Assignments cover every chunk exactly once, in order.
	for i, a := range as {
		if a.Chunk != i {
			t.Fatalf("assignment order broken at %d: %+v", i, a)
		}
	}
}

func TestScheduleMissingFile(t *testing.T) {
	d := smallDFS(t)
	if _, _, err := ScheduleMapTasks(d, "none"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScheduleSingleNode(t *testing.T) {
	cfg := DFSConfig{Nodes: 1, Replication: 1, ChunkBytes: 512}
	d, err := NewDFS(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Create("in", make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	_, st, err := ScheduleMapTasks(d, "in")
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalityRate() != 1 {
		t.Errorf("single node must be fully local, got %g", st.LocalityRate())
	}
}

func TestGrepJobCorrectness(t *testing.T) {
	d := smallDFS(t)
	text := "error: disk failed\nall good here\nerror: cpu melted\nwarning: hot\n"
	if err := d.Create("log", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job, err := GrepJob("log", "matches", `error: \w+`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, job)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadAll("matches")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 {
		t.Fatalf("matches = %q", lines)
	}
	found := map[string]bool{}
	for _, l := range lines {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 || parts[1] != "1" {
			t.Fatalf("malformed line %q", l)
		}
		found[parts[0]] = true
	}
	if !found["error: disk"] || !found["error: cpu"] {
		t.Errorf("wrong matches: %v", found)
	}
	if res.ShuffleBytes <= 0 {
		t.Error("grep moved no shuffle data")
	}
}

func TestGrepJobBadPattern(t *testing.T) {
	if _, err := GrepJob("a", "b", "("); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

func TestTopKReducer(t *testing.T) {
	r := TopKReducer{Threshold: 3}
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	r.Reduce("rare", []string{"1", "1"}, emit)
	if len(out) != 0 {
		t.Fatal("below-threshold key emitted")
	}
	r.Reduce("hot", []string{"2", "2"}, emit)
	if len(out) != 1 || out[0].Key != "hot" || out[0].Value != "4" {
		t.Fatalf("out = %v", out)
	}
}

func TestGrepOverGeneratedCorpus(t *testing.T) {
	d, err := NewDFS(DefaultDFSConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCorpusConfig()
	cfg.TotalBytes = 128 << 10
	if err := GenerateCorpus(d, "c", cfg); err != nil {
		t.Fatal(err)
	}
	// The most popular word "wa" must appear and be counted consistently
	// with a direct scan.
	job, err := GrepJob("c", "out", `\bwa\b`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, job); err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := d.ReadAll("c")
	if err != nil {
		t.Fatal(err)
	}
	direct := 0
	for _, w := range strings.Fields(string(raw)) {
		if w == "wa" {
			direct++
		}
	}
	var counted int
	for _, l := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Split(l, "\t")
		if parts[0] == "wa" {
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				t.Fatal(err)
			}
			counted = n
		}
	}
	if counted != direct {
		t.Errorf("grep counted %d, direct scan %d", counted, direct)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	build := func() ScheduleStats {
		d, err := NewDFS(DFSConfig{Nodes: 5, Replication: 2, ChunkBytes: 256}, 9)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRNG(10)
		data := make([]byte, 40*256)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		if err := d.Create("in", data); err != nil {
			t.Fatal(err)
		}
		_, st, err := ScheduleMapTasks(d, "in")
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := build(), build(); a != b {
		t.Errorf("scheduling not deterministic: %+v vs %+v", a, b)
	}
}
