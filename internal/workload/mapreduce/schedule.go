package mapreduce

import (
	"fmt"
	"sort"
)

// Locality-aware map scheduling, Hadoop-style: each datanode doubles as
// a worker, and the scheduler places each map task on a node holding a
// replica of its input chunk when load balance allows, falling back to
// remote reads otherwise. The locality rate drives how much shuffle-in
// traffic crosses the network — one of the ensemble effects §4 points
// at for the networking substrate.

// Assignment places one map task.
type Assignment struct {
	Chunk int
	Node  int
	// Local reports whether the node holds a replica of the chunk.
	Local bool
}

// ScheduleStats summarizes a schedule.
type ScheduleStats struct {
	Tasks int
	// Local is the number of data-local assignments.
	Local int
	// MaxLoad and MinLoad are the heaviest/lightest per-node task counts.
	MaxLoad, MinLoad int
}

// LocalityRate returns the fraction of data-local tasks.
func (s ScheduleStats) LocalityRate() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.Local) / float64(s.Tasks)
}

// Imbalance returns MaxLoad/MinLoad (1.0 = perfectly balanced; MinLoad
// of zero reports +MaxLoad to stay finite and loud).
func (s ScheduleStats) Imbalance() float64 {
	if s.MinLoad == 0 {
		return float64(s.MaxLoad)
	}
	return float64(s.MaxLoad) / float64(s.MinLoad)
}

// ScheduleMapTasks assigns one map task per chunk of the input file to
// the DFS's datanodes, preferring replica holders subject to a load cap
// of ceil(tasks/nodes)+1 per node.
func ScheduleMapTasks(d *DFS, input string) ([]Assignment, ScheduleStats, error) {
	return ScheduleMapTasksExcluding(d, input, nil)
}

// ScheduleMapTasksExcluding schedules around unavailable datanodes
// (failed or drained): their replicas cannot serve reads and they take
// no tasks. This is where replication earns its keep — with one
// replica, every chunk on a down node becomes a remote read.
func ScheduleMapTasksExcluding(d *DFS, input string, down map[int]bool) ([]Assignment, ScheduleStats, error) {
	ids, ok := d.files[input]
	if !ok {
		return nil, ScheduleStats{}, fmt.Errorf("mapreduce: file %q not found", input)
	}
	nodes := d.cfg.Nodes
	up := nodes - len(down)
	if up <= 0 {
		return nil, ScheduleStats{}, fmt.Errorf("mapreduce: no datanodes available")
	}
	load := make([]int, nodes)
	cap := (len(ids)+up-1)/up + 1

	assignments := make([]Assignment, 0, len(ids))
	// Schedule the most replication-constrained chunks first so their
	// replica holders are not filled by flexible chunks.
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(d.chunks[ids[order[a]]].replicas) < len(d.chunks[ids[order[b]]].replicas)
	})

	for _, ci := range order {
		replicas := d.chunks[ids[ci]].replicas
		// Least-loaded live replica holder under the cap.
		bestNode, bestLoad := -1, cap
		for _, n := range replicas {
			if !down[n] && load[n] < bestLoad {
				bestNode, bestLoad = n, load[n]
			}
		}
		local := bestNode >= 0
		if !local {
			// Fall back to the least-loaded live node (remote read).
			bestNode, bestLoad = -1, int(^uint(0)>>1)
			for n := 0; n < nodes; n++ {
				if !down[n] && load[n] < bestLoad {
					bestNode, bestLoad = n, load[n]
				}
			}
		}
		load[bestNode]++
		assignments = append(assignments, Assignment{Chunk: ci, Node: bestNode, Local: local})
	}
	// Restore chunk order for callers that zip with chunk indices.
	sort.SliceStable(assignments, func(a, b int) bool {
		return assignments[a].Chunk < assignments[b].Chunk
	})

	st := ScheduleStats{Tasks: len(assignments)}
	for _, a := range assignments {
		if a.Local {
			st.Local++
		}
	}
	first := true
	for n, l := range load {
		if down[n] {
			continue
		}
		if first {
			st.MaxLoad, st.MinLoad = l, l
			first = false
			continue
		}
		if l > st.MaxLoad {
			st.MaxLoad = l
		}
		if l < st.MinLoad {
			st.MinLoad = l
		}
	}
	return assignments, st, nil
}
