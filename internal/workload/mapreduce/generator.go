package mapreduce

import (
	"fmt"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Engine adapts a completed job's per-task statistics into the
// workload.Generator interface: the batch simulation draws task demands
// from the real tasks the runtime executed.
type Engine struct {
	profile workload.Profile
	tasks   []TaskStats

	meanIn, meanOut, meanRecords float64
	cursor                       int

	// footprint layout for page traces
	totalPages int64
}

const pageSize = 4096

// NewWordCount generates a corpus, runs the word-count job for real,
// and builds a generator from its task statistics.
func NewWordCount(corpus CorpusConfig, profile workload.Profile) (*Engine, error) {
	d, err := NewDFS(DefaultDFSConfig(), corpus.Seed)
	if err != nil {
		return nil, err
	}
	if err := GenerateCorpus(d, "corpus", corpus); err != nil {
		return nil, err
	}
	res, err := Run(d, WordCountJob("corpus", "counts"))
	if err != nil {
		return nil, err
	}
	tasks := append(append([]TaskStats{}, res.MapTasks...), res.ReduceTasks...)
	return newEngine(profile, tasks)
}

// NewWrite runs the distributed-write job for real and builds a
// generator from its task statistics.
func NewWrite(corpus CorpusConfig, tasks int, profile workload.Profile) (*Engine, error) {
	d, err := NewDFS(DefaultDFSConfig(), corpus.Seed)
	if err != nil {
		return nil, err
	}
	chunk := d.Config().ChunkBytes
	sts, err := RunWrite(d, "out", tasks, chunk, corpus)
	if err != nil {
		return nil, err
	}
	return newEngine(profile, sts)
}

func newEngine(profile workload.Profile, tasks []TaskStats) (*Engine, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("mapreduce: no tasks to sample from")
	}
	e := &Engine{profile: profile, tasks: tasks}
	var in, out, rec float64
	for _, t := range tasks {
		in += float64(t.InputBytes)
		out += float64(t.OutputBytes)
		rec += float64(t.Records)
	}
	n := float64(len(tasks))
	e.meanIn, e.meanOut, e.meanRecords = in/n, out/n, rec/n
	e.totalPages = int64(profile.MemFootprintMB * 1e6 / pageSize)
	if e.totalPages < 16 {
		e.totalPages = 16
	}
	return e, nil
}

// Profile implements workload.Generator.
func (e *Engine) Profile() workload.Profile { return e.profile }

// Tasks exposes the measured task statistics (examples and tests).
func (e *Engine) Tasks() []TaskStats { return e.tasks }

// Sample implements workload.Generator: the next real task's measured
// work, scaled onto the calibrated demand means. Tasks are served
// round-robin so a batch run covers the whole job.
func (e *Engine) Sample(r *stats.RNG) workload.Request {
	t := e.tasks[e.cursor%len(e.tasks)]
	e.cursor++
	p := e.profile

	// CPU follows records processed; disk demand follows the dominant
	// byte stream of the task kind.
	cpu := p.CPURefSec * ratio(float64(t.Records), e.meanRecords)
	req := workload.Request{
		CPURefSec: cpu,
		DiskOps:   p.DiskOps,
		NetBytes:  p.NetBytes * ratio(float64(t.OutputBytes), e.meanOut),
	}
	if p.DiskWriteBytes > 0 {
		req.DiskWriteBytes = p.DiskWriteBytes * ratio(float64(t.OutputBytes), e.meanOut)
	}
	if p.DiskReadBytes > 0 {
		req.DiskReadBytes = p.DiskReadBytes * ratio(float64(t.InputBytes), e.meanIn)
	}
	return req
}

// TracePages implements trace.PageTracer: a task streams its input
// chunk sequentially and writes scattered shuffle-buffer pages.
func (e *Engine) TracePages(r *stats.RNG, emit func(page int64, write bool)) {
	// Sequential chunk region: place each task's chunk deterministically
	// in the footprint.
	t := e.tasks[e.cursor%len(e.tasks)]
	chunkPages := t.InputBytes / pageSize
	if chunkPages < 1 {
		chunkPages = 1
	}
	if chunkPages > 64 {
		chunkPages = 64 // trace a prefix; locality pattern is what matters
	}
	base := r.Int63n(e.totalPages)
	for p := int64(0); p < chunkPages; p++ {
		emit((base+p)%e.totalPages, false)
	}
	// Shuffle buffer writes: scattered but reused region (first eighth
	// of the footprint).
	shuffle := e.totalPages / 8
	if shuffle < 1 {
		shuffle = 1
	}
	for i := int64(0); i < chunkPages/4+1; i++ {
		emit(r.Int63n(shuffle), true)
	}
}

func ratio(x, mean float64) float64 {
	if mean <= 0 {
		return 1
	}
	return x / mean
}
