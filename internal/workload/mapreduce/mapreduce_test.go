package mapreduce

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func smallDFS(t *testing.T) *DFS {
	t.Helper()
	cfg := DFSConfig{Nodes: 4, Replication: 2, ChunkBytes: 1024}
	d, err := NewDFS(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDFSConfigValidate(t *testing.T) {
	if err := DefaultDFSConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bads := []DFSConfig{
		{Nodes: 0, Replication: 1, ChunkBytes: 1},
		{Nodes: 2, Replication: 3, ChunkBytes: 1},
		{Nodes: 2, Replication: 1, ChunkBytes: 0},
	}
	for i, c := range bads {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDFSRoundTrip(t *testing.T) {
	d := smallDFS(t)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := d.Create("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("round trip corrupted data")
	}
	n, err := d.FileChunks("f")
	if err != nil || n != 5 {
		t.Errorf("chunks = %d, %v; want 5 (5000B / 1KB)", n, err)
	}
	sz, err := d.FileBytes("f")
	if err != nil || sz != 5000 {
		t.Errorf("bytes = %d, %v", sz, err)
	}
}

func TestDFSDuplicateCreateFails(t *testing.T) {
	d := smallDFS(t)
	if err := d.Create("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create("f", []byte("y")); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestDFSDelete(t *testing.T) {
	d := smallDFS(t)
	if err := d.Create("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("f") {
		t.Fatal("file still exists")
	}
	if err := d.Delete("f"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestDFSReplication(t *testing.T) {
	d := smallDFS(t)
	data := make([]byte, 4096)
	if err := d.Create("f", data); err != nil {
		t.Fatal(err)
	}
	// 4 chunks x 1KB x 2 replicas = 8KB physical.
	if got := d.TotalStoredBytes(); got != 8192 {
		t.Errorf("stored bytes = %d, want 8192", got)
	}
	// Placement balances across nodes.
	for n, u := range d.NodeUsage() {
		if u > 4096 {
			t.Errorf("node %d overloaded: %d", n, u)
		}
	}
}

func TestDFSReadChunkErrors(t *testing.T) {
	d := smallDFS(t)
	if _, _, err := d.ReadChunk("missing", 0); err == nil {
		t.Error("missing file read accepted")
	}
	if err := d.Create("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadChunk("f", 5); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if _, node, err := d.ReadChunk("f", 0); err != nil || node < 0 || node >= 4 {
		t.Errorf("chunk read: node %d, %v", node, err)
	}
}

func TestWordCountCorrectness(t *testing.T) {
	d := smallDFS(t)
	text := "the quick fox\nthe lazy dog\nthe fox"
	if err := d.Create("in", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := WordCountJob("in", "out")
	job.ReduceTasks = 3
	res, err := Run(d, job)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("malformed output line %q", line)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		counts[parts[0]] = n
	}
	want := map[string]int{"the": 3, "quick": 1, "fox": 2, "lazy": 1, "dog": 1}
	if len(counts) != len(want) {
		t.Fatalf("got %v, want %v", counts, want)
	}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, counts[w], n)
		}
	}
	if res.TotalTasks() != 1+3 {
		t.Errorf("tasks = %d", res.TotalTasks())
	}
}

func TestWordCountCombinerReducesShuffle(t *testing.T) {
	build := func(useCombiner bool) int64 {
		d := smallDFS(t)
		// Highly repetitive input -> combiner collapses it.
		line := strings.Repeat("word ", 100)
		if err := d.Create("in", []byte(line)); err != nil {
			t.Fatal(err)
		}
		job := WordCountJob("in", "out")
		if !useCombiner {
			job.Combiner = nil
		}
		res, err := Run(d, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.ShuffleBytes
	}
	with, without := build(true), build(false)
	if with >= without {
		t.Errorf("combiner did not shrink shuffle: %d vs %d", with, without)
	}
}

func TestRunValidatesJob(t *testing.T) {
	d := smallDFS(t)
	if _, err := Run(d, Job{}); err == nil {
		t.Error("empty job accepted")
	}
	if err := d.Create("in", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create("out", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, WordCountJob("in", "out")); err == nil {
		t.Error("existing output accepted")
	}
	if _, err := Run(d, WordCountJob("missing", "out2")); err == nil {
		t.Error("missing input accepted")
	}
}

func TestGenerateCorpusSizeAndDeterminism(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.TotalBytes = 64 << 10
	d1 := smallDFS(t)
	if err := GenerateCorpus(d1, "c", cfg); err != nil {
		t.Fatal(err)
	}
	sz, err := d1.FileBytes("c")
	if err != nil {
		t.Fatal(err)
	}
	if sz < cfg.TotalBytes || sz > cfg.TotalBytes+1024 {
		t.Errorf("corpus size %d, want ~%d", sz, cfg.TotalBytes)
	}
	d2 := smallDFS(t)
	if err := GenerateCorpus(d2, "c", cfg); err != nil {
		t.Fatal(err)
	}
	a, _ := d1.ReadAll("c")
	b, _ := d2.ReadAll("c")
	if string(a) != string(b) {
		t.Error("corpus generation not deterministic")
	}
}

func TestWordOfDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		w := wordOf(i)
		if seen[w] {
			t.Fatalf("wordOf(%d) = %q duplicates an earlier word", i, w)
		}
		seen[w] = true
	}
}

func TestRunWrite(t *testing.T) {
	d := smallDFS(t)
	cfg := DefaultCorpusConfig()
	sts, err := RunWrite(d, "w", 5, 2048, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 5 {
		t.Fatalf("tasks = %d", len(sts))
	}
	for i, st := range sts {
		if st.OutputBytes <= 0 || st.Records <= 0 {
			t.Errorf("task %d empty: %+v", i, st)
		}
	}
	// Files must exist with roughly the requested size.
	for i := 0; i < 5; i++ {
		name := "w-0000" + strconv.Itoa(i)
		sz, err := d.FileBytes(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if sz < 2048 {
			t.Errorf("%s only %d bytes", name, sz)
		}
	}
	if _, err := RunWrite(d, "x", 0, 10, cfg); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestEngineWordCount(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.TotalBytes = 256 << 10
	prof := workload.MapReduceWCProfile()
	e, err := NewWordCount(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tasks()) == 0 {
		t.Fatal("no tasks")
	}
	r := stats.NewRNG(3)
	var cpu, rd stats.Summary
	for i := 0; i < len(e.Tasks())*3; i++ {
		req := e.Sample(r)
		cpu.Add(req.CPURefSec)
		rd.Add(req.DiskReadBytes)
	}
	if m := cpu.Mean(); math.Abs(m-prof.CPURefSec)/prof.CPURefSec > 0.05 {
		t.Errorf("CPU mean %g vs profile %g", m, prof.CPURefSec)
	}
	if m := rd.Mean(); math.Abs(m-prof.DiskReadBytes)/prof.DiskReadBytes > 0.25 {
		t.Errorf("disk-read mean %g vs profile %g", m, prof.DiskReadBytes)
	}
}

func TestEngineWrite(t *testing.T) {
	cfg := DefaultCorpusConfig()
	prof := workload.MapReduceWRProfile()
	e, err := NewWrite(cfg, 32, prof)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(4)
	var wr stats.Summary
	for i := 0; i < 96; i++ {
		req := e.Sample(r)
		wr.Add(req.DiskWriteBytes)
		if req.DiskReadBytes != 0 {
			t.Fatal("write job should not read")
		}
	}
	if m := wr.Mean(); math.Abs(m-prof.DiskWriteBytes)/prof.DiskWriteBytes > 0.1 {
		t.Errorf("disk-write mean %g vs profile %g", m, prof.DiskWriteBytes)
	}
}

func TestEngineTracePages(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.TotalBytes = 128 << 10
	e, err := NewWordCount(cfg, workload.MapReduceWCProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(5)
	reads, writes := 0, 0
	for i := 0; i < 100; i++ {
		e.TracePages(r, func(p int64, w bool) {
			if p < 0 || p >= e.totalPages {
				t.Fatalf("page %d outside footprint", p)
			}
			if w {
				writes++
			} else {
				reads++
			}
		})
	}
	if reads == 0 || writes == 0 {
		t.Errorf("trace lacks reads (%d) or writes (%d)", reads, writes)
	}
}

// Property: word count over any small random corpus conserves the total
// word count (sum of counts == words in).
func TestQuickWordCountConservation(t *testing.T) {
	f := func(seed uint64) bool {
		d, err := NewDFS(DFSConfig{Nodes: 3, Replication: 1, ChunkBytes: 256}, seed)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		var b strings.Builder
		words := 0
		lines := 1 + r.Intn(20)
		for l := 0; l < lines; l++ {
			n := 1 + r.Intn(10)
			for w := 0; w < n; w++ {
				if w > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(wordOf(r.Intn(50)))
				words++
			}
			b.WriteByte('\n')
		}
		if err := d.Create("in", []byte(b.String())); err != nil {
			return false
		}
		if _, err := Run(d, WordCountJob("in", "out")); err != nil {
			return false
		}
		out, err := d.ReadAll("out")
		if err != nil {
			return false
		}
		total := 0
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			parts := strings.Split(line, "\t")
			if len(parts) != 2 {
				return false
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return false
			}
			total += n
		}
		return total == words
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
