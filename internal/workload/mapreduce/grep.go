package mapreduce

import (
	"regexp"
	"strconv"
)

// GrepMapper emits (matched-fragment, 1) for every regexp match in each
// record — the classic distributed-grep example from the MapReduce
// paper, included as a second CPU-heavier application.
type GrepMapper struct {
	re *regexp.Regexp
}

// NewGrepMapper compiles the pattern.
func NewGrepMapper(pattern string) (*GrepMapper, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	return &GrepMapper{re: re}, nil
}

// Map implements Mapper.
func (g *GrepMapper) Map(record string, emit func(key, value string)) {
	for _, m := range g.re.FindAllString(record, -1) {
		emit(m, "1")
	}
}

// GrepJob builds a distributed-grep job counting occurrences of each
// matched fragment.
func GrepJob(input, output, pattern string) (Job, error) {
	m, err := NewGrepMapper(pattern)
	if err != nil {
		return Job{}, err
	}
	return Job{
		Name:        "grep",
		Input:       input,
		Output:      output,
		Mapper:      m,
		Reducer:     SumReducer{},
		Combiner:    SumReducer{},
		ReduceTasks: 8,
	}, nil
}

// TopKReducer keeps only keys whose summed count reaches Threshold — a
// simple filter stage used by the grep pipeline to emit frequent
// matches only.
type TopKReducer struct {
	Threshold int
}

// Reduce implements Reducer.
func (t TopKReducer) Reduce(key string, values []string, emit func(key, value string)) {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			n = 1
		}
		sum += n
	}
	if sum >= t.Threshold {
		emit(key, strconv.Itoa(sum))
	}
}
