// Package mapreduce implements the web-as-a-platform benchmark of the
// suite (Table 1): a working MapReduce runtime over an in-memory
// replicated distributed file system, standing in for the paper's
// Hadoop v0.14 cluster. Two jobs mirror the paper's: word count over a
// generated corpus (mapred-wc) and distributed file write (mapred-wr).
package mapreduce

import (
	"fmt"
	"sort"

	"warehousesim/internal/stats"
)

// DefaultChunkBytes is the DFS chunk size (Hadoop-era 4 MB per the
// paper's task sizing: 5 GB input -> 1280 tasks).
const DefaultChunkBytes = 4 << 20

// DFSConfig sizes the distributed file system.
type DFSConfig struct {
	// Nodes is the number of datanodes.
	Nodes int
	// Replication is the number of replicas per chunk.
	Replication int
	// ChunkBytes is the chunk size.
	ChunkBytes int
}

// DefaultDFSConfig returns a small Hadoop-like layout.
func DefaultDFSConfig() DFSConfig {
	return DFSConfig{Nodes: 8, Replication: 3, ChunkBytes: DefaultChunkBytes}
}

// Validate reports nonsensical configurations.
func (c DFSConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("mapreduce: dfs needs nodes > 0")
	case c.Replication <= 0 || c.Replication > c.Nodes:
		return fmt.Errorf("mapreduce: replication %d invalid for %d nodes", c.Replication, c.Nodes)
	case c.ChunkBytes <= 0:
		return fmt.Errorf("mapreduce: chunk bytes must be positive")
	}
	return nil
}

// chunk is one stored block with its replica placement.
type chunk struct {
	data     []byte
	replicas []int // datanode ids
}

// DFS is an in-memory replicated chunk store with a flat namespace.
type DFS struct {
	cfg    DFSConfig
	files  map[string][]int // name -> chunk ids
	chunks []chunk
	rng    *stats.RNG
	// usage[node] is bytes stored per datanode (replicas counted).
	usage []int64
}

// NewDFS creates an empty file system.
func NewDFS(cfg DFSConfig, seed uint64) (*DFS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DFS{
		cfg:   cfg,
		files: map[string][]int{},
		rng:   stats.NewRNG(seed),
		usage: make([]int64, cfg.Nodes),
	}, nil
}

// Config returns the DFS configuration.
func (d *DFS) Config() DFSConfig { return d.cfg }

// Create writes data as a new file, chunking and replicating it.
// It fails if the file exists.
func (d *DFS) Create(name string, data []byte) error {
	if _, ok := d.files[name]; ok {
		return fmt.Errorf("mapreduce: file %q exists", name)
	}
	var ids []int
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += d.cfg.ChunkBytes {
		end := off + d.cfg.ChunkBytes
		if end > len(data) {
			end = len(data)
		}
		ids = append(ids, d.storeChunk(data[off:end]))
		if len(data) == 0 {
			break
		}
	}
	d.files[name] = ids
	return nil
}

// storeChunk copies the payload and places replicas on the least-loaded
// distinct datanodes (a simplification of HDFS's rack-aware placement).
func (d *DFS) storeChunk(payload []byte) int {
	data := make([]byte, len(payload))
	copy(data, payload)

	type load struct {
		node  int
		bytes int64
	}
	loads := make([]load, d.cfg.Nodes)
	for n := range loads {
		loads[n] = load{node: n, bytes: d.usage[n]}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].bytes != loads[j].bytes {
			return loads[i].bytes < loads[j].bytes
		}
		return loads[i].node < loads[j].node
	})
	replicas := make([]int, d.cfg.Replication)
	for i := 0; i < d.cfg.Replication; i++ {
		replicas[i] = loads[i].node
		d.usage[loads[i].node] += int64(len(data))
	}
	d.chunks = append(d.chunks, chunk{data: data, replicas: replicas})
	return len(d.chunks) - 1
}

// Exists reports whether a file is present.
func (d *DFS) Exists(name string) bool {
	_, ok := d.files[name]
	return ok
}

// Delete removes a file's namespace entry (chunks become garbage; this
// toy namenode does not reclaim them).
func (d *DFS) Delete(name string) error {
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("mapreduce: file %q not found", name)
	}
	delete(d.files, name)
	return nil
}

// FileChunks returns the chunk count of a file.
func (d *DFS) FileChunks(name string) (int, error) {
	ids, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("mapreduce: file %q not found", name)
	}
	return len(ids), nil
}

// FileBytes returns the logical size of a file.
func (d *DFS) FileBytes(name string) (int64, error) {
	ids, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("mapreduce: file %q not found", name)
	}
	var total int64
	for _, id := range ids {
		total += int64(len(d.chunks[id].data))
	}
	return total, nil
}

// ReadChunk returns the payload of the i-th chunk of a file, plus the
// datanode it was served from.
func (d *DFS) ReadChunk(name string, i int) ([]byte, int, error) {
	ids, ok := d.files[name]
	if !ok {
		return nil, 0, fmt.Errorf("mapreduce: file %q not found", name)
	}
	if i < 0 || i >= len(ids) {
		return nil, 0, fmt.Errorf("mapreduce: chunk %d out of range for %q", i, name)
	}
	c := d.chunks[ids[i]]
	node := c.replicas[d.rng.Intn(len(c.replicas))]
	return c.data, node, nil
}

// ReadAll concatenates a file's chunks.
func (d *DFS) ReadAll(name string) ([]byte, error) {
	ids, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("mapreduce: file %q not found", name)
	}
	var out []byte
	for _, id := range ids {
		out = append(out, d.chunks[id].data...)
	}
	return out, nil
}

// TotalStoredBytes returns physical bytes across all datanodes
// (replicas counted).
func (d *DFS) TotalStoredBytes() int64 {
	var total int64
	for _, u := range d.usage {
		total += u
	}
	return total
}

// NodeUsage returns per-datanode stored bytes.
func (d *DFS) NodeUsage() []int64 {
	out := make([]int64, len(d.usage))
	copy(out, d.usage)
	return out
}
