package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// KV is one key/value pair.
type KV struct {
	Key, Value string
}

// Mapper transforms one input split record-by-record.
type Mapper interface {
	// Map processes one record and emits intermediate pairs.
	Map(record string, emit func(key, value string))
}

// Reducer folds all values of one key.
type Reducer interface {
	// Reduce processes one key group and emits output pairs.
	Reduce(key string, values []string, emit func(key, value string))
}

// Combiner optionally pre-aggregates map output before the shuffle
// (Hadoop's combiner); any Reducer can serve as one.
type Combiner = Reducer

// Job describes one MapReduce execution.
type Job struct {
	Name        string
	Input       string // DFS file
	Output      string // DFS file to create
	Mapper      Mapper
	Reducer     Reducer
	Combiner    Combiner // optional
	ReduceTasks int
}

// TaskStats records the measured work of one task — the quantities the
// workload generator maps onto resource demands.
type TaskStats struct {
	// Kind is "map" or "reduce".
	Kind string
	// InputBytes read (chunk bytes for maps, shuffle bytes for reduces).
	InputBytes int64
	// Records processed.
	Records int64
	// OutputBytes emitted (shuffle bytes for maps, DFS bytes for reduces).
	OutputBytes int64
	// Node is the datanode the map input was served from (-1 for
	// reduces).
	Node int
}

// JobResult summarizes a completed job.
type JobResult struct {
	MapTasks    []TaskStats
	ReduceTasks []TaskStats
	// ShuffleBytes is the total intermediate data moved.
	ShuffleBytes int64
	// OutputBytes is the total job output written to the DFS.
	OutputBytes int64
}

// TotalTasks returns the task count.
func (r JobResult) TotalTasks() int { return len(r.MapTasks) + len(r.ReduceTasks) }

// Validate reports structural job errors.
func (j Job) Validate() error {
	switch {
	case j.Input == "" || j.Output == "":
		return fmt.Errorf("mapreduce: job %q needs input and output", j.Name)
	case j.Mapper == nil || j.Reducer == nil:
		return fmt.Errorf("mapreduce: job %q needs mapper and reducer", j.Name)
	case j.ReduceTasks <= 0:
		return fmt.Errorf("mapreduce: job %q needs reduce tasks > 0", j.Name)
	}
	return nil
}

// Run executes the job to completion: one map task per input chunk,
// hash partitioning into ReduceTasks buckets, per-partition sort, and
// the reduce phase writing the output file. Execution is sequential and
// deterministic; the surrounding performance simulation models the
// parallelism (DESIGN.md §2).
func Run(d *DFS, job Job) (JobResult, error) {
	if err := job.Validate(); err != nil {
		return JobResult{}, err
	}
	nChunks, err := d.FileChunks(job.Input)
	if err != nil {
		return JobResult{}, err
	}
	if d.Exists(job.Output) {
		return JobResult{}, fmt.Errorf("mapreduce: output %q exists", job.Output)
	}

	var res JobResult
	partitions := make([][]KV, job.ReduceTasks)

	// Map phase: one task per chunk. Records are attributed to the chunk
	// where they START (Hadoop's TextInputFormat semantics: a reader
	// skips the partial first line of its split and reads past the split
	// end to finish its last record), so records crossing chunk
	// boundaries are processed exactly once.
	chunkRecords, err := recordsByChunk(d, job.Input)
	if err != nil {
		return JobResult{}, err
	}
	for c := 0; c < nChunks; c++ {
		data, node, err := d.ReadChunk(job.Input, c)
		if err != nil {
			return JobResult{}, err
		}
		st := TaskStats{Kind: "map", InputBytes: int64(len(data)), Node: node}

		var mapOut []KV
		emit := func(k, v string) { mapOut = append(mapOut, KV{k, v}) }
		for _, record := range chunkRecords[c] {
			st.Records++
			job.Mapper.Map(record, emit)
		}
		if job.Combiner != nil {
			mapOut = combine(mapOut, job.Combiner)
		}
		for _, kv := range mapOut {
			p := partitionOf(kv.Key, job.ReduceTasks)
			partitions[p] = append(partitions[p], kv)
			bytes := int64(len(kv.Key) + len(kv.Value) + 2)
			st.OutputBytes += bytes
			res.ShuffleBytes += bytes
		}
		res.MapTasks = append(res.MapTasks, st)
	}

	// Reduce phase.
	var output []byte
	for p := 0; p < job.ReduceTasks; p++ {
		st := TaskStats{Kind: "reduce", Node: -1}
		part := partitions[p]
		sort.SliceStable(part, func(i, j int) bool { return part[i].Key < part[j].Key })
		for _, kv := range part {
			st.InputBytes += int64(len(kv.Key) + len(kv.Value) + 2)
		}
		emit := func(k, v string) {
			line := k + "\t" + v + "\n"
			output = append(output, line...)
			st.OutputBytes += int64(len(line))
		}
		for i := 0; i < len(part); {
			j := i
			var values []string
			for j < len(part) && part[j].Key == part[i].Key {
				values = append(values, part[j].Value)
				j++
			}
			st.Records++
			job.Reducer.Reduce(part[i].Key, values, emit)
			i = j
		}
		res.OutputBytes += st.OutputBytes
		res.ReduceTasks = append(res.ReduceTasks, st)
	}

	if err := d.Create(job.Output, output); err != nil {
		return JobResult{}, err
	}
	return res, nil
}

// combine groups map output by key and runs the combiner per group.
func combine(in []KV, c Combiner) []KV {
	sort.SliceStable(in, func(i, j int) bool { return in[i].Key < in[j].Key })
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	for i := 0; i < len(in); {
		j := i
		var values []string
		for j < len(in) && in[j].Key == in[i].Key {
			values = append(values, in[j].Value)
			j++
		}
		c.Reduce(in[i].Key, values, emit)
		i = j
	}
	return out
}

// partitionOf hashes a key into a reduce bucket (Hadoop's default
// HashPartitioner).
func partitionOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// recordsByChunk splits the file into newline-delimited records and
// attributes each record to the chunk containing its first byte,
// mirroring TextInputFormat's split handling.
func recordsByChunk(d *DFS, name string) ([][]string, error) {
	data, err := d.ReadAll(name)
	if err != nil {
		return nil, err
	}
	nChunks, err := d.FileChunks(name)
	if err != nil {
		return nil, err
	}
	chunkBytes := d.Config().ChunkBytes
	out := make([][]string, nChunks)
	start := 0
	addRecord := func(lo, hi int) {
		if hi <= lo {
			return
		}
		c := lo / chunkBytes
		if c >= nChunks {
			c = nChunks - 1
		}
		out[c] = append(out[c], string(data[lo:hi]))
	}
	for i, b := range data {
		if b == '\n' {
			addRecord(start, i)
			start = i + 1
		}
	}
	addRecord(start, len(data))
	return out, nil
}
