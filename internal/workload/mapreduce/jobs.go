package mapreduce

import (
	"fmt"
	"strconv"
	"strings"

	"warehousesim/internal/stats"
)

// WordCountMapper tokenizes records and emits (word, 1) — the paper's
// mapreduce-wc job.
type WordCountMapper struct{}

// Map implements Mapper.
func (WordCountMapper) Map(record string, emit func(key, value string)) {
	for _, w := range strings.Fields(record) {
		emit(w, "1")
	}
}

// SumReducer adds integer values per key (word count's reducer and
// combiner).
type SumReducer struct{}

// Reduce implements Reducer.
func (SumReducer) Reduce(key string, values []string, emit func(key, value string)) {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			// Malformed intermediate data is a programming error in this
			// closed system; count it as 1 to stay total.
			n = 1
		}
		sum += n
	}
	emit(key, strconv.Itoa(sum))
}

// CorpusConfig sizes the synthetic text corpus for word count.
type CorpusConfig struct {
	// TotalBytes of text to generate (the paper's job counts words over
	// a 5 GB corpus; default engines scale down).
	TotalBytes int64
	// Vocabulary is the distinct word count.
	Vocabulary int
	// ZipfS shapes word frequency.
	ZipfS float64
	// WordsPerLine controls record length.
	WordsPerLine int
	// Seed drives generation.
	Seed uint64
}

// DefaultCorpusConfig returns a corpus sized for fast tests.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		TotalBytes:   8 << 20,
		Vocabulary:   20000,
		ZipfS:        1.0,
		WordsPerLine: 12,
		Seed:         1,
	}
}

// Validate reports nonsensical configurations.
func (c CorpusConfig) Validate() error {
	switch {
	case c.TotalBytes <= 0:
		return fmt.Errorf("mapreduce: corpus bytes must be positive")
	case c.Vocabulary <= 0:
		return fmt.Errorf("mapreduce: vocabulary must be positive")
	case c.ZipfS <= 0:
		return fmt.Errorf("mapreduce: zipf shape must be positive")
	case c.WordsPerLine <= 0:
		return fmt.Errorf("mapreduce: words per line must be positive")
	}
	return nil
}

// GenerateCorpus writes a synthetic Zipf-worded text file into the DFS.
func GenerateCorpus(d *DFS, name string, cfg CorpusConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	z, err := stats.NewZipf(cfg.Vocabulary, cfg.ZipfS)
	if err != nil {
		return err
	}
	r := stats.NewRNG(cfg.Seed)
	var b strings.Builder
	b.Grow(int(cfg.TotalBytes) + 256)
	for int64(b.Len()) < cfg.TotalBytes {
		for w := 0; w < cfg.WordsPerLine; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(wordOf(z.Rank(r)))
		}
		b.WriteByte('\n')
	}
	return d.Create(name, []byte(b.String()))
}

// wordOf renders rank i as a deterministic pseudo-word ("w" + base26).
func wordOf(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if i == 0 {
		return "wa"
	}
	var buf [16]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = letters[i%26]
		i /= 26
	}
	return "w" + string(buf[n:])
}

// WordCountJob builds the paper's mapred-wc job over the given input.
func WordCountJob(input, output string) Job {
	return Job{
		Name:        "mapred-wc",
		Input:       input,
		Output:      output,
		Mapper:      WordCountMapper{},
		Reducer:     SumReducer{},
		Combiner:    SumReducer{},
		ReduceTasks: 16,
	}
}

// RunWrite executes the paper's mapred-wr job: tasks generate random
// words and populate the file system. Each task writes one chunk-sized
// file; the returned stats mirror JobResult's map tasks.
func RunWrite(d *DFS, prefix string, tasks int, bytesPerTask int, cfg CorpusConfig) ([]TaskStats, error) {
	if tasks <= 0 || bytesPerTask <= 0 {
		return nil, fmt.Errorf("mapreduce: write job needs positive tasks and sizes")
	}
	z, err := stats.NewZipf(cfg.Vocabulary, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(cfg.Seed)
	var out []TaskStats
	for t := 0; t < tasks; t++ {
		var b strings.Builder
		b.Grow(bytesPerTask + 64)
		records := int64(0)
		for b.Len() < bytesPerTask {
			for w := 0; w < cfg.WordsPerLine; w++ {
				if w > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(wordOf(z.Rank(r)))
			}
			b.WriteByte('\n')
			records++
		}
		name := fmt.Sprintf("%s-%05d", prefix, t)
		data := []byte(b.String())
		if err := d.Create(name, data); err != nil {
			return nil, err
		}
		out = append(out, TaskStats{
			Kind:        "write",
			Records:     records,
			OutputBytes: int64(len(data)) * int64(d.Config().Replication),
			Node:        -1,
		})
	}
	return out, nil
}
