// Package workload defines the common model all four benchmark
// generators share: per-request resource demands, the per-workload
// demand profile used by the analytic solver, and the Generator
// interface that the DES and the trace producers consume.
//
// Sub-packages implement the actual engines behind the four benchmarks
// of Table 1 (websearch, webmail, ytube, mapreduce); the engines sample
// concrete Request demands from real data structures (posting lists,
// mailboxes, video catalogs, map tasks).
package workload

import (
	"fmt"
	"math"

	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
)

// Class identifies the benchmark family a generator belongs to.
type Class int

// The benchmark suite of Table 1 (mapreduce has two variants, §2.1).
const (
	Websearch Class = iota
	Webmail
	Ytube
	MapReduceWC
	MapReduceWR
)

// String implements fmt.Stringer with the paper's names.
func (c Class) String() string {
	switch c {
	case Websearch:
		return "websearch"
	case Webmail:
		return "webmail"
	case Ytube:
		return "ytube"
	case MapReduceWC:
		return "mapred-wc"
	case MapReduceWR:
		return "mapred-wr"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Request is the resource demand of one benchmark request (one query,
// one mail action, one media chunk fetch, one map/reduce task).
type Request struct {
	// CPURefSec is CPU time on the reference core (srvr1's 2.6 GHz OoO
	// core with the workload's working set resident as it would be on
	// srvr1's 8 MB L2).
	CPURefSec float64
	// DiskOps is the number of disk positioning operations.
	DiskOps float64
	// DiskReadBytes and DiskWriteBytes are the transfer volumes.
	DiskReadBytes  float64
	DiskWriteBytes float64
	// NetBytes is the traffic on the server NIC for this request.
	NetBytes float64
}

// Profile is the analytic demand model for a workload: the means of the
// Request distribution plus platform-sensitivity and QoS metadata.
// Profiles are calibrated against the paper's Figure 2(c) relative
// performance matrix (see cmd/whcalib and DESIGN.md §2).
type Profile struct {
	Name  string
	Class Class

	// Mean per-request demands (same semantics as Request).
	CPURefSec      float64
	DiskOps        float64
	DiskReadBytes  float64
	DiskWriteBytes float64
	NetBytes       float64

	// CacheWorkingSetMB and CacheMissPenalty parameterize
	// platform.CPU.CoreSpeed for this workload.
	CacheWorkingSetMB float64
	CacheMissPenalty  float64
	// CoreScalingBeta models sub-linear multicore scaling: an m-core CPU
	// delivers m^beta core-equivalents of throughput.
	CoreScalingBeta float64

	// MemFootprintMB is the resident page working set (drives the
	// memory-blade experiments).
	MemFootprintMB float64
	// MemLocalityZipfS shapes the page-access popularity distribution.
	MemLocalityZipfS float64

	// QoSLatencySec is the per-request latency bound; 0 means a batch
	// workload with no interactive QoS. QoSPercentile is the quantile the
	// bound applies to (e.g. 0.95: ">95% of queries take <0.5s").
	QoSLatencySec float64
	QoSPercentile float64

	// ThinkTimeSec is the mean client think time between requests.
	ThinkTimeSec float64

	// Batch marks execution-time benchmarks (mapreduce). For batch
	// workloads Perf is reported as 1/execution-time, and JobRequests is
	// the number of tasks constituting one job.
	Batch       bool
	JobRequests int
}

// Validate reports structurally invalid profiles.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.CPURefSec < 0 || p.DiskOps < 0 || p.DiskReadBytes < 0 || p.DiskWriteBytes < 0 || p.NetBytes < 0:
		return fmt.Errorf("workload %s: negative demand", p.Name)
	case p.CPURefSec == 0 && p.DiskOps == 0 && p.DiskReadBytes == 0 && p.NetBytes == 0:
		return fmt.Errorf("workload %s: no demand at all", p.Name)
	case p.CoreScalingBeta <= 0 || p.CoreScalingBeta > 1:
		return fmt.Errorf("workload %s: beta %g outside (0,1]", p.Name, p.CoreScalingBeta)
	case p.QoSLatencySec < 0:
		return fmt.Errorf("workload %s: negative QoS bound", p.Name)
	case p.QoSLatencySec > 0 && (p.QoSPercentile <= 0 || p.QoSPercentile >= 1):
		return fmt.Errorf("workload %s: QoS percentile %g outside (0,1)", p.Name, p.QoSPercentile)
	case p.Batch && p.JobRequests <= 0:
		return fmt.Errorf("workload %s: batch job with %d requests", p.Name, p.JobRequests)
	}
	return nil
}

// MeanRequest returns the profile's mean demands as a Request.
func (p Profile) MeanRequest() Request {
	return Request{
		CPURefSec:      p.CPURefSec,
		DiskOps:        p.DiskOps,
		DiskReadBytes:  p.DiskReadBytes,
		DiskWriteBytes: p.DiskWriteBytes,
		NetBytes:       p.NetBytes,
	}
}

// ReferenceCPU is the CPU all CPURefSec demands are expressed against:
// srvr1's core (§2.2 uses srvr1 as the 100% baseline).
func ReferenceCPU() platform.CPU { return platform.Srvr1().CPU }

// RelativeCoreSpeed returns how fast one core of cpu runs this workload
// relative to one reference core (1.0 for srvr1/srvr2).
func (p Profile) RelativeCoreSpeed(cpu platform.CPU) float64 {
	ref := ReferenceCPU().CoreSpeed(p.CacheWorkingSetMB, p.CacheMissPenalty)
	return cpu.CoreSpeed(p.CacheWorkingSetMB, p.CacheMissPenalty) / ref
}

// EffectiveCores returns the core-equivalents an m-core CPU contributes
// under this workload's scaling exponent.
func (p Profile) EffectiveCores(cores int) float64 {
	return math.Pow(float64(cores), p.CoreScalingBeta)
}

// Generator produces the per-request demands for one benchmark. The
// concrete implementations live in the sub-packages and are backed by
// real engines (inverted index, mailbox store, video catalog, MapReduce
// runtime).
type Generator interface {
	// Profile returns the analytic demand profile (means + metadata).
	Profile() Profile
	// Sample draws the demands of one request.
	Sample(r *stats.RNG) Request
}

// StatelessGenerator marks generators whose Sample depends only on the
// RNG passed in — no internal mutable state — so one instance may serve
// concurrent single-threaded trials, each with its own RNG. The engine
// generators (websearch query caches, webmail session queues) are
// deliberately stateful and must NOT claim this.
type StatelessGenerator interface {
	Generator
	// Stateless is a marker method; implementations leave it empty.
	Stateless()
}

// IsStateless reports whether gen advertises stateless sampling.
func IsStateless(gen Generator) bool {
	_, ok := gen.(StatelessGenerator)
	return ok
}

// FixedGenerator adapts a bare Profile into a Generator whose samples
// are exponentially distributed around the profile means — used in tests
// and by the calibration tool, where no engine is needed.
type FixedGenerator struct {
	P Profile
	// Deterministic disables the exponential jitter.
	Deterministic bool
}

// Profile implements Generator.
func (g FixedGenerator) Profile() Profile { return g.P }

// Stateless implements StatelessGenerator: every sample depends only on
// the passed RNG.
func (FixedGenerator) Stateless() {}

// Sample implements Generator.
func (g FixedGenerator) Sample(r *stats.RNG) Request {
	m := g.P.MeanRequest()
	if g.Deterministic {
		return m
	}
	j := r.ExpFloat64()
	return Request{
		CPURefSec:      m.CPURefSec * j,
		DiskOps:        m.DiskOps,
		DiskReadBytes:  m.DiskReadBytes * j,
		DiskWriteBytes: m.DiskWriteBytes * j,
		NetBytes:       m.NetBytes * j,
	}
}
