// Package ytube implements the rich-media benchmark of the suite
// (Table 1): a streaming media server standing in for the paper's
// modified SPECweb2005 Support workload driven with YouTube traffic
// characteristics (after Gill et al.'s edge-server study).
//
// A synthetic video catalog is generated with heavy-tailed file sizes
// and Zipf popularity. Clients fetch videos in streaming chunks; many
// sessions abandon early (partial views dominate real traces). The
// hottest catalog prefix is served from the page cache; cold videos pay
// disk reads. QoS models streaming behavior: each chunk must arrive
// within its playout deadline.
package ytube

import (
	"fmt"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Config sizes the synthetic catalog.
type Config struct {
	// Videos is the catalog size.
	Videos int
	// PopularityZipfS shapes video popularity (Gill et al. observe
	// Zipf-like popularity at the edge).
	PopularityZipfS float64
	// MeanVideoBytes and MedianVideoBytes parameterize the size
	// distribution (right-skewed log-normal).
	MeanVideoBytes   float64
	MedianVideoBytes float64
	// MaxVideoBytes caps the tail.
	MaxVideoBytes float64
	// ChunkBytes is the streaming chunk size.
	ChunkBytes float64
	// CacheFraction is the fraction of total catalog bytes resident in
	// the page cache (hottest videos first).
	CacheFraction float64
	// AbandonProb is the per-chunk probability that the viewer stops
	// watching (partial views dominate edge traces).
	AbandonProb float64
	// Seed drives catalog generation.
	Seed uint64
}

// DefaultConfig returns a catalog with edge-trace-like statistics,
// scaled for simulation speed.
func DefaultConfig() Config {
	return Config{
		Videos:           20000,
		PopularityZipfS:  0.9,
		MeanVideoBytes:   8e6,
		MedianVideoBytes: 4e6,
		MaxVideoBytes:    100e6,
		ChunkBytes:       200e3,
		CacheFraction:    0.30,
		AbandonProb:      0.12,
		Seed:             1,
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Videos <= 0:
		return fmt.Errorf("ytube: no videos")
	case c.PopularityZipfS <= 0:
		return fmt.Errorf("ytube: non-positive popularity shape")
	case c.MedianVideoBytes <= 0 || c.MeanVideoBytes <= c.MedianVideoBytes:
		return fmt.Errorf("ytube: invalid size distribution mean=%g median=%g",
			c.MeanVideoBytes, c.MedianVideoBytes)
	case c.ChunkBytes <= 0:
		return fmt.Errorf("ytube: non-positive chunk size")
	case c.CacheFraction < 0 || c.CacheFraction > 1:
		return fmt.Errorf("ytube: cache fraction %g outside [0,1]", c.CacheFraction)
	case c.AbandonProb < 0 || c.AbandonProb >= 1:
		return fmt.Errorf("ytube: abandon probability %g outside [0,1)", c.AbandonProb)
	}
	return nil
}

// Video is one catalog entry.
type Video struct {
	Bytes  int64
	Cached bool
}

// Catalog is the immutable video library plus its popularity model.
type Catalog struct {
	cfg        Config
	videos     []Video
	popularity *stats.Zipf
	totalBytes int64
	// pageStart[v] is the first page of video v in the virtual layout.
	pageStart []int64
	// sessions tracks in-progress viewers per engine instance (by
	// generator, not here; Catalog stays immutable).
}

const pageSize = 4096

// BuildCatalog generates the video library. Deterministic per Config.
func BuildCatalog(cfg Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pop, err := stats.NewZipf(cfg.Videos, cfg.PopularityZipfS)
	if err != nil {
		return nil, err
	}
	sizeDist := stats.Clamp{
		S:  stats.LogNormalFromMeanP50(cfg.MeanVideoBytes, cfg.MedianVideoBytes),
		Lo: 256e3, Hi: cfg.MaxVideoBytes,
	}
	c := &Catalog{cfg: cfg, popularity: pop,
		videos: make([]Video, cfg.Videos), pageStart: make([]int64, cfg.Videos+1)}
	r := stats.NewRNG(cfg.Seed)
	var page int64
	for v := range c.videos {
		size := int64(sizeDist.Sample(r))
		c.videos[v] = Video{Bytes: size}
		c.totalBytes += size
		c.pageStart[v] = page
		page += (size + pageSize - 1) / pageSize
	}
	c.pageStart[cfg.Videos] = page

	// Cache the popular prefix up to CacheFraction of total bytes.
	// Popularity rank equals index (rank 0 hottest), so a prefix walk
	// caches the most-requested bytes first.
	budget := int64(cfg.CacheFraction * float64(c.totalBytes))
	var used int64
	for v := range c.videos {
		if used+c.videos[v].Bytes > budget {
			break
		}
		c.videos[v].Cached = true
		used += c.videos[v].Bytes
	}
	return c, nil
}

// Videos returns the catalog size.
func (c *Catalog) Videos() int { return len(c.videos) }

// TotalBytes returns the catalog footprint.
func (c *Catalog) TotalBytes() int64 { return c.totalBytes }

// Video returns catalog entry v.
func (c *Catalog) Video(v int) Video { return c.videos[v] }

// Pick draws a video by popularity.
func (c *Catalog) Pick(r *stats.RNG) int { return c.popularity.Rank(r) }

// CachedBytesFraction reports the achieved cache coverage (may fall
// slightly below the configured fraction due to whole-video caching).
func (c *Catalog) CachedBytesFraction() float64 {
	var cached int64
	for _, v := range c.videos {
		if v.Cached {
			cached += v.Bytes
		}
	}
	return float64(cached) / float64(c.totalBytes)
}

// viewer is one in-progress streaming session.
type viewer struct {
	video  int
	offset int64
}

// Engine serves chunk requests from streaming viewers and maps the work
// onto the calibrated demand profile.
type Engine struct {
	cat     *Catalog
	profile workload.Profile
	viewers []viewer

	meanChunk, meanColdBytes, meanOps float64
}

// concurrentViewers is the pool of interleaved streaming sessions the
// generator advances round-robin.
const concurrentViewers = 64

// calibrationChunks estimates mean per-chunk work at construction.
const calibrationChunks = 5000

// New builds the catalog and calibrates the engine.
func New(cfg Config, profile workload.Profile) (*Engine, error) {
	cat, err := BuildCatalog(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{cat: cat, profile: profile, viewers: make([]viewer, concurrentViewers)}
	r := stats.NewRNG(cfg.Seed ^ 0xfeed)
	for i := range e.viewers {
		e.viewers[i] = viewer{video: cat.Pick(r)}
	}
	var chunk, cold, ops float64
	for i := 0; i < calibrationChunks; i++ {
		cb, coldB, op := e.step(r, i%len(e.viewers))
		chunk += cb
		cold += coldB
		ops += op
	}
	n := float64(calibrationChunks)
	e.meanChunk, e.meanColdBytes, e.meanOps = chunk/n, cold/n, ops/n
	return e, nil
}

// Catalog exposes the library (examples and tests).
func (e *Engine) Catalog() *Catalog { return e.cat }

// step advances viewer i by one chunk and returns (chunkBytes,
// coldDiskBytes, diskOps).
func (e *Engine) step(r *stats.RNG, i int) (chunkBytes, coldBytes, ops float64) {
	v := &e.viewers[i]
	vid := e.cat.videos[v.video]
	remaining := vid.Bytes - v.offset
	chunk := int64(e.cat.cfg.ChunkBytes)
	if remaining < chunk {
		chunk = remaining
	}
	v.offset += chunk
	done := v.offset >= vid.Bytes || r.Bool(e.cat.cfg.AbandonProb)
	if done {
		*v = viewer{video: e.cat.Pick(r)}
	}
	if vid.Cached {
		return float64(chunk), 0, 0
	}
	// Cold: one positioning op per chunk (mostly sequential within the
	// video, but interleaved across concurrent streams).
	return float64(chunk), float64(chunk), 1
}

// Profile implements workload.Generator.
func (e *Engine) Profile() workload.Profile { return e.profile }

// Sample implements workload.Generator: serve the next chunk of a
// streaming session.
func (e *Engine) Sample(r *stats.RNG) workload.Request {
	i := r.Intn(len(e.viewers))
	chunk, cold, ops := e.step(r, i)
	p := e.profile
	return workload.Request{
		CPURefSec:     p.CPURefSec * ratio(chunk, e.meanChunk),
		DiskOps:       p.DiskOps * ratio(ops, e.meanOps),
		DiskReadBytes: p.DiskReadBytes * ratio(cold, e.meanColdBytes),
		NetBytes:      p.NetBytes * ratio(chunk, e.meanChunk),
	}
}

// TracePages implements trace.PageTracer: chunk delivery touches the
// video's pages sequentially (scaled into the profile footprint), with
// strong reuse on the popular prefix.
func (e *Engine) TracePages(r *stats.RNG, emit func(page int64, write bool)) {
	i := r.Intn(len(e.viewers))
	v := e.viewers[i]
	start := e.cat.pageStart[v.video] + v.offset/pageSize
	pages := int64(e.cat.cfg.ChunkBytes) / pageSize
	if pages < 1 {
		pages = 1
	}
	footprintPages := int64(e.profile.MemFootprintMB * 1e6 / pageSize)
	if footprintPages < 1 {
		footprintPages = 1
	}
	for p := int64(0); p < pages; p++ {
		emit((start+p)%footprintPages, false)
	}
	// Advance the viewer so consecutive trace calls walk the stream.
	e.step(r, i)
}

func ratio(x, mean float64) float64 {
	if mean <= 0 {
		return 1
	}
	return x / mean
}
