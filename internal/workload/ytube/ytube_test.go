package ytube

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Videos = 2000
	c.Seed = 5
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Videos = 0 },
		func(c *Config) { c.PopularityZipfS = 0 },
		func(c *Config) { c.MeanVideoBytes = c.MedianVideoBytes },
		func(c *Config) { c.ChunkBytes = 0 },
		func(c *Config) { c.CacheFraction = 1.2 },
		func(c *Config) { c.AbandonProb = 1 },
	}
	for i, mutate := range bads {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCatalogStatistics(t *testing.T) {
	cat, err := BuildCatalog(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cat.Videos() != 2000 {
		t.Errorf("videos = %d", cat.Videos())
	}
	var total int64
	for v := 0; v < cat.Videos(); v++ {
		b := cat.Video(v).Bytes
		if b < 256e3 || b > 100e6 {
			t.Fatalf("video %d size %d outside clamp", v, b)
		}
		total += b
	}
	if total != cat.TotalBytes() {
		t.Errorf("total bytes mismatch: %d vs %d", total, cat.TotalBytes())
	}
}

func TestCacheCoversHotPrefix(t *testing.T) {
	cat, err := BuildCatalog(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Video(0).Cached {
		t.Error("hottest video not cached")
	}
	if cat.Video(cat.Videos() - 1).Cached {
		t.Error("coldest video cached")
	}
	frac := cat.CachedBytesFraction()
	if frac <= 0.2 || frac > 0.30001 {
		t.Errorf("cached byte fraction %g, want ~0.30", frac)
	}
	// Prefix property: no cached video after the first uncached one.
	seenUncached := false
	for v := 0; v < cat.Videos(); v++ {
		if !cat.Video(v).Cached {
			seenUncached = true
		} else if seenUncached {
			t.Fatal("cache is not a popularity prefix")
		}
	}
}

func TestPopularitySkew(t *testing.T) {
	cat, err := BuildCatalog(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(6)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if cat.Pick(r) < cat.Videos()/10 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.4 {
		t.Errorf("top-10%% videos only drew %.0f%% of requests", frac*100)
	}
}

func TestEngineCacheHitRateMatchesPopularity(t *testing.T) {
	e, err := New(smallConfig(), workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(7)
	cold := 0
	const n = 20000
	for i := 0; i < n; i++ {
		req := e.Sample(r)
		if req.DiskReadBytes > 0 {
			cold++
		}
	}
	frac := float64(cold) / n
	// 30% of bytes cached on the hottest prefix should yield a cold
	// fraction well under the 70% byte residual.
	if frac > 0.7 || frac < 0.1 {
		t.Errorf("cold chunk fraction %.2f implausible", frac)
	}
}

func TestEngineSampleMeansMatchProfile(t *testing.T) {
	prof := workload.YtubeProfile()
	e, err := New(smallConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(8)
	var net, disk stats.Summary
	for i := 0; i < 20000; i++ {
		req := e.Sample(r)
		net.Add(req.NetBytes)
		disk.Add(req.DiskReadBytes)
	}
	if m := net.Mean(); math.Abs(m-prof.NetBytes)/prof.NetBytes > 0.15 {
		t.Errorf("net mean %g vs profile %g", m, prof.NetBytes)
	}
	if m := disk.Mean(); math.Abs(m-prof.DiskReadBytes)/prof.DiskReadBytes > 0.25 {
		t.Errorf("disk mean %g vs profile %g", m, prof.DiskReadBytes)
	}
}

func TestViewersProgressAndRecycle(t *testing.T) {
	e, err := New(smallConfig(), workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9)
	videos := map[int]bool{}
	for i := 0; i < 5000; i++ {
		e.Sample(r)
		for _, v := range e.viewers {
			vid := e.cat.videos[v.video]
			if v.offset < 0 || v.offset > vid.Bytes {
				t.Fatalf("viewer offset %d outside video of %d bytes", v.offset, vid.Bytes)
			}
			videos[v.video] = true
		}
	}
	if len(videos) < 50 {
		t.Errorf("viewers stuck on %d distinct videos", len(videos))
	}
}

func TestTracePagesSequentialWithinChunk(t *testing.T) {
	e, err := New(smallConfig(), workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(10)
	footprint := int64(e.profile.MemFootprintMB * 1e6 / pageSize)
	for i := 0; i < 300; i++ {
		var pages []int64
		e.TracePages(r, func(p int64, write bool) {
			if write {
				t.Fatal("streaming trace should be read-only")
			}
			if p < 0 || p >= footprint {
				t.Fatalf("page %d outside footprint", p)
			}
			pages = append(pages, p)
		})
		if len(pages) == 0 {
			t.Fatal("no pages traced")
		}
		for j := 1; j < len(pages); j++ {
			// Sequential modulo the footprint wrap.
			if pages[j] != (pages[j-1]+1)%footprint {
				t.Fatalf("chunk pages not sequential: %v", pages)
			}
		}
	}
}

// Property: the engine never emits negative demands, for any seed.
func TestQuickSampleNonNegative(t *testing.T) {
	e, err := New(smallConfig(), workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		for i := 0; i < 50; i++ {
			req := e.Sample(r)
			if req.CPURefSec < 0 || req.DiskOps < 0 || req.DiskReadBytes < 0 || req.NetBytes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
