package workload

// Canonical demand profiles for the paper's benchmark suite (Table 1).
//
// QoS bounds, client behavior and job shapes come straight from the
// paper: websearch requires >95% of queries under 0.5s; webmail >95% of
// requests under 0.8s; ytube extends SPECweb2005 QoS to model streaming
// (modeled here as a 1s chunk deadline at the 95th percentile); the
// mapreduce variants are batch jobs measured by execution time (5 GB of
// input in 4 MB DFS chunks -> 1280 tasks).
//
// The demand constants (CPU seconds on the reference core, cache working
// set and miss penalty, core-scaling exponent, disk and network bytes)
// are CALIBRATED: cmd/whcalib fits them so the analytic model reproduces
// the relative-performance matrix of Figure 2(c) (see DESIGN.md §2).
// `go run ./cmd/whcalib -eval` re-checks the frozen fit, and regression
// tests in the experiments package verify it stays within tolerance.
// EXPERIMENTS.md documents the known deviations (chiefly emb2 on the
// CPU-bound workloads, whose published performance exceeds what any
// capacity model predicts from its 600 MHz in-order specs).

// WebsearchProfile returns the calibrated websearch demand profile:
// CPU-heavy unstructured-data processing over a partially cached index,
// with moderate disk traffic for cold posting lists.
func WebsearchProfile() Profile {
	return Profile{
		Name: "websearch", Class: Websearch,
		CPURefSec:         0.04451,
		DiskOps:           2.2,
		DiskReadBytes:     798e3,
		NetBytes:          100e3,
		CacheWorkingSetMB: 15.58,
		CacheMissPenalty:  0.522,
		CoreScalingBeta:   0.55,
		MemFootprintMB:    1600,
		MemLocalityZipfS:  0.85,
		QoSLatencySec:     0.5,
		QoSPercentile:     0.95,
		ThinkTimeSec:      1.0,
	}
}

// WebmailProfile returns the calibrated webmail demand profile:
// interactive web2.0 sessions with PHP-style CPU bursts, mailbox disk
// traffic and heavy back-end network activity under a tight QoS.
func WebmailProfile() Profile {
	return Profile{
		Name: "webmail", Class: Webmail,
		CPURefSec:         0.05542,
		DiskOps:           0.504,
		DiskReadBytes:     400e3,
		DiskWriteBytes:    100e3,
		NetBytes:          500e3,
		CacheWorkingSetMB: 16,
		CacheMissPenalty:  0.2,
		CoreScalingBeta:   0.811,
		MemFootprintMB:    800,
		MemLocalityZipfS:  0.75,
		QoSLatencySec:     0.8,
		QoSPercentile:     0.95,
		ThinkTimeSec:      4.0,
	}
}

// YtubeProfile returns the calibrated ytube demand profile: IO-dominated
// rich-media streaming with seek-plus-transfer disk accesses per chunk
// and minimal CPU.
func YtubeProfile() Profile {
	return Profile{
		Name: "ytube", Class: Ytube,
		CPURefSec:         0.002226,
		DiskOps:           2.426,
		DiskReadBytes:     200e3,
		NetBytes:          200e3,
		CacheWorkingSetMB: 0.333,
		CacheMissPenalty:  1.375,
		CoreScalingBeta:   0.55,
		MemFootprintMB:    1100,
		MemLocalityZipfS:  0.9,
		QoSLatencySec:     1.0,
		QoSPercentile:     0.95,
		ThinkTimeSec:      2.0,
	}
}

// MapReduceWCProfile returns the calibrated mapreduce word-count job:
// 1280 tasks (5 GB in 4 MB chunks), each performing seek-heavy chunk
// reads (4 concurrent tasks per CPU against one spindle) and word
// counting — srvr-class machines are disk-bound, consumer machines
// CPU-bound, reproducing Figure 2(c)'s crossover.
func MapReduceWCProfile() Profile {
	return Profile{
		Name: "mapred-wc", Class: MapReduceWC,
		CPURefSec:         0.1134,
		DiskOps:           16,
		DiskReadBytes:     2.0e6,
		NetBytes:          50e3,
		CacheWorkingSetMB: 16,
		CacheMissPenalty:  0.6,
		CoreScalingBeta:   0.55,
		MemFootprintMB:    1400,
		MemLocalityZipfS:  0.6,
		ThinkTimeSec:      0,
		Batch:             true,
		JobRequests:       1280,
	}
}

// MapReduceWRProfile returns the calibrated mapreduce distributed-write
// job: 1280 tasks generating random words and writing 4 MB DFS chunks —
// disk-write dominated, so platforms with the same disk converge.
func MapReduceWRProfile() Profile {
	return Profile{
		Name: "mapred-wr", Class: MapReduceWR,
		CPURefSec:         0.01809,
		DiskOps:           0.5,
		DiskWriteBytes:    8.0e6,
		NetBytes:          798e3,
		CacheWorkingSetMB: 0.32,
		CacheMissPenalty:  2.518,
		CoreScalingBeta:   0.695,
		MemFootprintMB:    900,
		MemLocalityZipfS:  0.5,
		ThinkTimeSec:      0,
		Batch:             true,
		JobRequests:       1280,
	}
}

// SuiteProfiles returns the five canonical profiles in the paper's
// presentation order.
func SuiteProfiles() []Profile {
	return []Profile{
		WebsearchProfile(), WebmailProfile(), YtubeProfile(),
		MapReduceWCProfile(), MapReduceWRProfile(),
	}
}

// ProfileByName looks a canonical profile up by its paper name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range SuiteProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
