package workload

import (
	"warehousesim/internal/obs"
	"warehousesim/internal/stats"
)

// Instrument wraps gen so every sampled request's demand vector is
// observed into rec's per-demand histograms ("demand.cpu_ref_sec",
// "demand.disk_ops", "demand.disk_read_bytes", "demand.disk_write_bytes",
// "demand.net_bytes"). With a nil or disabled recorder the generator is
// returned unwrapped, so uninstrumented paths pay nothing.
//
// Recording reads the sample after the generator has drawn it and makes
// no RNG draws of its own, so wrapping never changes the request stream.
func Instrument(gen Generator, rec obs.Recorder) Generator {
	if !obs.On(rec) {
		return gen
	}
	return instrumented{gen: gen, rec: rec}
}

type instrumented struct {
	gen Generator
	rec obs.Recorder
}

// Profile implements Generator.
func (g instrumented) Profile() Profile { return g.gen.Profile() }

// Sample implements Generator.
func (g instrumented) Sample(r *stats.RNG) Request {
	req := g.gen.Sample(r)
	g.rec.Observe("demand.cpu_ref_sec", req.CPURefSec)
	g.rec.Observe("demand.disk_ops", req.DiskOps)
	g.rec.Observe("demand.disk_read_bytes", req.DiskReadBytes)
	g.rec.Observe("demand.disk_write_bytes", req.DiskWriteBytes)
	g.rec.Observe("demand.net_bytes", req.NetBytes)
	g.rec.Count("demand.samples", 1)
	return req
}
