package webmail

import (
	"warehousesim/internal/stats"
)

// Action is one client interaction with the webmail front end.
type Action int

// The session action vocabulary (§2.1: "login, read email and
// attachments, reply/forward/delete/move, compose and send").
const (
	Login Action = iota
	ListFolder
	ReadMessage
	ReadAttachment
	Reply
	Forward
	Compose
	Delete
	Move
	Search
	Logout
	numActions
)

// String implements fmt.Stringer.
func (a Action) String() string {
	return [...]string{"login", "list", "read", "read-attachment", "reply",
		"forward", "compose", "delete", "move", "search", "logout"}[a]
}

// ActionWork quantifies the work one action performed; the generator
// scales these onto the calibrated demand profile.
type ActionWork struct {
	Action Action
	// CPUUnits is proportional to bytes rendered/parsed by the PHP layer.
	CPUUnits float64
	// DiskOps / DiskReadBytes / DiskWriteBytes are spool accesses.
	DiskOps        float64
	DiskReadBytes  float64
	DiskWriteBytes float64
	// NetBytes covers both the HTTP response and the IMAP/SMTP backend
	// round trips (the paper notes webmail's heavy network activity).
	NetBytes float64
}

// heavyUsageMix is the action mix of an active session, in the spirit of
// the LoadSim "heavy usage" profile: reading dominates, with regular
// replies, composes and housekeeping.
var heavyUsageMix = []struct {
	action Action
	weight float64
}{
	{ListFolder, 0.20},
	{ReadMessage, 0.33},
	{ReadAttachment, 0.08},
	{Reply, 0.10},
	{Forward, 0.04},
	{Compose, 0.08},
	{Delete, 0.07},
	{Move, 0.04},
	{Search, 0.03},
	{Logout, 0.03},
}

// Session is one logged-in user's state machine.
type Session struct {
	store  *Store
	user   int
	active bool
	mix    *stats.Empirical
}

// NewSession binds a session to one user account.
func NewSession(store *Store, user int) *Session {
	values := make([]float64, len(heavyUsageMix))
	weights := make([]float64, len(heavyUsageMix))
	for i, m := range heavyUsageMix {
		values[i] = float64(m.action)
		weights[i] = m.weight
	}
	mix, err := stats.NewEmpirical(values, weights)
	if err != nil {
		// The static mix is valid by construction.
		panic(err)
	}
	return &Session{store: store, user: user, mix: mix}
}

// User returns the bound account.
func (s *Session) User() int { return s.user }

// Active reports whether the session is logged in.
func (s *Session) Active() bool { return s.active }

// Step advances the state machine by one action and returns the work it
// performed. A logged-out session performs a Login; Logout closes it.
func (s *Session) Step(r *stats.RNG) ActionWork {
	// Background delivery (exim receiving outside mail): heavy users see
	// a steady inbound stream, which keeps inboxes from draining as the
	// session deletes and files messages.
	if s.store.FolderLen(s.user, Inbox) < 8 {
		for i := 0; i < 3; i++ {
			s.store.deliver(s.user, Inbox, s.store.newMessage(r))
		}
	}
	if !s.active {
		s.active = true
		return s.login(r)
	}
	a := Action(s.mix.Sample(r))
	switch a {
	case ListFolder:
		return s.list(r)
	case ReadMessage:
		return s.read(r, false)
	case ReadAttachment:
		return s.read(r, true)
	case Reply, Forward:
		return s.replyOrForward(r, a)
	case Compose:
		return s.compose(r)
	case Delete:
		return s.delete(r)
	case Move:
		return s.move(r)
	case Search:
		return s.search(r)
	case Logout:
		s.active = false
		return ActionWork{Action: Logout, CPUUnits: 1e3, NetBytes: 2e3}
	default:
		return s.list(r)
	}
}

// login authenticates and renders the inbox view.
func (s *Session) login(r *stats.RNG) ActionWork {
	w := s.list(r)
	w.Action = Login
	w.CPUUnits += 8e3 // auth, session setup
	w.NetBytes += 4e3
	return w
}

// list renders a folder listing: headers of up to a page of messages.
func (s *Session) list(r *stats.RNG) ActionWork {
	f := s.randomFolder(r)
	n := s.store.FolderLen(s.user, f)
	if n > 25 {
		n = 25
	}
	hdrBytes := float64(n) * 300
	return ActionWork{
		Action:        ListFolder,
		CPUUnits:      4e3 + 3*hdrBytes, // template rendering per row
		DiskOps:       1,
		DiskReadBytes: hdrBytes,
		NetBytes:      3e3 + hdrBytes + 2e3, // page + IMAP header fetch
	}
}

// read fetches and renders one message; withAttachment additionally
// downloads the attachment.
func (s *Session) read(r *stats.RNG, withAttachment bool) ActionWork {
	f := s.randomFolder(r)
	i := s.store.pick(r, s.user, f)
	if i < 0 {
		return s.list(r)
	}
	box := &s.store.boxes[s.user]
	m := &box.Folders[f][i]
	m.Read = true
	bytes := float64(m.BodyBytes)
	action := ReadMessage
	if withAttachment && m.AttachmentBytes > 0 {
		bytes += float64(m.AttachmentBytes)
		action = ReadAttachment
	}
	return ActionWork{
		Action:        action,
		CPUUnits:      3e3 + 2*float64(m.BodyBytes), // HTML-ize body only
		DiskOps:       1,
		DiskReadBytes: bytes,
		NetBytes:      2e3 + 2*bytes, // IMAP fetch + HTTP response
	}
}

// replyOrForward composes a response quoting the original and delivers
// it to another user via the SMTP path.
func (s *Session) replyOrForward(r *stats.RNG, a Action) ActionWork {
	f := s.randomFolder(r)
	i := s.store.pick(r, s.user, f)
	if i < 0 {
		return s.compose(r)
	}
	orig := s.store.boxes[s.user].Folders[f][i]
	reply := s.store.newMessage(r)
	reply.BodyBytes += orig.BodyBytes / 2 // quoted original
	if a == Forward {
		reply.AttachmentBytes = orig.AttachmentBytes
	}
	dest := r.Intn(s.store.Users())
	s.store.deliver(dest, Inbox, reply)
	s.store.deliver(s.user, Sent, reply)
	bytes := float64(reply.Bytes())
	return ActionWork{
		Action:         a,
		CPUUnits:       6e3 + 2*bytes,
		DiskOps:        2, // read original + write sent copy
		DiskReadBytes:  float64(orig.Bytes()),
		DiskWriteBytes: 2 * bytes,
		NetBytes:       4e3 + 2*bytes, // form + SMTP submission
	}
}

// compose writes a fresh message to another user.
func (s *Session) compose(r *stats.RNG) ActionWork {
	m := s.store.newMessage(r)
	dest := r.Intn(s.store.Users())
	s.store.deliver(dest, Inbox, m)
	s.store.deliver(s.user, Sent, m)
	bytes := float64(m.Bytes())
	return ActionWork{
		Action:         Compose,
		CPUUnits:       6e3 + 1.5*bytes,
		DiskOps:        1,
		DiskWriteBytes: 2 * bytes,
		NetBytes:       4e3 + 2*bytes,
	}
}

// delete moves a message to Trash (or purges it from Trash).
func (s *Session) delete(r *stats.RNG) ActionWork {
	f := s.randomFolder(r)
	i := s.store.pick(r, s.user, f)
	if i < 0 {
		return s.list(r)
	}
	m := s.store.remove(s.user, f, i)
	if f != Trash {
		s.store.deliver(s.user, Trash, m)
	}
	return ActionWork{
		Action:         Delete,
		CPUUnits:       3e3,
		DiskOps:        1,
		DiskWriteBytes: 512, // flag/index update
		NetBytes:       3e3,
	}
}

// move relocates a message between folders.
func (s *Session) move(r *stats.RNG) ActionWork {
	from := s.randomFolder(r)
	i := s.store.pick(r, s.user, from)
	if i < 0 {
		return s.list(r)
	}
	to := Folder(r.Intn(int(numFolders)))
	if to == from {
		to = (to + 1) % numFolders
	}
	m := s.store.remove(s.user, from, i)
	s.store.deliver(s.user, to, m)
	return ActionWork{
		Action:         Move,
		CPUUnits:       3e3,
		DiskOps:        2,
		DiskReadBytes:  float64(m.Bytes()),
		DiskWriteBytes: float64(m.Bytes()),
		NetBytes:       3e3,
	}
}

// search scans the whole mailbox for a keyword — SquirrelMail-style
// index-less search: every body is fetched and string-matched, making
// this the most expensive single action.
func (s *Session) search(r *stats.RNG) ActionWork {
	term := uint16(s.store.keywords.Rank(r))
	box := &s.store.boxes[s.user]
	var scanned float64
	matches := 0
	for f := Folder(0); f < numFolders; f++ {
		for i := range box.Folders[f] {
			m := &box.Folders[f][i]
			scanned += float64(m.BodyBytes)
			if m.HasKeyword(term) {
				matches++
			}
		}
	}
	return ActionWork{
		Action:        Search,
		CPUUnits:      5e3 + 2.5*scanned, // byte-wise matching across the spool
		DiskOps:       2,                 // folder scans (mostly sequential)
		DiskReadBytes: scanned,
		NetBytes:      3e3 + 300*float64(matches),
	}
}

// randomFolder favors the inbox, as real sessions do.
func (s *Session) randomFolder(r *stats.RNG) Folder {
	if r.Bool(0.7) {
		return Inbox
	}
	return Folder(1 + r.Intn(int(numFolders)-1))
}
