package webmail

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func smallConfig() Config {
	return Config{Users: 50, InitialMessages: 10, MaxMessagesPerFolder: 40,
		AttachmentProb: 0.25, Seed: 3}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Users = 0
	if bad.Validate() == nil {
		t.Error("zero users accepted")
	}
	bad = DefaultConfig()
	bad.AttachmentProb = 2
	if bad.Validate() == nil {
		t.Error("probability 2 accepted")
	}
}

func TestStoreProvisioning(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Users() != 50 {
		t.Errorf("users = %d", s.Users())
	}
	for u := 0; u < s.Users(); u++ {
		if got := s.FolderLen(u, Inbox); got != 10 {
			t.Fatalf("user %d inbox = %d, want 10", u, got)
		}
	}
	if s.TotalBytes <= 0 {
		t.Error("empty spool")
	}
}

func TestStoreByteAccounting(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	recount := func() int64 {
		var total int64
		for u := range s.boxes {
			for f := Folder(0); f < numFolders; f++ {
				for _, m := range s.boxes[u].Folders[f] {
					total += int64(m.Bytes())
				}
			}
		}
		return total
	}
	if recount() != s.TotalBytes {
		t.Fatal("initial byte accounting wrong")
	}
	// Run sessions and re-verify.
	r := stats.NewRNG(9)
	sess := NewSession(s, 5)
	for i := 0; i < 2000; i++ {
		sess.Step(r)
	}
	if got := recount(); got != s.TotalBytes {
		t.Errorf("byte accounting drifted: recount %d vs tracked %d", got, s.TotalBytes)
	}
}

func TestFolderCapBounded(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxMessagesPerFolder = 15
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(4)
	sess := NewSession(s, 0)
	for i := 0; i < 5000; i++ {
		sess.Step(r)
	}
	for u := 0; u < s.Users(); u++ {
		for f := Folder(0); f < numFolders; f++ {
			if got := s.FolderLen(u, f); got > 15 {
				t.Fatalf("user %d folder %v grew to %d", u, f, got)
			}
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, 1)
	r := stats.NewRNG(5)
	w := sess.Step(r)
	if w.Action != Login || !sess.Active() {
		t.Fatalf("first step should log in, got %v", w.Action)
	}
	// Walk until logout happens, then the next step must be a login.
	for i := 0; i < 10000; i++ {
		w = sess.Step(r)
		if w.Action == Logout {
			if sess.Active() {
				t.Fatal("active after logout")
			}
			w = sess.Step(r)
			if w.Action != Login {
				t.Fatalf("step after logout = %v", w.Action)
			}
			return
		}
	}
	t.Fatal("no logout in 10000 steps")
}

func TestActionMixCoverage(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, 2)
	r := stats.NewRNG(6)
	seen := map[Action]int{}
	for i := 0; i < 20000; i++ {
		seen[sess.Step(r).Action]++
	}
	for _, a := range []Action{Login, ListFolder, ReadMessage, Reply, Compose, Delete, Move, Search, Logout} {
		if seen[a] == 0 {
			t.Errorf("action %v never occurred", a)
		}
	}
	if seen[ReadMessage] < seen[Compose] {
		t.Error("reads should dominate composes in heavy-usage mix")
	}
}

func TestActionWorkNonNegative(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, 3)
	r := stats.NewRNG(7)
	for i := 0; i < 5000; i++ {
		w := sess.Step(r)
		if w.CPUUnits < 0 || w.DiskOps < 0 || w.DiskReadBytes < 0 ||
			w.DiskWriteBytes < 0 || w.NetBytes < 0 {
			t.Fatalf("negative work: %+v", w)
		}
	}
}

func TestComposeDeliversToRecipient(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 2
	cfg.InitialMessages = 0
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, 0)
	r := stats.NewRNG(8)
	sess.Step(r) // login
	before := s.FolderLen(0, Inbox) + s.FolderLen(1, Inbox)
	sess.compose(r)
	after := s.FolderLen(0, Inbox) + s.FolderLen(1, Inbox)
	if after != before+1 {
		t.Errorf("compose did not deliver: %d -> %d", before, after)
	}
	if s.FolderLen(0, Sent) == 0 {
		t.Error("compose did not file a sent copy")
	}
}

func TestEngineSampleMeansMatchProfile(t *testing.T) {
	prof := workload.WebmailProfile()
	e, err := New(smallConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(11)
	var cpu, net stats.Summary
	for i := 0; i < 6000; i++ {
		req := e.Sample(r)
		cpu.Add(req.CPURefSec)
		net.Add(req.NetBytes)
	}
	if m := cpu.Mean(); math.Abs(m-prof.CPURefSec)/prof.CPURefSec > 0.2 {
		t.Errorf("CPU mean %g vs profile %g", m, prof.CPURefSec)
	}
	if m := net.Mean(); math.Abs(m-prof.NetBytes)/prof.NetBytes > 0.25 {
		t.Errorf("net mean %g vs profile %g", m, prof.NetBytes)
	}
}

func TestTracePagesWithinFootprint(t *testing.T) {
	e, err := New(smallConfig(), workload.WebmailProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(12)
	n := 0
	for i := 0; i < 500; i++ {
		e.TracePages(r, func(page int64, write bool) {
			if page < 0 || page >= e.totalPages {
				t.Fatalf("page %d outside footprint %d", page, e.totalPages)
			}
			n++
		})
	}
	if n == 0 {
		t.Fatal("no pages traced")
	}
}

func TestSearchAction(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, 7)
	r := stats.NewRNG(21)
	sess.Step(r) // login
	w := sess.search(r)
	if w.Action != Search {
		t.Fatalf("action = %v", w.Action)
	}
	if w.DiskReadBytes <= 0 || w.CPUUnits <= 5e3 {
		t.Errorf("search did no scanning: %+v", w)
	}
	// Search must be far more expensive than a folder listing.
	l := sess.list(r)
	if w.CPUUnits <= l.CPUUnits {
		t.Errorf("search (%g) not costlier than list (%g)", w.CPUUnits, l.CPUUnits)
	}
}

func TestMessagesCarryKeywords(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := s.boxes[0].Folders[Inbox][0]
	if len(m.Keywords) < 3 || len(m.Keywords) > 8 {
		t.Fatalf("keywords = %v", m.Keywords)
	}
	if !m.HasKeyword(m.Keywords[0]) {
		t.Error("HasKeyword missed an own keyword")
	}
	// A popular term should appear somewhere in the store.
	found := false
	for u := 0; u < s.Users() && !found; u++ {
		for _, msg := range s.boxes[u].Folders[Inbox] {
			if msg.HasKeyword(0) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("the most popular keyword appears nowhere — zipf broken?")
	}
}

// Property: sessions never corrupt folder bounds regardless of seed.
func TestQuickSessionInvariants(t *testing.T) {
	cfg := smallConfig()
	f := func(seed uint64) bool {
		s, err := NewStore(cfg)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		sess := NewSession(s, int(seed%uint64(cfg.Users)))
		for i := 0; i < 300; i++ {
			sess.Step(r)
		}
		for u := 0; u < s.Users(); u++ {
			for f := Folder(0); f < numFolders; f++ {
				if s.FolderLen(u, f) > cfg.MaxMessagesPerFolder {
					return false
				}
			}
		}
		return s.TotalBytes >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
