// Package webmail implements the interactive-internet-services benchmark
// of the suite (Table 1): a mailbox store and session state machine
// standing in for the paper's SquirrelMail/Apache/PHP front end with
// courier-imap and exim back ends.
//
// Message and attachment sizes follow right-skewed (log-normal)
// distributions and client behavior follows the MS Exchange LoadSim
// "heavy usage" style action mix the paper models: sessions log in,
// list folders, read messages and attachments, reply, forward, compose,
// delete and move messages, then log out.
package webmail

import (
	"fmt"

	"warehousesim/internal/stats"
)

// Folder identifies a mailbox folder.
type Folder int

// The standard folders of each account.
const (
	Inbox Folder = iota
	Sent
	Archive
	Trash
	numFolders
)

// String implements fmt.Stringer.
func (f Folder) String() string {
	return [...]string{"INBOX", "Sent", "Archive", "Trash"}[f]
}

// searchVocab is the keyword space messages draw from (and searches
// probe); Zipf-popular like real mail text.
const searchVocab = 5000

// Message is one stored e-mail.
type Message struct {
	ID        int64
	BodyBytes int
	// AttachmentBytes is zero for messages without attachments.
	AttachmentBytes int
	Read            bool
	// Keywords are the message's salient terms (used by the mailbox
	// search action; index-less search scans bodies, this is what it
	// finds).
	Keywords []uint16
}

// HasKeyword reports whether the message contains the term.
func (m Message) HasKeyword(k uint16) bool {
	for _, kw := range m.Keywords {
		if kw == k {
			return true
		}
	}
	return false
}

// Bytes returns the full message size.
func (m Message) Bytes() int { return m.BodyBytes + m.AttachmentBytes }

// Config sizes the synthetic mail store.
type Config struct {
	// Users is the number of provisioned accounts (the paper drives
	// 1000 virtual users with 7 GB of stored mail).
	Users int
	// InitialMessages is the starting INBOX depth per user.
	InitialMessages int
	// MaxMessagesPerFolder caps folder growth during long simulations.
	MaxMessagesPerFolder int
	// AttachmentProb is the probability a message carries an attachment.
	AttachmentProb float64
	// Seed drives store generation.
	Seed uint64
}

// DefaultConfig matches the paper's setup scaled for simulation speed.
func DefaultConfig() Config {
	return Config{
		Users:                1000,
		InitialMessages:      40,
		MaxMessagesPerFolder: 200,
		AttachmentProb:       0.25,
		Seed:                 1,
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("webmail: no users")
	case c.InitialMessages < 0 || c.MaxMessagesPerFolder <= 0:
		return fmt.Errorf("webmail: bad mailbox sizing %+v", c)
	case c.AttachmentProb < 0 || c.AttachmentProb > 1:
		return fmt.Errorf("webmail: attachment probability %g outside [0,1]", c.AttachmentProb)
	}
	return nil
}

// Size distributions: bodies are small and skewed, attachments larger
// (LoadSim heavy-profile flavor).
var (
	bodySize       = stats.Clamp{S: stats.LogNormalFromMeanP50(15e3, 6e3), Lo: 500, Hi: 1e6}
	attachmentSize = stats.Clamp{S: stats.LogNormalFromMeanP50(220e3, 90e3), Lo: 5e3, Hi: 8e6}
)

// Mailbox holds one user's folders.
type Mailbox struct {
	Folders [numFolders][]Message
}

// Store is the mail spool across all users.
type Store struct {
	cfg    Config
	boxes  []Mailbox
	nextID int64
	// TotalBytes tracks the spool size for footprint accounting.
	TotalBytes int64
	// keywords shapes per-message term popularity.
	keywords *stats.Zipf
}

// NewStore provisions all accounts with initial mail.
func NewStore(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kw, err := stats.NewZipf(searchVocab, 1.0)
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, boxes: make([]Mailbox, cfg.Users), keywords: kw}
	r := stats.NewRNG(cfg.Seed)
	for u := range s.boxes {
		for i := 0; i < cfg.InitialMessages; i++ {
			s.deliver(u, Inbox, s.newMessage(r))
		}
	}
	return s, nil
}

func (s *Store) newMessage(r *stats.RNG) Message {
	m := Message{ID: s.nextID, BodyBytes: int(bodySize.Sample(r))}
	s.nextID++
	if r.Bool(s.cfg.AttachmentProb) {
		m.AttachmentBytes = int(attachmentSize.Sample(r))
	}
	// 3-8 salient terms per message, Zipf-popular.
	n := 3 + r.Intn(6)
	m.Keywords = make([]uint16, n)
	for i := range m.Keywords {
		m.Keywords[i] = uint16(s.keywords.Rank(r))
	}
	return m
}

// deliver appends a message to a folder, evicting the oldest message if
// the folder is at capacity (bounding spool growth in long runs).
func (s *Store) deliver(user int, f Folder, m Message) {
	box := &s.boxes[user]
	if len(box.Folders[f]) >= s.cfg.MaxMessagesPerFolder {
		s.TotalBytes -= int64(box.Folders[f][0].Bytes())
		box.Folders[f] = box.Folders[f][1:]
	}
	box.Folders[f] = append(box.Folders[f], m)
	s.TotalBytes += int64(m.Bytes())
}

// remove deletes the message at index i of the folder and returns it.
func (s *Store) remove(user int, f Folder, i int) Message {
	box := &s.boxes[user]
	m := box.Folders[f][i]
	box.Folders[f] = append(box.Folders[f][:i], box.Folders[f][i+1:]...)
	s.TotalBytes -= int64(m.Bytes())
	return m
}

// Users returns the number of accounts.
func (s *Store) Users() int { return s.cfg.Users }

// FolderLen returns the message count of a user's folder.
func (s *Store) FolderLen(user int, f Folder) int {
	return len(s.boxes[user].Folders[f])
}

// pick returns a uniformly random message index in the folder, or -1 if
// the folder is empty.
func (s *Store) pick(r *stats.RNG, user int, f Folder) int {
	n := len(s.boxes[user].Folders[f])
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}
