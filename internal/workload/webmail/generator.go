package webmail

import (
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Engine drives real sessions against the store and maps each action's
// measured work onto the calibrated demand profile.
type Engine struct {
	store    *Store
	profile  workload.Profile
	sessions []*Session

	meanCPU, meanOps, meanRead, meanWrite, meanNet float64

	// Page-trace layout: the spool region followed by the PHP/runtime
	// working set.
	spoolPages   int64
	totalPages   int64
	userZipf     *stats.Zipf
	sessionIndex int

	// pending holds the remaining paginated sub-requests of a large
	// action (attachment downloads and searches arrive in chunks).
	pending []workload.Request
}

const pageSize = 4096

// calibrationSteps estimates mean per-action work at construction.
const calibrationSteps = 4000

// New provisions the store and calibrates demand normalization.
func New(cfg Config, profile workload.Profile) (*Engine, error) {
	store, err := NewStore(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{store: store, profile: profile}
	// One concurrently active session per ~10 users is plenty of
	// behavioral diversity for demand sampling.
	n := cfg.Users / 10
	if n < 4 {
		n = 4
	}
	r := stats.NewRNG(cfg.Seed ^ 0xabcd)
	for i := 0; i < n; i++ {
		e.sessions = append(e.sessions, NewSession(store, r.Intn(cfg.Users)))
	}
	// Zipf user popularity for the page traces: some mailboxes are much
	// hotter than others.
	uz, err := stats.NewZipf(cfg.Users, profile.MemLocalityZipfS)
	if err != nil {
		return nil, err
	}
	e.userZipf = uz

	// Footprint layout.
	spoolBytes := store.TotalBytes
	e.spoolPages = spoolBytes / pageSize
	if e.spoolPages < 1 {
		e.spoolPages = 1
	}
	e.totalPages = int64(profile.MemFootprintMB * 1e6 / pageSize)
	if e.totalPages <= e.spoolPages {
		e.totalPages = e.spoolPages + 1
	}

	// Warm the store into steady state (folders fill toward their caps
	// and the background-delivery balance establishes) before measuring
	// the per-action means.
	for i := 0; i < calibrationSteps; i++ {
		e.sessions[i%len(e.sessions)].Step(r)
	}
	// Calibrate means.
	var cpu, ops, rd, wr, net float64
	for i := 0; i < calibrationSteps; i++ {
		w := e.sessions[i%len(e.sessions)].Step(r)
		cpu += w.CPUUnits
		ops += w.DiskOps
		rd += w.DiskReadBytes
		wr += w.DiskWriteBytes
		net += w.NetBytes
	}
	k := float64(calibrationSteps)
	e.meanCPU, e.meanOps, e.meanRead, e.meanWrite, e.meanNet =
		cpu/k, ops/k, rd/k, wr/k, net/k
	return e, nil
}

// Profile implements workload.Generator.
func (e *Engine) Profile() workload.Profile { return e.profile }

// Store exposes the underlying spool (examples and tests).
func (e *Engine) Store() *Store { return e.store }

// Sample implements workload.Generator: advance one session by one
// action and scale its work onto the calibrated means. Actions whose
// demand exceeds maxDemandRatio times the mean are paginated into
// bounded sub-requests served back-to-back (the front end streams
// attachments and renders search results page by page), so no single
// HTTP request carries a whole-mailbox scan.
func (e *Engine) Sample(r *stats.RNG) workload.Request {
	if len(e.pending) > 0 {
		req := e.pending[0]
		e.pending = e.pending[1:]
		return req
	}
	s := e.sessions[e.sessionIndex%len(e.sessions)]
	e.sessionIndex++
	w := s.Step(r)
	p := e.profile
	full := workload.Request{
		CPURefSec:      p.CPURefSec * rawRatio(w.CPUUnits, e.meanCPU),
		DiskOps:        p.DiskOps * rawRatio(w.DiskOps, e.meanOps),
		DiskReadBytes:  p.DiskReadBytes * rawRatio(w.DiskReadBytes, e.meanRead),
		DiskWriteBytes: p.DiskWriteBytes * rawRatio(w.DiskWriteBytes, e.meanWrite),
		NetBytes:       p.NetBytes * rawRatio(w.NetBytes, e.meanNet),
	}
	parts := int(rawRatio(w.CPUUnits, e.meanCPU)/maxDemandRatio) + 1
	if parts <= 1 {
		return full
	}
	chunk := workload.Request{
		CPURefSec:      full.CPURefSec / float64(parts),
		DiskOps:        full.DiskOps / float64(parts),
		DiskReadBytes:  full.DiskReadBytes / float64(parts),
		DiskWriteBytes: full.DiskWriteBytes / float64(parts),
		NetBytes:       full.NetBytes / float64(parts),
	}
	for i := 1; i < parts; i++ {
		e.pending = append(e.pending, chunk)
	}
	return chunk
}

// TracePages implements trace.PageTracer: a session action touches its
// user's spool region (Zipf-popular users) plus the PHP runtime pages.
func (e *Engine) TracePages(r *stats.RNG, emit func(page int64, write bool)) {
	user := e.userZipf.Rank(r)
	// Each user's slice of the spool region.
	perUser := e.spoolPages / int64(e.store.Users())
	if perUser < 1 {
		perUser = 1
	}
	base := (int64(user) * perUser) % e.spoolPages
	// A message read touches a handful of spool pages.
	n := 1 + r.Intn(8)
	for i := 0; i < n; i++ {
		emit(base+r.Int63n(perUser*2)%e.spoolPages, false)
	}
	// Runtime/heap pages, mildly hot.
	runtimePages := e.totalPages - e.spoolPages
	for i := 0; i < 4; i++ {
		// Square the uniform to bias toward the front (hot runtime pages).
		u := r.Float64()
		emit(e.spoolPages+int64(u*u*float64(runtimePages)), i%2 == 1)
	}
}

// maxDemandRatio bounds how far one sub-request's demand may exceed the
// mean before the engine paginates the action (see Sample).
const maxDemandRatio = 6

func rawRatio(x, mean float64) float64 {
	if mean <= 0 {
		return 1
	}
	return x / mean
}
