package websearch

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func smallConfig() Config {
	return Config{
		NumDocs: 500, VocabSize: 800, MeanDocLen: 60,
		CorpusZipfS: 1.0, QueryZipfS: 0.9, CachedTermFraction: 0.25, Seed: 7,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.NumDocs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero docs accepted")
	}
	bad = DefaultConfig()
	bad.CachedTermFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("cached fraction > 1 accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0; tm < a.Vocab(); tm++ {
		if a.PostingLen(tm) != b.PostingLen(tm) {
			t.Fatalf("term %d posting lengths differ", tm)
		}
	}
}

func TestIndexStatistics(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Zipf corpus: popular terms should have much longer posting lists.
	if ix.PostingLen(0) <= ix.PostingLen(ix.Vocab()-1) {
		t.Errorf("term 0 postings (%d) not longer than rarest (%d)",
			ix.PostingLen(0), ix.PostingLen(ix.Vocab()-1))
	}
	// Every posting list length is bounded by the corpus size.
	for tm := 0; tm < ix.Vocab(); tm++ {
		if ix.PostingLen(tm) > ix.Docs() {
			t.Fatalf("term %d has %d postings > %d docs", tm, ix.PostingLen(tm), ix.Docs())
		}
	}
	// Cached terms are the popular prefix.
	if !ix.Cached(0) {
		t.Error("hottest term not cached")
	}
	if ix.Cached(ix.Vocab() - 1) {
		t.Error("rarest term cached")
	}
}

func TestSearchReturnsRankedResults(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(3)
	for i := 0; i < 50; i++ {
		q := ix.NewQuery(r)
		hits, st := ix.Search(q, 10)
		if len(hits) > 10 {
			t.Fatalf("more than k hits: %d", len(hits))
		}
		for j := 1; j < len(hits); j++ {
			if hits[j].Score > hits[j-1].Score {
				t.Fatalf("hits not score-ordered: %v", hits)
			}
		}
		if st.PostingsScored == 0 && len(hits) > 0 {
			t.Fatal("hits without scored postings")
		}
		if st.ColdTerms > len(q.Terms) {
			t.Fatalf("cold terms %d > query terms %d", st.ColdTerms, len(q.Terms))
		}
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits, st := ix.Search(Query{}, 10)
	if hits != nil || st.PostingsScored != 0 {
		t.Error("empty query produced work")
	}
	if hits, _ := ix.Search(Query{Terms: []int{0}}, 0); hits != nil {
		t.Error("k=0 returned hits")
	}
}

func TestSearchOutOfRangeTermIgnored(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, st := ix.Search(Query{Terms: []int{-1, ix.Vocab() + 5}}, 10)
	if st.PostingsScored != 0 {
		t.Error("out-of-range terms scored postings")
	}
}

func TestTopKIsActuallyTopK(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []int{0, 1}}
	top3, _ := ix.Search(q, 3)
	all, _ := ix.Search(q, ix.Docs())
	if len(top3) != 3 {
		t.Fatalf("expected 3 hits, got %d", len(top3))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(top3[i].Score-all[i].Score) > 1e-12 {
			t.Fatalf("top-3 disagrees with full ranking at %d", i)
		}
	}
}

func TestQueryKeywordCounts(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(5)
	counts := map[int]int{}
	for i := 0; i < 5000; i++ {
		q := ix.NewQuery(r)
		counts[len(q.Terms)]++
		seen := map[int]bool{}
		for _, tm := range q.Terms {
			if seen[tm] {
				t.Fatal("duplicate keyword in query")
			}
			seen[tm] = true
		}
	}
	for n := 1; n <= 4; n++ {
		if counts[n] == 0 {
			t.Errorf("no queries with %d keywords", n)
		}
	}
	if counts[0] > 0 || counts[5] > 0 {
		t.Errorf("keyword counts out of range: %v", counts)
	}
}

func TestEngineSampleMeansMatchProfile(t *testing.T) {
	prof := workload.WebsearchProfile()
	e, err := New(smallConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(11)
	var cpu, diskB, net stats.Summary
	for i := 0; i < 4000; i++ {
		req := e.Sample(r)
		cpu.Add(req.CPURefSec)
		diskB.Add(req.DiskReadBytes)
		net.Add(req.NetBytes)
		if req.CPURefSec < 0 || req.DiskReadBytes < 0 {
			t.Fatal("negative demand")
		}
	}
	if m := cpu.Mean(); math.Abs(m-prof.CPURefSec)/prof.CPURefSec > 0.15 {
		t.Errorf("CPU mean %g vs profile %g", m, prof.CPURefSec)
	}
	if m := diskB.Mean(); math.Abs(m-prof.DiskReadBytes)/prof.DiskReadBytes > 0.25 {
		t.Errorf("disk bytes mean %g vs profile %g", m, prof.DiskReadBytes)
	}
	if m := net.Mean(); math.Abs(m-prof.NetBytes)/prof.NetBytes > 0.25 {
		t.Errorf("net mean %g vs profile %g", m, prof.NetBytes)
	}
}

func TestTracePagesWithinFootprint(t *testing.T) {
	e, err := New(smallConfig(), workload.WebsearchProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(13)
	reads, writes := 0, 0
	for i := 0; i < 200; i++ {
		e.TracePages(r, func(page int64, write bool) {
			if page < 0 || page >= e.totalPages {
				t.Fatalf("page %d outside footprint %d", page, e.totalPages)
			}
			if write {
				writes++
			} else {
				reads++
			}
		})
	}
	if reads == 0 || writes == 0 {
		t.Errorf("trace lacks reads (%d) or writes (%d)", reads, writes)
	}
}

func TestTraceLocality(t *testing.T) {
	// Zipf query popularity must concentrate accesses on hot pages.
	e, err := New(smallConfig(), workload.WebsearchProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(17)
	counts := map[int64]int{}
	total := 0
	for i := 0; i < 2000; i++ {
		e.TracePages(r, func(page int64, write bool) {
			if !write {
				counts[page]++
				total++
			}
		})
	}
	distinct := len(counts)
	if distinct == 0 {
		t.Fatal("no read accesses traced")
	}
	// Top 10% of pages should carry well over 10% of accesses.
	freqs := make([]int, 0, distinct)
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// simple selection: count accesses above-median frequency
	hot := 0
	for _, c := range freqs {
		if c >= 10 {
			hot += c
		}
	}
	if float64(hot)/float64(total) < 0.2 {
		t.Errorf("trace shows no locality: hot fraction %.2f", float64(hot)/float64(total))
	}
}

// Property: search work statistics are internally consistent for random
// queries.
func TestQuickSearchStatsConsistent(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		q := ix.NewQuery(r)
		hits, st := ix.Search(q, 5)
		if st.ColdBytes < 0 || st.PostingsScored < 0 {
			return false
		}
		if st.ColdTerms == 0 && st.ColdBytes != 0 {
			return false
		}
		return len(hits) <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
