package websearch

import (
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func TestCompressRoundTrip(t *testing.T) {
	pl := []Posting{{Doc: 0, TF: 1}, {Doc: 5, TF: 3}, {Doc: 6, TF: 1}, {Doc: 1000, TF: 12}}
	data := CompressPostings(pl)
	got, err := DecompressPostings(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pl) {
		t.Fatalf("length %d != %d", len(got), len(pl))
	}
	for i := range pl {
		if got[i] != pl[i] {
			t.Fatalf("posting %d: %+v != %+v", i, got[i], pl[i])
		}
	}
}

func TestCompressEmpty(t *testing.T) {
	if data := CompressPostings(nil); len(data) != 0 {
		t.Errorf("empty list compressed to %d bytes", len(data))
	}
	got, err := DecompressPostings(nil)
	if err != nil || got != nil {
		t.Errorf("empty decompress = %v, %v", got, err)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	// A lone continuation byte is an invalid varint.
	if _, err := DecompressPostings([]byte{0x80}); err == nil {
		t.Error("corrupt delta accepted")
	}
	// Valid delta then truncated tf.
	if _, err := DecompressPostings([]byte{0x01, 0x80}); err == nil {
		t.Error("corrupt tf accepted")
	}
}

func TestIndexCompressionRatio(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio := ix.CompressionRatio()
	// Delta+varint on dense doc-ordered lists beats the 6-byte raw form.
	if ratio < 1.5 {
		t.Errorf("compression ratio %.2f too low", ratio)
	}
	if ix.CompressedIndexBytes() <= 0 {
		t.Error("no compressed bytes")
	}
	// Per-term sizes are bounded by the raw size.
	for tm := 0; tm < ix.Vocab(); tm++ {
		if ix.CompressedPostingBytes(tm) > ix.PostingBytes(tm) {
			t.Fatalf("term %d compressed larger than raw", tm)
		}
	}
	if ix.CompressedPostingBytes(-1) != 0 || ix.CompressedPostingBytes(ix.Vocab()+1) != 0 {
		t.Error("out-of-range term sizes not zero")
	}
}

func TestCompressedListsDecodeToOriginals(t *testing.T) {
	ix, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0; tm < ix.Vocab(); tm += 37 {
		got, err := DecompressPostings(ix.compressed[tm])
		if err != nil {
			t.Fatalf("term %d: %v", tm, err)
		}
		if len(got) != len(ix.postings[tm]) {
			t.Fatalf("term %d: %d postings != %d", tm, len(got), len(ix.postings[tm]))
		}
		for i := range got {
			if got[i] != ix.postings[tm][i] {
				t.Fatalf("term %d posting %d mismatch", tm, i)
			}
		}
	}
}

func TestQueryCacheBasics(t *testing.T) {
	c := NewQueryCache(2)
	q1 := Query{Terms: []int{3, 1}}
	q2 := Query{Terms: []int{1, 3}} // same set, different order
	if _, ok := c.Get(q1); ok {
		t.Fatal("cold hit")
	}
	c.Put(q1, []ScoredDoc{{Doc: 7, Score: 1}})
	if hits, ok := c.Get(q2); !ok || len(hits) != 1 || hits[0].Doc != 7 {
		t.Fatal("normalized key lookup failed")
	}
	// Fill beyond capacity: q1 becomes LRU after inserting two more.
	c.Put(Query{Terms: []int{9}}, nil)
	c.Put(Query{Terms: []int{8}}, nil)
	if _, ok := c.Get(q1); ok {
		t.Error("LRU entry survived eviction")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Errorf("hit rate = %g", c.HitRate())
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	c := NewQueryCache(0)
	c.Put(Query{Terms: []int{1}}, nil)
	if _, ok := c.Get(Query{Terms: []int{1}}); ok {
		t.Error("disabled cache hit")
	}
}

func TestEngineWithQueryCache(t *testing.T) {
	e, err := New(smallConfig(), workload.WebsearchProfile())
	if err != nil {
		t.Fatal(err)
	}
	e.SetQueryCache(NewQueryCache(4096))
	r := stats.NewRNG(19)
	var withCache stats.Summary
	for i := 0; i < 20000; i++ {
		withCache.Add(e.Sample(r).CPURefSec)
	}
	hr := e.QueryCacheHitRate()
	if hr < 0.2 {
		t.Errorf("zipf queries should hit a 4k cache often, got %.2f", hr)
	}
	// Mean CPU per request must drop well below the uncached profile.
	if withCache.Mean() > workload.WebsearchProfile().CPURefSec*0.95 {
		t.Errorf("cache did not reduce mean CPU: %g", withCache.Mean())
	}
}

// Property: compression round-trips arbitrary doc-ordered lists.
func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(200)
		pl := make([]Posting, 0, n)
		doc := int32(0)
		for i := 0; i < n; i++ {
			doc += int32(1 + r.Intn(1000))
			pl = append(pl, Posting{Doc: doc, TF: uint16(1 + r.Intn(500))})
		}
		got, err := DecompressPostings(CompressPostings(pl))
		if err != nil || len(got) != len(pl) {
			return false
		}
		for i := range pl {
			if got[i] != pl[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
