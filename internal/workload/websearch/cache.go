package websearch

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
)

// QueryCache is an LRU result cache keyed by the normalized keyword set
// — the front-end cache every production search service runs. Zipf query
// popularity makes even small caches very effective, which shifts the
// served workload toward the (more expensive) miss tail.
type QueryCache struct {
	capacity int
	order    *list.List
	index    map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  string
	hits []ScoredDoc
}

// NewQueryCache builds a cache holding up to capacity result sets.
// capacity <= 0 disables caching (every lookup misses).
func NewQueryCache(capacity int) *QueryCache {
	return &QueryCache{
		capacity: capacity,
		order:    list.New(),
		index:    map[string]*list.Element{},
	}
}

// key normalizes a query: sorted unique term ids.
func (c *QueryCache) key(q Query) string {
	terms := append([]int(nil), q.Terms...)
	sort.Ints(terms)
	var b strings.Builder
	for i, t := range terms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(t))
	}
	return b.String()
}

// Get returns the cached results for q, if present.
func (c *QueryCache) Get(q Query) ([]ScoredDoc, bool) {
	if c.capacity <= 0 {
		c.misses++
		return nil, false
	}
	el, ok := c.index[c.key(q)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).hits, true
}

// Put stores results for q, evicting the least recently used entry.
func (c *QueryCache) Put(q Query, hits []ScoredDoc) {
	if c.capacity <= 0 {
		return
	}
	k := c.key(q)
	if el, ok := c.index[k]; ok {
		el.Value.(*cacheEntry).hits = hits
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		delete(c.index, back.Value.(*cacheEntry).key)
		c.order.Remove(back)
	}
	c.index[k] = c.order.PushFront(&cacheEntry{key: k, hits: hits})
}

// HitRate returns hits/(hits+misses).
func (c *QueryCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Len returns the number of cached result sets.
func (c *QueryCache) Len() int { return c.order.Len() }
