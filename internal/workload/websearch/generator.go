package websearch

import (
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Engine executes real queries against the index and maps the work each
// query performed onto the calibrated demand profile: a query that
// scores twice the average number of postings costs twice the average
// CPU time, and disk demand follows the actual cold posting bytes.
type Engine struct {
	ix      *Index
	profile workload.Profile

	// Means estimated at construction, used to normalize per-query work
	// onto the profile's calibrated mean demands.
	meanPostings  float64
	meanColdOps   float64
	meanColdBytes float64
	meanRespBytes float64

	// Virtual memory layout for page traces: posting lists laid out
	// contiguously, followed by the JVM heap region.
	termPageStart []int64
	heapStartPage int64
	totalPages    int64

	// cache, when non-nil, is the front-end result cache; hits skip
	// scoring and disk entirely (see SetQueryCache).
	cache *QueryCache

	// popular is the head of the query log: real traffic repeats popular
	// queries verbatim (the very behavior that makes result caches pay),
	// so a fraction of requests re-issue one of these.
	popular []Query
	popZipf *stats.Zipf
}

// repeatProb is the fraction of requests that re-issue a head query.
const repeatProb = 0.4

// popularPoolSize is the size of the head-query pool.
const popularPoolSize = 2000

// pageSize is the OS page size used throughout the memory experiments.
const pageSize = 4096

// calibrationQueries is the sample size for estimating mean per-query
// work at engine construction.
const calibrationQueries = 2000

// New builds the index and calibrates the engine's demand normalization.
func New(cfg Config, profile workload.Profile) (*Engine, error) {
	ix, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{ix: ix, profile: profile}

	// Lay posting lists out in pages for the memory-trace view.
	e.termPageStart = make([]int64, cfg.VocabSize+1)
	var page int64
	for t := 0; t < cfg.VocabSize; t++ {
		e.termPageStart[t] = page
		page += int64(ix.PostingBytes(t)+pageSize-1) / pageSize
	}
	e.termPageStart[cfg.VocabSize] = page
	e.heapStartPage = page
	footprintPages := int64(profile.MemFootprintMB * 1e6 / pageSize)
	if footprintPages <= page {
		footprintPages = page + 1
	}
	e.totalPages = footprintPages

	// Head-query pool for verbatim repeats.
	r := stats.NewRNG(cfg.Seed ^ 0x5eed)
	e.popular = make([]Query, popularPoolSize)
	for i := range e.popular {
		e.popular[i] = ix.NewQuery(r)
	}
	pz, err := stats.NewZipf(popularPoolSize, 1.0)
	if err != nil {
		return nil, err
	}
	e.popZipf = pz

	// Estimate mean work per query (over the same mix Sample serves).
	var postings, coldOps, coldBytes, resp float64
	for i := 0; i < calibrationQueries; i++ {
		_, st := ix.Search(e.nextQuery(r), 10)
		postings += float64(st.PostingsScored)
		coldOps += float64(st.ColdTerms)
		coldBytes += float64(st.ColdBytes)
		resp += float64(st.ResponseBytes)
	}
	n := float64(calibrationQueries)
	e.meanPostings = postings / n
	e.meanColdOps = coldOps / n
	e.meanColdBytes = coldBytes / n
	e.meanRespBytes = resp / n
	return e, nil
}

// Profile implements workload.Generator.
func (e *Engine) Profile() workload.Profile { return e.profile }

// Index exposes the underlying index (examples and tests).
func (e *Engine) Index() *Index { return e.ix }

// SetQueryCache installs a front-end result cache (nil disables). With a
// cache, popular repeated queries cost almost nothing and the served mix
// shifts toward the expensive miss tail — the ablation benches study the
// effect on sustained throughput.
func (e *Engine) SetQueryCache(c *QueryCache) { e.cache = c }

// QueryCacheHitRate reports the installed cache's hit rate (0 without a
// cache).
func (e *Engine) QueryCacheHitRate() float64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.HitRate()
}

// cacheHitCPUFraction is the cost of a cache hit relative to the mean
// query (hash lookup plus response assembly).
const cacheHitCPUFraction = 0.03

// nextQuery draws the served query mix: verbatim head-query repeats
// with probability repeatProb, fresh tail queries otherwise.
func (e *Engine) nextQuery(r *stats.RNG) Query {
	if r.Bool(repeatProb) {
		return e.popular[e.popZipf.Rank(r)]
	}
	return e.ix.NewQuery(r)
}

// Sample implements workload.Generator: it runs one actual query and
// scales its measured work onto the calibrated demand means. With a
// query cache installed, hits serve straight from memory.
func (e *Engine) Sample(r *stats.RNG) workload.Request {
	q := e.nextQuery(r)
	p := e.profile
	if e.cache != nil {
		if _, ok := e.cache.Get(q); ok {
			return workload.Request{
				CPURefSec: p.CPURefSec * cacheHitCPUFraction,
				NetBytes:  p.NetBytes,
			}
		}
	}
	hits, st := e.ix.Search(q, 10)
	if e.cache != nil {
		e.cache.Put(q, hits)
	}
	return workload.Request{
		CPURefSec:     p.CPURefSec * ratio(float64(st.PostingsScored), e.meanPostings),
		DiskOps:       p.DiskOps * ratio(float64(st.ColdTerms), e.meanColdOps),
		DiskReadBytes: p.DiskReadBytes * ratio(float64(st.ColdBytes), e.meanColdBytes),
		NetBytes:      p.NetBytes * ratio(float64(st.ResponseBytes), e.meanRespBytes),
	}
}

// TracePages implements trace.PageTracer: one query's page accesses are
// the pages of every posting list it scored (sequential within a list)
// plus scattered JVM-heap accesses for accumulators and result heaps.
func (e *Engine) TracePages(r *stats.RNG, emit func(page int64, write bool)) {
	q := e.nextQuery(r)
	touched := 0
	for _, t := range q.Terms {
		start, end := e.termPageStart[t], e.termPageStart[t+1]
		if end == start {
			end = start + 1
		}
		for p := start; p < end; p++ {
			emit(p, false)
			touched++
		}
	}
	// Heap traffic: roughly one accumulator page write per few posting
	// pages read. Allocator and accumulator structures are strongly
	// skewed toward a hot front of the heap (cubed uniform bias).
	heapPages := e.totalPages - e.heapStartPage
	for i := 0; i < touched/4+2; i++ {
		u := r.Float64()
		emit(e.heapStartPage+int64(u*u*u*float64(heapPages)), true)
	}
}

func ratio(x, mean float64) float64 {
	if mean <= 0 {
		return 1
	}
	return x / mean
}
