package websearch

import (
	"encoding/binary"
	"fmt"
)

// Compressed posting-list storage: document ids are delta-encoded and
// varint-packed, term frequencies varint-packed — the standard inverted
// index layout. The engine uses it to size the on-disk index realistically
// (cold-term reads fetch compressed bytes) and the decode cost feeds the
// CPU demand model.

// CompressPostings encodes a doc-ordered posting list.
func CompressPostings(pl []Posting) []byte {
	buf := make([]byte, 0, len(pl)*3)
	var tmp [binary.MaxVarintLen64]byte
	prev := int32(0)
	for _, p := range pl {
		n := binary.PutUvarint(tmp[:], uint64(p.Doc-prev))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(p.TF))
		buf = append(buf, tmp[:n]...)
		prev = p.Doc
	}
	return buf
}

// DecompressPostings decodes a list produced by CompressPostings.
func DecompressPostings(data []byte) ([]Posting, error) {
	var out []Posting
	prev := int32(0)
	for len(data) > 0 {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("websearch: corrupt posting delta")
		}
		data = data[n:]
		tf, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("websearch: corrupt posting tf")
		}
		data = data[n:]
		doc := prev + int32(delta)
		out = append(out, Posting{Doc: doc, TF: uint16(tf)})
		prev = doc
	}
	return out, nil
}

// CompressedIndexBytes returns the total compressed index size — what
// the cold-term disk reads actually move.
func (ix *Index) CompressedIndexBytes() int {
	total := 0
	for t := range ix.postings {
		total += len(ix.compressed[t])
	}
	return total
}

// CompressedPostingBytes returns term t's compressed posting-list size.
func (ix *Index) CompressedPostingBytes(t int) int {
	if t < 0 || t >= len(ix.compressed) {
		return 0
	}
	return len(ix.compressed[t])
}

// CompressionRatio returns raw/compressed bytes for the whole index.
func (ix *Index) CompressionRatio() float64 {
	raw := 0
	for t := range ix.postings {
		raw += 6 * len(ix.postings[t])
	}
	comp := ix.CompressedIndexBytes()
	if comp == 0 {
		return 1
	}
	return float64(raw) / float64(comp)
}
