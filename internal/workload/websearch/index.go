// Package websearch implements the unstructured-data benchmark of the
// suite (Table 1): an in-memory inverted-index search engine standing in
// for the paper's Nutch/Tomcat/Apache stack.
//
// A synthetic corpus is generated with Zipf-distributed term frequencies
// and indexed into posting lists. Queries draw keywords from a Zipf
// distribution over the vocabulary (after Xie & O'Hallaron, as in the
// paper) with real-world keyword-count patterns, and are executed with
// BM25 scoring over the posting lists. As in the paper's setup, only a
// fraction of index terms (25% by default) is cached in memory; queries
// touching cold terms incur disk reads for their posting lists.
package websearch

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"warehousesim/internal/stats"
)

// Posting is one (document, term-frequency) entry of a posting list.
type Posting struct {
	Doc int32
	TF  uint16
}

// Config sizes the synthetic corpus and index.
type Config struct {
	// NumDocs is the corpus size (the paper indexes 1.3M documents; the
	// default engine scales this down for simulation speed, as the paper
	// itself did for its COTSon runs).
	NumDocs int
	// VocabSize is the number of distinct terms.
	VocabSize int
	// MeanDocLen is the mean document length in tokens.
	MeanDocLen int
	// CorpusZipfS shapes term frequency in documents.
	CorpusZipfS float64
	// QueryZipfS shapes keyword popularity in queries.
	QueryZipfS float64
	// CachedTermFraction is the fraction of index terms whose posting
	// lists are memory-resident ("25% of index terms cached in memory",
	// Table 1).
	CachedTermFraction float64
	// Seed drives corpus generation.
	Seed uint64
}

// DefaultConfig returns a corpus sized for fast simulation while keeping
// realistic index statistics.
func DefaultConfig() Config {
	return Config{
		NumDocs:            20000,
		VocabSize:          20000,
		MeanDocLen:         200,
		CorpusZipfS:        1.0,
		QueryZipfS:         0.9,
		CachedTermFraction: 0.25,
		Seed:               1,
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.NumDocs <= 0 || c.VocabSize <= 0 || c.MeanDocLen <= 0:
		return fmt.Errorf("websearch: non-positive corpus dimensions %+v", c)
	case c.CorpusZipfS <= 0 || c.QueryZipfS <= 0:
		return fmt.Errorf("websearch: non-positive zipf shapes")
	case c.CachedTermFraction < 0 || c.CachedTermFraction > 1:
		return fmt.Errorf("websearch: cached fraction %g outside [0,1]", c.CachedTermFraction)
	}
	return nil
}

// Index is an immutable in-memory inverted index over the synthetic
// corpus.
type Index struct {
	cfg      Config
	postings [][]Posting
	// compressed[t] is term t's delta/varint-encoded posting list — the
	// on-disk representation cold reads actually move.
	compressed [][]byte
	docLen     []int32
	avgDL      float64
	// cached[t] reports whether term t's posting list is memory-resident.
	cached []bool
	// queryZipf drives keyword selection.
	queryZipf *stats.Zipf
	// kwCount draws the number of keywords per query.
	kwCount *stats.Empirical
}

// Build generates the corpus and indexes it. Deterministic for a given
// Config (including Seed).
func Build(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	corpusZipf, err := stats.NewZipf(cfg.VocabSize, cfg.CorpusZipfS)
	if err != nil {
		return nil, err
	}
	queryZipf, err := stats.NewZipf(cfg.VocabSize, cfg.QueryZipfS)
	if err != nil {
		return nil, err
	}
	// Keyword-count mix follows observed real-world query patterns
	// (1-4 keywords dominate; cf. the paper's citation of [40]).
	kwCount, err := stats.NewEmpirical(
		[]float64{1, 2, 3, 4},
		[]float64{0.30, 0.38, 0.22, 0.10},
	)
	if err != nil {
		return nil, err
	}

	ix := &Index{
		cfg:       cfg,
		postings:  make([][]Posting, cfg.VocabSize),
		docLen:    make([]int32, cfg.NumDocs),
		cached:    make([]bool, cfg.VocabSize),
		queryZipf: queryZipf,
		kwCount:   kwCount,
	}

	// Generate documents and accumulate term frequencies.
	tf := map[int32]uint16{}
	totalLen := 0.0
	for d := 0; d < cfg.NumDocs; d++ {
		length := 1 + int(float64(cfg.MeanDocLen)*rng.ExpFloat64())
		if length > 8*cfg.MeanDocLen {
			length = 8 * cfg.MeanDocLen
		}
		ix.docLen[d] = int32(length)
		totalLen += float64(length)
		for k := range tf {
			delete(tf, k)
		}
		for i := 0; i < length; i++ {
			t := int32(corpusZipf.Rank(rng))
			if tf[t] < math.MaxUint16 {
				tf[t]++
			}
		}
		for t, f := range tf {
			ix.postings[t] = append(ix.postings[t], Posting{Doc: int32(d), TF: f})
		}
	}
	ix.avgDL = totalLen / float64(cfg.NumDocs)

	// Posting lists must be doc-ordered for merging; map iteration above
	// appends docs in increasing d already, so they are sorted. Verify
	// cheaply in long lists' interest.
	for _, pl := range ix.postings {
		if !sort.SliceIsSorted(pl, func(i, j int) bool { return pl[i].Doc < pl[j].Doc }) {
			sort.Slice(pl, func(i, j int) bool { return pl[i].Doc < pl[j].Doc })
		}
	}

	// Compressed on-disk form of every posting list.
	ix.compressed = make([][]byte, cfg.VocabSize)
	for t, pl := range ix.postings {
		ix.compressed[t] = CompressPostings(pl)
	}

	// The hottest terms are cached (the paper caches 25% of index terms;
	// hot terms dominate query traffic under Zipf popularity).
	hot := int(cfg.CachedTermFraction * float64(cfg.VocabSize))
	for t := 0; t < hot; t++ {
		ix.cached[t] = true
	}
	return ix, nil
}

// Docs returns the corpus size.
func (ix *Index) Docs() int { return ix.cfg.NumDocs }

// Vocab returns the vocabulary size.
func (ix *Index) Vocab() int { return ix.cfg.VocabSize }

// PostingLen returns the posting-list length of term t.
func (ix *Index) PostingLen(t int) int { return len(ix.postings[t]) }

// Cached reports whether term t's posting list is memory-resident.
func (ix *Index) Cached(t int) bool { return ix.cached[t] }

// PostingBytes returns the on-disk size of term t's posting list
// (6 bytes per posting: doc id + tf, delta-encoded storage would be
// smaller but the constant factor is irrelevant to the model).
func (ix *Index) PostingBytes(t int) int { return 6 * len(ix.postings[t]) }

// Query is a keyword query.
type Query struct {
	Terms []int
}

// NewQuery draws a query: the keyword count from the empirical mix and
// each keyword from the query-popularity Zipf.
func (ix *Index) NewQuery(r *stats.RNG) Query {
	n := int(ix.kwCount.Sample(r))
	terms := make([]int, 0, n)
	for len(terms) < n {
		t := ix.queryZipf.Rank(r)
		// Avoid duplicate keywords within one query.
		dup := false
		for _, u := range terms {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			terms = append(terms, t)
		}
	}
	return Query{Terms: terms}
}

// ScoredDoc is one ranked search hit.
type ScoredDoc struct {
	Doc   int32
	Score float64
}

// SearchStats records the work a query performed — the quantities the
// workload generator maps to resource demands.
type SearchStats struct {
	// PostingsScored is the number of postings BM25-scored.
	PostingsScored int
	// ColdTerms is the number of query terms whose posting lists were
	// not memory-resident.
	ColdTerms int
	// ColdBytes is the posting-list bytes read from disk.
	ColdBytes int
	// ResponseBytes approximates the result-page size returned to the
	// client.
	ResponseBytes int
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

type hitHeap []ScoredDoc

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(ScoredDoc)) }
func (h *hitHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h hitHeap) worst() float64     { return h[0].Score }

// Search executes the query with term-at-a-time BM25 scoring and returns
// the top-k documents plus the work statistics.
func (ix *Index) Search(q Query, k int) ([]ScoredDoc, SearchStats) {
	var st SearchStats
	if len(q.Terms) == 0 || k <= 0 {
		return nil, st
	}
	n := float64(ix.cfg.NumDocs)
	acc := make(map[int32]float64, 256)
	for _, t := range q.Terms {
		if t < 0 || t >= len(ix.postings) {
			continue
		}
		pl := ix.postings[t]
		if len(pl) == 0 {
			continue
		}
		if !ix.cached[t] {
			st.ColdTerms++
			st.ColdBytes += ix.CompressedPostingBytes(t)
		}
		df := float64(len(pl))
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, p := range pl {
			tf := float64(p.TF)
			dl := float64(ix.docLen[p.Doc])
			score := idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/ix.avgDL))
			acc[p.Doc] += score
			st.PostingsScored++
		}
	}

	h := make(hitHeap, 0, k)
	for doc, score := range acc {
		if len(h) < k {
			heap.Push(&h, ScoredDoc{Doc: doc, Score: score})
		} else if score > h.worst() {
			heap.Pop(&h)
			heap.Push(&h, ScoredDoc{Doc: doc, Score: score})
		}
	}
	hits := make([]ScoredDoc, len(h))
	copy(hits, h)
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	// ~300 bytes of snippet+metadata per hit plus page chrome.
	st.ResponseBytes = 2048 + 300*len(hits)
	return hits, st
}
