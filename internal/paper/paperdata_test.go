package paper

import "testing"

// The published data is the calibration target and report backbone;
// these tests guard its internal consistency.

func TestMatricesComplete(t *testing.T) {
	blocks := map[string]map[string]map[string]float64{
		"Perf":       Figure2cPerf,
		"Perf/Inf-$": Figure2cPerfPerInf,
		"Perf/W":     Figure2cPerfPerW,
		"Perf/TCO-$": Figure2cPerfPerTCO,
	}
	for name, block := range blocks {
		for _, w := range Workloads {
			row, ok := block[w]
			if !ok {
				t.Errorf("%s: missing workload %s", name, w)
				continue
			}
			for _, s := range Systems {
				if s == "srvr1" && name != "Perf" {
					continue // ratios omit the baseline except in Perf
				}
				if _, ok := row[s]; !ok {
					t.Errorf("%s/%s: missing system %s", name, w, s)
				}
			}
		}
	}
}

func TestPerfBaselineIsUnity(t *testing.T) {
	for _, w := range Workloads {
		if Figure2cPerf[w]["srvr1"] != 1.0 {
			t.Errorf("%s: srvr1 baseline %g", w, Figure2cPerf[w]["srvr1"])
		}
	}
}

func TestPerfValuesDescendByTier(t *testing.T) {
	order := []string{"srvr1", "srvr2", "desk", "emb2"}
	for _, w := range Workloads {
		row := Figure2cPerf[w]
		for i := 0; i+1 < len(order); i++ {
			if row[order[i+1]] > row[order[i]] {
				t.Errorf("%s: %s (%g) above %s (%g)", w,
					order[i+1], row[order[i+1]], order[i], row[order[i]])
			}
		}
	}
}

func TestTable2Complete(t *testing.T) {
	for _, s := range Systems {
		if Table2Watt[s] <= 0 {
			t.Errorf("missing watt for %s", s)
		}
		if Table2InfUSD[s] <= 0 {
			t.Errorf("missing inf-$ for %s", s)
		}
	}
}

func TestFigure4bConsistent(t *testing.T) {
	for _, w := range Workloads {
		pcie := Figure4bSlowdown["pcie-x4"][w]
		cbf := Figure4bSlowdown["cbf"][w]
		if pcie <= 0 || cbf <= 0 {
			t.Errorf("%s: missing slowdown entries", w)
		}
		if cbf >= pcie {
			t.Errorf("%s: CBF (%g) not faster than PCIe (%g)", w, cbf, pcie)
		}
	}
	if Figure4bSlowdownBounds["pcie-25%"] != 0.05 {
		t.Error("pcie bound drifted from the §3.4 text")
	}
}

func TestHeadlineNumbers(t *testing.T) {
	// The abstract's 2X claim lives in Figure5PerfPerTCO's hmean row.
	hm := Figure5PerfPerTCO["hmean"]
	if hm["N2"] != 2.0 || hm["N1"] != 1.5 {
		t.Errorf("headline hmeans drifted: %+v", hm)
	}
	// ytube/mapreduce are the big winners, webmail the loser.
	if Figure5PerfPerTCO["ytube"]["N2"] < 4 {
		t.Error("ytube N2 reading too low")
	}
	if Figure5PerfPerTCO["webmail"]["N1"] >= 1 {
		t.Error("webmail should degrade on N1")
	}
}
