// Package paper records the published numbers from Lim et al., ISCA 2008
// ("Understanding and Designing New Server Architectures for Emerging
// Warehouse-Computing Environments").
//
// These values are used in exactly two places: as calibration targets for
// the workload demand profiles (cmd/whcalib fits profiles so the model's
// Figure 2(c) "Perf" rows land near the published ones) and as the
// paper-vs-measured columns of the experiment reports (EXPERIMENTS.md).
// They are never consulted by the models themselves at evaluation time.
package paper

// Workloads lists the benchmark names in the paper's order.
var Workloads = []string{"websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"}

// Systems lists the platform names of Table 2 in the paper's order.
var Systems = []string{"srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"}

// Figure2cPerf is the published relative performance matrix (fraction of
// srvr1), Figure 2(c) "Perf" block.
var Figure2cPerf = map[string]map[string]float64{
	"websearch": {"srvr1": 1.00, "srvr2": 0.68, "desk": 0.36, "mobl": 0.34, "emb1": 0.24, "emb2": 0.11},
	"webmail":   {"srvr1": 1.00, "srvr2": 0.48, "desk": 0.19, "mobl": 0.17, "emb1": 0.11, "emb2": 0.05},
	"ytube":     {"srvr1": 1.00, "srvr2": 0.97, "desk": 0.92, "mobl": 0.95, "emb1": 0.86, "emb2": 0.24},
	"mapred-wc": {"srvr1": 1.00, "srvr2": 0.93, "desk": 0.78, "mobl": 0.72, "emb1": 0.51, "emb2": 0.12},
	"mapred-wr": {"srvr1": 1.00, "srvr2": 0.72, "desk": 0.70, "mobl": 0.54, "emb1": 0.48, "emb2": 0.16},
}

// Figure2cPerfPerInf is the published Perf/Inf-$ block (fraction of srvr1).
var Figure2cPerfPerInf = map[string]map[string]float64{
	"websearch": {"srvr2": 1.33, "desk": 1.39, "mobl": 1.12, "emb1": 1.75, "emb2": 0.93},
	"webmail":   {"srvr2": 0.95, "desk": 0.72, "mobl": 0.55, "emb1": 0.83, "emb2": 0.44},
	"ytube":     {"srvr2": 1.88, "desk": 3.58, "mobl": 3.15, "emb1": 6.29, "emb2": 2.06},
	"mapred-wc": {"srvr2": 1.81, "desk": 3.02, "mobl": 2.41, "emb1": 3.76, "emb2": 1.01},
	"mapred-wr": {"srvr2": 1.41, "desk": 2.72, "mobl": 1.79, "emb1": 3.50, "emb2": 1.40},
}

// Figure2cPerfPerW is the published Perf/W block (fraction of srvr1).
var Figure2cPerfPerW = map[string]map[string]float64{
	"websearch": {"srvr2": 1.07, "desk": 0.90, "mobl": 1.47, "emb1": 1.57, "emb2": 1.03},
	"webmail":   {"srvr2": 0.76, "desk": 0.47, "mobl": 0.73, "emb1": 0.75, "emb2": 0.49},
	"ytube":     {"srvr2": 1.52, "desk": 2.33, "mobl": 4.13, "emb1": 5.66, "emb2": 2.29},
	"mapred-wc": {"srvr2": 1.46, "desk": 1.97, "mobl": 3.15, "emb1": 3.38, "emb2": 1.13},
	"mapred-wr": {"srvr2": 1.14, "desk": 1.77, "mobl": 2.35, "emb1": 3.15, "emb2": 1.57},
}

// Figure2cPerfPerTCO is the published Perf/TCO-$ block (fraction of srvr1).
var Figure2cPerfPerTCO = map[string]map[string]float64{
	"websearch": {"srvr2": 1.20, "desk": 1.13, "mobl": 1.24, "emb1": 1.67, "emb2": 0.97},
	"webmail":   {"srvr2": 0.86, "desk": 0.59, "mobl": 0.62, "emb1": 0.80, "emb2": 0.46},
	"ytube":     {"srvr2": 1.71, "desk": 2.91, "mobl": 3.51, "emb1": 6.00, "emb2": 2.15},
	"mapred-wc": {"srvr2": 1.64, "desk": 2.46, "mobl": 2.68, "emb1": 3.59, "emb2": 1.06},
	"mapred-wr": {"srvr2": 1.28, "desk": 2.21, "mobl": 2.00, "emb1": 3.34, "emb2": 1.47},
}

// Figure2cHMean holds the published harmonic-mean rows per metric.
var Figure2cHMean = map[string]map[string]float64{
	"Perf":       {"srvr2": 0.71, "desk": 0.42, "mobl": 0.38, "emb1": 0.27, "emb2": 0.10},
	"Perf/Inf-$": {"srvr2": 1.39, "desk": 1.62, "mobl": 1.25, "emb1": 2.01, "emb2": 0.91},
	"Perf/W":     {"srvr2": 1.12, "desk": 1.05, "mobl": 1.64, "emb1": 1.81, "emb2": 1.01},
	"Perf/TCO-$": {"srvr2": 1.26, "desk": 1.32, "mobl": 1.40, "emb1": 1.92, "emb2": 0.95},
}

// Table2Watt and Table2InfUSD are the platform summary columns of Table 2.
var (
	Table2Watt   = map[string]float64{"srvr1": 340, "srvr2": 215, "desk": 135, "mobl": 78, "emb1": 52, "emb2": 35}
	Table2InfUSD = map[string]float64{"srvr1": 3294, "srvr2": 1689, "desk": 849, "mobl": 989, "emb1": 499, "emb2": 379}
)

// Figure1 pins (per-server dollars; see internal/cost for the formulas).
var (
	Figure1PCUSD    = map[string]float64{"srvr1": 2464, "srvr2": 1561}
	Figure1TotalUSD = map[string]float64{"srvr1": 5758, "srvr2": 3249}
)

// Figure4bSlowdown is the memory-blade slowdown table (fractional
// slowdown at 25% local memory, random replacement), Figure 4(b).
var Figure4bSlowdown = map[string]map[string]float64{
	"pcie-x4": {"websearch": 0.047, "webmail": 0.002, "ytube": 0.014, "mapred-wc": 0.007, "mapred-wr": 0.007},
	"cbf":     {"websearch": 0.012, "webmail": 0.001, "ytube": 0.004, "mapred-wc": 0.002, "mapred-wr": 0.002},
}

// Figure4bSlowdownBounds from the running text (§3.4): "slowdowns of up
// to 5% for 25%, and 10% for 12.5% local-remote split", and CBF brings
// those to ~1% and ~2.5%.
var Figure4bSlowdownBounds = map[string]float64{
	"pcie-25%":   0.05,
	"pcie-12.5%": 0.10,
	"cbf-25%":    0.012,
	"cbf-12.5%":  0.025,
}

// Figure4c is the memory-provisioning efficiency table (relative to the
// no-sharing baseline), Figure 4(c).
var Figure4c = map[string]map[string]float64{
	"static":  {"Perf/Inf-$": 1.02, "Perf/W": 1.16, "Perf/TCO-$": 1.08},
	"dynamic": {"Perf/Inf-$": 1.06, "Perf/W": 1.16, "Perf/TCO-$": 1.11},
}

// Table3b is the disk/flash efficiency table (relative to the local
// desktop-disk baseline on emb1), Table 3(b).
var Table3b = map[string]map[string]float64{
	"remote-laptop":        {"Perf/Inf-$": 0.93, "Perf/W": 1.00, "Perf/TCO-$": 0.96},
	"remote-laptop+flash":  {"Perf/Inf-$": 0.99, "Perf/W": 1.09, "Perf/TCO-$": 1.04},
	"remote-laptop2+flash": {"Perf/Inf-$": 1.10, "Perf/W": 1.09, "Perf/TCO-$": 1.10},
}

// Figure5PerfPerTCO holds approximate readings of Figure 5's
// Perf/TCO-$ bars (relative to srvr1). The paper prints the figure
// without numeric labels; these values are reconstructed from the
// running text of §3.6 ("2X-3.5X for N1 and 3.5X-6X for N2 on ytube and
// mapreduce; websearch 10%-70%; webmail degradations of 40% for N1 and
// 20% for N2; overall 1.5X to 2.0X").
var Figure5PerfPerTCO = map[string]map[string]float64{
	"websearch": {"N1": 1.10, "N2": 1.70},
	"webmail":   {"N1": 0.60, "N2": 0.80},
	"ytube":     {"N1": 3.50, "N2": 6.00},
	"mapred-wc": {"N1": 2.50, "N2": 4.50},
	"mapred-wr": {"N1": 2.00, "N2": 3.50},
	"hmean":     {"N1": 1.50, "N2": 2.00},
}

// Section36AltBaselines records §3.6's comparison of N2 against srvr2
// and desk baselines: "average improvements of 1.8-2X", ytube/mapreduce
// 2.5-4.1X vs srvr2 and 1.7-2.5X vs desk.
var Section36AltBaselines = map[string]map[string]float64{
	"hmean-N2": {"srvr2": 1.9, "desk": 1.9},
}
