// Package metrics defines the paper's evaluation metrics (§2.2):
// sustained performance under QoS, and performance per watt, per
// infrastructure dollar, per power-and-cooling dollar, and per total-TCO
// dollar. It also builds the relative (percent-of-baseline) tables that
// Figure 2(c), Figure 4(c), Table 3(b) and Figure 5 report, including the
// suite-level harmonic-mean rows.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"warehousesim/internal/stats"
)

// Measurement is one (workload, system) evaluation outcome.
type Measurement struct {
	Workload string
	System   string

	// Perf is sustained requests/second for the interactive benchmarks,
	// or 1/execution-time (jobs per second) for batch benchmarks, so that
	// "higher is better" holds uniformly and harmonic means are
	// meaningful (§3.2).
	Perf float64
	// Unit documents Perf ("RPS" or "1/s").
	Unit string
	// QoSMet reports whether the QoS constraint held at this throughput.
	QoSMet bool

	// PowerW is consumed power per server (activity-factored, including
	// switch share).
	PowerW float64
	// InfUSD, PCUSD and TCOUSD are per-server lifecycle dollars.
	InfUSD, PCUSD, TCOUSD float64
}

// PerfPerWatt returns Perf/W.
func (m Measurement) PerfPerWatt() float64 { return safeDiv(m.Perf, m.PowerW) }

// PerfPerInfUSD returns Perf per infrastructure dollar.
func (m Measurement) PerfPerInfUSD() float64 { return safeDiv(m.Perf, m.InfUSD) }

// PerfPerPCUSD returns Perf per burdened power-and-cooling dollar.
func (m Measurement) PerfPerPCUSD() float64 { return safeDiv(m.Perf, m.PCUSD) }

// PerfPerTCOUSD returns the headline metric, Perf/TCO-$.
func (m Measurement) PerfPerTCOUSD() float64 { return safeDiv(m.Perf, m.TCOUSD) }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Metric selects one of the paper's efficiency metrics.
type Metric int

// The metrics reported in Figure 2(c) and Figure 5.
const (
	Perf Metric = iota
	PerfPerInf
	PerfPerWatt
	PerfPerPC
	PerfPerTCO
)

// String implements fmt.Stringer with the paper's labels.
func (k Metric) String() string {
	switch k {
	case Perf:
		return "Perf"
	case PerfPerInf:
		return "Perf/Inf-$"
	case PerfPerWatt:
		return "Perf/W"
	case PerfPerPC:
		return "Perf/P&C-$"
	case PerfPerTCO:
		return "Perf/TCO-$"
	default:
		return fmt.Sprintf("Metric(%d)", int(k))
	}
}

// AllMetrics lists the metrics in the paper's presentation order.
func AllMetrics() []Metric {
	return []Metric{Perf, PerfPerInf, PerfPerWatt, PerfPerPC, PerfPerTCO}
}

// Value extracts the chosen metric from a measurement.
func (m Measurement) Value(k Metric) float64 {
	switch k {
	case Perf:
		return m.Perf
	case PerfPerInf:
		return m.PerfPerInfUSD()
	case PerfPerWatt:
		return m.PerfPerWatt()
	case PerfPerPC:
		return m.PerfPerPCUSD()
	case PerfPerTCO:
		return m.PerfPerTCOUSD()
	default:
		return math.NaN()
	}
}

// Table is a collection of measurements across workloads and systems.
type Table struct {
	rows []Measurement
}

// Add appends a measurement.
func (t *Table) Add(m Measurement) { t.rows = append(t.rows, m) }

// Rows returns measurements in insertion order.
func (t *Table) Rows() []Measurement { return t.rows }

// Get returns the measurement for (workload, system).
func (t *Table) Get(workload, system string) (Measurement, bool) {
	for _, m := range t.rows {
		if m.Workload == workload && m.System == system {
			return m, true
		}
	}
	return Measurement{}, false
}

// Workloads returns the distinct workload names in first-seen order.
func (t *Table) Workloads() []string {
	return t.distinct(func(m Measurement) string { return m.Workload })
}

// Systems returns the distinct system names in first-seen order.
func (t *Table) Systems() []string { return t.distinct(func(m Measurement) string { return m.System }) }

func (t *Table) distinct(key func(Measurement) string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range t.rows {
		k := key(m)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Relative computes metric values normalized to the baseline system
// (baseline == 1.0), per workload: the percentages of Figure 2(c).
// The result maps workload -> system -> relative value. Workloads whose
// baseline measurement is missing, zero or NaN (e.g. a zero denominator
// turned into NaN by safeDiv) are skipped rather than propagated.
func (t *Table) Relative(k Metric, baseline string) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, w := range t.Workloads() {
		base, ok := t.Get(w, baseline)
		if !ok || base.Value(k) == 0 || math.IsNaN(base.Value(k)) {
			continue
		}
		row := map[string]float64{}
		for _, s := range t.Systems() {
			if m, ok := t.Get(w, s); ok {
				row[s] = m.Value(k) / base.Value(k)
			}
		}
		out[w] = row
	}
	return out
}

// HMeanRelative returns, per system, the harmonic mean across workloads
// of the relative metric values — the "HMean" rows of Figure 2(c) and
// Figure 5. Systems are omitted — explicitly, not as NaN rows — when any
// workload is missing or any relative value is non-positive or NaN (a
// zero-denominator measurement upstream), so an undefined mean can never
// silently contaminate a suite table.
func (t *Table) HMeanRelative(k Metric, baseline string) map[string]float64 {
	rel := t.Relative(k, baseline)
	workloads := t.Workloads()
	out := map[string]float64{}
	for _, s := range t.Systems() {
		vals := make([]float64, 0, len(workloads))
		complete := true
		for _, w := range workloads {
			row, ok := rel[w]
			if !ok {
				complete = false
				break
			}
			v, ok := row[s]
			if !ok {
				complete = false
				break
			}
			vals = append(vals, v)
		}
		if !complete {
			continue
		}
		if hm, ok := stats.HarmonicMeanOK(vals); ok {
			out[s] = hm
		}
	}
	return out
}

// SortedKeys returns map keys sorted lexically — a convenience for
// deterministic report rendering.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
