package metrics

import (
	"math"
	"testing"
)

func sample() *Table {
	t := &Table{}
	t.Add(Measurement{Workload: "w1", System: "base", Perf: 100, PowerW: 200, InfUSD: 1000, PCUSD: 500, TCOUSD: 1500})
	t.Add(Measurement{Workload: "w1", System: "alt", Perf: 50, PowerW: 50, InfUSD: 250, PCUSD: 125, TCOUSD: 375})
	t.Add(Measurement{Workload: "w2", System: "base", Perf: 10, PowerW: 200, InfUSD: 1000, PCUSD: 500, TCOUSD: 1500})
	t.Add(Measurement{Workload: "w2", System: "alt", Perf: 8, PowerW: 50, InfUSD: 250, PCUSD: 125, TCOUSD: 375})
	return t
}

func TestDerivedMetrics(t *testing.T) {
	m := Measurement{Perf: 100, PowerW: 50, InfUSD: 200, PCUSD: 100, TCOUSD: 300}
	if got := m.PerfPerWatt(); got != 2 {
		t.Errorf("Perf/W = %g", got)
	}
	if got := m.PerfPerInfUSD(); got != 0.5 {
		t.Errorf("Perf/Inf = %g", got)
	}
	if got := m.PerfPerPCUSD(); got != 1 {
		t.Errorf("Perf/P&C = %g", got)
	}
	if got := m.PerfPerTCOUSD(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Perf/TCO = %g", got)
	}
}

func TestZeroDenominatorIsNaN(t *testing.T) {
	m := Measurement{Perf: 1}
	if !math.IsNaN(m.PerfPerWatt()) || !math.IsNaN(m.PerfPerTCOUSD()) {
		t.Error("zero denominators should yield NaN")
	}
}

func TestValueSelectsMetric(t *testing.T) {
	m := Measurement{Perf: 100, PowerW: 50, InfUSD: 200, PCUSD: 100, TCOUSD: 300}
	for _, k := range AllMetrics() {
		if math.IsNaN(m.Value(k)) {
			t.Errorf("metric %v is NaN", k)
		}
	}
	if m.Value(Perf) != 100 || m.Value(PerfPerWatt) != 2 {
		t.Error("Value dispatch wrong")
	}
	if !math.IsNaN(m.Value(Metric(42))) {
		t.Error("unknown metric should be NaN")
	}
}

func TestMetricStrings(t *testing.T) {
	want := map[Metric]string{
		Perf: "Perf", PerfPerInf: "Perf/Inf-$", PerfPerWatt: "Perf/W",
		PerfPerPC: "Perf/P&C-$", PerfPerTCO: "Perf/TCO-$",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestTableLookup(t *testing.T) {
	tbl := sample()
	if _, ok := tbl.Get("w1", "alt"); !ok {
		t.Error("Get missed existing row")
	}
	if _, ok := tbl.Get("w1", "none"); ok {
		t.Error("Get found a missing row")
	}
	if ws := tbl.Workloads(); len(ws) != 2 || ws[0] != "w1" || ws[1] != "w2" {
		t.Errorf("Workloads = %v", ws)
	}
	if ss := tbl.Systems(); len(ss) != 2 || ss[0] != "base" || ss[1] != "alt" {
		t.Errorf("Systems = %v", ss)
	}
}

func TestRelative(t *testing.T) {
	tbl := sample()
	rel := tbl.Relative(Perf, "base")
	if got := rel["w1"]["alt"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("w1 alt relative perf = %g, want 0.5", got)
	}
	if got := rel["w1"]["base"]; got != 1 {
		t.Errorf("baseline relative = %g", got)
	}
	// alt is 4x cheaper TCO: relative Perf/TCO for w1 = 0.5/0.25 = 2.
	relTCO := tbl.Relative(PerfPerTCO, "base")
	if got := relTCO["w1"]["alt"]; math.Abs(got-2) > 1e-12 {
		t.Errorf("w1 alt relative Perf/TCO = %g, want 2", got)
	}
}

func TestHMeanRelative(t *testing.T) {
	tbl := sample()
	hm := tbl.HMeanRelative(Perf, "base")
	// w1: 0.5, w2: 0.8 -> hmean = 2/(2+1.25) = 0.6154.
	want := 2 / (1/0.5 + 1/0.8)
	if got := hm["alt"]; math.Abs(got-want) > 1e-12 {
		t.Errorf("hmean alt = %g, want %g", got, want)
	}
	if got := hm["base"]; math.Abs(got-1) > 1e-12 {
		t.Errorf("hmean base = %g", got)
	}
}

func TestHMeanSkipsIncompleteSystems(t *testing.T) {
	tbl := sample()
	tbl.Add(Measurement{Workload: "w1", System: "partial", Perf: 1, PowerW: 1, InfUSD: 1, PCUSD: 1, TCOUSD: 1})
	hm := tbl.HMeanRelative(Perf, "base")
	if _, ok := hm["partial"]; ok {
		t.Error("system missing a workload should be omitted from hmean")
	}
}

// TestHMeanOmitsNaNSystems is the regression test for the
// zero-denominator leak: a measurement with PowerW == 0 makes
// PerfPerWatt NaN via safeDiv, which used to flow through
// HarmonicMean and surface as a NaN suite row. The system must be
// omitted explicitly instead.
func TestHMeanOmitsNaNSystems(t *testing.T) {
	tbl := sample()
	tbl.Add(Measurement{Workload: "w1", System: "broken", Perf: 1, InfUSD: 1, PCUSD: 1, TCOUSD: 1}) // PowerW 0
	tbl.Add(Measurement{Workload: "w2", System: "broken", Perf: 1, InfUSD: 1, PCUSD: 1, TCOUSD: 1})
	hm := tbl.HMeanRelative(PerfPerWatt, "base")
	if v, ok := hm["broken"]; ok {
		t.Errorf("zero-power system must be omitted, got hmean %g", v)
	}
	for s, v := range hm {
		if math.IsNaN(v) {
			t.Errorf("NaN leaked into hmean row for %q", s)
		}
	}
	// Healthy systems keep their rows.
	if _, ok := hm["alt"]; !ok {
		t.Error("healthy system missing from hmean")
	}
}

// TestRelativeSkipsNaNBaseline: a NaN baseline value must drop the
// workload from the relative table rather than producing NaN ratios.
func TestRelativeSkipsNaNBaseline(t *testing.T) {
	tbl := &Table{}
	tbl.Add(Measurement{Workload: "w1", System: "base", Perf: 1}) // PowerW 0 -> Perf/W NaN
	tbl.Add(Measurement{Workload: "w1", System: "alt", Perf: 1, PowerW: 1})
	rel := tbl.Relative(PerfPerWatt, "base")
	if _, ok := rel["w1"]; ok {
		t.Error("workload with NaN baseline must be skipped")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
