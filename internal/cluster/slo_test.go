package cluster

import (
	"bytes"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

// sloExport renders a result's windowed-SLO collector the way whsim's
// -slo-out does.
func sloExport(t *testing.T, res Result) []byte {
	t.Helper()
	if res.SLO == nil {
		t.Fatal("run configured with SLOWindowSec returned no SLO collector")
	}
	var buf bytes.Buffer
	if err := res.SLO.WriteJSONL(&buf, res.SLOParts...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSLOFlatInteractive: the flat adaptive-driver path collects
// windows over the instrumented replay, seals at the run horizon, and
// the collector rides the result without changing it.
func TestSLOFlatInteractive(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := testProfile()
	gen := workload.FixedGenerator{P: p}
	opt := SimOptions{Seed: 7, WarmupSec: 2, MeasureSec: 10, MaxClients: 64}

	base, err := cfg.Simulate(gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.SLO != nil {
		t.Fatal("SLO collector present without SLOWindowSec")
	}

	sink := obs.NewSink()
	opt.Obs = sink
	opt.SLOWindowSec = 1
	var live LiveHandles
	opt.OnLive = func(h LiveHandles) { live = h }
	res, err := cfg.Simulate(gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The window plane must not perturb the reported operating point.
	if res.Throughput != base.Throughput || res.Clients != base.Clients {
		t.Errorf("SLO collection changed the result: %+v vs %+v", res, base)
	}
	ws := res.SLO.Windows()
	if len(ws) == 0 {
		t.Fatal("no windows collected")
	}
	last := ws[len(ws)-1]
	if horizon := opt.WarmupSec + opt.MeasureSec; last.T1 > horizon {
		t.Errorf("final window T1 %g past the run horizon %g", last.T1, horizon)
	}
	var reqs int64
	sawCPUUtil := false
	for _, w := range ws {
		reqs += w.Requests
		if _, ok := w.Util["cpu"]; ok {
			sawCPUUtil = true
		}
	}
	if reqs == 0 || !sawCPUUtil {
		t.Errorf("windows missing requests (%d) or cpu utilization (%v)", reqs, sawCPUUtil)
	}
	if len(live.SLO) != 1 || live.SLO[0] != res.SLO {
		t.Errorf("OnLive handles = %+v, want the run's single collector", live)
	}
	if live.ShardStats != nil {
		t.Error("flat run handed out shard stats")
	}
	// The episode summary lands in the deterministic stream.
	if sink.CounterValue("slo.windows") != int64(len(ws)) {
		t.Errorf("slo.windows counter %d != %d windows", sink.CounterValue("slo.windows"), len(ws))
	}
}

// TestSLOFlatParInvariance: the windowed export and the obs export
// (which now carries the slo.* summary) must be byte-identical at any
// ramp parallelism.
func TestSLOFlatParInvariance(t *testing.T) {
	run := func(par int) ([]byte, []byte) {
		cfg := Config{Server: platform.Desk()}
		p := testProfile()
		sink := obs.NewSink()
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, SimOptions{
			Seed: 7, WarmupSec: 2, MeasureSec: 10, MaxClients: 64,
			Obs: sink, SLOWindowSec: 1, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return sloExport(t, res), buf.Bytes()
	}
	slo1, obs1 := run(1)
	slo4, obs4 := run(4)
	if !bytes.Equal(slo1, slo4) {
		t.Error("slo export differs between par 1 and par 4")
	}
	if !bytes.Equal(obs1, obs4) {
		t.Error("obs export differs between par 1 and par 4")
	}
}

// TestSLORackShardInvariance is the tentpole acceptance gate: the
// whole windowed export — manifest included — and the obs export with
// the slo.* summary folded in must be byte-identical at every shard
// count, while the merged collector reproduces the per-enclosure
// parts.
func TestSLORackShardInvariance(t *testing.T) {
	p := testProfile()
	run := func(shards int) (Result, []byte, []byte) {
		cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
		sink := obs.NewSink()
		opt := rackOptions(shards, sink)
		opt.SLOWindowSec = 1
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return res, sloExport(t, res), buf.Bytes()
	}
	ref, refSLO, refObs := run(1)
	if wantParts := rackTopology(1).Enclosures + 1; len(ref.SLOParts) != wantParts {
		t.Fatalf("got %d SLO parts, want %d (enclosures + global)", len(ref.SLOParts), wantParts)
	}
	if len(ref.SLO.Windows()) == 0 {
		t.Fatal("no windows collected")
	}
	for _, shards := range []int{2, 4} {
		_, slo, obsExp := run(shards)
		if !bytes.Equal(refSLO, slo) {
			t.Errorf("shards=%d slo export differs from shards=1", shards)
		}
		if !bytes.Equal(refObs, obsExp) {
			t.Errorf("shards=%d obs export differs from shards=1", shards)
		}
	}
}

// TestSLORackLiveHandles: a Topology run hands the introspection
// server every per-part collector plus the engine's live counters.
func TestSLORackLiveHandles(t *testing.T) {
	cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
	sink := obs.NewSink()
	opt := rackOptions(2, sink)
	opt.SLOWindowSec = 1
	var live LiveHandles
	opt.OnLive = func(h LiveHandles) { live = h }
	if _, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, opt); err != nil {
		t.Fatal(err)
	}
	if len(live.SLO) != rackTopology(2).Enclosures+1 {
		t.Errorf("OnLive SLO parts = %d", len(live.SLO))
	}
	if live.Shards != 2 || live.LookaheadSec <= 0 || live.ShardStats == nil {
		t.Errorf("OnLive engine handles = %+v", live)
	}
	st := live.ShardStats()
	if len(st) != 2 {
		t.Fatalf("live shard stats = %+v", st)
	}
	var fired uint64
	for _, s := range st {
		fired += s.Fired
	}
	if fired == 0 {
		t.Error("live shard stats show no events after the run")
	}
	// Every part published live summaries the introspection snapshot
	// can render.
	if _, err := window.LiveSnapshot(live.SLO); err != nil {
		t.Fatal(err)
	}
}

// TestSLOBatchFlat: the inline-instrumented batch path seals at the
// job's completion time.
func TestSLOBatchFlat(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := batchProfile()
	p.JobRequests = 500
	sink := obs.NewSink()
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, SimOptions{
		Seed: 3, WarmupSec: 0, MeasureSec: 1, MaxClients: 16,
		Obs: sink, SLOWindowSec: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := res.SLO.Windows()
	if len(ws) == 0 {
		t.Fatal("no windows collected")
	}
	if last := ws[len(ws)-1]; last.T1 > res.ExecTime {
		t.Errorf("final window T1 %g past job completion %g", last.T1, res.ExecTime)
	}
	var reqs int64
	for _, w := range ws {
		reqs += w.Requests
	}
	if reqs != int64(p.JobRequests) {
		t.Errorf("windows hold %d requests, job ran %d", reqs, p.JobRequests)
	}
	// Batch profiles carry no QoS bound: windows exist, episodes don't.
	if eps := res.SLO.Episodes(); eps != nil {
		t.Errorf("unbounded batch run produced episodes: %+v", eps)
	}
}
