package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

// testProfile is a synthetic interactive workload used across tests.
func testProfile() workload.Profile {
	return workload.Profile{
		Name: "test-interactive", Class: workload.Websearch,
		CPURefSec: 0.020, DiskOps: 0.5, DiskReadBytes: 100e3, NetBytes: 20e3,
		CacheWorkingSetMB: 2, CacheMissPenalty: 1, CoreScalingBeta: 0.85,
		QoSLatencySec: 0.5, QoSPercentile: 0.95, ThinkTimeSec: 1,
	}
}

func batchProfile() workload.Profile {
	return workload.Profile{
		Name: "test-batch", Class: workload.MapReduceWC,
		CPURefSec: 0.050, DiskOps: 1, DiskReadBytes: 2e6, NetBytes: 50e3,
		CacheWorkingSetMB: 1, CacheMissPenalty: 0.8, CoreScalingBeta: 0.9,
		ThinkTimeSec: 0, Batch: true, JobRequests: 2000,
	}
}

func TestErlangCBoundaries(t *testing.T) {
	if got := erlangC(4, 0); got != 0 {
		t.Errorf("erlangC(4,0) = %g", got)
	}
	if got := erlangC(4, 1); got != 1 {
		t.Errorf("erlangC(4,1) = %g", got)
	}
	// Single server: C = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := erlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Errorf("erlangC(1,%g) = %g, want %g", rho, got, rho)
		}
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Hand-computed via the Erlang-B recurrence: m=4, a=3.2 (rho=0.8)
	// gives B=0.2282 and C = B/(1-rho(1-B)) = 0.5965.
	got := erlangC(4, 0.8)
	if math.Abs(got-0.5965) > 0.001 {
		t.Errorf("erlangC(4,0.8) = %g, want 0.5965", got)
	}
}

func TestErlangCMonotone(t *testing.T) {
	for m := 1; m <= 16; m *= 2 {
		prev := -1.0
		for rho := 0.05; rho < 1; rho += 0.05 {
			c := erlangC(m, rho)
			if c < prev {
				t.Fatalf("erlangC(%d,·) not monotone at rho=%g", m, rho)
			}
			prev = c
		}
	}
}

func TestAnalyzeProducesFeasibleOperatingPoint(t *testing.T) {
	cfg := Config{Server: platform.Srvr1()}
	res, err := cfg.Analyze(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMet {
		t.Fatal("srvr1 cannot meet a 0.5s QoS on a 20ms request?")
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %g", res.Throughput)
	}
	if res.P95Latency > 0.5+1e-6 {
		t.Errorf("p95 = %g exceeds QoS", res.P95Latency)
	}
	for name, u := range res.Utilization {
		if u < 0 || u >= 1 {
			t.Errorf("utilization[%s] = %g", name, u)
		}
	}
	if res.Bottleneck == "" {
		t.Error("no bottleneck named")
	}
}

func TestAnalyzePlatformOrdering(t *testing.T) {
	// Faster platforms must sustain at least the throughput of slower
	// ones on the same interactive workload.
	p := testProfile()
	var prev float64 = math.Inf(1)
	for _, s := range platform.All() {
		res, err := Config{Server: s}.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput > prev*1.0001 {
			t.Errorf("%s throughput %g exceeds previous-tier %g", s.Name, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestAnalyzeBatch(t *testing.T) {
	cfg := Config{Server: platform.Srvr2()}
	res, err := cfg.Analyze(batchProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatalf("exec time = %g", res.ExecTime)
	}
	if math.Abs(res.Perf-1/res.ExecTime) > 1e-12 {
		t.Errorf("batch perf %g != 1/exec %g", res.Perf, 1/res.ExecTime)
	}
	if !res.QoSMet {
		t.Error("batch workloads have no QoS to violate")
	}
}

func TestAnalyzeQoSUnreachable(t *testing.T) {
	p := testProfile()
	p.QoSLatencySec = 0.001 // impossible: service alone is ~25ms
	cfg := Config{Server: platform.Srvr1()}
	res, err := cfg.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoSMet {
		t.Error("impossible QoS reported as met")
	}
	if res.Throughput <= 0 {
		t.Error("best-effort throughput missing")
	}
}

func TestAnalyzeTighterQoSLowersThroughput(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	loose := testProfile()
	tight := testProfile()
	tight.QoSLatencySec = 0.15
	rl, err := cfg.Analyze(loose)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cfg.Analyze(tight)
	if err != nil {
		t.Fatal(err)
	}
	if rt.QoSMet && rt.Throughput > rl.Throughput+1e-9 {
		t.Errorf("tighter QoS increased throughput: %g > %g", rt.Throughput, rl.Throughput)
	}
}

func TestAnalyzeMemorySlowdownReducesThroughput(t *testing.T) {
	p := testProfile()
	base, err := Config{Server: platform.Emb1()}.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Config{Server: platform.Emb1(), MemSlowdown: 0.05}.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Throughput >= base.Throughput {
		t.Errorf("memory slowdown did not reduce throughput: %g vs %g",
			slow.Throughput, base.Throughput)
	}
	// And the reduction should be modest (not more than ~3x the slowdown).
	drop := 1 - slow.Throughput/base.Throughput
	if drop > 0.15 {
		t.Errorf("5%% slowdown caused %.0f%% throughput drop", drop*100)
	}
}

func TestAnalyzeStorageSwapChangesBottleneck(t *testing.T) {
	p := testProfile()
	p.DiskOps = 2
	p.DiskReadBytes = 1e6
	slowDisk := Config{Server: platform.Emb1(), Storage: RemoteDisk{Disk: platform.DiskLaptop()}}
	res, err := slowDisk.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck != "disk" {
		t.Errorf("2 ops on a 15ms SAN disk should be disk-bound, got %s", res.Bottleneck)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	p := testProfile()
	bad := Config{Server: platform.Srvr1(), MemSlowdown: 2}
	if _, err := bad.Analyze(p); err == nil {
		t.Error("invalid config accepted")
	}
	p.CoreScalingBeta = 0
	if _, err := (Config{Server: platform.Srvr1()}).Analyze(p); err == nil {
		t.Error("invalid profile accepted")
	}
	empty := workload.Profile{Name: "empty", CoreScalingBeta: 1}
	if _, err := (Config{Server: platform.Srvr1()}).Analyze(empty); err == nil {
		t.Error("zero-demand profile accepted")
	}
}

func TestDemandsForScalesWithPlatform(t *testing.T) {
	p := testProfile()
	req := p.MeanRequest()
	fast := Config{Server: platform.Srvr1()}.DemandsFor(p, req)
	slow := Config{Server: platform.Emb2()}.DemandsFor(p, req)
	if slow.CPUSec <= fast.CPUSec {
		t.Errorf("emb2 CPU demand %g not above srvr1 %g", slow.CPUSec, fast.CPUSec)
	}
	// NIC: srvr1 has 10GbE, emb2 1GbE.
	if math.Abs(slow.NetSec/fast.NetSec-10) > 1e-9 {
		t.Errorf("NIC ratio = %g, want 10", slow.NetSec/fast.NetSec)
	}
}

// Property: throughput is monotone non-increasing in memory slowdown.
func TestQuickThroughputMonotoneInSlowdown(t *testing.T) {
	p := testProfile()
	f := func(aRaw, bRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 0.5)
		b := a + math.Mod(math.Abs(bRaw), 0.5)
		ra, err1 := Config{Server: platform.Desk(), MemSlowdown: a}.Analyze(p)
		rb, err2 := Config{Server: platform.Desk(), MemSlowdown: b}.Analyze(p)
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.Throughput <= ra.Throughput+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// qosTailFactor must stay finite and positive for any input: profile
// validation rejects percentiles outside (0,1) upstream, but the
// factor itself is the one place bad arithmetic would silently poison
// a throughput figure, so it clamps to the paper's default 95th.
func TestQoSTailFactorGuards(t *testing.T) {
	def := qosTailFactor(0.95)
	cases := []struct {
		name       string
		percentile float64
		want       float64
	}{
		{"p50", 0.5, math.Log(2)},
		{"p95", 0.95, def},
		{"p99", 0.99, math.Log(100)},
		{"zero", 0, def},
		{"one", 1, def},
		{"negative", -1, def},
		{"above one", 2, def},
		{"NaN", math.NaN(), def},
	}
	for _, c := range cases {
		got := qosTailFactor(c.percentile)
		if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
			t.Errorf("%s: qosTailFactor(%g) = %g, not finite positive", c.name, c.percentile, got)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: qosTailFactor(%g) = %g, want %g", c.name, c.percentile, got, c.want)
		}
	}
}

// TestValidateRejectsBadQoSPercentile: the profile layer refuses the
// inputs qosTailFactor would otherwise have to clamp.
func TestValidateRejectsBadQoSPercentile(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		p := testProfile()
		p.QoSPercentile = bad
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted QoSPercentile %g", bad)
		}
	}
}
