package cluster

import (
	"bytes"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/workload"
)

// testEnergyConfig builds an energy plane over the desk platform's
// consumed-power breakdown with the catalog idle split.
func testEnergyConfig(widthSec float64, idle power.IdleFractions) *energy.Config {
	active := power.DefaultModel().ServerConsumed(platform.Desk(), platform.DefaultRack())
	return &energy.Config{WidthSec: widthSec, Model: energy.Model{Active: active, Idle: idle}}
}

// energyExport renders a result's energy collector the way whsim's
// -energy-out does.
func energyExport(t *testing.T, res Result) []byte {
	t.Helper()
	if res.Energy == nil {
		t.Fatal("run configured with Energy returned no collector")
	}
	var buf bytes.Buffer
	if err := res.Energy.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEnergyFlatInteractive: the flat adaptive-driver path derives
// windows over the instrumented replay without perturbing the reported
// operating point, and the degenerate static split reproduces the
// static wattage bit-exactly in every window.
func TestEnergyFlatInteractive(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := testProfile()
	gen := workload.FixedGenerator{P: p}
	opt := SimOptions{Seed: 7, WarmupSec: 2, MeasureSec: 10, MaxClients: 64}

	base, err := cfg.Simulate(gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Energy != nil {
		t.Fatal("energy collector present without SimOptions.Energy")
	}

	sink := obs.NewSink()
	opt.Obs = sink
	opt.Energy = testEnergyConfig(1, power.StaticIdleFractions())
	var live LiveHandles
	opt.OnLive = func(h LiveHandles) { live = h }
	res, err := cfg.Simulate(gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != base.Throughput || res.Clients != base.Clients {
		t.Errorf("energy collection changed the result: %+v vs %+v", res, base)
	}
	ws := res.Energy.Windows()
	if len(ws) == 0 {
		t.Fatal("no energy windows collected")
	}
	// Degenerate case: idle fractions all 1.0 must reproduce the static
	// total bit-for-bit regardless of the run's utilization.
	static := opt.Energy.Model.Active.TotalW()
	for _, w := range ws {
		if w.Watts != static {
			t.Errorf("window %d watts %v != static %v (must be bit-exact)", w.Index, w.Watts, static)
		}
	}
	if last := ws[len(ws)-1]; last.T1 > opt.WarmupSec+opt.MeasureSec {
		t.Errorf("final window T1 %g past the run horizon %g", last.T1, opt.WarmupSec+opt.MeasureSec)
	}
	tot := res.Energy.Totals()
	if tot.MeanW != static || tot.StaticW != static {
		t.Errorf("degenerate totals mean %v static %v, want both %v", tot.MeanW, tot.StaticW, static)
	}
	if tot.Requests == 0 || tot.JoulesPerRequest <= 0 {
		t.Errorf("totals carry no requests: %+v", tot)
	}
	if len(live.Energy) != 1 || live.Energy[0] != res.Energy {
		t.Errorf("OnLive energy handles = %+v, want the run's single collector", live.Energy)
	}
	if sink.CounterValue("energy.windows") != int64(len(ws)) {
		t.Errorf("energy.windows counter %d != %d windows", sink.CounterValue("energy.windows"), len(ws))
	}
}

// TestEnergyFlatUtilizationConditioned: with the catalog idle split the
// measured draw must land strictly between idle and static, and vary
// with load across windows.
func TestEnergyFlatUtilizationConditioned(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	sink := obs.NewSink()
	ec := testEnergyConfig(1, power.DefaultIdleFractions())
	res, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, SimOptions{
		Seed: 7, WarmupSec: 2, MeasureSec: 10, MaxClients: 64,
		Obs: sink, Energy: ec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Energy.Totals()
	idleW := ec.Model.Active.At(ec.Model.Idle, power.Utilizations{}).TotalW()
	if !(tot.MeanW > idleW && tot.MeanW < tot.StaticW) {
		t.Errorf("mean %g W not between idle %g and static %g", tot.MeanW, idleW, tot.StaticW)
	}
	prop := res.Energy.Proportionality()
	if prop.Points == 0 || prop.SlopeWPerUtil <= 0 {
		t.Errorf("driven run shows no proportionality: %+v", prop)
	}
}

// TestEnergyFlatParInvariance: the energy export must be byte-identical
// at any ramp parallelism.
func TestEnergyFlatParInvariance(t *testing.T) {
	run := func(par int) []byte {
		cfg := Config{Server: platform.Desk()}
		sink := obs.NewSink()
		res, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, SimOptions{
			Seed: 7, WarmupSec: 2, MeasureSec: 10, MaxClients: 64,
			Obs: sink, Energy: testEnergyConfig(1, power.DefaultIdleFractions()), Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return energyExport(t, res)
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Error("energy export differs between par 1 and par 4")
	}
}

// TestEnergyRackShardInvariance is the tentpole acceptance gate: the
// whole energy export — manifest included — must be byte-identical at
// every shard count, with the per-enclosure parts merged in enclosure
// order behind it.
func TestEnergyRackShardInvariance(t *testing.T) {
	p := testProfile()
	run := func(shards int) (Result, []byte) {
		cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
		sink := obs.NewSink()
		opt := rackOptions(shards, sink)
		opt.Energy = testEnergyConfig(1, power.DefaultIdleFractions())
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res, energyExport(t, res)
	}
	ref, refExp := run(1)
	if wantParts := rackTopology(1).Enclosures + 1; len(ref.EnergyParts) != wantParts {
		t.Fatalf("got %d energy parts, want %d (enclosures + global)", len(ref.EnergyParts), wantParts)
	}
	if len(ref.Energy.Windows()) == 0 {
		t.Fatal("no energy windows collected")
	}
	// The rack feeds per-enclosure cpu/net/memblade and global san
	// utilization into the merged collector.
	sawCPU, sawSAN := false, false
	for _, w := range ref.Energy.Windows() {
		if _, ok := w.Util["cpu"]; ok {
			sawCPU = true
		}
		if _, ok := w.Util["san"]; ok {
			sawSAN = true
		}
	}
	if !sawCPU || !sawSAN {
		t.Errorf("merged windows missing drivers: cpu %v san %v", sawCPU, sawSAN)
	}
	for _, shards := range []int{2, 4} {
		_, exp := run(shards)
		if !bytes.Equal(refExp, exp) {
			t.Errorf("shards=%d energy export differs from shards=1", shards)
		}
	}
}

// TestEnergyBatchFlat: the inline-instrumented batch path seals at the
// job's completion time and accounts every completed request.
func TestEnergyBatchFlat(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := batchProfile()
	p.JobRequests = 500
	sink := obs.NewSink()
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, SimOptions{
		Seed: 3, WarmupSec: 0, MeasureSec: 1, MaxClients: 16,
		Obs: sink, Energy: testEnergyConfig(0.5, power.DefaultIdleFractions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := res.Energy.Windows()
	if len(ws) == 0 {
		t.Fatal("no energy windows collected")
	}
	if last := ws[len(ws)-1]; last.T1 > res.ExecTime {
		t.Errorf("final window T1 %g past job completion %g", last.T1, res.ExecTime)
	}
	tot := res.Energy.Totals()
	if tot.Requests != int64(p.JobRequests) {
		t.Errorf("windows hold %d requests, job ran %d", tot.Requests, p.JobRequests)
	}
	if tot.Joules <= 0 || tot.JoulesPerRequest <= 0 {
		t.Errorf("batch totals %+v", tot)
	}
}

// TestEnergyRackBatch: the rack batch replay carries the energy plane
// to the discovered horizon.
func TestEnergyRackBatch(t *testing.T) {
	cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
	p := batchProfile()
	p.JobRequests = 400
	sink := obs.NewSink()
	opt := rackOptions(2, sink)
	opt.Energy = testEnergyConfig(1, power.DefaultIdleFractions())
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy == nil {
		t.Fatal("rack batch returned no energy collector")
	}
	tot := res.Energy.Totals()
	if tot.Requests != int64(p.JobRequests) {
		t.Errorf("energy accounts %d requests, job ran %d", tot.Requests, p.JobRequests)
	}
	if ws := res.Energy.Windows(); len(ws) == 0 || ws[len(ws)-1].T1 > res.ExecTime {
		t.Errorf("windows end past the job horizon %g", res.ExecTime)
	}
}

// TestEnergyNormalizeRejectsBadConfig: invalid energy configs surface
// from Normalize, before any simulation runs.
func TestEnergyNormalizeRejectsBadConfig(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	sink := obs.NewSink()
	bad := testEnergyConfig(0, power.DefaultIdleFractions()) // zero width
	_, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, SimOptions{
		Seed: 1, WarmupSec: 1, MeasureSec: 2, MaxClients: 8, Obs: sink, Energy: bad,
	})
	if err == nil {
		t.Fatal("zero-width energy config accepted")
	}
}
