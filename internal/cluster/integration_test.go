package cluster

import (
	"testing"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
	"warehousesim/internal/workload/mapreduce"
	"warehousesim/internal/workload/webmail"
	"warehousesim/internal/workload/websearch"
	"warehousesim/internal/workload/ytube"
)

// These integration tests drive the REAL workload engines (inverted
// index, mailbox store, video catalog, MapReduce runtime) through the
// discrete-event server simulation — the full pipeline a paper
// evaluation run exercises.

func engineSimOptions() SimOptions {
	return SimOptions{Seed: 3, WarmupSec: 5, MeasureSec: 40, MaxClients: 1024}
}

func TestWebsearchEngineThroughDES(t *testing.T) {
	if testing.Short() {
		t.Skip("engine integration is slow")
	}
	cfg := websearch.Config{
		NumDocs: 2000, VocabSize: 3000, MeanDocLen: 80,
		CorpusZipfS: 1.0, QueryZipfS: 0.9, CachedTermFraction: 0.25, Seed: 1,
	}
	eng, err := websearch.New(cfg, workload.WebsearchProfile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Config{Server: platform.Desk()}).Simulate(eng, engineSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	// Desk meets websearch QoS per the analytic model; the engine-driven
	// DES must agree within a generous band.
	ana, err := (Config{Server: platform.Desk()}).Analyze(workload.WebsearchProfile())
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Throughput / ana.Throughput
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("engine DES %.1f rps vs analytic %.1f rps (ratio %.2f)",
			res.Throughput, ana.Throughput, ratio)
	}
}

func TestWebmailEngineThroughDES(t *testing.T) {
	if testing.Short() {
		t.Skip("engine integration is slow")
	}
	cfg := webmail.Config{Users: 100, InitialMessages: 10, MaxMessagesPerFolder: 50,
		AttachmentProb: 0.25, Seed: 2}
	eng, err := webmail.New(cfg, workload.WebmailProfile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Config{Server: platform.Srvr2()}).Simulate(eng, engineSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMet || res.Throughput <= 0 {
		t.Fatalf("srvr2 webmail degenerate: %+v", res)
	}
	if res.P95Latency > workload.WebmailProfile().QoSLatencySec {
		t.Errorf("p95 %.3f violates the 0.8s bound", res.P95Latency)
	}
}

func TestYtubeEngineThroughDES(t *testing.T) {
	if testing.Short() {
		t.Skip("engine integration is slow")
	}
	cfg := ytube.DefaultConfig()
	cfg.Videos = 2000
	eng, err := ytube.New(cfg, workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Config{Server: platform.Emb1()}).Simulate(eng, engineSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	// ytube is IO-bound: the disk must be the busiest station.
	if res.Bottleneck != "disk" && res.Bottleneck != "net" {
		t.Errorf("ytube bottleneck = %s, want disk or net (util %v)",
			res.Bottleneck, res.Utilization)
	}
}

func TestMapReduceEngineThroughDES(t *testing.T) {
	if testing.Short() {
		t.Skip("engine integration is slow")
	}
	corpus := mapreduce.DefaultCorpusConfig()
	corpus.TotalBytes = 1 << 20
	prof := workload.MapReduceWCProfile()
	prof.JobRequests = 300
	eng := mustWordCount(t, corpus, prof)
	fast, err := (Config{Server: platform.Srvr1()}).Simulate(eng, engineSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng2 := mustWordCount(t, corpus, prof)
	slow, err := (Config{Server: platform.Emb2()}).Simulate(eng2, engineSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fast.ExecTime <= 0 || slow.ExecTime <= fast.ExecTime {
		t.Errorf("exec times wrong: srvr1 %.1fs, emb2 %.1fs", fast.ExecTime, slow.ExecTime)
	}
}

func mustWordCount(t *testing.T, corpus mapreduce.CorpusConfig, prof workload.Profile) *mapreduce.Engine {
	t.Helper()
	eng, err := mapreduce.NewWordCount(corpus, prof)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Suite-wide consistency: for every canonical profile, the analytic
// operating point respects its own utilization and QoS reporting.
func TestAnalyticSuiteConsistency(t *testing.T) {
	for _, p := range workload.SuiteProfiles() {
		for _, s := range platform.All() {
			res, err := (Config{Server: s}).Analyze(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, s.Name, err)
			}
			if res.Perf <= 0 {
				t.Errorf("%s/%s: perf %g", p.Name, s.Name, res.Perf)
			}
			for st, u := range res.Utilization {
				if u < -1e-9 || u > 1+1e-9 {
					t.Errorf("%s/%s: %s utilization %g", p.Name, s.Name, st, u)
				}
			}
			if res.QoSMet && p.QoSLatencySec > 0 && res.P95Latency > p.QoSLatencySec*1.001 {
				t.Errorf("%s/%s: claims QoS met but p95 %.3f > %.3f",
					p.Name, s.Name, res.P95Latency, p.QoSLatencySec)
			}
		}
	}
}
