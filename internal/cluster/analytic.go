package cluster

import (
	"fmt"
	"math"

	"warehousesim/internal/obs/energy"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/workload"
)

// Result is the outcome of evaluating one (configuration, workload)
// pair: the sustained throughput under QoS and its supporting detail.
type Result struct {
	// Throughput is the sustained request rate (requests/second).
	Throughput float64
	// Perf is the paper's performance number: Throughput for interactive
	// workloads, 1/ExecTime (jobs/second) for batch workloads.
	Perf float64
	// QoSMet reports whether the QoS constraint held; false means the
	// platform cannot meet the bound even unloaded and Throughput is the
	// best-effort rate.
	QoSMet bool
	// MeanLatency and P95Latency describe response time at the operating
	// point (interactive workloads only).
	MeanLatency, P95Latency float64
	// ExecTime is the batch job execution time (batch workloads only).
	ExecTime float64
	// Bottleneck names the resource limiting throughput.
	Bottleneck string
	// Utilization per station ("cpu", "disk", "net") at the operating
	// point.
	Utilization map[string]float64
	// Clients is the sustained concurrent client count (DES runs only).
	Clients int
	// SLO is the merged windowed-SLO collector of an instrumented DES run
	// configured with SimOptions.SLOWindowSec (nil otherwise); SLOParts
	// are the per-partition collectors behind it — the enclosures plus
	// the rack-global part for Topology runs, nil for the flat model —
	// used to attribute episode blast radius in the export.
	SLO      *window.Collector
	SLOParts []*window.Collector
	// Energy is the merged energy collector of an instrumented DES run
	// configured with SimOptions.Energy (nil otherwise); EnergyParts are
	// the per-partition collectors behind it, in the same part order as
	// SLOParts.
	Energy      *energy.Collector
	EnergyParts []*energy.Collector
	// Fleet carries the per-rack breakdown of a FleetTopology run (nil
	// for single-rack and flat-model runs).
	Fleet *FleetBreakdown
}

// bestEffortUtil is the utilization at which throughput is reported when
// the QoS bound is unreachable even at zero load — the paper's client
// driver drives the system to "the highest level of throughput without
// overloading the servers" (§2.1), i.e. near saturation, and reports the
// QoS violations alongside.
const bestEffortUtil = 0.85

// erlangC returns the steady-state probability that an arriving job must
// queue in an M/M/m station at utilization rho, computed via the stable
// Erlang-B recurrence.
func erlangC(m int, rho float64) float64 {
	if rho >= 1 {
		return 1
	}
	if rho <= 0 {
		return 0
	}
	a := float64(m) * rho
	b := 1.0
	for k := 1; k <= m; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b))
}

type station struct {
	name    string
	m       int
	service float64 // per-server service time
}

// capacity is the station's maximum throughput.
func (s station) capacity() float64 {
	if s.service <= 0 {
		return math.Inf(1)
	}
	return float64(s.m) / s.service
}

// respTime returns the station's mean response time at arrival rate
// lambda, or +Inf when saturated.
func (s station) respTime(lambda float64) float64 {
	if s.service <= 0 {
		return 0
	}
	rho := lambda * s.service / float64(s.m)
	if rho >= 1 {
		return math.Inf(1)
	}
	c := erlangC(s.m, rho)
	w := c / (float64(s.m)/s.service - lambda)
	return s.service + w
}

func (c Config) stations(p workload.Profile) []station {
	d := c.MeanDemands(p)
	return []station{
		{name: "cpu", m: c.Server.CPU.Cores(), service: d.CPUSec},
		{name: "disk", m: 1, service: d.DiskSec},
		{name: "net", m: 1, service: d.NetSec},
	}
}

// qosTailFactor converts a mean response time into the percentile the
// QoS bound applies to, assuming an approximately exponential response
// tail (exact for M/M/1; slightly pessimistic for multi-stage pipelines,
// which the DES cross-validation quantifies).
//
// Percentiles outside (0,1) would yield a non-positive or infinite
// factor (log of a non-positive or unbounded argument). Profile
// validation rejects them before any model runs, but this is the one
// place the arithmetic would silently poison a result, so it clamps
// defensively to the paper's default 95th percentile.
func qosTailFactor(percentile float64) float64 {
	if percentile <= 0 || percentile >= 1 || math.IsNaN(percentile) {
		percentile = 0.95
	}
	return math.Log(1 / (1 - percentile))
}

// Analyze computes the QoS-constrained sustained throughput of the
// configuration on the workload using the open queueing-network
// approximation: each station is M/M/m, response time is the sum of
// station response times, and the operating point is the largest arrival
// rate whose QoS-percentile latency stays within the bound.
func (c Config) Analyze(p workload.Profile) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	sts := c.stations(p)

	capMin := math.Inf(1)
	bottleneck := ""
	for _, s := range sts {
		if cap := s.capacity(); cap < capMin {
			capMin = cap
			bottleneck = s.name
		}
	}
	if math.IsInf(capMin, 1) {
		return Result{}, fmt.Errorf("cluster: workload %s has no demand on any station", p.Name)
	}

	respAt := func(lambda float64) float64 {
		sum := 0.0
		for _, s := range sts {
			sum += s.respTime(lambda)
		}
		return sum
	}
	utilAt := func(lambda float64) map[string]float64 {
		u := map[string]float64{}
		for _, s := range sts {
			u[s.name] = lambda * s.service / float64(s.m)
		}
		return u
	}

	res := Result{Bottleneck: bottleneck}

	if p.Batch || p.QoSLatencySec == 0 {
		// Batch: the job keeps the machine saturated; throughput is the
		// bottleneck capacity.
		lambda := capMin
		res.Throughput = lambda
		res.QoSMet = true
		res.Utilization = utilAt(lambda * 0.999)
		if p.Batch {
			res.ExecTime = float64(p.JobRequests) / lambda
			res.Perf = 1 / res.ExecTime
		} else {
			res.Perf = lambda
		}
		return res, nil
	}

	tail := qosTailFactor(p.QoSPercentile)
	zeroLoad := respAt(0)
	if zeroLoad*tail > p.QoSLatencySec {
		// QoS unreachable: report best-effort throughput with QoSMet
		// false, as the client driver would observe.
		lambda := bestEffortUtil * capMin
		res.Throughput = lambda
		res.Perf = lambda
		res.QoSMet = false
		res.MeanLatency = respAt(lambda)
		res.P95Latency = res.MeanLatency * tail
		res.Utilization = utilAt(lambda)
		return res, nil
	}

	// Bisect the largest feasible arrival rate in (0, capMin).
	lo, hi := 0.0, capMin*(1-1e-9)
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if respAt(mid)*tail <= p.QoSLatencySec {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := lo
	res.Throughput = lambda
	res.Perf = lambda
	res.QoSMet = true
	res.MeanLatency = respAt(lambda)
	res.P95Latency = res.MeanLatency * tail
	res.Utilization = utilAt(lambda)
	return res, nil
}

// AnalyzeAt evaluates the analytic model at a fixed per-server arrival
// rate instead of solving for the operating point. The fleet hybrid uses
// it to stand in for cold racks at the load the balancer actually routed
// to them. Interactive profiles only: a batch rack is a single job, not
// an arrival stream, so a fixed-rate evaluation has no meaning there.
//
// At or beyond the bottleneck capacity the station equations diverge, so
// the result reports the saturated utilization profile with infinite
// latencies and QoSMet false rather than an error: an overloaded cold
// rack is an answer ("this placement violates QoS"), not a misuse.
func (c Config) AnalyzeAt(p workload.Profile, lambda float64) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if p.Batch {
		return Result{}, fmt.Errorf("cluster: AnalyzeAt models an arrival stream; batch profile %s has none", p.Name)
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return Result{}, fmt.Errorf("cluster: AnalyzeAt needs a non-negative arrival rate, got %v", lambda)
	}
	sts := c.stations(p)

	capMin := math.Inf(1)
	bottleneck := ""
	for _, s := range sts {
		if cap := s.capacity(); cap < capMin {
			capMin = cap
			bottleneck = s.name
		}
	}
	if math.IsInf(capMin, 1) {
		return Result{}, fmt.Errorf("cluster: workload %s has no demand on any station", p.Name)
	}

	res := Result{Bottleneck: bottleneck, Throughput: lambda, Perf: lambda}
	res.Utilization = map[string]float64{}
	for _, s := range sts {
		res.Utilization[s.name] = lambda * s.service / float64(s.m)
	}
	tail := qosTailFactor(p.QoSPercentile)
	if lambda >= capMin {
		res.MeanLatency = math.Inf(1)
		res.P95Latency = math.Inf(1)
		res.QoSMet = false
		return res, nil
	}
	sum := 0.0
	for _, s := range sts {
		sum += s.respTime(lambda)
	}
	res.MeanLatency = sum
	res.P95Latency = sum * tail
	if p.QoSLatencySec > 0 {
		// The 1e-9 relative slack keeps a rack loaded exactly at the
		// Analyze operating point (an 80-step bisection against this same
		// bound) from flipping QoSMet over float ulps.
		res.QoSMet = res.P95Latency <= p.QoSLatencySec*(1+1e-9)
	} else {
		res.QoSMet = true
	}
	return res, nil
}
