package cluster

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/workload"
)

// fleetTestRack is the per-rack template fleet tests share: 4
// enclosures so the shard ladder 1/2/4 is meaningful, 2 boards each.
func fleetTestRack() ShardedTopology {
	return ShardedTopology{Enclosures: 4, BoardsPerEnclosure: 2, Shards: 2}
}

// obsExport renders a sink the way whsim's -obs-out does (test sinks
// carry a zero manifest, so the header line is invariant too).
func obsExport(t *testing.T, s *obs.Sink) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFleetNormalizeValidation(t *testing.T) {
	rack := fleetTestRack()
	cases := []struct {
		name string
		topo FleetTopology
		want string
	}{
		{"zero racks", FleetTopology{Rack: rack}, "at least one rack"},
		{"negative hot", FleetTopology{Racks: 4, HotRacks: -1, Rack: rack}, "negative hot rack count"},
		{"hot exceeds fleet", FleetTopology{Racks: 2, HotRacks: 3, Rack: rack}, "exceed fleet size"},
		{"hot-set out of range", FleetTopology{Racks: 4, HotSet: []int{4}, Rack: rack}, "outside fleet"},
		{"hot-set negative id", FleetTopology{Racks: 4, HotSet: []int{-1}, Rack: rack}, "outside fleet"},
		{"hot-set duplicate", FleetTopology{Racks: 4, HotSet: []int{1, 1}, Rack: rack}, "duplicate hot rack"},
		{"hot-set disagreement", FleetTopology{Racks: 4, HotRacks: 1, HotSet: []int{0, 1}, Rack: rack}, "disagrees with hot-set"},
		{"unknown balancer", FleetTopology{Racks: 4, Balancer: "random", Rack: rack}, "unknown balancer"},
		{"empty rack template", FleetTopology{Racks: 4}, "fleet rack template"},
		{"bad rack template", FleetTopology{Racks: 4, Rack: ShardedTopology{Enclosures: 1, BoardsPerEnclosure: -1}}, "fleet rack template"},
	}
	for _, c := range cases {
		topo := c.topo
		err := topo.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize accepted %+v", c.name, c.topo)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestFleetNormalizeDefaults(t *testing.T) {
	ft := FleetTopology{Racks: 8, HotSet: []int{5, 2}, Rack: fleetTestRack(), Shards: 4}
	if err := ft.Normalize(); err != nil {
		t.Fatal(err)
	}
	if ft.HotSet[0] != 2 || ft.HotSet[1] != 5 {
		t.Errorf("hot set not sorted: %v", ft.HotSet)
	}
	if ft.HotRacks != 2 {
		t.Errorf("HotRacks not derived from hot set: %d", ft.HotRacks)
	}
	if ft.Balancer != BalancerWRR {
		t.Errorf("empty balancer not defaulted: %q", ft.Balancer)
	}
	if ft.Rack.Shards != 4 || ft.Shards != 4 {
		t.Errorf("Shards override not applied to template: topo %d rack %d", ft.Shards, ft.Rack.Shards)
	}

	// SimOptions.Normalize works on a clone: the caller's value must
	// keep its un-normalized shape.
	orig := &FleetTopology{Racks: 4, HotSet: []int{3, 0}, Rack: fleetTestRack()}
	opt := SimOptions{WarmupSec: 1, MeasureSec: 2, MaxClients: 16, Topology: orig}
	n, err := opt.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if orig.Balancer != "" || orig.HotSet[0] != 3 {
		t.Errorf("Normalize wrote through to the caller's topology: %+v", orig)
	}
	nt := n.Topology.(*FleetTopology)
	if nt.Balancer != BalancerWRR || nt.HotSet[0] != 0 {
		t.Errorf("normalized clone wrong: %+v", nt)
	}
}

// loudRecorder is enabled but is not a *obs.Sink — the fleet must
// reject it rather than silently drop the per-rack fold.
type loudRecorder struct{ obs.Nop }

func (loudRecorder) Enabled() bool { return true }

func TestFleetSimulateRejections(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	base := FleetTopology{Racks: 3, HotRacks: 1, Rack: fleetTestRack()}
	opt := func() SimOptions {
		topo := base
		return SimOptions{Seed: 5, WarmupSec: 1, MeasureSec: 2, MaxClients: 16, Topology: &topo}
	}

	if _, err := cfg.Simulate(workload.FixedGenerator{P: batchProfile()}, opt()); err == nil || !strings.Contains(err.Error(), "batch") {
		t.Errorf("batch profile accepted by fleet: %v", err)
	}
	o := opt()
	o.TraceEvery = 100
	if _, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, o); err == nil || !strings.Contains(err.Error(), "tracing") {
		t.Errorf("span tracing accepted by fleet: %v", err)
	}
	o = opt()
	o.Obs = loudRecorder{}
	if _, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, o); err == nil || !strings.Contains(err.Error(), "*obs.Sink") {
		t.Errorf("non-Sink recorder accepted by fleet: %v", err)
	}
	if _, err := cfg.Simulate(statefulGen{p: testProfile()}, opt()); err == nil || !strings.Contains(err.Error(), "IsStateless") {
		t.Errorf("stateful generator accepted with hot racks: %v", err)
	}
}

// TestFleetHotAllMatchesManualComposition: a fleet whose hot set is
// every rack must be exactly the composition of per-rack DES runs — the
// same Results rack by rack, the same merged observability bytes, the
// same merged SLO and energy exports. This is the contract that lets
// the analytic stand-in be trusted: the hybrid machinery adds nothing
// to a rack's trajectory.
func TestFleetHotAllMatchesManualComposition(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := testProfile()
	gen := workload.FixedGenerator{P: p}
	const seed, racks = 9, 3

	topo := FleetTopology{Racks: racks, HotRacks: racks, Rack: fleetTestRack()}
	sink := obs.NewSink()
	opt := SimOptions{
		Seed: seed, WarmupSec: 2, MeasureSec: 6, MaxClients: 48,
		Obs: sink, SLOWindowSec: 2,
		Energy:      testEnergyConfig(2, power.DefaultIdleFractions()),
		Parallelism: 2, Topology: &topo,
	}
	fleetRes, err := cfg.Simulate(gen, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Manual composition: one public per-rack run per id, seeded with
	// fleetRackSeed, recording into a private sink.
	manual := make([]Result, racks)
	sinks := make([]*obs.Sink, racks)
	for id := 0; id < racks; id++ {
		rack := fleetTestRack()
		sinks[id] = obs.NewSink()
		ro := SimOptions{
			Seed: fleetRackSeed(seed, id), WarmupSec: 2, MeasureSec: 6, MaxClients: 48,
			Obs: sinks[id], SLOWindowSec: 2,
			Energy:   testEnergyConfig(2, power.DefaultIdleFractions()),
			Topology: &rack,
		}
		manual[id], err = cfg.Simulate(gen, ro)
		if err != nil {
			t.Fatalf("manual rack %d: %v", id, err)
		}
	}

	fb := fleetRes.Fleet
	if fb == nil {
		t.Fatal("fleet run returned no breakdown")
	}
	sum := 0.0
	for id, r := range manual {
		fr := fb.RackResults[id]
		if !fr.Hot || fr.Throughput != r.Throughput || fr.P95Latency != r.P95Latency || fr.Clients != r.Clients {
			t.Errorf("rack %d diverges from its manual run: fleet %+v, manual tput=%g p95=%g clients=%d",
				id, fr, r.Throughput, r.P95Latency, r.Clients)
		}
		sum += r.Throughput
	}
	if fleetRes.Throughput != sum {
		t.Errorf("fleet throughput %g != manual sum %g", fleetRes.Throughput, sum)
	}
	if fb.ColdDemand != 0 || fb.ColdUnserved != 0 {
		t.Errorf("all-hot fleet reports cold demand %g unserved %g", fb.ColdDemand, fb.ColdUnserved)
	}

	// Observability: merging the manual sinks in id order and replaying
	// the fleet-summary emission must reproduce the fleet export byte
	// for byte.
	manualSink := obs.NewSink()
	manualSink.MergeFrom(sinks...)
	mbd := &FleetBreakdown{Racks: racks, HotIDs: []int{0, 1, 2}, Balancer: BalancerWRR}
	for id, r := range manual {
		mbd.RackResults = append(mbd.RackResults, FleetRack{
			ID: id, Hot: true, Throughput: r.Throughput, QoSMet: r.QoSMet})
	}
	topo.emitFleet(manualSink, mbd)
	if !bytes.Equal(obsExport(t, sink), obsExport(t, manualSink)) {
		t.Error("fleet obs export differs from the manual composition")
	}

	// Telemetry planes: fleet-level collectors must equal the manual
	// per-rack collectors merged in id order.
	sloParts := make([]*window.Collector, racks)
	enParts := make([]*energy.Collector, racks)
	for id, r := range manual {
		sloParts[id], enParts[id] = r.SLO, r.Energy
	}
	mergedSLO, err := window.New(sloParts[0].Config())
	if err != nil {
		t.Fatal(err)
	}
	mergedSLO.MergeFrom(sloParts...)
	if !bytes.Equal(sloExport(t, fleetRes), sloExport(t, Result{SLO: mergedSLO, SLOParts: sloParts})) {
		t.Error("fleet SLO export differs from the manual composition")
	}
	mergedEn, err := energy.New(enParts[0].Config())
	if err != nil {
		t.Fatal(err)
	}
	mergedEn.MergeFrom(enParts...)
	if !bytes.Equal(energyExport(t, fleetRes), energyExport(t, Result{Energy: mergedEn})) {
		t.Error("fleet energy export differs from the manual composition")
	}
}

// TestFleetColdOnlyMatchesAnalytic: with no hot racks the fleet is the
// analytic model times the rack count — wrr routes every rack its
// QoS-feasible operating point, so the fleet throughput is
// racks x boards x Analyze().Throughput and QoS holds fleet-wide.
func TestFleetColdOnlyMatchesAnalytic(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := testProfile()
	const racks = 100

	ana, err := cfg.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	boards := fleetTestRack().Enclosures * fleetTestRack().BoardsPerEnclosure

	for _, bal := range []string{BalancerWRR, BalancerLeastLoaded} {
		topo := FleetTopology{Racks: racks, Rack: fleetTestRack(), Balancer: bal}
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, SimOptions{
			Seed: 1, WarmupSec: 1, MeasureSec: 2, MaxClients: 16, Topology: &topo,
		})
		if err != nil {
			t.Fatalf("%s: %v", bal, err)
		}
		want := ana.Throughput * float64(boards) * racks
		if math.Abs(res.Throughput-want)/want > 1e-9 {
			t.Errorf("%s: cold-only throughput %g, want %g", bal, res.Throughput, want)
		}
		if !res.QoSMet {
			t.Errorf("%s: cold-only fleet at the feasible point violates QoS", bal)
		}
		if res.Clients != 0 {
			t.Errorf("%s: cold racks report a closed-loop population %d", bal, res.Clients)
		}
		fb := res.Fleet
		if fb == nil || len(fb.RackResults) != racks || len(fb.HotIDs) != 0 {
			t.Fatalf("%s: breakdown wrong: %+v", bal, fb)
		}
		if math.Abs(fb.PerRackDemand-ana.Throughput*float64(boards)) > 1e-9*fb.PerRackDemand {
			t.Errorf("%s: per-rack demand %g, want %g", bal, fb.PerRackDemand, ana.Throughput*float64(boards))
		}
		if fb.ColdUnserved > 1e-9*fb.ColdDemand {
			t.Errorf("%s: feasible demand left unserved: %g of %g", bal, fb.ColdUnserved, fb.ColdDemand)
		}
		// Every rack is the same analytic rack: its latency is the fleet's.
		at, err := cfg.AnalyzeAt(p, fb.RackResults[0].Throughput/float64(boards))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.P95Latency-at.P95Latency) > 1e-12 {
			t.Errorf("%s: fleet p95 %g, analytic rack p95 %g", bal, res.P95Latency, at.P95Latency)
		}
	}
}

// TestFleetRouteColdPolicies: the balancer tier's routing is a pure
// function of (policy, demand, capacity). least-loaded spreads demand
// evenly, never exceeds a rack's cap, conserves demand (served plus
// unserved equals offered), and reports the overload excess; wrr
// passes the overload through so the analytic stand-in reports the
// saturation instead.
func TestFleetRouteColdPolicies(t *testing.T) {
	ll := FleetTopology{Balancer: BalancerLeastLoaded}
	assigned, unserved := ll.routeCold(4, 10, 8)
	served := 0.0
	for i, a := range assigned {
		if a > 8+1e-9 {
			t.Errorf("least-loaded: rack %d assigned %g above cap 8", i, a)
		}
		if math.Abs(a-assigned[0]) > 1e-9 {
			t.Errorf("least-loaded: uneven spread on identical racks: %v", assigned)
		}
		served += a
	}
	if math.Abs(served+unserved-40) > 1e-9 {
		t.Errorf("least-loaded: demand not conserved: served %g + unserved %g != 40", served, unserved)
	}
	if unserved < 40-4*8-1e-9 {
		t.Errorf("least-loaded: overload excess under-reported: unserved %g", unserved)
	}

	a2, u2 := ll.routeCold(4, 6, 8)
	if u2 != 0 {
		t.Errorf("least-loaded: feasible demand left %g unserved", u2)
	}
	for i, a := range a2 {
		if math.Abs(a-6) > 1e-9 {
			t.Errorf("least-loaded: feasible rack %d assigned %g, want 6", i, a)
		}
	}
	b2, _ := ll.routeCold(4, 6, 8)
	for i := range a2 {
		if a2[i] != b2[i] {
			t.Fatal("least-loaded routing is not deterministic")
		}
	}

	w := FleetTopology{Balancer: BalancerWRR}
	aw, uw := w.routeCold(4, 10, 8)
	if uw != 0 {
		t.Errorf("wrr must never drop demand, got unserved %g", uw)
	}
	for i, a := range aw {
		if a != 10 {
			t.Errorf("wrr: rack %d assigned %g, want the full 10", i, a)
		}
	}
}

// TestFleetUnservedViolatesQoS: demand the least-loaded policy could
// not place anywhere must mark the whole fleet QoS-violating even when
// every individual rack is healthy — dropped load is a violation.
func TestFleetUnservedViolatesQoS(t *testing.T) {
	topo := FleetTopology{Racks: 2, Rack: fleetTestRack(), Balancer: BalancerLeastLoaded}
	if err := topo.Normalize(); err != nil {
		t.Fatal(err)
	}
	ok := Result{QoSMet: true, Throughput: 5}

	res := topo.assemble(&FleetBreakdown{Racks: 2}, nil, []Result{ok, ok})
	if !res.QoSMet {
		t.Error("healthy fleet with no unserved demand reports violation")
	}
	res = topo.assemble(&FleetBreakdown{Racks: 2, ColdUnserved: 3}, nil, []Result{ok, ok})
	if res.QoSMet {
		t.Error("unserved demand must mark the fleet QoS-violating")
	}
	bad := Result{QoSMet: false, Throughput: 5, P95Latency: math.Inf(1), MeanLatency: math.Inf(1)}
	res = topo.assemble(&FleetBreakdown{Racks: 2}, nil, []Result{ok, bad})
	if res.QoSMet {
		t.Error("a saturated rack must mark the fleet QoS-violating")
	}
	if math.IsInf(res.MeanLatency, 0) || math.IsNaN(res.MeanLatency) {
		t.Errorf("fleet latency aggregation leaked the saturated rack's Inf: %g", res.MeanLatency)
	}
}

// TestFleetPartitionInvariance: the fleet export must be byte-identical
// at every shard count, every worker count, and every hot-set ordering
// — the rack discipline (DESIGN.md §6) lifted to fleet scope.
func TestFleetPartitionInvariance(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := testProfile()
	gen := workload.FixedGenerator{P: p}
	const racks = 100

	run := func(hotSet []int, shards, par int) ([]byte, []byte, []byte, Result) {
		t.Helper()
		topo := FleetTopology{
			Racks: racks, HotSet: append([]int(nil), hotSet...),
			Rack: fleetTestRack(), Balancer: BalancerLeastLoaded, Shards: shards,
		}
		sink := obs.NewSink()
		res, err := cfg.Simulate(gen, SimOptions{
			Seed: 13, WarmupSec: 2, MeasureSec: 6, MaxClients: 48,
			Obs: sink, SLOWindowSec: 2,
			Energy:      testEnergyConfig(2, power.DefaultIdleFractions()),
			Parallelism: par, Topology: &topo,
		})
		if err != nil {
			t.Fatalf("hotSet=%v shards=%d par=%d: %v", hotSet, shards, par, err)
		}
		return obsExport(t, sink), sloExport(t, res), energyExport(t, res), res
	}

	baseObs, baseSLO, baseEn, baseRes := run([]int{3, 97}, 2, 1)
	for _, v := range []struct {
		name   string
		hotSet []int
		shards int
		par    int
	}{
		{"shards=1", []int{3, 97}, 1, 1},
		{"shards=4", []int{3, 97}, 4, 1},
		{"par=4", []int{3, 97}, 2, 4},
		{"hot-set reversed", []int{97, 3}, 2, 1},
		{"shards=4 par=4 reversed", []int{97, 3}, 4, 4},
	} {
		gotObs, gotSLO, gotEn, res := run(v.hotSet, v.shards, v.par)
		if !bytes.Equal(gotObs, baseObs) {
			t.Errorf("%s: obs export differs from baseline", v.name)
		}
		if !bytes.Equal(gotSLO, baseSLO) {
			t.Errorf("%s: SLO export differs from baseline", v.name)
		}
		if !bytes.Equal(gotEn, baseEn) {
			t.Errorf("%s: energy export differs from baseline", v.name)
		}
		if res.Throughput != baseRes.Throughput || res.P95Latency != baseRes.P95Latency {
			t.Errorf("%s: result diverges: tput %g vs %g", v.name, res.Throughput, baseRes.Throughput)
		}
	}
}

// TestAnalyzeAtContract: the fixed-rate solver agrees with the
// bisection solver at its knife-edge, reports saturation honestly, and
// rejects the shapes it cannot model.
func TestAnalyzeAtContract(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := testProfile()

	ana, err := cfg.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	at, err := cfg.AnalyzeAt(p, ana.Throughput)
	if err != nil {
		t.Fatal(err)
	}
	if !at.QoSMet {
		t.Errorf("AnalyzeAt at the bisection operating point %g violates QoS (p95 %g vs %g)",
			ana.Throughput, at.P95Latency, p.QoSLatencySec)
	}
	if at.Throughput != ana.Throughput {
		t.Errorf("AnalyzeAt throughput %g echoes lambda %g wrongly", at.Throughput, ana.Throughput)
	}

	under, err := cfg.AnalyzeAt(p, ana.Throughput/2)
	if err != nil {
		t.Fatal(err)
	}
	if !under.QoSMet || under.P95Latency >= at.P95Latency {
		t.Errorf("half load must be comfortably feasible: %+v", under)
	}

	over, err := cfg.AnalyzeAt(p, ana.Throughput*1e3)
	if err != nil {
		t.Fatal(err)
	}
	if over.QoSMet || !math.IsInf(over.P95Latency, 1) {
		t.Errorf("saturated rack must report QoSMet=false with infinite latency: %+v", over)
	}

	if _, err := cfg.AnalyzeAt(batchProfile(), 1); err == nil {
		t.Error("AnalyzeAt accepted a batch profile")
	}
	if _, err := cfg.AnalyzeAt(p, -1); err == nil {
		t.Error("AnalyzeAt accepted a negative arrival rate")
	}
	if _, err := cfg.AnalyzeAt(p, math.NaN()); err == nil {
		t.Error("AnalyzeAt accepted a NaN arrival rate")
	}
}
