package cluster

import (
	"fmt"
	"math"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

// Config describes one evaluated server configuration: the platform, the
// storage subsystem serving its disk demands, and the memory-sharing
// slowdown (if the design keeps part of its memory on a remote memory
// blade, §3.4).
type Config struct {
	Server platform.Server
	// Storage overrides the platform's on-board disk when non-nil
	// (remote laptop disks, flash caches). Nil means the local disk.
	Storage Storage
	// MemSlowdown is the fractional execution slowdown from remote-page
	// faults (e.g. 0.02 for the paper's dynamic provisioning estimate).
	MemSlowdown float64
}

// storage resolves the effective storage subsystem.
func (c Config) storage() Storage {
	if c.Storage != nil {
		return c.Storage
	}
	return LocalDisk{Disk: c.Server.Disk}
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if c.MemSlowdown < 0 || c.MemSlowdown > 1 {
		return fmt.Errorf("cluster: memory slowdown %g outside [0,1]", c.MemSlowdown)
	}
	if f, ok := c.Storage.(FlashCachedDisk); ok {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Demands converts a sampled request into per-station service times on
// this configuration.
type Demands struct {
	// CPUSec is the on-core execution time (one core), including the
	// memory-sharing slowdown.
	CPUSec float64
	// DiskSec is the storage-station occupancy.
	DiskSec float64
	// NetSec is the NIC serialization time.
	NetSec float64
}

// Total returns the zero-load response time (sum of service times).
func (d Demands) Total() float64 { return d.CPUSec + d.DiskSec + d.NetSec }

// DemandsFor maps a request's abstract demands onto this configuration.
//
// The CPU term divides the reference-core seconds by the platform's
// relative core speed for this workload and inflates it by the multicore
// contention factor m^(1-beta) — so that m cores deliver m^beta
// core-equivalents in aggregate, matching Profile.EffectiveCores — and
// by the memory-sharing slowdown.
func (c Config) DemandsFor(p workload.Profile, req workload.Request) Demands {
	rel := p.RelativeCoreSpeed(c.Server.CPU)
	cores := float64(c.Server.CPU.Cores())
	inflate := math.Pow(cores, 1-p.CoreScalingBeta)
	cpu := req.CPURefSec / rel * inflate * (1 + c.MemSlowdown)
	return Demands{
		CPUSec:  cpu,
		DiskSec: ServiceTime(c.storage(), req),
		NetSec:  req.NetBytes / c.Server.NIC.BytesPerSec(),
	}
}

// MeanDemands maps the profile's mean request onto this configuration.
func (c Config) MeanDemands(p workload.Profile) Demands {
	return c.DemandsFor(p, p.MeanRequest())
}
