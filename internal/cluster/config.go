package cluster

import (
	"fmt"
	"math"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

// Config describes one evaluated server configuration: the platform, the
// storage subsystem serving its disk demands, and the memory-sharing
// slowdown (if the design keeps part of its memory on a remote memory
// blade, §3.4).
type Config struct {
	Server platform.Server
	// Storage overrides the platform's on-board disk when non-nil
	// (remote laptop disks, flash caches). Nil means the local disk.
	Storage Storage
	// MemSlowdown is the fractional execution slowdown from remote-page
	// faults (e.g. 0.02 for the paper's dynamic provisioning estimate).
	MemSlowdown float64
}

// storage resolves the effective storage subsystem.
func (c Config) storage() Storage {
	if c.Storage != nil {
		return c.Storage
	}
	return LocalDisk{Disk: c.Server.Disk}
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if c.MemSlowdown < 0 || c.MemSlowdown > 1 {
		return fmt.Errorf("cluster: memory slowdown %g outside [0,1]", c.MemSlowdown)
	}
	if f, ok := c.Storage.(FlashCachedDisk); ok {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Demands converts a sampled request into per-station service times on
// this configuration.
type Demands struct {
	// CPUSec is the on-core execution time (one core), including the
	// memory-sharing slowdown.
	CPUSec float64
	// DiskSec is the storage-station occupancy.
	DiskSec float64
	// NetSec is the NIC serialization time.
	NetSec float64
}

// Total returns the zero-load response time (sum of service times).
func (d Demands) Total() float64 { return d.CPUSec + d.DiskSec + d.NetSec }

// DemandsFor maps a request's abstract demands onto this configuration.
//
// The CPU term divides the reference-core seconds by the platform's
// relative core speed for this workload and inflates it by the multicore
// contention factor m^(1-beta) — so that m cores deliver m^beta
// core-equivalents in aggregate, matching Profile.EffectiveCores — and
// by the memory-sharing slowdown.
func (c Config) DemandsFor(p workload.Profile, req workload.Request) Demands {
	return c.demandModelFor(p).For(req)
}

// demandModel caches the per-(config, profile) constants of DemandsFor
// so the per-request mapping is pure arithmetic: no math.Pow, and no
// re-boxing of the storage subsystem into its interface on every
// request. Trial loops build one model up front and call For per
// request.
type demandModel struct {
	rel       float64
	inflate   float64
	memFactor float64
	st        Storage
	netBps    float64
}

func (c Config) demandModelFor(p workload.Profile) demandModel {
	return demandModel{
		rel:       p.RelativeCoreSpeed(c.Server.CPU),
		inflate:   math.Pow(float64(c.Server.CPU.Cores()), 1-p.CoreScalingBeta),
		memFactor: 1 + c.MemSlowdown,
		st:        c.storage(),
		netBps:    c.Server.NIC.BytesPerSec(),
	}
}

// For maps one request. The CPU expression keeps the exact operation
// order of the original inline computation (divide, then the two
// multiplies left to right) so demands stay bit-identical.
func (m demandModel) For(req workload.Request) Demands {
	return Demands{
		CPUSec:  req.CPURefSec / m.rel * m.inflate * m.memFactor,
		DiskSec: ServiceTime(m.st, req),
		NetSec:  req.NetBytes / m.netBps,
	}
}

// MeanDemands maps the profile's mean request onto this configuration.
func (c Config) MeanDemands(p workload.Profile) Demands {
	return c.DemandsFor(p, p.MeanRequest())
}
