package cluster

import (
	"warehousesim/internal/des"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// This file is the allocation-light trial engine behind Config.Simulate.
//
// The continuation-passing style of the DES kernel originally paid for
// itself in closures: every request allocated an issue closure, a
// completion closure, and three per-stage closures. The records below
// hoist all of that captured state into structs whose continuation
// Actions are bound once, when the record is created, and reused for
// every subsequent request — so the steady-state request path allocates
// nothing. A trialCtx owns one Sim and one server binding and is reused
// across the trials of an adaptive search via Sim.Reset/Resource.Reset,
// so the event heap, pools, and client records amortize across the
// whole search.
//
// Every method mirrors the retired closure bodies statement for
// statement: the same RNG draw order, the same Submit calls, the same
// recorder emission order. Same-seed trajectories — and therefore obs,
// trace, and attribution exports — are byte-identical to the pre-pool
// implementation (the cluster and span golden tests pin this).

// reqFlow walks one request through cpu -> disk -> net with bound-once
// continuations. A flow belongs to exactly one issuer (a closed-loop
// client or a batch task slot), which owns it for the request's whole
// lifetime; finish fires at completion with the residence time.
type reqFlow struct {
	srv    *simServer
	finish func(latency float64)

	d     Demands
	start des.Time

	// traced-request state (set by serveTraced).
	tracer  *span.Tracer
	memFrac float64
	req     int64
	root    int64
	submit  float64

	cpuFn, diskFn, netFn    des.Action
	tcpuFn, tdiskFn, tnetFn des.Action
}

func (f *reqFlow) init(srv *simServer, finish func(latency float64)) {
	f.srv = srv
	f.finish = finish
	f.cpuFn = f.cpuDone
	f.diskFn = f.diskDone
	f.netFn = f.netDone
	f.tcpuFn = f.tracedCPUDone
	f.tdiskFn = f.tracedDiskDone
	f.tnetFn = f.tracedNetDone
}

// serve runs one request through cpu -> disk -> net; finish fires with
// the total residence time.
//
//perf:hotpath
func (f *reqFlow) serve(d Demands) {
	f.d = d
	f.start = f.srv.sim.Now()
	f.srv.cpu.Submit(des.Time(d.CPUSec), f.cpuFn)
}

//perf:hotpath
func (f *reqFlow) cpuDone() { f.srv.disk.Submit(des.Time(f.d.DiskSec), f.diskFn) }

//perf:hotpath
func (f *reqFlow) diskDone() { f.srv.net.Submit(des.Time(f.d.NetSec), f.netFn) }

//perf:hotpath
func (f *reqFlow) netDone() { f.finish(float64(f.srv.sim.Now() - f.start)) }

// serveTraced mirrors serve exactly — same Submit calls, same delays,
// same event ordering, so a traced request follows the trajectory an
// untraced one would — and additionally records the request's causal
// span tree: a root request span plus queue/service spans per resource.
// Queue wait is recovered without touching the resource hot path: FIFO
// service is non-preemptive, so service started at completion-minus-
// service and everything between submit and that instant was queueing.
// memFrac > 0 carves the remote-memory share out of cpu service as a
// nested swap span (the §3.4 slowdown is folded into CPUSec; the span
// makes it attributable again).
//
//perf:hotpath
func (f *reqFlow) serveTraced(d Demands, tr *span.Tracer, req int64, memFrac float64) {
	f.d = d
	f.tracer = tr
	f.memFrac = memFrac
	f.req = req
	f.start = f.srv.sim.Now()
	f.root = tr.Begin(0, req, span.KindRequest, "request", float64(f.start))
	f.submit = float64(f.srv.sim.Now())
	f.srv.cpu.Submit(des.Time(d.CPUSec), f.tcpuFn)
}

// emitStage records the queue/service (and optional swap) spans of the
// stage that just completed on r.
//
//perf:hotpath
func (f *reqFlow) emitStage(r *des.Resource, svc, frac float64) {
	end := float64(f.srv.sim.Now())
	began := end - svc
	f.tracer.Emit(f.root, f.req, span.KindQueue, r.Name(), f.submit, began)
	sid := f.tracer.Emit(f.root, f.req, span.KindService, r.Name(), began, end)
	if frac > 0 {
		f.tracer.Emit(sid, f.req, span.KindSwap, "memblade", began, began+svc*frac)
	}
}

//perf:hotpath
func (f *reqFlow) tracedCPUDone() {
	f.emitStage(f.srv.cpu, f.d.CPUSec, f.memFrac)
	f.submit = float64(f.srv.sim.Now())
	f.srv.disk.Submit(des.Time(f.d.DiskSec), f.tdiskFn)
}

//perf:hotpath
func (f *reqFlow) tracedDiskDone() {
	f.emitStage(f.srv.disk, f.d.DiskSec, 0)
	f.submit = float64(f.srv.sim.Now())
	f.srv.net.Submit(des.Time(f.d.NetSec), f.tnetFn)
}

//perf:hotpath
func (f *reqFlow) tracedNetDone() {
	f.emitStage(f.srv.net, f.d.NetSec, 0)
	f.tracer.End(f.root, float64(f.srv.sim.Now()))
	f.finish(float64(f.srv.sim.Now() - f.start))
}

// client is one closed-loop client: think, issue, await completion,
// repeat. Records persist across the trials of a trialCtx; run reseeds
// the embedded RNG per trial, exactly reproducing the retired
// rng.Split() stream.
type client struct {
	t    *trialCtx
	rng  stats.RNG
	flow reqFlow

	startFn des.Action // the staggered first wake-up (== next)
	issueFn des.Action
}

func newClient(t *trialCtx) *client {
	c := &client{t: t}
	c.flow.init(t.srv, c.finish)
	c.startFn = c.next
	c.issueFn = c.issue
	return c
}

//perf:hotpath
func (c *client) next() {
	t := c.t
	if t.think.Mean > 0 {
		t.sim.Schedule(des.Time(t.think.Sample(&c.rng)), c.issueFn)
	} else {
		c.issue()
	}
}

//perf:hotpath
func (c *client) issue() {
	t := c.t
	req := t.gen.Sample(&c.rng)
	d := t.dm.For(req)
	if t.tracer.Sampled(t.arrivals) {
		c.flow.serveTraced(d, t.tracer, t.arrivals, t.memFrac)
	} else {
		c.flow.serve(d)
	}
	t.arrivals++
}

//perf:hotpath
func (c *client) finish(latency float64) {
	t := c.t
	if t.measuring {
		t.hist.Add(latency)
		t.completed++
	}
	if !t.recording {
		c.next()
		return
	}
	violation := t.qosBound > 0 && latency > t.qosBound
	t.rec.Count("requests", 1)
	if violation {
		t.rec.Count("qos_violations", 1)
	}
	t.rec.Observe("latency_sec", latency)
	t.evFields[0] = obs.F("latency_sec", latency)
	t.evFields[1] = obs.FB("qos_violation", violation)
	t.evFields[2] = obs.FB("measured", t.measuring)
	t.rec.Event("request", float64(t.sim.Now()), t.evFields[:]...)
	c.next()
}

// trialCtx owns the reusable simulation state of one adaptive search:
// the kernel, the server binding, the latency histogram, and the client
// records. One ctx serves one trial at a time; concurrent trials (the
// speculative parallel ramp) each use their own ctx.
type trialCtx struct {
	cfg Config
	sim *des.Sim
	srv *simServer

	hist    *stats.Histogram
	rootRNG stats.RNG
	think   stats.Exponential
	dm      demandModel
	gen     workload.Generator

	measuring bool
	completed int

	// recording state, zeroed for uninstrumented trials.
	rec       obs.Recorder
	recording bool
	qosBound  float64
	memFrac   float64
	arrivals  int64
	tracer    *span.Tracer
	evFields  [3]obs.Field // scratch row for the per-request event stream

	clients []*client
}

func newTrialCtx(c Config) *trialCtx {
	t := &trialCtx{cfg: c}
	t.sim = des.NewSim()
	t.srv = c.newSimServer(t.sim)
	t.hist = stats.NewLatencyHistogram()
	return t
}

// run simulates nClients closed-loop clients and measures sustained
// throughput and latency percentiles over the measurement window. With a
// live recorder it also emits the per-request event stream and attaches
// the kernel/resource timeline probes; recording only observes, so the
// outcome is identical to an uninstrumented trial at the same seed.
func (t *trialCtx) run(gen workload.Generator, p workload.Profile, nClients int, opt SimOptions, seed uint64, rec obs.Recorder) trialOutcome {
	t.sim.Reset()
	t.srv.cpu.Reset()
	t.srv.disk.Reset()
	t.srv.net.Reset()
	t.hist.Reset()
	t.rootRNG.Seed(seed)
	t.dm = t.cfg.demandModelFor(p)
	t.think = stats.Exponential{Mean: p.ThinkTimeSec}
	t.measuring = false
	t.completed = 0
	t.arrivals = 0

	t.rec = rec
	t.recording = obs.On(rec)
	t.gen = gen
	if t.recording {
		t.gen = workload.Instrument(gen, rec)
	}
	// tracer stays nil unless the run both records and asked for spans;
	// every tracer method no-ops on nil, so the recording-but-untraced
	// path pays one nil check per request.
	t.tracer = nil
	if t.recording && opt.TraceEvery > 0 {
		t.tracer = span.NewTracer(rec, opt.TraceEvery)
	}
	t.qosBound = p.QoSLatencySec
	t.memFrac = t.cfg.memSwapFraction()

	for len(t.clients) < nClients {
		t.clients = append(t.clients, newClient(t))
	}
	for i := 0; i < nClients; i++ {
		cl := t.clients[i]
		cl.rng.Seed(t.rootRNG.Uint64())
		// Stagger initial arrivals across one think time to avoid a
		// synchronized thundering herd at t=0.
		t.sim.Schedule(des.Time(t.rootRNG.Float64()*(p.ThinkTimeSec+0.01)), cl.startFn)
	}

	var probes *des.Probes
	if t.recording {
		probes = des.NewProbes(t.sim, rec, des.Time(opt.ProbeIntervalSec))
		probes.Watch(t.srv.cpu, t.srv.disk, t.srv.net)
		probes.OnTick = opt.OnProbeTick
		probes.Start()
	}

	t.sim.Run(des.Time(opt.WarmupSec))
	t.measuring = true
	t.srv.cpu.ResetWindow()
	t.srv.disk.ResetWindow()
	t.srv.net.ResetWindow()
	t.sim.Run(des.Time(opt.WarmupSec + opt.MeasureSec))
	if t.recording {
		probes.Stop()
		// Requests still in flight at the horizon leave their root spans
		// open; export them truncated rather than dropping them.
		t.tracer.FlushOpen(float64(t.sim.Now()))
		rec.Count("des.events", int64(t.sim.Fired()))
		rec.Count("trial.clients", int64(nClients))
	}

	out := trialOutcome{
		throughput:  float64(t.completed) / opt.MeasureSec,
		meanLatency: t.hist.Mean(),
		p95Latency:  t.hist.Quantile(p.QoSPercentile),
		utilization: map[string]float64{
			"cpu":  t.srv.cpu.Utilization(),
			"disk": t.srv.disk.Utilization(),
			"net":  t.srv.net.Utilization(),
		},
	}
	if p.QoSLatencySec > 0 {
		out.qosMet = out.p95Latency <= p.QoSLatencySec && t.hist.Count() > 0
	} else {
		out.qosMet = true
	}
	return out
}
