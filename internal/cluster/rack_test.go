package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func rackTopology(shards int) *ShardedTopology {
	return &ShardedTopology{Enclosures: 4, BoardsPerEnclosure: 2, ClientsPerBoard: 2, Shards: shards}
}

func rackOptions(shards int, rec obs.Recorder) SimOptions {
	return SimOptions{
		Seed: 7, WarmupSec: 2, MeasureSec: 10, MaxClients: 64,
		Obs: rec, ProbeIntervalSec: 0.5, TraceEvery: 50,
		Topology: rackTopology(shards),
	}
}

// rackRun simulates the reference rack at the given shard count and
// returns the Result plus the recorded export bytes.
func rackRun(t *testing.T, p workload.Profile, shards int) (Result, []byte) {
	t.Helper()
	cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
	sink := obs.NewSink()
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, rackOptions(shards, sink))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestRackShardInvarianceInteractive is the acceptance gate of the
// sharded kernel: the same interactive rack run must produce
// DeepEqual Results and byte-identical obs exports at every legal
// shard count.
func TestRackShardInvarianceInteractive(t *testing.T) {
	p := testProfile()
	ref, refExport := rackRun(t, p, 1)
	if ref.Throughput <= 0 || ref.Clients != 4*2*2 {
		t.Fatalf("degenerate reference result: %+v", ref)
	}
	for _, shards := range []int{2, 3, 4} {
		res, export := rackRun(t, p, shards)
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("shards=%d result differs:\n  1: %+v\n  %d: %+v", shards, ref, shards, res)
		}
		if !bytes.Equal(refExport, export) {
			t.Errorf("shards=%d export differs from shards=1 (%d vs %d bytes)",
				shards, len(refExport), len(export))
		}
	}
}

// TestRackShardInvarianceBatch: the mapreduce job — with its
// cross-enclosure shuffle and shard-0 aggregator — must likewise be
// partition-independent, including the recorded replay.
func TestRackShardInvarianceBatch(t *testing.T) {
	p := batchProfile()
	p.JobRequests = 300
	ref, refExport := rackRun(t, p, 1)
	if ref.ExecTime <= 0 {
		t.Fatalf("degenerate reference result: %+v", ref)
	}
	for _, shards := range []int{2, 4} {
		res, export := rackRun(t, p, shards)
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("shards=%d result differs:\n  1: %+v\n  %d: %+v", shards, ref, shards, res)
		}
		if !bytes.Equal(refExport, export) {
			t.Errorf("shards=%d export differs from shards=1 (%d vs %d bytes)",
				shards, len(refExport), len(export))
		}
	}
}

// TestRackObsDoesNotChangeResult: recording a rack run must leave the
// reported numbers untouched, same as the flat model.
func TestRackObsDoesNotChangeResult(t *testing.T) {
	cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
	gen := workload.FixedGenerator{P: testProfile()}
	plain, err := cfg.Simulate(gen, rackOptions(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	probed, err := cfg.Simulate(gen, rackOptions(2, obs.NewSink()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput != probed.Throughput || plain.MeanLatency != probed.MeanLatency ||
		plain.P95Latency != probed.P95Latency || plain.Clients != probed.Clients {
		t.Fatalf("obs changed the rack result:\nplain  %+v\nprobed %+v", plain, probed)
	}
}

// TestRackShardDiag: engine diagnostics land in ShardDiag, not in the
// byte-compared export.
func TestRackShardDiag(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	diag := obs.NewSink()
	opt := rackOptions(4, nil)
	opt.ShardDiag = diag
	if _, err := cfg.Simulate(workload.FixedGenerator{P: testProfile()}, opt); err != nil {
		t.Fatal(err)
	}
	if diag.CounterValue("shard.windows.s0") == 0 {
		t.Fatal("no shard.windows diagnostic recorded")
	}
	if diag.CounterValue("shard.fired.s0") == 0 {
		t.Fatal("no shard.fired diagnostic recorded")
	}
}

// TestRackSingleEnclosure: the degenerate one-enclosure rack still runs
// (Shards clamps to 1) and zero think time — the tightest event cadence
// the model produces — does not deadlock the exchange.
func TestRackSingleEnclosure(t *testing.T) {
	p := testProfile()
	p.ThinkTimeSec = 0
	cfg := Config{Server: platform.Desk()}
	opt := rackOptions(8, nil)
	opt.Topology = &ShardedTopology{Enclosures: 1, BoardsPerEnclosure: 2, ClientsPerBoard: 1, Shards: 8}
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

// statefulGen lacks the Stateless marker — stands in for the engine
// generators the rack model must refuse.
type statefulGen struct{ p workload.Profile }

func (g statefulGen) Profile() workload.Profile          { return g.p }
func (g statefulGen) Sample(*stats.RNG) workload.Request { return g.p.MeanRequest() }

// TestRackRejectsStatefulGenerator: rack runs sample the generator
// concurrently across shards and must refuse stateful ones.
func TestRackRejectsStatefulGenerator(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	if _, err := cfg.Simulate(statefulGen{p: testProfile()}, rackOptions(2, nil)); err == nil {
		t.Fatal("stateful generator accepted by rack model")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	o := SimOptions{Seed: 1, WarmupSec: 1, MeasureSec: 10, MaxClients: 8}
	n, err := o.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.ProbeIntervalSec != 1 || n.Parallelism != 1 {
		t.Fatalf("defaults not applied: %+v", n)
	}
	o.Topology = &ShardedTopology{Enclosures: 4, BoardsPerEnclosure: 1, Shards: 9}
	n, err = o.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nt := n.Topology.(*ShardedTopology)
	if nt.Shards != 4 || nt.ClientsPerBoard != 4 || nt.SANDisks != 4 {
		t.Fatalf("topology defaults not applied: %+v", *nt)
	}
	if o.Topology.(*ShardedTopology).Shards != 9 {
		t.Fatal("Normalize mutated the caller's topology")
	}
}

// TestPlacementOf: the enclosure packing is a pure function of the
// normalized topology — block is the contiguous split, balanced is the
// LPT packer over board*client weights with the SAN pinned to shard 0
// repelling work — and a skewed rack is where the two must differ.
func TestPlacementOf(t *testing.T) {
	topo := ShardedTopology{
		Enclosures: 4, Boards: []int{5, 1, 1, 1}, ClientsPerBoard: 2,
		SANDisks: 4, Shards: 2,
	}
	if got := topo.PlacementOf(); !reflect.DeepEqual(got, []int{0, 0, 1, 1}) {
		t.Errorf("block placement = %v", got)
	}
	topo.Placement = PlacementBalanced
	// Weights 11,3,3,3 against a SAN bias of 5 on shard 0: the giant
	// goes to the empty shard 1, the small enclosures fill shard 0.
	if got := topo.PlacementOf(); !reflect.DeepEqual(got, []int{1, 0, 0, 0}) {
		t.Errorf("balanced placement = %v", got)
	}
	for i := 0; i < 3; i++ {
		if again := topo.PlacementOf(); !reflect.DeepEqual(again, []int{1, 0, 0, 0}) {
			t.Fatalf("placement not deterministic: %v", again)
		}
	}
}

// TestRackPlacementInvariance is the tentpole acceptance gate in full:
// a skewed heterogeneous rack (one 5-board enclosure plus three
// 1-board ones) must produce DeepEqual Results and byte-identical
// obs, SLO, and energy exports at shards 1/2/4 under both placements.
func TestRackPlacementInvariance(t *testing.T) {
	p := testProfile()
	run := func(shards int, placement string) (Result, []byte, []byte, []byte) {
		cfg := Config{Server: platform.Desk(), MemSlowdown: 0.05}
		sink := obs.NewSink()
		opt := rackOptions(shards, sink)
		opt.Topology = &ShardedTopology{
			Enclosures: 4, Boards: []int{5, 1, 1, 1}, ClientsPerBoard: 2,
			Shards: shards, Placement: placement,
		}
		opt.SLOWindowSec = 1
		opt.Energy = testEnergyConfig(1, power.DefaultIdleFractions())
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		slo, en := sloExport(t, res), energyExport(t, res)
		// The collector handles are fresh pointers per run; the exports
		// above already compare their contents byte for byte.
		res.SLO, res.SLOParts, res.Energy, res.EnergyParts = nil, nil, nil, nil
		return res, buf.Bytes(), slo, en
	}
	ref, refObs, refSLO, refEnergy := run(1, PlacementBlock)
	if ref.Throughput <= 0 || ref.Clients != (5+1+1+1)*2 {
		t.Fatalf("degenerate reference result: %+v", ref)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, placement := range []string{PlacementBlock, PlacementBalanced} {
			if shards == 1 && placement == PlacementBlock {
				continue // the reference itself
			}
			res, obsB, slo, en := run(shards, placement)
			if !reflect.DeepEqual(ref, res) {
				t.Errorf("shards=%d %s: result differs:\n  ref: %+v\n  got: %+v", shards, placement, ref, res)
			}
			if !bytes.Equal(refObs, obsB) {
				t.Errorf("shards=%d %s: obs export differs (%d vs %d bytes)", shards, placement, len(refObs), len(obsB))
			}
			if !bytes.Equal(refSLO, slo) {
				t.Errorf("shards=%d %s: SLO export differs (%d vs %d bytes)", shards, placement, len(refSLO), len(slo))
			}
			if !bytes.Equal(refEnergy, en) {
				t.Errorf("shards=%d %s: energy export differs (%d vs %d bytes)", shards, placement, len(refEnergy), len(en))
			}
		}
	}
}

func TestNormalizeRejectsBadTopology(t *testing.T) {
	for _, topo := range []ShardedTopology{
		{Enclosures: 0, BoardsPerEnclosure: 1},
		{Enclosures: 1, BoardsPerEnclosure: 0},
		{Enclosures: 1, BoardsPerEnclosure: 1, ClientsPerBoard: -1},
		{Enclosures: 1, BoardsPerEnclosure: 1, SANDisks: -2},
		{Enclosures: 2, Boards: []int{1}},
		{Enclosures: 2, Boards: []int{1, 0}},
		{Enclosures: 1, BoardsPerEnclosure: 1, Placement: "spiral"},
	} {
		topo := topo
		o := SimOptions{Seed: 1, WarmupSec: 1, MeasureSec: 10, MaxClients: 8, Topology: &topo}
		if _, err := o.Normalize(); err == nil {
			t.Errorf("topology %+v accepted", topo)
		}
	}
}
