package cluster

import (
	"math"
	"testing"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func quickSimOptions() SimOptions {
	return SimOptions{Seed: 7, WarmupSec: 10, MeasureSec: 60, MaxClients: 2048}
}

func TestSimulateInteractiveBasics(t *testing.T) {
	gen := workload.FixedGenerator{P: testProfile()}
	cfg := Config{Server: platform.Desk()}
	res, err := cfg.Simulate(gen, quickSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMet {
		t.Fatal("desk should meet 0.5s QoS on 20ms requests")
	}
	if res.Throughput <= 0 || res.Clients <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.P95Latency > testProfile().QoSLatencySec {
		t.Errorf("reported p95 %g violates QoS", res.P95Latency)
	}
}

func TestSimulateDeterministicAcrossRuns(t *testing.T) {
	gen := workload.FixedGenerator{P: testProfile()}
	cfg := Config{Server: platform.Emb1()}
	a, err := cfg.Simulate(gen, quickSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Simulate(gen, quickSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Clients != b.Clients {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestSimulateBatch(t *testing.T) {
	p := batchProfile()
	p.JobRequests = 500
	gen := workload.FixedGenerator{P: p}
	cfg := Config{Server: platform.Srvr2()}
	res, err := cfg.Simulate(gen, quickSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatalf("batch exec time = %g", res.ExecTime)
	}
	if math.Abs(res.Perf-1/res.ExecTime) > 1e-12 {
		t.Error("batch perf inconsistent with exec time")
	}
}

func TestSimulateBatchFasterOnBiggerMachine(t *testing.T) {
	p := batchProfile()
	p.JobRequests = 400
	gen := workload.FixedGenerator{P: p}
	big, err := Config{Server: platform.Srvr1()}.Simulate(gen, quickSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	small, err := Config{Server: platform.Emb1()}.Simulate(gen, quickSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if big.ExecTime >= small.ExecTime {
		t.Errorf("srvr1 (%gs) not faster than emb1 (%gs)", big.ExecTime, small.ExecTime)
	}
}

func TestSimulateRejectsBadOptions(t *testing.T) {
	gen := workload.FixedGenerator{P: testProfile()}
	cfg := Config{Server: platform.Desk()}
	for _, opt := range []SimOptions{
		{Seed: 1, WarmupSec: -1, MeasureSec: 10, MaxClients: 10},
		{Seed: 1, WarmupSec: 1, MeasureSec: 0, MaxClients: 10},
		{Seed: 1, WarmupSec: 1, MeasureSec: 10, MaxClients: 0},
	} {
		if _, err := cfg.Simulate(gen, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

// Cross-validation (DESIGN.md §5): the analytic solver and the DES must
// agree on sustained throughput within a modest tolerance for both an
// interactive and a batch workload on several platforms.
func TestAnalyticMatchesDES(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	p := testProfile()
	gen := workload.FixedGenerator{P: p}
	for _, s := range []platform.Server{platform.Srvr1(), platform.Desk(), platform.Emb1()} {
		cfg := Config{Server: s}
		ana, err := cfg.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cfg.Simulate(gen, SimOptions{Seed: 11, WarmupSec: 20, MeasureSec: 120, MaxClients: 4096})
		if err != nil {
			t.Fatal(err)
		}
		ratio := sim.Throughput / ana.Throughput
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%s: DES %.1f rps vs analytic %.1f rps (ratio %.2f)",
				s.Name, sim.Throughput, ana.Throughput, ratio)
		}
	}
}

func TestAnalyticMatchesDESBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	p := batchProfile()
	gen := workload.FixedGenerator{P: p, Deterministic: true}
	for _, s := range []platform.Server{platform.Srvr2(), platform.Emb1()} {
		cfg := Config{Server: s}
		ana, err := cfg.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cfg.Simulate(gen, quickSimOptions())
		if err != nil {
			t.Fatal(err)
		}
		ratio := sim.ExecTime / ana.ExecTime
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: DES exec %.1fs vs analytic %.1fs (ratio %.2f)",
				s.Name, sim.ExecTime, ana.ExecTime, ratio)
		}
	}
}

func TestBottleneckOf(t *testing.T) {
	if got := bottleneckOf(map[string]float64{"cpu": 0.9, "disk": 0.2, "net": 0.1}); got != "cpu" {
		t.Errorf("bottleneck = %s", got)
	}
	if got := bottleneckOf(map[string]float64{"cpu": 0.1, "disk": 0.95, "net": 0.1}); got != "disk" {
		t.Errorf("bottleneck = %s", got)
	}
}
