package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// statefulGenerator wraps FixedGenerator with a mutation per Sample, and
// does NOT implement workload.StatelessGenerator — the speculative ramp
// must refuse to parallelize it.
type statefulGenerator struct {
	g workload.FixedGenerator
	n int
}

func (s *statefulGenerator) Profile() workload.Profile { return s.g.Profile() }
func (s *statefulGenerator) Sample(r *stats.RNG) workload.Request {
	s.n++
	return s.g.Sample(r)
}

func parTestOptions() SimOptions {
	return SimOptions{Seed: 11, WarmupSec: 2, MeasureSec: 10, MaxClients: 64}
}

func simulateAt(t *testing.T, par int, rec obs.Recorder) Result {
	t.Helper()
	cfg := Config{Server: platform.Desk()}
	opt := parTestOptions()
	opt.Parallelism = par
	opt.Obs = rec
	if obs.On(rec) {
		opt.TraceEvery = 2
		opt.ProbeIntervalSec = 0.5
	}
	res, err := cfg.Simulate(workload.FixedGenerator{P: workload.WebsearchProfile()}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelSearchMatchesSequential is the determinism contract of
// SimOptions.Parallelism: any worker count yields the same Result.
func TestParallelSearchMatchesSequential(t *testing.T) {
	seq := simulateAt(t, 1, nil)
	for _, par := range []int{2, 4} {
		if got := simulateAt(t, par, nil); !reflect.DeepEqual(got, seq) {
			t.Fatalf("Parallelism=%d result %+v != sequential %+v", par, got, seq)
		}
	}
}

// TestParallelSearchExportIsByteIdentical extends the contract to the
// instrumented replay: the obs export (and with it the span stream that
// feeds trace/attribution artifacts) must not move with Parallelism.
func TestParallelSearchExportIsByteIdentical(t *testing.T) {
	export := func(par int) []byte {
		sink := obs.NewSink()
		simulateAt(t, par, sink)
		var buf bytes.Buffer
		if err := sink.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := export(1)
	if par4 := export(4); !bytes.Equal(seq, par4) {
		t.Fatal("obs export differs between Parallelism=1 and Parallelism=4")
	}
}

// TestStatefulGeneratorStaysSequential: a generator without the
// stateless marker must take the sequential path (speculative trials
// would consume its internal state out of order), so its result matches
// an explicitly sequential run.
func TestStatefulGeneratorStaysSequential(t *testing.T) {
	run := func(par int) (Result, int) {
		cfg := Config{Server: platform.Desk()}
		opt := parTestOptions()
		opt.Parallelism = par
		gen := &statefulGenerator{g: workload.FixedGenerator{P: workload.WebsearchProfile()}}
		res, err := cfg.Simulate(gen, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res, gen.n
	}
	seqRes, seqN := run(1)
	parRes, parN := run(4)
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("stateful generator: par result %+v != sequential %+v", parRes, seqRes)
	}
	if seqN != parN {
		t.Fatalf("stateful generator consumed %d samples under par, %d sequential — parallel path must not engage", parN, seqN)
	}
}

// TestBatchParallelismIgnored: batch jobs are one deterministic run;
// Parallelism must not change them.
func TestBatchParallelismIgnored(t *testing.T) {
	p := workload.MapReduceWCProfile()
	p.JobRequests = 200
	run := func(par int) Result {
		cfg := Config{Server: platform.Desk()}
		opt := SimOptions{Seed: 3, WarmupSec: 1, MeasureSec: 10, MaxClients: 8, Parallelism: par}
		res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
		t.Fatalf("batch result moved with Parallelism: %+v vs %+v", a, b)
	}
}
