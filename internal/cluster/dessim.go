package cluster

import (
	"fmt"
	"math"
	"sync"

	"warehousesim/internal/des"
	"warehousesim/internal/des/shard"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// SimOptions controls a discrete-event simulation run.
type SimOptions struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// WarmupSec of simulated time are discarded before measuring.
	WarmupSec float64
	// MeasureSec is the measurement window length.
	MeasureSec float64
	// MaxClients caps the adaptive client driver's search.
	MaxClients int
	// BatchConcurrency is the task parallelism for batch jobs (the paper
	// runs Hadoop with 4 threads per CPU); 0 means 4 x cores.
	BatchConcurrency int

	// Parallelism is the number of worker goroutines the adaptive
	// client driver may use to run its ramp trials speculatively (each
	// trial stays single-threaded and seeded). 0 or 1 is fully
	// sequential. Results are identical for every value: speculative
	// trials reproduce the sequential seed schedule exactly and are
	// consumed in sequential order, with work beyond the sequential
	// stopping point discarded. Speculation requires a generator that
	// advertises workload.IsStateless; stateful generators silently use
	// the sequential path.
	Parallelism int

	// Obs, when non-nil and enabled, receives the observability streams
	// of the run: per-request latency/QoS events, resource utilization
	// and queue-length timelines, kernel event-rate probes, and demand
	// histograms. Recording never changes the reported result: for
	// interactive workloads the adaptive search runs uninstrumented and
	// the chosen operating point is replayed once (same seed, identical
	// trajectory) with the recorder attached.
	Obs obs.Recorder
	// ProbeIntervalSec is the sampling interval of the timeline probes
	// in simulated seconds; 0 means 1 s.
	ProbeIntervalSec float64

	// TraceEvery turns on causal span tracing in the instrumented run:
	// every Nth request by arrival index (1 = all, deterministic, no
	// RNG draws) records its span tree — request root, per-resource
	// queue wait and service, and the remote-memory share of cpu
	// service — on the "span" event stream of Obs. 0 disables tracing.
	TraceEvery int64
	// OnProbeTick, when non-nil, fires after every timeline-probe tick
	// of an instrumented run with the current simulated time — the
	// live-introspection publish hook. It must only read.
	OnProbeTick func(simNow float64)

	// Topology, when non-nil, switches Simulate from the flat
	// single-server model to the implementation's own: *ShardedTopology
	// runs one rack of enclosures on the sharded kernel (rack.go,
	// internal/des/shard); *FleetTopology runs a fleet of racks — hot
	// ones on full DES, cold ones on the analytic M/M/m stand-in —
	// joined by a load-balancer tier (fleet.go). Store a concrete
	// pointer directly; a typed-nil pointer in the interface would
	// defeat the nil check, so helpers that may return "no topology"
	// must return an untyped nil.
	Topology Topology

	// ShardDiag, when non-nil and enabled, receives the sharded
	// engine's per-shard synchronization diagnostics after a Topology
	// run: clock-skew and mailbox-depth series plus window and message
	// counters. These depend on goroutine scheduling, so they are kept
	// separate from Obs — the deterministic export stays byte-identical
	// at any shard count. Ignored without a Topology.
	ShardDiag obs.Recorder

	// SLOWindowSec, when > 0, turns on the windowed-SLO metrics plane:
	// the instrumented run additionally folds its request, utilization,
	// and hit-rate streams into tumbling windows of this width over
	// simulated time (see internal/obs/window), the QoS episode summary
	// is emitted into Obs, and Result.SLO carries the merged collector.
	// Windowed collection rides the instrumented replay, so it requires
	// an enabled Obs and — like Obs itself — never changes the reported
	// result or the existing export streams.
	SLOWindowSec float64

	// Energy, when non-nil, turns on the time-resolved energy telemetry
	// plane: the instrumented run folds its utilization and request
	// streams into tumbling windows of Energy.WidthSec simulated
	// seconds, derives watts per window from Energy.Model's idle/active
	// split (see internal/obs/energy), emits the run's energy.* totals
	// into Obs, and Result.Energy carries the merged collector. Like the
	// windowed-SLO plane it rides the instrumented replay — it requires
	// an enabled Obs and never changes the reported result or the
	// existing export streams.
	Energy *energy.Config

	// OnLive, when non-nil, fires once per run just before the
	// instrumented simulation starts, handing the caller the live
	// introspection handles: the per-partition window collectors and,
	// for Topology runs, the shard engine's live counters. The handles
	// stay valid for the rest of the run; everything reachable through
	// them is safe to read concurrently with the simulation.
	OnLive func(LiveHandles)
}

// LiveHandles is what SimOptions.OnLive receives: read-only views that
// a live introspection server may poll while the run executes. SLO is
// nil when SLOWindowSec is off; ShardStats is nil for flat (non-
// Topology) runs.
type LiveHandles struct {
	// SLO holds the per-partition window collectors (one for flat runs;
	// one per enclosure plus the rack-global part for Topology runs).
	// Only Collector.LiveSummaries is safe concurrently.
	SLO []*window.Collector
	// Energy holds the per-partition energy collectors in the same part
	// order as SLO. Only Collector.LiveWindows is safe concurrently.
	Energy []*energy.Collector
	// ShardStats returns the engine's live per-shard counters.
	ShardStats func() []shard.LiveStats
	// Shards and LookaheadSec describe the engine behind ShardStats.
	Shards       int
	LookaheadSec float64
}

// DefaultSimOptions returns sensible defaults for validation runs.
func DefaultSimOptions() SimOptions {
	return SimOptions{Seed: 1, WarmupSec: 30, MeasureSec: 240, MaxClients: 4096}
}

// Normalize validates the options and resolves every defaulted field to
// its effective value: ProbeIntervalSec 0 becomes 1 s, Parallelism 0
// becomes 1 (sequential), and a Topology gets its own defaults filled
// in (see Topology.Normalize). It returns the resolved copy — the
// receiver is never mutated, and a non-nil Topology is replaced by a
// normalized clone rather than written through.
//
// Simulate calls Normalize on entry, so callers only need it when they
// want the effective values themselves (a CLI echoing the resolved
// probe interval, a test pinning defaults).
func (o SimOptions) Normalize() (SimOptions, error) {
	if o.WarmupSec < 0 || o.MeasureSec <= 0 {
		return o, fmt.Errorf("cluster: invalid sim window warmup=%g measure=%g", o.WarmupSec, o.MeasureSec)
	}
	if o.MaxClients <= 0 {
		return o, fmt.Errorf("cluster: MaxClients must be positive, got %d", o.MaxClients)
	}
	if o.ProbeIntervalSec < 0 {
		return o, fmt.Errorf("cluster: negative probe interval %g", o.ProbeIntervalSec)
	}
	if o.TraceEvery < 0 {
		return o, fmt.Errorf("cluster: negative trace sampling stride %d", o.TraceEvery)
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("cluster: negative parallelism %d", o.Parallelism)
	}
	if o.SLOWindowSec < 0 || math.IsInf(o.SLOWindowSec, 0) || math.IsNaN(o.SLOWindowSec) {
		return o, fmt.Errorf("cluster: invalid SLO window width %g", o.SLOWindowSec)
	}
	if o.Energy != nil {
		if _, err := energy.New(*o.Energy); err != nil {
			return o, fmt.Errorf("cluster: %w", err)
		}
	}
	if o.ProbeIntervalSec == 0 {
		o.ProbeIntervalSec = 1
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	if o.Topology != nil {
		t := o.Topology.clone()
		if err := t.Normalize(); err != nil {
			return o, err
		}
		o.Topology = t
	}
	return o, nil
}

// simServer binds the configuration's stations to a DES instance.
type simServer struct {
	sim  *des.Sim
	cpu  *des.Resource
	disk *des.Resource
	net  *des.Resource
}

func (c Config) newSimServer(sim *des.Sim) *simServer {
	return &simServer{
		sim:  sim,
		cpu:  des.NewResource(sim, "cpu", c.Server.CPU.Cores()),
		disk: des.NewResource(sim, "disk", 1),
		net:  des.NewResource(sim, "net", 1),
	}
}

// memSwapFraction is the share of cpu service time attributable to
// remote-memory page swaps: CPUSec includes the (1 + MemSlowdown)
// inflation, so the swap share is MemSlowdown/(1+MemSlowdown).
func (c Config) memSwapFraction() float64 {
	if c.MemSlowdown <= 0 {
		return 0
	}
	return c.MemSlowdown / (1 + c.MemSlowdown)
}

// newSLOCollector builds the windowed-SLO collector for one partition
// of an instrumented run, or nil when the plane is off (SLOWindowSec
// unset or no enabled recorder to ride). The window inherits the
// profile's QoS bound and percentile, so a window "violates" exactly
// when the bound the adaptive driver enforces globally is broken
// locally in time.
func newSLOCollector(p workload.Profile, opt SimOptions) (*window.Collector, error) {
	if opt.SLOWindowSec <= 0 || !obs.On(opt.Obs) {
		return nil, nil
	}
	return window.New(window.Config{
		WidthSec:      opt.SLOWindowSec,
		QoSLatencySec: p.QoSLatencySec,
		QoSPercentile: p.QoSPercentile,
	})
}

// newEnergyCollector builds the energy-telemetry collector for one
// partition of an instrumented run, or nil when the plane is off
// (Energy unset or no enabled recorder to ride).
func newEnergyCollector(opt SimOptions) (*energy.Collector, error) {
	if opt.Energy == nil || !obs.On(opt.Obs) {
		return nil, nil
	}
	return energy.New(*opt.Energy)
}

// trialOutcome summarizes one closed-loop trial at a fixed client count.
type trialOutcome struct {
	throughput  float64
	meanLatency float64
	p95Latency  float64
	qosMet      bool
	utilization map[string]float64
}

// Simulate measures the configuration's sustained performance on the
// generator's workload with the discrete-event model.
//
// For interactive workloads it reproduces the paper's adaptive client
// driver (§2.1): ramp the number of simultaneous clients up
// exponentially until QoS breaks, then binary-search the largest client
// count that still meets QoS, and report that operating point.
//
// For batch workloads it executes one job of Profile.JobRequests tasks
// at the configured concurrency and reports 1/execution-time.
func (c Config) Simulate(gen workload.Generator, opt SimOptions) (Result, error) {
	opt, err := opt.Normalize()
	if err != nil {
		return Result{}, err
	}
	p := gen.Profile()
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if opt.Topology != nil {
		return opt.Topology.simulate(c, gen, p, opt)
	}
	if p.Batch {
		return c.simulateBatch(gen, p, opt)
	}
	return c.simulateInteractive(gen, p, opt)
}

// rampCell is one speculative trial of the exponential ramp: the client
// count, the seed the sequential search would have used for it, and the
// outcome once run.
type rampCell struct {
	n    int
	seed uint64
	out  trialOutcome
}

// parallelRamp runs the exponential ramp's candidate client counts
// (1, 2, 4, ... <= MaxClients) speculatively across par workers, in
// waves, each candidate with the seed the sequential ramp would have
// given it (Seed+1, Seed+2, ...). Results are consumed strictly in
// candidate order and everything after the first QoS failure is
// discarded, so the returned prefix of good outcomes, the bracket, and
// the final seed-counter position are exactly what the sequential ramp
// produces. Trials never record, and each worker owns a private
// trialCtx, so the only shared state is the generator — which the
// caller has verified is stateless.
func (c Config) parallelRamp(gen workload.Generator, p workload.Profile, opt SimOptions, par int) (good []rampCell, lastGood, firstBad int, seed uint64) {
	var cells []rampCell
	for n := 1; n <= opt.MaxClients; n *= 2 {
		cells = append(cells, rampCell{n: n, seed: opt.Seed + uint64(len(cells)) + 1})
	}
	ctxs := make([]*trialCtx, par)
	for w := range ctxs {
		ctxs[w] = newTrialCtx(c)
	}

	seed = opt.Seed
	for lo := 0; lo < len(cells); lo += par {
		hi := lo + par
		if hi > len(cells) {
			hi = len(cells)
		}
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cell := &cells[i]
				cell.out = ctxs[i-lo].run(gen, p, cell.n, opt, cell.seed, nil)
			}(i)
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			seed = cells[i].seed
			if !cells[i].out.qosMet {
				firstBad = cells[i].n
				return good, lastGood, firstBad, seed
			}
			good = append(good, cells[i])
			lastGood = cells[i].n
		}
	}
	return good, lastGood, 0, seed
}

func (c Config) simulateInteractive(gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	ctx := newTrialCtx(c)
	seed := opt.Seed
	trial := func(n int) (trialOutcome, uint64) {
		seed++
		return ctx.run(gen, p, n, opt, seed, nil), seed
	}

	slo, err := newSLOCollector(p, opt)
	if err != nil {
		return Result{}, err
	}
	en, err := newEnergyCollector(opt)
	if err != nil {
		return Result{}, err
	}

	best := trialOutcome{}
	bestN := 0
	bestSeed := uint64(0)
	record := func(n int, t trialOutcome, s uint64) {
		if t.qosMet && t.throughput > best.throughput {
			best = t
			bestN = n
			bestSeed = s
		}
	}
	// replay re-runs the chosen operating point with the recorder
	// attached. Same seed, same trajectory: the instrumented replay's
	// outcome matches the recorded best exactly, so -obs never changes
	// the reported numbers. The windowed-SLO and energy tees wrap only
	// this replay — the search stays uninstrumented — so the window
	// streams are a pure function of the chosen operating point and the
	// seed.
	replay := func(n int, s uint64) {
		if !obs.On(opt.Obs) {
			return
		}
		rec := energy.NewTee(window.NewTee(opt.Obs, slo), en)
		if opt.OnLive != nil {
			handles := LiveHandles{}
			if slo != nil {
				handles.SLO = []*window.Collector{slo}
			}
			if en != nil {
				handles.Energy = []*energy.Collector{en}
			}
			opt.OnLive(handles)
		}
		ctx.run(gen, p, n, opt, s, rec)
	}
	// finishSLO seals the collectors at the replay's horizon, reduces
	// the SLO timeline to QoS episodes and the energy timeline to run
	// totals, and publishes both into the deterministic stream and the
	// result.
	finishSLO := func(res *Result) {
		if slo != nil {
			slo.Seal(opt.WarmupSec + opt.MeasureSec)
			slo.EmitEpisodes(opt.Obs, slo.Episodes())
			res.SLO = slo
		}
		if en != nil {
			en.Seal(opt.WarmupSec + opt.MeasureSec)
			en.EmitTotals(opt.Obs)
			res.Energy = en
		}
	}

	// Exponential ramp: speculative-parallel when allowed, else
	// sequential. Both produce the same bracket, best-candidate
	// bookkeeping, and seed-counter position.
	lastGood, firstBad := 0, 0
	if par := opt.Parallelism; par > 1 && workload.IsStateless(gen) {
		var good []rampCell
		good, lastGood, firstBad, seed = c.parallelRamp(gen, p, opt, par)
		for _, g := range good {
			record(g.n, g.out, g.seed)
		}
	} else {
		for n := 1; n <= opt.MaxClients; {
			t, s := trial(n)
			if t.qosMet {
				record(n, t, s)
				lastGood = n
				n *= 2
			} else {
				firstBad = n
				break
			}
		}
	}
	if lastGood == 0 {
		// QoS unreachable even with one client: report best effort at a
		// moderate load, mirroring the analytic path.
		t, s := trial(maxInt(1, opt.MaxClients/8))
		replay(maxInt(1, opt.MaxClients/8), s)
		res := Result{
			Throughput:  t.throughput,
			Perf:        t.throughput,
			QoSMet:      false,
			MeanLatency: t.meanLatency,
			P95Latency:  t.p95Latency,
			Bottleneck:  bottleneckOf(t.utilization),
			Utilization: t.utilization,
			Clients:     maxInt(1, opt.MaxClients/8),
		}
		finishSLO(&res)
		return res, nil
	}
	if firstBad == 0 {
		firstBad = opt.MaxClients + 1
	}

	// Binary search between lastGood and firstBad. Each probe depends on
	// the previous outcome, so this stays sequential at any Parallelism.
	lo, hi := lastGood, firstBad
	for hi-lo > maxInt(1, lo/50) {
		mid := (lo + hi) / 2
		t, s := trial(mid)
		if t.qosMet {
			record(mid, t, s)
			lo = mid
		} else {
			hi = mid
		}
	}

	replay(bestN, bestSeed)
	res := Result{
		Throughput:  best.throughput,
		Perf:        best.throughput,
		QoSMet:      true,
		MeanLatency: best.meanLatency,
		P95Latency:  best.p95Latency,
		Bottleneck:  bottleneckOf(best.utilization),
		Utilization: best.utilization,
		Clients:     bestN,
	}
	finishSLO(&res)
	return res, nil
}

// batchRun drives one batch job: a fixed set of task slots, each
// re-launching itself on completion until JobRequests tasks are done.
// Like the interactive trial engine (see trial.go), all per-task state
// lives in reused records so the steady-state task loop allocates
// nothing.
type batchRun struct {
	sim *des.Sim
	srv *simServer
	rng stats.RNG
	gen workload.Generator
	dm  demandModel

	remaining int
	done      int
	total     int
	finish    des.Time

	rec       obs.Recorder
	recording bool
	tracer    *span.Tracer
	memFrac   float64
	arrivals  int64
	evFields  [3]obs.Field
}

type batchTask struct {
	b    *batchRun
	flow reqFlow
}

func (t *batchTask) launch() {
	b := t.b
	if b.remaining == 0 {
		return
	}
	b.remaining--
	req := b.gen.Sample(&b.rng)
	d := b.dm.For(req)
	if !b.recording {
		t.flow.serve(d)
		return
	}
	if b.tracer.Sampled(b.arrivals) {
		t.flow.serveTraced(d, b.tracer, b.arrivals, b.memFrac)
	} else {
		t.flow.serve(d)
	}
	b.arrivals++
}

func (t *batchTask) finished(latency float64) {
	b := t.b
	if b.recording {
		b.rec.Count("requests", 1)
		b.rec.Observe("latency_sec", latency)
		b.evFields[0] = obs.F("latency_sec", latency)
		b.evFields[1] = obs.FB("qos_violation", false)
		b.evFields[2] = obs.FB("measured", true)
		b.rec.Event("request", float64(b.sim.Now()), b.evFields[:]...)
	}
	b.done++
	if b.done == b.total {
		b.finish = b.sim.Now()
		b.sim.Stop()
		return
	}
	t.launch()
}

func (c Config) simulateBatch(gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	b := &batchRun{}
	b.sim = des.NewSim()
	b.srv = c.newSimServer(b.sim)
	b.rng.Seed(opt.Seed)

	// Batch runs execute exactly once, so they are instrumented inline
	// (recording observes without perturbing the trajectory).
	slo, err := newSLOCollector(p, opt)
	if err != nil {
		return Result{}, err
	}
	en, err := newEnergyCollector(opt)
	if err != nil {
		return Result{}, err
	}
	rec := energy.NewTee(window.NewTee(opt.Obs, slo), en)
	b.rec = rec
	b.recording = obs.On(rec)
	b.gen = gen
	if b.recording {
		b.gen = workload.Instrument(gen, rec)
	}
	if b.recording && opt.TraceEvery > 0 {
		b.tracer = span.NewTracer(rec, opt.TraceEvery)
	}
	b.memFrac = c.memSwapFraction()
	b.dm = c.demandModelFor(p)
	b.remaining = p.JobRequests
	b.total = p.JobRequests

	concurrency := opt.BatchConcurrency
	if concurrency <= 0 {
		concurrency = 4 * c.Server.CPU.Cores() // Hadoop's 4 threads/CPU
	}

	var probes *des.Probes
	if b.recording {
		probes = des.NewProbes(b.sim, rec, des.Time(opt.ProbeIntervalSec))
		probes.Watch(b.srv.cpu, b.srv.disk, b.srv.net)
		probes.OnTick = opt.OnProbeTick
		probes.Start()
	}
	for i := 0; i < concurrency && i < p.JobRequests; i++ {
		t := &batchTask{b: b}
		t.flow.init(b.srv, t.finished)
		t.launch()
	}
	if b.recording && opt.OnLive != nil {
		handles := LiveHandles{}
		if slo != nil {
			handles.SLO = []*window.Collector{slo}
		}
		if en != nil {
			handles.Energy = []*energy.Collector{en}
		}
		opt.OnLive(handles)
	}
	b.sim.Run(des.Time(math.MaxFloat64))
	if b.recording {
		probes.Stop()
		b.tracer.FlushOpen(float64(b.sim.Now()))
		rec.Count("des.events", int64(b.sim.Fired()))
		rec.Count("trial.clients", int64(concurrency))
	}
	if b.done != p.JobRequests {
		return Result{}, fmt.Errorf("cluster: batch job stalled at %d/%d tasks", b.done, p.JobRequests)
	}

	exec := float64(b.finish)
	res := Result{
		Throughput: float64(p.JobRequests) / exec,
		Perf:       1 / exec,
		QoSMet:     true,
		ExecTime:   exec,
		Bottleneck: bottleneckOf(map[string]float64{
			"cpu": b.srv.cpu.Utilization(), "disk": b.srv.disk.Utilization(), "net": b.srv.net.Utilization(),
		}),
		Utilization: map[string]float64{
			"cpu": b.srv.cpu.Utilization(), "disk": b.srv.disk.Utilization(), "net": b.srv.net.Utilization(),
		},
		Clients: concurrency,
	}
	if slo != nil {
		slo.Seal(exec)
		slo.EmitEpisodes(opt.Obs, slo.Episodes())
		res.SLO = slo
	}
	if en != nil {
		en.Seal(exec)
		en.EmitTotals(opt.Obs)
		res.Energy = en
	}
	return res, nil
}

func bottleneckOf(util map[string]float64) string {
	best, bestU := "", -1.0
	for _, name := range [...]string{"cpu", "disk", "net"} {
		if u := util[name]; u > bestU {
			best, bestU = name, u
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
