package cluster

import (
	"fmt"
	"math"

	"warehousesim/internal/des"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// SimOptions controls a discrete-event simulation run.
type SimOptions struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// WarmupSec of simulated time are discarded before measuring.
	WarmupSec float64
	// MeasureSec is the measurement window length.
	MeasureSec float64
	// MaxClients caps the adaptive client driver's search.
	MaxClients int
	// BatchConcurrency is the task parallelism for batch jobs (the paper
	// runs Hadoop with 4 threads per CPU); 0 means 4 x cores.
	BatchConcurrency int
}

// DefaultSimOptions returns sensible defaults for validation runs.
func DefaultSimOptions() SimOptions {
	return SimOptions{Seed: 1, WarmupSec: 30, MeasureSec: 240, MaxClients: 4096}
}

func (o SimOptions) validate() error {
	if o.WarmupSec < 0 || o.MeasureSec <= 0 {
		return fmt.Errorf("cluster: invalid sim window warmup=%g measure=%g", o.WarmupSec, o.MeasureSec)
	}
	if o.MaxClients <= 0 {
		return fmt.Errorf("cluster: MaxClients must be positive, got %d", o.MaxClients)
	}
	return nil
}

// simServer binds the configuration's stations to a DES instance.
type simServer struct {
	sim  *des.Sim
	cpu  *des.Resource
	disk *des.Resource
	net  *des.Resource
}

func (c Config) newSimServer(sim *des.Sim) *simServer {
	return &simServer{
		sim:  sim,
		cpu:  des.NewResource(sim, "cpu", c.Server.CPU.Cores()),
		disk: des.NewResource(sim, "disk", 1),
		net:  des.NewResource(sim, "net", 1),
	}
}

// serve runs one request through cpu -> disk -> net and calls done with
// the total residence time.
func (s *simServer) serve(d Demands, done func(latency float64)) {
	start := s.sim.Now()
	s.cpu.Submit(des.Time(d.CPUSec), func() {
		s.disk.Submit(des.Time(d.DiskSec), func() {
			s.net.Submit(des.Time(d.NetSec), func() {
				done(float64(s.sim.Now() - start))
			})
		})
	})
}

// trialOutcome summarizes one closed-loop trial at a fixed client count.
type trialOutcome struct {
	throughput  float64
	meanLatency float64
	p95Latency  float64
	qosMet      bool
	utilization map[string]float64
}

// runTrial simulates nClients closed-loop clients and measures sustained
// throughput and latency percentiles over the measurement window.
func (c Config) runTrial(gen workload.Generator, p workload.Profile, nClients int, opt SimOptions, seed uint64) trialOutcome {
	sim := des.NewSim()
	srv := c.newSimServer(sim)
	rng := stats.NewRNG(seed)
	hist := stats.NewLatencyHistogram()

	measuring := false
	completed := 0

	think := stats.Exponential{Mean: p.ThinkTimeSec}
	var clientLoop func(r *stats.RNG)
	clientLoop = func(r *stats.RNG) {
		issue := func() {
			req := gen.Sample(r)
			d := c.DemandsFor(p, req)
			srv.serve(d, func(latency float64) {
				if measuring {
					hist.Add(latency)
					completed++
				}
				clientLoop(r)
			})
		}
		if p.ThinkTimeSec > 0 {
			sim.Schedule(des.Time(think.Sample(r)), issue)
		} else {
			issue()
		}
	}
	for i := 0; i < nClients; i++ {
		r := rng.Split()
		// Stagger initial arrivals across one think time to avoid a
		// synchronized thundering herd at t=0.
		sim.Schedule(des.Time(rng.Float64()*(p.ThinkTimeSec+0.01)), func() { clientLoop(r) })
	}

	sim.Run(des.Time(opt.WarmupSec))
	measuring = true
	srv.cpu.ResetWindow()
	srv.disk.ResetWindow()
	srv.net.ResetWindow()
	sim.Run(des.Time(opt.WarmupSec + opt.MeasureSec))

	out := trialOutcome{
		throughput:  float64(completed) / opt.MeasureSec,
		meanLatency: hist.Mean(),
		p95Latency:  hist.Quantile(p.QoSPercentile),
		utilization: map[string]float64{
			"cpu":  srv.cpu.Utilization(),
			"disk": srv.disk.Utilization(),
			"net":  srv.net.Utilization(),
		},
	}
	if p.QoSLatencySec > 0 {
		out.qosMet = out.p95Latency <= p.QoSLatencySec && hist.Count() > 0
	} else {
		out.qosMet = true
	}
	return out
}

// Simulate measures the configuration's sustained performance on the
// generator's workload with the discrete-event model.
//
// For interactive workloads it reproduces the paper's adaptive client
// driver (§2.1): ramp the number of simultaneous clients up
// exponentially until QoS breaks, then binary-search the largest client
// count that still meets QoS, and report that operating point.
//
// For batch workloads it executes one job of Profile.JobRequests tasks
// at the configured concurrency and reports 1/execution-time.
func (c Config) Simulate(gen workload.Generator, opt SimOptions) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	p := gen.Profile()
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if p.Batch {
		return c.simulateBatch(gen, p, opt)
	}
	return c.simulateInteractive(gen, p, opt)
}

func (c Config) simulateInteractive(gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	seed := opt.Seed
	trial := func(n int) trialOutcome {
		seed++
		return c.runTrial(gen, p, n, opt, seed)
	}

	best := trialOutcome{}
	bestN := 0
	record := func(n int, t trialOutcome) {
		if t.qosMet && t.throughput > best.throughput {
			best = t
			bestN = n
		}
	}

	// Exponential ramp.
	n := 1
	lastGood, firstBad := 0, 0
	for n <= opt.MaxClients {
		t := trial(n)
		if t.qosMet {
			record(n, t)
			lastGood = n
			n *= 2
		} else {
			firstBad = n
			break
		}
	}
	if lastGood == 0 {
		// QoS unreachable even with one client: report best effort at a
		// moderate load, mirroring the analytic path.
		t := trial(maxInt(1, opt.MaxClients/8))
		return Result{
			Throughput:  t.throughput,
			Perf:        t.throughput,
			QoSMet:      false,
			MeanLatency: t.meanLatency,
			P95Latency:  t.p95Latency,
			Bottleneck:  bottleneckOf(t.utilization),
			Utilization: t.utilization,
			Clients:     maxInt(1, opt.MaxClients/8),
		}, nil
	}
	if firstBad == 0 {
		firstBad = opt.MaxClients + 1
	}

	// Binary search between lastGood and firstBad.
	lo, hi := lastGood, firstBad
	for hi-lo > maxInt(1, lo/50) {
		mid := (lo + hi) / 2
		t := trial(mid)
		if t.qosMet {
			record(mid, t)
			lo = mid
		} else {
			hi = mid
		}
	}

	return Result{
		Throughput:  best.throughput,
		Perf:        best.throughput,
		QoSMet:      true,
		MeanLatency: best.meanLatency,
		P95Latency:  best.p95Latency,
		Bottleneck:  bottleneckOf(best.utilization),
		Utilization: best.utilization,
		Clients:     bestN,
	}, nil
}

func (c Config) simulateBatch(gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	sim := des.NewSim()
	srv := c.newSimServer(sim)
	rng := stats.NewRNG(opt.Seed)

	concurrency := opt.BatchConcurrency
	if concurrency <= 0 {
		concurrency = 4 * c.Server.CPU.Cores() // Hadoop's 4 threads/CPU
	}

	remaining := p.JobRequests
	done := 0
	var finish des.Time

	var launch func()
	launch = func() {
		if remaining == 0 {
			return
		}
		remaining--
		req := gen.Sample(rng)
		d := c.DemandsFor(p, req)
		srv.serve(d, func(float64) {
			done++
			if done == p.JobRequests {
				finish = sim.Now()
				sim.Stop()
				return
			}
			launch()
		})
	}
	for i := 0; i < concurrency && i < p.JobRequests; i++ {
		launch()
	}
	sim.Run(des.Time(math.MaxFloat64))
	if done != p.JobRequests {
		return Result{}, fmt.Errorf("cluster: batch job stalled at %d/%d tasks", done, p.JobRequests)
	}

	exec := float64(finish)
	return Result{
		Throughput: float64(p.JobRequests) / exec,
		Perf:       1 / exec,
		QoSMet:     true,
		ExecTime:   exec,
		Bottleneck: bottleneckOf(map[string]float64{
			"cpu": srv.cpu.Utilization(), "disk": srv.disk.Utilization(), "net": srv.net.Utilization(),
		}),
		Utilization: map[string]float64{
			"cpu": srv.cpu.Utilization(), "disk": srv.disk.Utilization(), "net": srv.net.Utilization(),
		},
		Clients: concurrency,
	}, nil
}

func bottleneckOf(util map[string]float64) string {
	best, bestU := "", -1.0
	for _, name := range [...]string{"cpu", "disk", "net"} {
		if u := util[name]; u > bestU {
			best, bestU = name, u
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
