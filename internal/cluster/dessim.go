package cluster

import (
	"fmt"
	"math"

	"warehousesim/internal/des"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// SimOptions controls a discrete-event simulation run.
type SimOptions struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// WarmupSec of simulated time are discarded before measuring.
	WarmupSec float64
	// MeasureSec is the measurement window length.
	MeasureSec float64
	// MaxClients caps the adaptive client driver's search.
	MaxClients int
	// BatchConcurrency is the task parallelism for batch jobs (the paper
	// runs Hadoop with 4 threads per CPU); 0 means 4 x cores.
	BatchConcurrency int

	// Obs, when non-nil and enabled, receives the observability streams
	// of the run: per-request latency/QoS events, resource utilization
	// and queue-length timelines, kernel event-rate probes, and demand
	// histograms. Recording never changes the reported result: for
	// interactive workloads the adaptive search runs uninstrumented and
	// the chosen operating point is replayed once (same seed, identical
	// trajectory) with the recorder attached.
	Obs obs.Recorder
	// ProbeIntervalSec is the sampling interval of the timeline probes
	// in simulated seconds; 0 means 1 s.
	ProbeIntervalSec float64

	// TraceEvery turns on causal span tracing in the instrumented run:
	// every Nth request by arrival index (1 = all, deterministic, no
	// RNG draws) records its span tree — request root, per-resource
	// queue wait and service, and the remote-memory share of cpu
	// service — on the "span" event stream of Obs. 0 disables tracing.
	TraceEvery int64
	// OnProbeTick, when non-nil, fires after every timeline-probe tick
	// of an instrumented run with the current simulated time — the
	// live-introspection publish hook. It must only read.
	OnProbeTick func(simNow float64)
}

// probeInterval resolves the sampling interval default.
func (o SimOptions) probeInterval() des.Time {
	if o.ProbeIntervalSec > 0 {
		return des.Time(o.ProbeIntervalSec)
	}
	return 1
}

// DefaultSimOptions returns sensible defaults for validation runs.
func DefaultSimOptions() SimOptions {
	return SimOptions{Seed: 1, WarmupSec: 30, MeasureSec: 240, MaxClients: 4096}
}

func (o SimOptions) validate() error {
	if o.WarmupSec < 0 || o.MeasureSec <= 0 {
		return fmt.Errorf("cluster: invalid sim window warmup=%g measure=%g", o.WarmupSec, o.MeasureSec)
	}
	if o.MaxClients <= 0 {
		return fmt.Errorf("cluster: MaxClients must be positive, got %d", o.MaxClients)
	}
	if o.ProbeIntervalSec < 0 {
		return fmt.Errorf("cluster: negative probe interval %g", o.ProbeIntervalSec)
	}
	if o.TraceEvery < 0 {
		return fmt.Errorf("cluster: negative trace sampling stride %d", o.TraceEvery)
	}
	return nil
}

// simServer binds the configuration's stations to a DES instance.
type simServer struct {
	sim  *des.Sim
	cpu  *des.Resource
	disk *des.Resource
	net  *des.Resource
}

func (c Config) newSimServer(sim *des.Sim) *simServer {
	return &simServer{
		sim:  sim,
		cpu:  des.NewResource(sim, "cpu", c.Server.CPU.Cores()),
		disk: des.NewResource(sim, "disk", 1),
		net:  des.NewResource(sim, "net", 1),
	}
}

// serve runs one request through cpu -> disk -> net and calls done with
// the total residence time.
func (s *simServer) serve(d Demands, done func(latency float64)) {
	start := s.sim.Now()
	s.cpu.Submit(des.Time(d.CPUSec), func() {
		s.disk.Submit(des.Time(d.DiskSec), func() {
			s.net.Submit(des.Time(d.NetSec), func() {
				done(float64(s.sim.Now() - start))
			})
		})
	})
}

// serveTraced mirrors serve exactly — same Submit calls, same delays,
// same event ordering, so a traced request follows the trajectory an
// untraced one would — and additionally records the request's causal
// span tree: a root request span plus queue/service spans per resource.
// Queue wait is recovered without touching the resource hot path: FIFO
// service is non-preemptive, so service started at completion-minus-
// service and everything between submit and that instant was queueing.
// memFrac > 0 carves the remote-memory share out of cpu service as a
// nested swap span (the §3.4 slowdown is folded into CPUSec; the span
// makes it attributable again).
func (s *simServer) serveTraced(d Demands, tr *span.Tracer, req int64, memFrac float64, done func(latency float64)) {
	start := s.sim.Now()
	root := tr.Begin(0, req, span.KindRequest, "request", float64(start))
	stage := func(r *des.Resource, svc float64, frac float64, next func()) {
		submit := float64(s.sim.Now())
		r.Submit(des.Time(svc), func() {
			end := float64(s.sim.Now())
			began := end - svc
			tr.Emit(root, req, span.KindQueue, r.Name(), submit, began)
			sid := tr.Emit(root, req, span.KindService, r.Name(), began, end)
			if frac > 0 {
				tr.Emit(sid, req, span.KindSwap, "memblade", began, began+svc*frac)
			}
			next()
		})
	}
	stage(s.cpu, d.CPUSec, memFrac, func() {
		stage(s.disk, d.DiskSec, 0, func() {
			stage(s.net, d.NetSec, 0, func() {
				tr.End(root, float64(s.sim.Now()))
				done(float64(s.sim.Now() - start))
			})
		})
	})
}

// memSwapFraction is the share of cpu service time attributable to
// remote-memory page swaps: CPUSec includes the (1 + MemSlowdown)
// inflation, so the swap share is MemSlowdown/(1+MemSlowdown).
func (c Config) memSwapFraction() float64 {
	if c.MemSlowdown <= 0 {
		return 0
	}
	return c.MemSlowdown / (1 + c.MemSlowdown)
}

// trialOutcome summarizes one closed-loop trial at a fixed client count.
type trialOutcome struct {
	throughput  float64
	meanLatency float64
	p95Latency  float64
	qosMet      bool
	utilization map[string]float64
}

// runTrial simulates nClients closed-loop clients and measures sustained
// throughput and latency percentiles over the measurement window. With a
// live recorder it also emits the per-request event stream and attaches
// the kernel/resource timeline probes; recording only observes, so the
// outcome is identical to an uninstrumented trial at the same seed.
func (c Config) runTrial(gen workload.Generator, p workload.Profile, nClients int, opt SimOptions, seed uint64, rec obs.Recorder) trialOutcome {
	sim := des.NewSim()
	srv := c.newSimServer(sim)
	rng := stats.NewRNG(seed)
	hist := stats.NewLatencyHistogram()

	recording := obs.On(rec)
	if recording {
		gen = workload.Instrument(gen, rec)
	}
	// tracer stays nil unless the run both records and asked for spans;
	// every tracer method no-ops on nil, so the recording-but-untraced
	// path pays one nil check per request.
	var tracer *span.Tracer
	if recording && opt.TraceEvery > 0 {
		tracer = span.NewTracer(rec, opt.TraceEvery)
	}

	measuring := false
	completed := 0

	think := stats.Exponential{Mean: p.ThinkTimeSec}

	// Two client-loop bodies: the uninstrumented one is the untouched hot
	// path (its closures capture nothing observability-related, so per-trial
	// allocation is identical to a build without obs); the recording one
	// additionally emits the per-request event stream.
	var clientLoop func(r *stats.RNG)
	if !recording {
		clientLoop = func(r *stats.RNG) {
			issue := func() {
				req := gen.Sample(r)
				d := c.DemandsFor(p, req)
				srv.serve(d, func(latency float64) {
					if measuring {
						hist.Add(latency)
						completed++
					}
					clientLoop(r)
				})
			}
			if p.ThinkTimeSec > 0 {
				sim.Schedule(des.Time(think.Sample(r)), issue)
			} else {
				issue()
			}
		}
	} else {
		qosBound := p.QoSLatencySec
		memFrac := c.memSwapFraction()
		var arrivals int64
		clientLoop = func(r *stats.RNG) {
			issue := func() {
				req := gen.Sample(r)
				d := c.DemandsFor(p, req)
				finish := func(latency float64) {
					if measuring {
						hist.Add(latency)
						completed++
					}
					violation := qosBound > 0 && latency > qosBound
					rec.Count("requests", 1)
					if violation {
						rec.Count("qos_violations", 1)
					}
					rec.Observe("latency_sec", latency)
					rec.Event("request", float64(sim.Now()),
						obs.F("latency_sec", latency),
						obs.FB("qos_violation", violation),
						obs.FB("measured", measuring))
					clientLoop(r)
				}
				if tracer.Sampled(arrivals) {
					srv.serveTraced(d, tracer, arrivals, memFrac, finish)
				} else {
					srv.serve(d, finish)
				}
				arrivals++
			}
			if p.ThinkTimeSec > 0 {
				sim.Schedule(des.Time(think.Sample(r)), issue)
			} else {
				issue()
			}
		}
	}
	for i := 0; i < nClients; i++ {
		r := rng.Split()
		// Stagger initial arrivals across one think time to avoid a
		// synchronized thundering herd at t=0.
		sim.Schedule(des.Time(rng.Float64()*(p.ThinkTimeSec+0.01)), func() { clientLoop(r) })
	}

	var probes *des.Probes
	if recording {
		probes = des.NewProbes(sim, rec, opt.probeInterval())
		probes.Watch(srv.cpu, srv.disk, srv.net)
		probes.OnTick = opt.OnProbeTick
		probes.Start()
	}

	sim.Run(des.Time(opt.WarmupSec))
	measuring = true
	srv.cpu.ResetWindow()
	srv.disk.ResetWindow()
	srv.net.ResetWindow()
	sim.Run(des.Time(opt.WarmupSec + opt.MeasureSec))
	if recording {
		probes.Stop()
		// Requests still in flight at the horizon leave their root spans
		// open; export them truncated rather than dropping them.
		tracer.FlushOpen(float64(sim.Now()))
		rec.Count("des.events", int64(sim.Fired()))
		rec.Count("trial.clients", int64(nClients))
	}

	out := trialOutcome{
		throughput:  float64(completed) / opt.MeasureSec,
		meanLatency: hist.Mean(),
		p95Latency:  hist.Quantile(p.QoSPercentile),
		utilization: map[string]float64{
			"cpu":  srv.cpu.Utilization(),
			"disk": srv.disk.Utilization(),
			"net":  srv.net.Utilization(),
		},
	}
	if p.QoSLatencySec > 0 {
		out.qosMet = out.p95Latency <= p.QoSLatencySec && hist.Count() > 0
	} else {
		out.qosMet = true
	}
	return out
}

// Simulate measures the configuration's sustained performance on the
// generator's workload with the discrete-event model.
//
// For interactive workloads it reproduces the paper's adaptive client
// driver (§2.1): ramp the number of simultaneous clients up
// exponentially until QoS breaks, then binary-search the largest client
// count that still meets QoS, and report that operating point.
//
// For batch workloads it executes one job of Profile.JobRequests tasks
// at the configured concurrency and reports 1/execution-time.
func (c Config) Simulate(gen workload.Generator, opt SimOptions) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	p := gen.Profile()
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if p.Batch {
		return c.simulateBatch(gen, p, opt)
	}
	return c.simulateInteractive(gen, p, opt)
}

func (c Config) simulateInteractive(gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	seed := opt.Seed
	trial := func(n int) (trialOutcome, uint64) {
		seed++
		return c.runTrial(gen, p, n, opt, seed, nil), seed
	}

	best := trialOutcome{}
	bestN := 0
	bestSeed := uint64(0)
	record := func(n int, t trialOutcome, s uint64) {
		if t.qosMet && t.throughput > best.throughput {
			best = t
			bestN = n
			bestSeed = s
		}
	}
	// replay re-runs the chosen operating point with the recorder
	// attached. Same seed, same trajectory: the instrumented replay's
	// outcome matches the recorded best exactly, so -obs never changes
	// the reported numbers.
	replay := func(n int, s uint64) {
		if obs.On(opt.Obs) {
			c.runTrial(gen, p, n, opt, s, opt.Obs)
		}
	}

	// Exponential ramp.
	n := 1
	lastGood, firstBad := 0, 0
	for n <= opt.MaxClients {
		t, s := trial(n)
		if t.qosMet {
			record(n, t, s)
			lastGood = n
			n *= 2
		} else {
			firstBad = n
			break
		}
	}
	if lastGood == 0 {
		// QoS unreachable even with one client: report best effort at a
		// moderate load, mirroring the analytic path.
		t, s := trial(maxInt(1, opt.MaxClients/8))
		replay(maxInt(1, opt.MaxClients/8), s)
		return Result{
			Throughput:  t.throughput,
			Perf:        t.throughput,
			QoSMet:      false,
			MeanLatency: t.meanLatency,
			P95Latency:  t.p95Latency,
			Bottleneck:  bottleneckOf(t.utilization),
			Utilization: t.utilization,
			Clients:     maxInt(1, opt.MaxClients/8),
		}, nil
	}
	if firstBad == 0 {
		firstBad = opt.MaxClients + 1
	}

	// Binary search between lastGood and firstBad.
	lo, hi := lastGood, firstBad
	for hi-lo > maxInt(1, lo/50) {
		mid := (lo + hi) / 2
		t, s := trial(mid)
		if t.qosMet {
			record(mid, t, s)
			lo = mid
		} else {
			hi = mid
		}
	}

	replay(bestN, bestSeed)
	return Result{
		Throughput:  best.throughput,
		Perf:        best.throughput,
		QoSMet:      true,
		MeanLatency: best.meanLatency,
		P95Latency:  best.p95Latency,
		Bottleneck:  bottleneckOf(best.utilization),
		Utilization: best.utilization,
		Clients:     bestN,
	}, nil
}

func (c Config) simulateBatch(gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	sim := des.NewSim()
	srv := c.newSimServer(sim)
	rng := stats.NewRNG(opt.Seed)

	// Batch runs execute exactly once, so they are instrumented inline
	// (recording observes without perturbing the trajectory).
	rec := opt.Obs
	recording := obs.On(rec)
	if recording {
		gen = workload.Instrument(gen, rec)
	}
	var tracer *span.Tracer
	if recording && opt.TraceEvery > 0 {
		tracer = span.NewTracer(rec, opt.TraceEvery)
	}
	memFrac := c.memSwapFraction()

	concurrency := opt.BatchConcurrency
	if concurrency <= 0 {
		concurrency = 4 * c.Server.CPU.Cores() // Hadoop's 4 threads/CPU
	}

	remaining := p.JobRequests
	done := 0
	var finish des.Time

	var launch func()
	finishTask := func() {
		done++
		if done == p.JobRequests {
			finish = sim.Now()
			sim.Stop()
			return
		}
		launch()
	}
	var arrivals int64
	launch = func() {
		if remaining == 0 {
			return
		}
		remaining--
		req := gen.Sample(rng)
		d := c.DemandsFor(p, req)
		if !recording {
			srv.serve(d, func(float64) { finishTask() })
			return
		}
		start := sim.Now()
		finish := func(float64) {
			latency := float64(sim.Now() - start)
			rec.Count("requests", 1)
			rec.Observe("latency_sec", latency)
			rec.Event("request", float64(sim.Now()),
				obs.F("latency_sec", latency),
				obs.FB("qos_violation", false),
				obs.FB("measured", true))
			finishTask()
		}
		if tracer.Sampled(arrivals) {
			srv.serveTraced(d, tracer, arrivals, memFrac, finish)
		} else {
			srv.serve(d, finish)
		}
		arrivals++
	}
	var probes *des.Probes
	if recording {
		probes = des.NewProbes(sim, rec, opt.probeInterval())
		probes.Watch(srv.cpu, srv.disk, srv.net)
		probes.OnTick = opt.OnProbeTick
		probes.Start()
	}
	for i := 0; i < concurrency && i < p.JobRequests; i++ {
		launch()
	}
	sim.Run(des.Time(math.MaxFloat64))
	if recording {
		probes.Stop()
		tracer.FlushOpen(float64(sim.Now()))
		rec.Count("des.events", int64(sim.Fired()))
		rec.Count("trial.clients", int64(concurrency))
	}
	if done != p.JobRequests {
		return Result{}, fmt.Errorf("cluster: batch job stalled at %d/%d tasks", done, p.JobRequests)
	}

	exec := float64(finish)
	return Result{
		Throughput: float64(p.JobRequests) / exec,
		Perf:       1 / exec,
		QoSMet:     true,
		ExecTime:   exec,
		Bottleneck: bottleneckOf(map[string]float64{
			"cpu": srv.cpu.Utilization(), "disk": srv.disk.Utilization(), "net": srv.net.Utilization(),
		}),
		Utilization: map[string]float64{
			"cpu": srv.cpu.Utilization(), "disk": srv.disk.Utilization(), "net": srv.net.Utilization(),
		},
		Clients: concurrency,
	}, nil
}

func bottleneckOf(util map[string]float64) string {
	best, bestU := "", -1.0
	for _, name := range [...]string{"cpu", "disk", "net"} {
		if u := util[name]; u > bestU {
			best, bestU = name, u
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
