package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func TestLocalDiskTimes(t *testing.T) {
	d := LocalDisk{Disk: platform.Disk72kDesktop()}
	// 2 ops + 1 MB: 2*4ms + 1e6/70e6 s.
	want := 2*0.004 + 1e6/70e6
	if got := d.ReadTime(2, 1e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("ReadTime = %g, want %g", got, want)
	}
	if d.WriteTime(2, 1e6) != d.ReadTime(2, 1e6) {
		t.Error("local disk read/write asymmetric")
	}
}

func TestRemoteDiskAddsSANOverhead(t *testing.T) {
	disk := platform.DiskLaptop()
	local := LocalDisk{Disk: disk}
	remote := RemoteDisk{Disk: disk}
	gotExtra := remote.ReadTime(3, 0) - local.ReadTime(3, 0)
	want := 3 * SANOverheadMs / 1e3
	if math.Abs(gotExtra-want) > 1e-12 {
		t.Errorf("SAN overhead for 3 ops = %g, want %g", gotExtra, want)
	}
}

func TestFlashCachedDiskHitPath(t *testing.T) {
	fl := platform.FlashCacheDevice()
	backing := RemoteDisk{Disk: platform.DiskLaptop()}
	cached := FlashCachedDisk{Flash: fl, Backing: backing, HitRate: 1}
	// All hits: one op of 4KB should take ~flash read time, far below
	// the disk's 15ms.
	got := cached.ReadTime(1, 4096)
	if got > 0.001 {
		t.Errorf("all-hit read = %gs, expected sub-millisecond", got)
	}
	miss := FlashCachedDisk{Flash: fl, Backing: backing, HitRate: 0}
	if got := miss.ReadTime(1, 4096); math.Abs(got-backing.ReadTime(1, 4096)) > 1e-12 {
		t.Errorf("all-miss read = %g, want backing %g", got, backing.ReadTime(1, 4096))
	}
}

func TestFlashCachedDiskMonotoneInHitRate(t *testing.T) {
	fl := platform.FlashCacheDevice()
	backing := RemoteDisk{Disk: platform.DiskLaptop()}
	prev := math.Inf(1)
	for _, hr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := FlashCachedDisk{Flash: fl, Backing: backing, HitRate: hr}
		got := c.ReadTime(2, 64*1024)
		if got > prev+1e-15 {
			t.Errorf("read time not monotone in hit rate at %g: %g > %g", hr, got, prev)
		}
		prev = got
	}
}

func TestFlashCachedDiskValidate(t *testing.T) {
	fl := platform.FlashCacheDevice()
	backing := LocalDisk{Disk: platform.DiskLaptop()}
	if err := (FlashCachedDisk{Flash: fl, Backing: backing, HitRate: 1.5}).Validate(); err == nil {
		t.Error("hit rate 1.5 accepted")
	}
	if err := (FlashCachedDisk{Flash: fl, Backing: backing, DestageForeground: -1}).Validate(); err == nil {
		t.Error("negative destage accepted")
	}
	if err := (FlashCachedDisk{Flash: fl, Backing: backing, HitRate: 0.8}).Validate(); err != nil {
		t.Errorf("valid cache rejected: %v", err)
	}
}

func TestServiceTimeSplitsReadsWrites(t *testing.T) {
	d := LocalDisk{Disk: platform.Disk72kDesktop()}
	req := workload.Request{DiskOps: 4, DiskReadBytes: 3e6, DiskWriteBytes: 1e6}
	got := ServiceTime(d, req)
	// Symmetric device: equals treating it as one combined access set.
	want := d.ReadTime(4, 4e6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ServiceTime = %g, want %g", got, want)
	}
}

func TestServiceTimeZeroDemand(t *testing.T) {
	d := LocalDisk{Disk: platform.Disk72kDesktop()}
	if got := ServiceTime(d, workload.Request{}); got != 0 {
		t.Errorf("zero-demand service = %g", got)
	}
	// Ops but no bytes: metadata-style access.
	if got := ServiceTime(d, workload.Request{DiskOps: 1}); got != 0.004 {
		t.Errorf("metadata op = %g, want 4ms", got)
	}
}

// Property: flash caching never makes reads slower than the backing
// store, for any hit rate and request shape.
func TestQuickFlashNeverSlowerOnReads(t *testing.T) {
	fl := platform.FlashCacheDevice()
	backing := RemoteDisk{Disk: platform.DiskLaptop()}
	f := func(hrRaw, opsRaw, bytesRaw float64) bool {
		hr := math.Mod(math.Abs(hrRaw), 1)
		ops := math.Mod(math.Abs(opsRaw), 16)
		bytes := math.Mod(math.Abs(bytesRaw), 1e8)
		c := FlashCachedDisk{Flash: fl, Backing: backing, HitRate: hr}
		return c.ReadTime(ops, bytes) <= backing.ReadTime(ops, bytes)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
