package cluster

// The sharded rack model: SimOptions.Topology switches Simulate from
// the flat single-server model to a rack of identical servers grouped
// into enclosures, executed on the conservative parallel kernel of
// internal/des/shard. Enclosures are the partitioning unit — every
// entity of an enclosure (its boards' cpu/net stations, its memory
// blade) lives on one shard, so board-local and blade traffic can
// touch shared state directly while still riding the mailbox Post
// discipline. Everything that crosses enclosure boundaries — SAN disk
// I/O, mapreduce shuffle chunks, job-completion reports — is genuinely
// cross-shard and flows through the bounded channel mailboxes with a
// delay of exactly its traffic class's transport latency: laIntra for
// backplane hops (fabric.IntraEnclosureLatencySec), laSAN for the
// storage path (fabric.SANPathLatencySec), laCross for board-to-board
// fabric traffic (fabric.CrossEnclosureLatencySec). The same three
// values, arranged per shard pair by lookaheadMatrix, are the engine's
// lookahead floors — the physics and the protocol agree by
// construction, and pairs with no modeled traffic are +Inf so they
// never throttle a synchronization window.
//
// Partition-independence discipline (the shards-1-vs-N byte gate):
//
//   - All randomness is derived per client/board from (Seed, global
//     entity id, index) — never from a shared stream whose draw order
//     could depend on the partitioning.
//   - Recording is per-enclosure into private obs.Sinks at EVERY shard
//     count, folded in enclosure order afterwards (obs.Sink.MergeFrom),
//     so float accumulation order and event interleaving never depend
//     on how enclosures were packed onto shards.
//   - Probes omit the kernel-wide gauges (heap depth, event rate are
//     per-shard quantities) and resource series carry enclosure/board
//     names, so every series is written by exactly one part.
//   - Engine diagnostics (clock skew, mailbox depth) are scheduling-
//     dependent and go to SimOptions.ShardDiag, never into Obs.
//
// Interactive workloads run a fixed closed-loop population
// (ClientsPerBoard per board) instead of the flat model's adaptive
// client search: the rack measures a provisioned cluster at its
// configured operating point. Batch workloads run one mapreduce-style
// job: tasks are split statically across boards, each task walks
// cpu -> memory blade -> SAN -> NIC and then ships a shuffle chunk to
// a deterministically chosen peer board, which receives it on its own
// NIC and reports to a rack-wide aggregator; the job is done when the
// aggregator has seen every chunk. Batch jobs end by running the
// cluster dry — the run-dry exit is deterministic, unlike Stop — and
// a recorded batch run replays with the job's completion time as the
// horizon so probe timelines are complete.

import (
	"fmt"
	"math"

	"warehousesim/internal/des"
	"warehousesim/internal/des/shard"
	"warehousesim/internal/fabric"
	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// ShardedTopology sizes the rack model: Enclosures enclosures of
// BoardsPerEnclosure boards (each one configured Server), one memory
// blade per enclosure, and one consolidated SAN array shared by the
// whole rack, partitioned across Shards event heaps.
type ShardedTopology struct {
	// Enclosures is the number of enclosures (>= 1); the enclosure is
	// the partitioning unit.
	Enclosures int
	// BoardsPerEnclosure is the number of server boards per enclosure
	// (>= 1), ignored when Boards is set.
	BoardsPerEnclosure int
	// Boards, when non-empty, gives a heterogeneous rack: Boards[e]
	// server boards in enclosure e (each >= 1). Its length must equal
	// Enclosures. Skewed racks are where placement matters — see
	// Placement.
	Boards []int
	// ClientsPerBoard is the closed-loop client population per board
	// for interactive workloads; 0 means 4. The rack model measures
	// this fixed provisioning directly — there is no adaptive search.
	ClientsPerBoard int
	// SANDisks is the service capacity of the consolidated disk array;
	// 0 means one disk per enclosure.
	SANDisks int
	// Shards is the number of event heaps, each on its own goroutine;
	// values outside [1, Enclosures] are clamped. Results are
	// byte-identical at every value.
	Shards int
	// Placement selects how enclosures are packed onto shards:
	// PlacementBlock ("" or "block") is the contiguous split,
	// PlacementBalanced ("balanced") the deterministic LPT bin-packer
	// weighted by each enclosure's event-generation load (boards ×
	// clients plus its blade, with the SAN and aggregator pre-loaded
	// onto shard 0). Results are byte-identical under either; only
	// wall-clock balance differs.
	Placement string
}

// Placement strategy names accepted by ShardedTopology.Placement and
// the -placement CLI flag.
const (
	PlacementBlock    = "block"
	PlacementBalanced = "balanced"
)

// Normalize implements Topology: it validates the topology and fills
// defaulted fields in place. SimOptions.Normalize calls it on a clone,
// so callers' values are never written through.
func (t *ShardedTopology) Normalize() error {
	n, err := t.normalize()
	if err != nil {
		return err
	}
	*t = n
	return nil
}

// clone implements Topology with a deep copy (Boards is the only
// reference field).
func (t *ShardedTopology) clone() Topology {
	c := *t
	c.Boards = append([]int(nil), t.Boards...)
	return &c
}

// simulate implements Topology: it dispatches the rack model. The
// generator must be stateless (clients on different shards sample it
// concurrently), and recording requires a *obs.Sink because the rack
// records into per-enclosure sinks folded after the run.
func (t *ShardedTopology) simulate(c Config, gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	if !workload.IsStateless(gen) {
		return Result{}, fmt.Errorf("cluster: the sharded rack model samples the generator concurrently across shards and needs workload.IsStateless; %T is stateful", gen)
	}
	if obs.On(opt.Obs) {
		if _, ok := opt.Obs.(*obs.Sink); !ok {
			return Result{}, fmt.Errorf("cluster: rack runs record into per-enclosure sinks folded after the run, so Obs must be a *obs.Sink, got %T", opt.Obs)
		}
	}
	if p.Batch {
		return c.rackBatch(t, gen, p, opt)
	}
	return c.rackInteractive(t, gen, p, opt)
}

// normalize fills defaults and validates; Normalize wraps it (the value
// form keeps the original copy-in/copy-out shape).
func (t ShardedTopology) normalize() (ShardedTopology, error) {
	if t.Enclosures < 1 {
		return t, fmt.Errorf("cluster: topology needs at least one enclosure, got %d", t.Enclosures)
	}
	if len(t.Boards) > 0 {
		if len(t.Boards) != t.Enclosures {
			return t, fmt.Errorf("cluster: topology has %d per-enclosure board counts for %d enclosures", len(t.Boards), t.Enclosures)
		}
		for e, n := range t.Boards {
			if n < 1 {
				return t, fmt.Errorf("cluster: enclosure %d needs at least one board, got %d", e, n)
			}
		}
	} else if t.BoardsPerEnclosure < 1 {
		return t, fmt.Errorf("cluster: topology needs at least one board per enclosure, got %d", t.BoardsPerEnclosure)
	}
	if t.ClientsPerBoard < 0 {
		return t, fmt.Errorf("cluster: negative clients per board %d", t.ClientsPerBoard)
	}
	if t.SANDisks < 0 {
		return t, fmt.Errorf("cluster: negative SAN capacity %d", t.SANDisks)
	}
	switch t.Placement {
	case "":
		t.Placement = PlacementBlock
	case PlacementBlock, PlacementBalanced:
	default:
		return t, fmt.Errorf("cluster: unknown placement %q (want %q or %q)", t.Placement, PlacementBlock, PlacementBalanced)
	}
	if t.ClientsPerBoard == 0 {
		t.ClientsPerBoard = 4
	}
	if t.SANDisks == 0 {
		t.SANDisks = t.Enclosures
	}
	if t.Shards < 1 {
		t.Shards = 1
	}
	if t.Shards > t.Enclosures {
		t.Shards = t.Enclosures
	}
	return t, nil
}

// boardsIn returns enclosure e's board count, honoring the
// heterogeneous override.
func (t ShardedTopology) boardsIn(e int) int {
	if len(t.Boards) > 0 {
		return t.Boards[e]
	}
	return t.BoardsPerEnclosure
}

// totalBoards is the rack's board count across all enclosures.
func (t ShardedTopology) totalBoards() int {
	if len(t.Boards) == 0 {
		return t.Enclosures * t.BoardsPerEnclosure
	}
	n := 0
	for _, b := range t.Boards {
		n += b
	}
	return n
}

// PlacementOf returns the enclosure-to-shard assignment the rack model
// uses for this topology: a pure function of the (normalized) topology
// alone, so a run manifest that records the topology and the strategy
// name fully determines the packing. Enclosure weight is its
// event-generation load — boards × clients per board, plus one for the
// blade — and shard 0 is pre-loaded with the SAN array (SANDisks) and
// the batch aggregator, which are pinned there.
func (t ShardedTopology) PlacementOf() []int {
	if t.Placement != PlacementBalanced {
		return shard.PlaceBlock(t.Enclosures, t.Shards)
	}
	weights := make([]float64, t.Enclosures)
	for e := range weights {
		weights[e] = float64(t.boardsIn(e)*t.ClientsPerBoard + 1)
	}
	bias := make([]float64, t.Shards)
	bias[0] = float64(t.SANDisks + 1)
	return shard.PlaceBalanced(weights, t.Shards, bias)
}

// rackSeed derives one entity-scoped RNG seed from the run seed. Pure
// function of (root, ent, idx), so per-client streams are independent
// of the partitioning and of setup iteration order. The mixing lives
// in stats.EntitySeed (bit-identical to the splitmix64 finalization
// this function used to inline), so the constants stay in one place.
func rackSeed(root uint64, ent, idx int) uint64 {
	return stats.EntitySeed(root, ent, idx)
}

// rackSim owns one rack run: the engine, the per-enclosure model state,
// and the rack-global entities (SAN, aggregator) on shard 0. The three
// latency classes are the rack's transport physics and, pair-wise, the
// engine's lookahead floors — one derivation for both (see
// lookaheadMatrix): laIntra for backplane hops that never leave an
// enclosure (blade swaps), laSAN for the storage path, laCross for
// board-to-board fabric traffic (shuffle chunks, aggregator reports).
type rackSim struct {
	cfg       Config
	topo      ShardedTopology
	p         workload.Profile
	opt       SimOptions
	eng       *shard.Engine
	laIntra   des.Time
	laSAN     des.Time
	laCross   des.Time
	memFrac   float64
	dm        demandModel
	recording bool

	encs   []*rackEnclosure
	boards []*rackBoard // global board order: enclosure-major

	sh0          *shard.Shard
	san          *des.Resource
	sanEnt       shard.EntityID
	aggEnt       shard.EntityID
	global       *obs.Sink    // rack-global recording part (SAN probes, run counters)
	globalRec    obs.Recorder // global, tee'd through globalSLO/globalEnergy when windowing
	globalSLO    *window.Collector
	globalEnergy *energy.Collector

	aggDone   int
	aggTotal  int
	aggFinish des.Time
	aggDoneFn des.Action
}

// rackEnclosure is one enclosure: a shard-resident group of boards plus
// the enclosure's memory blade and its private recording part. All of
// its state is touched only by events on its shard.
type rackEnclosure struct {
	r        *rackSim
	idx      int
	sh       *shard.Shard
	bladeEnt shard.EntityID
	blade    *des.Resource // nil when the config has no remote memory
	boards   []*rackBoard

	think     stats.Exponential
	hist      *stats.Histogram
	completed int
	measuring bool
	arrivals  int64

	recording bool
	sink      *obs.Sink
	rec       obs.Recorder // sink, tee'd through slo/energy when windowing
	slo       *window.Collector
	energy    *energy.Collector
	gen       workload.Generator
	tracer    *span.Tracer
	evFields  [3]obs.Field
}

// rackBoard is one server board: its cpu and NIC stations plus the
// batch-mode task state.
type rackBoard struct {
	r      *rackSim
	enc    *rackEnclosure
	global int
	ent    shard.EntityID
	cpu    *des.Resource
	net    *des.Resource

	rng       stats.RNG // batch-mode sampling stream
	remaining int       // batch tasks not yet launched
}

// rackFlow walks one request through the rack pipeline with bound-once
// continuations, mirroring the flat model's reqFlow: local cpu, then a
// memory-blade swap round trip, then a SAN round trip, then the NIC.
// The blade is enclosure-resident (same shard as its boards on every
// legal partitioning); the SAN lives on shard 0 — both hops use the
// same Post discipline with delay la, so the trajectory is a pure
// function of the model, not of the partitioning.
type rackFlow struct {
	b     *rackBoard
	d     Demands
	start des.Time
	// stage boundary times, kept for span emission at completion.
	tCPU, tBlade, tSAN des.Time
	traced             bool
	req                int64
	finish             func()

	afterCPUFn, bladeArriveFn, bladeDoneFn, bladeBackFn des.Action
	sanArriveFn, sanDoneFn, sanBackFn, netDoneFn        des.Action
}

func (f *rackFlow) init(b *rackBoard, finish func()) {
	f.b = b
	f.finish = finish
	f.afterCPUFn = f.afterCPU
	f.bladeArriveFn = f.bladeArrive
	f.bladeDoneFn = f.bladeDone
	f.bladeBackFn = f.bladeBack
	f.sanArriveFn = f.sanArrive
	f.sanDoneFn = f.sanDone
	f.sanBackFn = f.sanBack
	f.netDoneFn = f.netDone
}

func (f *rackFlow) serve(d Demands) {
	f.d = d
	f.start = f.b.enc.sh.Now()
	f.b.cpu.Submit(des.Time(d.CPUSec*(1-f.b.r.memFrac)), f.afterCPUFn)
}

func (f *rackFlow) afterCPU() {
	r := f.b.r
	f.tCPU = f.b.enc.sh.Now()
	if r.memFrac > 0 {
		f.b.enc.sh.Post(f.b.ent, f.b.enc.bladeEnt, r.laIntra, f.bladeArriveFn)
		return
	}
	f.tBlade = f.tCPU
	f.goSAN()
}

// bladeArrive..bladeBack run the swap round trip: the remote-memory
// share of cpu service (the flat model folds it into CPUSec; here it
// occupies the blade's channel) bracketed by two fabric hops.
func (f *rackFlow) bladeArrive() {
	f.b.enc.blade.Submit(des.Time(f.d.CPUSec*f.b.r.memFrac), f.bladeDoneFn)
}

func (f *rackFlow) bladeDone() {
	f.b.enc.sh.Post(f.b.enc.bladeEnt, f.b.ent, f.b.r.laIntra, f.bladeBackFn)
}

func (f *rackFlow) bladeBack() {
	f.tBlade = f.b.enc.sh.Now()
	f.goSAN()
}

func (f *rackFlow) goSAN() {
	r := f.b.r
	if f.d.DiskSec > 0 {
		f.b.enc.sh.Post(f.b.ent, r.sanEnt, r.laSAN, f.sanArriveFn)
		return
	}
	f.tSAN = f.tBlade
	f.goNet()
}

func (f *rackFlow) sanArrive() {
	r := f.b.r
	r.san.Submit(des.Time(f.d.DiskSec), f.sanDoneFn)
}

func (f *rackFlow) sanDone() {
	r := f.b.r
	r.sh0.Post(r.sanEnt, f.b.ent, r.laSAN, f.sanBackFn)
}

func (f *rackFlow) sanBack() {
	f.tSAN = f.b.enc.sh.Now()
	f.goNet()
}

func (f *rackFlow) goNet() {
	f.b.net.Submit(des.Time(f.d.NetSec), f.netDoneFn)
}

func (f *rackFlow) netDone() { f.finish() }

// emitSpans records one completed request's span tree into the
// enclosure's part. Unlike the flat model, spans are emitted at
// completion (requests still in flight at the horizon are dropped, not
// truncated): the pipeline crosses shards, and only at completion is
// the whole timeline known to the board's shard.
func (e *rackEnclosure) emitSpans(f *rackFlow, end des.Time) {
	tr := e.tracer
	root := tr.Emit(0, f.req, span.KindRequest, "request", float64(f.start), float64(end))
	local := f.d.CPUSec * (1 - e.r.memFrac)
	began := float64(f.tCPU) - local
	tr.Emit(root, f.req, span.KindQueue, f.b.cpu.Name(), float64(f.start), began)
	tr.Emit(root, f.req, span.KindService, f.b.cpu.Name(), began, float64(f.tCPU))
	if e.r.memFrac > 0 {
		tr.Emit(root, f.req, span.KindSwap, e.blade.Name(), float64(f.tCPU), float64(f.tBlade))
	}
	if f.d.DiskSec > 0 {
		tr.Emit(root, f.req, span.KindService, "san", float64(f.tBlade), float64(f.tSAN))
	}
	nb := float64(end) - f.d.NetSec
	tr.Emit(root, f.req, span.KindQueue, f.b.net.Name(), float64(f.tSAN), nb)
	tr.Emit(root, f.req, span.KindService, f.b.net.Name(), nb, float64(end))
}

// rackClient is one closed-loop client pinned to a board: think, issue,
// await the pipeline, repeat.
type rackClient struct {
	enc  *rackEnclosure
	rng  stats.RNG
	flow rackFlow

	startFn, issueFn des.Action
}

func (cl *rackClient) next() {
	e := cl.enc
	if e.think.Mean > 0 {
		e.sh.Sim.Schedule(des.Time(e.think.Sample(&cl.rng)), cl.issueFn)
		return
	}
	cl.issue()
}

func (cl *rackClient) issue() {
	e := cl.enc
	req := e.gen.Sample(&cl.rng)
	d := e.r.dm.For(req)
	cl.flow.traced = e.tracer.Sampled(e.arrivals)
	cl.flow.req = e.arrivals
	e.arrivals++
	cl.flow.serve(d)
}

func (cl *rackClient) finished() {
	e := cl.enc
	end := e.sh.Now()
	latency := float64(end - cl.flow.start)
	if e.measuring {
		e.hist.Add(latency)
		e.completed++
	}
	if e.recording {
		violation := e.r.p.QoSLatencySec > 0 && latency > e.r.p.QoSLatencySec
		e.rec.Count("requests", 1)
		if violation {
			e.rec.Count("qos_violations", 1)
		}
		e.rec.Observe("latency_sec", latency)
		e.evFields[0] = obs.F("latency_sec", latency)
		e.evFields[1] = obs.FB("qos_violation", violation)
		e.evFields[2] = obs.FB("measured", e.measuring)
		e.rec.Event("request", float64(end), e.evFields[:]...)
		if cl.flow.traced {
			e.emitSpans(&cl.flow, end)
		}
	}
	cl.next()
}

// rackSlot is one batch task slot: it relaunches itself until its board
// runs out of tasks, shipping each finished task's shuffle chunk before
// picking up the next one.
type rackSlot struct {
	b    *rackBoard
	flow rackFlow
}

func (s *rackSlot) launch() {
	b := s.b
	if b.remaining == 0 {
		return
	}
	b.remaining--
	e := b.enc
	req := e.gen.Sample(&b.rng)
	d := b.r.dm.For(req)
	s.flow.traced = e.tracer.Sampled(e.arrivals)
	s.flow.req = e.arrivals
	e.arrivals++
	s.flow.serve(d)
}

func (s *rackSlot) finished() {
	b := s.b
	e := b.enc
	end := e.sh.Now()
	if e.recording {
		latency := float64(end - s.flow.start)
		e.rec.Count("requests", 1)
		e.rec.Observe("latency_sec", latency)
		e.evFields[0] = obs.F("latency_sec", latency)
		e.evFields[1] = obs.FB("qos_violation", false)
		e.evFields[2] = obs.FB("measured", true)
		e.rec.Event("request", float64(end), e.evFields[:]...)
		if s.flow.traced {
			e.emitSpans(&s.flow, end)
		}
	}
	// Shuffle: ship the task's output chunk to a deterministically
	// chosen peer board. The slot frees immediately (map-side), so the
	// chunk carries its own continuation state.
	peer := b.shufflePeer()
	ch := &rackChunk{r: b.r, dst: peer, netSec: s.flow.d.NetSec}
	ch.recvFn = ch.recv
	ch.sentFn = ch.sent
	e.sh.Post(b.ent, peer.ent, b.r.laCross, ch.recvFn)
	s.launch()
}

// shufflePeer picks the destination board for a shuffle chunk from the
// board's own stream — deterministic per board, never self unless the
// rack has a single board.
func (b *rackBoard) shufflePeer() *rackBoard {
	n := len(b.r.boards)
	if n == 1 {
		return b
	}
	k := int(b.rng.Uint64() % uint64(n-1))
	return b.r.boards[(b.global+1+k)%n]
}

// rackChunk is one shuffle chunk in flight: received on the peer
// board's NIC, then reported to the rack-wide aggregator.
type rackChunk struct {
	r      *rackSim
	dst    *rackBoard
	netSec float64

	recvFn, sentFn des.Action
}

func (c *rackChunk) recv() {
	c.dst.net.Submit(des.Time(c.netSec), c.sentFn)
}

func (c *rackChunk) sent() {
	c.dst.enc.sh.Post(c.dst.ent, c.r.aggEnt, c.r.laCross, c.r.aggDoneFn)
}

// aggChunkDone runs on shard 0 for every delivered chunk; the last one
// stamps the job's completion time.
func (r *rackSim) aggChunkDone() {
	r.aggDone++
	if r.aggDone == r.aggTotal {
		r.aggFinish = r.sh0.Now()
	}
}

// lookaheadMatrix derives the per-shard-pair lookahead floors from the
// rack's traffic classes. The floor of a pair is the cheapest transport
// delay of any message the model can post between entities on those
// shards — so the matrix is a statement about which traffic exists, not
// about where enclosures landed, and the same matrix is valid under
// every placement:
//
//   - Diagonal: laIntra. Blade swaps are the cheapest same-shard posts
//     (enclosures are never split, so blade traffic is same-shard under
//     every placement).
//   - Batch runs shuffle chunks between arbitrary board pairs and ship
//     aggregator reports to shard 0, so every off-diagonal pair floors
//     at laCross (the SAN path also exists but is strictly slower).
//   - Interactive runs have exactly one cross-enclosure flow: the SAN
//     round trip, pinned to shard 0. Pairs touching shard 0 floor at
//     laSAN — wider than the raw fabric bound, which is the point —
//     and every other pair carries no traffic at all (+Inf), so two
//     board-only shards never throttle each other directly; the engine
//     closes the matrix, bounding their indirect coupling through the
//     SAN at 2·laSAN.
func lookaheadMatrix(shards int, batch bool, laIntra, laSAN, laCross des.Time) [][]des.Time {
	inf := des.Time(math.Inf(1))
	m := make([][]des.Time, shards)
	for s := range m {
		m[s] = make([]des.Time, shards)
		for d := range m[s] {
			switch {
			case s == d:
				m[s][d] = laIntra
			case batch:
				m[s][d] = laCross
			case s == 0 || d == 0:
				m[s][d] = laSAN
			default:
				m[s][d] = inf
			}
		}
	}
	return m
}

// buildRack wires the engine, the entity namespace, and the
// per-enclosure model state. Entity ids are dense and global:
// boards 0..N-1 (enclosure-major, heterogeneous racks via prefix
// sums), blades N..N+E-1, then the SAN and the aggregator. Enclosure e
// lands on the shard the topology's placement assigns it; the SAN and
// aggregator live on shard 0.
func buildRack(c Config, topo *ShardedTopology, gen workload.Generator, p workload.Profile, opt SimOptions, recording bool) (*rackSim, error) {
	t := *topo
	nBoards := t.totalBoards()
	nic := c.Server.NIC.BytesPerSec()
	laIntra := des.Time(fabric.IntraEnclosureLatencySec(nic))
	laSAN := des.Time(fabric.SANPathLatencySec(nic))
	laCross := des.Time(fabric.CrossEnclosureLatencySec(nic))
	eng, err := shard.NewEngine(shard.Config{
		Shards:          t.Shards,
		Entities:        nBoards + t.Enclosures + 2,
		LookaheadMatrix: lookaheadMatrix(t.Shards, p.Batch, laIntra, laSAN, laCross),
	})
	if err != nil {
		return nil, err
	}
	r := &rackSim{
		cfg:       c,
		topo:      t,
		p:         p,
		opt:       opt,
		eng:       eng,
		laIntra:   laIntra,
		laSAN:     laSAN,
		laCross:   laCross,
		memFrac:   c.memSwapFraction(),
		dm:        c.demandModelFor(p),
		recording: recording,
		sanEnt:    shard.EntityID(nBoards + t.Enclosures),
		aggEnt:    shard.EntityID(nBoards + t.Enclosures + 1),
	}
	r.aggDoneFn = r.aggChunkDone
	placement := t.PlacementOf()
	boardBase := 0
	for e := 0; e < t.Enclosures; e++ {
		sid := placement[e]
		enc := &rackEnclosure{
			r:        r,
			idx:      e,
			sh:       eng.Shard(sid),
			bladeEnt: shard.EntityID(nBoards + e),
			think:    stats.Exponential{Mean: p.ThinkTimeSec},
			hist:     stats.NewLatencyHistogram(),
			gen:      gen,
		}
		eng.Assign(enc.bladeEnt, sid)
		if recording {
			enc.recording = true
			enc.sink = obs.NewSink()
			enc.rec = enc.sink
			enc.gen = workload.Instrument(gen, enc.sink)
			if opt.SLOWindowSec > 0 {
				// One window collector per enclosure, fed through a tee
				// over the enclosure's private part: windows are assigned
				// by observation time, so the per-enclosure collectors are
				// the same at every shard count and merge in enclosure
				// order exactly like the sinks do.
				enc.slo, err = window.New(window.Config{
					WidthSec:      opt.SLOWindowSec,
					QoSLatencySec: p.QoSLatencySec,
					QoSPercentile: p.QoSPercentile,
				})
				if err != nil {
					return nil, err
				}
				enc.rec = window.NewTee(enc.sink, enc.slo)
			}
			if opt.Energy != nil {
				// Same discipline as the window collectors: one energy
				// collector per enclosure, windows assigned by observation
				// time, merged in enclosure order after the run — identical
				// at every shard count.
				enc.energy, err = energy.New(*opt.Energy)
				if err != nil {
					return nil, err
				}
				enc.rec = energy.NewTee(enc.rec, enc.energy)
			}
			if opt.TraceEvery > 0 {
				// Disjoint id bases keep span ids unique across the
				// per-enclosure tracers.
				enc.tracer = span.NewTracerAt(enc.sink, opt.TraceEvery, (int64(e)+1)<<40)
			}
		}
		if r.memFrac > 0 {
			enc.blade = des.NewResource(enc.sh.Sim, fmt.Sprintf("memblade.e%d", e), 1)
		}
		for b := 0; b < t.boardsIn(e); b++ {
			g := boardBase + b
			bd := &rackBoard{r: r, enc: enc, global: g, ent: shard.EntityID(g)}
			eng.Assign(bd.ent, sid)
			bd.cpu = des.NewResource(enc.sh.Sim, fmt.Sprintf("cpu.e%d.b%d", e, b), c.Server.CPU.Cores())
			bd.net = des.NewResource(enc.sh.Sim, fmt.Sprintf("net.e%d.b%d", e, b), 1)
			enc.boards = append(enc.boards, bd)
			r.boards = append(r.boards, bd)
		}
		boardBase += t.boardsIn(e)
		r.encs = append(r.encs, enc)
	}
	r.sh0 = eng.Shard(0)
	eng.Assign(r.sanEnt, 0)
	eng.Assign(r.aggEnt, 0)
	r.san = des.NewResource(r.sh0.Sim, "san", t.SANDisks)
	if recording {
		r.global = obs.NewSink()
		r.globalRec = r.global
		if opt.SLOWindowSec > 0 {
			r.globalSLO, err = window.New(window.Config{
				WidthSec:      opt.SLOWindowSec,
				QoSLatencySec: p.QoSLatencySec,
				QoSPercentile: p.QoSPercentile,
			})
			if err != nil {
				return nil, err
			}
			r.globalRec = window.NewTee(r.global, r.globalSLO)
		}
		if opt.Energy != nil {
			r.globalEnergy, err = energy.New(*opt.Energy)
			if err != nil {
				return nil, err
			}
			r.globalRec = energy.NewTee(r.globalRec, r.globalEnergy)
		}
	}
	return r, nil
}

// startProbes attaches the per-enclosure and rack-global timeline
// probes of a recorded run. Kernel gauges are omitted — heap depth and
// event rate are per-shard quantities — and every resource series name
// is enclosure/board-scoped, so each series belongs to exactly one
// part. The live-introspection hook rides the rack-global probes
// (shard 0).
func (r *rackSim) startProbes() {
	iv := des.Time(r.opt.ProbeIntervalSec)
	for _, enc := range r.encs {
		pr := des.NewProbes(enc.sh.Sim, enc.rec, iv)
		pr.OmitKernel = true
		for _, bd := range enc.boards {
			pr.Watch(bd.cpu, bd.net)
		}
		if enc.blade != nil {
			pr.Watch(enc.blade)
		}
		pr.Start()
	}
	gp := des.NewProbes(r.sh0.Sim, r.globalRec, iv)
	gp.OmitKernel = true
	gp.Watch(r.san)
	gp.OnTick = r.opt.OnProbeTick
	gp.Start()
}

// sloParts returns the run's window collectors in the canonical merge
// order — enclosures, then the rack-global part — or nil when the
// windowed-SLO plane is off.
func (r *rackSim) sloParts() []*window.Collector {
	if r.globalSLO == nil {
		return nil
	}
	parts := make([]*window.Collector, 0, len(r.encs)+1)
	for _, enc := range r.encs {
		parts = append(parts, enc.slo)
	}
	return append(parts, r.globalSLO)
}

// energyParts returns the run's energy collectors in the canonical
// merge order — enclosures, then the rack-global part — or nil when the
// energy plane is off.
func (r *rackSim) energyParts() []*energy.Collector {
	if r.globalEnergy == nil {
		return nil
	}
	parts := make([]*energy.Collector, 0, len(r.encs)+1)
	for _, enc := range r.encs {
		parts = append(parts, enc.energy)
	}
	return append(parts, r.globalEnergy)
}

// fireOnLive hands the caller the live introspection handles just
// before the engine runs: the per-part window collectors and the shard
// engine's live counters.
func (r *rackSim) fireOnLive() {
	if r.opt.OnLive == nil {
		return
	}
	r.opt.OnLive(LiveHandles{
		SLO:          r.sloParts(),
		Energy:       r.energyParts(),
		ShardStats:   r.eng.LiveStats,
		Shards:       r.eng.Shards(),
		LookaheadSec: float64(r.eng.Lookahead()),
	})
}

// finishSLO seals every window part at the run's horizon, folds them
// in the canonical part order (matching finishObs), reduces the merged
// timeline to QoS episodes, and emits the summary into the merged
// deterministic sink. Everything emitted is computed from the merged
// collector, so the export stays byte-identical at any shard count.
// Call after finishObs.
func (r *rackSim) finishSLO(horizon float64, res *Result) {
	parts := r.sloParts()
	if parts == nil {
		return
	}
	for _, p := range parts {
		p.Seal(horizon)
	}
	merged, err := window.New(parts[0].Config())
	if err != nil {
		return // unreachable: the parts were built from this config
	}
	merged.MergeFrom(parts...)
	merged.EmitEpisodes(r.opt.Obs, merged.Episodes(parts...))
	res.SLO = merged
	res.SLOParts = parts
}

// finishEnergy seals every energy part at the run's horizon, folds them
// in the canonical part order, and emits the run totals into the merged
// deterministic sink — the same discipline as finishSLO, so the energy
// export is byte-identical at any shard count. Call after finishObs.
func (r *rackSim) finishEnergy(horizon float64, res *Result) {
	parts := r.energyParts()
	if parts == nil {
		return
	}
	for _, p := range parts {
		p.Seal(horizon)
	}
	merged, err := energy.New(parts[0].Config())
	if err != nil {
		return // unreachable: the parts were built from this config
	}
	merged.MergeFrom(parts...)
	merged.EmitTotals(r.opt.Obs)
	res.Energy = merged
	res.EnergyParts = parts
}

// setupInteractive populates every board with its closed-loop clients
// and schedules the per-enclosure warm-up boundaries.
func (r *rackSim) setupInteractive() {
	for _, enc := range r.encs {
		enc := enc
		for _, bd := range enc.boards {
			for ci := 0; ci < r.topo.ClientsPerBoard; ci++ {
				cl := &rackClient{enc: enc}
				cl.flow.init(bd, cl.finished)
				cl.startFn = cl.next
				cl.issueFn = cl.issue
				cl.rng.Seed(rackSeed(r.opt.Seed, bd.global, ci))
				// Stagger initial arrivals across one think time, from
				// the client's own stream.
				enc.sh.Sim.Schedule(des.Time(cl.rng.Float64()*(r.p.ThinkTimeSec+0.01)), cl.startFn)
			}
		}
		enc.sh.Sim.Schedule(des.Time(r.opt.WarmupSec), func() {
			enc.measuring = true
			for _, bd := range enc.boards {
				bd.cpu.ResetWindow()
				bd.net.ResetWindow()
			}
			if enc.blade != nil {
				enc.blade.ResetWindow()
			}
		})
	}
	r.sh0.Sim.Schedule(des.Time(r.opt.WarmupSec), func() { r.san.ResetWindow() })
	if r.recording {
		r.startProbes()
	}
}

// setupBatch splits the job's tasks statically across boards and
// launches each board's task slots.
func (r *rackSim) setupBatch() int {
	slots := r.opt.BatchConcurrency
	if slots <= 0 {
		slots = 4 * r.cfg.Server.CPU.Cores() // Hadoop's 4 threads/CPU, per board
	}
	n := len(r.boards)
	r.aggTotal = r.p.JobRequests
	for _, bd := range r.boards {
		bd.rng.Seed(rackSeed(r.opt.Seed, bd.global, 0))
		bd.remaining = r.p.JobRequests / n
		if bd.global < r.p.JobRequests%n {
			bd.remaining++
		}
		k := slots
		if k > bd.remaining {
			k = bd.remaining
		}
		for i := 0; i < k; i++ {
			s := &rackSlot{b: bd}
			s.flow.init(bd, s.finished)
			s.launch()
		}
	}
	if r.recording {
		r.startProbes()
	}
	return slots
}

// utilization aggregates busy integrals over a measurement window of
// windowSec, in fixed enclosure/board order — integrals don't depend on
// each shard's final clock, so the map is partition-independent even
// when a batch run ends with shard clocks apart.
func (r *rackSim) utilization(windowSec float64) map[string]float64 {
	var cpu, net float64
	for _, bd := range r.boards {
		cb, _ := bd.cpu.Integrals()
		nb, _ := bd.net.Integrals()
		cpu += cb / (windowSec * float64(bd.cpu.Servers()))
		net += nb / windowSec
	}
	n := float64(len(r.boards))
	sb, _ := r.san.Integrals()
	util := map[string]float64{
		"cpu":  cpu / n,
		"net":  net / n,
		"disk": sb / (windowSec * float64(r.san.Servers())),
	}
	if r.memFrac > 0 {
		var blade float64
		for _, enc := range r.encs {
			bb, _ := enc.blade.Integrals()
			blade += bb / windowSec
		}
		util["memblade"] = blade / float64(len(r.encs))
	}
	return util
}

// finishObs folds the per-enclosure parts plus the rack-global part
// into the caller's sink, in enclosure order — the same fold at every
// shard count, so the export is byte-identical at any Shards value.
func (r *rackSim) finishObs(clients int) {
	if !r.recording {
		return
	}
	r.global.Count("des.events", int64(r.eng.Fired()))
	r.global.Count("trial.clients", int64(clients))
	parts := make([]*obs.Sink, 0, len(r.encs)+1)
	for _, enc := range r.encs {
		parts = append(parts, enc.sink)
	}
	parts = append(parts, r.global)
	r.opt.Obs.(*obs.Sink).MergeFrom(parts...)
}

func (c Config) rackInteractive(t *ShardedTopology, gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	r, err := buildRack(c, t, gen, p, opt, obs.On(opt.Obs))
	if err != nil {
		return Result{}, err
	}
	r.setupInteractive()
	r.fireOnLive()
	r.eng.Run(des.Time(opt.WarmupSec + opt.MeasureSec))

	hist := stats.NewLatencyHistogram()
	completed := 0
	for _, enc := range r.encs {
		hist.Merge(enc.hist)
		completed += enc.completed
	}
	clients := len(r.boards) * r.topo.ClientsPerBoard
	util := r.utilization(opt.MeasureSec)
	p95 := hist.Quantile(p.QoSPercentile)
	out := Result{
		Throughput:  float64(completed) / opt.MeasureSec,
		Perf:        float64(completed) / opt.MeasureSec,
		MeanLatency: hist.Mean(),
		P95Latency:  p95,
		Bottleneck:  bottleneckOf(util),
		Utilization: util,
		Clients:     clients,
	}
	if p.QoSLatencySec > 0 {
		out.QoSMet = p95 <= p.QoSLatencySec && hist.Count() > 0
	} else {
		out.QoSMet = true
	}
	r.finishObs(clients)
	r.finishSLO(opt.WarmupSec+opt.MeasureSec, &out)
	r.finishEnergy(opt.WarmupSec+opt.MeasureSec, &out)
	if r.opt.ShardDiag != nil {
		r.eng.EmitDiagnostics(r.opt.ShardDiag)
	}
	return out, nil
}

// rackBatch runs the job twice when recording: an uninstrumented pass
// that runs the cluster dry to find the completion time (probes would
// keep rescheduling forever against an open horizon), then an
// instrumented replay to exactly that horizon — same seeds, identical
// trajectory — so timelines cover the whole job.
func (c Config) rackBatch(t *ShardedTopology, gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	r, err := buildRack(c, t, gen, p, opt, false)
	if err != nil {
		return Result{}, err
	}
	slots := r.setupBatch()
	if !obs.On(opt.Obs) {
		r.fireOnLive() // no instrumented replay will follow
	}
	r.eng.Run(des.Time(math.Inf(1)))
	if r.aggDone != p.JobRequests {
		return Result{}, fmt.Errorf("cluster: rack batch job stalled at %d/%d chunks", r.aggDone, p.JobRequests)
	}
	exec := float64(r.aggFinish)

	measured := r
	if obs.On(opt.Obs) {
		r2, err := buildRack(c, t, gen, p, opt, true)
		if err != nil {
			return Result{}, err
		}
		r2.setupBatch()
		r2.fireOnLive()
		r2.eng.Run(r.aggFinish)
		if r2.aggDone != r.aggDone || r2.aggFinish != r.aggFinish {
			return Result{}, fmt.Errorf("cluster: instrumented rack replay diverged: %d/%d chunks at %v vs %v",
				r2.aggDone, r.aggDone, r2.aggFinish, r.aggFinish)
		}
		measured = r2
	}
	clients := slots * len(r.boards)
	measured.finishObs(clients)
	if opt.ShardDiag != nil {
		measured.eng.EmitDiagnostics(opt.ShardDiag)
	}
	util := measured.utilization(exec)
	out := Result{
		Throughput:  float64(p.JobRequests) / exec,
		Perf:        1 / exec,
		QoSMet:      true,
		ExecTime:    exec,
		Bottleneck:  bottleneckOf(util),
		Utilization: util,
		Clients:     clients,
	}
	measured.finishSLO(exec, &out)
	measured.finishEnergy(exec, &out)
	return out, nil
}
