package cluster

import (
	"bytes"
	"math"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func tracedTestOptions(rec obs.Recorder, every int64) SimOptions {
	o := obsTestOptions(rec)
	o.TraceEvery = every
	return o
}

// TestTracingDoesNotChangeResult extends the observe-don't-perturb rule
// to span tracing: a traced request must follow the exact trajectory an
// untraced one would.
func TestTracingDoesNotChangeResult(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	gen := workload.FixedGenerator{P: workload.WebsearchProfile()}

	plain, err := cfg.Simulate(gen, obsTestOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := cfg.Simulate(gen, tracedTestOptions(obs.NewSink(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput != traced.Throughput || plain.Clients != traced.Clients ||
		plain.P95Latency != traced.P95Latency || plain.MeanLatency != traced.MeanLatency {
		t.Fatalf("tracing changed the result:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

// TestSpansReconcileWithLatencies is the acceptance criterion: every
// completed root span matches a recorded request event — its duration
// is bit-identical to that request's latency_sec — and the span tree
// under it tiles the root, so attribution shares sum to 100%.
func TestSpansReconcileWithLatencies(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	sink := obs.NewSink()
	if _, err := cfg.Simulate(workload.FixedGenerator{P: workload.WebsearchProfile()},
		tracedTestOptions(sink, 1)); err != nil {
		t.Fatal(err)
	}

	// Latency multiset from the request event stream (exact float64 keys:
	// both numbers come from the same des.Time arithmetic).
	latencies := map[float64]int{}
	for _, e := range sink.Events() {
		if e.Stream != "request" {
			continue
		}
		for _, f := range e.Fields {
			if f.Key == "latency_sec" {
				latencies[f.Num]++
			}
		}
	}
	if len(latencies) == 0 {
		t.Fatal("no request events recorded")
	}

	spans := span.Decoded(sink.Events())
	var roots, open int
	childSum := map[int64]float64{} // root span id -> sum of tiling children
	rootDur := map[int64]float64{}
	rootID := map[int64]int64{} // req -> root id
	for _, s := range spans {
		if s.Kind == span.KindRequest {
			if s.Open {
				open++
				continue
			}
			roots++
			if latencies[s.Dur] == 0 {
				t.Fatalf("root span of req %d has dur %g matching no recorded latency", s.Req, s.Dur)
			}
			latencies[s.Dur]--
			rootDur[s.ID] = s.Dur
			rootID[s.Req] = s.ID
		}
	}
	if roots == 0 {
		t.Fatal("no completed root spans")
	}
	// Queue and service children (direct children of roots) tile the root.
	for _, s := range spans {
		if s.Kind == span.KindQueue || s.Kind == span.KindService {
			childSum[s.Parent] += s.Dur
		}
	}
	for id, want := range rootDur {
		if got := childSum[id]; math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("children of root %d sum to %g, root lasted %g", id, got, want)
		}
	}

	attr := span.Analyze(sink.Events())
	if attr.Requests != roots || attr.OpenRequests != open {
		t.Fatalf("attribution saw %d/%d requests, spans have %d/%d", attr.Requests, attr.OpenRequests, roots, open)
	}
	var shares float64
	for _, r := range attr.Rows {
		shares += r.Share
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Fatalf("attribution shares sum to %g, want 1", shares)
	}
	if math.Abs(attr.TotalSec-attr.RootSec) > 1e-6*attr.RootSec {
		t.Fatalf("attributed %g sec but roots lasted %g sec", attr.TotalSec, attr.RootSec)
	}
}

// TestTraceEverySampling pins the deterministic sampling rule: only
// arrival indices divisible by the stride are traced, and a coarser
// stride is a subset of a finer one.
func TestTraceEverySampling(t *testing.T) {
	run := func(every int64) []span.Span {
		cfg := Config{Server: platform.Desk()}
		sink := obs.NewSink()
		if _, err := cfg.Simulate(workload.FixedGenerator{P: workload.WebsearchProfile()},
			tracedTestOptions(sink, every)); err != nil {
			t.Fatal(err)
		}
		return span.Decoded(sink.Events())
	}
	all, sampled := run(1), run(5)
	if len(all) == 0 || len(sampled) == 0 {
		t.Fatal("no spans recorded")
	}
	if len(sampled) >= len(all) {
		t.Fatalf("stride 5 recorded %d spans, stride 1 recorded %d", len(sampled), len(all))
	}
	reqs := map[int64]bool{}
	for _, s := range sampled {
		if s.Req%5 != 0 {
			t.Fatalf("stride-5 trace contains req %d", s.Req)
		}
		reqs[s.Req] = true
	}
	if len(reqs) < 2 {
		t.Fatal("stride-5 trace covers fewer than 2 requests")
	}
}

// TestTracedExportDeterministic is the tracing half of the same-seed
// byte-identical criterion, covering the span stream and both derived
// artifacts.
func TestTracedExportDeterministic(t *testing.T) {
	run := func() (jsonl, trace, csv []byte) {
		cfg := Config{Server: platform.Desk()}
		sink := obs.NewSink()
		if _, err := cfg.Simulate(workload.FixedGenerator{P: workload.WebsearchProfile()},
			tracedTestOptions(sink, 2)); err != nil {
			t.Fatal(err)
		}
		var a, b, c bytes.Buffer
		if err := sink.WriteJSONL(&a); err != nil {
			t.Fatal(err)
		}
		if err := span.WriteTrace(&b, sink); err != nil {
			t.Fatal(err)
		}
		if err := span.Analyze(sink.Events()).WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return a.Bytes(), b.Bytes(), c.Bytes()
	}
	j1, t1, c1 := run()
	j2, t2, c2 := run()
	if !bytes.Equal(j1, j2) {
		t.Fatal("span JSONL differs across same-seed runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("Perfetto trace differs across same-seed runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("attribution CSV differs across same-seed runs")
	}
}

// TestBatchTracing covers the batch scheduler path: spans record, the
// remote-memory share appears when the config has a memory slowdown,
// and attribution still tiles.
func TestBatchTracing(t *testing.T) {
	cfg := Config{Server: platform.Desk(), MemSlowdown: 0.2}
	p := workload.MapReduceWCProfile()
	p.JobRequests = 200
	sink := obs.NewSink()
	opt := SimOptions{Seed: 3, WarmupSec: 1, MeasureSec: 1, MaxClients: 8, Obs: sink, TraceEvery: 1}
	if _, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt); err != nil {
		t.Fatal(err)
	}
	spans := span.Decoded(sink.Events())
	if len(spans) == 0 {
		t.Fatal("batch run recorded no spans")
	}
	var swaps int
	for _, s := range spans {
		if s.Kind == span.KindSwap {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("MemSlowdown > 0 but no swap spans recorded")
	}
	attr := span.Analyze(sink.Events())
	if attr.Requests == 0 {
		t.Fatal("attribution analyzed no requests")
	}
	var rm float64
	for _, r := range attr.Rows {
		if r.Category == span.CatRemoteMem {
			rm = r.Share
		}
	}
	// MemSlowdown 0.2 puts 0.2/1.2 of cpu service time on remote memory.
	if rm <= 0 {
		t.Fatalf("remote-memory share = %g, want > 0", rm)
	}
}
