// Package cluster models a single server of the scale-out ensemble
// executing one benchmark: its storage subsystem, an analytic
// closed-form solver for QoS-constrained sustained throughput, and a
// discrete-event simulation with the paper's adaptive client driver.
// The two paths implement the same demand model and are cross-validated
// in the integration tests (DESIGN.md §5).
package cluster

import (
	"fmt"

	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

// Storage abstracts the disk subsystem: a local disk, a laptop disk
// reached over a SAN, or a flash-cached remote disk (§3.5). It converts
// per-request disk demands into seconds of storage-station occupancy.
type Storage interface {
	// Name identifies the configuration in reports.
	Name() string
	// ReadTime returns storage occupancy for the read portion of a
	// request (ops positioning operations moving bytes in total).
	ReadTime(ops, bytes float64) float64
	// WriteTime is the analogue for writes.
	WriteTime(ops, bytes float64) float64
}

// ServiceTime returns total storage occupancy for a request, splitting
// its DiskOps between reads and writes in proportion to bytes moved.
func ServiceTime(s Storage, req workload.Request) float64 {
	total := req.DiskReadBytes + req.DiskWriteBytes
	if total == 0 {
		if req.DiskOps == 0 {
			return 0
		}
		return s.ReadTime(req.DiskOps, 0)
	}
	readOps := req.DiskOps * req.DiskReadBytes / total
	writeOps := req.DiskOps - readOps
	return s.ReadTime(readOps, req.DiskReadBytes) + s.WriteTime(writeOps, req.DiskWriteBytes)
}

// LocalDisk is a directly attached disk.
type LocalDisk struct {
	Disk platform.Disk
}

// Name implements Storage.
func (d LocalDisk) Name() string { return "local:" + d.Disk.Name }

// ReadTime implements Storage.
func (d LocalDisk) ReadTime(ops, bytes float64) float64 {
	return ops*d.Disk.AvgAccessMs/1e3 + bytes/(d.Disk.BandwidthMBps*1e6)
}

// WriteTime implements Storage.
func (d LocalDisk) WriteTime(ops, bytes float64) float64 {
	return d.ReadTime(ops, bytes)
}

// SANOverheadMs is the per-operation round-trip added by the basic SATA
// SAN of §3.5 (switch hop plus protocol processing).
const SANOverheadMs = 0.5

// RemoteDisk is a disk reached over the SAN: every operation pays the
// SAN round-trip on top of the disk's own access time.
type RemoteDisk struct {
	Disk platform.Disk
}

// Name implements Storage.
func (d RemoteDisk) Name() string { return "san:" + d.Disk.Name }

// ReadTime implements Storage.
func (d RemoteDisk) ReadTime(ops, bytes float64) float64 {
	return ops*(d.Disk.AvgAccessMs+SANOverheadMs)/1e3 + bytes/(d.Disk.BandwidthMBps*1e6)
}

// WriteTime implements Storage.
func (d RemoteDisk) WriteTime(ops, bytes float64) float64 {
	return d.ReadTime(ops, bytes)
}

// FlashOnlyDisk replaces the rotating disk entirely with a flash
// solid-state device — the §4 "flash as a disk replacement" extension.
// There is no positioning delay; ops pay cell-access latency and bytes
// pay the device bandwidth (writes include the amortized erase via
// platform.Flash.WriteTime's write latency).
type FlashOnlyDisk struct {
	Flash platform.Flash
}

// Name implements Storage.
func (d FlashOnlyDisk) Name() string { return "flash-ssd" }

// ReadTime implements Storage.
func (d FlashOnlyDisk) ReadTime(ops, bytes float64) float64 {
	return ops*d.Flash.ReadUs/1e6 + bytes/(d.Flash.BandwidthMBps*1e6)
}

// WriteTime implements Storage.
func (d FlashOnlyDisk) WriteTime(ops, bytes float64) float64 {
	return ops*d.Flash.WriteUs/1e6 + bytes/(d.Flash.BandwidthMBps*1e6)
}

// FlashCachedDisk fronts a (usually remote, low-power) disk with the
// on-board NAND flash cache of §3.5. Reads hit the flash with the
// workload-dependent HitRate (produced by the flashcache simulator);
// writes go to the flash log and are destaged to the disk in the
// background, so the foreground cost is the flash write plus a destage
// share of disk time.
type FlashCachedDisk struct {
	Flash   platform.Flash
	Backing Storage
	// HitRate is the read hit fraction in [0,1], measured by replaying
	// the workload's disk trace through the flashcache simulator.
	HitRate float64
	// DestageForeground is the fraction of write destage work that
	// cannot be hidden in the background (disk already saturated).
	DestageForeground float64
}

// Validate reports invalid cache parameters.
func (d FlashCachedDisk) Validate() error {
	if d.HitRate < 0 || d.HitRate > 1 {
		return fmt.Errorf("cluster: flash hit rate %g outside [0,1]", d.HitRate)
	}
	if d.DestageForeground < 0 || d.DestageForeground > 1 {
		return fmt.Errorf("cluster: destage fraction %g outside [0,1]", d.DestageForeground)
	}
	return nil
}

// Name implements Storage.
func (d FlashCachedDisk) Name() string {
	return fmt.Sprintf("flash(%.0f%%)+%s", d.HitRate*100, d.Backing.Name())
}

// ReadTime implements Storage.
func (d FlashCachedDisk) ReadTime(ops, bytes float64) float64 {
	hit := ops * d.HitRate * (d.Flash.ReadUs / 1e6)
	hitXfer := bytes * d.HitRate / (d.Flash.BandwidthMBps * 1e6)
	miss := d.Backing.ReadTime(ops*(1-d.HitRate), bytes*(1-d.HitRate))
	return hit + hitXfer + miss
}

// WriteTime implements Storage.
func (d FlashCachedDisk) WriteTime(ops, bytes float64) float64 {
	flashCost := ops*(d.Flash.WriteUs/1e6) + bytes/(d.Flash.BandwidthMBps*1e6)
	destage := d.Backing.WriteTime(ops, bytes) * d.DestageForeground
	return flashCost + destage
}
