package cluster

import "warehousesim/internal/workload"

// Topology selects the simulation model behind Simulate. It is a small
// closed interface — the two implementations are *ShardedTopology (one
// rack of enclosures on the sharded kernel, rack.go) and *FleetTopology
// (a fleet of racks, hot ones on full DES and cold ones on the analytic
// M/M/m stand-in, fleet.go) — and SimOptions.Topology holds one of
// them; nil selects the flat single-server model.
//
// The interface is deliberately narrow: Normalize is the validation and
// defaulting hook SimOptions.Normalize dispatches on, and the unexported
// build hook is what Simulate dispatches on after config and profile
// validation. Keeping the build hook unexported closes the interface:
// the partition-independence discipline (byte-identical exports at any
// shard or worker count) is a property of the implementations in this
// package, not something an external topology could promise.
type Topology interface {
	// Normalize validates the topology and fills defaulted fields in
	// place. SimOptions.Normalize calls it on a private clone, so a
	// caller's topology value is never written through.
	Normalize() error

	// clone returns a deep copy; SimOptions.Normalize normalizes the
	// copy rather than the caller's value.
	clone() Topology

	// simulate runs the model. It receives the normalized options (whose
	// Topology field is the receiver) after Simulate has validated the
	// config and profile.
	simulate(c Config, gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error)
}
