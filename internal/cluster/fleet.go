package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/energy"
	"warehousesim/internal/obs/window"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Balancer policies for the fleet's load-balancer tier. Both are
// deterministic: routing is a pure function of the normalized topology
// and the demand, never of goroutine scheduling, so fleet exports stay
// byte-identical at every shard and worker count.
const (
	// BalancerWRR routes demand in capacity-weighted proportions — the
	// classic weighted round-robin at steady state. With a homogeneous
	// rack template every rack receives an equal share.
	BalancerWRR = "wrr"
	// BalancerLeastLoaded routes demand one quantum at a time to the
	// cold rack with the least assigned load, ties broken by lowest
	// rack id, each rack capped at its QoS-feasible operating point;
	// demand no rack can absorb is left unserved (and reported).
	BalancerLeastLoaded = "least-loaded"
)

// fleetDemandQuanta is the routing granularity of the least-loaded
// policy: each cold rack's fair share of demand is split into this many
// quanta before the greedy assignment. Fixed, so routing is reproducible.
const fleetDemandQuanta = 16

// FleetTopology scales the unit of simulation from one rack to a fleet
// of Racks identical racks behind a load-balancer tier. The HotRacks
// racks under study run the full sharded DES (rack.go, unchanged as the
// per-rack engine); the remaining cold racks are stood in by the
// analytic M/M/m solver (analytic.go) evaluated at the operating point
// the balancer routes to them. Cold racks never enter the event stream:
// their steady-state behaviour is a closed form, so simulating them
// event-by-event would buy nothing but wall-clock (DESIGN.md §12).
type FleetTopology struct {
	// Racks is the fleet size (>= 1).
	Racks int
	// HotRacks is the number of racks simulated with full DES; 0 with
	// an empty HotSet means a fully analytic fleet. When HotSet is set,
	// HotRacks must be 0 (it is derived) or equal to len(HotSet).
	HotRacks int
	// HotSet optionally names the hot rack ids (each in [0, Racks),
	// no duplicates). Empty means racks 0..HotRacks-1. Normalize sorts
	// it ascending: the hot set is a set, so any ordering of the same
	// ids yields byte-identical results.
	HotSet []int
	// Rack is the per-rack topology template; every rack in the fleet
	// is an instance of it. Its defaults are filled by Normalize.
	Rack ShardedTopology
	// Balancer selects the routing policy: BalancerWRR ("" or "wrr")
	// or BalancerLeastLoaded.
	Balancer string
	// Shards, when > 0, overrides Rack.Shards — a convenience so CLI
	// sharding flags apply to the template without spelling it twice.
	Shards int
}

// Normalize implements Topology: it validates the fleet shape and fills
// defaulted fields in place (SimOptions.Normalize calls it on a clone).
func (t *FleetTopology) Normalize() error {
	if t.Racks < 1 {
		return fmt.Errorf("cluster: fleet needs at least one rack, got %d", t.Racks)
	}
	if t.HotRacks < 0 {
		return fmt.Errorf("cluster: negative hot rack count %d", t.HotRacks)
	}
	if t.HotRacks > t.Racks {
		return fmt.Errorf("cluster: %d hot racks exceed fleet size %d", t.HotRacks, t.Racks)
	}
	if len(t.HotSet) > 0 {
		if t.HotRacks != 0 && t.HotRacks != len(t.HotSet) {
			return fmt.Errorf("cluster: hot-racks %d disagrees with hot-set size %d", t.HotRacks, len(t.HotSet))
		}
		if len(t.HotSet) > t.Racks {
			return fmt.Errorf("cluster: hot set of %d racks exceeds fleet size %d", len(t.HotSet), t.Racks)
		}
		seen := make(map[int]bool, len(t.HotSet))
		for _, id := range t.HotSet {
			if id < 0 || id >= t.Racks {
				return fmt.Errorf("cluster: hot rack id %d outside fleet [0, %d)", id, t.Racks)
			}
			if seen[id] {
				return fmt.Errorf("cluster: duplicate hot rack id %d", id)
			}
			seen[id] = true
		}
		sort.Ints(t.HotSet)
		t.HotRacks = len(t.HotSet)
	} else {
		t.HotSet = make([]int, t.HotRacks)
		for i := range t.HotSet {
			t.HotSet[i] = i
		}
	}
	switch t.Balancer {
	case "":
		t.Balancer = BalancerWRR
	case BalancerWRR, BalancerLeastLoaded:
	default:
		return fmt.Errorf("cluster: unknown balancer policy %q (want %q or %q)", t.Balancer, BalancerWRR, BalancerLeastLoaded)
	}
	if t.Shards > 0 {
		t.Rack.Shards = t.Shards
	}
	if err := t.Rack.Normalize(); err != nil {
		return fmt.Errorf("cluster: fleet rack template: %w", err)
	}
	t.Shards = t.Rack.Shards
	return nil
}

// clone implements Topology with a deep copy.
func (t *FleetTopology) clone() Topology {
	c := *t
	c.HotSet = append([]int(nil), t.HotSet...)
	c.Rack.Boards = append([]int(nil), t.Rack.Boards...)
	return &c
}

// FleetBreakdown is the per-rack detail behind a fleet Result.
type FleetBreakdown struct {
	// Racks, HotIDs, and Balancer echo the normalized topology.
	Racks    int
	HotIDs   []int
	Balancer string
	// PerRackDemand is the balancer's demand estimate per rack
	// (requests/second): the mean measured hot-rack throughput, or the
	// analytic QoS-feasible rack throughput when no rack is hot.
	PerRackDemand float64
	// ColdDemand is the total demand routed to cold racks; ColdUnserved
	// is the part no cold rack could absorb within its capacity (only
	// the least-loaded policy caps racks, so only it can leave demand
	// unserved). Unserved demand marks the fleet QoS-violating.
	ColdDemand   float64
	ColdUnserved float64
	// RackResults holds one summary per rack, id-ascending.
	RackResults []FleetRack
}

// FleetRack is one rack's contribution to the fleet result.
type FleetRack struct {
	ID  int
	Hot bool
	// Throughput is the rack's served rate: measured (hot) or assigned
	// by the balancer (cold).
	Throughput float64
	// MeanLatency and P95Latency are +Inf for a saturated cold rack.
	MeanLatency, P95Latency float64
	QoSMet                  bool
	Utilization             map[string]float64
	// Clients is the rack's closed-loop population (hot racks only).
	Clients int
}

// fleetUtilKeys is the fixed station-key order every fleet aggregation
// iterates — never the maps themselves — so exports cannot pick up Go's
// randomized map order.
var fleetUtilKeys = [...]string{"cpu", "disk", "net", "memblade"}

// fleetRackSeed derives one rack's root seed from the run seed: a pure
// function of (root, rack id), so a rack's entire trajectory is
// independent of which other racks are hot, of hot-set ordering, and of
// the worker count running the hot set.
func fleetRackSeed(root uint64, rack int) uint64 {
	return stats.EntitySeed(root, rack, 0)
}

// simulate implements Topology: hot racks on the sharded DES, cold
// racks on the analytic stand-in, one merged Result.
func (t *FleetTopology) simulate(c Config, gen workload.Generator, p workload.Profile, opt SimOptions) (Result, error) {
	if p.Batch {
		return Result{}, fmt.Errorf("cluster: the fleet model balances an interactive arrival stream across racks; batch profile %s has none (run the rack topology directly)", p.Name)
	}
	if opt.TraceEvery > 0 {
		return Result{}, fmt.Errorf("cluster: span tracing is per-rack (span ids are derived from enclosure indices and would collide across racks); run the rack topology directly to trace")
	}
	recording := obs.On(opt.Obs)
	if recording {
		if _, ok := opt.Obs.(*obs.Sink); !ok {
			return Result{}, fmt.Errorf("cluster: fleet runs record into per-rack sinks folded after the run, so Obs must be a *obs.Sink, got %T", opt.Obs)
		}
	}
	if opt.ShardDiag != nil {
		if _, ok := opt.ShardDiag.(*obs.Sink); !ok {
			return Result{}, fmt.Errorf("cluster: fleet runs fold per-rack shard diagnostics, so ShardDiag must be a *obs.Sink, got %T", opt.ShardDiag)
		}
	}
	if len(t.HotSet) > 0 && !workload.IsStateless(gen) {
		return Result{}, fmt.Errorf("cluster: hot racks sample the generator concurrently and need workload.IsStateless; %T is stateful", gen)
	}

	// Hot racks: one full rack DES each, every rack seeded from its id
	// alone and recording into a private sink, fanned across the fleet's
	// workers. Per-rack results land by index, sinks merge in id order,
	// and the first error in id order wins — nothing about the outcome
	// depends on scheduling.
	hot := make([]Result, len(t.HotSet))
	hotSinks := make([]*obs.Sink, len(t.HotSet))
	hotDiags := make([]*obs.Sink, len(t.HotSet))
	hotErrs := make([]error, len(t.HotSet))
	par := opt.Parallelism
	if par > len(t.HotSet) {
		par = len(t.HotSet)
	}
	if par < 1 {
		par = 1
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				hot[i], hotErrs[i] = t.runHotRack(c, gen, p, opt, i, hotSinks, hotDiags)
			}
		}()
	}
	for i := range t.HotSet {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for i, err := range hotErrs {
		if err != nil {
			return Result{}, fmt.Errorf("cluster: fleet hot rack %d: %w", t.HotSet[i], err)
		}
	}
	if recording {
		opt.Obs.(*obs.Sink).MergeFrom(hotSinks...)
	}
	if opt.ShardDiag != nil {
		opt.ShardDiag.(*obs.Sink).MergeFrom(hotDiags...)
	}

	// The balancer's demand model: every rack in the fleet faces the
	// same offered load per rack — the mean load the hot racks actually
	// sustained, or (fully analytic fleets) the QoS-feasible operating
	// point of the template. Cold racks then absorb the residual demand
	// under the routing policy.
	boards := t.Rack.totalBoards()
	ana, err := c.Analyze(p)
	if err != nil {
		return Result{}, err
	}
	rackCap := ana.Throughput * float64(boards)
	perRack := rackCap
	if len(t.HotSet) > 0 {
		sum := 0.0
		for _, h := range hot {
			sum += h.Throughput
		}
		perRack = sum / float64(len(t.HotSet))
	}

	isHot := make(map[int]bool, len(t.HotSet))
	for _, id := range t.HotSet {
		isHot[id] = true
	}
	cold := make([]int, 0, t.Racks-len(t.HotSet))
	for id := 0; id < t.Racks; id++ {
		if !isHot[id] {
			cold = append(cold, id)
		}
	}

	assigned, unserved := t.routeCold(len(cold), perRack, rackCap)
	coldRes := make([]Result, len(cold))
	for i := range cold {
		lam := 0.0
		if boards > 0 {
			lam = assigned[i] / float64(boards)
		}
		r, err := c.AnalyzeAt(p, lam)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: fleet cold rack %d: %w", cold[i], err)
		}
		// AnalyzeAt is per-server; the rack serves boards times its rate.
		r.Throughput = assigned[i]
		r.Perf = assigned[i]
		coldRes[i] = r
	}

	bd := &FleetBreakdown{
		Racks:         t.Racks,
		HotIDs:        append([]int(nil), t.HotSet...),
		Balancer:      t.Balancer,
		PerRackDemand: perRack,
		ColdDemand:    perRack * float64(len(cold)),
		ColdUnserved:  unserved,
	}
	res := t.assemble(bd, hot, coldRes)

	if err := t.mergeTelemetry(&res, hot); err != nil {
		return Result{}, err
	}
	if recording {
		t.emitFleet(opt.Obs.(*obs.Sink), res.Fleet)
	}
	return res, nil
}

// runHotRack runs one hot rack's full DES with a private sink and a
// rack-scoped seed; i indexes the (sorted) hot set.
func (t *FleetTopology) runHotRack(c Config, gen workload.Generator, p workload.Profile, opt SimOptions, i int, sinks, diags []*obs.Sink) (Result, error) {
	ro := opt
	ro.Seed = fleetRackSeed(opt.Seed, t.HotSet[i])
	ro.Topology = nil
	ro.Parallelism = 1
	// Live hooks are per-run: concurrently running racks would race on
	// them, so fleet runs don't publish live handles.
	ro.OnLive = nil
	ro.OnProbeTick = nil
	ro.Obs = nil
	if obs.On(opt.Obs) {
		sinks[i] = obs.NewSink()
		ro.Obs = sinks[i]
	}
	ro.ShardDiag = nil
	if opt.ShardDiag != nil {
		diags[i] = obs.NewSink()
		ro.ShardDiag = diags[i]
	}
	rack := t.Rack
	rack.Boards = append([]int(nil), t.Rack.Boards...)
	return rack.simulate(c, gen, p, ro)
}

// routeCold distributes the cold racks' aggregate demand (perRack times
// the cold count) under the balancer policy. Returns the per-cold-rack
// assignment (index-aligned with the ascending cold id list) and the
// demand left unserved.
func (t *FleetTopology) routeCold(n int, perRack, rackCap float64) (assigned []float64, unserved float64) {
	assigned = make([]float64, n)
	if n == 0 || perRack <= 0 {
		return assigned, 0
	}
	total := perRack * float64(n)
	switch t.Balancer {
	case BalancerLeastLoaded:
		// Greedy quantized routing: fixed quantum count, least-assigned
		// rack first, lowest id on ties, capped at the rack's
		// QoS-feasible point. The residue smaller than one quantum is
		// routed last so the total always adds up.
		nq := fleetDemandQuanta * n
		q := total / float64(nq)
		for step := 0; step < nq; step++ {
			best := -1
			for i := 0; i < n; i++ {
				if assigned[i]+q > rackCap+1e-12 {
					continue
				}
				if best < 0 || assigned[i] < assigned[best] {
					best = i
				}
			}
			if best < 0 {
				unserved += q * float64(nq-step)
				break
			}
			assigned[best] += q
		}
	default: // BalancerWRR
		// Capacity-weighted proportional split; the template is uniform,
		// so every cold rack gets an equal share (and may exceed its
		// QoS-feasible point — the analytic stand-in then reports the
		// violation rather than the balancer hiding it).
		for i := range assigned {
			assigned[i] = total / float64(n)
		}
	}
	return assigned, unserved
}

// assemble folds per-rack outcomes into the fleet Result. All iteration
// is in fixed order (rack id ascending, fleetUtilKeys for stations).
func (t *FleetTopology) assemble(bd *FleetBreakdown, hot, cold []Result) Result {
	bd.RackResults = make([]FleetRack, 0, t.Racks)
	hi, ci := 0, 0
	for id := 0; id < t.Racks; id++ {
		var fr FleetRack
		if hi < len(t.HotSet) && t.HotSet[hi] == id {
			r := hot[hi]
			fr = FleetRack{ID: id, Hot: true, Throughput: r.Throughput,
				MeanLatency: r.MeanLatency, P95Latency: r.P95Latency,
				QoSMet: r.QoSMet, Utilization: r.Utilization, Clients: r.Clients}
			hi++
		} else {
			r := cold[ci]
			fr = FleetRack{ID: id, Throughput: r.Throughput,
				MeanLatency: r.MeanLatency, P95Latency: r.P95Latency,
				QoSMet: r.QoSMet, Utilization: r.Utilization}
			ci++
		}
		bd.RackResults = append(bd.RackResults, fr)
	}

	res := Result{QoSMet: bd.ColdUnserved <= 1e-9, Fleet: bd}
	var latW, meanSum, p95Sum float64
	util := map[string]float64{}
	utilN := map[string]float64{}
	for _, fr := range bd.RackResults {
		res.Throughput += fr.Throughput
		res.Clients += fr.Clients
		if !fr.QoSMet {
			res.QoSMet = false
		}
		if fr.Throughput > 0 && !math.IsInf(fr.MeanLatency, 0) && !math.IsNaN(fr.MeanLatency) {
			latW += fr.Throughput
			meanSum += fr.MeanLatency * fr.Throughput
			p95Sum += fr.P95Latency * fr.Throughput
		}
		for _, k := range fleetUtilKeys {
			if v, ok := fr.Utilization[k]; ok {
				util[k] += v
				utilN[k]++
			}
		}
	}
	res.Perf = res.Throughput
	if latW > 0 {
		res.MeanLatency = meanSum / latW
		res.P95Latency = p95Sum / latW
	}
	res.Utilization = map[string]float64{}
	for _, k := range fleetUtilKeys {
		if utilN[k] > 0 {
			res.Utilization[k] = util[k] / utilN[k]
		}
	}
	res.Bottleneck = bottleneckOf(res.Utilization)
	return res
}

// mergeTelemetry folds the hot racks' merged SLO and energy collectors
// into fleet-level collectors, rack id ascending. The racks already
// emitted their episode and total streams into their own (merged)
// sinks, so the fleet level merges collectors without re-emitting —
// re-emission would duplicate streams and break the manual-composition
// byte-identity contract. Cold racks have no event stream and so no
// telemetry windows.
func (t *FleetTopology) mergeTelemetry(res *Result, hot []Result) error {
	var sloParts []*window.Collector
	var enParts []*energy.Collector
	for _, h := range hot {
		if h.SLO != nil {
			sloParts = append(sloParts, h.SLO)
		}
		if h.Energy != nil {
			enParts = append(enParts, h.Energy)
		}
	}
	if len(sloParts) > 0 {
		merged, err := window.New(sloParts[0].Config())
		if err != nil {
			return err
		}
		merged.MergeFrom(sloParts...)
		res.SLO = merged
		res.SLOParts = sloParts
	}
	if len(enParts) > 0 {
		merged, err := energy.New(enParts[0].Config())
		if err != nil {
			return err
		}
		merged.MergeFrom(enParts...)
		res.Energy = merged
		res.EnergyParts = enParts
	}
	return nil
}

// emitFleet records the fleet-level summary streams into the merged
// sink, after the per-rack parts: fixed counters plus one fleet.rack
// event per rack with the rack id as the event time — all pure
// functions of the breakdown, so the export stays byte-identical and a
// manual composition can reproduce it exactly. Latencies are left out
// of the stream on purpose: a saturated cold rack's are +Inf, which
// has no JSON encoding.
func (t *FleetTopology) emitFleet(s *obs.Sink, bd *FleetBreakdown) {
	s.Count("fleet.racks", int64(bd.Racks))
	s.Count("fleet.hot_racks", int64(len(bd.HotIDs)))
	s.Count("fleet.cold_racks", int64(bd.Racks-len(bd.HotIDs)))
	for _, fr := range bd.RackResults {
		s.Event("fleet.rack", float64(fr.ID),
			obs.FB("hot", fr.Hot),
			obs.F("throughput", fr.Throughput),
			obs.FB("qos_met", fr.QoSMet))
	}
}
