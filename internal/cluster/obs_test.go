package cluster

import (
	"bytes"
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func obsTestOptions(rec obs.Recorder) SimOptions {
	return SimOptions{
		Seed: 11, WarmupSec: 2, MeasureSec: 10, MaxClients: 32,
		Obs: rec, ProbeIntervalSec: 0.5,
	}
}

func TestSimulateWithObsEmitsStreams(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := workload.WebsearchProfile()
	sink := obs.NewSink()
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, obsTestOptions(sink))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %g", res.Throughput)
	}
	for _, name := range []string{
		"util.cpu", "util.disk", "util.net",
		"qlen.cpu", "des.heap_depth", "des.events_per_sec",
	} {
		if s := sink.SeriesByName(name); s == nil || len(s.Points) == 0 {
			t.Fatalf("series %q missing or empty (have %v)", name, sink.SeriesNames())
		}
	}
	if n := sink.EventCount("request"); n == 0 {
		t.Fatal("no request events recorded")
	}
	if sink.CounterValue("requests") == 0 || sink.CounterValue("des.events") == 0 {
		t.Fatal("request / des.events counters missing")
	}
	if h := sink.HistByName("latency_sec"); h == nil || h.Count() == 0 {
		t.Fatal("latency histogram missing")
	}
	if h := sink.HistByName("demand.cpu_ref_sec"); h == nil || h.Count() == 0 {
		t.Fatal("demand histogram missing (generator not instrumented)")
	}
}

// TestObsDoesNotChangeResult pins the replay design: attaching a
// recorder must leave every reported number untouched.
func TestObsDoesNotChangeResult(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := workload.WebsearchProfile()
	gen := workload.FixedGenerator{P: p}

	plain, err := cfg.Simulate(gen, obsTestOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	probed, err := cfg.Simulate(gen, obsTestOptions(obs.NewSink()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput != probed.Throughput || plain.Clients != probed.Clients ||
		plain.P95Latency != probed.P95Latency || plain.MeanLatency != probed.MeanLatency {
		t.Fatalf("obs changed the result:\nplain  %+v\nprobed %+v", plain, probed)
	}
}

// TestObsDeterministicExport is the package-level half of the
// acceptance criterion: same seed, byte-identical JSONL.
func TestObsDeterministicExport(t *testing.T) {
	run := func() []byte {
		cfg := Config{Server: platform.Desk()}
		p := workload.WebsearchProfile()
		sink := obs.NewSink()
		if _, err := cfg.Simulate(workload.FixedGenerator{P: p}, obsTestOptions(sink)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two runs with the same seed exported different bytes")
	}
}

func TestBatchSimulateWithObs(t *testing.T) {
	cfg := Config{Server: platform.Desk()}
	p := workload.MapReduceWCProfile()
	p.JobRequests = 200
	sink := obs.NewSink()
	opt := SimOptions{Seed: 3, WarmupSec: 1, MeasureSec: 1, MaxClients: 8, Obs: sink}
	res, err := cfg.Simulate(workload.FixedGenerator{P: p}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatalf("exec time = %g", res.ExecTime)
	}
	if got := sink.CounterValue("requests"); got != 200 {
		t.Fatalf("requests counter = %d, want 200", got)
	}
	if s := sink.SeriesByName("util.cpu"); s == nil || len(s.Points) == 0 {
		t.Fatal("batch run recorded no utilization timeline")
	}
}
