package avail

import (
	"math"
	"testing"
	"testing/quick"
)

func TestServerAvailability(t *testing.T) {
	a, err := ServerAvailability(990, 10)
	if err != nil || math.Abs(a-0.99) > 1e-12 {
		t.Fatalf("availability = %g, %v", a, err)
	}
	if _, err := ServerAvailability(0, 1); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := ServerAvailability(100, -1); err == nil {
		t.Error("negative MTTR accepted")
	}
}

func TestServiceAvailabilityHandCases(t *testing.T) {
	// n=1, k=1: availability = a.
	a, err := ServiceAvailability(1, 1, 0.9)
	if err != nil || math.Abs(a-0.9) > 1e-12 {
		t.Fatalf("1-of-1 = %g, %v", a, err)
	}
	// n=2, k=1: 1 - (1-a)^2.
	a, err = ServiceAvailability(2, 1, 0.9)
	if err != nil || math.Abs(a-0.99) > 1e-9 {
		t.Fatalf("1-of-2 = %g, %v", a, err)
	}
	// n=2, k=2: a^2.
	a, err = ServiceAvailability(2, 2, 0.9)
	if err != nil || math.Abs(a-0.81) > 1e-9 {
		t.Fatalf("2-of-2 = %g, %v", a, err)
	}
	// n=3, k=2: 3a^2(1-a) + a^3.
	want := 3*0.9*0.9*0.1 + 0.9*0.9*0.9
	a, err = ServiceAvailability(3, 2, 0.9)
	if err != nil || math.Abs(a-want) > 1e-9 {
		t.Fatalf("2-of-3 = %g, want %g", a, want)
	}
}

func TestServiceAvailabilityValidation(t *testing.T) {
	if _, err := ServiceAvailability(0, 1, 0.9); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ServiceAvailability(3, 4, 0.9); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := ServiceAvailability(3, 1, 1.0); err == nil {
		t.Error("a=1 accepted")
	}
}

func TestSparesImproveAvailability(t *testing.T) {
	base, err := ServiceAvailability(100, 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	spared, err := ServiceAvailability(105, 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if spared <= base {
		t.Errorf("spares did not help: %g vs %g", spared, base)
	}
	// 100-of-100 at a=0.99 is terrible (~0.366); 5 spares should push
	// well past 0.9.
	if base > 0.5 {
		t.Errorf("no-spare availability %g suspiciously high", base)
	}
	if spared < 0.9 {
		t.Errorf("5%% sparing only reaches %g", spared)
	}
}

func TestServersForTarget(t *testing.T) {
	n, err := ServersForTarget(100, 0.99, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 100 {
		t.Fatalf("no spares allocated: %d", n)
	}
	// Minimality and sufficiency.
	av, err := ServiceAvailability(n, 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if av < 0.9999 {
		t.Errorf("returned n=%d misses target: %g", n, av)
	}
	if n > 100 {
		prev, err := ServiceAvailability(n-1, 100, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0.9999 {
			t.Errorf("n=%d not minimal", n)
		}
	}
	if _, err := ServersForTarget(0, 0.99, 0.9); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ServersForTarget(10, 0.99, 1.0); err == nil {
		t.Error("target=1 accepted")
	}
}

func TestSparingOverhead(t *testing.T) {
	if got := SparingOverhead(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("overhead = %g", got)
	}
	if SparingOverhead(5, 0) != 0 {
		t.Error("zero capacity should return 0")
	}
}

// Property: availability is monotone in n and in a.
func TestQuickAvailabilityMonotone(t *testing.T) {
	f := func(kRaw, extraRaw uint8, aRaw float64) bool {
		k := 1 + int(kRaw)%50
		extra := int(extraRaw) % 20
		a := 0.5 + math.Mod(math.Abs(aRaw), 0.49)
		lo, err1 := ServiceAvailability(k+extra, k, a)
		hi, err2 := ServiceAvailability(k+extra+1, k, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if hi < lo-1e-9 {
			return false
		}
		better, err := ServiceAvailability(k+extra, k, math.Min(0.999, a+0.01))
		if err != nil {
			return false
		}
		return better >= lo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
