// Package avail models service availability under scale-out — the flip
// side of the paper's design decision to "move high-end hardware
// features into the application stack (e.g., high-availability)"
// (§1). With reliability in software, a service stays up as long as
// enough of its N servers are up; the question a fleet designer asks is
// how many spares that takes when the fleet is built from many small
// (and individually less redundant) machines instead of few large ones.
//
// The model: each server is independently up with availability a
// (derived from MTBF/MTTR); the service needs at least k of n servers;
// service availability is the binomial tail P(up >= k). Sparing solves
// for the smallest n meeting a target.
package avail

import (
	"fmt"
	"math"
)

// ServerAvailability converts MTBF/MTTR into steady-state availability.
func ServerAvailability(mtbfHours, mttrHours float64) (float64, error) {
	if mtbfHours <= 0 || mttrHours < 0 {
		return 0, fmt.Errorf("avail: invalid mtbf=%g mttr=%g", mtbfHours, mttrHours)
	}
	return mtbfHours / (mtbfHours + mttrHours), nil
}

// ServiceAvailability returns P(at least k of n servers up) when each
// server is up independently with probability a. Computed in log space
// via the complement sum over the failure tail for numeric robustness.
func ServiceAvailability(n, k int, a float64) (float64, error) {
	switch {
	case n <= 0 || k <= 0 || k > n:
		return 0, fmt.Errorf("avail: invalid n=%d k=%d", n, k)
	case a <= 0 || a >= 1:
		return 0, fmt.Errorf("avail: availability %g outside (0,1)", a)
	}
	// P(up >= k) = sum_{i=k..n} C(n,i) a^i (1-a)^(n-i).
	// Sum the smaller tail for accuracy.
	logA := math.Log(a)
	logB := math.Log(1 - a)
	sumTail := func(lo, hi int) float64 {
		total := 0.0
		for i := lo; i <= hi; i++ {
			logP := logChoose(n, i) + float64(i)*logA + float64(n-i)*logB
			total += math.Exp(logP)
		}
		return total
	}
	if k <= n/2 {
		// Failure tail is the smaller sum: P(up < k).
		fail := sumTail(0, k-1)
		if fail < 0 {
			fail = 0
		}
		return 1 - fail, nil
	}
	return sumTail(k, n), nil
}

// logChoose returns log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// ServersForTarget returns the smallest n >= kNeeded with
// ServiceAvailability(n, kNeeded, a) >= target.
func ServersForTarget(kNeeded int, serverAvail, target float64) (int, error) {
	if kNeeded <= 0 {
		return 0, fmt.Errorf("avail: need capacity servers > 0")
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("avail: target %g outside (0,1)", target)
	}
	for n := kNeeded; n <= kNeeded*3+1000; n++ {
		av, err := ServiceAvailability(n, kNeeded, serverAvail)
		if err != nil {
			return 0, err
		}
		if av >= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("avail: target %g unreachable with per-server availability %g",
		target, serverAvail)
}

// SparingOverhead returns (n-k)/k — the fractional extra fleet bought
// purely for availability.
func SparingOverhead(n, k int) float64 {
	if k == 0 {
		return 0
	}
	return float64(n-k) / float64(k)
}
