// Package scaleout models the cluster-level concerns the paper's §4
// raises but "simplistically ignores": Amdahl's-law limits on
// partitioning work across many small servers, and service-capacity
// sizing (how many servers, racks and dollars a design needs to serve a
// target aggregate load).
//
// The scaling model is the Universal Scalability Law — throughput of N
// servers is N/(1 + sigma*(N-1) + kappa*N*(N-1)) times one server's —
// which captures both the serialization/imbalance term the paper
// mentions (decreased algorithmic efficiency, larger data structures)
// and the crosstalk term (coordination, fan-in networking overheads).
package scaleout

import (
	"fmt"
	"math"
)

// USL is a Universal-Scalability-Law parameterization.
type USL struct {
	// Sigma is the serialization/contention coefficient.
	Sigma float64
	// Kappa is the coherency/crosstalk coefficient.
	Kappa float64
}

// Validate reports nonsensical parameterizations.
func (u USL) Validate() error {
	if u.Sigma < 0 || u.Kappa < 0 {
		return fmt.Errorf("scaleout: negative USL coefficients %+v", u)
	}
	if u.Sigma >= 1 {
		return fmt.Errorf("scaleout: sigma %g >= 1 leaves no parallel work", u.Sigma)
	}
	return nil
}

// PerfectScaling is the paper's simplifying assumption (cluster
// performance is the aggregation of single machines).
func PerfectScaling() USL { return USL{} }

// TypicalScaleOut reflects a well-partitioned internet-sector service:
// small serialization, tiny crosstalk (ceiling ~500x one server).
func TypicalScaleOut() USL { return USL{Sigma: 0.002, Kappa: 5e-8} }

// SearchLike reflects a fan-out/fan-in service such as websearch, where
// the paper warns of latency variability and merge overheads at extreme
// scale-out (ceiling ~100x one server).
func SearchLike() USL { return USL{Sigma: 0.01, Kappa: 1e-6} }

// Speedup returns the throughput multiple of n servers over one.
func (u USL) Speedup(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return n / (1 + u.Sigma*(n-1) + u.Kappa*n*(n-1))
}

// Efficiency returns per-server efficiency at n servers.
func (u USL) Efficiency(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return u.Speedup(n) / n
}

// PeakN returns the server count at which aggregate throughput peaks
// (+Inf when kappa is zero — throughput then grows monotonically).
func (u USL) PeakN() float64 {
	if u.Kappa == 0 {
		return math.Inf(1)
	}
	return math.Sqrt((1 - u.Sigma) / u.Kappa)
}

// MaxSpeedup returns the highest achievable throughput multiple.
func (u USL) MaxSpeedup() float64 {
	n := u.PeakN()
	if math.IsInf(n, 1) {
		if u.Sigma == 0 {
			return math.Inf(1)
		}
		return 1 / u.Sigma
	}
	return u.Speedup(n)
}

// ServersFor returns the smallest integer server count whose aggregate
// throughput meets target, given one server's throughput. It fails when
// the USL ceiling is below the target.
func ServersFor(targetAggregate, perServer float64, u USL) (int, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	if perServer <= 0 || targetAggregate <= 0 {
		return 0, fmt.Errorf("scaleout: non-positive rates target=%g per=%g", targetAggregate, perServer)
	}
	need := targetAggregate / perServer
	if need <= 1 {
		return 1, nil
	}
	if u.MaxSpeedup() <= need {
		return 0, fmt.Errorf("scaleout: target needs %.1fx one server but scaling tops out at %.1fx",
			need, u.MaxSpeedup())
	}
	// Speedup is unimodal with a single crossing of `need` below PeakN;
	// binary search the integer ceiling. Invariant: speedup(lo) < need,
	// speedup(hi) >= need.
	lo, hi := 1, 2
	for u.Speedup(float64(hi)) < need {
		lo = hi
		hi *= 2
		if hi > 1<<40 {
			return 0, fmt.Errorf("scaleout: runaway search for target %g", targetAggregate)
		}
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if u.Speedup(float64(mid)) >= need {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Deployment is the datacenter-level roll-up of a sized service.
type Deployment struct {
	Servers int
	Racks   int
	// TCOUSD is total lifecycle dollars (per-server TCO x servers).
	TCOUSD float64
	// PowerW is total consumed power.
	PowerW float64
	// Efficiency is the per-server efficiency at this scale.
	Efficiency float64
}

// Size rolls a sized service up to deployment level.
func Size(targetAggregate, perServerPerf float64, u USL,
	serversPerRack int, perServerTCOUSD, perServerPowerW float64) (Deployment, error) {
	if serversPerRack <= 0 {
		return Deployment{}, fmt.Errorf("scaleout: need servers per rack > 0")
	}
	n, err := ServersFor(targetAggregate, perServerPerf, u)
	if err != nil {
		return Deployment{}, err
	}
	racks := (n + serversPerRack - 1) / serversPerRack
	return Deployment{
		Servers:    n,
		Racks:      racks,
		TCOUSD:     float64(n) * perServerTCOUSD,
		PowerW:     float64(n) * perServerPowerW,
		Efficiency: u.Efficiency(float64(n)),
	}, nil
}
