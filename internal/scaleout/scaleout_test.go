package scaleout

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUSLValidate(t *testing.T) {
	if err := TypicalScaleOut().Validate(); err != nil {
		t.Fatal(err)
	}
	if (USL{Sigma: -0.1}).Validate() == nil {
		t.Error("negative sigma accepted")
	}
	if (USL{Sigma: 1.0}).Validate() == nil {
		t.Error("sigma=1 accepted")
	}
}

func TestPerfectScalingIsLinear(t *testing.T) {
	u := PerfectScaling()
	for _, n := range []float64{1, 10, 1000, 1e6} {
		if got := u.Speedup(n); math.Abs(got-n) > 1e-9 {
			t.Errorf("Speedup(%g) = %g", n, got)
		}
	}
	if !math.IsInf(u.MaxSpeedup(), 1) {
		t.Error("perfect scaling should have no ceiling")
	}
}

func TestAmdahlLimit(t *testing.T) {
	// With kappa=0, speedup asymptotes at 1/sigma (Amdahl).
	u := USL{Sigma: 0.05}
	if got := u.MaxSpeedup(); math.Abs(got-20) > 1e-9 {
		t.Errorf("Amdahl ceiling = %g, want 20", got)
	}
	if got := u.Speedup(1e9); got > 20 {
		t.Errorf("speedup %g exceeded the Amdahl ceiling", got)
	}
}

func TestPeakN(t *testing.T) {
	u := SearchLike()
	n := u.PeakN()
	if math.IsInf(n, 1) || n <= 1 {
		t.Fatalf("peak N = %g", n)
	}
	// Throughput must fall beyond the peak.
	if u.Speedup(n*2) >= u.Speedup(n) {
		t.Error("throughput did not decline past the USL peak")
	}
}

func TestEfficiencyDecreases(t *testing.T) {
	u := TypicalScaleOut()
	prev := 1.1
	for _, n := range []float64{1, 10, 100, 1000} {
		e := u.Efficiency(n)
		if e > prev {
			t.Fatalf("efficiency increased at n=%g", n)
		}
		prev = e
	}
	if u.Efficiency(1) != 1 {
		t.Errorf("efficiency(1) = %g", u.Efficiency(1))
	}
}

func TestServersFor(t *testing.T) {
	// Perfect scaling: exact division.
	n, err := ServersFor(1000, 10, PerfectScaling())
	if err != nil || n != 100 {
		t.Fatalf("perfect: %d, %v", n, err)
	}
	// Sub-unit target: one server.
	n, err = ServersFor(5, 10, TypicalScaleOut())
	if err != nil || n != 1 {
		t.Fatalf("small target: %d, %v", n, err)
	}
	// Realistic scaling needs more servers than the naive count
	// (TypicalScaleOut tops out at ~44x, so target well below that).
	naive := 30
	n, err = ServersFor(float64(naive)*10, 10, TypicalScaleOut())
	if err != nil {
		t.Fatal(err)
	}
	if n <= naive {
		t.Errorf("USL sizing %d not above naive %d", n, naive)
	}
	// The returned count actually meets the target...
	u := TypicalScaleOut()
	if u.Speedup(float64(n))*10 < float64(naive)*10 {
		t.Error("returned count misses the target")
	}
	// ...and is minimal.
	if u.Speedup(float64(n-1))*10 >= float64(naive)*10 {
		t.Error("returned count is not minimal")
	}
}

func TestServersForUnreachable(t *testing.T) {
	u := USL{Sigma: 0.1} // ceiling 10x
	if _, err := ServersFor(200, 10, u); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := ServersFor(-1, 10, u); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := ServersFor(10, 0, u); err == nil {
		t.Error("zero per-server rate accepted")
	}
}

func TestSizeRollup(t *testing.T) {
	d, err := Size(800, 25, TypicalScaleOut(), 40, 882, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d.Servers <= 0 || d.Racks != (d.Servers+39)/40 {
		t.Fatalf("bad rollup %+v", d)
	}
	if math.Abs(d.TCOUSD-float64(d.Servers)*882) > 1e-9 {
		t.Error("TCO rollup wrong")
	}
	if d.Efficiency <= 0 || d.Efficiency > 1 {
		t.Errorf("efficiency = %g", d.Efficiency)
	}
	if _, err := Size(100, 25, TypicalScaleOut(), 0, 1, 1); err == nil {
		t.Error("zero rack size accepted")
	}
}

// Property: speedup never exceeds n and efficiency stays in (0, 1].
func TestQuickUSLBounds(t *testing.T) {
	f := func(sRaw, kRaw, nRaw float64) bool {
		u := USL{
			Sigma: math.Mod(math.Abs(sRaw), 0.99),
			Kappa: math.Mod(math.Abs(kRaw), 0.001),
		}
		n := 1 + math.Mod(math.Abs(nRaw), 1e5)
		sp := u.Speedup(n)
		eff := u.Efficiency(n)
		return sp <= n+1e-9 && eff > 0 && eff <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
