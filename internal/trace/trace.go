// Package trace defines the access-trace substrate of the memory-blade
// and flash-cache experiments (§3.4, §3.5).
//
// The paper's methodology is trace-driven: gather memory traces from the
// benchmarks, then replay them through a two-level memory simulator. Our
// workload engines implement PageTracer, emitting the page accesses each
// request actually performs against the engine's own data structures
// (posting lists, mail spools, video chunks, map-task buffers). Disk
// traces for the flash-cache study are produced analogously, or
// synthesized from a working-set/popularity description when only a
// demand profile is available.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"warehousesim/internal/stats"
)

// PageAccess is one 4 KB-page reference.
type PageAccess struct {
	Page  int64
	Write bool
}

// PageTracer emits the page accesses of one request.
type PageTracer interface {
	TracePages(r *stats.RNG, emit func(page int64, write bool))
}

// DiskAccess is one block-granularity storage reference.
type DiskAccess struct {
	Block int64
	Write bool
}

// DiskTracer emits the disk accesses of one request.
type DiskTracer interface {
	TraceDisk(r *stats.RNG, emit func(block int64, write bool))
}

// PageTrace is a replayable page-access sequence with request
// boundaries retained (RequestEnds[i] is the index one past request i's
// final access).
type PageTrace struct {
	Accesses    []PageAccess
	RequestEnds []int
}

// Requests returns the number of requests in the trace.
func (t *PageTrace) Requests() int { return len(t.RequestEnds) }

// CollectPages gathers a trace of the given number of requests.
func CollectPages(tr PageTracer, r *stats.RNG, requests int) *PageTrace {
	t := &PageTrace{}
	for i := 0; i < requests; i++ {
		tr.TracePages(r, func(page int64, write bool) {
			t.Accesses = append(t.Accesses, PageAccess{Page: page, Write: write})
		})
		t.RequestEnds = append(t.RequestEnds, len(t.Accesses))
	}
	return t
}

// SyntheticPages is a PageTracer driven purely by a footprint size and a
// Zipf popularity shape — used where no engine is required (standalone
// memory-blade studies, calibration sweeps).
type SyntheticPages struct {
	FootprintPages int64
	Zipf           *stats.Zipf
	// PagesPerRequest is the mean page touches per request.
	PagesPerRequest float64
	// WriteFraction of accesses are writes.
	WriteFraction float64
	// perm scatters Zipf ranks across the footprint so "hot" pages are
	// not physically contiguous.
	perm []int64
}

// NewSyntheticPages builds a synthetic tracer over footprintPages with
// Zipf popularity shape s.
func NewSyntheticPages(footprintPages int64, s float64, pagesPerRequest, writeFraction float64, seed uint64) (*SyntheticPages, error) {
	if footprintPages <= 0 {
		return nil, fmt.Errorf("trace: footprint must be positive")
	}
	if pagesPerRequest <= 0 {
		return nil, fmt.Errorf("trace: pages per request must be positive")
	}
	if writeFraction < 0 || writeFraction > 1 {
		return nil, fmt.Errorf("trace: write fraction %g outside [0,1]", writeFraction)
	}
	z, err := stats.NewZipf(int(footprintPages), s)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(seed)
	perm := make([]int64, footprintPages)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &SyntheticPages{
		FootprintPages:  footprintPages,
		Zipf:            z,
		PagesPerRequest: pagesPerRequest,
		WriteFraction:   writeFraction,
		perm:            perm,
	}, nil
}

// TracePages implements PageTracer.
func (s *SyntheticPages) TracePages(r *stats.RNG, emit func(page int64, write bool)) {
	n := int(s.PagesPerRequest)
	if frac := s.PagesPerRequest - float64(n); frac > 0 && r.Bool(frac) {
		n++
	}
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		emit(s.perm[s.Zipf.Rank(r)], r.Bool(s.WriteFraction))
	}
}

// SyntheticDisk is a DiskTracer over a block working set with Zipf
// popularity and sequential runs — the access pattern of the
// flash-cache study.
type SyntheticDisk struct {
	Blocks int64
	Zipf   *stats.Zipf
	// RunLength is the mean sequential run per access burst.
	RunLength float64
	// OpsPerRequest is the mean access bursts per request.
	OpsPerRequest float64
	// WriteFraction of bursts are writes.
	WriteFraction float64
}

// NewSyntheticDisk builds a synthetic disk tracer.
func NewSyntheticDisk(blocks int64, s, runLength, opsPerRequest, writeFraction float64) (*SyntheticDisk, error) {
	if blocks <= 0 || runLength < 1 || opsPerRequest <= 0 {
		return nil, fmt.Errorf("trace: invalid disk trace spec blocks=%d run=%g ops=%g",
			blocks, runLength, opsPerRequest)
	}
	if writeFraction < 0 || writeFraction > 1 {
		return nil, fmt.Errorf("trace: write fraction %g outside [0,1]", writeFraction)
	}
	z, err := stats.NewZipf(int(blocks), s)
	if err != nil {
		return nil, err
	}
	return &SyntheticDisk{Blocks: blocks, Zipf: z, RunLength: runLength,
		OpsPerRequest: opsPerRequest, WriteFraction: writeFraction}, nil
}

// TraceDisk implements DiskTracer.
func (s *SyntheticDisk) TraceDisk(r *stats.RNG, emit func(block int64, write bool)) {
	ops := int(s.OpsPerRequest)
	if frac := s.OpsPerRequest - float64(ops); frac > 0 && r.Bool(frac) {
		ops++
	}
	if ops < 1 {
		ops = 1
	}
	for o := 0; o < ops; o++ {
		start := int64(s.Zipf.Rank(r))
		write := r.Bool(s.WriteFraction)
		run := 1 + int(s.RunLength*r.ExpFloat64())
		for i := 0; i < run; i++ {
			emit((start+int64(i))%s.Blocks, write)
		}
	}
}

// --- compact binary encoding -------------------------------------------

// traceMagic guards the on-disk format.
const traceMagic = uint32(0x57485452) // "WHTR"

// EncodePages writes a page trace in a compact delta-varint format.
func EncodePages(w io.Writer, t *PageTrace) error {
	bw := bufio.NewWriter(w)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, traceMagic); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Accesses))); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.RequestEnds))); err != nil {
		return err
	}
	prev := int64(0)
	for _, a := range t.Accesses {
		delta := uint64(zigzag(a.Page-prev)) << 1
		if a.Write {
			delta |= 1
		}
		if err := putUvarint(delta); err != nil {
			return err
		}
		prev = a.Page
	}
	prevEnd := 0
	for _, e := range t.RequestEnds {
		if err := putUvarint(uint64(e - prevEnd)); err != nil {
			return err
		}
		prevEnd = e
	}
	return bw.Flush()
}

// DecodePages reads a trace written by EncodePages.
func DecodePages(rd io.Reader) (*PageTrace, error) {
	br := bufio.NewReader(rd)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	nAcc, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nReq, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := &PageTrace{
		Accesses:    make([]PageAccess, 0, nAcc),
		RequestEnds: make([]int, 0, nReq),
	}
	prev := int64(0)
	for i := uint64(0); i < nAcc; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		page := prev + unzigzag(uint64(v>>1))
		t.Accesses = append(t.Accesses, PageAccess{Page: page, Write: v&1 == 1})
		prev = page
	}
	prevEnd := 0
	for i := uint64(0); i < nReq; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prevEnd += int(v)
		t.RequestEnds = append(t.RequestEnds, prevEnd)
	}
	return t, nil
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}
