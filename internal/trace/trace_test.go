package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
)

func TestSyntheticPagesValidation(t *testing.T) {
	if _, err := NewSyntheticPages(0, 1, 1, 0, 1); err == nil {
		t.Error("zero footprint accepted")
	}
	if _, err := NewSyntheticPages(10, 1, 0, 0, 1); err == nil {
		t.Error("zero pages/request accepted")
	}
	if _, err := NewSyntheticPages(10, 1, 1, 2, 1); err == nil {
		t.Error("write fraction 2 accepted")
	}
}

func TestSyntheticPagesInRange(t *testing.T) {
	sp, err := NewSyntheticPages(1000, 0.9, 5.5, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(2)
	writes, total := 0, 0
	for i := 0; i < 5000; i++ {
		sp.TracePages(r, func(page int64, write bool) {
			if page < 0 || page >= 1000 {
				t.Fatalf("page %d out of range", page)
			}
			total++
			if write {
				writes++
			}
		})
	}
	if total < 5000 {
		t.Fatalf("too few accesses: %d", total)
	}
	frac := float64(writes) / float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("write fraction %.3f, want ~0.2", frac)
	}
	// Mean pages per request ~5.5.
	mean := float64(total) / 5000
	if mean < 5.2 || mean > 5.8 {
		t.Errorf("pages/request %.2f, want ~5.5", mean)
	}
}

func TestSyntheticPagesLocality(t *testing.T) {
	sp, err := NewSyntheticPages(10000, 1.0, 4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(4)
	counts := map[int64]int{}
	total := 0
	for i := 0; i < 20000; i++ {
		sp.TracePages(r, func(page int64, write bool) {
			counts[page]++
			total++
		})
	}
	// A Zipf(1.0) trace over 10k pages concentrates: distinct pages
	// touched should be well below total accesses.
	if len(counts) >= total/3 {
		t.Errorf("no reuse: %d distinct of %d accesses", len(counts), total)
	}
}

func TestSyntheticDisk(t *testing.T) {
	sd, err := NewSyntheticDisk(100000, 0.9, 8, 1.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(5)
	seqRuns := 0
	var last int64 = -10
	total := 0
	for i := 0; i < 2000; i++ {
		sd.TraceDisk(r, func(block int64, write bool) {
			if block < 0 || block >= 100000 {
				t.Fatalf("block %d out of range", block)
			}
			if block == last+1 {
				seqRuns++
			}
			last = block
			total++
		})
	}
	if total == 0 {
		t.Fatal("no disk accesses")
	}
	if float64(seqRuns)/float64(total) < 0.5 {
		t.Errorf("expected mostly sequential runs, got %.2f", float64(seqRuns)/float64(total))
	}
}

func TestSyntheticDiskValidation(t *testing.T) {
	if _, err := NewSyntheticDisk(0, 1, 1, 1, 0); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewSyntheticDisk(10, 1, 0.5, 1, 0); err == nil {
		t.Error("run < 1 accepted")
	}
	if _, err := NewSyntheticDisk(10, 1, 1, 1, -0.1); err == nil {
		t.Error("negative write fraction accepted")
	}
}

func TestCollectPages(t *testing.T) {
	sp, err := NewSyntheticPages(100, 1, 3, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(7)
	tr := CollectPages(sp, r, 50)
	if tr.Requests() != 50 {
		t.Fatalf("requests = %d", tr.Requests())
	}
	if tr.RequestEnds[len(tr.RequestEnds)-1] != len(tr.Accesses) {
		t.Fatal("request ends do not cover accesses")
	}
	for i := 1; i < len(tr.RequestEnds); i++ {
		if tr.RequestEnds[i] < tr.RequestEnds[i-1] {
			t.Fatal("request ends not monotone")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sp, err := NewSyntheticPages(100000, 0.9, 10, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9)
	orig := CollectPages(sp, r, 200)

	var buf bytes.Buffer
	if err := EncodePages(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Accesses) != len(orig.Accesses) || len(got.RequestEnds) != len(orig.RequestEnds) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			len(got.Accesses), len(got.RequestEnds), len(orig.Accesses), len(orig.RequestEnds))
	}
	for i := range orig.Accesses {
		if got.Accesses[i] != orig.Accesses[i] {
			t.Fatalf("access %d mismatch: %+v vs %+v", i, got.Accesses[i], orig.Accesses[i])
		}
	}
	for i := range orig.RequestEnds {
		if got.RequestEnds[i] != orig.RequestEnds[i] {
			t.Fatalf("request end %d mismatch", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePages(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodePages(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips arbitrary small traces.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tr := &PageTrace{}
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			tr.Accesses = append(tr.Accesses, PageAccess{
				Page:  r.Int63n(1 << 40),
				Write: r.Bool(0.5),
			})
		}
		end := 0
		for end < n {
			end += 1 + r.Intn(5)
			if end > n {
				end = n
			}
			tr.RequestEnds = append(tr.RequestEnds, end)
		}
		var buf bytes.Buffer
		if err := EncodePages(&buf, tr); err != nil {
			return false
		}
		got, err := DecodePages(&buf)
		if err != nil {
			return false
		}
		if len(got.Accesses) != len(tr.Accesses) {
			return false
		}
		for i := range tr.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
