package trace

import (
	"fmt"
	"sort"
)

// PageStats summarizes a page trace's locality characteristics — the
// quantities that determine memory-blade behavior.
type PageStats struct {
	Accesses int
	Requests int
	// Distinct is the number of unique pages touched (the observed
	// working set).
	Distinct int
	// WriteFraction of accesses are writes.
	WriteFraction float64
	// ReuseFactor is accesses per distinct page (1.0 = no reuse).
	ReuseFactor float64
	// Hot90 is the smallest number of pages covering 90% of accesses —
	// the knee the local-memory sizing rides on.
	Hot90 int
	// MaxPage is the highest page id seen (footprint lower bound).
	MaxPage int64
}

// String renders a one-line summary.
func (s PageStats) String() string {
	return fmt.Sprintf("accesses=%d requests=%d distinct=%d reuse=%.2fx writes=%.0f%% hot90=%d",
		s.Accesses, s.Requests, s.Distinct, s.ReuseFactor, s.WriteFraction*100, s.Hot90)
}

// AnalyzePages computes locality statistics for a trace.
func AnalyzePages(t *PageTrace) PageStats {
	st := PageStats{Accesses: len(t.Accesses), Requests: t.Requests()}
	if st.Accesses == 0 {
		return st
	}
	counts := make(map[int64]int, 1024)
	writes := 0
	for _, a := range t.Accesses {
		counts[a.Page]++
		if a.Write {
			writes++
		}
		if a.Page > st.MaxPage {
			st.MaxPage = a.Page
		}
	}
	st.Distinct = len(counts)
	st.WriteFraction = float64(writes) / float64(st.Accesses)
	st.ReuseFactor = float64(st.Accesses) / float64(st.Distinct)

	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	target := int(0.9 * float64(st.Accesses))
	cum := 0
	for i, c := range freqs {
		cum += c
		if cum >= target {
			st.Hot90 = i + 1
			break
		}
	}
	return st
}
