package trace

import (
	"math"
	"testing"

	"warehousesim/internal/stats"
)

func TestAnalyzeEmpty(t *testing.T) {
	st := AnalyzePages(&PageTrace{})
	if st.Accesses != 0 || st.Distinct != 0 || st.Hot90 != 0 {
		t.Errorf("empty analysis = %+v", st)
	}
}

func TestAnalyzeHandTrace(t *testing.T) {
	tr := &PageTrace{
		Accesses: []PageAccess{
			{Page: 1}, {Page: 1}, {Page: 1, Write: true},
			{Page: 2}, {Page: 3},
		},
		RequestEnds: []int{3, 5},
	}
	st := AnalyzePages(tr)
	if st.Accesses != 5 || st.Requests != 2 || st.Distinct != 3 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if math.Abs(st.WriteFraction-0.2) > 1e-12 {
		t.Errorf("write fraction = %g", st.WriteFraction)
	}
	if math.Abs(st.ReuseFactor-5.0/3) > 1e-12 {
		t.Errorf("reuse = %g", st.ReuseFactor)
	}
	// 90% of 5 accesses = 4.5 -> target 4: page 1 (3) + one more = 2 pages.
	if st.Hot90 != 2 {
		t.Errorf("hot90 = %d, want 2", st.Hot90)
	}
	if st.MaxPage != 3 {
		t.Errorf("max page = %d", st.MaxPage)
	}
}

func TestAnalyzeZipfSkew(t *testing.T) {
	sp, err := NewSyntheticPages(10000, 1.1, 10, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(4)
	tr := CollectPages(sp, r, 5000)
	st := AnalyzePages(tr)
	// Heavy skew: hot-90 must be far below the distinct count.
	if st.Hot90 >= st.Distinct/2 {
		t.Errorf("no skew detected: hot90=%d distinct=%d", st.Hot90, st.Distinct)
	}
	if st.ReuseFactor <= 2 {
		t.Errorf("reuse too low for zipf(1.1): %g", st.ReuseFactor)
	}
	if s := st.String(); s == "" {
		t.Error("empty string rendering")
	}
}

func TestAnalyzeUniformNoSkew(t *testing.T) {
	// Near-uniform popularity: hot90 approaches 90% of distinct pages.
	sp, err := NewSyntheticPages(500, 0.01, 5, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(6)
	tr := CollectPages(sp, r, 4000)
	st := AnalyzePages(tr)
	if float64(st.Hot90) < 0.6*float64(st.Distinct) {
		t.Errorf("uniform trace looks skewed: hot90=%d distinct=%d", st.Hot90, st.Distinct)
	}
}
