package des

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// TestResetWindowAcrossBoundary pins the windowed-utilization semantics
// the warm-up discard relies on: resetting mid-job must charge the
// in-flight remainder to the new window only.
func TestResetWindowAcrossBoundary(t *testing.T) {
	sim := NewSim()
	r := NewResource(sim, "cpu", 1)
	r.Submit(10, nil) // busy on [0,10)

	sim.ScheduleAt(5, func() {}) // landmark to advance the clock
	sim.Run(5)
	if u := r.Utilization(); !almost(u, 1) {
		t.Fatalf("pre-reset utilization = %g, want 1", u)
	}

	r.ResetWindow()
	if u := r.Utilization(); u != 0 {
		t.Fatalf("utilization immediately after reset = %g, want 0 (empty window)", u)
	}

	// [5,10): still busy finishing the job; [10,15): idle.
	sim.ScheduleAt(15, func() {})
	sim.Run(15)
	if u := r.Utilization(); !almost(u, 0.5) {
		t.Fatalf("post-reset utilization over [5,15] = %g, want 0.5", u)
	}
	if c := r.Completed(); c != 1 {
		t.Fatalf("completed in new window = %d, want 1", c)
	}
}

// TestResetWindowQueueAccounting checks the queue-length integral across
// a window boundary with jobs waiting: work queued before the reset must
// not leak old integral into the new window, and jobs still waiting keep
// accumulating in the new one.
func TestResetWindowQueueAccounting(t *testing.T) {
	sim := NewSim()
	r := NewResource(sim, "disk", 1)
	r.Submit(4, nil) // occupies [0,4)
	r.Submit(4, nil) // waits [0,4), runs [4,8)
	r.Submit(4, nil) // waits [0,8), runs [8,12)

	sim.ScheduleAt(2, func() {})
	sim.Run(2)
	// Two jobs waiting for the whole first window.
	if q := r.MeanQueueLen(); !almost(q, 2) {
		t.Fatalf("queue mean over [0,2] = %g, want 2", q)
	}

	r.ResetWindow()
	sim.ScheduleAt(12, func() {})
	sim.Run(12)
	// New window [2,12]: 2 waiting on [2,4), 1 on [4,8), 0 after —
	// integral = 2*2 + 1*4 = 8 over 10 seconds.
	if q := r.MeanQueueLen(); !almost(q, 0.8) {
		t.Fatalf("queue mean over [2,12] = %g, want 0.8", q)
	}
	// Utilization: busy the whole window.
	if u := r.Utilization(); !almost(u, 1) {
		t.Fatalf("utilization over [2,12] = %g, want 1", u)
	}
	if c := r.Completed(); c != 3 {
		t.Fatalf("completed in new window = %d, want 3", c)
	}
}

// TestResetWindowRepeated exercises several consecutive windows to make
// sure each window's accounting is independent.
func TestResetWindowRepeated(t *testing.T) {
	sim := NewSim()
	r := NewResource(sim, "net", 2)

	// Window 1 [0,4]: one server busy on [0,2) -> util 2/(4*2) = 0.25.
	r.Submit(2, nil)
	sim.ScheduleAt(4, func() {})
	sim.Run(4)
	if u := r.Utilization(); !almost(u, 0.25) {
		t.Fatalf("window 1 utilization = %g, want 0.25", u)
	}

	// Window 2 [4,8]: both servers busy on [4,6) -> util 4/(4*2) = 0.5.
	r.ResetWindow()
	r.Submit(2, nil)
	r.Submit(2, nil)
	sim.ScheduleAt(8, func() {})
	sim.Run(8)
	if u := r.Utilization(); !almost(u, 0.5) {
		t.Fatalf("window 2 utilization = %g, want 0.5", u)
	}

	// Window 3 [8,10]: idle.
	r.ResetWindow()
	sim.ScheduleAt(10, func() {})
	sim.Run(10)
	if u := r.Utilization(); u != 0 {
		t.Fatalf("window 3 utilization = %g, want 0", u)
	}
}
