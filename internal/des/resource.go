package des

import (
	"fmt"
)

// Resource models a station with Servers identical servers and an
// unbounded FIFO queue — a CPU with m cores, a disk with one head, or a
// NIC serialized by bandwidth. Jobs request a service duration; when a
// server frees up the job occupies it for that duration and then the
// completion callback runs.
//
// The resource keeps time-weighted busy-server and queue-length
// integrals so utilization and mean queue length can be reported for any
// measurement window.
type Resource struct {
	name    string
	servers int
	sim     *Sim

	busy  int
	queue []pendingJob

	// time-weighted accounting
	lastStamp     Time
	busyIntegral  float64 // ∫ busy dt
	queueIntegral float64 // ∫ len(queue) dt
	completed     uint64
	totalService  float64
	windowStart   Time

	// pool of completion records: one is checked out per in-service job
	// and returned when the job's completion event fires, so steady-state
	// Submit traffic schedules without allocating a closure per job.
	pool []*completion
}

type pendingJob struct {
	service Time
	done    Action
	arrived Time
}

// completion carries one in-service job's completion callback. The act
// method value is bound once when the record is first created; pooling
// the record therefore pools the closure too.
type completion struct {
	r    *Resource
	done Action
	act  Action
}

func (c *completion) fire() {
	r := c.r
	done := c.done
	c.done = nil
	r.pool = append(r.pool, c)
	r.stamp()
	r.busy--
	r.completed++
	if len(r.queue) > 0 {
		next := r.queue[0]
		// Shift; queues are short in steady state so O(n) is fine,
		// and copying avoids retaining the backing array's head.
		copy(r.queue, r.queue[1:])
		r.queue[len(r.queue)-1] = pendingJob{}
		r.queue = r.queue[:len(r.queue)-1]
		r.start(next.service, next.done)
	}
	if done != nil {
		done()
	}
}

// NewResource creates a resource with the given number of servers
// attached to sim. Names appear in diagnostics.
func NewResource(sim *Sim, name string, servers int) *Resource {
	if servers <= 0 {
		panic(fmt.Sprintf("des: resource %q needs servers > 0, got %d", name, servers))
	}
	return &Resource{name: name, servers: servers, sim: sim}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Servers returns the number of servers.
func (r *Resource) Servers() int { return r.servers }

func (r *Resource) stamp() {
	now := r.sim.Now()
	dt := float64(now - r.lastStamp)
	if dt > 0 {
		r.busyIntegral += dt * float64(r.busy)
		r.queueIntegral += dt * float64(len(r.queue))
		r.lastStamp = now
	} else if now > r.lastStamp {
		r.lastStamp = now
	}
}

// Submit enqueues a job needing service simulated-seconds of exclusive
// server time; done (may be nil) runs at completion. Zero-service jobs
// complete via the event queue, preserving FIFO ordering.
func (r *Resource) Submit(service Time, done Action) {
	if service < 0 {
		panic(fmt.Sprintf("des: resource %q got negative service %v", r.name, service))
	}
	r.stamp()
	if r.busy < r.servers {
		r.start(service, done)
		return
	}
	r.queue = append(r.queue, pendingJob{service: service, done: done, arrived: r.sim.Now()})
}

func (r *Resource) start(service Time, done Action) {
	r.busy++
	r.totalService += float64(service)
	var c *completion
	if n := len(r.pool); n > 0 {
		c = r.pool[n-1]
		r.pool[n-1] = nil
		r.pool = r.pool[:n-1]
	} else {
		c = &completion{r: r}
		c.act = c.fire
	}
	c.done = done
	r.sim.Schedule(service, c.act)
}

// InService returns the number of currently busy servers.
func (r *Resource) InService() int { return r.busy }

// QueueLen returns the number of jobs waiting (not in service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Completed returns the number of jobs finished since the last ResetWindow.
func (r *Resource) Completed() uint64 { return r.completed }

// Utilization returns the time-averaged fraction of servers busy over the
// current measurement window.
func (r *Resource) Utilization() float64 {
	r.stamp()
	dt := float64(r.sim.Now() - r.windowStart)
	if dt <= 0 {
		return 0
	}
	return r.busyIntegral / (dt * float64(r.servers))
}

// MeanQueueLen returns the time-averaged queue length over the current
// measurement window.
func (r *Resource) MeanQueueLen() float64 {
	r.stamp()
	dt := float64(r.sim.Now() - r.windowStart)
	if dt <= 0 {
		return 0
	}
	return r.queueIntegral / dt
}

// Integrals returns the time-weighted busy-server and queue-length
// integrals (∫ busy dt, ∫ len(queue) dt) accumulated since the last
// ResetWindow, stamped to the current simulation time. Probes difference
// successive snapshots to build per-interval utilization timelines.
func (r *Resource) Integrals() (busy, queue float64) {
	r.stamp()
	return r.busyIntegral, r.queueIntegral
}

// ResetWindow restarts utilization accounting at the current simulation
// time — used to discard warm-up transients before measuring.
func (r *Resource) ResetWindow() {
	r.stamp()
	r.windowStart = r.sim.Now()
	r.lastStamp = r.sim.Now()
	r.busyIntegral = 0
	r.queueIntegral = 0
	r.completed = 0
	r.totalService = 0
}

// Reset returns the resource to its initial idle state for reuse after
// Sim.Reset: no busy servers, an empty queue, and zeroed accounting.
// The queue backing array and the completion-record pool are retained.
// Completion records checked out by jobs that were in flight when the
// kernel was reset are abandoned to the garbage collector; the pool
// refills lazily.
func (r *Resource) Reset() {
	for i := range r.queue {
		r.queue[i] = pendingJob{}
	}
	r.queue = r.queue[:0]
	r.busy = 0
	r.lastStamp, r.windowStart = 0, 0
	r.busyIntegral, r.queueIntegral = 0, 0
	r.completed, r.totalService = 0, 0
}
