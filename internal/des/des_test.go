package des

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/stats"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("final time = %v, want horizon 10", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(1, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestHorizonStopsClock(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(100, func() { fired = true })
	end := s.Run(10)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if end != 10 {
		t.Errorf("returned time %v", end)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	// Resuming past the event fires it.
	s.Run(200)
	if !fired {
		t.Error("event did not fire after extending horizon")
	}
}

func TestEventAtHorizonFires(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(10, func() { fired = true })
	s.Run(10)
	if !fired {
		t.Error("event exactly at horizon did not fire")
	}
}

func TestCancel(t *testing.T) {
	s := NewSim()
	fired := false
	h := s.Schedule(5, func() { fired = true })
	h.Cancel()
	s.Run(10)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestStop(t *testing.T) {
	s := NewSim()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Errorf("events after Stop: count = %d", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewSim().Schedule(-1, func() {})
}

func TestNaNDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN delay did not panic")
		}
	}()
	NewSim().Schedule(Time(math.NaN()), func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewSim()
	s.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("past event did not panic")
			}
		}()
		s.ScheduleAt(1, func() {})
	})
	s.Run(10)
}

func TestResourceSingleServerSerializes(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "disk", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		r.Submit(2, func() { done = append(done, s.Now()) })
	}
	s.Run(100)
	want := []Time{2, 4, 6}
	if len(done) != 3 {
		t.Fatalf("completions = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestResourceMultiServerParallel(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "cpu", 4)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Submit(3, func() { done = append(done, s.Now()) })
	}
	s.Run(100)
	for _, d := range done {
		if d != 3 {
			t.Fatalf("parallel jobs should all finish at t=3: %v", done)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "cpu", 2)
	r.Submit(5, nil) // one busy server for 5s of a 10s window => 25%
	s.Run(10)
	if u := r.Utilization(); math.Abs(u-0.25) > 1e-9 {
		t.Errorf("utilization = %g, want 0.25", u)
	}
}

func TestResourceQueueStats(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "disk", 1)
	// 3 jobs of 2s each: queue holds 2 jobs for t in (0,2), 1 for (2,4).
	for i := 0; i < 3; i++ {
		r.Submit(2, nil)
	}
	s.Run(6)
	want := (2.0*2 + 1.0*2) / 6.0
	if q := r.MeanQueueLen(); math.Abs(q-want) > 1e-9 {
		t.Errorf("mean queue len = %g, want %g", q, want)
	}
	if c := r.Completed(); c != 3 {
		t.Errorf("completed = %d", c)
	}
}

func TestResourceResetWindow(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "cpu", 1)
	r.Submit(5, nil)
	s.Run(5)
	r.ResetWindow()
	s.Run(10)
	if u := r.Utilization(); u != 0 {
		t.Errorf("utilization after reset = %g, want 0", u)
	}
	if c := r.Completed(); c != 0 {
		t.Errorf("completed after reset = %d", c)
	}
}

func TestResourceZeroServicePreservesOrder(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "nic", 1)
	var order []int
	r.Submit(0, func() { order = append(order, 0) })
	r.Submit(0, func() { order = append(order, 1) })
	s.Run(1)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative service did not panic")
		}
	}()
	r.Submit(-1, nil)
}

func TestResourceBadServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("servers=0 did not panic")
		}
	}()
	NewResource(NewSim(), "x", 0)
}

// M/M/1 validation: simulated mean response time must match theory
// R = S/(1-rho) within a few percent.
func TestMM1AgainstTheory(t *testing.T) {
	const (
		lambda = 8.0  // arrivals/s
		mu     = 10.0 // service rate
	)
	s := NewSim()
	r := NewResource(s, "mm1", 1)
	rng := stats.NewRNG(42)
	var lat stats.Summary

	var arrive func()
	arrive = func() {
		start := s.Now()
		r.Submit(Time(rng.ExpFloat64()/mu), func() {
			if start > 2000 { // warm-up discard
				lat.Add(float64(s.Now() - start))
			}
		})
		s.Schedule(Time(rng.ExpFloat64()/lambda), arrive)
	}
	s.Schedule(0, arrive)
	s.Run(60000)

	rho := lambda / mu
	wantR := (1 / mu) / (1 - rho)
	if got := lat.Mean(); math.Abs(got-wantR)/wantR > 0.05 {
		t.Errorf("M/M/1 mean response = %g, theory %g", got, wantR)
	}
	if u := r.Utilization(); math.Abs(u-rho) > 0.02 {
		t.Errorf("M/M/1 utilization = %g, theory %g", u, rho)
	}
}

// M/M/m validation against Erlang-C waiting probability.
func TestMMmAgainstTheory(t *testing.T) {
	const (
		m      = 4
		lambda = 3.2
		mu     = 1.0
	)
	s := NewSim()
	r := NewResource(s, "mmm", m)
	rng := stats.NewRNG(7)
	var lat stats.Summary

	var arrive func()
	arrive = func() {
		start := s.Now()
		r.Submit(Time(rng.ExpFloat64()/mu), func() {
			if start > 2000 {
				lat.Add(float64(s.Now() - start))
			}
		})
		s.Schedule(Time(rng.ExpFloat64()/lambda), arrive)
	}
	s.Schedule(0, arrive)
	s.Run(40000)

	// Erlang-C.
	rho := lambda / (m * mu)
	a := lambda / mu
	sum := 0.0
	fact := 1.0
	for k := 0; k < m; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	factM := fact * float64(m)
	pWait := (math.Pow(a, m) / (factM * (1 - rho))) / (sum + math.Pow(a, m)/(factM*(1-rho)))
	wantR := 1/mu + pWait/(float64(m)*mu-lambda)
	if got := lat.Mean(); math.Abs(got-wantR)/wantR > 0.05 {
		t.Errorf("M/M/%d mean response = %g, theory %g", m, got, wantR)
	}
}

// Property: total completions never exceed submissions, and utilization
// stays in [0,1], across random job mixes.
func TestQuickResourceInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := NewSim()
		servers := 1 + rng.Intn(8)
		r := NewResource(s, "r", servers)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Schedule(Time(rng.Float64()*10), func() {
				r.Submit(Time(rng.Float64()*2), nil)
			})
		}
		s.Run(1000)
		u := r.Utilization()
		return r.Completed() == uint64(n) && u >= 0 && u <= 1+1e-9 && r.QueueLen() == 0 && r.InService() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
