package des

import (
	"bytes"
	"testing"

	"warehousesim/internal/obs"
)

// busySim drives one single-server resource with a deterministic
// back-to-back job stream for the given span.
func busySim(rec obs.Recorder, interval Time) *Sim {
	sim := NewSim()
	r := NewResource(sim, "cpu", 1)
	var next Action
	next = func() {
		if sim.Now() < 10 {
			r.Submit(0.5, next)
		}
	}
	r.Submit(0.5, next)
	p := NewProbes(sim, rec, interval)
	p.Watch(r)
	p.Start()
	sim.Run(10)
	return sim
}

func TestProbesEmitTimelines(t *testing.T) {
	sink := obs.NewSink()
	busySim(sink, 1)
	for _, name := range []string{"des.heap_depth", "des.events_per_sec", "util.cpu", "qlen.cpu"} {
		s := sink.SeriesByName(name)
		if s == nil {
			t.Fatalf("series %q missing (have %v)", name, sink.SeriesNames())
		}
		if len(s.Points) < 9 {
			t.Fatalf("series %q has %d points, want >= 9 over a 10 s run at 1 s interval", name, len(s.Points))
		}
	}
	// The resource is saturated: every full interval must report
	// utilization 1 and a positive event rate.
	util := sink.SeriesByName("util.cpu")
	for _, p := range util.Points {
		if p.V < 0.999 || p.V > 1.001 {
			t.Fatalf("util.cpu at t=%g is %g, want 1 (resource is saturated)", p.T, p.V)
		}
	}
	for _, p := range sink.SeriesByName("des.events_per_sec").Points {
		if p.V <= 0 {
			t.Fatalf("events/sec at t=%g is %g, want > 0", p.T, p.V)
		}
	}
}

func TestProbesDoNotPerturbModel(t *testing.T) {
	plain := busySim(nil, 1)
	probed := busySim(obs.NewSink(), 1)
	// Probe ticks add events, but the model's own completions must be
	// unchanged: 10s / 0.5s = 20 job completions either way. The probed
	// run fires exactly its extra tick events (one per second plus the
	// cancelled-at-horizon remainder).
	if plain.Fired() != 20 {
		t.Fatalf("uninstrumented run fired %d events, want 20", plain.Fired())
	}
	if probed.Fired() != 30 {
		t.Fatalf("instrumented run fired %d events, want 30 (20 jobs + 10 ticks)", probed.Fired())
	}
}

func TestProbesDeterministic(t *testing.T) {
	export := func() []byte {
		sink := obs.NewSink()
		busySim(sink, 0.25)
		var buf bytes.Buffer
		if err := sink.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(export(), export()) {
		t.Fatal("two identical probed runs exported different bytes")
	}
}

func TestProbesStop(t *testing.T) {
	sink := obs.NewSink()
	sim := NewSim()
	p := NewProbes(sim, sink, 1)
	p.Start()
	sim.Run(3)
	p.Stop()
	n := len(sink.SeriesByName("des.heap_depth").Points)
	sim.ScheduleAt(10, func() {})
	sim.Run(10)
	if got := len(sink.SeriesByName("des.heap_depth").Points); got != n {
		t.Fatalf("sampler kept ticking after Stop: %d -> %d points", n, got)
	}
}

func TestProbesNilRecorderIsInert(t *testing.T) {
	sim := NewSim()
	p := NewProbes(sim, nil, 1)
	p.Start()
	sim.ScheduleAt(5, func() {})
	sim.Run(5)
	if sim.Fired() != 1 {
		t.Fatalf("nil-recorder probes scheduled ticks: fired=%d, want 1", sim.Fired())
	}
}
