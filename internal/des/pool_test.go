package des

import "testing"

// The kernel pools event records (and Resource pools completion
// records); these tests pin the invariants the pooling must preserve:
// eager cancel removal, stale-handle safety across recycling, and
// Reset-based reuse producing identical trajectories.

func TestCancelRemovesEagerly(t *testing.T) {
	s := NewSim()
	s.Schedule(1, func() {})
	h := s.Schedule(2, func() {})
	s.Schedule(3, func() {})
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	h.Cancel()
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after Cancel = %d, want 2 (cancelled events must leave the heap immediately)", got)
	}
	h.Cancel() // double-cancel is a no-op
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after double Cancel = %d, want 2", got)
	}
	s.Run(10)
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
}

func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	s := NewSim()
	h := s.Schedule(1, func() {})
	s.Run(10) // fires; the record returns to the pool
	fired := 0
	s.Schedule(1, func() { fired++ }) // reuses the pooled record
	h.Cancel()                        // stale: generation mismatch, must be a no-op
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after stale Cancel = %d, want 1", got)
	}
	s.Run(20)
	if fired != 1 {
		t.Fatalf("reused event fired %d times, want 1", fired)
	}
}

func TestCancelledThenRescheduledHandleIsStale(t *testing.T) {
	s := NewSim()
	h := s.Schedule(5, func() { t.Fatal("cancelled event fired") })
	h.Cancel()
	ok := false
	s.Schedule(1, func() { ok = true }) // reuses the cancelled record
	h.Cancel()                          // stale again
	s.Run(10)
	if !ok {
		t.Fatal("rescheduled event did not fire")
	}
}

// trialTrace runs a fixed two-resource workload and returns the fired
// event count and final time — a cheap trajectory fingerprint.
func trialTrace(s *Sim) (uint64, Time) {
	r := NewResource(s, "r", 2)
	n := 0
	var loop Action
	loop = func() {
		n++
		if n < 50 {
			r.Submit(Time(float64(n%7)*0.25+0.1), loop)
		}
	}
	for i := 0; i < 4; i++ {
		s.Schedule(Time(i)*0.5, loop)
	}
	s.Run(100)
	return s.Fired(), s.Now()
}

func TestResetReusesSimIdentically(t *testing.T) {
	fresh := NewSim()
	wantFired, wantNow := trialTrace(fresh)

	reused := NewSim()
	// Dirty the sim: leave events pending at the horizon, then Reset.
	reused.Schedule(1, func() {})
	reused.Schedule(500, func() {})
	reused.Run(2)
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Fired() != 0 {
		t.Fatalf("Reset left now=%v pending=%d fired=%d", reused.Now(), reused.Pending(), reused.Fired())
	}
	gotFired, gotNow := trialTrace(reused)
	if gotFired != wantFired || gotNow != wantNow {
		t.Fatalf("reused sim trajectory (%d, %v) != fresh (%d, %v)",
			gotFired, gotNow, wantFired, wantNow)
	}
}

func TestResourceResetReuse(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "r", 1)
	r.Submit(1, nil)
	r.Submit(1, nil) // queued
	s.Run(0.5)       // first job in service
	s.Reset()
	r.Reset()
	if r.InService() != 0 || r.QueueLen() != 0 || r.Completed() != 0 {
		t.Fatalf("Reset left busy=%d queue=%d completed=%d", r.InService(), r.QueueLen(), r.Completed())
	}
	done := 0
	r.Submit(1, func() { done++ })
	s.Run(10)
	if done != 1 || r.Completed() != 1 {
		t.Fatalf("after reuse: done=%d completed=%d, want 1/1", done, r.Completed())
	}
	if got := r.Utilization(); got <= 0.09 || got >= 0.11 {
		t.Fatalf("Utilization after reuse = %g, want ~0.1", got)
	}
}

func TestScheduleAllocsAmortizeToZero(t *testing.T) {
	s := NewSim()
	var loop Action
	n := 0
	loop = func() {
		n++
		if n < 1000 {
			s.Schedule(1, loop)
		}
	}
	s.Schedule(1, loop)
	allocs := testing.AllocsPerRun(1, func() {
		n = 0
		s.Reset()
		s.Schedule(1, loop)
		s.Run(2000)
	})
	// The event record is pooled and the heap array is retained across
	// Reset, so a whole re-run of 1000 events should allocate (almost)
	// nothing. Allow slack for runtime noise.
	if allocs > 4 {
		t.Fatalf("pooled schedule loop allocated %.0f objects per run, want ~0", allocs)
	}
}

// BenchmarkScheduleCancel measures the cancel-heavy pattern (timers
// armed and disarmed before firing — the Probes.Stop path, timeout
// guards). Eager removal keeps the heap free of dead events; pooling
// keeps the churn allocation-free.
func BenchmarkScheduleCancel(b *testing.B) {
	s := NewSim()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := s.Schedule(1e9, func() {})
		h.Cancel()
		if i%1024 == 0 {
			s.Run(0) // let the clock breathe without firing the far event
		}
	}
	if s.Pending() != 0 {
		b.Fatalf("Pending = %d, want 0", s.Pending())
	}
}
