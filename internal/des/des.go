// Package des implements the discrete-event simulation kernel that
// underlies the performance side of the evaluation infrastructure.
//
// The paper evaluated its benchmark suite on the COTSon full-system
// simulator; this repository substitutes a calibrated queueing simulation
// (see DESIGN.md §2). The kernel here is deliberately small and
// allocation-light: a binary-heap event queue with deterministic
// tie-breaking, plus multi-server resources with FIFO queueing and
// time-weighted utilization accounting.
//
// Models are written in continuation-passing style: an event's action
// schedules the follow-on events. This avoids goroutine-per-entity
// simulation, keeps runs single-threaded and reproducible, and lets the
// benchmark harness simulate hundreds of server-years per wall second.
//
// Event records are pooled: once an event fires (or is cancelled) its
// struct returns to a per-Sim free list and the next Schedule reuses it,
// so steady-state scheduling allocates nothing. Pooling is invisible to
// models — handles are generation-stamped, so a stale EventHandle held
// across a recycle is a safe no-op — and changes neither firing order
// nor the seq tie-break stream (see DESIGN.md §7 for the invariants).
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Action is the body of a scheduled event.
type Action func()

type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	act  Action
	heap int    // index within the heap; -1 once popped or recycled
	gen  uint32 // bumped on recycle so stale handles can't touch reused slots
}

// EventHandle allows a scheduled event to be cancelled. The zero value
// is valid and cancels nothing.
type EventHandle struct {
	s   *Sim
	ev  *event
	gen uint32
}

// Cancel removes the event from the queue immediately (O(log n) via its
// tracked heap index) and recycles its record. Cancelling an
// already-fired, already-cancelled, or zero handle is a no-op: the
// generation stamp protects against the underlying record having been
// reused for a later event.
func (h EventHandle) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.heap < 0 {
		return
	}
	heap.Remove(&h.s.events, ev.heap)
	h.s.recycle(ev)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.heap = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.heap = -1
	return ev
}

// Sim is a single-threaded discrete-event simulator. The zero value is
// not usable; call NewSim.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
	pool    []*event // recycled event records, ready for reuse
}

// NewSim returns a simulator positioned at time zero.
func NewSim() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far (for tests and
// runaway detection).
func (s *Sim) Fired() uint64 { return s.fired }

// recycle returns an event record to the free list. The action is
// dropped so the pool never retains model closures, and the generation
// is bumped so outstanding handles to the old event become inert.
//
//perf:hotpath
func (s *Sim) recycle(ev *event) {
	ev.act = nil
	ev.heap = -1
	ev.gen++
	s.pool = append(s.pool, ev)
}

// Schedule runs act after delay (>= 0) of simulated time and returns a
// handle for cancellation. It panics on negative or NaN delays: those are
// always model bugs and silently clamping them corrupts results.
//
//perf:hotpath
func (s *Sim) Schedule(delay Time, act Action) EventHandle {
	if delay < 0 || math.IsNaN(float64(delay)) {
		//whvet:allow hotpath cold panic path: a negative delay is a model bug, the guard never fires in a correct run
		panic(fmt.Sprintf("des: negative or NaN delay %v at t=%v", delay, s.now))
	}
	return s.ScheduleAt(s.now+delay, act)
}

// ScheduleAt runs act at absolute time at (>= Now).
//
//perf:hotpath
func (s *Sim) ScheduleAt(at Time, act Action) EventHandle {
	if at < s.now {
		//whvet:allow hotpath cold panic path: scheduling into the past is a model bug, the guard never fires in a correct run
		panic(fmt.Sprintf("des: event scheduled in the past: %v < now %v", at, s.now))
	}
	var ev *event
	if n := len(s.pool); n > 0 {
		ev = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.act = at, s.seq, act
	s.seq++
	heap.Push(&s.events, ev)
	return EventHandle{s: s, ev: ev, gen: ev.gen}
}

// Stop halts Run after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue empties, until Stop is called, or
// until simulated time would pass until. It returns the simulation time
// at exit. Events scheduled exactly at the horizon still fire.
//
//perf:hotpath
func (s *Sim) Run(until Time) Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		ev := s.events[0]
		if ev.at > until {
			// Advance the clock to the horizon; pending events stay queued.
			s.now = until
			return s.now
		}
		heap.Pop(&s.events)
		at, act := ev.at, ev.act
		s.recycle(ev)
		s.now = at
		s.fired++
		act()
	}
	if s.now < until && len(s.events) == 0 {
		s.now = until
	}
	return s.now
}

// Pending returns the number of events still queued. Cancelled events
// are removed eagerly, so they never count here.
func (s *Sim) Pending() int { return len(s.events) }

// PeekNext returns the timestamp of the earliest queued event without
// executing it. ok is false when the queue is empty. The sharded kernel
// uses this to decide whether to run a local event or deliver a pending
// cross-shard message first.
func (s *Sim) PeekNext() (at Time, ok bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].at, true
}

// RunNext executes exactly the earliest queued event and returns true,
// or returns false when the queue is empty. It is the single-step
// building block of the sharded kernel's advance loop, which must
// interleave event execution with message delivery at event
// granularity; firing order and the seq tie-break stream are identical
// to Run.
//
//perf:hotpath
func (s *Sim) RunNext() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := s.events[0]
	heap.Pop(&s.events)
	at, act := ev.at, ev.act
	s.recycle(ev)
	s.now = at
	s.fired++
	act()
	return true
}

// Reset rewinds the simulator to time zero for reuse: pending events are
// recycled, the clock, sequence counter and fired count restart, and the
// heap backing array and event pool are retained — so a sequence of
// trials on one Sim allocates event records only up to the high-water
// mark of in-flight events.
func (s *Sim) Reset() {
	for i, ev := range s.events {
		s.recycle(ev)
		s.events[i] = nil
	}
	s.events = s.events[:0]
	s.now, s.seq, s.fired = 0, 0, 0
	s.stopped = false
}
