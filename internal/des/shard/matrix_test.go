package shard

import (
	"math"
	"testing"

	"warehousesim/internal/des"
)

func inf() des.Time { return des.Time(math.Inf(1)) }

// mat builds a Shards x Shards matrix with the given diagonal and
// off-diagonal values.
func mat(n int, diag, off des.Time) [][]des.Time {
	m := make([][]des.Time, n)
	for i := range m {
		m[i] = make([]des.Time, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = diag
			} else {
				m[i][j] = off
			}
		}
	}
	return m
}

// TestMatrixValidation: NewEngine rejects malformed matrices — the
// wrong shape, NaN or negative entries, and zero finite off-diagonal
// floors (no safe window exists at a zero floor) — while accepting
// +Inf off-diagonals (pairs with no modeled traffic) and a zero
// diagonal (same-shard posts have no conservative constraint).
func TestMatrixValidation(t *testing.T) {
	ok := func(m [][]des.Time) error {
		_, err := NewEngine(Config{Shards: len(m), Entities: 4, LookaheadMatrix: m})
		return err
	}
	if err := ok(mat(3, 0, 1e-4)); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	m := mat(3, 0, 1e-4)
	m[0][2], m[2][0] = inf(), inf()
	if err := ok(m); err != nil {
		t.Errorf("matrix with +Inf pair rejected: %v", err)
	}
	if err := ok(mat(2, 0, 1e-4)[:1]); err == nil {
		t.Error("wrong row count accepted")
	}
	short := mat(2, 0, 1e-4)
	short[1] = short[1][:1]
	if err := ok(short); err == nil {
		t.Error("ragged row accepted")
	}
	bad := mat(2, 0, 1e-4)
	bad[0][1] = des.Time(math.NaN())
	if err := ok(bad); err == nil {
		t.Error("NaN entry accepted")
	}
	bad = mat(2, 0, 1e-4)
	bad[1][0] = -1
	if err := ok(bad); err == nil {
		t.Error("negative entry accepted")
	}
	bad = mat(2, 0, 1e-4)
	bad[0][1] = 0
	if err := ok(bad); err == nil {
		t.Error("zero off-diagonal floor accepted")
	}
}

// TestMatrixClosure: windows derive from the min-plus closure, so a
// cheap relay path must beat an expensive direct entry, unreachable
// pairs must stay +Inf, and the diagonal must keep its raw floor.
func TestMatrixClosure(t *testing.T) {
	m := mat(3, 5e-5, inf())
	m[0][1], m[1][2] = 1e-4, 1e-4 // relay 0->1->2 exists
	m[0][2] = 1e-2                // direct path is 50x the relay
	m[1][0], m[2][1] = 2e-4, 2e-4
	eng, err := NewEngine(Config{Shards: 3, Entities: 3, LookaheadMatrix: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.PairLookahead(0, 2); got != 2e-4 {
		t.Errorf("closed[0][2] = %v, want relay cost 2e-4", got)
	}
	if got := eng.PairLookahead(2, 0); got != 4e-4 {
		t.Errorf("closed[2][0] = %v, want relay cost 4e-4", got)
	}
	if got := eng.PairLookahead(0, 0); got != 5e-5 {
		t.Errorf("closed diagonal = %v, want the raw floor 5e-5", got)
	}
	if got := eng.Lookahead(); got != 1e-4 {
		t.Errorf("Lookahead() = %v, want the min finite closed entry 1e-4", got)
	}
	// Fully decoupled corner: all off-diagonals +Inf stays +Inf.
	eng2, err := NewEngine(Config{Shards: 2, Entities: 2, LookaheadMatrix: mat(2, 0, inf())})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(eng2.PairLookahead(0, 1)), 1) {
		t.Error("unreachable pair gained a finite closed entry")
	}
}

// TestMatrixFloorEnforcement: Post validates against the raw floor of
// the exact (src shard, dst shard) pair — a delay legal for one pair
// must still panic on a tighter pair, and +Inf pairs refuse all posts.
func TestMatrixFloorEnforcement(t *testing.T) {
	m := mat(3, 1e-5, 1e-4)
	m[0][2], m[2][0] = inf(), inf()
	m[0][1] = 5e-4 // pair (0,1) has a 5x tighter-than-nothing floor
	eng, err := NewEngine(Config{Shards: 3, Entities: 3, LookaheadMatrix: m})
	if err != nil {
		t.Fatal(err)
	}
	eng.Assign(1, 1)
	eng.Assign(2, 2)
	s0, s1 := eng.Shard(0), eng.Shard(1)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	// At the pair floor: fine.
	s1.Post(1, 0, 1e-4, func() {})
	// Below the (0,1) floor even though it clears the generic 1e-4.
	mustPanic("Post below the pair floor", func() { s0.Post(0, 1, 2e-4, func() {}) })
	// Same-shard post below the diagonal floor.
	mustPanic("same-shard Post below the diagonal", func() { s0.Post(0, 0, 1e-6, func() {}) })
	// A pair with no modeled path refuses any delay.
	mustPanic("Post on a +Inf pair", func() { s0.Post(0, 2, 1e9, func() {}) })
}

// TestDeterministicNonUniformMatrix is the matrix analogue of the core
// contract: the toy model over heterogeneous per-pair floors (every
// finite entry at or below the posts' minimum delay, one tighter pair,
// plus relay-favoring asymmetry) still reproduces the single-shard
// history exactly.
func TestDeterministicNonUniformMatrix(t *testing.T) {
	const nodes = 24
	la := des.Time(1e-4)
	until := des.Time(0.2)
	refFP, refFired := runToy(t, 1, nodes, la, until, 0)
	for _, shards := range []int{2, 4} {
		m := mat(shards, 0, la)
		for i := 0; i < shards; i++ {
			m[i][(i+1)%shards] = la * 3 / 4 // asymmetric ring of cheaper hops
		}
		m[0][1] = la / 2 // one tighter pair: windows shrink, results must not
		eng, err := NewEngine(Config{Shards: shards, Entities: nodes, LookaheadMatrix: m})
		if err != nil {
			t.Fatal(err)
		}
		tn := wireToy(t, eng, nodes, la, until)
		tn.eng.Run(until)
		if fp := tn.fingerprint(); fp != refFP {
			t.Errorf("shards=%d non-uniform matrix: fingerprint %x != single-shard %x", shards, fp, refFP)
		}
		if fired := tn.eng.Fired(); fired != refFired {
			t.Errorf("shards=%d non-uniform matrix: fired %d != single-shard %d", shards, fired, refFired)
		}
	}
}

// TestMergeDeterminismAdversarial drives the k-way batch merge with
// adversarial interleavings: every sender posts to one victim shard
// with identical arrival times (so ordering rests entirely on the
// (src, seq) tie-break), across several rounds, with same-shard posts
// racing the cross-shard run at the same keys.
func TestMergeDeterminismAdversarial(t *testing.T) {
	const (
		senders = 6 // entities 1..senders post at entity 0
		rounds  = 40
		burst   = 5 // messages per sender per wave, same arrival time
	)
	la := des.Time(1e-3)
	run := func(shards int) (uint64, uint64) {
		eng, err := NewEngine(Config{Shards: shards, Entities: senders + 1, Lookahead: la})
		if err != nil {
			t.Fatal(err)
		}
		// Victim on shard 0; senders spread round-robin over the rest
		// (all co-resident at shards=1).
		for i := 1; i <= senders; i++ {
			eng.Assign(EntityID(i), (i-1)%shards)
		}
		var h uint64
		seq := 0
		for i := 1; i <= senders; i++ {
			id := EntityID(i)
			sh := eng.Shard(eng.ShardOf(id))
			var wave func()
			i := i
			wave = func() {
				for b := 0; b < burst; b++ {
					// Identical arrival time for every sender and burst:
					// the merge must fall back to (src, seq) everywhere.
					payload := uint64(i)<<32 | uint64(b)
					sh.Post(id, 0, la, func() {
						seq++
						h = mix(h, mix(payload, uint64(seq)))
					})
				}
				sh.Sim.Schedule(la, wave)
			}
			sh.Sim.Schedule(0, wave)
		}
		eng.Run(des.Time(rounds) * la)
		return h, eng.Fired()
	}
	refH, refFired := run(1)
	if refFired == 0 {
		t.Fatal("reference run fired nothing")
	}
	for _, shards := range []int{2, 3, 4, 7} {
		hh, fired := run(shards)
		if hh != refH {
			t.Errorf("shards=%d: delivery-order hash %x != single-shard %x", shards, hh, refH)
		}
		if fired != refFired {
			t.Errorf("shards=%d: fired %d != single-shard %d", shards, fired, refFired)
		}
	}
}
