// Package shard partitions one simulated cluster across several
// event heaps — one des.Sim per shard, each with its own clock — and
// synchronizes them conservatively so that N shards on N goroutines
// produce byte-identical results to one shard on one goroutine.
//
// Synchronization is a conservative bounded-lag window protocol
// (YAWNS-style) driven by null messages. Every cross-entity
// interaction goes through Post, which requires a delay of at least
// the engine lookahead L (the minimum cross-shard latency: NIC
// serialization plus a fabric hop, see internal/fabric). Shards run in
// lockstep rounds: each round, every shard sends every peer one batch
// through a bounded channel mailbox — the staged cross-shard messages
// of the window it just executed, plus its earliest output time (EOT:
// the earliest local event, undelivered arrival, or staged send it
// still knows about). An empty batch is a pure null message. Each
// shard then reduces E = min over all EOTs; since any new send must
// happen at an event time >= E, nothing can arrive anywhere before
// E + L, and the window [committed, E+L) is safe to execute without
// further communication. Windows therefore jump directly to the next
// real event plus L — the classic null-message creep of asynchronous
// Chandy-Misra (promises inching forward L at a time around topology
// cycles) cannot happen, because EOTs carry absolute event times, not
// incrementally-raised frontiers.
//
// Determinism does not come from the partitioning — it comes from the
// exchange discipline, which is identical at every shard count:
//
//   - Each posted message carries the key (arrive, src, per-src seq).
//     Messages with equal arrival times are delivered in key order, so
//     ordering never depends on which shard the sender lived on.
//   - A message moves into the destination heap exactly when the
//     destination's next local event time has reached its arrival time
//     (the advance loop interleaves delivery and execution at event
//     granularity), so heap seq assignment — the kernel's FIFO
//     tie-break — is a pure function of simulated time, not of the
//     partitioning or of goroutine interleaving.
//   - Entities may share state directly (a memory blade, a board's
//     resources) only when they are co-resident on every legal
//     partitioning; all other traffic — blade swaps, SAN disk I/O,
//     shuffle chunks — must use Post.
//
// Why conservative and not optimistic: the kernel pools event records
// and models mutate shared resources in place, so rollback would need
// full state checkpointing; with lookahead floors in the hundreds of
// microseconds against sub-microsecond event spacing, conservative
// windows already batch thousands of events per synchronization round.
package shard

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"warehousesim/internal/des"
	"warehousesim/internal/obs"
)

// EntityID names one simulated entity (a board, a memory blade, the
// SAN array, a job aggregator). IDs are global — assigned by the model
// from a single dense namespace — so per-entity send sequence numbers
// are independent of the partitioning.
type EntityID int32

// Config sizes an Engine.
type Config struct {
	// Shards is the number of partitions (>= 1). One shard runs inline
	// on the caller's goroutine and is exactly the single-heap kernel.
	Shards int
	// Entities is the size of the entity namespace; Post panics on IDs
	// outside [0, Entities).
	Entities int
	// Lookahead is the minimum cross-entity delay L. Post rejects
	// smaller delays; synchronization windows are derived from it. Must
	// be > 0 when Shards > 1 — a conservative engine has no safe window
	// at zero lookahead (see NewEngine).
	Lookahead des.Time
	// MailboxCap bounds each cross-shard channel in batches. The
	// lockstep protocol puts at most one batch in flight per channel
	// per round, so 0 defaults to DefaultMailboxCap purely as slack.
	MailboxCap int
}

// DefaultMailboxCap is the default bound of one cross-shard mailbox.
const DefaultMailboxCap = 4

// diagSampleStride is how many committed windows pass between
// diagnostic samples (clock skew, mailbox depth). Diagnostics depend
// on goroutine scheduling and are deliberately kept out of the
// deterministic export path; see EmitDiagnostics.
const diagSampleStride = 64

var infTime = des.Time(math.Inf(1))

// message is one cross-entity event in flight. The (arrive, src, seq)
// triple is the canonical delivery order.
type message struct {
	arrive des.Time
	src    EntityID
	seq    uint64
	act    des.Action
}

func msgLess(a, b message) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// msgHeap is a hand-rolled binary heap of messages ordered by
// (arrive, src, seq). container/heap would box every message through
// an interface on the pop path; this keeps delivery allocation-free.
type msgHeap []message

func (h *msgHeap) push(m message) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *msgHeap) pop() message {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = message{} // drop the action so the backing array retains no closures
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && msgLess(q[l], q[small]) {
			small = l
		}
		if r < n && msgLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// batch is what travels through a mailbox once per round: zero or more
// messages (an empty batch is a null message) plus the sender's
// earliest output time and stop vote.
type batch struct {
	eot  des.Time
	stop bool
	msgs []message
}

// peer is one outbound link: the staging buffer filled by Post and the
// channel it is flushed into at round boundaries.
type peer struct {
	shard int
	ch    chan batch
	stage []message
}

// Stats summarizes one shard's run for diagnostics. Everything here
// except Fired (horizon runs only) depends on scheduling and must
// never feed the deterministic export path.
type Stats struct {
	Shard           int
	Windows         int64   // synchronization rounds committed
	MsgsSent        int64   // cross-shard messages staged
	MsgsRecv        int64   // cross-shard messages received
	Fired           uint64  // events executed by this shard's Sim
	MaxPendingDepth int     // high-water mark of undelivered messages
	MaxBatchMsgs    int     // largest single mailbox batch received, in messages
	MaxSkewSec      float64 // max lead of this shard's clock over the slowest peer

	// Wall-clock split of the round loop: BusySec executing the window
	// (advance), BlockedSec flushing to and waiting on peer mailboxes.
	// BusySec/(BusySec+BlockedSec) is the shard's parallel efficiency.
	BusySec    float64
	BlockedSec float64
	// BindingRounds counts the rounds where this shard's own EOT was the
	// global minimum — the rounds where it was the one holding everyone
	// else back. The Slack* fields describe the other rounds: how far
	// (in simulated seconds) this shard's EOT sat above the binding one.
	BindingRounds int64
	SlackMeanSec  float64
	SlackP50Sec   float64
	SlackP95Sec   float64
	SlackMaxSec   float64
	// MeanWindowSec is the mean committed window width; LookaheadUtil is
	// lookahead/MeanWindowSec in (0,1] — near 1 means windows never grow
	// past the conservative floor (synchronization-bound), near 0 means
	// windows batch far ahead of it (compute-bound).
	MeanWindowSec float64
	LookaheadUtil float64
	// SentTo[d] is the number of cross-shard messages this shard staged
	// for destination shard d (the traffic matrix row; SentTo[own] = 0).
	SentTo []int64
}

// sample is one diagnostic point (t = committed simulated time).
type sample struct{ t, v float64 }

// Shard is one partition: a private des.Sim plus the exchange state.
// All methods must be called from the shard's own goroutine (model
// actions run there).
type Shard struct {
	eng *Engine
	id  int
	// Sim is the shard's private event heap and clock. Models schedule
	// entity-local continuations on it directly; cross-entity traffic
	// must go through Post.
	Sim *des.Sim

	committed des.Time
	pending   msgHeap // received but not yet delivered messages
	in        []chan batch
	peers     []*peer
	peerBy    []*peer // indexed by destination shard id, nil for self
	stagedMin des.Time

	clockBits atomic.Uint64 // Float64bits(Sim clock at last flush), for peer skew reads

	stats        Stats
	winSinceSamp int64
	depthSinceS  int
	skewSamples  []sample
	depthSamples []sample

	// Self-telemetry accumulators (owner goroutine only).
	busyNs    int64
	blockedNs int64
	binding   int64
	slackHist obs.Hist
	slackSum  float64
	slackMax  float64
	widthSum  float64
	sentTo    []int64

	// Live mirrors, stored once per committed round for concurrent
	// readers (Engine.LiveStats). Scheduling-dependent by nature — live
	// introspection only, never the deterministic export.
	liveWindows   atomic.Int64
	liveSent      atomic.Int64
	liveRecv      atomic.Int64
	liveFired     atomic.Uint64
	liveBusyNs    atomic.Int64
	liveBlockedNs atomic.Int64
}

// Engine coordinates the shards of one run.
type Engine struct {
	cfg     Config
	shards  []*Shard
	owner   []int32
	seqs    []uint64 // per-entity send sequence, written only by the owning shard
	stopped atomic.Bool
	ran     bool
}

// NewEngine builds an engine. It rejects Lookahead <= 0 (or NaN) when
// Shards > 1: the conservative window is [committed, E+lookahead), so
// at zero lookahead no shard could ever prove any event safe and the
// engine would deadlock by construction.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Entities < 1 {
		return nil, fmt.Errorf("shard: Entities must be >= 1, got %d", cfg.Entities)
	}
	la := float64(cfg.Lookahead)
	if math.IsNaN(la) || la < 0 {
		return nil, fmt.Errorf("shard: invalid lookahead %v", cfg.Lookahead)
	}
	if cfg.Shards > 1 && la <= 0 {
		return nil, fmt.Errorf("shard: lookahead must be > 0 with %d shards: a conservative engine cannot form a synchronization window at zero lookahead", cfg.Shards)
	}
	if cfg.MailboxCap <= 0 {
		cfg.MailboxCap = DefaultMailboxCap
	}
	e := &Engine{
		cfg:   cfg,
		owner: make([]int32, cfg.Entities),
		seqs:  make([]uint64, cfg.Entities),
	}
	e.shards = make([]*Shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &Shard{eng: e, id: i, Sim: des.NewSim(), stagedMin: infTime}
		e.shards[i].stats.Shard = i
		e.shards[i].sentTo = make([]int64, cfg.Shards)
	}
	// Full mesh of bounded mailboxes: every ordered pair gets one
	// channel, so EOT null messages flow even between shards that never
	// exchange model traffic.
	for _, src := range e.shards {
		src.peerBy = make([]*peer, cfg.Shards)
		for _, dst := range e.shards {
			if src == dst {
				continue
			}
			p := &peer{shard: dst.id, ch: make(chan batch, cfg.MailboxCap)}
			src.peers = append(src.peers, p)
			src.peerBy[dst.id] = p
			dst.in = append(dst.in, p.ch)
		}
	}
	return e, nil
}

// Shards returns the partition count.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns partition i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Lookahead returns the configured minimum cross-entity delay.
func (e *Engine) Lookahead() des.Time { return e.cfg.Lookahead }

// Assign places an entity on a shard. All entities start on shard 0;
// assignment must happen before Run.
func (e *Engine) Assign(ent EntityID, shard int) {
	if e.ran {
		panic("shard: Assign after Run")
	}
	if int(ent) < 0 || int(ent) >= len(e.owner) {
		panic(fmt.Sprintf("shard: entity %d outside [0,%d)", ent, len(e.owner)))
	}
	if shard < 0 || shard >= len(e.shards) {
		panic(fmt.Sprintf("shard: shard %d outside [0,%d)", shard, len(e.shards)))
	}
	e.owner[ent] = int32(shard)
}

// ShardOf returns the shard an entity is assigned to.
func (e *Engine) ShardOf(ent EntityID) int { return int(e.owner[ent]) }

// Stop asks every shard to halt; the stop vote rides the next round's
// null messages so all shards break at the same round boundary. Used
// by batch models once the job's completion time is known; results may
// only depend on events at or before the stop cause (everything
// earlier is guaranteed to have executed by the conservative
// invariant).
func (e *Engine) Stop() { e.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped.Load() }

// Fired returns the total events executed across all shards. Only
// deterministic when the run ended at its horizon or ran dry (not by
// Stop).
func (e *Engine) Fired() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.Sim.Fired()
	}
	return n
}

// ShardStats returns per-shard diagnostics. Call after Run returns.
func (e *Engine) ShardStats() []Stats {
	out := make([]Stats, len(e.shards))
	for i, s := range e.shards {
		s.stats.Fired = s.Sim.Fired()
		st := s.stats
		st.BusySec = float64(s.busyNs) / 1e9
		st.BlockedSec = float64(s.blockedNs) / 1e9
		st.BindingRounds = s.binding
		if n := s.slackHist.Count(); n > 0 {
			st.SlackMeanSec = s.slackSum / float64(n)
			st.SlackP50Sec = s.slackHist.Quantile(0.50)
			st.SlackP95Sec = s.slackHist.Quantile(0.95)
			st.SlackMaxSec = s.slackMax
		}
		if st.Windows > 0 {
			st.MeanWindowSec = s.widthSum / float64(st.Windows)
			if st.MeanWindowSec > 0 {
				st.LookaheadUtil = float64(e.cfg.Lookahead) / st.MeanWindowSec
			}
		}
		st.SentTo = append([]int64(nil), s.sentTo...)
		out[i] = st
	}
	return out
}

// LiveStats is the subset of Stats safe to read while Run is still
// going: each shard stores it atomically once per committed round
// (once at completion on the single-shard fast path). Values lag the
// shard by at most one round and depend on goroutine scheduling — they
// feed the live introspection endpoint, never the deterministic
// export.
type LiveStats struct {
	Shard      int     `json:"shard"`
	Windows    int64   `json:"windows"`
	MsgsSent   int64   `json:"msgs_sent"`
	MsgsRecv   int64   `json:"msgs_recv"`
	Fired      uint64  `json:"fired"`
	BusySec    float64 `json:"busy_sec"`
	BlockedSec float64 `json:"blocked_sec"`
}

// LiveStats returns each shard's live counters. Safe to call from any
// goroutine at any time, including while Run is executing.
func (e *Engine) LiveStats() []LiveStats {
	out := make([]LiveStats, len(e.shards))
	for i, s := range e.shards {
		out[i] = LiveStats{
			Shard:      s.id,
			Windows:    s.liveWindows.Load(),
			MsgsSent:   s.liveSent.Load(),
			MsgsRecv:   s.liveRecv.Load(),
			Fired:      s.liveFired.Load(),
			BusySec:    float64(s.liveBusyNs.Load()) / 1e9,
			BlockedSec: float64(s.liveBlockedNs.Load()) / 1e9,
		}
	}
	return out
}

// publishLive mirrors the owner-goroutine counters into the atomics
// LiveStats reads. Called once per committed round and at run exit.
func (s *Shard) publishLive() {
	s.liveWindows.Store(s.stats.Windows)
	s.liveSent.Store(s.stats.MsgsSent)
	s.liveRecv.Store(s.stats.MsgsRecv)
	s.liveFired.Store(s.Sim.Fired())
	s.liveBusyNs.Store(s.busyNs)
	s.liveBlockedNs.Store(s.blockedNs)
}

// noteSlack classifies one round's EOT against the global minimum:
// either this shard was the binding one, or it records how far (in
// simulated seconds) its own frontier sat above the binding EOT. An
// infinite own EOT (shard locally dry) carries no information and is
// skipped.
func (s *Shard) noteSlack(myEOT, e des.Time) {
	if math.IsInf(float64(myEOT), 1) {
		return
	}
	slack := float64(myEOT - e)
	if slack <= 0 {
		s.binding++
		return
	}
	s.slackHist.Add(slack)
	s.slackSum += slack
	if slack > s.slackMax {
		s.slackMax = slack
	}
}

// Run executes the simulation to the inclusive horizon (events exactly
// at until still fire, matching des.Sim.Run) and returns when every
// shard has finished — at the horizon, when the whole cluster runs out
// of events (a batch job completing), or at the round after Stop. One
// shard runs inline on the caller's goroutine; more run one goroutine
// each. Run may be called once per Engine.
func (e *Engine) Run(until des.Time) {
	if e.ran {
		panic("shard: Engine.Run called twice")
	}
	e.ran = true
	if len(e.shards) == 1 {
		e.shards[0].runSingle(until)
		return
	}
	var wg sync.WaitGroup
	for _, s := range e.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			s.run(until)
		}(s)
	}
	wg.Wait()
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Now returns the shard's current simulated time.
func (s *Shard) Now() des.Time { return s.Sim.Now() }

// Post sends a cross-entity event: act runs on dst's shard at
// Now()+delay. delay must be >= the engine lookahead — that floor is
// what makes conservative windows safe — and src must be owned by this
// shard. Same-time deliveries are ordered by (src, per-src seq), which
// is independent of the partitioning.
func (s *Shard) Post(src, dst EntityID, delay des.Time, act des.Action) {
	e := s.eng
	if int(src) < 0 || int(src) >= len(e.owner) || int(dst) < 0 || int(dst) >= len(e.owner) {
		panic(fmt.Sprintf("shard: Post %d->%d outside entity namespace [0,%d)", src, dst, len(e.owner)))
	}
	if e.owner[src] != int32(s.id) {
		panic(fmt.Sprintf("shard: Post from entity %d owned by shard %d, not %d", src, e.owner[src], s.id))
	}
	if math.IsNaN(float64(delay)) || delay < e.cfg.Lookahead {
		panic(fmt.Sprintf("shard: cross-entity delay %v below lookahead %v at t=%v", delay, e.cfg.Lookahead, s.Sim.Now()))
	}
	m := message{arrive: s.Sim.Now() + delay, src: src, seq: e.seqs[src], act: act}
	e.seqs[src]++
	dst32 := e.owner[dst]
	if int(dst32) == s.id {
		s.pushPending(m)
		return
	}
	p := s.peerBy[dst32]
	p.stage = append(p.stage, m)
	if m.arrive < s.stagedMin {
		s.stagedMin = m.arrive
	}
	s.stats.MsgsSent++
	s.sentTo[dst32]++
}

func (s *Shard) pushPending(m message) {
	s.pending.push(m)
	if d := len(s.pending); d > s.stats.MaxPendingDepth {
		s.stats.MaxPendingDepth = d
	}
}

// eot is the shard's earliest output time: the earliest event it could
// still execute (local heap or undelivered arrival) or has already
// staged for a peer. Any future send happens at an event time >= eot,
// so nothing from this shard can arrive anywhere before eot+lookahead.
func (s *Shard) eot() des.Time {
	e := infTime
	if t, ok := s.Sim.PeekNext(); ok {
		e = t
	}
	if len(s.pending) > 0 && s.pending[0].arrive < e {
		e = s.pending[0].arrive
	}
	if s.stagedMin < e {
		e = s.stagedMin
	}
	return e
}

// run is one shard's side of the lockstep round protocol:
//
//	flush {staged msgs, EOT, stop vote} to every peer
//	receive one batch from every peer; E = min over all EOTs
//	stop, run dry (E = +Inf), or execute the window [committed, E+L)
//
// Every shard computes the same E from the same N values, so all
// shards take the final/dry/stop exits in the same round: nobody is
// left blocking on a mailbox, which is the protocol's deadlock-freedom
// argument (each round sends all batches before receiving any, and a
// mailbox holds at most one in-flight batch per round).
func (s *Shard) run(until des.Time) {
	la := s.eng.cfg.Lookahead
	// Two wall-clock reads per round split the loop into a blocked
	// segment (flush + mailbox waits) and a busy segment (window
	// execution) — with thousands of events per window the overhead is
	// noise, and the split is the shard's parallel-efficiency signal.
	last := time.Now()
	for {
		myEOT := s.eot()
		myStop := s.eng.stopped.Load()
		for _, p := range s.peers {
			p.ch <- batch{eot: myEOT, stop: myStop, msgs: p.stage}
			p.stage = nil
		}
		s.stagedMin = infTime
		s.clockBits.Store(math.Float64bits(float64(s.Sim.Now())))
		e, stop := myEOT, myStop
		for _, ch := range s.in {
			b := <-ch
			if b.eot < e {
				e = b.eot
			}
			stop = stop || b.stop
			if n := len(b.msgs); n > s.stats.MaxBatchMsgs {
				s.stats.MaxBatchMsgs = n
			}
			for _, m := range b.msgs {
				s.pushPending(m)
				s.stats.MsgsRecv++
			}
		}
		now := time.Now()
		s.blockedNs += now.Sub(last).Nanoseconds()
		last = now
		if stop {
			s.publishLive()
			return
		}
		if math.IsInf(float64(e), 1) {
			s.publishLive()
			return // the whole cluster ran dry
		}
		s.noteSlack(myEOT, e)
		if e+la > until {
			// The remaining window covers the horizon: finish
			// inclusively. Sends staged here would arrive past the
			// horizon, so no further exchange is needed.
			s.advance(until, true)
			s.busyNs += time.Since(last).Nanoseconds()
			s.publishLive()
			return
		}
		w := e + la
		s.advance(w, false)
		now = time.Now()
		s.busyNs += now.Sub(last).Nanoseconds()
		last = now
		s.widthSum += float64(w - s.committed)
		s.committed = w
		s.stats.Windows++
		s.noteWindow()
		s.publishLive()
	}
}

// runSingle is the one-shard fast path: no rounds, no channels — the
// advance loop with the same delivery rule, which is exactly the
// single-heap kernel. There are no rounds to time, so live counters
// update once, at completion (all busy, nothing blocked).
func (s *Shard) runSingle(until des.Time) {
	start := time.Now()
	s.advance(until, true)
	s.busyNs += time.Since(start).Nanoseconds()
	s.publishLive()
}

// advance interleaves message delivery and event execution at event
// granularity up to target. Non-final windows are exclusive (events
// and deliveries strictly before target — arrivals exactly at the
// window edge may still gain same-time company from the next round),
// the final window is inclusive to match des.Sim.Run horizon
// semantics.
func (s *Shard) advance(target des.Time, final bool) {
	stopCheck := 0
	for {
		if stopCheck++; stopCheck&0x3ff == 0 && s.eng.stopped.Load() {
			return
		}
		na, hasNa := s.Sim.PeekNext()
		if len(s.pending) > 0 {
			ma := s.pending[0].arrive
			if (ma < target || (final && ma == target)) && (!hasNa || ma <= na) {
				s.deliverAt(ma)
				continue
			}
		}
		if hasNa && (na < target || (final && na == target)) {
			s.Sim.RunNext()
			continue
		}
		break
	}
	if final && !math.IsInf(float64(target), 1) {
		s.Sim.Run(target) // nothing left to fire; advances the clock to the horizon
	}
}

// deliverAt moves every pending message arriving exactly at t into the
// local heap. The pending heap yields them in (src, seq) order, and
// all possible senders for time t have already executed (their events
// ran at t-lookahead or earlier), so the batch is complete and
// canonically ordered at any shard count.
func (s *Shard) deliverAt(t des.Time) {
	for len(s.pending) > 0 && s.pending[0].arrive == t {
		m := s.pending.pop()
		s.Sim.ScheduleAt(m.arrive, m.act)
	}
}

// noteWindow records clock-skew and mailbox-depth diagnostics every
// diagSampleStride windows. The values depend on goroutine scheduling,
// so they feed EmitDiagnostics, never the deterministic export.
func (s *Shard) noteWindow() {
	minClock := infTime
	for _, p := range s.eng.shards {
		if p == s {
			continue
		}
		if c := des.Time(math.Float64frombits(p.clockBits.Load())); c < minClock {
			minClock = c
		}
	}
	if skew := float64(s.Sim.Now() - minClock); skew > s.stats.MaxSkewSec {
		s.stats.MaxSkewSec = skew
	}
	if d := len(s.pending); d > s.depthSinceS {
		s.depthSinceS = d
	}
	s.winSinceSamp++
	if s.winSinceSamp < diagSampleStride {
		return
	}
	s.winSinceSamp = 0
	t := float64(s.committed)
	s.skewSamples = append(s.skewSamples, sample{t: t, v: float64(s.Sim.Now() - minClock)})
	s.depthSamples = append(s.depthSamples, sample{t: t, v: float64(s.depthSinceS)})
	s.depthSinceS = 0
}
