// Package shard partitions one simulated cluster across several
// event heaps — one des.Sim per shard, each with its own clock — and
// synchronizes them conservatively so that N shards on N goroutines
// produce byte-identical results to one shard on one goroutine.
//
// Synchronization is a conservative bounded-lag window protocol
// (YAWNS-style) driven by null messages. Every cross-entity
// interaction goes through Post, which requires a delay of at least
// the lookahead floor of the (source shard, destination shard) pair:
// Config.LookaheadMatrix, derived by the model from its topology (an
// intra-enclosure backplane hop is cheaper than a cross-enclosure
// fabric hop, which is cheaper than a SAN path), or a uniform matrix
// built from the scalar Config.Lookahead. The engine closes the raw
// matrix under min-plus (Floyd-Warshall), so a relay through an
// intermediate shard never promises more than the sum of its hops.
//
// Shards run in lockstep rounds. Each round, every shard sends every
// peer one batch through a bounded channel mailbox: the cross-shard
// messages it staged during the window it just executed — sorted by
// the canonical key — plus its constraint row and its scalar earliest
// output time (EOT) and stop vote. An empty batch is a pure null
// message. The row carries one lower bound per destination shard d on
// when anything from this shard s can still reach d:
//
//	row_s[d] = min( localMin_s + L*[s][d],
//	                min over k != d of stagedMin_s[k] + L*[k][d],
//	                stagedMin_s[d] + rt[d] )
//
// where localMin_s is s's earliest local event or undelivered arrival,
// stagedMin_s[k] is the earliest arrival s just staged for shard k,
// L* is the closed matrix and rt[d] is the cheapest closed round trip
// out of d. The staged terms matter: a message already in flight to k
// can make k send to d sooner than anything still on s's heap. The
// last term bounds the consequences of messages staged directly for d:
// the messages themselves ride in the same batch as the row (so d
// merges them before advancing), but d may execute one inside the very
// window this row authorizes and trigger a reply chain that boomerangs
// back to d — any such path leaves d and returns, so it costs at least
// rt[d]. The diagonal slot row_s[s] carries the same bound for s
// itself: localMin_s + rt[s] for what s's own in-window events can
// cause to come back, plus the staged terms.
// Every shard then holds the full row matrix and reduces, identically,
//
//	E_d = min over all s of row_s[d]
//
// so the window [committed_d, E_d) is safe for d to execute without
// further communication — and because every shard computes every E_d
// from the same rows, the run-dry, final-window and stop exits happen
// on the same round everywhere: nobody is left blocking on a mailbox,
// which is the protocol's deadlock-freedom argument. Windows jump
// directly to the next real event plus closed lookahead — the classic
// null-message creep of asynchronous Chandy-Misra cannot happen,
// because rows carry absolute event times, not incrementally-raised
// frontiers. Pairs with no modeled traffic have an infinite entry, so
// a shard whose only coupling is the SAN path is never throttled by
// the tighter fabric floor of pairs it does not talk to.
//
// Determinism does not come from the partitioning — it comes from the
// exchange discipline, which is identical at every shard count:
//
//   - Each posted message carries the key (arrive, src, per-src seq).
//     Messages with equal arrival times are delivered in key order, so
//     ordering never depends on which shard the sender lived on.
//   - Batches are sorted by the sender and k-way merged by the
//     receiver into one sorted pending run; same-shard posts sit in a
//     separate local heap and delivery always pops the key-smaller of
//     the two — exactly the single-heap order.
//   - A message moves into the destination heap exactly when the
//     destination's next local event time has reached its arrival time
//     (the advance loop interleaves delivery and execution at event
//     granularity), so heap seq assignment — the kernel's FIFO
//     tie-break — is a pure function of simulated time, not of the
//     partitioning or of goroutine interleaving.
//   - Entities may share state directly (a memory blade, a board's
//     resources) only when they are co-resident on every legal
//     partitioning; all other traffic — blade swaps, SAN disk I/O,
//     shuffle chunks — must use Post.
//
// The mailbox slabs and row vectors are recycled through small free
// channels (ownership transfers with the batch and returns after the
// merge), so steady-state rounds allocate nothing.
//
// Why conservative and not optimistic: the kernel pools event records
// and models mutate shared resources in place, so rollback would need
// full state checkpointing; with lookahead floors in the tens of
// microseconds against sub-microsecond event spacing, conservative
// windows already batch thousands of events per synchronization round.
package shard

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"warehousesim/internal/des"
	"warehousesim/internal/obs"
)

// EntityID names one simulated entity (a board, a memory blade, the
// SAN array, a job aggregator). IDs are global — assigned by the model
// from a single dense namespace — so per-entity send sequence numbers
// are independent of the partitioning.
type EntityID int32

// Config sizes an Engine.
type Config struct {
	// Shards is the number of partitions (>= 1). One shard runs inline
	// on the caller's goroutine and is exactly the single-heap kernel.
	Shards int
	// Entities is the size of the entity namespace; Post panics on IDs
	// outside [0, Entities).
	Entities int
	// Lookahead is the uniform minimum cross-entity delay L, used when
	// LookaheadMatrix is nil: every pair (including same-shard posts)
	// gets this floor. Must be > 0 when Shards > 1 and no matrix is
	// given — a conservative engine has no safe window at zero
	// lookahead (see NewEngine).
	Lookahead des.Time
	// LookaheadMatrix, when non-nil, gives the per-(src shard, dst
	// shard) minimum delay floor: Post from a src-shard entity to a
	// dst-shard entity rejects delays below LookaheadMatrix[src][dst].
	// It must be Shards x Shards; diagonal entries floor same-shard
	// posts and may be zero; off-diagonal entries must be > 0 or +Inf
	// (+Inf marks a pair with no modeled traffic — Post there always
	// panics, and the pair never throttles a window). Windows are
	// derived from the min-plus closure of this matrix, so entries
	// need not satisfy the triangle inequality. When nil, a uniform
	// matrix is built from Lookahead.
	LookaheadMatrix [][]des.Time
	// MailboxCap bounds each cross-shard channel in batches. The
	// lockstep protocol puts at most one batch in flight per channel
	// per round, so 0 defaults to DefaultMailboxCap purely as slack.
	MailboxCap int
}

// DefaultMailboxCap is the default bound of one cross-shard mailbox.
const DefaultMailboxCap = 4

// diagSampleStride is how many committed windows pass between
// diagnostic samples (clock skew, mailbox depth). Diagnostics depend
// on goroutine scheduling and are deliberately kept out of the
// deterministic export path; see EmitDiagnostics.
const diagSampleStride = 64

var infTime = des.Time(math.Inf(1))

// message is one cross-entity event in flight. The (arrive, src, seq)
// triple is the canonical delivery order.
type message struct {
	arrive des.Time
	src    EntityID
	seq    uint64
	act    des.Action
}

func msgLess(a, b message) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// msgCmp is msgLess for slices.SortFunc. Keys are unique (seq is
// per-source monotonic), so the sort order is total and deterministic.
func msgCmp(a, b message) int {
	switch {
	case msgLess(a, b):
		return -1
	case msgLess(b, a):
		return 1
	}
	return 0
}

// msgHeap is a hand-rolled binary heap of messages ordered by
// (arrive, src, seq). container/heap would box every message through
// an interface on the pop path; this keeps same-shard delivery
// allocation-free.
type msgHeap []message

func (h *msgHeap) push(m message) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *msgHeap) pop() message {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = message{} // drop the action so the backing array retains no closures
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && msgLess(q[l], q[small]) {
			small = l
		}
		if r < n && msgLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// batch is what travels through a mailbox once per round: zero or more
// messages sorted by (arrive, src, seq) — a nil slice is a pure null
// message — plus the sender's constraint row (ownership transfers with
// the batch; the receiver copies it out and returns the buffer through
// the freeRows channel), its scalar earliest output time and its stop
// vote.
type batch struct {
	eot  des.Time
	row  []des.Time
	stop bool
	msgs []message
}

// peer is one outbound link: the staging slab filled by Post, the
// channel it is flushed into at round boundaries, and the free
// channels the receiver returns consumed slabs and row buffers on.
type peer struct {
	shard     int
	ch        chan batch
	stage     []message
	stagedMin des.Time // earliest arrival among staged messages
	freeMsgs  chan []message
	freeRows  chan []des.Time
}

// inbox is one inbound link: the source shard id, the shared channel,
// and the same free channels the sender's peer drains for reuse.
type inbox struct {
	src      int
	ch       chan batch
	freeMsgs chan []message
	freeRows chan []des.Time
}

// Stats summarizes one shard's run for diagnostics. Everything here
// except Fired (horizon runs only) depends on scheduling and must
// never feed the deterministic export path.
type Stats struct {
	Shard           int
	Windows         int64   // synchronization rounds committed
	MsgsSent        int64   // cross-shard messages staged
	MsgsRecv        int64   // cross-shard messages received
	Fired           uint64  // events executed by this shard's Sim
	MaxPendingDepth int     // high-water mark of undelivered messages
	MaxBatchMsgs    int     // largest single mailbox batch received, in messages
	MaxSkewSec      float64 // max lead of this shard's clock over the slowest peer

	// Wall-clock split of the round loop: BusySec executing the window
	// (advance), BlockedSec flushing to and waiting on peer mailboxes.
	// BusySec/(BusySec+BlockedSec) is the shard's parallel efficiency.
	BusySec    float64
	BlockedSec float64
	// BindingRounds counts the rounds where this shard's own EOT was the
	// global minimum — the rounds where it was the one holding everyone
	// else back. The Slack* fields describe the other rounds: how far
	// (in simulated seconds) this shard's EOT sat above the binding one.
	BindingRounds int64
	SlackMeanSec  float64
	SlackP50Sec   float64
	SlackP95Sec   float64
	SlackMaxSec   float64
	// MeanWindowSec is the mean committed window width; LookaheadUtil is
	// the engine's minimum pairwise lookahead over MeanWindowSec, in
	// (0,1] — near 1 means windows never grow past the conservative
	// floor (synchronization-bound), near 0 means windows batch far
	// ahead of it (compute-bound).
	MeanWindowSec float64
	LookaheadUtil float64
	// SentTo[d] is the number of cross-shard messages this shard staged
	// for destination shard d (the traffic matrix row; SentTo[own] = 0).
	SentTo []int64
	// LookaheadSecTo[d] is the closed (effective) lookahead from this
	// shard to shard d in seconds; +Inf for unreachable pairs and the
	// raw diagonal floor for d == Shard.
	LookaheadSecTo []float64
}

// sample is one diagnostic point (t = committed simulated time).
type sample struct{ t, v float64 }

// Shard is one partition: a private des.Sim plus the exchange state.
// All methods must be called from the shard's own goroutine (model
// actions run there).
type Shard struct {
	eng *Engine
	id  int
	// Sim is the shard's private event heap and clock. Models schedule
	// entity-local continuations on it directly; cross-entity traffic
	// must go through Post.
	Sim *des.Sim

	committed des.Time
	doneFinal bool

	// Cross-shard arrivals: one sorted run (merged once per round from
	// the received batches), consumed from pendHead. Same-shard posts
	// go to the local heap; delivery pops the key-smaller of the two.
	pending    []message
	pendHead   int
	mergeBuf   []message   // ping-pong buffer for the round merge
	runs       [][]message // received slabs awaiting merge (round scratch)
	runIn      []*inbox    // slab origin, for returning after the merge
	srcScratch [][]message // k-way merge cursor scratch
	local      msgHeap

	in     []inbox
	peers  []*peer
	peerBy []*peer // indexed by destination shard id, nil for self

	rows [][]des.Time // rows[s] = latest constraint row from shard s
	eots []des.Time   // latest scalar EOT per shard (dry detection)

	clockBits atomic.Uint64 // Float64bits(Sim clock at last flush), for peer skew reads

	stats        Stats
	winSinceSamp int64
	depthSinceS  int
	skewSamples  []sample
	depthSamples []sample

	// Self-telemetry accumulators (owner goroutine only).
	busyNs    int64
	blockedNs int64
	binding   int64
	slackHist obs.Hist
	slackSum  float64
	slackMax  float64
	widthSum  float64
	sentTo    []int64

	// Live mirrors, stored once per committed round for concurrent
	// readers (Engine.LiveStats). Scheduling-dependent by nature — live
	// introspection only, never the deterministic export.
	liveWindows   atomic.Int64
	liveSent      atomic.Int64
	liveRecv      atomic.Int64
	liveFired     atomic.Uint64
	liveBusyNs    atomic.Int64
	liveBlockedNs atomic.Int64
	liveWidthBits atomic.Uint64 // Float64bits(widthSum), for live window-width reads
}

// Engine coordinates the shards of one run.
type Engine struct {
	cfg     Config
	shards  []*Shard
	owner   []int32
	seqs    []uint64 // per-entity send sequence, written only by the owning shard
	raw     [][]des.Time
	closed  [][]des.Time
	rt      []des.Time // rt[s] = min round-trip lookahead s -> any k -> s
	minLA   des.Time
	stopped atomic.Bool
	ran     bool
}

// NewEngine builds an engine. Without a matrix it rejects
// Lookahead <= 0 (or NaN) when Shards > 1; with a matrix it rejects
// wrong dimensions, NaN or negative entries, and non-positive finite
// off-diagonal entries: the conservative window is bounded by the
// pairwise lookahead, so at a zero floor no shard could ever prove any
// event safe and the engine would deadlock by construction.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Entities < 1 {
		return nil, fmt.Errorf("shard: Entities must be >= 1, got %d", cfg.Entities)
	}
	n := cfg.Shards
	var raw [][]des.Time
	if cfg.LookaheadMatrix != nil {
		if len(cfg.LookaheadMatrix) != n {
			return nil, fmt.Errorf("shard: lookahead matrix has %d rows, want %d", len(cfg.LookaheadMatrix), n)
		}
		raw = make([][]des.Time, n)
		for i, r := range cfg.LookaheadMatrix {
			if len(r) != n {
				return nil, fmt.Errorf("shard: lookahead matrix row %d has %d entries, want %d", i, len(r), n)
			}
			raw[i] = append([]des.Time(nil), r...)
			for j, v := range r {
				f := float64(v)
				if math.IsNaN(f) || f < 0 {
					return nil, fmt.Errorf("shard: invalid lookahead %v for pair (%d,%d)", v, i, j)
				}
				if i != j && f == 0 {
					return nil, fmt.Errorf("shard: zero lookahead for cross-shard pair (%d,%d): a conservative engine cannot form a synchronization window at zero lookahead", i, j)
				}
			}
		}
	} else {
		la := float64(cfg.Lookahead)
		if math.IsNaN(la) || la < 0 {
			return nil, fmt.Errorf("shard: invalid lookahead %v", cfg.Lookahead)
		}
		if n > 1 && la <= 0 {
			return nil, fmt.Errorf("shard: lookahead must be > 0 with %d shards: a conservative engine cannot form a synchronization window at zero lookahead", n)
		}
		raw = make([][]des.Time, n)
		for i := range raw {
			raw[i] = make([]des.Time, n)
			for j := range raw[i] {
				raw[i][j] = cfg.Lookahead
			}
		}
	}
	if cfg.MailboxCap <= 0 {
		cfg.MailboxCap = DefaultMailboxCap
	}
	e := &Engine{
		cfg:    cfg,
		owner:  make([]int32, cfg.Entities),
		seqs:   make([]uint64, cfg.Entities),
		raw:    raw,
		closed: closeMatrix(raw),
	}
	e.rt = make([]des.Time, n)
	for i := 0; i < n; i++ {
		e.rt[i] = infTime
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			if v := e.closed[i][k] + e.closed[k][i]; v < e.rt[i] {
				e.rt[i] = v
			}
		}
	}
	e.minLA = e.closed[0][0]
	if n > 1 {
		e.minLA = infTime
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && e.closed[i][j] < e.minLA {
					e.minLA = e.closed[i][j]
				}
			}
		}
		if math.IsInf(float64(e.minLA), 1) {
			e.minLA = 0 // fully decoupled shards: no finite pair
		}
	}
	e.shards = make([]*Shard, n)
	for i := range e.shards {
		s := &Shard{eng: e, id: i, Sim: des.NewSim()}
		s.stats.Shard = i
		s.sentTo = make([]int64, n)
		s.rows = make([][]des.Time, n)
		for j := range s.rows {
			s.rows[j] = make([]des.Time, n)
			for d := range s.rows[j] {
				s.rows[j][d] = infTime
			}
		}
		s.eots = make([]des.Time, n)
		e.shards[i] = s
	}
	// Full mesh of bounded mailboxes: every ordered pair gets one
	// channel, so null messages flow even between shards that never
	// exchange model traffic. The free channels run the opposite way,
	// recycling consumed message slabs and row buffers.
	for _, src := range e.shards {
		src.peerBy = make([]*peer, n)
		for _, dst := range e.shards {
			if src == dst {
				continue
			}
			p := &peer{
				shard:     dst.id,
				ch:        make(chan batch, cfg.MailboxCap),
				stagedMin: infTime,
				freeMsgs:  make(chan []message, cfg.MailboxCap+1),
				freeRows:  make(chan []des.Time, cfg.MailboxCap+1),
			}
			src.peers = append(src.peers, p)
			src.peerBy[dst.id] = p
			dst.in = append(dst.in, inbox{src: src.id, ch: p.ch, freeMsgs: p.freeMsgs, freeRows: p.freeRows})
		}
	}
	return e, nil
}

// closeMatrix computes the min-plus closure of the raw pairwise
// lookahead floors: closed[i][j] is the cheapest way anything leaving
// shard i can reach shard j, relaying through intermediate shards
// (each relay hop pays that pair's raw floor; executing at a relay is
// free). Diagonal entries keep their raw floor — they floor same-shard
// posts and take no part in window math.
func closeMatrix(raw [][]des.Time) [][]des.Time {
	n := len(raw)
	d := make([][]des.Time, n)
	for i := range d {
		d[i] = append([]des.Time(nil), raw[i]...)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			ik := d[i][k]
			if math.IsInf(float64(ik), 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if j == k || j == i {
					continue
				}
				if v := ik + d[k][j]; v < d[i][j] {
					d[i][j] = v
				}
			}
		}
	}
	for i := range d {
		d[i][i] = raw[i][i]
	}
	return d
}

// Shards returns the partition count.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns partition i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Lookahead returns the engine's minimum effective cross-shard
// lookahead: the smallest finite off-diagonal entry of the closed
// matrix (the uniform Lookahead when no matrix was given), or the
// same-shard floor for a single-shard engine.
func (e *Engine) Lookahead() des.Time { return e.minLA }

// PairLookahead returns the closed (effective) lookahead from shard
// src to shard dst: the raw same-shard floor when src == dst, +Inf for
// pairs with no modeled path.
func (e *Engine) PairLookahead(src, dst int) des.Time { return e.closed[src][dst] }

// Assign places an entity on a shard. All entities start on shard 0;
// assignment must happen before Run.
func (e *Engine) Assign(ent EntityID, shard int) {
	if e.ran {
		panic("shard: Assign after Run")
	}
	if int(ent) < 0 || int(ent) >= len(e.owner) {
		panic(fmt.Sprintf("shard: entity %d outside [0,%d)", ent, len(e.owner)))
	}
	if shard < 0 || shard >= len(e.shards) {
		panic(fmt.Sprintf("shard: shard %d outside [0,%d)", shard, len(e.shards)))
	}
	e.owner[ent] = int32(shard)
}

// ShardOf returns the shard an entity is assigned to.
func (e *Engine) ShardOf(ent EntityID) int { return int(e.owner[ent]) }

// Stop asks every shard to halt; the stop vote rides the next round's
// null messages so all shards break at the same round boundary. Used
// by batch models once the job's completion time is known; results may
// only depend on events at or before the stop cause (everything
// earlier is guaranteed to have executed by the conservative
// invariant).
func (e *Engine) Stop() { e.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped.Load() }

// Fired returns the total events executed across all shards. Only
// deterministic when the run ended at its horizon or ran dry (not by
// Stop).
func (e *Engine) Fired() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.Sim.Fired()
	}
	return n
}

// ShardStats returns per-shard diagnostics. Call after Run returns.
func (e *Engine) ShardStats() []Stats {
	out := make([]Stats, len(e.shards))
	for i, s := range e.shards {
		s.stats.Fired = s.Sim.Fired()
		st := s.stats
		st.BusySec = float64(s.busyNs) / 1e9
		st.BlockedSec = float64(s.blockedNs) / 1e9
		st.BindingRounds = s.binding
		if n := s.slackHist.Count(); n > 0 {
			st.SlackMeanSec = s.slackSum / float64(n)
			st.SlackP50Sec = s.slackHist.Quantile(0.50)
			st.SlackP95Sec = s.slackHist.Quantile(0.95)
			st.SlackMaxSec = s.slackMax
		}
		if st.Windows > 0 {
			st.MeanWindowSec = s.widthSum / float64(st.Windows)
			if st.MeanWindowSec > 0 {
				st.LookaheadUtil = float64(e.minLA) / st.MeanWindowSec
				if st.LookaheadUtil > 1 {
					st.LookaheadUtil = 1
				}
			}
		}
		st.SentTo = append([]int64(nil), s.sentTo...)
		st.LookaheadSecTo = make([]float64, len(e.shards))
		for d := range st.LookaheadSecTo {
			st.LookaheadSecTo[d] = float64(e.closed[i][d])
		}
		out[i] = st
	}
	return out
}

// LiveStats is the subset of Stats safe to read while Run is still
// going: each shard stores it atomically once per committed round
// (once at completion on the single-shard fast path). Values lag the
// shard by at most one round and depend on goroutine scheduling — they
// feed the live introspection endpoint, never the deterministic
// export.
type LiveStats struct {
	Shard      int     `json:"shard"`
	Windows    int64   `json:"windows"`
	MsgsSent   int64   `json:"msgs_sent"`
	MsgsRecv   int64   `json:"msgs_recv"`
	Fired      uint64  `json:"fired"`
	BusySec    float64 `json:"busy_sec"`
	BlockedSec float64 `json:"blocked_sec"`
	// LookaheadSecTo[d] is the closed lookahead from this shard to
	// shard d (static for the run; pairs with no path report -1, since
	// JSON cannot carry +Inf), and LookaheadUtil is the tightest of
	// those floors over the shard's mean committed window so far — the
	// live view of the per-pair utilization the post-run diagnostics
	// break out pair by pair.
	LookaheadSecTo []float64 `json:"lookahead_sec_to"`
	LookaheadUtil  float64   `json:"lookahead_util"`
}

// LiveStats returns each shard's live counters. Safe to call from any
// goroutine at any time, including while Run is executing.
func (e *Engine) LiveStats() []LiveStats {
	out := make([]LiveStats, len(e.shards))
	for i, s := range e.shards {
		ls := LiveStats{
			Shard:      s.id,
			Windows:    s.liveWindows.Load(),
			MsgsSent:   s.liveSent.Load(),
			MsgsRecv:   s.liveRecv.Load(),
			Fired:      s.liveFired.Load(),
			BusySec:    float64(s.liveBusyNs.Load()) / 1e9,
			BlockedSec: float64(s.liveBlockedNs.Load()) / 1e9,
		}
		ls.LookaheadSecTo = make([]float64, len(e.shards))
		for d := range ls.LookaheadSecTo {
			if v := float64(e.closed[i][d]); math.IsInf(v, 1) {
				ls.LookaheadSecTo[d] = -1
			} else {
				ls.LookaheadSecTo[d] = v
			}
		}
		if w := ls.Windows; w > 0 {
			if mean := math.Float64frombits(s.liveWidthBits.Load()) / float64(w); mean > 0 {
				ls.LookaheadUtil = math.Min(1, float64(e.minLA)/mean)
			}
		}
		out[i] = ls
	}
	return out
}

// publishLive mirrors the owner-goroutine counters into the atomics
// LiveStats reads. Called once per committed round and at run exit.
func (s *Shard) publishLive() {
	s.liveWindows.Store(s.stats.Windows)
	s.liveSent.Store(s.stats.MsgsSent)
	s.liveRecv.Store(s.stats.MsgsRecv)
	s.liveFired.Store(s.Sim.Fired())
	s.liveBusyNs.Store(s.busyNs)
	s.liveBlockedNs.Store(s.blockedNs)
	s.liveWidthBits.Store(math.Float64bits(s.widthSum))
}

// noteSlack classifies one round's EOT against the global minimum:
// either this shard was the binding one, or it records how far (in
// simulated seconds) its own frontier sat above the binding EOT. An
// infinite own EOT (shard locally dry) carries no information and is
// skipped.
func (s *Shard) noteSlack(myEOT, e des.Time) {
	if math.IsInf(float64(myEOT), 1) {
		return
	}
	slack := float64(myEOT - e)
	if slack <= 0 {
		s.binding++
		return
	}
	s.slackHist.Add(slack)
	s.slackSum += slack
	if slack > s.slackMax {
		s.slackMax = slack
	}
}

// Run executes the simulation to the inclusive horizon (events exactly
// at until still fire, matching des.Sim.Run) and returns when every
// shard has finished — at the horizon, when the whole cluster runs out
// of events (a batch job completing), or at the round after Stop. One
// shard runs inline on the caller's goroutine; more run one goroutine
// each. Run may be called once per Engine.
func (e *Engine) Run(until des.Time) {
	if e.ran {
		panic("shard: Engine.Run called twice")
	}
	e.ran = true
	if len(e.shards) == 1 {
		e.shards[0].runSingle(until)
		return
	}
	var wg sync.WaitGroup
	for _, s := range e.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			s.run(until)
		}(s)
	}
	wg.Wait()
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Now returns the shard's current simulated time.
func (s *Shard) Now() des.Time { return s.Sim.Now() }

// Post sends a cross-entity event: act runs on dst's shard at
// Now()+delay. delay must be >= the lookahead floor of the (source
// shard, destination shard) pair — that floor is what makes
// conservative windows safe — and src must be owned by this shard.
// Same-time deliveries are ordered by (src, per-src seq), which is
// independent of the partitioning.
//
//perf:hotpath
func (s *Shard) Post(src, dst EntityID, delay des.Time, act des.Action) {
	e := s.eng
	if int(src) < 0 || int(src) >= len(e.owner) || int(dst) < 0 || int(dst) >= len(e.owner) {
		//whvet:allow hotpath cold panic path: out-of-namespace entities are a wiring bug
		panic(fmt.Sprintf("shard: Post %d->%d outside entity namespace [0,%d)", src, dst, len(e.owner)))
	}
	if e.owner[src] != int32(s.id) {
		//whvet:allow hotpath cold panic path: posting from a foreign entity is a wiring bug
		panic(fmt.Sprintf("shard: Post from entity %d owned by shard %d, not %d", src, e.owner[src], s.id))
	}
	dst32 := e.owner[dst]
	if floor := e.raw[s.id][dst32]; math.IsNaN(float64(delay)) || delay < floor {
		//whvet:allow hotpath cold panic path: a sub-lookahead delay breaks the conservative-window proof, so it must die loudly
		panic(fmt.Sprintf("shard: cross-entity delay %v below lookahead %v for shard pair (%d,%d) at t=%v", delay, floor, s.id, dst32, s.Sim.Now()))
	}
	m := message{arrive: s.Sim.Now() + delay, src: src, seq: e.seqs[src], act: act}
	e.seqs[src]++
	if int(dst32) == s.id {
		s.pushLocal(m)
		return
	}
	p := s.peerBy[dst32]
	p.stage = append(p.stage, m)
	if m.arrive < p.stagedMin {
		p.stagedMin = m.arrive
	}
	s.stats.MsgsSent++
	s.sentTo[dst32]++
}

func (s *Shard) pushLocal(m message) {
	s.local.push(m)
	s.noteDepth()
}

func (s *Shard) noteDepth() {
	if d := len(s.pending) - s.pendHead + len(s.local); d > s.stats.MaxPendingDepth {
		s.stats.MaxPendingDepth = d
	}
}

// localMin is the earliest event this shard could still execute: next
// heap event, earliest undelivered cross-shard arrival, or earliest
// undelivered same-shard post.
func (s *Shard) localMin() des.Time {
	e := infTime
	if t, ok := s.Sim.PeekNext(); ok {
		e = t
	}
	if s.pendHead < len(s.pending) && s.pending[s.pendHead].arrive < e {
		e = s.pending[s.pendHead].arrive
	}
	if len(s.local) > 0 && s.local[0].arrive < e {
		e = s.local[0].arrive
	}
	return e
}

// eot is the shard's scalar earliest output time: the earliest event
// it could still execute or has already staged for a peer. Used for
// run-dry detection and the slack telemetry; the per-destination
// window bounds ride the constraint row instead.
func (s *Shard) eot() des.Time {
	e := s.localMin()
	for _, p := range s.peers {
		if p.stagedMin < e {
			e = p.stagedMin
		}
	}
	return e
}

// computeRow fills this shard's constraint row: for every destination
// d, a lower bound on when anything caused by this shard's current
// state (local events, undelivered arrivals, staged sends) can still
// arrive at d. Messages staged directly for d are excluded — they are
// delivered to d this very round, so they are d's local knowledge, not
// a future arrival — but what they can cause d's peers to relay is
// not, which is why every staged arrival bounds every destination
// through the closed matrix.
//
// The diagonal slot carries the bound this shard's own activity puts
// on itself: its staged sends can rebound (stagedMin[k] + L*[k][s]),
// and — crucially — so can events it has not executed yet. An event
// at t executed inside the window can post a request whose reply
// arrives at t plus one round trip, so the window must not extend past
// localMin + min round-trip lookahead. Dropping that term is the
// classic over-wide-window unsoundness: a board's own SAN request,
// issued mid-window, would rebound into its past.
func (s *Shard) computeRow() {
	row := s.rows[s.id]
	lm := s.localMin()
	closed := s.eng.closed
	for d := range row {
		var v des.Time
		if d != s.id {
			v = lm + closed[s.id][d]
		} else {
			v = lm + s.eng.rt[s.id]
		}
		for _, p := range s.peers {
			if math.IsInf(float64(p.stagedMin), 1) {
				continue
			}
			var c des.Time
			if p.shard == d {
				// Messages staged directly for d ride in this very
				// batch, so d merges them before advancing — but their
				// consequences do not: d may execute one inside this
				// round's window and trigger a chain (a SAN reply, a
				// further request) that boomerangs back to d. Any such
				// path leaves d and returns, so it costs at least
				// rt[d], the cheapest round trip out of d.
				c = p.stagedMin + s.eng.rt[d]
			} else {
				c = p.stagedMin + closed[p.shard][d]
			}
			if c < v {
				v = c
			}
		}
		row[d] = v
	}
}

// run is one shard's side of the lockstep round protocol:
//
//	compute the constraint row; flush {sorted staged msgs, row, EOT,
//	stop vote} to every peer
//	receive one batch from every peer; merge the sorted runs into the
//	pending run; reduce E_d = min over all rows for every destination
//	stop, run dry (all EOTs +Inf), or execute the window
//	[committed, E_self), finishing inclusively at the horizon once
//	E_self has passed it
//
// Every shard computes every E_d from the same N rows, so all shards
// take the final/dry/stop exits in the same round: nobody is left
// blocking on a mailbox, which is the protocol's deadlock-freedom
// argument (each round sends all batches before receiving any, and a
// mailbox holds at most one in-flight batch per round). A shard whose
// horizon window is already done keeps relaying null messages until
// the exit is global.
//
//whvet:allow nodeterm the wall-clock reads feed ShardDiag's busy/blocked telemetry only; simulated time and all results come from the event heap (see DESIGN.md §7)
func (s *Shard) run(until des.Time) {
	n := len(s.eng.shards)
	// Two wall-clock reads per round split the loop into a blocked
	// segment (flush + mailbox waits) and a busy segment (window
	// execution) — with thousands of events per window the overhead is
	// noise, and the split is the shard's parallel-efficiency signal.
	last := time.Now()
	for {
		s.computeRow()
		myEOT := s.eot()
		s.eots[s.id] = myEOT
		myStop := s.eng.stopped.Load()
		for _, p := range s.peers {
			msgs := p.stage
			if len(msgs) > 0 {
				slices.SortFunc(msgs, msgCmp)
				p.stage = nil
				select {
				case p.stage = <-p.freeMsgs:
				default:
				}
			} else {
				msgs = nil // keep the empty slab, send a pure null message
			}
			var row []des.Time
			select {
			case row = <-p.freeRows:
			default:
				row = make([]des.Time, n)
			}
			copy(row, s.rows[s.id])
			p.ch <- batch{eot: myEOT, row: row, stop: myStop, msgs: msgs}
			p.stagedMin = infTime
		}
		s.clockBits.Store(math.Float64bits(float64(s.Sim.Now())))
		stop := myStop
		for i := range s.in {
			in := &s.in[i]
			b := <-in.ch
			copy(s.rows[in.src], b.row)
			select {
			case in.freeRows <- b.row:
			default:
			}
			s.eots[in.src] = b.eot
			stop = stop || b.stop
			if len(b.msgs) > 0 {
				s.stats.MsgsRecv += int64(len(b.msgs))
				if len(b.msgs) > s.stats.MaxBatchMsgs {
					s.stats.MaxBatchMsgs = len(b.msgs)
				}
				s.runs = append(s.runs, b.msgs)
				s.runIn = append(s.runIn, in)
			}
		}
		s.mergeRuns()
		now := time.Now()
		s.blockedNs += now.Sub(last).Nanoseconds()
		last = now
		if stop {
			s.publishLive()
			return
		}
		dry := true
		for _, e := range s.eots {
			if !math.IsInf(float64(e), 1) {
				dry = false
				break
			}
		}
		if dry {
			s.publishLive()
			return // the whole cluster ran dry
		}
		binding := infTime
		for _, e := range s.eots {
			if e < binding {
				binding = e
			}
		}
		s.noteSlack(myEOT, binding)
		myE, allFinal := infTime, true
		for d := 0; d < n; d++ {
			ed := infTime
			for k := 0; k < n; k++ {
				if s.rows[k][d] < ed {
					ed = s.rows[k][d]
				}
			}
			if !(ed > until) {
				allFinal = false
			}
			if d == s.id {
				myE = ed
			}
		}
		if allFinal {
			// Every shard's remaining window covers the horizon: finish
			// inclusively, everywhere, this round. Sends staged by the
			// final window would arrive past the horizon, so no further
			// exchange is needed.
			if !s.doneFinal {
				s.advance(until, true)
				s.busyNs += time.Since(last).Nanoseconds()
			}
			s.publishLive()
			return
		}
		if myE > until {
			// This shard's horizon window is safe even though peers still
			// have in-horizon work: execute it once, then keep relaying
			// rows until the exit is global.
			if !s.doneFinal {
				s.advance(until, true)
				s.doneFinal = true
			}
			now = time.Now()
			s.busyNs += now.Sub(last).Nanoseconds()
			last = now
			s.publishLive()
			continue
		}
		if myE > s.committed {
			s.advance(myE, false)
			now = time.Now()
			s.busyNs += now.Sub(last).Nanoseconds()
			last = now
			s.widthSum += float64(myE - s.committed)
			s.committed = myE
			s.stats.Windows++
			s.noteWindow()
		}
		s.publishLive()
	}
}

// mergeRuns folds the round's received slabs and the unconsumed tail
// of the pending run into one sorted run (a k-way merge over at most
// Shards sorted sources — keys are unique, so the order is total),
// then clears and returns the slabs to their senders' free channels.
// The old pending array becomes the next round's merge buffer, so
// steady-state rounds allocate nothing.
//
//perf:hotpath
func (s *Shard) mergeRuns() {
	if len(s.runs) == 0 {
		return
	}
	left := s.pending[s.pendHead:]
	total := len(left)
	for _, r := range s.runs {
		total += len(r)
	}
	buf := s.mergeBuf[:0]
	if cap(buf) < total {
		buf = make([]message, 0, total+total/2)
	}
	srcs := append(s.srcScratch[:0], s.runs...)
	if len(left) > 0 {
		srcs = append(srcs, left)
	}
	for {
		best := -1
		for i := range srcs {
			if len(srcs[i]) == 0 {
				continue
			}
			if best == -1 || msgLess(srcs[i][0], srcs[best][0]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		buf = append(buf, srcs[best][0])
		srcs[best] = srcs[best][1:]
	}
	s.srcScratch = srcs[:0]
	for i, r := range s.runs {
		clear(r)
		select {
		case s.runIn[i].freeMsgs <- r[:0]:
		default:
		}
	}
	clear(s.pending[s.pendHead:])
	old := s.pending
	s.runs = s.runs[:0]
	s.runIn = s.runIn[:0]
	s.pending = buf
	s.mergeBuf = old[:0]
	s.pendHead = 0
	s.noteDepth()
}

// runSingle is the one-shard fast path: no rounds, no channels — the
// advance loop with the same delivery rule, which is exactly the
// single-heap kernel. There are no rounds to time, so live counters
// update once, at completion (all busy, nothing blocked).
//
//whvet:allow nodeterm wall clock feeds the busy-nanoseconds diagnostic only; no simulation state reads it
func (s *Shard) runSingle(until des.Time) {
	start := time.Now()
	s.advance(until, true)
	s.busyNs += time.Since(start).Nanoseconds()
	s.publishLive()
}

// nextArrival peeks the earliest undelivered message across the
// pending run and the local heap.
func (s *Shard) nextArrival() (des.Time, bool) {
	t, ok := infTime, false
	if s.pendHead < len(s.pending) {
		t, ok = s.pending[s.pendHead].arrive, true
	}
	if len(s.local) > 0 && (!ok || s.local[0].arrive < t) {
		t, ok = s.local[0].arrive, true
	}
	return t, ok
}

// advance interleaves message delivery and event execution at event
// granularity up to target. Non-final windows are exclusive (events
// and deliveries strictly before target — arrivals exactly at the
// window edge may still gain same-time company from the next round),
// the final window is inclusive to match des.Sim.Run horizon
// semantics.
//
//perf:hotpath
func (s *Shard) advance(target des.Time, final bool) {
	stopCheck := 0
	for {
		if stopCheck++; stopCheck&0x3ff == 0 && s.eng.stopped.Load() {
			return
		}
		na, hasNa := s.Sim.PeekNext()
		if ma, ok := s.nextArrival(); ok {
			if (ma < target || (final && ma == target)) && (!hasNa || ma <= na) {
				s.deliverAt(ma)
				continue
			}
		}
		if hasNa && (na < target || (final && na == target)) {
			s.Sim.RunNext()
			continue
		}
		break
	}
	if final && !math.IsInf(float64(target), 1) {
		s.Sim.Run(target) // nothing left to fire; advances the clock to the horizon
	}
}

// deliverAt moves every undelivered message arriving exactly at t into
// the local event heap, popping the (src, seq)-smaller of the pending
// run head and the local heap top so the order matches the single-heap
// kernel. All possible senders for time t have already executed (their
// events ran at least a lookahead floor earlier), so the batch is
// complete and canonically ordered at any shard count.
//
//perf:hotpath
func (s *Shard) deliverAt(t des.Time) {
	for {
		hasP := s.pendHead < len(s.pending) && s.pending[s.pendHead].arrive == t
		hasL := len(s.local) > 0 && s.local[0].arrive == t
		var m message
		switch {
		case hasP && hasL:
			if msgLess(s.pending[s.pendHead], s.local[0]) {
				m = s.popPending()
			} else {
				m = s.local.pop()
			}
		case hasP:
			m = s.popPending()
		case hasL:
			m = s.local.pop()
		default:
			return
		}
		s.Sim.ScheduleAt(m.arrive, m.act)
	}
}

func (s *Shard) popPending() message {
	m := s.pending[s.pendHead]
	s.pending[s.pendHead] = message{} // drop the action so the run retains no closures
	s.pendHead++
	return m
}

// noteWindow records clock-skew and mailbox-depth diagnostics every
// diagSampleStride windows. The values depend on goroutine scheduling,
// so they feed EmitDiagnostics, never the deterministic export.
func (s *Shard) noteWindow() {
	minClock := infTime
	for _, p := range s.eng.shards {
		if p == s {
			continue
		}
		if c := des.Time(math.Float64frombits(p.clockBits.Load())); c < minClock {
			minClock = c
		}
	}
	if skew := float64(s.Sim.Now() - minClock); skew > s.stats.MaxSkewSec {
		s.stats.MaxSkewSec = skew
	}
	if d := len(s.pending) - s.pendHead + len(s.local); d > s.depthSinceS {
		s.depthSinceS = d
	}
	s.winSinceSamp++
	if s.winSinceSamp < diagSampleStride {
		return
	}
	s.winSinceSamp = 0
	t := float64(s.committed)
	s.skewSamples = append(s.skewSamples, sample{t: t, v: float64(s.Sim.Now() - minClock)})
	s.depthSamples = append(s.depthSamples, sample{t: t, v: float64(s.depthSinceS)})
	s.depthSinceS = 0
}
