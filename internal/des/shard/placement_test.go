package shard

import (
	"reflect"
	"testing"
)

func TestPlaceBlock(t *testing.T) {
	if got := PlaceBlock(8, 4); !reflect.DeepEqual(got, []int{0, 0, 1, 1, 2, 2, 3, 3}) {
		t.Errorf("PlaceBlock(8,4) = %v", got)
	}
	// Non-divisible: contiguous, every shard non-empty, unit order kept.
	got := PlaceBlock(5, 3)
	if !reflect.DeepEqual(got, []int{0, 0, 1, 1, 2}) {
		t.Errorf("PlaceBlock(5,3) = %v", got)
	}
	if got := PlaceBlock(0, 2); len(got) != 0 {
		t.Errorf("PlaceBlock(0,2) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("PlaceBlock with zero shards did not panic")
		}
	}()
	PlaceBlock(4, 0)
}

// TestPlaceBalancedSkewed is the packer's reason to exist: one giant
// enclosure plus many small ones. The block split lands the giant with
// neighbors on one shard; the balanced packer must put it alone and
// spread the small ones, cutting the max shard load.
func TestPlaceBalancedSkewed(t *testing.T) {
	weights := []float64{90, 10, 10, 10, 10, 10, 10} // 1 giant + 6 small
	const shards = 4
	block := Loads(PlaceBlock(len(weights), shards), weights, shards)
	bal := Loads(PlaceBalanced(weights, shards, nil), weights, shards)
	maxOf := func(l []float64) float64 {
		m := l[0]
		for _, v := range l[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxOf(bal) >= maxOf(block) {
		t.Errorf("balanced max load %v not below block max load %v (block %v, balanced %v)",
			maxOf(bal), maxOf(block), block, bal)
	}
	// LPT on this instance is exactly optimal: the giant alone (90),
	// the six small ones spread 2/2/2 over the other shards.
	if maxOf(bal) != 90 {
		t.Errorf("balanced max load %v, want the giant alone at 90 (%v)", maxOf(bal), bal)
	}
}

// TestPlaceBalancedDeterministic: equal weights exercise every
// tie-break; the assignment must be the documented (index asc,
// lowest-shard-first) order and reproduce exactly across calls.
func TestPlaceBalancedDeterministic(t *testing.T) {
	weights := []float64{1, 1, 1, 1, 1, 1}
	a := PlaceBalanced(weights, 4, nil)
	if !reflect.DeepEqual(a, []int{0, 1, 2, 3, 0, 1}) {
		t.Errorf("tie-break order = %v, want round-robin by index", a)
	}
	for i := 0; i < 5; i++ {
		if b := PlaceBalanced(weights, 4, nil); !reflect.DeepEqual(a, b) {
			t.Fatalf("call %d diverged: %v vs %v", i, a, b)
		}
	}
}

// TestPlaceBalancedBias: pre-loaded shards (the SAN and aggregator
// pinned to shard 0) must repel work until the others catch up.
func TestPlaceBalancedBias(t *testing.T) {
	weights := []float64{1, 1, 1}
	asn := PlaceBalanced(weights, 2, []float64{10, 0})
	if !reflect.DeepEqual(asn, []int{1, 1, 1}) {
		t.Errorf("bias ignored: %v, want everything on shard 1", asn)
	}
	loads := Loads(asn, weights, 2)
	if loads[0] != 0 || loads[1] != 3 {
		t.Errorf("Loads = %v", loads)
	}
	defer func() {
		if recover() == nil {
			t.Error("bias length mismatch did not panic")
		}
	}()
	PlaceBalanced(weights, 2, []float64{1})
}
