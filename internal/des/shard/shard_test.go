package shard

import (
	"math"
	"testing"

	"warehousesim/internal/des"
)

// mix is a cheap splitmix-style hash used to fingerprint a run: every
// model action folds what happened into a per-node accumulator, so two
// runs agree on the fingerprint only if every event fired in the same
// order at the same time with the same inputs.
func mix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0xbf58476d1ce4e5b9
	return h ^ (h >> 31)
}

func timeBits(t des.Time) uint64 { return math.Float64bits(float64(t)) }

// node is one toy entity: it ticks on a coarse time lattice (so
// same-time collisions across entities are common, stressing the
// canonical tie-break), mutates only its own state, and posts messages
// to pseudo-randomly chosen peers.
type node struct {
	id    EntityID
	sh    *Shard
	rng   uint64
	sum   uint64
	ticks int
}

func (n *node) rand() uint64 {
	n.rng ^= n.rng << 13
	n.rng ^= n.rng >> 7
	n.rng ^= n.rng << 17
	return n.rng
}

type toyNet struct {
	eng   *Engine
	nodes []*node
	la    des.Time
	until des.Time
}

// buildToy wires nNodes entities round-robin onto nShards shards. Each
// node self-schedules lattice ticks; every tick posts to a random peer
// with a lattice-quantized delay, and receivers sometimes schedule a
// same-time local follow-up — the worst case for ordering stability.
func buildToy(t *testing.T, nShards, nNodes int, la, until des.Time, mailboxCap int) *toyNet {
	t.Helper()
	eng, err := NewEngine(Config{Shards: nShards, Entities: nNodes, Lookahead: la, MailboxCap: mailboxCap})
	if err != nil {
		t.Fatal(err)
	}
	return wireToy(t, eng, nNodes, la, until)
}

// wireToy attaches the toy model to an already-built engine, so matrix
// tests can run the same workload over non-uniform lookahead floors.
// Post delays are always >= la, so any matrix whose finite entries stay
// at or below la keeps every post legal.
func wireToy(t *testing.T, eng *Engine, nNodes int, la, until des.Time) *toyNet {
	t.Helper()
	nShards := eng.Shards()
	tn := &toyNet{eng: eng, la: la, until: until}
	for i := 0; i < nNodes; i++ {
		id := EntityID(i)
		eng.Assign(id, i%nShards)
		n := &node{id: id, sh: eng.Shard(i % nShards), rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
		tn.nodes = append(tn.nodes, n)
	}
	step := la / 2
	for _, n := range tn.nodes {
		n := n
		var tick func()
		tick = func() {
			now := n.sh.Now()
			n.ticks++
			n.sum = mix(n.sum, timeBits(now))
			r := n.rand()
			if r%2 == 0 {
				dst := tn.nodes[int(n.rand()%uint64(len(tn.nodes)))]
				delay := la + des.Time(n.rand()%4)*step
				srcID, payload := n.id, n.rand()
				n.sh.Post(n.id, dst.id, delay, func() {
					at := dst.sh.Now()
					dst.sum = mix(dst.sum, mix(uint64(srcID)<<32|payload&0xffffffff, timeBits(at)))
					if payload%3 == 0 {
						// Same-time local follow-up: exercises seq
						// assignment right after a delivery.
						dst.sh.Sim.Schedule(0, func() {
							dst.sum = mix(dst.sum, timeBits(dst.sh.Now()))
						})
					}
				})
			}
			n.sh.Sim.Schedule(des.Time(1+n.rand()%5)*step, tick)
		}
		n.sh.Sim.Schedule(des.Time(1+n.rand()%3)*step, tick)
	}
	return tn
}

// fingerprint folds every node's accumulator and tick count into one
// value, in entity order (partition-independent by construction).
func (tn *toyNet) fingerprint() uint64 {
	var h uint64
	for _, n := range tn.nodes {
		h = mix(h, n.sum)
		h = mix(h, uint64(n.ticks))
	}
	return h
}

func runToy(t *testing.T, nShards, nNodes int, la, until des.Time, mailboxCap int) (uint64, uint64) {
	tn := buildToy(t, nShards, nNodes, la, until, mailboxCap)
	tn.eng.Run(until)
	return tn.fingerprint(), tn.eng.Fired()
}

// TestDeterministicAcrossShardCounts is the core contract: the same
// model partitioned 1, 2, 3, 5 and 8 ways produces the identical event
// history, including heavy same-time collisions and cross-shard
// messaging.
func TestDeterministicAcrossShardCounts(t *testing.T) {
	const nodes = 24
	la := des.Time(1e-4)
	until := des.Time(0.2)
	refFP, refFired := runToy(t, 1, nodes, la, until, 0)
	if refFired == 0 {
		t.Fatal("reference run fired no events")
	}
	for _, shards := range []int{2, 3, 5, 8} {
		fp, fired := runToy(t, shards, nodes, la, until, 0)
		if fp != refFP {
			t.Errorf("shards=%d: fingerprint %x != single-shard %x", shards, fp, refFP)
		}
		if fired != refFired {
			t.Errorf("shards=%d: fired %d != single-shard %d", shards, fired, refFired)
		}
	}
}

// TestDeterministicUnderMailboxPressure re-runs the matrix with
// capacity-1 mailboxes, forcing the full-mailbox drain-and-yield path
// on nearly every flush.
func TestDeterministicUnderMailboxPressure(t *testing.T) {
	const nodes = 12
	la := des.Time(1e-4)
	until := des.Time(0.1)
	refFP, _ := runToy(t, 1, nodes, la, until, 1)
	for _, shards := range []int{2, 4, 6} {
		fp, _ := runToy(t, shards, nodes, la, until, 1)
		if fp != refFP {
			t.Errorf("shards=%d cap=1: fingerprint %x != single-shard %x", shards, fp, refFP)
		}
	}
}

// TestTinyLookaheadCompletes drives many synchronization windows per
// simulated second (lookahead 1000x smaller than the horizon spacing
// used above) to shake out window-boundary livelocks under -race.
func TestTinyLookaheadCompletes(t *testing.T) {
	refFP, _ := runToy(t, 1, 8, 1e-6, 0.002, 0)
	fp, _ := runToy(t, 4, 8, 1e-6, 0.002, 0)
	if fp != refFP {
		t.Errorf("tiny lookahead: fingerprint %x != single-shard %x", fp, refFP)
	}
}

// TestZeroLookaheadRejected: a conservative engine has no safe window
// at zero lookahead, so construction must fail rather than deadlock.
func TestZeroLookaheadRejected(t *testing.T) {
	if _, err := NewEngine(Config{Shards: 4, Entities: 4, Lookahead: 0}); err == nil {
		t.Error("NewEngine accepted zero lookahead with 4 shards")
	}
	if _, err := NewEngine(Config{Shards: 2, Entities: 4, Lookahead: des.Time(math.NaN())}); err == nil {
		t.Error("NewEngine accepted NaN lookahead")
	}
	if _, err := NewEngine(Config{Shards: 4, Entities: 4, Lookahead: -1}); err == nil {
		t.Error("NewEngine accepted negative lookahead")
	}
	// One shard is the single-heap kernel; zero lookahead is fine there.
	if _, err := NewEngine(Config{Shards: 1, Entities: 4, Lookahead: 0}); err != nil {
		t.Errorf("NewEngine rejected 1 shard at zero lookahead: %v", err)
	}
}

// TestPostBelowLookaheadPanics: delays under the lookahead would break
// the conservative safety argument, so Post must refuse them loudly.
func TestPostBelowLookaheadPanics(t *testing.T) {
	eng, err := NewEngine(Config{Shards: 2, Entities: 2, Lookahead: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	eng.Assign(1, 1)
	s := eng.Shard(0)
	defer func() {
		if recover() == nil {
			t.Error("Post below lookahead did not panic")
		}
	}()
	s.Post(0, 1, 1e-4, func() {})
}

// TestHorizonInclusive: a message arriving exactly at the horizon must
// be delivered and fire, matching des.Sim.Run's inclusive semantics.
func TestHorizonInclusive(t *testing.T) {
	for _, shards := range []int{1, 2} {
		eng, err := NewEngine(Config{Shards: shards, Entities: 2, Lookahead: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if shards == 2 {
			eng.Assign(1, 1)
		}
		s0 := eng.Shard(0)
		fired := false
		dstShard := eng.Shard(eng.ShardOf(1))
		s0.Sim.Schedule(0.5, func() {
			s0.Post(0, 1, 0.5, func() { fired = true })
		})
		_ = dstShard
		eng.Run(1.0)
		if !fired {
			t.Errorf("shards=%d: message arriving exactly at the horizon did not fire", shards)
		}
	}
}

// TestStopReturns: Stop mid-run must unwind every shard without
// deadlocking, including shards blocked on a laggard's mailbox.
func TestStopReturns(t *testing.T) {
	for _, shards := range []int{1, 4} {
		tn := buildToy(t, shards, 16, 1e-4, 1e9, 0) // effectively unbounded horizon
		n0 := tn.nodes[0]
		n0.sh.Sim.Schedule(0.05, func() { tn.eng.Stop() })
		tn.eng.Run(1e9)
		if !tn.eng.Stopped() {
			t.Fatalf("shards=%d: engine not stopped", shards)
		}
		if tn.nodes[0].ticks == 0 {
			t.Errorf("shards=%d: no work happened before Stop", shards)
		}
	}
}

// TestIdleShardsRelayProgress: with all activity on one shard and the
// rest idle, EOT-carrying null messages must let the busy shard reach
// the horizon in a number of rounds proportional to the event count,
// not horizon/lookahead — otherwise sparse racks would degenerate into
// null-message ping-pong (the classic asynchronous CMB creep).
func TestIdleShardsRelayProgress(t *testing.T) {
	la := des.Time(1e-6)
	until := des.Time(1.0) // one million lookahead quanta
	eng, err := NewEngine(Config{Shards: 3, Entities: 3, Lookahead: la})
	if err != nil {
		t.Fatal(err)
	}
	eng.Assign(1, 1)
	eng.Assign(2, 2)
	s0 := eng.Shard(0)
	count := 0
	const step = 1.0 / 128 // exact in binary, so the tick count is exact
	var tick func()
	tick = func() {
		count++
		s0.Sim.Schedule(step, tick) // 128 sparse events over the run
	}
	s0.Sim.Schedule(step, tick)
	eng.Run(until)
	if count != 128 {
		t.Fatalf("expected 128 ticks, got %d", count)
	}
	for _, st := range eng.ShardStats() {
		if st.Windows > 10000 {
			t.Errorf("shard %d committed %d windows for 100 events: promises are not relaying (lockstep lookahead windows)", st.Shard, st.Windows)
		}
	}
}

// TestShardStats sanity-checks the diagnostics plumbing.
func TestShardStats(t *testing.T) {
	tn := buildToy(t, 4, 16, 1e-4, 0.1, 0)
	tn.eng.Run(0.1)
	st := tn.eng.ShardStats()
	if len(st) != 4 {
		t.Fatalf("want 4 stats, got %d", len(st))
	}
	var fired uint64
	var sent int64
	for _, s := range st {
		fired += s.Fired
		sent += s.MsgsSent
	}
	if fired != tn.eng.Fired() {
		t.Errorf("stats fired %d != engine fired %d", fired, tn.eng.Fired())
	}
	if sent == 0 {
		t.Error("no cross-shard messages in a 4-shard run")
	}
}

// TestSelfTelemetry checks the round-loop self-telemetry: the wall
// clock split, EOT slack classification, window-width accounting, the
// traffic matrix, and the live mirrors.
func TestSelfTelemetry(t *testing.T) {
	tn := buildToy(t, 4, 16, 1e-4, 0.1, 0)
	tn.eng.Run(0.1)
	st := tn.eng.ShardStats()
	for _, s := range st {
		if s.BusySec < 0 || s.BlockedSec < 0 {
			t.Errorf("shard %d negative wall-clock split: %+v", s.Shard, s)
		}
		if s.BusySec+s.BlockedSec == 0 {
			t.Errorf("shard %d recorded no wall-clock time at all", s.Shard)
		}
		if s.Windows > 0 {
			if s.MeanWindowSec <= 0 {
				t.Errorf("shard %d committed %d windows but MeanWindowSec = %g", s.Shard, s.Windows, s.MeanWindowSec)
			}
			if s.LookaheadUtil <= 0 || s.LookaheadUtil > 1+1e-9 {
				t.Errorf("shard %d LookaheadUtil = %g outside (0,1]", s.Shard, s.LookaheadUtil)
			}
		}
		if rounds := s.BindingRounds; rounds < 0 {
			t.Errorf("shard %d negative binding rounds", s.Shard)
		}
		if s.SlackMaxSec < s.SlackMeanSec {
			t.Errorf("shard %d slack max %g < mean %g", s.Shard, s.SlackMaxSec, s.SlackMeanSec)
		}
		if len(s.SentTo) != 4 {
			t.Fatalf("shard %d SentTo has %d entries, want 4", s.Shard, len(s.SentTo))
		}
		var rowSum int64
		for dst, n := range s.SentTo {
			if dst == s.Shard && n != 0 {
				t.Errorf("shard %d claims %d messages to itself", s.Shard, n)
			}
			rowSum += n
		}
		if rowSum != s.MsgsSent {
			t.Errorf("shard %d traffic row sums to %d, MsgsSent = %d", s.Shard, rowSum, s.MsgsSent)
		}
	}
	// Matrix consistency: everything received was sent. (Sent can exceed
	// received — messages staged during the final window would arrive
	// past the horizon and are never flushed.)
	var sent, recv int64
	for _, s := range st {
		sent += s.MsgsSent
		recv += s.MsgsRecv
	}
	if recv > sent || sent == 0 {
		t.Errorf("traffic matrix unbalanced: sent %d, recv %d", sent, recv)
	}
	// Live mirrors converge to the final counters once Run returns.
	live := tn.eng.LiveStats()
	if len(live) != 4 {
		t.Fatalf("want 4 live stats, got %d", len(live))
	}
	for i, l := range live {
		if l.Windows != st[i].Windows || l.Fired != st[i].Fired || l.MsgsSent != st[i].MsgsSent {
			t.Errorf("live stats diverge from final: live %+v vs %+v", l, st[i])
		}
		if l.BusySec <= 0 {
			t.Errorf("shard %d live busy time not published", i)
		}
	}
}

// TestLiveStatsSingleShard: the one-shard fast path has no rounds, so
// live counters update once at completion.
func TestLiveStatsSingleShard(t *testing.T) {
	tn := buildToy(t, 1, 8, 1e-4, 0.05, 0)
	tn.eng.Run(0.05)
	live := tn.eng.LiveStats()
	if len(live) != 1 {
		t.Fatalf("want 1 live stat, got %d", len(live))
	}
	if live[0].Fired == 0 || live[0].BusySec <= 0 {
		t.Errorf("single-shard live stats not published at completion: %+v", live[0])
	}
	if live[0].BlockedSec != 0 || live[0].MsgsSent != 0 {
		t.Errorf("single-shard run should have no blocking or cross traffic: %+v", live[0])
	}
}
