package shard

import (
	"fmt"
	"math"

	"warehousesim/internal/obs"
)

// summarySchema versions the "shard.summary" event. Version 1 carried
// the single-lookahead fields; version 2 adds the "schema" field
// itself and moves per-pair lookahead reporting to the companion
// "shard.lookahead" events. Every v1 field is still emitted with its
// v1 meaning — lookahead_util is now derived from the tightest closed
// pair floor rather than the (gone) global scalar, which coincides
// with it for uniform matrices — so v1 consumers keep working and a
// consumer that needs the per-pair plane keys on schema >= 2.
const summarySchema = 2

// EmitDiagnostics writes the per-shard synchronization diagnostics
// into rec after Run has returned: clock-skew and mailbox-depth time
// series (sampled every diagSampleStride windows, T = committed
// simulated time), per-shard summary counters, one "shard.summary"
// event per shard with the round-loop self-telemetry (busy vs blocked
// wall-clock split, EOT slack distribution, lookahead utilization),
// one "shard.lookahead" event per ordered shard pair with a finite
// closed floor (the per-pair lookahead plane: the floor itself and its
// utilization against the source shard's mean committed window), and
// one "shard.traffic" event per ordered shard pair that exchanged
// messages (the cross-shard traffic matrix).
//
// These values measure the engine, not the model — skew, depth, and
// wall-clock timing depend on goroutine scheduling and change run to
// run — so they go into a separate diagnostics sink, never into the
// deterministic export that the shards-1-vs-N byte equivalence gate
// compares.
func (e *Engine) EmitDiagnostics(rec obs.Recorder) {
	if !obs.On(rec) {
		return
	}
	for i, st := range e.ShardStats() {
		s := e.shards[i]
		tag := fmt.Sprintf("s%d", s.id)
		rec.Count("shard.windows."+tag, st.Windows)
		rec.Count("shard.msgs_sent."+tag, st.MsgsSent)
		rec.Count("shard.msgs_recv."+tag, st.MsgsRecv)
		rec.Count("shard.fired."+tag, int64(st.Fired))
		rec.Count("shard.binding_rounds."+tag, st.BindingRounds)
		for _, p := range s.skewSamples {
			rec.Gauge("shard.clock_skew."+tag, p.t, p.v)
		}
		for _, p := range s.depthSamples {
			rec.Gauge("shard.mailbox_depth."+tag, p.t, p.v)
		}
		rec.Event("shard.summary", 0,
			obs.F("schema", summarySchema),
			obs.F("shard", float64(st.Shard)),
			obs.F("windows", float64(st.Windows)),
			obs.F("busy_sec", st.BusySec),
			obs.F("blocked_sec", st.BlockedSec),
			obs.F("binding_rounds", float64(st.BindingRounds)),
			obs.F("slack_mean_sec", st.SlackMeanSec),
			obs.F("slack_p50_sec", st.SlackP50Sec),
			obs.F("slack_p95_sec", st.SlackP95Sec),
			obs.F("slack_max_sec", st.SlackMaxSec),
			obs.F("mean_window_sec", st.MeanWindowSec),
			obs.F("lookahead_util", st.LookaheadUtil))
		for dst, laSec := range st.LookaheadSecTo {
			if dst == st.Shard || math.IsInf(laSec, 1) {
				continue
			}
			util := 0.0
			if st.MeanWindowSec > 0 {
				util = math.Min(1, laSec/st.MeanWindowSec)
			}
			rec.Event("shard.lookahead", 0,
				obs.F("src", float64(st.Shard)),
				obs.F("dst", float64(dst)),
				obs.F("lookahead_sec", laSec),
				obs.F("util", util))
		}
		for dst, n := range st.SentTo {
			if n == 0 {
				continue
			}
			rec.Event("shard.traffic", 0,
				obs.F("src", float64(st.Shard)),
				obs.F("dst", float64(dst)),
				obs.F("msgs", float64(n)))
		}
	}
}
