package shard

import (
	"fmt"

	"warehousesim/internal/obs"
)

// EmitDiagnostics writes the per-shard synchronization diagnostics
// into rec after Run has returned: clock-skew and mailbox-depth time
// series (sampled every diagSampleStride windows, T = committed
// simulated time) plus per-shard summary counters.
//
// These values measure the engine, not the model — skew and depth
// depend on goroutine scheduling and change run to run — so they go
// into a separate diagnostics sink, never into the deterministic
// export that the shards-1-vs-N byte equivalence gate compares.
func (e *Engine) EmitDiagnostics(rec obs.Recorder) {
	if !obs.On(rec) {
		return
	}
	for _, s := range e.shards {
		tag := fmt.Sprintf("s%d", s.id)
		rec.Count("shard.windows."+tag, s.stats.Windows)
		rec.Count("shard.msgs_sent."+tag, s.stats.MsgsSent)
		rec.Count("shard.msgs_recv."+tag, s.stats.MsgsRecv)
		rec.Count("shard.fired."+tag, int64(s.Sim.Fired()))
		for _, p := range s.skewSamples {
			rec.Gauge("shard.clock_skew."+tag, p.t, p.v)
		}
		for _, p := range s.depthSamples {
			rec.Gauge("shard.mailbox_depth."+tag, p.t, p.v)
		}
	}
}
