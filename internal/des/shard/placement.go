package shard

import "fmt"

// Placement assigns work units (the rack model's enclosures) to
// shards. Both strategies are pure functions of their inputs — no map
// iteration, no randomness — so a placement is reproducible from the
// run manifest alone, and the shard-invariance guarantee extends to
// "any shard count under any placement".
//
// PlaceBlock is the contiguous split the engine used before placement
// existed: unit u goes to shard u*shards/units, preserving unit order.
// It is the identity-friendly default and the baseline the balanced
// packer is compared against.
func PlaceBlock(units, shards int) []int {
	if units < 0 || shards <= 0 {
		panic(fmt.Sprintf("shard: PlaceBlock(%d, %d): need units >= 0 and shards > 0", units, shards))
	}
	asn := make([]int, units)
	for u := range asn {
		asn[u] = u * shards / units
	}
	return asn
}

// PlaceBalanced assigns one shard per unit with a deterministic
// greedy bin-packer (longest-processing-time): units are considered
// in decreasing weight (ties broken by increasing unit index) and each
// goes to the currently least-loaded shard (ties broken by lowest
// shard index). weights[u] is the unit's event-generation weight — for
// the rack model, boards × clients per board plus the enclosure's
// blade. bias, when non-nil, pre-loads shards with work that exists
// regardless of placement (the SAN array and batch aggregator pinned
// to shard 0); len(bias) must equal shards.
//
// LPT's worst-case makespan is within 4/3 of optimal, which is more
// than enough headroom for the rack sizes the simulator sweeps; what
// matters here is that the packing is deterministic and visibly better
// than PlaceBlock on skewed racks (one giant enclosure plus many small
// ones lands the giant alone on the emptiest shard instead of sharing
// a block with its neighbors).
func PlaceBalanced(weights []float64, shards int, bias []float64) []int {
	if shards <= 0 {
		panic(fmt.Sprintf("shard: PlaceBalanced: need shards > 0, got %d", shards))
	}
	if bias != nil && len(bias) != shards {
		panic(fmt.Sprintf("shard: PlaceBalanced: bias has %d entries for %d shards", len(bias), shards))
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (weight desc, index asc): n is the enclosure
	// count, tiny, and the tie-break must be explicit.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if weights[b] > weights[a] || (weights[b] == weights[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	load := make([]float64, shards)
	copy(load, bias)
	asn := make([]int, len(weights))
	for _, u := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		asn[u] = best
		load[best] += weights[u]
	}
	return asn
}

// Loads folds an assignment back into per-shard load totals — the
// packer's own quality metric, used by tests and by the placement
// manifest record.
func Loads(assignment []int, weights []float64, shards int) []float64 {
	load := make([]float64, shards)
	for u, s := range assignment {
		load[s] += weights[u]
	}
	return load
}
