package des

import (
	"fmt"

	"warehousesim/internal/obs"
)

// Probes periodically samples kernel and resource state into an
// obs.Recorder, producing the utilization / queue-length / event-rate
// timelines behind every instrumented run:
//
//   - "des.heap_depth"      pending events at each tick
//   - "des.events_per_sec"  events fired per simulated second since the
//     previous tick (probe ticks included; one tick adds one event)
//   - "util.<resource>"     time-weighted busy fraction over the tick
//   - "qlen.<resource>"     time-weighted queue length over the tick
//
// Probing only ever schedules its own tick events and reads state, so an
// instrumented run's model trajectory is identical to an uninstrumented
// one under the same seed — probes observe, they never perturb.
type Probes struct {
	sim      *Sim
	rec      obs.Recorder
	interval Time
	handle   EventHandle
	running  bool

	lastFired uint64
	watched   []watchedResource

	// OnTick, when non-nil, runs at the end of every probe tick with
	// the current simulated time. It is the live-introspection seam:
	// the hook may read simulation state and publish snapshots, but it
	// must never schedule events or sample randomness — the same
	// observe-don't-perturb contract the recorder obeys.
	OnTick func(now float64)

	// OmitKernel suppresses the kernel-wide gauges (des.heap_depth,
	// des.events_per_sec), keeping only the per-resource series. The
	// sharded rack model sets it: heap depth and event rate are
	// per-shard quantities that depend on the partitioning, so they
	// would break the partition-independent export that the shards-1
	// vs shards-N byte-equivalence gate compares. Set before Start.
	OmitKernel bool
}

type watchedResource struct {
	r         *Resource
	lastBusy  float64
	lastQueue float64
}

// NewProbes creates a sampler attached to sim emitting into rec every
// interval of simulated time. Call Watch to add resources, then Start.
func NewProbes(sim *Sim, rec obs.Recorder, interval Time) *Probes {
	if interval <= 0 {
		panic(fmt.Sprintf("des: probe interval must be positive, got %v", interval))
	}
	if rec == nil {
		rec = obs.Nop{}
	}
	return &Probes{sim: sim, rec: rec, interval: interval}
}

// Watch adds a resource to the sampled set. Its utilization and
// queue-length series are named after Resource.Name.
func (p *Probes) Watch(resources ...*Resource) {
	for _, r := range resources {
		busy, queue := r.Integrals()
		p.watched = append(p.watched, watchedResource{r: r, lastBusy: busy, lastQueue: queue})
	}
}

// Start schedules the first tick one interval from now. Starting an
// already-running sampler is a no-op.
func (p *Probes) Start() {
	if p.running || !obs.On(p.rec) {
		return
	}
	p.running = true
	p.lastFired = p.sim.Fired()
	p.handle = p.sim.Schedule(p.interval, p.tick)
}

// Stop cancels the pending tick.
func (p *Probes) Stop() {
	if p.running {
		p.handle.Cancel()
		p.running = false
	}
}

func (p *Probes) tick() {
	now := float64(p.sim.Now())
	dt := float64(p.interval)

	if !p.OmitKernel {
		p.rec.Gauge("des.heap_depth", now, float64(p.sim.Pending()))
		fired := p.sim.Fired()
		p.rec.Gauge("des.events_per_sec", now, float64(fired-p.lastFired)/dt)
		p.lastFired = fired
	}

	for i := range p.watched {
		w := &p.watched[i]
		busy, queue := w.r.Integrals()
		db, dq := busy-w.lastBusy, queue-w.lastQueue
		if db < 0 || dq < 0 {
			// ResetWindow zeroed the integrals mid-interval; the tick
			// covers only the post-reset portion.
			db, dq = busy, queue
		}
		w.lastBusy, w.lastQueue = busy, queue
		p.rec.Gauge("util."+w.r.Name(), now, db/(dt*float64(w.r.Servers())))
		p.rec.Gauge("qlen."+w.r.Name(), now, dq/dt)
	}

	if p.OnTick != nil {
		p.OnTick(now)
	}

	p.handle = p.sim.Schedule(p.interval, p.tick)
}
