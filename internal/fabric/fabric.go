// Package fabric models the rack-level network the paper's cost model
// flattens into one shared switch (§2.2) and flags as future work
// (§5/§6: "I/O consolidation and improved switch design make natural
// fits to our architecture", citing Leigh et al.).
//
// The baseline 40-server rack needs a single top-of-rack switch, so the
// paper's constant per-server switch share is accurate there. The dense
// packaging of §3.3 changes that: 320 or 1250 systems per rack need a
// two-tier fabric — edge (top-of-rack/enclosure) switches whose uplinks
// feed an aggregation tier — and the oversubscription chosen at the
// edge sets both the fabric's cost and the bandwidth each server can
// count on when traffic leaves the rack.
package fabric

import (
	"fmt"
	"math"
)

// PortSpec prices one switch port class (2008-era commodity values).
type PortSpec struct {
	// Gbps is the port speed.
	Gbps float64
	// CostUSD and PowerW are per port, switch silicon amortized in.
	CostUSD float64
	PowerW  float64
}

// Edge1G is a commodity 1 GbE edge port: the catalog's $2,750 40-port
// rack switch amortizes to ~$69 and 1 W per port.
func Edge1G() PortSpec { return PortSpec{Gbps: 1, CostUSD: 69, PowerW: 1} }

// Uplink10G is a 10 GbE uplink/aggregation port (X2/XFP-era pricing).
func Uplink10G() PortSpec { return PortSpec{Gbps: 10, CostUSD: 700, PowerW: 6} }

// Config describes the fabric design problem for one rack.
type Config struct {
	// Servers in the rack.
	Servers int
	// ServerGbps is each server's NIC speed.
	ServerGbps float64
	// EdgePortsPerSwitch is the port count of one edge switch (downlinks
	// plus uplinks share the chassis).
	EdgePortsPerSwitch int
	// Oversubscription is the edge downlink:uplink bandwidth ratio
	// (1 = full bisection; 4 or 8 are common warehouse choices).
	Oversubscription float64
	// Edge and Uplink price the two port classes.
	Edge, Uplink PortSpec
}

// DefaultConfig returns a 48-port-edge, 1 GbE fabric problem.
func DefaultConfig(servers int) Config {
	return Config{
		Servers:            servers,
		ServerGbps:         1,
		EdgePortsPerSwitch: 48,
		Oversubscription:   4,
		Edge:               Edge1G(),
		Uplink:             Uplink10G(),
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("fabric: need servers > 0")
	case c.ServerGbps <= 0:
		return fmt.Errorf("fabric: need NIC speed > 0")
	case c.EdgePortsPerSwitch < 4:
		return fmt.Errorf("fabric: edge switch too small (%d ports)", c.EdgePortsPerSwitch)
	case c.Oversubscription < 1:
		return fmt.Errorf("fabric: oversubscription %g below 1", c.Oversubscription)
	case c.Edge.Gbps <= 0 || c.Uplink.Gbps <= 0:
		return fmt.Errorf("fabric: port speeds must be positive")
	}
	return nil
}

// Plan is a solved rack fabric.
type Plan struct {
	Config Config
	// EdgeSwitches and the per-switch split between server downlinks and
	// uplink ports.
	EdgeSwitches       int
	DownlinksPerSwitch int
	UplinksPerSwitch   int
	// AggPorts is the aggregation-tier port count (one per edge uplink).
	AggPorts int
	// CostUSD and PowerW are rack totals for the whole fabric.
	CostUSD float64
	PowerW  float64
}

// Design solves the two-tier fabric for the configuration.
//
// Each edge switch dedicates U uplink ports such that
// downlinks*serverGbps <= oversub * U * uplinkGbps, maximizing downlinks
// per chassis. Aggregation provides one port per uplink (the tier's own
// interconnect is outside rack scope).
func Design(c Config) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	bestDown := 0
	bestUp := 0
	for up := 0; up < c.EdgePortsPerSwitch; up++ {
		down := c.EdgePortsPerSwitch - up
		need := float64(down) * c.ServerGbps / c.Oversubscription
		if float64(up)*c.Uplink.Gbps >= need {
			if down > bestDown {
				bestDown, bestUp = down, up
			}
		}
	}
	if bestDown == 0 {
		return Plan{}, fmt.Errorf("fabric: edge switch cannot satisfy oversubscription %g",
			c.Oversubscription)
	}
	switches := (c.Servers + bestDown - 1) / bestDown
	aggPorts := switches * bestUp

	cost := float64(switches)*(float64(bestDown)*c.Edge.CostUSD+float64(bestUp)*c.Uplink.CostUSD) +
		float64(aggPorts)*c.Uplink.CostUSD
	power := float64(switches)*(float64(bestDown)*c.Edge.PowerW+float64(bestUp)*c.Uplink.PowerW) +
		float64(aggPorts)*c.Uplink.PowerW

	return Plan{
		Config:             c,
		EdgeSwitches:       switches,
		DownlinksPerSwitch: bestDown,
		UplinksPerSwitch:   bestUp,
		AggPorts:           aggPorts,
		CostUSD:            cost,
		PowerW:             power,
	}, nil
}

// PerServerCostUSD amortizes the fabric over the rack's servers.
func (p Plan) PerServerCostUSD() float64 {
	return p.CostUSD / float64(p.Config.Servers)
}

// PerServerPowerW amortizes fabric power over the rack's servers.
func (p Plan) PerServerPowerW() float64 {
	return p.PowerW / float64(p.Config.Servers)
}

// EffectiveServerGbps is the bandwidth a server can sustain when every
// server on its edge switch sends off-rack simultaneously: the uplink
// capacity share, capped by the NIC.
func (p Plan) EffectiveServerGbps() float64 {
	uplink := float64(p.UplinksPerSwitch) * p.Config.Uplink.Gbps
	share := uplink / float64(p.DownlinksPerSwitch)
	return math.Min(p.Config.ServerGbps, share)
}

// Latency model for the sharded DES kernel (internal/des/shard). The
// conservative engine needs a lookahead: a hard lower bound on the
// latency of any cross-enclosure interaction. Traffic between
// enclosures crosses at least one store-and-forward edge switch hop
// and must be serialized onto the sender's NIC, so the bound is the
// serialization time of one transfer unit plus the switch hop latency.
const (
	// EdgeHopLatencySec is the store-and-forward latency of one
	// commodity GbE edge-switch hop (forwarding plus minimal queuing
	// floor). Deliberately conservative (low): the lookahead must be a
	// true lower bound, never an average.
	EdgeHopLatencySec = 2e-6

	// CrossEnclosureUnitBytes is the minimum transfer unit of
	// cross-enclosure traffic: one 4 KB page — the granularity of
	// memory-blade swaps and of SAN block transfers.
	CrossEnclosureUnitBytes = 4096
)

// CrossEnclosureLatencySec returns the minimum one-way latency of a
// cross-enclosure transfer for a server with the given NIC bandwidth:
// serializing one transfer unit onto the wire plus one edge-switch
// hop. The sharded kernel uses it as the conservative lookahead, and
// the rack model uses the same value as the explicit transport delay
// of blade, SAN and shuffle messages — keeping model latency and
// synchronization window derivation in one place.
func CrossEnclosureLatencySec(nicBytesPerSec float64) float64 {
	if nicBytesPerSec <= 0 {
		return EdgeHopLatencySec
	}
	return CrossEnclosureUnitBytes/nicBytesPerSec + EdgeHopLatencySec
}

// IntraEnclosureLatencySec returns the minimum one-way latency of a
// transfer that stays inside one enclosure (a board talking to its
// enclosure's memory blade over the backplane): the transfer unit
// still serializes onto the sender's link, but no store-and-forward
// switch hop is crossed. Always strictly below the cross-enclosure
// bound, which is what lets the sharded kernel give co-resident
// traffic a tighter floor without loosening any cross-shard window.
func IntraEnclosureLatencySec(nicBytesPerSec float64) float64 {
	if nicBytesPerSec <= 0 {
		return EdgeHopLatencySec / 2
	}
	return CrossEnclosureUnitBytes / nicBytesPerSec
}

// SANPathLatencySec returns the minimum one-way latency of a SAN block
// transfer: the cross-enclosure path plus one extra edge hop through
// the storage head's switch port. SAN traffic is the only interactive
// cross-enclosure traffic in the rack model, so this (looser) bound is
// what the per-pair lookahead matrix assigns to board-shard ↔ SAN-shard
// pairs — widening their synchronization windows relative to the raw
// fabric floor.
func SANPathLatencySec(nicBytesPerSec float64) float64 {
	return CrossEnclosureLatencySec(nicBytesPerSec) + EdgeHopLatencySec
}
