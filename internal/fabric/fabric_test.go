package fabric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(40).Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.ServerGbps = 0 },
		func(c *Config) { c.EdgePortsPerSwitch = 2 },
		func(c *Config) { c.Oversubscription = 0.5 },
		func(c *Config) { c.Uplink.Gbps = 0 },
	}
	for i, mutate := range bads {
		c := DefaultConfig(40)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDesignBaselineRack(t *testing.T) {
	// 40 servers at 1 GbE, 4:1 oversub, 48-port edge: one switch with
	// 40+ downlinks and a single 10G uplink covers it.
	p, err := Design(DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeSwitches != 1 {
		t.Errorf("edge switches = %d, want 1", p.EdgeSwitches)
	}
	if p.DownlinksPerSwitch < 40 {
		t.Errorf("downlinks = %d", p.DownlinksPerSwitch)
	}
	if p.UplinksPerSwitch < 1 {
		t.Error("no uplinks")
	}
	// Per-server cost should be the same order as the paper's $69 share.
	if c := p.PerServerCostUSD(); c < 50 || c > 200 {
		t.Errorf("per-server fabric cost $%.0f implausible", c)
	}
}

func TestDesignDenseRack(t *testing.T) {
	// N2's 1250-per-rack needs many edge switches and an aggregation
	// tier the flat model ignores.
	p, err := Design(DefaultConfig(1250))
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeSwitches < 26 {
		t.Errorf("edge switches = %d, want >= 26", p.EdgeSwitches)
	}
	if p.AggPorts != p.EdgeSwitches*p.UplinksPerSwitch {
		t.Error("aggregation ports do not match uplinks")
	}
	// Total servers covered.
	if p.EdgeSwitches*p.DownlinksPerSwitch < 1250 {
		t.Error("fabric does not cover the rack")
	}
}

func TestOversubscriptionTradeoff(t *testing.T) {
	full := DefaultConfig(320)
	full.Oversubscription = 1
	cheap := DefaultConfig(320)
	cheap.Oversubscription = 8

	pf, err := Design(full)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Design(cheap)
	if err != nil {
		t.Fatal(err)
	}
	if pf.PerServerCostUSD() <= pc.PerServerCostUSD() {
		t.Errorf("full bisection ($%.0f) not pricier than 8:1 ($%.0f)",
			pf.PerServerCostUSD(), pc.PerServerCostUSD())
	}
	if pf.EffectiveServerGbps() < pc.EffectiveServerGbps() {
		t.Error("full bisection should not have less effective bandwidth")
	}
	if math.Abs(pf.EffectiveServerGbps()-1) > 1e-9 {
		t.Errorf("full bisection effective bw = %g, want NIC speed 1",
			pf.EffectiveServerGbps())
	}
}

func TestEffectiveBandwidthRespectsOversub(t *testing.T) {
	c := DefaultConfig(320)
	c.Oversubscription = 4
	p, err := Design(c)
	if err != nil {
		t.Fatal(err)
	}
	bw := p.EffectiveServerGbps()
	// At 4:1 the share must be at least 1/4 of the NIC (the solver may
	// give more because uplinks are integer).
	if bw < 0.25-1e-9 || bw > 1 {
		t.Errorf("effective bw = %g", bw)
	}
}

func TestDesignInfeasible(t *testing.T) {
	c := DefaultConfig(40)
	c.ServerGbps = 1000 // even one downlink exceeds all 47 uplinks
	c.Oversubscription = 1
	if _, err := Design(c); err == nil {
		t.Error("infeasible fabric accepted")
	}
}

// Property: the design always covers all servers and the per-switch port
// split never exceeds the chassis.
func TestQuickDesignInvariants(t *testing.T) {
	f := func(sRaw uint16, overRaw uint8) bool {
		servers := 1 + int(sRaw)%2000
		over := 1 + float64(overRaw%8)
		c := DefaultConfig(servers)
		c.Oversubscription = over
		p, err := Design(c)
		if err != nil {
			return false
		}
		if p.DownlinksPerSwitch+p.UplinksPerSwitch > c.EdgePortsPerSwitch {
			return false
		}
		if p.EdgeSwitches*p.DownlinksPerSwitch < servers {
			return false
		}
		return p.CostUSD > 0 && p.PowerW > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEnclosureLatency(t *testing.T) {
	// 1 GbE: 4096 B at 125 MB/s = 32.768 us, plus the 2 us hop.
	got := CrossEnclosureLatencySec(125e6)
	want := 4096.0/125e6 + EdgeHopLatencySec
	if got != want {
		t.Errorf("CrossEnclosureLatencySec(1GbE) = %g, want %g", got, want)
	}
	if got <= 0 {
		t.Error("lookahead must be strictly positive")
	}
	// A faster NIC shrinks serialization but the hop floor remains.
	if f := CrossEnclosureLatencySec(1.25e9); f <= EdgeHopLatencySec || f >= got {
		t.Errorf("10GbE latency %g out of range (%g, %g)", f, EdgeHopLatencySec, got)
	}
	// Degenerate bandwidth falls back to the hop floor instead of Inf.
	if f := CrossEnclosureLatencySec(0); f != EdgeHopLatencySec {
		t.Errorf("zero-bandwidth fallback = %g, want %g", f, EdgeHopLatencySec)
	}
}

// TestLatencyClassOrdering: the three rack traffic classes must stay
// strictly ordered — intra-enclosure (no switch hop) below
// cross-enclosure (one edge hop) below the SAN path (an extra hop) —
// at any bandwidth, because the shard lookahead matrix is built from
// exactly this ordering.
func TestLatencyClassOrdering(t *testing.T) {
	for _, nic := range []float64{0, 125e6, 1.25e9, 12.5e9} {
		intra := IntraEnclosureLatencySec(nic)
		cross := CrossEnclosureLatencySec(nic)
		san := SANPathLatencySec(nic)
		if !(0 < intra && intra < cross && cross < san) {
			t.Errorf("nic=%g: class ordering violated: intra %g, cross %g, san %g", nic, intra, cross, san)
		}
	}
	// 1 GbE: intra is pure serialization, the SAN path adds one hop to
	// the cross-enclosure number.
	if got, want := IntraEnclosureLatencySec(125e6), 4096.0/125e6; got != want {
		t.Errorf("IntraEnclosureLatencySec(1GbE) = %g, want %g", got, want)
	}
	if got, want := SANPathLatencySec(125e6), CrossEnclosureLatencySec(125e6)+EdgeHopLatencySec; got != want {
		t.Errorf("SANPathLatencySec(1GbE) = %g, want %g", got, want)
	}
	// Degenerate bandwidth: the half-hop fallback keeps intra below cross.
	if got, want := IntraEnclosureLatencySec(0), EdgeHopLatencySec/2; got != want {
		t.Errorf("zero-bandwidth intra fallback = %g, want %g", got, want)
	}
}
