package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantSampler(t *testing.T) {
	r := NewRNG(1)
	c := Constant(4.2)
	for i := 0; i < 10; i++ {
		if v := c.Sample(r); v != 4.2 {
			t.Fatalf("Constant returned %g", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(2)
	u := Uniform{Lo: 3, Hi: 9}
	var s Summary
	for i := 0; i < 100000; i++ {
		v := u.Sample(r)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform out of range: %g", v)
		}
		s.Add(v)
	}
	if m := s.Mean(); math.Abs(m-6) > 0.05 {
		t.Errorf("Uniform mean %g, want ~6", m)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(3)
	e := Exponential{Mean: 2.5}
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(e.Sample(r))
	}
	if m := s.Mean(); math.Abs(m-2.5) > 0.05 {
		t.Errorf("Exponential mean %g, want ~2.5", m)
	}
}

func TestLogNormalFromMeanP50(t *testing.T) {
	l := LogNormalFromMeanP50(100, 40)
	r := NewRNG(4)
	var s Summary
	samples := make([]float64, 0, 200000)
	for i := 0; i < 200000; i++ {
		v := l.Sample(r)
		s.Add(v)
		samples = append(samples, v)
	}
	if m := s.Mean(); math.Abs(m-100)/100 > 0.05 {
		t.Errorf("LogNormal mean %g, want ~100", m)
	}
	if med := Percentile(samples, 50); math.Abs(med-40)/40 > 0.05 {
		t.Errorf("LogNormal median %g, want ~40", med)
	}
}

func TestLogNormalFromMeanP50Panics(t *testing.T) {
	for _, tc := range []struct{ mean, p50 float64 }{{10, 10}, {5, 10}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for mean=%g p50=%g", tc.mean, tc.p50)
				}
			}()
			LogNormalFromMeanP50(tc.mean, tc.p50)
		}()
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(5)
	p := Pareto{Alpha: 1.2, Min: 10, Max: 10000}
	for i := 0; i < 100000; i++ {
		v := p.Sample(r)
		if v < 10 || v > 10000 {
			t.Fatalf("Pareto out of bounds: %g", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	r := NewRNG(6)
	p := Pareto{Alpha: 1.1, Min: 1, Max: 1e6}
	samples := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		samples = append(samples, p.Sample(r))
	}
	med := Percentile(samples, 50)
	p99 := Percentile(samples, 99)
	if p99/med < 20 {
		t.Errorf("Pareto tail too light: p99/median = %g", p99/med)
	}
}

func TestEmpiricalErrors(t *testing.T) {
	if _, err := NewEmpirical(nil, nil); err == nil {
		t.Error("empty empirical accepted")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewEmpirical([]float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewEmpirical([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestEmpiricalFrequencies(t *testing.T) {
	e, err := NewEmpirical([]float64{10, 20, 30}, []float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(7)
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[e.Sample(r)]++
	}
	for v, want := range map[float64]float64{10: 0.1, 20: 0.2, 30: 0.7} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("value %g frequency %g, want ~%g", v, got, want)
		}
	}
}

func TestClamp(t *testing.T) {
	r := NewRNG(8)
	c := Clamp{S: LogNormal{Mu: 0, Sigma: 3}, Lo: 0.5, Hi: 2}
	for i := 0; i < 10000; i++ {
		v := c.Sample(r)
		if v < 0.5 || v > 2 {
			t.Fatalf("Clamp leaked %g", v)
		}
	}
}

// Property: empirical SampleIndex always returns a valid index.
func TestQuickEmpiricalIndex(t *testing.T) {
	e, err := NewEmpirical([]float64{0, 1, 2, 3}, []float64{0.5, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			idx := e.SampleIndex(r)
			if idx < 0 || idx >= 4 {
				return false
			}
			if idx == 1 { // zero-weight value must never be drawn
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
