package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max online (Welford's
// algorithm) without retaining samples. It backs every resource and
// latency statistic in the simulators.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds other into s, as if all of other's observations had been
// Added to s (Chan et al. parallel variance merge).
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.mean += d * n2 / tot
	s.m2 += other.m2 + d*d*n1*n2/tot
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String summarizes for debugging output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// HarmonicMean returns the harmonic mean of xs. The paper's suite-level
// "HMean" rows combine per-benchmark throughputs (and reciprocals of
// execution times) harmonically (§3.2). Zero or negative entries are
// invalid; the function returns 0 for an empty slice and NaN when any
// entry is non-positive, so mistakes surface loudly in reports.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	hm, ok := HarmonicMeanOK(xs)
	if !ok {
		return math.NaN()
	}
	return hm
}

// HarmonicMeanOK is the checked variant: it reports ok=false instead of
// NaN for empty input or any non-positive/NaN/Inf entry, so callers
// building suite tables can omit an undefined row explicitly rather
// than silently propagating NaN into downstream aggregates (e.g. a
// measurement whose denominator was zero).
func HarmonicMeanOK(xs []float64) (hm float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 1) {
			return 0, false
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum, true
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs need not be sorted; the
// function copies and sorts. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
