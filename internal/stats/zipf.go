package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. The paper uses Zipf distributions for search keyword
// popularity (§2.1, after Xie & O'Hallaron) and for YouTube video
// popularity (after Gill et al.).
//
// For moderate N the generator precomputes the CDF and samples by binary
// search (exact, O(log N) per draw). For very large N it falls back to an
// approximate inverse-CDF method that avoids the O(N) setup cost.
type Zipf struct {
	n     int
	s     float64
	cdf   []float64 // nil when using the approximate path
	hInt  float64   // integral constant for the approximate path
	hX1   float64
	exact bool
}

// cdfLimit is the largest N for which we precompute an exact CDF.
const cdfLimit = 1 << 22

// NewZipf builds a Zipf distribution over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf needs n > 0, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("stats: zipf needs s > 0, got %g", s)
	}
	z := &Zipf{n: n, s: s}
	if n <= cdfLimit {
		z.exact = true
		z.cdf = make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += math.Pow(float64(i+1), -s)
			z.cdf[i] = sum
		}
		// Normalize so binary search can use uniforms in [0,1).
		inv := 1 / sum
		for i := range z.cdf {
			z.cdf[i] *= inv
		}
		z.cdf[n-1] = 1 // guard against rounding
		return z, nil
	}
	// Approximate continuous inversion: treat the PMF as the density
	// c/x^s on [1, n+1) and invert its integral H.
	z.hX1 = z.h(1)
	z.hInt = z.h(float64(n)+1) - z.hX1
	return z, nil
}

// h is the antiderivative of x^-s (handling s == 1).
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return math.Log(x)
	}
	return math.Pow(x, 1-z.s) / (1 - z.s)
}

func (z *Zipf) hInv(y float64) float64 {
	if z.s == 1 {
		return math.Exp(y)
	}
	return math.Pow(y*(1-z.s), 1/(1-z.s))
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Rank draws a rank in [0, N), with rank 0 the most popular.
func (z *Zipf) Rank(r *RNG) int {
	if z.exact {
		u := r.Float64()
		return sort.SearchFloat64s(z.cdf, u)
	}
	u := r.Float64()
	x := z.hInv(z.hX1 + u*z.hInt)
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Sample implements Sampler, returning the rank as a float64.
func (z *Zipf) Sample(r *RNG) float64 { return float64(z.Rank(r)) }

// Prob returns the probability of rank k (exact mode only; the
// approximate mode returns the continuous-density estimate).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if z.exact {
		if k == 0 {
			return z.cdf[0]
		}
		return z.cdf[k] - z.cdf[k-1]
	}
	return (z.h(float64(k)+2) - z.h(float64(k)+1)) / z.hInt
}

// CoverageRanks returns the smallest number of top ranks whose cumulative
// probability reaches frac (exact mode). The memory-blade experiments use
// this to size "hot" working sets, mirroring the paper's observation that
// 25% of index terms cover most query traffic.
func (z *Zipf) CoverageRanks(frac float64) int {
	if !z.exact {
		// Invert the continuous CDF.
		y := z.hX1 + frac*z.hInt
		k := int(z.hInv(y))
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		return k
	}
	i := sort.SearchFloat64s(z.cdf, frac)
	return i + 1
}
