package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-scaled latency histogram. Buckets grow
// geometrically from Min so that sub-millisecond and multi-second
// latencies are both resolved; quantile queries interpolate within a
// bucket. It is the backing store for QoS checks, which need the 95th
// percentile of very large request populations without retaining them.
type Histogram struct {
	min     float64
	growth  float64
	logG    float64
	buckets []int64
	under   int64 // observations below min
	count   int64
	sum     float64
	maxSeen float64
}

// NewHistogram builds a histogram with nbuckets geometric buckets
// starting at min and growing by factor growth (> 1) per bucket.
func NewHistogram(min float64, growth float64, nbuckets int) *Histogram {
	if min <= 0 || growth <= 1 || nbuckets <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram spec min=%g growth=%g n=%d", min, growth, nbuckets))
	}
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]int64, nbuckets),
	}
}

// NewLatencyHistogram returns a histogram tuned for request latencies in
// seconds: 10µs up to ~20 minutes with ~5% relative resolution.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(10e-6, 1.05, 400)
}

func (h *Histogram) bucketOf(x float64) int {
	if x < h.min {
		return -1
	}
	b := int(math.Log(x/h.min) / h.logG)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket b.
func (h *Histogram) bucketLow(b int) float64 {
	return h.min * math.Pow(h.growth, float64(b))
}

// Add records one observation (negative values are clamped to 0 and
// counted in the underflow bucket).
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	if x > h.maxSeen {
		h.maxSeen = x
	}
	b := h.bucketOf(x)
	if b < 0 {
		h.under++
		return
	}
	h.buckets[b]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns the q-quantile (0 < q <= 1) with intra-bucket linear
// interpolation. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	seen := h.under
	if target <= seen {
		return h.min / 2
	}
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+c >= target {
			lo := h.bucketLow(b)
			hi := lo * h.growth
			frac := float64(target-seen) / float64(c)
			v := lo + (hi-lo)*frac
			if v > h.maxSeen && h.maxSeen > 0 {
				v = h.maxSeen
			}
			return v
		}
		seen += c
	}
	return h.maxSeen
}

// FractionAbove returns the fraction of observations strictly greater
// than threshold (bucket-granular; observations in the bucket containing
// threshold are apportioned linearly).
func (h *Histogram) FractionAbove(threshold float64) float64 {
	if h.count == 0 {
		return 0
	}
	tb := h.bucketOf(threshold)
	if tb < 0 {
		return float64(h.count-h.under) / float64(h.count)
	}
	var above int64
	for b := tb + 1; b < len(h.buckets); b++ {
		above += h.buckets[b]
	}
	// Apportion threshold's own bucket.
	lo := h.bucketLow(tb)
	hi := lo * h.growth
	frac := (hi - threshold) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	part := frac * float64(h.buckets[tb])
	return (float64(above) + part) / float64(h.count)
}

// Reset clears all observations while keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.count, h.sum, h.maxSeen = 0, 0, 0, 0
}

// String renders a compact summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4gs p50=%.4gs p95=%.4gs p99=%.4gs max=%.4gs",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.maxSeen)
	return b.String()
}

// Merge folds o's observations into h. Both histograms must share the
// same bucket layout (min, growth, bucket count) — merging across
// layouts would misbin counts, so it panics instead.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.min != o.min || h.growth != o.growth || len(h.buckets) != len(o.buckets) {
		panic("stats: merging histograms with different bucket layouts")
	}
	h.count += o.count
	h.sum += o.sum
	h.under += o.under
	if o.maxSeen > h.maxSeen {
		h.maxSeen = o.maxSeen
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}
