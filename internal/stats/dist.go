package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sampler is a source of float64 variates. All workload generators accept
// a Sampler so tests can substitute fixed sequences.
type Sampler interface {
	Sample(r *RNG) float64
}

// Constant is a Sampler that always returns its value. Useful for
// degenerate distributions and for tests.
type Constant float64

// Sample implements Sampler.
func (c Constant) Sample(*RNG) float64 { return float64(c) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Sampler.
func (u Uniform) Sample(r *RNG) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Exponential samples an exponential distribution with the given Mean.
// It models think times and inter-arrival gaps in the client driver.
type Exponential struct {
	Mean float64
}

// Sample implements Sampler.
func (e Exponential) Sample(r *RNG) float64 {
	return e.Mean * r.ExpFloat64()
}

// LogNormal samples a log-normal distribution parameterized by the
// location Mu and scale Sigma of the underlying normal. It models e-mail
// and attachment sizes (heavily right-skewed, as in the LoadSim profile).
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Sampler.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// LogNormalFromMeanP50 builds a LogNormal whose median is p50 and whose
// mean is mean. It panics if mean <= p50 or p50 <= 0; a log-normal mean
// always exceeds its median.
func LogNormalFromMeanP50(mean, p50 float64) LogNormal {
	if p50 <= 0 || mean <= p50 {
		panic(fmt.Sprintf("stats: invalid log-normal spec mean=%g p50=%g", mean, p50))
	}
	mu := math.Log(p50)
	// mean = exp(mu + sigma^2/2)  =>  sigma = sqrt(2 (ln mean - mu)).
	sigma := math.Sqrt(2 * (math.Log(mean) - mu))
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Pareto samples a bounded Pareto distribution with shape Alpha on
// [Min, Max]. It models heavy-tailed object sizes (video files).
type Pareto struct {
	Alpha    float64
	Min, Max float64
}

// Sample implements Sampler.
func (p Pareto) Sample(r *RNG) float64 {
	if p.Min <= 0 || p.Max <= p.Min {
		panic(fmt.Sprintf("stats: invalid bounded pareto [%g,%g]", p.Min, p.Max))
	}
	u := r.Float64()
	la := math.Pow(p.Min, p.Alpha)
	ha := math.Pow(p.Max, p.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	if x < p.Min {
		x = p.Min
	}
	if x > p.Max {
		x = p.Max
	}
	return x
}

// Empirical samples from a fixed set of (value, weight) points — an
// empirical distribution such as a measured action mix.
type Empirical struct {
	values  []float64
	cum     []float64 // cumulative weights, strictly increasing
	totalWt float64
}

// NewEmpirical builds an empirical distribution. values and weights must
// have equal nonzero length and weights must be non-negative with a
// positive sum.
func NewEmpirical(values, weights []float64) (*Empirical, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("stats: empirical needs matching non-empty values/weights, got %d/%d", len(values), len(weights))
	}
	e := &Empirical{
		values: append([]float64(nil), values...),
		cum:    make([]float64, len(weights)),
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: empirical weight %d is invalid: %g", i, w)
		}
		e.totalWt += w
		e.cum[i] = e.totalWt
	}
	if e.totalWt <= 0 {
		return nil, fmt.Errorf("stats: empirical weights sum to %g", e.totalWt)
	}
	return e, nil
}

// Sample implements Sampler.
func (e *Empirical) Sample(r *RNG) float64 {
	return e.values[e.index(r)]
}

// SampleIndex returns the index of the chosen point, for callers that
// treat values as category identifiers.
func (e *Empirical) SampleIndex(r *RNG) int { return e.index(r) }

func (e *Empirical) index(r *RNG) int {
	u := r.Float64() * e.totalWt
	return sort.SearchFloat64s(e.cum, u)
}

// Clamp wraps a Sampler and clamps its output to [Lo, Hi].
type Clamp struct {
	S      Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (c Clamp) Sample(r *RNG) float64 {
	v := c.S.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}
