package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	for _, tc := range []struct {
		min, growth float64
		n           int
	}{{0, 1.1, 10}, {1, 1.0, 10}, {1, 1.1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for min=%g growth=%g n=%d", tc.min, tc.growth, tc.n)
				}
			}()
			NewHistogram(tc.min, tc.growth, tc.n)
		}()
	}
}

func TestHistogramQuantileAgainstExact(t *testing.T) {
	h := NewLatencyHistogram()
	r := NewRNG(1)
	samples := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Latency-like mixture: mostly ~10ms, a slow tail.
		v := 0.01 * (0.5 + r.ExpFloat64())
		if r.Bool(0.05) {
			v += 0.2 * r.ExpFloat64()
		}
		h.Add(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := Percentile(samples, q*100)
		got := h.Quantile(q)
		if math.Abs(got-exact)/exact > 0.08 {
			t.Errorf("q%g: hist=%g exact=%g (err %.1f%%)", q, got, exact,
				100*math.Abs(got-exact)/exact)
		}
	}
}

func TestHistogramMeanAndCount(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{0.1, 0.2, 0.3} {
		h.Add(v)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-0.2) > 1e-12 {
		t.Errorf("mean = %g", m)
	}
	if h.Max() != 0.3 {
		t.Errorf("max = %g", h.Max())
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 900; i++ {
		h.Add(0.010)
	}
	for i := 0; i < 100; i++ {
		h.Add(1.0)
	}
	got := h.FractionAbove(0.5)
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("FractionAbove(0.5) = %g, want ~0.1", got)
	}
	if fa := h.FractionAbove(5); fa != 0 {
		t.Errorf("FractionAbove(5) = %g, want 0", fa)
	}
	if fa := h.FractionAbove(1e-9); math.Abs(fa-1) > 1e-9 {
		t.Errorf("FractionAbove(~0) = %g, want 1", fa)
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram(1, 2, 8)
	h.Add(0.5) // below min
	h.Add(2)
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(0.25); q >= 1 {
		t.Errorf("low quantile should fall in underflow region, got %g", q)
	}
}

func TestHistogramOverflowClamped(t *testing.T) {
	h := NewHistogram(1, 2, 4) // top bucket starts at 8
	h.Add(1e9)
	if q := h.Quantile(1); q > 1e9 {
		t.Errorf("quantile exceeded max seen: %g", q)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(0.5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("reset did not clear state")
	}
	if q := h.Quantile(0.95); q != 0 {
		t.Errorf("quantile of empty = %g", q)
	}
}

// Property: quantiles are monotone in q.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		h := NewLatencyHistogram()
		n := 10 + r.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(0.001 + r.ExpFloat64()*0.05)
		}
		prev := -1.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
