package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("count = %d", s.Count())
	}
	if m := s.Mean(); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %g", m)
	}
	// Sample variance of that classic set is 32/7.
	if v := s.Var(); math.Abs(v-32.0/7) > 1e-9 {
		t.Errorf("var = %g, want %g", v, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Count() != 0 {
		t.Error("empty summary not zeroed")
	}
}

func TestSummaryMerge(t *testing.T) {
	r := NewRNG(42)
	var all, a, b Summary
	for i := 0; i < 10000; i++ {
		x := r.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %g != %g", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var())/all.Var() > 1e-9 {
		t.Errorf("merged var %g != %g", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var empty, full Summary
	full.Add(3)
	full.Add(5)
	snapshot := full
	full.Merge(empty)
	if full != snapshot {
		t.Error("merging empty changed summary")
	}
	empty.Merge(full)
	if empty != full {
		t.Error("merging into empty did not copy")
	}
}

func TestHarmonicMean(t *testing.T) {
	if hm := HarmonicMean([]float64{1, 1, 1}); math.Abs(hm-1) > 1e-12 {
		t.Errorf("hmean(1,1,1) = %g", hm)
	}
	if hm := HarmonicMean([]float64{2, 6}); math.Abs(hm-3) > 1e-12 {
		t.Errorf("hmean(2,6) = %g, want 3", hm)
	}
	if hm := HarmonicMean(nil); hm != 0 {
		t.Errorf("hmean(nil) = %g", hm)
	}
	if _, ok := HarmonicMeanOK([]float64{2, 6}); !ok {
		t.Error("HarmonicMeanOK rejected valid input")
	}
	if _, ok := HarmonicMeanOK(nil); ok {
		t.Error("HarmonicMeanOK accepted empty input")
	}
	for _, bad := range [][]float64{{1, 0}, {1, -2}, {1, math.NaN()}, {1, math.Inf(1)}} {
		if hm, ok := HarmonicMeanOK(bad); ok {
			t.Errorf("HarmonicMeanOK(%v) = %g, want rejection", bad, hm)
		}
	}
	if hm := HarmonicMean([]float64{1, 0}); !math.IsNaN(hm) {
		t.Errorf("hmean with zero = %g, want NaN", hm)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(xs, 75); p != 4 {
		t.Errorf("p75 = %g", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated.
	if !sort.Float64sAreSorted([]float64{5, 1, 4, 2, 3}[0:0]) { // trivially true; real check below
		t.Fatal("unreachable")
	}
	orig := []float64{9, 1, 5}
	Percentile(orig, 50)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Percentile mutated its input")
	}
}

// Property: harmonic mean is never above the arithmetic mean for positive
// inputs (AM-HM inequality).
func TestQuickHarmonicLEArithmetic(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(16)
		xs := make([]float64, n)
		sum := 0.0
		for i := range xs {
			xs[i] = 0.01 + 100*r.Float64()
			sum += xs[i]
		}
		am := sum / float64(n)
		hm := HarmonicMean(xs)
		return hm <= am*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford summary matches the naive two-pass computation.
func TestQuickSummaryMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-v) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
