// Package stats provides the deterministic random-number and statistics
// substrate used by every simulator in this repository.
//
// All model randomness flows through RNG so that experiments are
// reproducible bit-for-bit from a seed. The package also provides the
// probability distributions the paper's workload generators need (Zipf
// keyword popularity, exponential think times, log-normal object sizes,
// empirical action mixes) and the measurement helpers (histograms,
// percentile trackers, harmonic means) used to compute QoS-constrained
// throughput.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64* with a splitmix64-seeded state). It intentionally does not
// use math/rand so that the generated streams are stable across Go
// releases; the paper's experiments must replay identically forever.
//
// The zero value is not valid; use NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed. Two generators built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
//
//whvet:allow nodeterm this is the seed-mixing substrate itself; every other package must derive seeds through it rather than repeat these constants
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step guarantees a well-mixed, non-zero state even for
	// small or zero seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.state = z
}

// Uint64 returns the next 64 uniformly distributed bits.
//
//whvet:allow nodeterm the xorshift64* output multiplier lives here by definition; this is the generator the check steers everyone toward
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Split returns a new generator whose stream is derived from, but
// statistically independent of, the receiver's. It is the supported way
// to hand child components their own randomness without coupling their
// consumption rates.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// SweepSeed derives the seed for cell index i of a parameter sweep from
// the sweep's base seed: the index is spread by the golden-ratio
// constant, xor-folded into the base, and splitmix-mixed (via Seed), so
// cells get decorrelated streams while any (base, i) pair reproduces the
// same seed forever — the contract the deterministic parallel sweep
// engine (experiments' runCells) relies on when cells need their own
// randomness. Deriving from position, not from a shared RNG, is what
// makes cell seeds independent of execution order.
//
//whvet:allow nodeterm golden-ratio index spreading is part of the sanctioned derivation substrate (the alternative callers are pointed at)
func SweepSeed(base, i uint64) uint64 {
	var r RNG
	r.Seed(base ^ (i+1)*0x9e3779b97f4a7c15)
	return r.Uint64()
}

// EntitySeed derives an entity-scoped RNG seed from a run's root seed
// and the entity's stable (group, index) coordinates — e.g. (enclosure,
// client slot) in the sharded rack. It is a pure function of its
// arguments: the resulting per-entity streams are independent of
// partitioning, shard count, and setup iteration order, which is what
// keeps sharded runs bit-identical to flat ones. The mixing is one
// splitmix64 finalization over a golden-ratio spread of the
// coordinates; the exact constants are frozen — committed goldens
// replay through them.
//
//whvet:allow nodeterm part of the seed-derivation substrate; hoisted here so simulation packages never hand-roll the constants
func EntitySeed(root uint64, group, index int) uint64 {
	z := root + 0x9e3779b97f4a7c15*uint64(group+1) + 0xbf58476d1ce4e5b9*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full float53 resolution.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *RNG) ExpFloat64() float64 {
	// Inverse-CDF; clamp the uniform away from 0 to avoid +Inf.
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1 - u)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
