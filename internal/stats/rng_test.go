package stats

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := NewRNG(99)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if m := s.Mean(); math.Abs(m-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", m)
	}
	if v := s.Var(); math.Abs(v-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %g, want ~%g", v, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10) bucket %d count %d outside [8000,12000]", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.ExpFloat64())
	}
	if m := s.Mean(); math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", m)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if m := s.Mean(); math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", m)
	}
	if sd := s.Std(); math.Abs(sd-1) > 0.02 {
		t.Errorf("normal std = %g, want ~1", sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(123)
	child := parent.Split()
	// Child consumption must not perturb parent determinism.
	p2 := NewRNG(123)
	_ = p2.Uint64() // the Split consumed one parent draw
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != p2.Uint64() {
			t.Fatalf("parent stream perturbed by child at draw %d", i)
		}
	}
}

// Property: every seed yields Float64 values in range.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same stream, for arbitrary seeds.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 32; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %g", frac)
	}
}

func TestSweepSeedDeterministicAndDistinct(t *testing.T) {
	if SweepSeed(7, 3) != SweepSeed(7, 3) {
		t.Fatal("SweepSeed is not deterministic")
	}
	// Distinct across cell indices for a fixed base, and across bases
	// for a fixed index — sweep cells must not share RNG streams.
	seen := map[uint64]string{}
	for base := uint64(1); base <= 4; base++ {
		for i := uint64(0); i < 64; i++ {
			s := SweepSeed(base, i)
			key := fmt.Sprintf("base=%d i=%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SweepSeed collision: %s and %s both -> %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
