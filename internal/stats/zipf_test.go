package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("s=NaN accepted")
	}
}

func TestZipfRankInRange(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		k := z.Rank(r)
		if k < 0 || k >= 100 {
			t.Fatalf("rank %d out of [0,100)", k)
		}
	}
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	z, err := NewZipf(50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(2)
	counts := make([]int, 50)
	for i := 0; i < 500000; i++ {
		counts[z.Rank(r)]++
	}
	// Top ranks must clearly dominate; compare decade aggregates to
	// tolerate sampling noise.
	first10, last10 := 0, 0
	for i := 0; i < 10; i++ {
		first10 += counts[i]
		last10 += counts[40+i]
	}
	if first10 < 5*last10 {
		t.Errorf("zipf not skewed: first decade %d vs last decade %d", first10, last10)
	}
}

func TestZipfMatchesTheory(t *testing.T) {
	z, err := NewZipf(20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(3)
	const n = 1000000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		counts[z.Rank(r)]++
	}
	for k := 0; k < 20; k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d freq %g, want %g", k, got, want)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(1000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 0; k < 1000; k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestZipfApproximateLargeN(t *testing.T) {
	// Force the approximate path with a very large N.
	z, err := NewZipf(cdfLimit*4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(4)
	var s Summary
	for i := 0; i < 100000; i++ {
		k := z.Rank(r)
		if k < 0 || k >= z.N() {
			t.Fatalf("approximate rank %d out of range", k)
		}
		s.Add(float64(k))
	}
	// With s=1 most mass is at small ranks; mean rank must be far below N/2.
	if s.Mean() > float64(z.N())/4 {
		t.Errorf("approximate zipf insufficiently skewed: mean rank %g of N=%d", s.Mean(), z.N())
	}
}

func TestZipfCoverageRanks(t *testing.T) {
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	k50 := z.CoverageRanks(0.5)
	k90 := z.CoverageRanks(0.9)
	if k50 <= 0 || k90 <= k50 || k90 > 1000 {
		t.Fatalf("coverage ranks unordered: 50%%=%d 90%%=%d", k50, k90)
	}
	// Verify that the returned count really covers the fraction.
	cum := 0.0
	for k := 0; k < k50; k++ {
		cum += z.Prob(k)
	}
	if cum < 0.5 {
		t.Errorf("top %d ranks cover only %g", k50, cum)
	}
}

func TestZipfSamplerInterface(t *testing.T) {
	z, err := NewZipf(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	var _ Sampler = z
	r := NewRNG(5)
	if v := z.Sample(r); v < 0 || v >= 10 {
		t.Fatalf("Sample out of range: %g", v)
	}
}

// Property: ranks stay in range for arbitrary seeds and a mix of shapes.
func TestQuickZipfRange(t *testing.T) {
	shapes := []float64{0.5, 0.9, 1.0, 1.5}
	zs := make([]*Zipf, len(shapes))
	for i, s := range shapes {
		z, err := NewZipf(257, s)
		if err != nil {
			t.Fatal(err)
		}
		zs[i] = z
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for _, z := range zs {
			for i := 0; i < 20; i++ {
				k := z.Rank(r)
				if k < 0 || k >= 257 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
