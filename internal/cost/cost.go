// Package cost implements the paper's total-cost-of-ownership model
// (§2.2, Figure 1).
//
// The model has two halves:
//
//  1. Base hardware cost: per-server component prices (CPU, memory, disk,
//     board+management, power+fans) cumulated at rack level with the
//     switch/enclosure share amortized per server.
//
//  2. Burdened power & cooling cost, after Patel & Shah:
//
//     PowerCoolingCost = (1 + K1 + L1*(1 + K2)) * U_grid * P_consumed
//
//     where K1 amortizes the power-delivery infrastructure, L1 is the
//     cooling-electricity ratio, K2 amortizes the cooling capital, and
//     U_grid is the electricity tariff. The paper's defaults are
//     K1=1.33, L1=0.8, K2=0.667 and $100/MWh over a 3-year depreciation
//     cycle; those reproduce Figure 1(a)'s $2,464 (srvr1) and $1,561
//     (srvr2) exactly, which the tests pin.
package cost

import (
	"fmt"

	"warehousesim/internal/platform"
	"warehousesim/internal/power"
)

// HoursPerYear uses the Julian year (365.25 days) — the value that makes
// the paper's published P&C dollars come out exactly.
const HoursPerYear = 8766.0

// PCParams parameterizes the burdened power-and-cooling model.
type PCParams struct {
	K1 float64 // amortized power-delivery infrastructure factor
	L1 float64 // cooling electricity per watt of IT electricity
	K2 float64 // amortized cooling-infrastructure factor

	TariffUSDPerMWh float64 // electricity tariff (paper range $50–$170)
	Years           float64 // depreciation cycle
}

// DefaultPCParams returns the paper's defaults (Figure 1a).
func DefaultPCParams() PCParams {
	return PCParams{K1: 1.33, L1: 0.8, K2: 0.667, TariffUSDPerMWh: 100, Years: 3}
}

// Validate reports nonsensical parameterizations.
func (p PCParams) Validate() error {
	switch {
	case p.K1 < 0 || p.L1 < 0 || p.K2 < 0:
		return fmt.Errorf("cost: negative burdening factor: K1=%g L1=%g K2=%g", p.K1, p.L1, p.K2)
	case p.TariffUSDPerMWh <= 0:
		return fmt.Errorf("cost: non-positive tariff %g", p.TariffUSDPerMWh)
	case p.Years <= 0:
		return fmt.Errorf("cost: non-positive depreciation %g years", p.Years)
	}
	return nil
}

// BurdenMultiplier returns (1 + K1 + L1*(1+K2)): burdened dollars per
// dollar of raw IT electricity.
func (p PCParams) BurdenMultiplier() float64 {
	return 1 + p.K1 + p.L1*(1+p.K2)
}

// BurdenedUSD converts consumed watts into burdened power-and-cooling
// dollars over the depreciation cycle.
func (p PCParams) BurdenedUSD(consumedW float64) float64 {
	mwh := consumedW * HoursPerYear * p.Years / 1e6
	return p.BurdenMultiplier() * p.TariffUSDPerMWh * mwh
}

// Breakdown itemizes dollars by cost-model category. HW categories are
// hardware purchase prices; PC categories are burdened power-and-cooling
// dollars attributed to the component that consumes the electricity
// (matching Figure 1(b)'s "CPU P&C", "Fans P&C", ... slices).
type Breakdown struct {
	CPUHW, MemHW, DiskHW, BoardHW, FanHW, FlashHW, RackHW float64
	CPUPC, MemPC, DiskPC, BoardPC, FanPC, FlashPC, RackPC float64
}

// HardwareUSD sums the hardware categories.
func (b Breakdown) HardwareUSD() float64 {
	return b.CPUHW + b.MemHW + b.DiskHW + b.BoardHW + b.FanHW + b.FlashHW + b.RackHW
}

// PowerCoolingUSD sums the burdened P&C categories.
func (b Breakdown) PowerCoolingUSD() float64 {
	return b.CPUPC + b.MemPC + b.DiskPC + b.BoardPC + b.FanPC + b.FlashPC + b.RackPC
}

// TotalUSD is hardware plus burdened power and cooling — the TCO-$ the
// paper's headline metric divides performance by.
func (b Breakdown) TotalUSD() float64 { return b.HardwareUSD() + b.PowerCoolingUSD() }

// Fractions returns each category's share of total cost, keyed by the
// labels used in Figure 1(b). Useful for rendering breakdown charts.
func (b Breakdown) Fractions() map[string]float64 {
	tot := b.TotalUSD()
	if tot == 0 {
		return map[string]float64{}
	}
	return map[string]float64{
		"CPU HW": b.CPUHW / tot, "Mem HW": b.MemHW / tot,
		"Disk HW": b.DiskHW / tot, "Board HW": b.BoardHW / tot,
		"Fan HW": b.FanHW / tot, "Flash HW": b.FlashHW / tot,
		"Rack HW": b.RackHW / tot,
		"CPU P&C": b.CPUPC / tot, "Mem P&C": b.MemPC / tot,
		"Disk P&C": b.DiskPC / tot, "Board P&C": b.BoardPC / tot,
		"Fans P&C": b.FanPC / tot, "Flash P&C": b.FlashPC / tot,
		"Rack P&C": b.RackPC / tot,
	}
}

// Model glues the power model and P&C parameters into a per-server TCO
// calculator.
type Model struct {
	Power power.Model
	PC    PCParams
	// RealEstateUSDPerRackYear amortizes datacenter floor space per rack
	// (§2.2 notes real-estate belongs in an ideal model; the paper's
	// published dollars exclude it, so the default is 0 and the
	// abl-realestate experiment sweeps it). Denser packaging divides
	// this across more servers.
	RealEstateUSDPerRackYear float64
}

// DefaultModel returns the paper's default cost model.
func DefaultModel() Model {
	return Model{Power: power.DefaultModel(), PC: DefaultPCParams()}
}

// realEstatePerServer returns the per-server share of floor-space cost
// over the depreciation cycle.
func (m Model) realEstatePerServer(rack platform.Rack) float64 {
	if m.RealEstateUSDPerRackYear <= 0 {
		return 0
	}
	return m.RealEstateUSDPerRackYear * m.PC.Years / float64(rack.ServersPerRack)
}

// ServerBreakdown computes the full per-server cost breakdown for a
// server housed in the given rack.
func (m Model) ServerBreakdown(s platform.Server, rack platform.Rack) Breakdown {
	pw := m.Power.ServerConsumed(s, rack)
	b := Breakdown{
		CPUHW:   s.CPU.PriceUSD,
		MemHW:   s.Memory.PriceUSD,
		DiskHW:  s.Disk.PriceUSD,
		BoardHW: s.BoardPriceUSD,
		FanHW:   s.FanPriceUSD,
		RackHW:  rack.SwitchPricePerServer() + m.realEstatePerServer(rack),
		CPUPC:   m.PC.BurdenedUSD(pw.CPUW),
		MemPC:   m.PC.BurdenedUSD(pw.MemoryW),
		DiskPC:  m.PC.BurdenedUSD(pw.DiskW),
		BoardPC: m.PC.BurdenedUSD(pw.BoardW),
		FanPC:   m.PC.BurdenedUSD(pw.FanW),
		RackPC:  m.PC.BurdenedUSD(pw.SwitchW),
	}
	if s.Flash != nil {
		b.FlashHW = s.Flash.PriceUSD
		b.FlashPC = m.PC.BurdenedUSD(pw.FlashW)
	}
	return b
}

// ServerTCO is a convenience wrapper returning (infrastructure $,
// burdened P&C $, total $) per server.
func (m Model) ServerTCO(s platform.Server, rack platform.Rack) (infUSD, pcUSD, totalUSD float64) {
	b := m.ServerBreakdown(s, rack)
	return b.HardwareUSD(), b.PowerCoolingUSD(), b.TotalUSD()
}
