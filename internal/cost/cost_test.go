package cost

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/platform"
	"warehousesim/internal/power"
)

func TestBurdenMultiplier(t *testing.T) {
	p := DefaultPCParams()
	// 1 + 1.33 + 0.8*(1+0.667) = 3.6636.
	want := 1 + 1.33 + 0.8*(1+0.667)
	if got := p.BurdenMultiplier(); math.Abs(got-want) > 1e-12 {
		t.Errorf("multiplier = %g, want %g", got, want)
	}
}

func TestPCParamsValidate(t *testing.T) {
	good := DefaultPCParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bads := []func(*PCParams){
		func(p *PCParams) { p.K1 = -1 },
		func(p *PCParams) { p.TariffUSDPerMWh = 0 },
		func(p *PCParams) { p.Years = 0 },
	}
	for i, mutate := range bads {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

// Figure 1(a) pins: 3-yr burdened P&C of $2,464 (srvr1) and $1,561
// (srvr2), total costs $5,758 and $3,249.
func TestFigure1PowerCoolingDollars(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()

	_, pc1, tot1 := m.ServerTCO(platform.Srvr1(), rack)
	if math.Abs(pc1-2464) > 3 {
		t.Errorf("srvr1 3-yr P&C = $%.0f, paper $2,464", pc1)
	}
	if math.Abs(tot1-5758) > 4 {
		t.Errorf("srvr1 total = $%.0f, paper $5,758", tot1)
	}

	_, pc2, tot2 := m.ServerTCO(platform.Srvr2(), rack)
	if math.Abs(pc2-1561) > 3 {
		t.Errorf("srvr2 3-yr P&C = $%.0f, paper $1,561", pc2)
	}
	if math.Abs(tot2-3249) > 4 {
		t.Errorf("srvr2 total = $%.0f, paper $3,249", tot2)
	}
}

// Figure 1(b) pins: for srvr2, CPU HW ~20% and CPU P&C ~22% of total.
func TestFigure1SrvR2BreakdownShape(t *testing.T) {
	m := DefaultModel()
	b := m.ServerBreakdown(platform.Srvr2(), platform.DefaultRack())
	f := b.Fractions()
	if got := f["CPU HW"]; math.Abs(got-0.20) > 0.02 {
		t.Errorf("CPU HW share = %.1f%%, paper ~20%%", got*100)
	}
	if got := f["CPU P&C"]; math.Abs(got-0.22) > 0.02 {
		t.Errorf("CPU P&C share = %.1f%%, paper ~22%%", got*100)
	}
	if got := f["Mem HW"]; math.Abs(got-0.11) > 0.02 {
		t.Errorf("Mem HW share = %.1f%%, paper ~11%%", got*100)
	}
	// P&C overall should be comparable to hardware (the paper's headline
	// observation).
	hw, pc := b.HardwareUSD(), b.PowerCoolingUSD()
	if pc < 0.7*hw || pc > 1.3*hw {
		t.Errorf("P&C ($%.0f) not comparable to HW ($%.0f)", pc, hw)
	}
}

func TestBreakdownSumsConsistent(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	for _, s := range platform.All() {
		b := m.ServerBreakdown(s, rack)
		inf, pc, tot := m.ServerTCO(s, rack)
		if math.Abs(inf+pc-tot) > 1e-9 {
			t.Errorf("%s: inf+pc != tot", s.Name)
		}
		if math.Abs(b.HardwareUSD()-(s.HardwarePriceUSD()+rack.SwitchPricePerServer())) > 1e-9 {
			t.Errorf("%s: hardware breakdown does not match BoM", s.Name)
		}
		sum := 0.0
		for _, v := range b.Fractions() {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: fractions sum to %g", s.Name, sum)
		}
	}
}

func TestTariffLinearity(t *testing.T) {
	p := DefaultPCParams()
	lo, hi := p, p
	lo.TariffUSDPerMWh = 50
	hi.TariffUSDPerMWh = 170
	cLo, cHi := lo.BurdenedUSD(250), hi.BurdenedUSD(250)
	if math.Abs(cHi/cLo-170.0/50) > 1e-9 {
		t.Errorf("tariff not linear: %g vs %g", cHi, cLo)
	}
}

func TestFlashInBreakdown(t *testing.T) {
	m := DefaultModel()
	s := platform.Emb1()
	fl := platform.FlashCacheDevice()
	s.Flash = &fl
	b := m.ServerBreakdown(s, platform.DefaultRack())
	if b.FlashHW != 14 {
		t.Errorf("flash HW = %g", b.FlashHW)
	}
	if b.FlashPC <= 0 {
		t.Errorf("flash P&C = %g", b.FlashPC)
	}
}

// Property: burdened cost is non-negative and monotone in consumed watts.
func TestQuickBurdenedMonotone(t *testing.T) {
	p := DefaultPCParams()
	f := func(a, b float64) bool {
		w1 := math.Abs(a)
		w2 := w1 + math.Abs(b)
		c1, c2 := p.BurdenedUSD(w1), p.BurdenedUSD(w2)
		return c1 >= 0 && c2 >= c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TCO ordering across platforms is preserved under any
// activity factor (cheaper platforms stay cheaper).
func TestQuickTCOOrderStableUnderActivityFactor(t *testing.T) {
	rack := platform.DefaultRack()
	f := func(seed uint64) bool {
		af := 0.5 + float64(seed%51)/100 // 0.5..1.0
		pm, err := power.NewModel(af)
		if err != nil {
			return false
		}
		m := Model{Power: pm, PC: DefaultPCParams()}
		_, _, srvr1 := m.ServerTCO(platform.Srvr1(), rack)
		_, _, srvr2 := m.ServerTCO(platform.Srvr2(), rack)
		_, _, desk := m.ServerTCO(platform.Desk(), rack)
		_, _, emb1 := m.ServerTCO(platform.Emb1(), rack)
		_, _, emb2 := m.ServerTCO(platform.Emb2(), rack)
		return srvr1 > srvr2 && srvr2 > desk && desk > emb1 && emb1 > emb2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
