// Package calib fits the workload demand profiles against the paper's
// published relative-performance matrix (Figure 2(c), "Perf" rows).
//
// The demand model has a handful of free constants per workload (CPU
// seconds on the reference core, cache working set and miss penalty,
// multicore scaling exponent, disk and network demands). The paper's
// COTSon measurements are not reproducible directly, so these constants
// are chosen to minimize the log-space error between the model's
// relative performance across the six platforms and the published
// numbers — a standard calibration step for analytic performance models.
//
// The fitter is deterministic (seeded random search followed by
// coordinate descent) so a calibration run is reproducible. cmd/whcalib
// runs it and prints the fitted profiles; the frozen results live in
// internal/workload/profiles.go.
package calib

import (
	"fmt"
	"math"
	"sort"

	"warehousesim/internal/cluster"
	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Param identifies one tunable profile constant.
type Param int

// The tunable constants of a demand profile.
const (
	CPURefSec Param = iota
	WorkingSetMB
	MissPenalty
	Beta
	DiskOps
	DiskBytes // read bytes, or write bytes for write-dominated workloads
	NetBytes
	numParams
)

// String implements fmt.Stringer.
func (p Param) String() string {
	return [...]string{"CPURefSec", "WorkingSetMB", "MissPenalty", "Beta",
		"DiskOps", "DiskBytes", "NetBytes"}[p]
}

// Bounds is a parameter search range; Log selects geometric sampling.
type Bounds struct {
	Lo, Hi float64
	Log    bool
}

func (b Bounds) sample(r *stats.RNG) float64 {
	if b.Log {
		return b.Lo * math.Exp(r.Float64()*math.Log(b.Hi/b.Lo))
	}
	return b.Lo + r.Float64()*(b.Hi-b.Lo)
}

func (b Bounds) clamp(x float64) float64 {
	if x < b.Lo {
		return b.Lo
	}
	if x > b.Hi {
		return b.Hi
	}
	return x
}

// DefaultBounds returns the search ranges used for all workloads.
func DefaultBounds() [numParams]Bounds {
	return [numParams]Bounds{
		CPURefSec:    {Lo: 0.001, Hi: 0.4, Log: true},
		WorkingSetMB: {Lo: 0.25, Hi: 16, Log: true},
		MissPenalty:  {Lo: 0.2, Hi: 3.5},
		Beta:         {Lo: 0.55, Hi: 1.0},
		DiskOps:      {Lo: 0.0, Hi: 4.0},
		DiskBytes:    {Lo: 1e3, Hi: 8e6, Log: true},
		NetBytes:     {Lo: 1e3, Hi: 4e6, Log: true},
	}
}

// Task describes one calibration problem: a template profile (QoS, job
// shape and class fixed), the published relative-performance targets,
// and whether disk demand is write-dominated.
type Task struct {
	Template     workload.Profile
	Targets      map[string]float64 // platform name -> relative perf (srvr1 = 1)
	WriteHeavy   bool
	AnchorPerf   float64 // desired absolute srvr1 Perf (0 disables)
	AnchorWeight float64
	// Weights de-emphasize platforms whose published numbers the model
	// class cannot fully express (see DESIGN.md §2 and EXPERIMENTS.md:
	// emb2's measured performance exceeds what any capacity model
	// predicts from its specs on the CPU-bound workloads). Missing
	// entries default to 1.
	Weights map[string]float64
	// BoundOverrides narrows the search space per workload (e.g. webmail
	// cannot plausibly move megabytes of NIC traffic per request).
	BoundOverrides map[Param]Bounds
}

func (t Task) weight(sys string) float64 {
	if w, ok := t.Weights[sys]; ok {
		return w
	}
	return 1
}

func (t Task) bounds() [numParams]Bounds {
	b := DefaultBounds()
	for p, ov := range t.BoundOverrides {
		b[p] = ov
	}
	return b
}

// apply maps a parameter vector onto the template.
func (t Task) apply(v [numParams]float64) workload.Profile {
	p := t.Template
	p.CPURefSec = v[CPURefSec]
	p.CacheWorkingSetMB = v[WorkingSetMB]
	p.CacheMissPenalty = v[MissPenalty]
	p.CoreScalingBeta = v[Beta]
	p.DiskOps = v[DiskOps]
	if t.WriteHeavy {
		p.DiskWriteBytes = v[DiskBytes]
		p.DiskReadBytes = 0
	} else {
		p.DiskReadBytes = v[DiskBytes]
		p.DiskWriteBytes = 0
	}
	p.NetBytes = v[NetBytes]
	return p
}

// extract reads the parameter vector back out of a profile.
func extract(p workload.Profile, writeHeavy bool) [numParams]float64 {
	db := p.DiskReadBytes
	if writeHeavy {
		db = p.DiskWriteBytes
	}
	return [numParams]float64{
		CPURefSec:    p.CPURefSec,
		WorkingSetMB: p.CacheWorkingSetMB,
		MissPenalty:  p.CacheMissPenalty,
		Beta:         p.CoreScalingBeta,
		DiskOps:      p.DiskOps,
		DiskBytes:    db,
		NetBytes:     p.NetBytes,
	}
}

// RelativePerf evaluates a profile on all six platforms with the
// analytic solver and returns performance relative to srvr1.
func RelativePerf(p workload.Profile) (map[string]float64, float64, error) {
	perfs := map[string]float64{}
	for _, s := range platform.All() {
		res, err := (cluster.Config{Server: s}).Analyze(p)
		if err != nil {
			return nil, 0, err
		}
		perfs[s.Name] = res.Perf
	}
	base := perfs["srvr1"]
	if base <= 0 {
		return nil, 0, fmt.Errorf("calib: srvr1 perf is %g", base)
	}
	rel := map[string]float64{}
	for k, v := range perfs {
		rel[k] = v / base
	}
	return rel, base, nil
}

// separationWeight scales the pairwise-ratio term of the objective. The
// term penalizes fits that match levels on average but collapse the
// separations between platforms (e.g. a shared-bottleneck solution where
// srvr2/desk/mobl/emb1 all tie), which would break the ordering the
// paper's conclusions rest on.
const separationWeight = 1.0

// objective returns the fitting error for a parameter vector: squared
// log-errors against the target levels, squared log-errors of adjacent
// platform ratios (separation), plus the anchor penalty.
func (t Task) objective(v [numParams]float64) float64 {
	p := t.apply(v)
	if err := p.Validate(); err != nil {
		return math.Inf(1)
	}
	rel, base, err := RelativePerf(p)
	if err != nil {
		return math.Inf(1)
	}
	sum := 0.0
	for sys, target := range t.Targets {
		got := rel[sys]
		if got <= 0 {
			return math.Inf(1)
		}
		d := math.Log(got / target)
		sum += t.weight(sys) * d * d
	}
	// Separation: compare model vs target ratios between platforms
	// adjacent in the paper's tier order.
	order := []string{"srvr2", "desk", "mobl", "emb1", "emb2"}
	for i := 0; i+1 < len(order); i++ {
		a, b := order[i], order[i+1]
		ta, okA := t.Targets[a]
		tb, okB := t.Targets[b]
		if !okA || !okB || rel[a] <= 0 || rel[b] <= 0 {
			continue
		}
		w := separationWeight * math.Min(t.weight(a), t.weight(b))
		d := math.Log((rel[a] / rel[b]) / (ta / tb))
		sum += w * d * d
	}
	if t.AnchorPerf > 0 {
		d := math.Log(base / t.AnchorPerf)
		sum += t.AnchorWeight * d * d
	}
	return sum
}

// Result is the outcome of one calibration fit.
type Result struct {
	Profile workload.Profile
	// Err is the final objective value (sum of squared log errors).
	Err float64
	// RMSLE is the root-mean-square log error over the targets.
	RMSLE float64
	// Model holds the fitted model's relative perf per platform.
	Model map[string]float64
	// BasePerf is the absolute srvr1 performance of the fit.
	BasePerf float64
}

// Fit searches for the profile constants minimizing the objective:
// `samples` random probes followed by `sweeps` rounds of per-parameter
// golden-section-style refinement. Deterministic for a given seed.
func Fit(t Task, samples, sweeps int, seed uint64) (Result, error) {
	if len(t.Targets) == 0 {
		return Result{}, fmt.Errorf("calib: no targets for %s", t.Template.Name)
	}
	bounds := t.bounds()
	rng := stats.NewRNG(seed)

	best := extract(t.Template, t.WriteHeavy)
	bestErr := t.objective(best)

	// Phase 1: seeded random search.
	for i := 0; i < samples; i++ {
		var v [numParams]float64
		for j := Param(0); j < numParams; j++ {
			v[j] = bounds[j].sample(rng)
		}
		if e := t.objective(v); e < bestErr {
			best, bestErr = v, e
		}
	}

	// Phase 2: coordinate descent with shrinking multiplicative steps.
	step := 0.5
	for s := 0; s < sweeps; s++ {
		improved := false
		for j := Param(0); j < numParams; j++ {
			for _, mul := range []float64{1 + step, 1 / (1 + step)} {
				v := best
				v[j] = bounds[j].clamp(v[j] * mul)
				if e := t.objective(v); e < bestErr {
					best, bestErr = v, e
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
			if step < 0.01 {
				break
			}
		}
	}

	p := t.apply(best)
	rel, base, err := RelativePerf(p)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Profile:  p,
		Err:      bestErr,
		RMSLE:    math.Sqrt(bestErr / float64(len(t.Targets))),
		Model:    rel,
		BasePerf: base,
	}, nil
}

// FormatComparison renders a target-vs-model table for reports.
func FormatComparison(targets, model map[string]float64) string {
	keys := make([]string, 0, len(targets))
	for k := range targets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("  %-6s paper %5.1f%%  model %5.1f%%\n", k, targets[k]*100, model[k]*100)
	}
	return out
}
