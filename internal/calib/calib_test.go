package calib

import (
	"math"
	"strings"
	"testing"

	"warehousesim/internal/paper"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

func TestSuiteTasksComplete(t *testing.T) {
	tasks := SuiteTasks()
	if len(tasks) != 5 {
		t.Fatalf("expected 5 tasks, got %d", len(tasks))
	}
	for _, task := range tasks {
		if len(task.Targets) != 5 {
			t.Errorf("%s: %d targets, want 5 (srvr1 excluded)",
				task.Template.Name, len(task.Targets))
		}
		if _, ok := task.Targets["srvr1"]; ok {
			t.Errorf("%s: baseline srvr1 must not be a target", task.Template.Name)
		}
		if task.Template.Class == workload.MapReduceWR && !task.WriteHeavy {
			t.Error("mapred-wr should be write-heavy")
		}
	}
}

func TestTaskFor(t *testing.T) {
	task, err := TaskFor("websearch")
	if err != nil || task.Template.Name != "websearch" {
		t.Fatalf("TaskFor(websearch) = %v, %v", task.Template.Name, err)
	}
	if _, err := TaskFor("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRelativePerfBaselineIsOne(t *testing.T) {
	for _, p := range workload.SuiteProfiles() {
		rel, base, err := RelativePerf(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if base <= 0 {
			t.Errorf("%s: base perf %g", p.Name, base)
		}
		if math.Abs(rel["srvr1"]-1) > 1e-12 {
			t.Errorf("%s: srvr1 relative = %g", p.Name, rel["srvr1"])
		}
	}
}

// The frozen profiles must preserve the paper's platform ordering within
// each workload (ties allowed — disk-bound workloads converge).
func TestFrozenProfilesPreserveOrdering(t *testing.T) {
	order := []string{"srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"}
	for _, p := range workload.SuiteProfiles() {
		rel, _, err := RelativePerf(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(order); i++ {
			a, b := order[i], order[i+1]
			if rel[b] > rel[a]*1.01 {
				t.Errorf("%s: %s (%.1f%%) outperforms %s (%.1f%%)",
					p.Name, b, rel[b]*100, a, rel[a]*100)
			}
		}
	}
}

// The frozen fit must stay reasonably close to Figure 2(c) on the
// platforms the paper's conclusions rest on (emb2 excluded; see
// EXPERIMENTS.md "Known deviations").
func TestFrozenProfilesNearPaper(t *testing.T) {
	for _, p := range workload.SuiteProfiles() {
		rel, _, err := RelativePerf(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range []string{"srvr2", "desk", "mobl", "emb1"} {
			want := paper.Figure2cPerf[p.Name][sys]
			got := rel[sys]
			if got <= 0 {
				t.Fatalf("%s/%s: non-positive model perf", p.Name, sys)
			}
			if d := math.Abs(math.Log(got / want)); d > 0.65 {
				t.Errorf("%s/%s: model %.1f%% vs paper %.1f%% (log err %.2f)",
					p.Name, sys, got*100, want*100, d)
			}
		}
	}
}

// emb2 must collapse relative to emb1 on every workload — the paper's
// "emb2 consistently underperforms" conclusion.
func TestEmb2Collapses(t *testing.T) {
	for _, p := range workload.SuiteProfiles() {
		rel, _, err := RelativePerf(p)
		if err != nil {
			t.Fatal(err)
		}
		if rel["emb2"] > 0.5*rel["emb1"] {
			t.Errorf("%s: emb2 (%.1f%%) not clearly below emb1 (%.1f%%)",
				p.Name, rel["emb2"]*100, rel["emb1"]*100)
		}
	}
}

func TestFitImprovesObjective(t *testing.T) {
	task, err := TaskFor("ytube")
	if err != nil {
		t.Fatal(err)
	}
	// Start from a deliberately bad template.
	bad := task.Template
	bad.CPURefSec = 0.02
	bad.DiskOps = 0.3
	task.Template = bad
	before := task.objective(extract(bad, task.WriteHeavy))
	res, err := Fit(task, 500, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err > before {
		t.Errorf("fit made things worse: %g -> %g", before, res.Err)
	}
	if res.RMSLE <= 0 || math.IsNaN(res.RMSLE) {
		t.Errorf("bad RMSLE %g", res.RMSLE)
	}
}

func TestFitDeterministic(t *testing.T) {
	task, err := TaskFor("ytube")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fit(task, 300, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(task, 300, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Err != b.Err || a.Profile.CPURefSec != b.Profile.CPURefSec {
		t.Error("same seed produced different fits")
	}
}

func TestFitRejectsEmptyTargets(t *testing.T) {
	if _, err := Fit(Task{Template: workload.WebsearchProfile()}, 10, 1, 1); err == nil {
		t.Fatal("empty targets accepted")
	}
}

func TestBoundsSample(t *testing.T) {
	r := stats.NewRNG(1)
	lin := Bounds{Lo: 2, Hi: 10}
	logb := Bounds{Lo: 0.01, Hi: 100, Log: true}
	for i := 0; i < 1000; i++ {
		if v := lin.sample(r); v < 2 || v > 10 {
			t.Fatalf("linear sample out of bounds: %g", v)
		}
		if v := logb.sample(r); v < 0.01 || v > 100*1.0001 {
			t.Fatalf("log sample out of bounds: %g", v)
		}
	}
	if got := lin.clamp(1); got != 2 {
		t.Errorf("clamp low = %g", got)
	}
	if got := lin.clamp(11); got != 10 {
		t.Errorf("clamp high = %g", got)
	}
}

func TestParamStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := Param(0); p < numParams; p++ {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("param %d has bad/duplicate name %q", int(p), s)
		}
		seen[s] = true
	}
}

func TestFormatComparison(t *testing.T) {
	out := FormatComparison(
		map[string]float64{"desk": 0.36},
		map[string]float64{"desk": 0.40},
	)
	if !strings.Contains(out, "desk") || !strings.Contains(out, "36.0%") || !strings.Contains(out, "40.0%") {
		t.Errorf("unexpected format: %q", out)
	}
}
