package calib

import (
	"fmt"

	"warehousesim/internal/paper"
	"warehousesim/internal/workload"
)

// SuiteTasks returns the five calibration problems: one per benchmark,
// each targeting the paper's Figure 2(c) relative-performance row for
// the five non-baseline platforms. Anchors keep the absolute srvr1
// numbers in a plausible range (the paper reports only relative
// performance, so the anchors are weakly weighted).
func SuiteTasks() []Task {
	anchor := map[string]float64{
		"websearch": 150,       // RPS; Nutch-class query service
		"webmail":   250,       // RPS; SquirrelMail actions
		"ytube":     120,       // RPS; media chunk fetches
		"mapred-wc": 1.0 / 180, // jobs/s; ~3 minutes for 5GB wordcount
		"mapred-wr": 1.0 / 240, // jobs/s; ~4 minutes for 5GB write
	}
	// Per-workload search-space narrowing: per-request demands must stay
	// physically plausible (a webmail action does not move megabytes over
	// the NIC; a media chunk does not fit in a kilobyte).
	bounds := map[string]map[Param]Bounds{
		"websearch": {
			NetBytes:  {Lo: 5e3, Hi: 100e3, Log: true},
			DiskBytes: {Lo: 10e3, Hi: 2e6, Log: true},
			DiskOps:   {Lo: 0, Hi: 3},
			CPURefSec: {Lo: 0.005, Hi: 0.3, Log: true},
		},
		"webmail": {
			NetBytes:  {Lo: 20e3, Hi: 500e3, Log: true},
			DiskBytes: {Lo: 5e3, Hi: 500e3, Log: true},
			DiskOps:   {Lo: 0, Hi: 3},
			CPURefSec: {Lo: 0.01, Hi: 0.4, Log: true},
		},
		"ytube": {
			NetBytes:  {Lo: 200e3, Hi: 4e6, Log: true},
			DiskBytes: {Lo: 200e3, Hi: 6e6, Log: true},
			DiskOps:   {Lo: 0.25, Hi: 3},
			CPURefSec: {Lo: 0.0005, Hi: 0.03, Log: true},
		},
		// Hadoop runs 4 tasks per CPU concurrently against one spindle,
		// so per-task disk access is seek-heavy; allow ops-dominated
		// profiles.
		"mapred-wc": {
			NetBytes:  {Lo: 10e3, Hi: 1e6, Log: true},
			DiskBytes: {Lo: 0.5e6, Hi: 8e6, Log: true},
			DiskOps:   {Lo: 0.5, Hi: 24},
			CPURefSec: {Lo: 0.02, Hi: 0.4, Log: true},
		},
		"mapred-wr": {
			NetBytes:  {Lo: 10e3, Hi: 1e6, Log: true},
			DiskBytes: {Lo: 0.5e6, Hi: 8e6, Log: true},
			DiskOps:   {Lo: 0.5, Hi: 24},
			CPURefSec: {Lo: 0.005, Hi: 0.2, Log: true},
		},
	}
	// emb2's published numbers on the CPU-bound workloads exceed what a
	// capacity model predicts from its 600 MHz in-order specs; de-weight
	// it there so the fit prioritizes the platforms the paper's
	// conclusions rest on (see EXPERIMENTS.md "Known deviations").
	weights := map[string]map[string]float64{
		"websearch": {"emb2": 0.3},
		"webmail":   {"emb2": 0.2},
		"mapred-wc": {"emb2": 0.5},
		"mapred-wr": {"emb2": 0.5},
	}
	var tasks []Task
	for _, p := range workload.SuiteProfiles() {
		targets := map[string]float64{}
		for sys, v := range paper.Figure2cPerf[p.Name] {
			if sys == "srvr1" {
				continue // baseline is 1.0 by construction
			}
			targets[sys] = v
		}
		tasks = append(tasks, Task{
			Template:       p,
			Targets:        targets,
			WriteHeavy:     p.Class == workload.MapReduceWR,
			AnchorPerf:     anchor[p.Name],
			AnchorWeight:   0.05,
			Weights:        weights[p.Name],
			BoundOverrides: bounds[p.Name],
		})
	}
	return tasks
}

// TaskFor returns the calibration task for one benchmark name.
func TaskFor(name string) (Task, error) {
	for _, t := range SuiteTasks() {
		if t.Template.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("calib: unknown workload %q", name)
}
