package diurnal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCurves(t *testing.T) {
	c := TypicalInternet()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Peak() != 1.0 {
		t.Errorf("peak = %g", c.Peak())
	}
	if m := c.Mean(); m <= 0.5 || m >= 0.9 {
		t.Errorf("mean = %g implausible for a diurnal curve", m)
	}
	// Overnight trough below daytime.
	if c[4] >= c[14] {
		t.Error("no overnight trough")
	}

	f := Flat(0.8)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Mean()-0.8) > 1e-12 || f.Peak() != 0.8 {
		t.Error("flat curve not flat")
	}
}

func TestCurveValidate(t *testing.T) {
	c := Flat(0.5)
	c[3] = 0
	if c.Validate() == nil {
		t.Error("zero hour accepted")
	}
	c[3] = 1.5
	if c.Validate() == nil {
		t.Error(">1 hour accepted")
	}
}

func TestServerPower(t *testing.T) {
	sp := ServerPower{IdleW: 100, PeakW: 200}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.At(0) != 100 || sp.At(1) != 200 || sp.At(0.5) != 150 {
		t.Error("linear power model wrong")
	}
	if sp.At(-1) != 100 || sp.At(2) != 200 {
		t.Error("clamping wrong")
	}
	if (ServerPower{IdleW: 300, PeakW: 200}).Validate() == nil {
		t.Error("idle > peak accepted")
	}
}

func TestAllOnEnergy(t *testing.T) {
	sp := ServerPower{IdleW: 150, PeakW: 250}
	// Flat full load, 10 servers, util 1: 10*250W*24h = 60 kWh.
	e, err := EnergyKWhPerDay(10, sp, Flat(1), AllOn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-60) > 1e-9 {
		t.Errorf("energy = %g, want 60", e)
	}
}

func TestConsolidationSavesOnDiurnal(t *testing.T) {
	sp := ServerPower{IdleW: 150, PeakW: 250} // poor energy proportionality
	s, err := SavingsFraction(100, sp, TypicalInternet(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0.05 || s >= 0.6 {
		t.Errorf("savings = %.2f implausible", s)
	}
	// A perfectly energy-proportional server saves almost nothing.
	prop := ServerPower{IdleW: 0, PeakW: 250}
	sProp, err := SavingsFraction(100, prop, TypicalInternet(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if sProp >= s {
		t.Errorf("proportional server saved more (%.2f) than non-proportional (%.2f)", sProp, s)
	}
}

func TestConsolidationNoSavingsOnFlatPeak(t *testing.T) {
	sp := ServerPower{IdleW: 150, PeakW: 250}
	s, err := SavingsFraction(50, sp, Flat(1), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 1e-9 {
		t.Errorf("flat peak load should have no consolidation savings, got %g", s)
	}
}

func TestEnergyValidation(t *testing.T) {
	sp := ServerPower{IdleW: 1, PeakW: 2}
	if _, err := EnergyKWhPerDay(0, sp, Flat(1), AllOn, 1); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := EnergyKWhPerDay(1, sp, Flat(1), AllOn, 0); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := EnergyKWhPerDay(1, sp, Flat(1), Policy(9), 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if AllOn.String() != "all-on" || Consolidate.String() != "consolidate" {
		t.Error("policy strings wrong")
	}
}

// Property: consolidation never uses more energy than all-on.
func TestQuickConsolidateNeverWorse(t *testing.T) {
	f := func(idleRaw, utilRaw float64, nRaw uint8) bool {
		idle := math.Mod(math.Abs(idleRaw), 200)
		sp := ServerPower{IdleW: idle, PeakW: 250}
		util := 0.1 + math.Mod(math.Abs(utilRaw), 0.9)
		n := 1 + int(nRaw)
		allOn, err1 := EnergyKWhPerDay(n, sp, TypicalInternet(), AllOn, util)
		cons, err2 := EnergyKWhPerDay(n, sp, TypicalInternet(), Consolidate, util)
		if err1 != nil || err2 != nil {
			return false
		}
		return cons <= allOn+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
