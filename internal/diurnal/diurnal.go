// Package diurnal models the time-of-day load behavior the paper notes
// real deployments exhibit (§4: "in actual deployments, requests follow
// a time-of-day distribution, but we only study request distributions
// that focus on sustained performance"), together with the
// ensemble-level power-management opportunity (the paper builds on
// Ranganathan et al.'s ensemble power management): at off-peak hours an
// ensemble can consolidate load onto fewer servers and idle the rest.
package diurnal

import (
	"fmt"
	"math"
)

// Curve is the hourly load profile as a fraction of peak (index =
// hour-of-day, values in (0, 1]).
type Curve [24]float64

// TypicalInternet is a representative consumer-internet diurnal curve:
// a deep overnight trough and an evening peak.
func TypicalInternet() Curve {
	return Curve{
		0.55, 0.45, 0.38, 0.34, 0.32, 0.35, // 00-05
		0.42, 0.55, 0.68, 0.78, 0.84, 0.88, // 06-11
		0.90, 0.89, 0.87, 0.86, 0.88, 0.92, // 12-17
		0.96, 1.00, 1.00, 0.97, 0.85, 0.68, // 18-23
	}
}

// Flat returns a constant curve at the given level — the paper's
// sustained-load assumption.
func Flat(level float64) Curve {
	var c Curve
	for i := range c {
		c[i] = level
	}
	return c
}

// Validate reports nonsensical curves.
func (c Curve) Validate() error {
	for h, v := range c {
		if v <= 0 || v > 1 {
			return fmt.Errorf("diurnal: hour %d load %g outside (0,1]", h, v)
		}
	}
	return nil
}

// Mean returns the average load fraction.
func (c Curve) Mean() float64 {
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return sum / 24
}

// Peak returns the maximum load fraction.
func (c Curve) Peak() float64 {
	max := 0.0
	for _, v := range c {
		if v > max {
			max = v
		}
	}
	return max
}

// ServerPower is a linear utilization-to-power model: P(u) = Idle +
// (Peak-Idle)*u. Warehouse servers are notoriously non-energy-
// proportional; IdleW is typically well above half of PeakW.
type ServerPower struct {
	IdleW float64
	PeakW float64
}

// Validate reports nonsensical models.
func (p ServerPower) Validate() error {
	if p.IdleW < 0 || p.PeakW <= 0 || p.IdleW > p.PeakW {
		return fmt.Errorf("diurnal: invalid server power idle=%g peak=%g", p.IdleW, p.PeakW)
	}
	return nil
}

// At returns power at utilization u (clamped to [0,1]).
func (p ServerPower) At(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return p.IdleW + (p.PeakW-p.IdleW)*u
}

// Policy selects how the ensemble follows the load curve.
type Policy int

// Power-management policies.
const (
	// AllOn keeps every server powered; load spreads evenly.
	AllOn Policy = iota
	// Consolidate packs load onto the fewest servers that can carry it
	// (at the target utilization) and powers the rest off.
	Consolidate
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case AllOn:
		return "all-on"
	case Consolidate:
		return "consolidate"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// EnergyKWhPerDay returns the ensemble's daily energy for n servers
// provisioned for peak (peak load occupies all n at targetUtil).
//
// Under AllOn every server runs at curve(h)*targetUtil utilization.
// Under Consolidate only ceil(n*curve(h)) servers run (at targetUtil),
// and idle servers draw zero (powered off; the model ignores transition
// energy, which amortizes over hour-scale shifts).
func EnergyKWhPerDay(n int, sp ServerPower, c Curve, pol Policy, targetUtil float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("diurnal: need servers > 0")
	}
	if err := sp.Validate(); err != nil {
		return 0, err
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if targetUtil <= 0 || targetUtil > 1 {
		return 0, fmt.Errorf("diurnal: target utilization %g outside (0,1]", targetUtil)
	}
	totalWh := 0.0
	for _, load := range c {
		switch pol {
		case AllOn:
			u := load * targetUtil
			totalWh += float64(n) * sp.At(u)
		case Consolidate:
			active := int(math.Ceil(float64(n) * load))
			if active > n {
				active = n
			}
			if active < 1 {
				active = 1
			}
			// The active servers absorb the whole load at ~targetUtil.
			u := load * float64(n) / float64(active) * targetUtil
			totalWh += float64(active) * sp.At(u)
		default:
			return 0, fmt.Errorf("diurnal: unknown policy %v", pol)
		}
	}
	return totalWh / 1e3, nil
}

// SavingsFraction returns consolidation's daily-energy saving over
// all-on for the same fleet and curve.
func SavingsFraction(n int, sp ServerPower, c Curve, targetUtil float64) (float64, error) {
	allOn, err := EnergyKWhPerDay(n, sp, c, AllOn, targetUtil)
	if err != nil {
		return 0, err
	}
	cons, err := EnergyKWhPerDay(n, sp, c, Consolidate, targetUtil)
	if err != nil {
		return 0, err
	}
	if allOn == 0 {
		return 0, nil
	}
	return 1 - cons/allOn, nil
}
