// Package power implements the paper's power model (§2.2).
//
// Component powers come from the platform catalog (maximum operational
// power from spec sheets and vendor calculators). Because actual
// consumption is documented to run below worst case (Fan et al.), the
// model applies an activity factor — 0.75 by default, with the paper's
// sensitivity range 0.5–1.0 available for the ablation benches.
package power

import (
	"fmt"

	"warehousesim/internal/platform"
)

// DefaultActivityFactor is the paper's default scaling from maximum
// operational power to expected consumption.
const DefaultActivityFactor = 0.75

// Breakdown itemizes consumed watts by the paper's cost-model categories.
type Breakdown struct {
	CPUW    float64
	MemoryW float64
	DiskW   float64
	BoardW  float64
	FanW    float64
	FlashW  float64
	SwitchW float64 // per-server share of rack switch power
}

// TotalW sums all categories.
func (b Breakdown) TotalW() float64 {
	return b.CPUW + b.MemoryW + b.DiskW + b.BoardW + b.FanW + b.FlashW + b.SwitchW
}

// Model computes consumed power for servers and racks.
type Model struct {
	// ActivityFactor scales maximum operational power to expected power
	// (0.5–1.0; the paper's results are qualitatively similar across the
	// range, which the ablation bench verifies).
	ActivityFactor float64
}

// NewModel returns a model with the given activity factor.
func NewModel(activityFactor float64) (Model, error) {
	if activityFactor <= 0 || activityFactor > 1 {
		return Model{}, fmt.Errorf("power: activity factor %g outside (0,1]", activityFactor)
	}
	return Model{ActivityFactor: activityFactor}, nil
}

// DefaultModel returns the paper's default model (activity factor 0.75).
func DefaultModel() Model {
	return Model{ActivityFactor: DefaultActivityFactor}
}

// ServerConsumed returns the per-server consumed-power breakdown
// including the rack-switch share, all scaled by the activity factor.
func (m Model) ServerConsumed(s platform.Server, rack platform.Rack) Breakdown {
	af := m.ActivityFactor
	b := Breakdown{
		CPUW:    s.CPU.PowerW * af,
		MemoryW: s.Memory.PowerW * af,
		DiskW:   s.Disk.PowerW * af,
		BoardW:  s.BoardPowerW * af,
		FanW:    s.FanPowerW * af,
		SwitchW: rack.SwitchPowerPerServerW() * af,
	}
	if s.Flash != nil {
		b.FlashW = s.Flash.PowerW * af
	}
	return b
}

// RackConsumedW returns total consumed watts for a full rack.
func (m Model) RackConsumedW(s platform.Server, rack platform.Rack) float64 {
	per := m.ServerConsumed(s, rack).TotalW()
	return per * float64(rack.ServersPerRack)
}

// RackNameplateW returns the rack's maximum operational (nameplate-style)
// power without the activity factor — the figure quoted in §3.2's
// "13.6 kW/rack" comparison.
func RackNameplateW(s platform.Server, rack platform.Rack) float64 {
	return s.MaxPowerW() * float64(rack.ServersPerRack)
}
