// Package power implements the paper's power model (§2.2).
//
// Component powers come from the platform catalog (maximum operational
// power from spec sheets and vendor calculators). Because actual
// consumption is documented to run below worst case (Fan et al.), the
// model applies an activity factor — 0.75 by default, with the paper's
// sensitivity range 0.5–1.0 available for the ablation benches.
package power

import (
	"fmt"

	"warehousesim/internal/platform"
)

// DefaultActivityFactor is the paper's default scaling from maximum
// operational power to expected consumption.
const DefaultActivityFactor = 0.75

// Breakdown itemizes consumed watts by the paper's cost-model categories.
type Breakdown struct {
	CPUW    float64
	MemoryW float64
	DiskW   float64
	BoardW  float64
	FanW    float64
	FlashW  float64
	SwitchW float64 // per-server share of rack switch power
}

// TotalW sums all categories.
func (b Breakdown) TotalW() float64 {
	return b.CPUW + b.MemoryW + b.DiskW + b.BoardW + b.FanW + b.FlashW + b.SwitchW
}

// IdleFractions is the idle/active power split per component class: the
// fraction of a class's active watts it still draws at zero
// utilization. The utilization-conditioned power model interpolates
// linearly between idle and active (Breakdown.At); all fractions at 1.0
// collapse it to the static model exactly, which is the degenerate case
// the energy telemetry tests pin bit-for-bit.
type IdleFractions struct {
	CPU    float64
	Memory float64
	Disk   float64
	Board  float64
	Fan    float64
	Flash  float64
	Switch float64
}

// DefaultIdleFractions returns the platform catalog's idle-power table
// (platform.ComponentIdleFractions) as a typed split.
func DefaultIdleFractions() IdleFractions {
	f := platform.ComponentIdleFractions()
	return IdleFractions{
		CPU:    f["cpu"],
		Memory: f["memory"],
		Disk:   f["disk"],
		Board:  f["board"],
		Fan:    f["fan"],
		Flash:  f["flash"],
		Switch: f["switch"],
	}
}

// StaticIdleFractions returns the degenerate split (all 1.0): every
// component draws its active watts regardless of utilization, which is
// exactly the static model's assumption.
func StaticIdleFractions() IdleFractions {
	return IdleFractions{CPU: 1, Memory: 1, Disk: 1, Board: 1, Fan: 1, Flash: 1, Switch: 1}
}

// Validate reports fractions outside [0,1].
func (f IdleFractions) Validate() error {
	for _, v := range [...]struct {
		name string
		frac float64
	}{
		{"cpu", f.CPU}, {"memory", f.Memory}, {"disk", f.Disk}, {"board", f.Board},
		{"fan", f.Fan}, {"flash", f.Flash}, {"switch", f.Switch},
	} {
		if v.frac < 0 || v.frac > 1 {
			return fmt.Errorf("power: %s idle fraction %g outside [0,1]", v.name, v.frac)
		}
	}
	return nil
}

// Utilizations carries per-class utilization in [0,1] for the
// utilization-conditioned power model. Classes with no measured driver
// default to 0 (idle draw only).
type Utilizations struct {
	CPU    float64
	Memory float64
	Disk   float64
	Board  float64
	Fan    float64
	Flash  float64
	Switch float64
}

// At returns the utilization-conditioned breakdown: each class draws
// active * (idle + (1-idle)*util). With an idle fraction of 1.0 the
// utilization term vanishes and the class reproduces its static watts
// bit-exactly (active * 1.0); with 0.0 the class is perfectly
// energy-proportional.
func (b Breakdown) At(f IdleFractions, u Utilizations) Breakdown {
	scale := func(active, idle, util float64) float64 {
		return active * (idle + (1-idle)*util)
	}
	return Breakdown{
		CPUW:    scale(b.CPUW, f.CPU, u.CPU),
		MemoryW: scale(b.MemoryW, f.Memory, u.Memory),
		DiskW:   scale(b.DiskW, f.Disk, u.Disk),
		BoardW:  scale(b.BoardW, f.Board, u.Board),
		FanW:    scale(b.FanW, f.Fan, u.Fan),
		FlashW:  scale(b.FlashW, f.Flash, u.Flash),
		SwitchW: scale(b.SwitchW, f.Switch, u.Switch),
	}
}

// Model computes consumed power for servers and racks.
type Model struct {
	// ActivityFactor scales maximum operational power to expected power
	// (0.5–1.0; the paper's results are qualitatively similar across the
	// range, which the ablation bench verifies).
	ActivityFactor float64
}

// NewModel returns a model with the given activity factor.
func NewModel(activityFactor float64) (Model, error) {
	if activityFactor <= 0 || activityFactor > 1 {
		return Model{}, fmt.Errorf("power: activity factor %g outside (0,1]", activityFactor)
	}
	return Model{ActivityFactor: activityFactor}, nil
}

// DefaultModel returns the paper's default model (activity factor 0.75).
func DefaultModel() Model {
	return Model{ActivityFactor: DefaultActivityFactor}
}

// ServerConsumed returns the per-server consumed-power breakdown
// including the rack-switch share, all scaled by the activity factor.
func (m Model) ServerConsumed(s platform.Server, rack platform.Rack) Breakdown {
	af := m.ActivityFactor
	b := Breakdown{
		CPUW:    s.CPU.PowerW * af,
		MemoryW: s.Memory.PowerW * af,
		DiskW:   s.Disk.PowerW * af,
		BoardW:  s.BoardPowerW * af,
		FanW:    s.FanPowerW * af,
		SwitchW: rack.SwitchPowerPerServerW() * af,
	}
	if s.Flash != nil {
		b.FlashW = s.Flash.PowerW * af
	}
	return b
}

// RackConsumedW returns total consumed watts for a full rack.
func (m Model) RackConsumedW(s platform.Server, rack platform.Rack) float64 {
	per := m.ServerConsumed(s, rack).TotalW()
	return per * float64(rack.ServersPerRack)
}

// RackNameplateW returns the rack's maximum operational (nameplate-style)
// power without the activity factor — the figure quoted in §3.2's
// "13.6 kW/rack" comparison.
func RackNameplateW(s platform.Server, rack platform.Rack) float64 {
	return s.MaxPowerW() * float64(rack.ServersPerRack)
}
