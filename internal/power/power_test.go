package power

import (
	"math"
	"testing"

	"warehousesim/internal/platform"
)

func TestNewModelValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := NewModel(bad); err == nil {
			t.Errorf("activity factor %g accepted", bad)
		}
	}
	m, err := NewModel(0.75)
	if err != nil || m.ActivityFactor != 0.75 {
		t.Fatalf("NewModel(0.75) = %+v, %v", m, err)
	}
}

func TestServerConsumedSrvr1(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	b := m.ServerConsumed(platform.Srvr1(), rack)
	// (340 server + 1 switch share) * 0.75.
	if got := b.TotalW(); math.Abs(got-255.75) > 1e-9 {
		t.Errorf("srvr1 consumed = %gW, want 255.75W", got)
	}
	if math.Abs(b.CPUW-210*0.75) > 1e-9 {
		t.Errorf("srvr1 CPU consumed = %g", b.CPUW)
	}
	if math.Abs(b.SwitchW-0.75) > 1e-9 {
		t.Errorf("switch share = %g", b.SwitchW)
	}
}

func TestActivityFactorScalesLinearly(t *testing.T) {
	rack := platform.DefaultRack()
	s := platform.Desk()
	half, _ := NewModel(0.5)
	full, _ := NewModel(1.0)
	if got, want := half.ServerConsumed(s, rack).TotalW()*2, full.ServerConsumed(s, rack).TotalW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("activity factor not linear: %g vs %g", got, want)
	}
}

func TestFlashPowerCounted(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	s := platform.Emb1()
	base := m.ServerConsumed(s, rack).TotalW()
	fl := platform.FlashCacheDevice()
	s.Flash = &fl
	b := m.ServerConsumed(s, rack)
	if math.Abs(b.FlashW-0.5*0.75) > 1e-9 {
		t.Errorf("flash consumed = %g", b.FlashW)
	}
	if math.Abs(b.TotalW()-(base+0.375)) > 1e-9 {
		t.Errorf("flash not added to total")
	}
}

// §3.2: srvr1 consumes 13.6 kW/rack (nameplate, 40 servers).
func TestRackNameplateMatchesPaper(t *testing.T) {
	rack := platform.DefaultRack()
	if got := RackNameplateW(platform.Srvr1(), rack); math.Abs(got-13600) > 1e-9 {
		t.Errorf("srvr1 rack nameplate = %gW, paper 13.6kW", got)
	}
	// emb1 must be dramatically lower (paper quotes 2.7 kW with its
	// provisioning; our leaner BoM gives ~2.1 kW — same order).
	if got := RackNameplateW(platform.Emb1(), rack); got > 3000 {
		t.Errorf("emb1 rack nameplate = %gW, want < 3kW", got)
	}
}

// The paper's sensitivity range: consumed power must scale exactly
// linearly in the activity factor across 0.5–1.0, for every platform,
// so the ablation benches' relative rankings cannot move with AF.
func TestActivityFactorSensitivityRange(t *testing.T) {
	rack := platform.DefaultRack()
	for _, s := range platform.All() {
		ref := Model{ActivityFactor: 1}.ServerConsumed(s, rack).TotalW()
		for i := 10; i <= 20; i++ {
			af := float64(i) / 20
			m, err := NewModel(af)
			if err != nil {
				t.Fatalf("NewModel(%g): %v", af, err)
			}
			got := m.ServerConsumed(s, rack).TotalW()
			if math.Abs(got-ref*af) > 1e-9 {
				t.Errorf("%s at AF %.2f: %g W, want %g W", s.Name, af, got, ref*af)
			}
		}
	}
}

func TestIdleFractionsValidate(t *testing.T) {
	if err := DefaultIdleFractions().Validate(); err != nil {
		t.Errorf("catalog idle fractions invalid: %v", err)
	}
	if err := StaticIdleFractions().Validate(); err != nil {
		t.Errorf("static idle fractions invalid: %v", err)
	}
	bad := DefaultIdleFractions()
	bad.Disk = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("disk idle fraction 1.5 accepted")
	}
	bad = DefaultIdleFractions()
	bad.CPU = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("cpu idle fraction -0.1 accepted")
	}
}

// The degenerate case the energy plane pins: idle fractions all 1.0
// reproduce the static breakdown bit-for-bit at every utilization.
func TestAtStaticDegenerateBitExact(t *testing.T) {
	rack := platform.DefaultRack()
	for _, s := range platform.All() {
		b := DefaultModel().ServerConsumed(s, rack)
		for _, u := range []Utilizations{{}, {CPU: 0.37, Disk: 0.9, Switch: 1}, {CPU: 1, Memory: 1, Disk: 1, Board: 1, Fan: 1, Flash: 1, Switch: 1}} {
			if got := b.At(StaticIdleFractions(), u); got != b {
				t.Errorf("%s: static degenerate At = %+v, want %+v", s.Name, got, b)
			}
		}
	}
}

func TestAtInterpolatesIdleToActive(t *testing.T) {
	b := Breakdown{CPUW: 100, MemoryW: 50, DiskW: 10}
	f := IdleFractions{CPU: 0.3, Memory: 0.7, Disk: 0.8, Board: 1, Fan: 1, Flash: 1, Switch: 1}
	// Zero utilization draws exactly the idle watts.
	at0 := b.At(f, Utilizations{})
	if math.Abs(at0.CPUW-30) > 1e-12 || math.Abs(at0.MemoryW-35) > 1e-12 || math.Abs(at0.DiskW-8) > 1e-12 {
		t.Errorf("idle draw = %+v", at0)
	}
	// Full utilization draws exactly the active watts.
	full := Utilizations{CPU: 1, Memory: 1, Disk: 1, Board: 1, Fan: 1, Flash: 1, Switch: 1}
	if at1 := b.At(f, full); at1 != b {
		t.Errorf("full-utilization draw = %+v, want %+v", at1, b)
	}
	// Halfway utilization lands exactly between.
	at5 := b.At(f, Utilizations{CPU: 0.5})
	if want := 100 * (0.3 + 0.7*0.5); math.Abs(at5.CPUW-want) > 1e-12 {
		t.Errorf("cpu at 50%% = %g, want %g", at5.CPUW, want)
	}
}

func TestRackConsumed(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	per := m.ServerConsumed(platform.Srvr2(), rack).TotalW()
	if got := m.RackConsumedW(platform.Srvr2(), rack); math.Abs(got-per*40) > 1e-9 {
		t.Errorf("rack consumed = %g, want %g", got, per*40)
	}
}
