package power

import (
	"math"
	"testing"

	"warehousesim/internal/platform"
)

func TestNewModelValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := NewModel(bad); err == nil {
			t.Errorf("activity factor %g accepted", bad)
		}
	}
	m, err := NewModel(0.75)
	if err != nil || m.ActivityFactor != 0.75 {
		t.Fatalf("NewModel(0.75) = %+v, %v", m, err)
	}
}

func TestServerConsumedSrvr1(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	b := m.ServerConsumed(platform.Srvr1(), rack)
	// (340 server + 1 switch share) * 0.75.
	if got := b.TotalW(); math.Abs(got-255.75) > 1e-9 {
		t.Errorf("srvr1 consumed = %gW, want 255.75W", got)
	}
	if math.Abs(b.CPUW-210*0.75) > 1e-9 {
		t.Errorf("srvr1 CPU consumed = %g", b.CPUW)
	}
	if math.Abs(b.SwitchW-0.75) > 1e-9 {
		t.Errorf("switch share = %g", b.SwitchW)
	}
}

func TestActivityFactorScalesLinearly(t *testing.T) {
	rack := platform.DefaultRack()
	s := platform.Desk()
	half, _ := NewModel(0.5)
	full, _ := NewModel(1.0)
	if got, want := half.ServerConsumed(s, rack).TotalW()*2, full.ServerConsumed(s, rack).TotalW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("activity factor not linear: %g vs %g", got, want)
	}
}

func TestFlashPowerCounted(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	s := platform.Emb1()
	base := m.ServerConsumed(s, rack).TotalW()
	fl := platform.FlashCacheDevice()
	s.Flash = &fl
	b := m.ServerConsumed(s, rack)
	if math.Abs(b.FlashW-0.5*0.75) > 1e-9 {
		t.Errorf("flash consumed = %g", b.FlashW)
	}
	if math.Abs(b.TotalW()-(base+0.375)) > 1e-9 {
		t.Errorf("flash not added to total")
	}
}

// §3.2: srvr1 consumes 13.6 kW/rack (nameplate, 40 servers).
func TestRackNameplateMatchesPaper(t *testing.T) {
	rack := platform.DefaultRack()
	if got := RackNameplateW(platform.Srvr1(), rack); math.Abs(got-13600) > 1e-9 {
		t.Errorf("srvr1 rack nameplate = %gW, paper 13.6kW", got)
	}
	// emb1 must be dramatically lower (paper quotes 2.7 kW with its
	// provisioning; our leaner BoM gives ~2.1 kW — same order).
	if got := RackNameplateW(platform.Emb1(), rack); got > 3000 {
		t.Errorf("emb1 rack nameplate = %gW, want < 3kW", got)
	}
}

func TestRackConsumed(t *testing.T) {
	m := DefaultModel()
	rack := platform.DefaultRack()
	per := m.ServerConsumed(platform.Srvr2(), rack).TotalW()
	if got := m.RackConsumedW(platform.Srvr2(), rack); math.Abs(got-per*40) > 1e-9 {
		t.Errorf("rack consumed = %g, want %g", got, per*40)
	}
}
