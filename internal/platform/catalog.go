package platform

// This file encodes the paper's component data:
//   - Figure 1(a): srvr1/srvr2 per-component prices and powers;
//   - Table 2: the six platform configurations, total watt and Inf-$;
//   - Table 3(a): flash and disk parameter sets.
//
// For desk/mobl/emb1/emb2 the paper prints only totals (Table 2) and
// stacked-bar breakdowns without numeric labels (Figure 2a/2b); the
// per-component splits below are reconstructed so components sum exactly
// to the published totals. Tests pin the totals to the paper's numbers.

// Disk catalog (Table 3a plus the 15k-RPM server disk of §3.2).
func Disk15kServer() Disk {
	return Disk{Name: "15k-server", BandwidthMBps: 90, AvgAccessMs: 3.5,
		CapacityGB: 300, PowerW: 15, PriceUSD: 275}
}

// Disk72kDesktop is the 7.2k RPM desktop disk: 70 MB/s, 4 ms, 500 GB,
// 10 W, $120 (Table 3a "Desktop Disk"; price matches Figure 1a srvr2).
func Disk72kDesktop() Disk {
	return Disk{Name: "7.2k-desktop", BandwidthMBps: 70, AvgAccessMs: 4,
		CapacityGB: 500, PowerW: 10, PriceUSD: 120}
}

// DiskLaptop is the low-power laptop disk reached over a SAN: 20 MB/s
// (very conservative), 15 ms, 200 GB, 2 W, $80 (Table 3a "Laptop Disk").
func DiskLaptop() Disk {
	return Disk{Name: "laptop-san", BandwidthMBps: 20, AvgAccessMs: 15,
		CapacityGB: 200, PowerW: 2, PriceUSD: 80, Remote: true}
}

// DiskLaptop2 is the cheaper laptop disk variant: identical except $40
// (Table 3a "Laptop-2 Disk").
func DiskLaptop2() Disk {
	d := DiskLaptop()
	d.Name = "laptop2-san"
	d.PriceUSD = 40
	return d
}

// FlashCacheDevice is the 1 GB NAND flash disk cache: 50 MB/s, 20 µs
// read, 200 µs write, 1.2 ms erase, 0.5 W, $14 (Table 3a "Flash").
func FlashCacheDevice() Flash {
	return Flash{
		ReadUs: 20, WriteUs: 200, EraseMs: 1.2,
		BandwidthMBps: 50, CapacityGB: 1, PowerW: 0.5, PriceUSD: 14,
		EnduranceWrites: 100_000,
	}
}

// FlashSSD is a 2008-era 32 GB flash solid-state disk used for the §4
// "flash as a disk replacement" extension: same cell timings as the
// cache device, wider internal parallelism (100 MB/s), priced at the
// cache device's $14/GB.
func FlashSSD() Flash {
	return Flash{
		ReadUs: 20, WriteUs: 200, EraseMs: 1.2,
		BandwidthMBps: 100, CapacityGB: 32, PowerW: 2, PriceUSD: 448,
		EnduranceWrites: 100_000,
	}
}

// Srvr1 is the mid-range server (Xeon MP / Opteron MP class): 2 sockets x
// 4 cores at 2.6 GHz OoO with 64K/8MB caches, FB-DIMM memory, 15k disk,
// 10 GbE. 340 W, $3,225/server before switch share (Figure 1a).
func Srvr1() Server {
	return Server{
		Name: "srvr1",
		CPU: CPU{Name: "XeonMP-class", Sockets: 2, CoresPerSocket: 4,
			FreqGHz: 2.6, OutOfOrder: true, L1KB: 64, L2MB: 8,
			PriceUSD: 1700, PowerW: 210},
		Memory:        Memory{Tech: FBDIMM, CapacityGB: 4, PriceUSD: 350, PowerW: 25},
		Disk:          Disk15kServer(),
		NIC:           NIC{Gbps: 10},
		BoardPriceUSD: 400, BoardPowerW: 50,
		FanPriceUSD: 500, FanPowerW: 40,
	}
}

// Srvr2 is the low-end server (Xeon / Opteron class): 1 socket x 4 cores
// at 2.6 GHz OoO with 64K/8MB caches. 215 W, $1,620/server (Figure 1a).
func Srvr2() Server {
	return Server{
		Name: "srvr2",
		CPU: CPU{Name: "Xeon-class", Sockets: 1, CoresPerSocket: 4,
			FreqGHz: 2.6, OutOfOrder: true, L1KB: 64, L2MB: 8,
			PriceUSD: 650, PowerW: 105},
		Memory:        Memory{Tech: FBDIMM, CapacityGB: 4, PriceUSD: 350, PowerW: 25},
		Disk:          Disk72kDesktop(),
		NIC:           NIC{Gbps: 1},
		BoardPriceUSD: 250, BoardPowerW: 40,
		FanPriceUSD: 250, FanPowerW: 35,
	}
}

// Desk is the desktop platform (Core 2 / Athlon 64 class): 2 cores at
// 2.2 GHz OoO with 32K/2MB caches, DDR2. 135 W, $780/server (Table 2
// total $849 including switch share).
func Desk() Server {
	return Server{
		Name: "desk",
		CPU: CPU{Name: "Core2-class", Sockets: 1, CoresPerSocket: 2,
			FreqGHz: 2.2, OutOfOrder: true, L1KB: 32, L2MB: 2,
			PriceUSD: 180, PowerW: 65},
		Memory:        Memory{Tech: DDR2, CapacityGB: 4, PriceUSD: 220, PowerW: 10},
		Disk:          Disk72kDesktop(),
		NIC:           NIC{Gbps: 1},
		BoardPriceUSD: 160, BoardPowerW: 30,
		FanPriceUSD: 100, FanPowerW: 20,
	}
}

// Mobl is the mobile platform (Core 2 Mobile / Turion class): 2 cores at
// 2.0 GHz OoO with 32K/2MB caches. Low-power parts carry a price premium
// over desk (§3.2). 78 W, $920/server (Table 2 total $989).
func Mobl() Server {
	return Server{
		Name: "mobl",
		CPU: CPU{Name: "Core2Mobile-class", Sockets: 1, CoresPerSocket: 2,
			FreqGHz: 2.0, OutOfOrder: true, L1KB: 32, L2MB: 2,
			PriceUSD: 300, PowerW: 25},
		Memory:        Memory{Tech: DDR2, CapacityGB: 4, PriceUSD: 260, PowerW: 10},
		Disk:          Disk72kDesktop(),
		NIC:           NIC{Gbps: 1},
		BoardPriceUSD: 150, BoardPowerW: 25,
		FanPriceUSD: 90, FanPowerW: 8,
	}
}

// Emb1 is the mid-range embedded platform (PA Semi / embedded Athlon 64
// class): 2 cores at 1.2 GHz OoO with 32K/1MB caches. 52 W, $430/server
// (Table 2 total $499).
func Emb1() Server {
	return Server{
		Name: "emb1",
		CPU: CPU{Name: "PASemi-class", Sockets: 1, CoresPerSocket: 2,
			FreqGHz: 1.2, OutOfOrder: true, L1KB: 32, L2MB: 1,
			PriceUSD: 60, PowerW: 13},
		Memory:        Memory{Tech: DDR2, CapacityGB: 4, PriceUSD: 170, PowerW: 10},
		Disk:          Disk72kDesktop(),
		NIC:           NIC{Gbps: 1},
		BoardPriceUSD: 50, BoardPowerW: 14,
		FanPriceUSD: 30, FanPowerW: 5,
	}
}

// Emb2 is the low-end embedded platform (AMD Geode / VIA Eden-N class):
// one in-order core at 600 MHz with 32K/128K caches, DDR1. 35 W,
// $310/server (Table 2 total $379).
func Emb2() Server {
	return Server{
		Name: "emb2",
		CPU: CPU{Name: "Geode-class", Sockets: 1, CoresPerSocket: 1,
			FreqGHz: 0.6, OutOfOrder: false, L1KB: 32, L2MB: 0.128,
			PriceUSD: 20, PowerW: 5},
		Memory:        Memory{Tech: DDR1, CapacityGB: 4, PriceUSD: 120, PowerW: 8},
		Disk:          Disk72kDesktop(),
		NIC:           NIC{Gbps: 1},
		BoardPriceUSD: 35, BoardPowerW: 9,
		FanPriceUSD: 15, FanPowerW: 3,
	}
}

// ComponentIdleFractions is the catalog's idle-power table: for each
// cost-model component class, the fraction of its active (spec-sheet,
// activity-factor-scaled) power it still draws when the class sits
// idle. The split follows the shape of Fan et al.'s provisioning data —
// an idle server draws roughly half to two thirds of its peak — with
// the dynamic range concentrated where it physically lives: cores gate
// clocks aggressively, DRAM pays refresh regardless of traffic, disks
// keep spinning, and board/switch electronics are nearly
// load-invariant. Uniform across the six platforms (the paper gives no
// per-platform idle data); the energy telemetry plane interpolates
// linearly between idle and active with utilization, and a fraction of
// 1.0 degenerates to the static model.
func ComponentIdleFractions() map[string]float64 {
	return map[string]float64{
		"cpu":    0.35, // clock gating; deep C-states were rare in 2008 parts
		"memory": 0.70, // refresh + standby dominates DRAM draw
		"disk":   0.80, // spindle keeps turning between accesses
		"board":  0.90, // chipset, VRM losses, management controller
		"fan":    0.60, // fans track thermal load with a floor
		"flash":  0.20, // NAND idles near zero
		"switch": 0.85, // switch fabric is powered regardless of traffic
	}
}

// All returns the six paper platforms in the paper's presentation order.
func All() []Server {
	return []Server{Srvr1(), Srvr2(), Desk(), Mobl(), Emb1(), Emb2()}
}

// ByName looks up a platform by its paper name (case-sensitive). The
// second result reports whether the name was found.
func ByName(name string) (Server, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Server{}, false
}
