package platform

import (
	"math"
	"testing"
	"testing/quick"
)

// Paper Table 2 / Figure 1(a) pins: per-server hardware price (without
// switch share) and maximum power must match the published numbers.
func TestCatalogMatchesPaper(t *testing.T) {
	cases := []struct {
		srv       Server
		wantPrice float64
		wantWatt  float64
		wantCores int
	}{
		{Srvr1(), 3225, 340, 8},
		{Srvr2(), 1620, 215, 4},
		{Desk(), 780, 135, 2},
		{Mobl(), 920, 78, 2},
		{Emb1(), 430, 52, 2},
		{Emb2(), 310, 35, 1},
	}
	for _, c := range cases {
		if got := c.srv.HardwarePriceUSD(); math.Abs(got-c.wantPrice) > 0.01 {
			t.Errorf("%s hardware price = $%g, paper $%g", c.srv.Name, got, c.wantPrice)
		}
		if got := c.srv.MaxPowerW(); math.Abs(got-c.wantWatt) > 0.01 {
			t.Errorf("%s power = %gW, paper %gW", c.srv.Name, got, c.wantWatt)
		}
		if got := c.srv.CPU.Cores(); got != c.wantCores {
			t.Errorf("%s cores = %d, want %d", c.srv.Name, got, c.wantCores)
		}
	}
}

// Table 2 "Inf-$" includes the rack switch share: hardware + 2750/40.
func TestInfCostWithSwitchShareMatchesTable2(t *testing.T) {
	rack := DefaultRack()
	wants := map[string]float64{
		"srvr1": 3294, "srvr2": 1689, "desk": 849,
		"mobl": 989, "emb1": 499, "emb2": 379,
	}
	for _, s := range All() {
		got := s.HardwarePriceUSD() + rack.SwitchPricePerServer()
		if math.Abs(got-wants[s.Name]) > 1 {
			t.Errorf("%s Inf-$ = %g, Table 2 says %g", s.Name, got, wants[s.Name])
		}
	}
}

func TestAllValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateCatchesBadServers(t *testing.T) {
	good := Srvr2()
	bads := []func(*Server){
		func(s *Server) { s.Name = "" },
		func(s *Server) { s.CPU.CoresPerSocket = 0 },
		func(s *Server) { s.CPU.FreqGHz = 0 },
		func(s *Server) { s.Memory.CapacityGB = 0 },
		func(s *Server) { s.Disk.BandwidthMBps = 0 },
		func(s *Server) { s.NIC.Gbps = 0 },
	}
	for i, mutate := range bads {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("emb1")
	if !ok || s.Name != "emb1" {
		t.Fatalf("ByName(emb1) = %v, %v", s.Name, ok)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName found a platform that does not exist")
	}
}

func TestCoreSpeedOrdering(t *testing.T) {
	// For any cache-resident working set, per-core speed must follow the
	// platform hierarchy: srvr >= desk > mobl > emb1 > emb2.
	ws, mp := 4.0, 1.5
	speeds := map[string]float64{}
	for _, s := range All() {
		speeds[s.Name] = s.CPU.CoreSpeed(ws, mp)
	}
	order := []string{"srvr1", "desk", "mobl", "emb1", "emb2"}
	for i := 0; i+1 < len(order); i++ {
		if speeds[order[i]] <= speeds[order[i+1]] {
			t.Errorf("core speed %s (%g) <= %s (%g)", order[i], speeds[order[i]],
				order[i+1], speeds[order[i+1]])
		}
	}
	if speeds["srvr1"] != speeds["srvr2"] {
		t.Errorf("srvr1 and srvr2 cores should be identical: %g vs %g",
			speeds["srvr1"], speeds["srvr2"])
	}
}

func TestCoreSpeedCacheSensitivity(t *testing.T) {
	c := Desk().CPU
	if s0 := c.CoreSpeed(0, 2); math.Abs(s0-c.FreqGHz) > 1e-12 {
		t.Errorf("zero working set should run at full frequency: %g", s0)
	}
	small := c.CoreSpeed(0.5, 2)
	large := c.CoreSpeed(16, 2)
	if large >= small {
		t.Errorf("larger working set should be slower: %g vs %g", large, small)
	}
}

func TestInOrderPenalty(t *testing.T) {
	e2 := Emb2().CPU
	oo := e2
	oo.OutOfOrder = true
	if e2.CoreSpeed(1, 1) >= oo.CoreSpeed(1, 1) {
		t.Error("in-order core not slower than out-of-order twin")
	}
}

func TestDiskAccessTime(t *testing.T) {
	d := Disk72kDesktop()
	// 4 ms + 7 MB / 70 MB/s = 4 ms + 100 ms.
	got := d.AccessTime(7e6)
	want := 0.004 + 0.1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AccessTime = %g, want %g", got, want)
	}
}

func TestDiskCatalogMatchesTable3(t *testing.T) {
	lap := DiskLaptop()
	if lap.BandwidthMBps != 20 || lap.AvgAccessMs != 15 || lap.PowerW != 2 || lap.PriceUSD != 80 || !lap.Remote {
		t.Errorf("laptop disk does not match Table 3a: %+v", lap)
	}
	lap2 := DiskLaptop2()
	if lap2.PriceUSD != 40 || lap2.BandwidthMBps != lap.BandwidthMBps {
		t.Errorf("laptop-2 disk does not match Table 3a: %+v", lap2)
	}
	dsk := Disk72kDesktop()
	if dsk.BandwidthMBps != 70 || dsk.AvgAccessMs != 4 || dsk.PowerW != 10 || dsk.PriceUSD != 120 || dsk.Remote {
		t.Errorf("desktop disk does not match Table 3a: %+v", dsk)
	}
}

func TestFlashMatchesTable3(t *testing.T) {
	f := FlashCacheDevice()
	if f.ReadUs != 20 || f.WriteUs != 200 || f.EraseMs != 1.2 ||
		f.BandwidthMBps != 50 || f.CapacityGB != 1 || f.PowerW != 0.5 || f.PriceUSD != 14 {
		t.Errorf("flash does not match Table 3a: %+v", f)
	}
	// 4KB read: 20 µs + 4096/50e6 s ≈ 102 µs.
	got := f.ReadTime(4096)
	want := 20e-6 + 4096/50e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("flash 4K read = %g, want %g", got, want)
	}
	if f.WriteTime(4096) <= f.ReadTime(4096) {
		t.Error("flash writes should be slower than reads")
	}
}

func TestFlashAddsToServerBoM(t *testing.T) {
	s := Emb1()
	base := s.HardwarePriceUSD()
	basePwr := s.MaxPowerW()
	fl := FlashCacheDevice()
	s.Flash = &fl
	if got := s.HardwarePriceUSD(); math.Abs(got-(base+14)) > 1e-9 {
		t.Errorf("flash price not added: %g", got)
	}
	if got := s.MaxPowerW(); math.Abs(got-(basePwr+0.5)) > 1e-9 {
		t.Errorf("flash power not added: %g", got)
	}
}

func TestNICBandwidth(t *testing.T) {
	n := NIC{Gbps: 1}
	if got := n.BytesPerSec(); got != 125e6 {
		t.Errorf("1 Gbps = %g B/s", got)
	}
}

func TestRackAmortization(t *testing.T) {
	r := DefaultRack()
	if got := r.SwitchPricePerServer(); math.Abs(got-68.75) > 1e-9 {
		t.Errorf("switch price per server = %g", got)
	}
	if got := r.SwitchPowerPerServerW(); math.Abs(got-1) > 1e-9 {
		t.Errorf("switch power per server = %g", got)
	}
}

// Property: CoreSpeed is monotone non-increasing in working-set size and
// in miss penalty for every cataloged CPU.
func TestQuickCoreSpeedMonotone(t *testing.T) {
	cpus := make([]CPU, 0, 6)
	for _, s := range All() {
		cpus = append(cpus, s.CPU)
	}
	f := func(wsA, wsB, mp float64) bool {
		ws1 := math.Abs(wsA)
		ws2 := ws1 + math.Abs(wsB)
		p := math.Mod(math.Abs(mp), 4)
		for _, c := range cpus {
			if c.CoreSpeed(ws2, p) > c.CoreSpeed(ws1, p)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
