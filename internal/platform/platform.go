// Package platform defines the hardware component catalog and the six
// server platforms the paper evaluates (Table 2), together with the
// disk/flash parameter sets of Table 3(a) and rack-level packaging
// constants from Figure 1(a).
//
// Every number that appears in the paper is encoded here verbatim.
// Component breakdowns the paper shows only as stacked bars (Figure 2a/2b
// for desk/mobl/emb1/emb2) are reconstructed so that the per-platform
// totals match Table 2 exactly; DESIGN.md documents this substitution.
package platform

import "fmt"

// CPU describes a processor subsystem: socket count, core count, clock,
// pipeline style and cache sizes, plus its hardware price and maximum
// operational power (both at the whole-CPU-subsystem level, as in the
// paper's cost model).
type CPU struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	FreqGHz        float64
	OutOfOrder     bool
	L1KB           int
	L2MB           float64
	PriceUSD       float64
	PowerW         float64
}

// Cores returns the total core count across sockets.
func (c CPU) Cores() int { return c.Sockets * c.CoresPerSocket }

// InOrderIPCFactor is the throughput handicap of an in-order single-issue
// pipeline relative to the wide out-of-order cores in the server/desktop
// parts, before cache effects. emb2 (Geode/Eden-class) pays this.
const InOrderIPCFactor = 0.45

// CoreSpeed returns the effective per-core execution rate, in units of
// "reference core seconds per second", for a workload whose
// cache-resident working set is wsMB and whose miss sensitivity is
// missPenalty. The model is a standard CPI decomposition:
//
//	rate = freq * ipc / (1 + missPenalty * ws/(ws+L2))
//
// Larger L2 caches capture more of the working set; the residual fraction
// stalls the pipeline in proportion to missPenalty (a per-workload
// calibration constant). The caller normalizes against a reference
// platform so only ratios matter.
func (c CPU) CoreSpeed(wsMB, missPenalty float64) float64 {
	ipc := 1.0
	if !c.OutOfOrder {
		ipc = InOrderIPCFactor
	}
	missFrac := 0.0
	if wsMB > 0 {
		missFrac = wsMB / (wsMB + c.L2MB)
	}
	return c.FreqGHz * ipc / (1 + missPenalty*missFrac)
}

// MemoryTech enumerates the DRAM technologies in the study.
type MemoryTech string

// DRAM technologies used across the six platforms (§3.2).
const (
	FBDIMM MemoryTech = "FB-DIMM"
	DDR2   MemoryTech = "DDR2"
	DDR1   MemoryTech = "DDR1"
)

// Memory describes the DRAM subsystem.
type Memory struct {
	Tech       MemoryTech
	CapacityGB float64
	PriceUSD   float64
	PowerW     float64
}

// Disk describes a rotating disk, either locally attached or reached over
// a basic SATA SAN (§3.5).
type Disk struct {
	Name          string
	BandwidthMBps float64
	AvgAccessMs   float64 // average access (seek+rotate) latency
	CapacityGB    float64
	PowerW        float64
	PriceUSD      float64
	Remote        bool // attached via SAN rather than on-board
}

// AccessTime returns the service time in seconds for a request of size
// bytes: one average positioning delay plus the transfer time.
func (d Disk) AccessTime(bytes float64) float64 {
	return d.AvgAccessMs/1e3 + bytes/(d.BandwidthMBps*1e6)
}

// Flash describes a NAND flash device used as a disk cache (Table 3a).
type Flash struct {
	ReadUs        float64
	WriteUs       float64
	EraseMs       float64
	BandwidthMBps float64
	CapacityGB    float64
	PowerW        float64
	PriceUSD      float64
	// EnduranceWrites is the per-block write budget before wear-out;
	// current-technology NAND in the paper wears out after 100k writes.
	EnduranceWrites int64
}

// ReadTime returns the flash service time in seconds for reading bytes.
func (f Flash) ReadTime(bytes float64) float64 {
	return f.ReadUs/1e6 + bytes/(f.BandwidthMBps*1e6)
}

// WriteTime returns the flash service time in seconds for writing bytes,
// charging an amortized erase on every write (pessimistic but simple; the
// FlashCache paper's FTL hides most erases behind the log).
func (f Flash) WriteTime(bytes float64) float64 {
	return f.WriteUs/1e6 + bytes/(f.BandwidthMBps*1e6)
}

// NIC describes the network interface.
type NIC struct {
	Gbps   float64
	PowerW float64 // folded into board power in the paper's model
}

// BytesPerSec returns usable NIC bandwidth in bytes/second.
func (n NIC) BytesPerSec() float64 { return n.Gbps * 1e9 / 8 }

// Server is a complete single-server bill of materials. Board and
// power/fan entries follow the paper's cost-model categories
// ("Board + mgmt", "Power + fans").
type Server struct {
	Name string

	CPU    CPU
	Memory Memory
	Disk   Disk
	NIC    NIC
	// Flash is non-nil when the board carries a flash disk cache (§3.5).
	Flash *Flash

	BoardPriceUSD float64
	BoardPowerW   float64
	FanPriceUSD   float64
	FanPowerW     float64
}

// HardwarePriceUSD returns the per-server hardware cost (excluding
// rack-level switch/enclosure amortization).
func (s Server) HardwarePriceUSD() float64 {
	p := s.CPU.PriceUSD + s.Memory.PriceUSD + s.Disk.PriceUSD +
		s.BoardPriceUSD + s.FanPriceUSD
	if s.Flash != nil {
		p += s.Flash.PriceUSD
	}
	return p
}

// MaxPowerW returns the per-server maximum operational power.
func (s Server) MaxPowerW() float64 {
	w := s.CPU.PowerW + s.Memory.PowerW + s.Disk.PowerW +
		s.BoardPowerW + s.FanPowerW
	if s.Flash != nil {
		w += s.Flash.PowerW
	}
	return w
}

// Validate reports structural problems with a server description.
func (s Server) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("platform: server has no name")
	case s.CPU.Cores() <= 0:
		return fmt.Errorf("platform: %s has no cores", s.Name)
	case s.CPU.FreqGHz <= 0:
		return fmt.Errorf("platform: %s has non-positive frequency", s.Name)
	case s.Memory.CapacityGB <= 0:
		return fmt.Errorf("platform: %s has no memory", s.Name)
	case s.Disk.BandwidthMBps <= 0:
		return fmt.Errorf("platform: %s disk has no bandwidth", s.Name)
	case s.NIC.Gbps <= 0:
		return fmt.Errorf("platform: %s has no NIC", s.Name)
	}
	return nil
}

// Rack describes rack-level packaging: how many servers share one
// rack/enclosure, and the shared switch cost and power (Figure 1a).
type Rack struct {
	Name           string
	ServersPerRack int
	SwitchPriceUSD float64
	SwitchPowerW   float64
}

// SwitchPricePerServer amortizes the switch cost across the rack.
func (r Rack) SwitchPricePerServer() float64 {
	return r.SwitchPriceUSD / float64(r.ServersPerRack)
}

// SwitchPowerPerServerW amortizes the switch power across the rack.
func (r Rack) SwitchPowerPerServerW() float64 {
	return r.SwitchPowerW / float64(r.ServersPerRack)
}

// DefaultRack is the baseline 42U rack with 40 1U "pizza box" servers and
// one shared switch, per Figure 1(a).
func DefaultRack() Rack {
	return Rack{
		Name:           "42U-baseline",
		ServersPerRack: 40,
		SwitchPriceUSD: 2750,
		SwitchPowerW:   40,
	}
}
