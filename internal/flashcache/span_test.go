package flashcache

import (
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
)

const (
	testFlashReadSec = 100e-6
	testDiskReadSec  = 5e-3
)

func spanTestSim(t *testing.T, every int64) (*Sim, *obs.Sink) {
	t.Helper()
	s, err := New(Config{CacheBytes: 64 * 4096, BlockBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	s.InstrumentSpans(span.NewTracer(sink, every), testFlashReadSec, testDiskReadSec)
	return s, sink
}

// TestStorageSpans pins the span shape: a read miss is a SAN round-trip
// at disk latency, a read hit a flash access at flash latency, both on
// the operation-count axis in microseconds; writes emit nothing.
func TestStorageSpans(t *testing.T) {
	s, sink := spanTestSim(t, 1)
	s.Read(7)  // miss -> san
	s.Read(7)  // hit -> flash
	s.Write(9) // no span

	spans := span.Decoded(sink.Events())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	miss, hit := spans[0], spans[1]
	if miss.Kind != span.KindStorage || miss.Res != "san" {
		t.Fatalf("miss span = %+v, want storage/san", miss)
	}
	if want := testDiskReadSec * 1e6; miss.Dur != want {
		t.Fatalf("miss dur = %g, want %g us", miss.Dur, want)
	}
	if hit.Res != "flash" {
		t.Fatalf("hit span on %q, want flash", hit.Res)
	}
	if want := testFlashReadSec * 1e6; hit.Dur != want {
		t.Fatalf("hit dur = %g, want %g us", hit.Dur, want)
	}
	if miss.Req != 0 || hit.Req != 1 {
		t.Fatalf("span op indices %d/%d, want 0/1", miss.Req, hit.Req)
	}
}

func TestStorageSpanSampling(t *testing.T) {
	s, sink := spanTestSim(t, 8)
	for b := int64(0); b < 32; b++ {
		s.Read(b) // op indices 0..31, all misses
	}
	spans := span.Decoded(sink.Events())
	if len(spans) != 4 {
		t.Fatalf("stride 8 over 32 reads kept %d spans, want 4", len(spans))
	}
	for _, sp := range spans {
		if sp.Req%8 != 0 {
			t.Fatalf("stride-8 tracer kept op index %d", sp.Req)
		}
	}
}

func TestSpanTracerDetach(t *testing.T) {
	s, sink := spanTestSim(t, 1)
	s.InstrumentSpans(nil, testFlashReadSec, testDiskReadSec)
	s.Read(1)
	if len(sink.Events()) != 0 {
		t.Fatal("detached tracer still recorded")
	}
}
