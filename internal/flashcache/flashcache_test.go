package flashcache

import (
	"testing"
	"testing/quick"

	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
)

func smallSim(t *testing.T) *Sim {
	t.Helper()
	s, err := New(Config{CacheBytes: 16 * 4096, BlockBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if (Config{CacheBytes: 0, BlockBytes: 4096}).Validate() == nil {
		t.Error("zero cache accepted")
	}
	if (Config{CacheBytes: 100, BlockBytes: 4096}).Validate() == nil {
		t.Error("cache smaller than a block accepted")
	}
}

func TestDefaultCapacity(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != (1<<30)/4096 {
		t.Errorf("capacity = %d", s.Capacity())
	}
}

func TestReadMissThenHit(t *testing.T) {
	s := smallSim(t)
	if s.Read(42) {
		t.Error("cold read hit")
	}
	if !s.Read(42) {
		t.Error("warm read missed")
	}
	st := s.Stats()
	if st.Reads != 2 || st.ReadHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ReadHitRate() != 0.5 {
		t.Errorf("hit rate = %g", st.ReadHitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	s := smallSim(t) // 16 blocks
	for b := int64(0); b < 17; b++ {
		s.Read(b)
	}
	if s.Read(0) {
		t.Error("LRU victim (block 0) still cached")
	}
	if !s.Read(16) {
		t.Error("recent block evicted")
	}
	if s.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestWriteAllocatesAndCounts(t *testing.T) {
	s := smallSim(t)
	s.Write(7)
	if !s.Read(7) {
		t.Error("written block not cached")
	}
	s.Write(7)
	st := s.Stats()
	if st.Writes != 2 || st.WriteHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// install(7) + rewrite(7) + nothing for read = 2 flash programs.
	if st.FlashBlockWrites != 2 {
		t.Errorf("flash writes = %d, want 2", st.FlashBlockWrites)
	}
}

func TestReplayHitRateGrowsWithCache(t *testing.T) {
	sd, err := trace.NewSyntheticDisk(100000, 1.0, 4, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	hitRate := func(cacheBlocks int64) float64 {
		s, err := New(Config{CacheBytes: cacheBlocks * 4096, BlockBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRNG(3)
		return Replay(s, sd, r, 20000).ReadHitRate()
	}
	small, large := hitRate(1000), hitRate(20000)
	if large <= small {
		t.Errorf("bigger cache hit rate %.3f not above smaller %.3f", large, small)
	}
	if small <= 0 || large >= 1 {
		t.Errorf("degenerate hit rates: %g, %g", small, large)
	}
}

func TestDiskWorkingSetsComplete(t *testing.T) {
	ws := DiskWorkingSets()
	for _, name := range []string{"websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"} {
		sd, ok := ws[name]
		if !ok {
			t.Fatalf("missing working set for %s", name)
		}
		if sd.Blocks <= 0 {
			t.Errorf("%s: no blocks", name)
		}
	}
	// The write job must be write-dominated; search read-dominated.
	if ws["mapred-wr"].WriteFraction < 0.5 {
		t.Error("mapred-wr not write-heavy")
	}
	if ws["websearch"].WriteFraction > 0.1 {
		t.Error("websearch too write-heavy")
	}
}

func TestWearLifetime(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fl := platform.FlashCacheDevice()
	// 1 GB / 4 KB = 262144 blocks x 100k writes = 2.62e10 budget.
	// At 100 writes/s: 2.62e8 s ~ 8.3 years > 3-year depreciation.
	years, err := s.WearLifetimeYears(100, fl)
	if err != nil {
		t.Fatal(err)
	}
	if years < 3 {
		t.Errorf("lifetime %.1f years under the 3-year cycle", years)
	}
	if years > 20 {
		t.Errorf("lifetime %.1f years implausibly long for the formula", years)
	}
	if _, err := s.WearLifetimeYears(0, fl); err == nil {
		t.Error("zero write rate accepted")
	}
	bad := fl
	bad.EnduranceWrites = 0
	if _, err := s.WearLifetimeYears(1, bad); err == nil {
		t.Error("zero endurance accepted")
	}
}

// Property: hit counters never exceed access counters and cache never
// exceeds capacity.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		s, err := New(Config{CacheBytes: 64 * 512, BlockBytes: 512})
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		for i := 0; i < 3000; i++ {
			b := r.Int63n(500)
			if r.Bool(0.3) {
				s.Write(b)
			} else {
				s.Read(b)
			}
		}
		st := s.Stats()
		return st.ReadHits <= st.Reads && st.WriteHits <= st.Writes &&
			s.table.Len() <= s.capacity && len(s.index) == s.table.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
