// Package flashcache implements the paper's flash-based disk cache
// (§3.5, Table 3): a NAND flash device on the server board holding
// recently accessed disk pages in front of a low-power (laptop) disk on
// a SAN, after Kgil & Mudge's FlashCache.
//
// Any page not found in the OS page cache is looked up in a software
// hash table over the flash; hits are served at flash latency, misses go
// to the backing disk and are write-allocated into the flash (LRU). The
// simulator also tracks flash write traffic so the wear-out concern the
// paper raises (~100k writes per block with current technology) can be
// quantified against the 3-year depreciation cycle.
package flashcache

import (
	"container/list"
	"fmt"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
)

// Config sizes the flash cache.
type Config struct {
	// CacheBytes is the flash capacity (1 GB in Table 3a).
	CacheBytes int64
	// BlockBytes is the cache block (page) size.
	BlockBytes int
}

// DefaultConfig returns the paper's 1 GB flash with 4 KB blocks.
func DefaultConfig() Config {
	return Config{CacheBytes: 1 << 30, BlockBytes: 4096}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	if c.CacheBytes <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("flashcache: non-positive sizing %+v", c)
	}
	if c.CacheBytes < int64(c.BlockBytes) {
		return fmt.Errorf("flashcache: cache smaller than one block")
	}
	return nil
}

// Stats summarizes a replay.
type Stats struct {
	Reads     int64
	ReadHits  int64
	Writes    int64
	WriteHits int64 // write to a block already cached
	// FlashBlockWrites counts block programs into the flash (fills on
	// read misses plus foreground writes) — the wear-relevant figure.
	FlashBlockWrites int64
	Evictions        int64
	Requests         int64
}

// ReadHitRate returns read hits per read.
func (s Stats) ReadHitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(s.Reads)
}

// Sim is the flash disk-cache simulator: an LRU block cache with a
// hash-table lookup (as the paper describes) and wear accounting.
type Sim struct {
	cfg      Config
	capacity int

	table *list.List
	index map[int64]*list.Element
	stats Stats

	// observability (nil when not instrumented)
	rec         obs.Recorder
	sampleEvery int64

	// span tracing (nil tracer = off)
	tracer      *span.Tracer
	flashReadUs float64
	diskReadUs  float64
}

// New builds an empty cache.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{
		cfg:      cfg,
		capacity: int(cfg.CacheBytes / int64(cfg.BlockBytes)),
		table:    list.New(),
		index:    map[int64]*list.Element{},
	}, nil
}

// Capacity returns the cache capacity in blocks.
func (s *Sim) Capacity() int { return s.capacity }

// Instrument attaches a recorder: per-op counters
// ("flashcache.reads/read_hits/writes/write_hits/block_writes/evictions"),
// a "flashcache.miss" event per read miss (the block fetched from the
// backing disk), and a running read-hit-rate series
// ("flashcache.read_hit_rate") sampled every sampleEvery operations
// (0 means 1024) with the op count as the time axis. A nil or disabled
// recorder detaches.
func (s *Sim) Instrument(rec obs.Recorder, sampleEvery int64) {
	if !obs.On(rec) {
		s.rec = nil
		return
	}
	s.rec = rec
	if sampleEvery <= 0 {
		sampleEvery = 1024
	}
	s.sampleEvery = sampleEvery
}

// InstrumentSpans attaches a causal span tracer: every sampled read
// (sampling by operation index, the tracer's stride) emits a "storage"
// span — a flash access on a hit, a SAN round-trip to the backing disk
// on a miss — with the given device latencies as duration, in
// microseconds on the operation-count time axis. A nil tracer detaches.
func (s *Sim) InstrumentSpans(tr *span.Tracer, flashReadSec, diskReadSec float64) {
	s.tracer = tr
	s.flashReadUs = flashReadSec * 1e6
	s.diskReadUs = diskReadSec * 1e6
}

// Read looks a disk block up; a miss fetches it from the backing disk
// and installs it (write-allocate). Returns true on a flash hit.
func (s *Sim) Read(block int64) bool {
	s.stats.Reads++
	if el, ok := s.index[block]; ok {
		s.table.MoveToFront(el)
		s.stats.ReadHits++
		s.observe("flashcache.reads", "flashcache.read_hits", true)
		s.spanRead("flash", s.flashReadUs)
		return true
	}
	s.install(block)
	s.observe("flashcache.reads", "flashcache.read_hits", false)
	if s.rec != nil {
		s.rec.Event("flashcache.miss", float64(s.stats.Reads+s.stats.Writes),
			obs.F("block", float64(block)))
	}
	s.spanRead("san", s.diskReadUs)
	return false
}

// spanRead emits one storage span on the operation-count axis.
func (s *Sim) spanRead(res string, durUs float64) {
	ops := s.stats.Reads + s.stats.Writes
	if idx := ops - 1; s.tracer.Sampled(idx) {
		t := float64(ops)
		s.tracer.Emit(0, idx, span.KindStorage, res, t, t+durUs)
	}
}

// Write stores a disk block through the flash (the flash acts as a
// write buffer; destage to disk happens in the background).
func (s *Sim) Write(block int64) {
	s.stats.Writes++
	if el, ok := s.index[block]; ok {
		s.table.MoveToFront(el)
		s.stats.WriteHits++
		s.stats.FlashBlockWrites++ // re-program the block
		s.observe("flashcache.writes", "flashcache.write_hits", true)
		if s.rec != nil {
			s.rec.Count("flashcache.block_writes", 1)
		}
		return
	}
	s.install(block)
	s.observe("flashcache.writes", "flashcache.write_hits", false)
}

func (s *Sim) observe(opCounter, hitCounter string, hit bool) {
	if s.rec == nil {
		return
	}
	s.rec.Count(opCounter, 1)
	if hit {
		s.rec.Count(hitCounter, 1)
	}
	ops := s.stats.Reads + s.stats.Writes
	if ops%s.sampleEvery == 0 && s.stats.Reads > 0 {
		s.rec.Gauge("flashcache.read_hit_rate", float64(ops),
			float64(s.stats.ReadHits)/float64(s.stats.Reads))
	}
}

func (s *Sim) install(block int64) {
	if s.table.Len() >= s.capacity {
		el := s.table.Back()
		victim := el.Value.(int64)
		s.table.Remove(el)
		delete(s.index, victim)
		s.stats.Evictions++
		if s.rec != nil {
			s.rec.Count("flashcache.evictions", 1)
		}
	}
	s.index[block] = s.table.PushFront(block)
	s.stats.FlashBlockWrites++
	if s.rec != nil {
		s.rec.Count("flashcache.block_writes", 1)
	}
}

// Stats returns the accumulated counters.
func (s *Sim) Stats() Stats { return s.stats }

// Replay runs requests from a disk tracer through the cache.
func Replay(s *Sim, tr trace.DiskTracer, r *stats.RNG, requests int) Stats {
	for i := 0; i < requests; i++ {
		tr.TraceDisk(r, func(block int64, write bool) {
			if write {
				s.Write(block)
			} else {
				s.Read(block)
			}
		})
	}
	s.stats.Requests += int64(requests)
	return s.stats
}

// WearLifetimeYears estimates device lifetime under perfect wear
// leveling: total program budget (blocks x endurance) divided by the
// flash write rate. The paper's viability argument is that this exceeds
// the 3-year depreciation cycle for its workloads.
func (s *Sim) WearLifetimeYears(flashWritesPerSec float64, f platform.Flash) (float64, error) {
	if flashWritesPerSec <= 0 {
		return 0, fmt.Errorf("flashcache: write rate must be positive")
	}
	if f.EnduranceWrites <= 0 {
		return 0, fmt.Errorf("flashcache: flash has no endurance budget")
	}
	blocks := f.CapacityGB * 1e9 / float64(s.cfg.BlockBytes)
	budget := blocks * float64(f.EnduranceWrites)
	seconds := budget / flashWritesPerSec
	return seconds / (365.25 * 24 * 3600), nil
}

// DiskWorkingSets gives, per benchmark, the disk-resident working set
// and access skew used to synthesize disk traces for the flash study
// (derived from Table 1's dataset descriptions: 20 GB websearch dataset,
// 7 GB mail store, edge-cached video library, 5 GB mapreduce corpus).
func DiskWorkingSets() map[string]trace.SyntheticDisk {
	mk := func(bytes int64, s, run, ops, wf float64) trace.SyntheticDisk {
		sd, err := trace.NewSyntheticDisk(bytes/4096, s, run, ops, wf)
		if err != nil {
			panic(err) // static parameters; cannot fail
		}
		return *sd
	}
	return map[string]trace.SyntheticDisk{
		"websearch": mk(20e9, 1.05, 12, 2.2, 0.02),
		"webmail":   mk(7e9, 0.95, 6, 0.5, 0.25),
		// Edge video traffic is highly skewed (Gill et al.); the flash
		// front absorbs most cold-tier reads.
		"ytube":     mk(12e9, 1.15, 48, 1.0, 0.01),
		"mapred-wc": mk(5e9, 0.70, 64, 16, 0.05),
		"mapred-wr": mk(5e9, 0.60, 64, 0.5, 0.95),
	}
}
