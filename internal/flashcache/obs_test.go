package flashcache

import (
	"testing"

	"warehousesim/internal/obs"
)

func TestInstrumentedCacheStreams(t *testing.T) {
	s, err := New(Config{CacheBytes: 64 * 4096, BlockBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	s.Instrument(sink, 16)

	// 128 distinct blocks twice: pass one misses, pass two hits the
	// most-recent 64 and misses the evicted 64.
	for pass := 0; pass < 2; pass++ {
		for b := int64(0); b < 128; b++ {
			s.Read(b)
		}
	}
	for b := int64(0); b < 8; b++ {
		s.Write(b)
	}

	st := s.Stats()
	if got := sink.CounterValue("flashcache.reads"); got != st.Reads {
		t.Fatalf("reads counter %d != stats %d", got, st.Reads)
	}
	if got := sink.CounterValue("flashcache.read_hits"); got != st.ReadHits {
		t.Fatalf("read-hits counter %d != stats %d", got, st.ReadHits)
	}
	if got := sink.CounterValue("flashcache.writes"); got != st.Writes {
		t.Fatalf("writes counter %d != stats %d", got, st.Writes)
	}
	if got := sink.CounterValue("flashcache.block_writes"); got != st.FlashBlockWrites {
		t.Fatalf("block-writes counter %d != stats %d", got, st.FlashBlockWrites)
	}
	if got := sink.CounterValue("flashcache.evictions"); got != st.Evictions {
		t.Fatalf("evictions counter %d != stats %d", got, st.Evictions)
	}
	if n := sink.EventCount("flashcache.miss"); int64(n) != st.Reads-st.ReadHits {
		t.Fatalf("miss events %d != read misses %d", n, st.Reads-st.ReadHits)
	}
	hr := sink.SeriesByName("flashcache.read_hit_rate")
	if hr == nil || len(hr.Points) == 0 {
		t.Fatal("read-hit-rate series missing")
	}
	last := hr.Points[len(hr.Points)-1]
	if want := st.ReadHitRate(); last.V != want {
		t.Fatalf("final running hit rate %g != stats %g", last.V, want)
	}
}
