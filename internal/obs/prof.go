package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on the standard pprof hooks shared by all CLIs: a
// CPU profile written continuously to cpuPath and a heap profile
// snapshotted to memPath at stop time. Either path may be empty. The
// returned stop function flushes and closes the profiles and must be
// called exactly once (defer it in main).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			runtime.GC() // materialize up-to-date heap statistics
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("obs: mem profile: %w", werr)
			}
		}
		return nil
	}, nil
}
