// Package obs is the simulation observability layer: counters, gauges
// (time-series probes), histograms, and structured per-request event
// streams behind a Recorder interface, plus a run Manifest describing
// the measurement conditions and JSONL/CSV exporters.
//
// The package is deliberately zero-dependency (stdlib only) so that any
// simulator layer — the DES kernel, the cluster models, the memory-blade
// and flash-cache simulators, the workload engines — can accept a
// Recorder without import cycles.
//
// Hot paths are instrumented against a nil-able Recorder: callers guard
// emission with On(rec), which is a nil check plus one interface call,
// so a disabled run costs nothing measurable (and allocates nothing,
// since Field construction sits behind the guard). Nop is provided for
// call sites that want a non-nil recorder that discards everything.
package obs

// Recorder receives observations from an instrumented simulation run.
//
// All methods must be cheap and must not perturb the simulation:
// recording may allocate but must never sample randomness or schedule
// events, so an instrumented run stays trajectory-identical to an
// uninstrumented one under the same seed.
type Recorder interface {
	// Enabled reports whether observations are being kept. Hot paths
	// should use On(rec) instead of calling this directly.
	Enabled() bool
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge appends an instantaneous sample (t, v) to the named time
	// series. t is simulated time (or another monotone axis, e.g. access
	// count for the trace-driven cache simulators).
	Gauge(name string, t, v float64)
	// Observe adds one observation to the named histogram.
	Observe(name string, v float64)
	// Event appends a structured record at time t to the named stream.
	// The fields slice is only valid for the duration of the call: hot
	// paths pass a reused scratch buffer, so an implementation that
	// retains fields past the call must copy them (Sink copies into an
	// internal arena).
	Event(stream string, t float64, fields ...Field)
}

// On reports whether rec is non-nil and enabled — the guard every hot
// path uses before constructing Fields or calling Recorder methods.
func On(rec Recorder) bool { return rec != nil && rec.Enabled() }

// Field is one key/value pair of an event record. Values are either
// numeric or string; numeric is the common case on hot streams.
type Field struct {
	Key   string
	Num   float64
	Str   string
	IsStr bool
}

// F makes a numeric field.
func F(key string, v float64) Field { return Field{Key: key, Num: v} }

// FB makes a 0/1 field from a bool (booleans stay numeric so CSV and
// JSONL rows keep a uniform value type).
func FB(key string, v bool) Field {
	if v {
		return Field{Key: key, Num: 1}
	}
	return Field{Key: key, Num: 0}
}

// FS makes a string field.
func FS(key, v string) Field { return Field{Key: key, Str: v, IsStr: true} }

// Nop is a Recorder that discards everything. Enabled returns false, so
// On(Nop{}) guards skip Field construction entirely.
type Nop struct{}

// Enabled implements Recorder.
func (Nop) Enabled() bool { return false }

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// Gauge implements Recorder.
func (Nop) Gauge(string, float64, float64) {}

// Observe implements Recorder.
func (Nop) Observe(string, float64) {}

// Event implements Recorder.
func (Nop) Event(string, float64, ...Field) {}
