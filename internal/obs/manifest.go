package obs

import "runtime"

// Manifest fully describes one instrumented run so it can be reproduced:
// what was simulated (workload, system), how (seed, config), with what
// toolchain (Go version), and how big the run was (simulated time,
// events fired, event throughput in simulated time).
//
// Wall-clock duration is deliberately split out: WallSec and the derived
// events-per-wall-second rate are machine-dependent, so the exporters
// omit them to keep -obs-out artifacts byte-identical across runs with
// the same seed. CLIs report wall time on stderr instead.
type Manifest struct {
	// Schema versions the export format.
	Schema string `json:"schema"`
	// Workload and System identify the evaluated pair.
	Workload string `json:"workload"`
	System   string `json:"system"`
	// Seed is the top-level simulation seed.
	Seed uint64 `json:"seed"`
	// Config holds the remaining run parameters as sorted key/value
	// pairs (encoding/json sorts map keys, keeping exports stable).
	Config map[string]string `json:"config,omitempty"`
	// GoVersion records the toolchain the run was built with.
	GoVersion string `json:"go_version"`
	// SimTimeSec is the total simulated time covered by the run.
	SimTimeSec float64 `json:"sim_time_sec"`
	// Events is the number of DES events fired (0 for trace replays).
	Events int64 `json:"events,omitempty"`
	// EventsPerSimSec is Events/SimTimeSec, the deterministic
	// event-throughput figure.
	EventsPerSimSec float64 `json:"events_per_sim_sec,omitempty"`

	// WallSec is the wall-clock duration of the run. Excluded from the
	// deterministic exports (see type comment).
	WallSec float64 `json:"-"`
}

// NewManifest returns a Manifest for the current schema and toolchain.
func NewManifest(workload, system string, seed uint64) Manifest {
	return Manifest{
		Schema:    "warehousesim-obs/v1",
		Workload:  workload,
		System:    system,
		Seed:      seed,
		GoVersion: runtime.Version(),
		Config:    map[string]string{},
	}
}

// SetEvents records the event count and derives EventsPerSimSec.
func (m *Manifest) SetEvents(events int64) {
	m.Events = events
	if m.SimTimeSec > 0 {
		m.EventsPerSimSec = float64(events) / m.SimTimeSec
	}
}
