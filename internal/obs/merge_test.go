package obs

import (
	"bytes"
	"testing"
)

func TestHistMerge(t *testing.T) {
	a, b := &Hist{Name: "h"}, &Hist{Name: "h"}
	whole := &Hist{Name: "h"}
	// Dyadic values: their partial sums are exact in float64, so the
	// part-wise sum order of Merge cannot differ from sequential adds.
	vals := []float64{0.125, 0.5, 2, 0, -1, 3.5, 0.25}
	for i, v := range vals {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		whole.Add(v)
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged count/min/max = %d/%g/%g, want %d/%g/%g",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Errorf("merged mean %g != %g", a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("merged q%.2f %g != %g", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging into an empty histogram reproduces the source exactly.
	empty := &Hist{Name: "h"}
	empty.Merge(whole)
	if empty.Count() != whole.Count() || empty.Min() != whole.Min() {
		t.Error("merge into empty histogram lost observations")
	}
}

// TestMergeFromDeterministic: when parts never collide in time,
// folding per-part sinks must reproduce what single-sink recording
// would have produced, byte for byte.
func TestMergeFromDeterministic(t *testing.T) {
	type obsRec struct {
		part   int
		t      float64
		stream string
	}
	// A time-ordered event log split across three parts, times strictly
	// increasing so single-sink emission order and part-merge order
	// coincide; times are dyadic so histogram sums stay exact under
	// either accumulation order.
	log := []obsRec{
		{0, 1.0, "req"}, {1, 1.25, "req"}, {2, 1.5, "req"},
		{0, 2.0, "req"}, {1, 2.25, "span"}, {0, 2.5, "req"},
		{2, 3.0, "req"}, {1, 3.5, "req"},
	}
	build := func(split bool) *Sink {
		parts := []*Sink{NewSink(), NewSink(), NewSink()}
		single := NewSink()
		for i, r := range log {
			var dst *Sink
			if split {
				dst = parts[r.part]
			} else {
				dst = single
			}
			dst.Count("requests", 1)
			dst.Observe("latency", r.t/4)
			dst.Gauge("util.p"+string(rune('0'+r.part)), r.t, float64(i))
			dst.Event(r.stream, r.t, F("i", float64(i)), F("part", float64(r.part)))
		}
		if !split {
			return single
		}
		out := NewSink()
		out.MergeFrom(parts...)
		return out
	}
	want, got := build(false), build(true)
	var wb, gb bytes.Buffer
	if err := want.WriteJSONL(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSONL(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Errorf("merged export differs from single-sink export:\n--- single\n%s\n--- merged\n%s", wb.String(), gb.String())
	}
	if got.CounterValue("requests") != int64(len(log)) {
		t.Errorf("merged counter %d, want %d", got.CounterValue("requests"), len(log))
	}
}

// TestMergeFromSharedSeriesOrder: when two parts recorded the same
// series name, the fold appends their points in part order — the
// caller's enclosure ordering, never the sharding's.
func TestMergeFromSharedSeriesOrder(t *testing.T) {
	a, b := NewSink(), NewSink()
	a.Gauge("util.cpu", 1.0, 0.1)
	a.Gauge("util.cpu", 3.0, 0.3)
	b.Gauge("util.cpu", 2.0, 0.2)
	out := NewSink()
	out.MergeFrom(a, b)
	pts := out.SeriesByName("util.cpu").Points
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// Part a's points first (t=1, t=3), then part b's (t=2): an append,
	// not a time interleave.
	wantT := []float64{1, 3, 2}
	for i, p := range pts {
		if p.T != wantT[i] {
			t.Errorf("point %d at t=%g, want t=%g", i, p.T, wantT[i])
		}
	}
	// Histograms with the same name merge exactly: the fold sees every
	// part's observations, whichever part recorded them.
	ha, hb := NewSink(), NewSink()
	ha.Observe("latency", 0.25)
	ha.Observe("latency", 4)
	hb.Observe("latency", 1)
	hm := NewSink()
	hm.MergeFrom(ha, hb)
	if got := hm.HistByName("latency"); got.Count() != 3 || got.Min() != 0.25 || got.Max() != 4 {
		t.Errorf("hist merge = count %d min %g max %g", got.Count(), got.Min(), got.Max())
	}
}

// TestMergeFromEmptyAndInto: folding an empty part is a no-op, and
// folding into an empty sink reproduces the source export.
func TestMergeFromEmptyAndInto(t *testing.T) {
	src := NewSink()
	src.Count("requests", 7)
	src.Observe("latency", 0.5)
	src.Gauge("util.cpu", 1.0, 0.25)
	src.Event("req", 1.0, F("i", 1))
	var want bytes.Buffer
	if err := src.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	// No-op: merge an empty part into a populated sink.
	src.MergeFrom(NewSink())
	var after bytes.Buffer
	if err := src.WriteJSONL(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), after.Bytes()) {
		t.Error("merging an empty part changed the sink")
	}

	// Reproduce: merge the populated sink into an empty one.
	dst := NewSink()
	dst.MergeFrom(src)
	var got bytes.Buffer
	if err := dst.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("merge into empty sink lost data:\n--- want\n%s\n--- got\n%s", want.String(), got.String())
	}
}

// TestMergeFromSelfPanics: a sink given as its own merge part would
// double its counters and walk an event stream being appended to.
func TestMergeFromSelfPanics(t *testing.T) {
	s := NewSink()
	s.Count("requests", 1)
	defer func() {
		if recover() == nil {
			t.Error("MergeFrom(self) did not panic")
		}
	}()
	s.MergeFrom(s)
}

// TestMergeFromTieOrder: events at identical times merge in part
// order — the partition-independent tie-break (part order is fixed by
// the model, e.g. enclosure index, never by the sharding).
func TestMergeFromTieOrder(t *testing.T) {
	a, b := NewSink(), NewSink()
	a.Event("s", 1.0, F("part", 0))
	a.Event("s", 2.0, F("part", 0))
	b.Event("s", 1.0, F("part", 1))
	b.Event("s", 2.0, F("part", 1))
	out := NewSink()
	out.MergeFrom(a, b)
	evs := out.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	wantParts := []float64{0, 1, 0, 1}
	for i, e := range evs {
		if e.Fields[0].Num != wantParts[i] {
			t.Errorf("event %d at t=%g from part %g, want part %g", i, e.T, e.Fields[0].Num, wantParts[i])
		}
	}
}
