package obs

import (
	"reflect"
	"testing"
)

// TestEventCopiesFields pins the Recorder contract: the fields slice is
// only valid during the call, so the sink must copy. Emitters (span
// tracer, cluster trial path) reuse scratch buffers across events.
func TestEventCopiesFields(t *testing.T) {
	s := NewSink()
	scratch := make([]Field, 0, 4)
	scratch = append(scratch, FS("id", "first"), F("v", 1))
	s.Event("stream", 1, scratch...)
	// Reuse the same backing array with different contents.
	scratch = scratch[:0]
	scratch = append(scratch, FS("id", "second"), F("v", 2))
	s.Event("stream", 2, scratch...)

	evs := s.Events()
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want 2", len(evs))
	}
	if got := evs[0].Fields[0].Str; got != "first" {
		t.Fatalf("first event's field mutated to %q — sink aliased the caller's buffer", got)
	}
	if got := evs[1].Fields[0].Str; got != "second" {
		t.Fatalf("second event field = %q, want \"second\"", got)
	}
}

func TestEventRingKeepsMostRecent(t *testing.T) {
	s := NewSink()
	s.SetEventRing(3)
	for i := 1; i <= 5; i++ {
		s.Event("w", float64(i), F("i", float64(i)))
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("ring retained %d events, want 3", len(evs))
	}
	for k, want := range []float64{3, 4, 5} {
		if evs[k].T != want {
			t.Fatalf("ring order: event %d at t=%g, want %g (oldest-first)", k, evs[k].T, want)
		}
	}
	if got := s.DroppedEvents(); got != 2 {
		t.Fatalf("DroppedEvents = %d, want 2 overwrites", got)
	}
	if got := s.EventCount("w"); got != 3 {
		t.Fatalf("EventCount = %d, want 3", got)
	}
	// The snapshot must report retained (3), not total emitted.
	snap, err := s.Snapshot(Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
}

func TestEventRingSlotReuseDoesNotCorrupt(t *testing.T) {
	s := NewSink()
	s.SetEventRing(2)
	scratch := make([]Field, 0, 2)
	for i := 0; i < 10; i++ {
		scratch = append(scratch[:0], F("i", float64(i)))
		s.Event("w", float64(i), scratch...)
	}
	want := []EventRecord{
		{Stream: "w", T: 8, Fields: []Field{F("i", 8)}},
		{Stream: "w", T: 9, Fields: []Field{F("i", 9)}},
	}
	got := s.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ring contents %+v, want %+v", got, want)
	}
}

func TestSetEventRingAfterRecordPanics(t *testing.T) {
	s := NewSink()
	s.Event("w", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetEventRing after recording did not panic")
		}
	}()
	s.SetEventRing(4)
}

func TestSetEventRingDisable(t *testing.T) {
	s := NewSink()
	s.SetEventRing(3)
	s.SetEventRing(0) // back to append mode before any events
	for i := 0; i < 5; i++ {
		s.Event("w", float64(i))
	}
	if got := len(s.Events()); got != 5 {
		t.Fatalf("append mode after SetEventRing(0) retained %d, want 5", got)
	}
	if got := s.DroppedEvents(); got != 0 {
		t.Fatalf("DroppedEvents = %d, want 0", got)
	}
}

// TestEventArenaDoesNotAlias crosses a chunk boundary and verifies no
// record's fields were overwritten by later appends.
func TestEventArenaDoesNotAlias(t *testing.T) {
	s := NewSink()
	const n = 3000 // 3000 * 2 fields > fieldArenaChunk
	for i := 0; i < n; i++ {
		s.Event("w", float64(i), F("i", float64(i)), F("j", float64(2*i)))
	}
	evs := s.Events()
	if len(evs) != n {
		t.Fatalf("retained %d events, want %d", len(evs), n)
	}
	for i, e := range evs {
		if e.Fields[0].Num != float64(i) || e.Fields[1].Num != float64(2*i) {
			t.Fatalf("event %d fields corrupted: %+v", i, e.Fields)
		}
	}
}
