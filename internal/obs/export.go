package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The exporters write every record kind in a fixed order — manifest,
// counters, histograms, series points, events — with names sorted and
// points/events in emission order, so two runs with the same seed
// produce byte-identical files.

type jsonlCounter struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonlHistBucket struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

type jsonlHist struct {
	Type      string            `json:"type"`
	Name      string            `json:"name"`
	Count     int64             `json:"count"`
	Underflow int64             `json:"underflow,omitempty"`
	Mean      float64           `json:"mean"`
	Min       float64           `json:"min"`
	Max       float64           `json:"max"`
	P50       float64           `json:"p50"`
	P95       float64           `json:"p95"`
	P99       float64           `json:"p99"`
	Buckets   []jsonlHistBucket `json:"buckets,omitempty"`
}

type jsonlSample struct {
	Type   string  `json:"type"`
	Series string  `json:"series"`
	T      float64 `json:"t"`
	V      float64 `json:"v"`
}

type jsonlEvent struct {
	Type   string         `json:"type"`
	Stream string         `json:"stream"`
	T      float64        `json:"t"`
	Fields map[string]any `json:"f,omitempty"`
}

type jsonlManifest struct {
	Type string `json:"type"`
	Manifest
}

// WriteJSONL exports the sink as JSON Lines: one manifest line, then
// one line per counter, histogram, series point and event record.
func (s *Sink) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	if err := enc.Encode(jsonlManifest{Type: "manifest", Manifest: s.manifest}); err != nil {
		return err
	}
	for _, name := range sortedKeys(s.counters) {
		if err := enc.Encode(jsonlCounter{Type: "counter", Name: name, Value: s.counters[name]}); err != nil {
			return err
		}
	}
	if s.dropped > 0 {
		if err := enc.Encode(jsonlCounter{Type: "counter", Name: "obs.dropped_events", Value: s.dropped}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.hists) {
		h := s.hists[name]
		rec := jsonlHist{
			Type: "hist", Name: name,
			Count: h.count, Underflow: h.underflow,
			Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
		for i, n := range h.buckets {
			if n > 0 {
				rec.Buckets = append(rec.Buckets, jsonlHistBucket{LE: histUpperBound(i), N: n})
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.series) {
		for _, p := range s.series[name].Points {
			if err := enc.Encode(jsonlSample{Type: "sample", Series: name, T: p.T, V: p.V}); err != nil {
				return err
			}
		}
	}
	for _, e := range s.Events() {
		rec := jsonlEvent{Type: "event", Stream: e.Stream, T: e.T}
		if len(e.Fields) > 0 {
			rec.Fields = make(map[string]any, len(e.Fields))
			for _, f := range e.Fields {
				if f.IsStr {
					rec.Fields[f.Key] = f.Str
				} else {
					rec.Fields[f.Key] = f.Num
				}
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV exports the sink as one flat CSV table with the columns
// kind,name,t,value,fields. Counters and histogram summary statistics
// leave t empty; events pack their fields as "k=v;..." in emission
// order.
func (s *Sink) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(rec ...string) {
		// csv.Writer defers errors to Error(); checked once at the end.
		_ = cw.Write(rec)
	}
	fnum := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	write("kind", "name", "t", "value", "fields")
	m := s.manifest
	manifest := []Field{
		FS("schema", m.Schema), FS("workload", m.Workload), FS("system", m.System),
		FS("seed", strconv.FormatUint(m.Seed, 10)), FS("go_version", m.GoVersion),
		F("sim_time_sec", m.SimTimeSec), F("events", float64(m.Events)),
		F("events_per_sim_sec", m.EventsPerSimSec),
	}
	for _, k := range sortedKeys(m.Config) {
		manifest = append(manifest, FS("config."+k, m.Config[k]))
	}
	write("manifest", "run", "", "", packFields(manifest))

	for _, name := range sortedKeys(s.counters) {
		write("counter", name, "", strconv.FormatInt(s.counters[name], 10), "")
	}
	if s.dropped > 0 {
		write("counter", "obs.dropped_events", "", strconv.FormatInt(s.dropped, 10), "")
	}
	for _, name := range sortedKeys(s.hists) {
		h := s.hists[name]
		write("hist", name, "", strconv.FormatInt(h.count, 10), packFields([]Field{
			F("mean", h.Mean()), F("min", h.Min()), F("max", h.Max()),
			F("p50", h.Quantile(0.50)), F("p95", h.Quantile(0.95)), F("p99", h.Quantile(0.99)),
		}))
	}
	for _, name := range sortedKeys(s.series) {
		for _, p := range s.series[name].Points {
			write("sample", name, fnum(p.T), fnum(p.V), "")
		}
	}
	for _, e := range s.Events() {
		write("event", e.Stream, fnum(e.T), "", packFields(e.Fields))
	}
	cw.Flush()
	return cw.Error()
}

func packFields(fields []Field) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		if f.IsStr {
			parts[i] = f.Key + "=" + f.Str
		} else {
			parts[i] = f.Key + "=" + strconv.FormatFloat(f.Num, 'g', -1, 64)
		}
	}
	return strings.Join(parts, ";")
}

// WriteFile exports the sink to path, choosing the format from the
// extension: ".csv" writes CSV, anything else JSONL.
func (s *Sink) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	var werr error
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		werr = s.WriteCSV(f)
	} else {
		werr = s.WriteJSONL(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing %s: %w", path, werr)
	}
	return nil
}
