package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func demoSink() *Sink {
	s := NewSink()
	m := NewManifest("websearch", "emb1", 7)
	m.SimTimeSec = 150
	m.Config["measure_sec"] = "120"
	m.SetEvents(3000)
	m.WallSec = 1.2345 // must NOT appear in exports
	s.SetManifest(m)
	s.Count("requests", 10)
	s.Count("qos_violations", 1)
	s.Observe("latency_sec", 0.02)
	s.Observe("latency_sec", 0.04)
	s.Gauge("util.cpu", 1, 0.5)
	s.Gauge("util.cpu", 2, 0.625)
	s.Event("request", 1.5, F("latency_sec", 0.02), FB("qos_ok", true))
	s.Event("request", 1.8, F("latency_sec", 0.04), FS("station", "cpu"))
	return s
}

func TestWriteJSONLShape(t *testing.T) {
	var buf bytes.Buffer
	if err := demoSink().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// manifest + 2 counters + 1 hist + 2 samples + 2 events
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["type"] != "manifest" || first["workload"] != "websearch" {
		t.Fatalf("first line is not the manifest: %v", first)
	}
	if _, ok := first["wall_sec"]; ok {
		t.Fatal("wall time leaked into the deterministic export")
	}
	for _, l := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", l, err)
		}
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := demoSink().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := demoSink().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical sinks exported different JSONL bytes")
	}
}

func TestWriteCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := demoSink().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "kind,name,t,value,fields" {
		t.Fatalf("header = %q", lines[0])
	}
	// header + manifest + 2 counters + 1 hist + 2 samples + 2 events
	if len(lines) != 9 {
		t.Fatalf("got %d lines, want 9:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "station=cpu") {
		t.Fatal("string event field missing from CSV")
	}
	if strings.Contains(out, "1.2345") {
		t.Fatal("wall time leaked into the CSV export")
	}
}

func TestWriteFilePicksFormatByExtension(t *testing.T) {
	dir := t.TempDir()
	s := demoSink()
	jl := filepath.Join(dir, "run.jsonl")
	cs := filepath.Join(dir, "run.csv")
	if err := s.WriteFile(jl); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile(cs); err != nil {
		t.Fatal(err)
	}
	var jlBuf, csBuf bytes.Buffer
	if err := s.WriteJSONL(&jlBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCSV(&csBuf); err != nil {
		t.Fatal(err)
	}
	checkFile(t, jl, jlBuf.Bytes())
	checkFile(t, cs, csBuf.Bytes())
}
