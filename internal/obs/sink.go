package obs

import (
	"math"
	"sort"
)

// Point is one sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// EventRecord is one structured event of a stream.
type EventRecord struct {
	Stream string
	T      float64
	Fields []Field
}

// histBucketsPerDecade controls histogram resolution: buckets are
// log-spaced at 5 per decade, covering ~1e-12 .. 1e+12 (values outside
// clamp into the edge buckets, zeros and negatives into an underflow
// bucket). The layout is fixed so exports are deterministic.
const (
	histBucketsPerDecade = 5
	histMinExp           = -12
	histMaxExp           = 12
	histBuckets          = (histMaxExp - histMinExp) * histBucketsPerDecade
)

// Hist is a fixed-layout log-bucketed histogram with exact count, sum,
// min and max. It retains no samples, so recording is O(1) and the
// memory footprint is constant regardless of run length.
type Hist struct {
	Name      string
	count     int64
	sum       float64
	min, max  float64
	underflow int64 // v <= 0 (or NaN)
	buckets   [histBuckets]int64
}

func histIndex(v float64) int {
	e := math.Log10(v)
	i := int(math.Floor((e - histMinExp) * histBucketsPerDecade))
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histUpperBound returns the inclusive upper bound of bucket i.
func histUpperBound(i int) float64 {
	return math.Pow(10, histMinExp+float64(i+1)/histBucketsPerDecade)
}

// Add records one observation.
func (h *Hist) Add(v float64) {
	if v <= 0 || math.IsNaN(v) {
		h.underflow++
		h.count++
		return
	}
	if h.count == h.underflow { // first positive observation
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.buckets[histIndex(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (including underflow).
func (h *Hist) Count() int64 { return h.count }

// Mean returns the mean of positive observations (0 when empty).
func (h *Hist) Mean() float64 {
	n := h.count - h.underflow
	if n == 0 {
		return 0
	}
	return h.sum / float64(n)
}

// Min and Max bound the positive observations (0 when none).
func (h *Hist) Min() float64 { return h.min }

// Max returns the largest positive observation (0 when none).
func (h *Hist) Max() float64 { return h.max }

// Quantile returns an upper-bound estimate of the q-th quantile
// (0<=q<=1) over positive observations using the bucket upper bounds.
func (h *Hist) Quantile(q float64) float64 {
	n := h.count - h.underflow
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			ub := histUpperBound(i)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Sink is the standard in-memory Recorder. It keeps everything it is
// given — counters, time series, histograms and event streams — and
// exports them deterministically (sorted names, insertion-ordered
// points and events) via WriteJSONL / WriteCSV.
//
// Sink is not safe for concurrent use; the simulators are
// single-threaded by design.
type Sink struct {
	manifest Manifest

	counters map[string]int64
	series   map[string]*Series
	hists    map[string]*Hist
	events   []EventRecord

	// arena is chunked backing storage for retained event fields. Event
	// callers may pass reused scratch buffers (see Recorder), so the sink
	// copies fields here; chunking keeps that one bulk append per chunk
	// instead of one allocation per record.
	arena []Field

	// MaxEvents caps the total retained event records (0 = unlimited).
	// Overflow is counted, never silent: see DroppedEvents.
	MaxEvents int
	dropped   int64

	// ring, when non-nil, replaces the append-only events slice with a
	// fixed-capacity ring keeping the most recent records (SetEventRing).
	ring     []EventRecord
	ringNext int
	ringFull bool
}

// NewSink returns an empty, enabled Sink.
func NewSink() *Sink {
	return &Sink{
		counters: map[string]int64{},
		series:   map[string]*Series{},
		hists:    map[string]*Hist{},
	}
}

// SetManifest attaches the run manifest exported as the first JSONL line.
func (s *Sink) SetManifest(m Manifest) { s.manifest = m }

// Manifest returns the attached manifest.
func (s *Sink) Manifest() Manifest { return s.manifest }

// Enabled implements Recorder.
func (s *Sink) Enabled() bool { return true }

// Count implements Recorder.
func (s *Sink) Count(name string, delta int64) { s.counters[name] += delta }

// CounterValue returns the current value of a counter (0 if absent).
func (s *Sink) CounterValue(name string) int64 { return s.counters[name] }

// Gauge implements Recorder.
func (s *Sink) Gauge(name string, t, v float64) {
	sr := s.series[name]
	if sr == nil {
		sr = &Series{Name: name}
		s.series[name] = sr
	}
	sr.Points = append(sr.Points, Point{T: t, V: v})
}

// SeriesByName returns the named time series (nil if absent).
func (s *Sink) SeriesByName(name string) *Series { return s.series[name] }

// SeriesNames returns the recorded series names, sorted.
func (s *Sink) SeriesNames() []string { return sortedKeys(s.series) }

// Observe implements Recorder.
func (s *Sink) Observe(name string, v float64) {
	h := s.hists[name]
	if h == nil {
		h = &Hist{Name: name}
		s.hists[name] = h
	}
	h.Add(v)
}

// HistByName returns the named histogram (nil if absent).
func (s *Sink) HistByName(name string) *Hist { return s.hists[name] }

// fieldArenaChunk is the allocation granularity of the field arena:
// large enough that steady-state event emission amortizes to well under
// one allocation per record, small enough not to matter for tiny runs.
const fieldArenaChunk = 4096

// copyFields copies an Event call's fields into the arena and returns a
// full-slice-expression view, so later arena appends can never alias or
// overwrite a retained record.
func (s *Sink) copyFields(fields []Field) []Field {
	n := len(fields)
	if n == 0 {
		return nil
	}
	if cap(s.arena)-len(s.arena) < n {
		size := fieldArenaChunk
		if n > size {
			size = n
		}
		s.arena = make([]Field, 0, size)
	}
	start := len(s.arena)
	s.arena = append(s.arena, fields...)
	return s.arena[start : start+n : start+n]
}

// SetEventRing switches event retention to a fixed-capacity ring that
// keeps the most recent n records, overwriting the oldest; overwritten
// records count as dropped. Each ring slot owns its field buffer and
// reuses it on overwrite, so steady-state emission is allocation-free —
// the right mode for long watch-style runs where only the recent window
// matters. Must be called before any events are recorded; n <= 0
// restores the default append-only retention.
func (s *Sink) SetEventRing(n int) {
	if len(s.events) > 0 || s.ringTotal() > 0 {
		panic("obs: SetEventRing after events were recorded")
	}
	if n <= 0 {
		s.ring = nil
		s.ringNext, s.ringFull = 0, false
		return
	}
	s.ring = make([]EventRecord, n)
	s.ringNext, s.ringFull = 0, false
}

func (s *Sink) ringTotal() int {
	if s.ringFull {
		return len(s.ring)
	}
	return s.ringNext
}

// retainedEvents counts the currently kept records in either retention
// mode without assembling the ring.
func (s *Sink) retainedEvents() int {
	if s.ring != nil {
		return s.ringTotal()
	}
	return len(s.events)
}

// Event implements Recorder. Fields are copied (see Recorder), so
// callers may reuse their field buffers.
func (s *Sink) Event(stream string, t float64, fields ...Field) {
	if s.ring != nil {
		slot := &s.ring[s.ringNext]
		if s.ringFull {
			s.dropped++ // the overwritten record
		}
		slot.Stream, slot.T = stream, t
		slot.Fields = append(slot.Fields[:0], fields...)
		s.ringNext++
		if s.ringNext == len(s.ring) {
			s.ringNext = 0
			s.ringFull = true
		}
		return
	}
	if s.MaxEvents > 0 && len(s.events) >= s.MaxEvents {
		s.dropped++
		return
	}
	s.events = append(s.events, EventRecord{Stream: stream, T: t, Fields: s.copyFields(fields)})
}

// Events returns all retained event records in emission order. In ring
// mode the slice is assembled oldest-first on each call.
func (s *Sink) Events() []EventRecord {
	if s.ring == nil {
		return s.events
	}
	if !s.ringFull {
		return s.ring[:s.ringNext]
	}
	out := make([]EventRecord, 0, len(s.ring))
	out = append(out, s.ring[s.ringNext:]...)
	out = append(out, s.ring[:s.ringNext]...)
	return out
}

// EventCount returns the number of retained records in a stream.
func (s *Sink) EventCount(stream string) int {
	n := 0
	for _, e := range s.Events() {
		if e.Stream == stream {
			n++
		}
	}
	return n
}

// DroppedEvents returns how many event records were discarded — by the
// MaxEvents cap in append mode, or by overwrite in ring mode.
func (s *Sink) DroppedEvents() int64 { return s.dropped }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
