// Package introspect serves live run introspection over HTTP: the
// latest obs snapshot (progress, counters, gauges, histogram summaries)
// plus the windowed-SLO and shard-telemetry documents, alongside the
// standard pprof profiling endpoints.
//
// It lives apart from package obs on purpose: obs is linked into every
// simulator and the benchmark harness, and pulling net/http into those
// binaries shifts their allocation profile (the B/op figures the bench
// records track). Only CLIs that actually serve HTTP import this
// package.
package introspect

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the live run-introspection endpoint: the simulation
// goroutine publishes immutable snapshot documents (typically from a
// probe tick, via obs.Sink.Snapshot), and an HTTP server serves the
// latest one alongside the standard pprof handlers. Because handlers
// only ever read the last published bytes, an attached introspection
// server can never perturb the DES — there is no locking on the
// simulation side beyond the publish itself, and no simulator state is
// reached from handlers.
//
// Each document endpoint answers 503 with a JSON error body until its
// first publish: "no data yet" is distinguishable from "an empty
// snapshot", so pollers starting before the run produces data can tell
// a warming-up server from a broken one.
type Server struct {
	mu      sync.RWMutex
	snap    []byte
	windows []byte
	shards  []byte
	energy  []byte
}

// New returns an endpoint with no published documents; every document
// endpoint serves 503 until its first publish.
func New() *Server {
	return &Server{}
}

// Publish replaces the served snapshot. The caller must not modify b
// afterwards.
func (in *Server) Publish(b []byte) {
	in.mu.Lock()
	in.snap = b
	in.mu.Unlock()
}

// PublishWindows replaces the served windowed-SLO document (see
// window.LiveSnapshot). The caller must not modify b afterwards.
func (in *Server) PublishWindows(b []byte) {
	in.mu.Lock()
	in.windows = b
	in.mu.Unlock()
}

// PublishShards replaces the served shard-telemetry document. The
// caller must not modify b afterwards.
func (in *Server) PublishShards(b []byte) {
	in.mu.Lock()
	in.shards = b
	in.mu.Unlock()
}

// PublishEnergy replaces the served energy document (see
// energy.LiveSnapshot). The caller must not modify b afterwards.
func (in *Server) PublishEnergy(b []byte) {
	in.mu.Lock()
	in.energy = b
	in.mu.Unlock()
}

// Latest returns the most recently published snapshot bytes (nil
// before the first Publish).
func (in *Server) Latest() []byte {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.snap
}

// serveDoc writes the latest published document for endpoint, or a 503
// JSON error body before the first publish.
func (in *Server) serveDoc(w http.ResponseWriter, endpoint string, read func() []byte) {
	in.mu.RLock()
	b := read()
	in.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if b == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":"no snapshot published yet","endpoint":%q}`+"\n", endpoint)
		return
	}
	w.Write(b)
}

// Handler returns the introspection mux:
//
//	/             index page
//	/obs          latest snapshot (progress, counters, gauges, hists)
//	/obs/windows  live windowed-SLO summaries per partition
//	/obs/shards   live shard-kernel self-telemetry
//	/obs/energy   live per-partition energy windows (watts, joules)
//	/debug/pprof  the standard runtime profiling endpoints
func (in *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "warehousesim live introspection\n\n"+
			"  /obs           latest obs snapshot (progress, counters, gauges, hists)\n"+
			"  /obs/windows   live windowed-SLO summaries per partition\n"+
			"  /obs/shards    live shard-kernel self-telemetry\n"+
			"  /obs/energy    live per-partition energy windows (watts, joules)\n"+
			"  /debug/pprof/  runtime profiles (heap, profile, trace, ...)\n")
	})
	mux.HandleFunc("/obs", func(w http.ResponseWriter, r *http.Request) {
		in.serveDoc(w, "/obs", func() []byte { return in.snap })
	})
	mux.HandleFunc("/obs/windows", func(w http.ResponseWriter, r *http.Request) {
		in.serveDoc(w, "/obs/windows", func() []byte { return in.windows })
	})
	mux.HandleFunc("/obs/shards", func(w http.ResponseWriter, r *http.Request) {
		in.serveDoc(w, "/obs/shards", func() []byte { return in.shards })
	})
	mux.HandleFunc("/obs/energy", func(w http.ResponseWriter, r *http.Request) {
		in.serveDoc(w, "/obs/energy", func() []byte { return in.energy })
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection server on addr (e.g. ":6060"; use
// ":0" for an ephemeral port). It returns the bound address and a stop
// function; the server also dies with the process, so CLIs may ignore
// stop. Listen errors (port taken, bad address) surface synchronously.
func (in *Server) Serve(addr string) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: in.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// ServeAddr is the entry-point convenience for an optional -http flag:
// it returns (nil, "", nil) when addr is empty, otherwise a new Server
// already listening on addr for the process lifetime. Keeping this
// here — rather than in cliflags — keeps net/http out of the flag
// package's import graph, so only mains that opt in link the HTTP
// stack (see DESIGN.md §11, nohttp).
func ServeAddr(addr string) (*Server, string, error) {
	if addr == "" {
		return nil, "", nil
	}
	srv := New()
	bound, _, err := srv.Serve(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}
