package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"warehousesim/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestObsEndpointServesLatestSnapshot(t *testing.T) {
	in := New()
	srv := httptest.NewServer(in.Handler())
	defer srv.Close()

	// Before any publish: 503 with a JSON error body, so a poller can
	// tell a warming-up server from a broken one.
	code, body := get(t, srv, "/obs")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("initial /obs = %d %q, want 503", code, body)
	}
	var errDoc struct {
		Error    string `json:"error"`
		Endpoint string `json:"endpoint"`
	}
	if err := json.Unmarshal(body, &errDoc); err != nil || errDoc.Error == "" || errDoc.Endpoint != "/obs" {
		t.Fatalf("initial /obs body = %q (parse err %v)", body, err)
	}

	// Publish a real sink snapshot and read it back.
	sink := obs.NewSink()
	sink.Count("requests", 42)
	sink.Gauge("util.cpu", 1.0, 0.5)
	sink.Gauge("util.cpu", 2.0, 0.75)
	sink.Observe("latency_sec", 0.010)
	snap, err := sink.Snapshot(obs.Progress{Phase: "replay", SimTimeSec: 30, HorizonSec: 120})
	if err != nil {
		t.Fatal(err)
	}
	in.Publish(snap)

	code, body = get(t, srv, "/obs")
	if code != http.StatusOK {
		t.Fatalf("/obs status %d", code)
	}
	var doc struct {
		Progress obs.Progress     `json:"progress"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]struct {
			T float64 `json:"T"`
			V float64 `json:"V"`
		} `json:"gauges"`
		Hists map[string]struct {
			Count int64 `json:"count"`
		} `json:"hists"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/obs returned invalid JSON: %v\n%s", err, body)
	}
	if doc.Progress.Phase != "replay" || doc.Progress.Fraction != 0.25 {
		t.Errorf("progress = %+v, want replay at fraction 0.25", doc.Progress)
	}
	if doc.Counters["requests"] != 42 {
		t.Errorf("counters = %v", doc.Counters)
	}
	if g := doc.Gauges["util.cpu"]; g.V != 0.75 {
		t.Errorf("gauge shows %+v, want the last point 0.75", g)
	}
	if doc.Hists["latency_sec"].Count != 1 {
		t.Errorf("hists = %v", doc.Hists)
	}
}

// TestWindowsAndShardsEndpoints: the windowed-SLO and shard-telemetry
// documents are published and served independently of the snapshot,
// with the same 503-before-first-publish contract.
func TestWindowsAndShardsEndpoints(t *testing.T) {
	in := New()
	srv := httptest.NewServer(in.Handler())
	defer srv.Close()

	for _, path := range []string{"/obs/windows", "/obs/shards", "/obs/energy"} {
		code, body := get(t, srv, path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("initial %s = %d %q, want 503", path, code, body)
		}
		if !json.Valid(body) {
			t.Fatalf("initial %s body is not JSON: %q", path, body)
		}
	}

	in.PublishWindows([]byte(`{"schema":"warehousesim-windows/v1","parts":[]}`))
	code, body := get(t, srv, "/obs/windows")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/obs/windows after publish = %d %q", code, body)
	}
	// /obs and /obs/shards are still unpublished.
	if code, _ := get(t, srv, "/obs"); code != http.StatusServiceUnavailable {
		t.Fatalf("/obs = %d, want 503 (only windows was published)", code)
	}
	if code, _ := get(t, srv, "/obs/shards"); code != http.StatusServiceUnavailable {
		t.Fatalf("/obs/shards = %d, want 503", code)
	}

	in.PublishShards([]byte(`{"schema":"warehousesim-shards/v1","shards":2}`))
	code, body = get(t, srv, "/obs/shards")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/obs/shards after publish = %d %q", code, body)
	}

	if code, _ := get(t, srv, "/obs/energy"); code != http.StatusServiceUnavailable {
		t.Fatalf("/obs/energy = %d, want 503 (never published)", code)
	}
	in.PublishEnergy([]byte(`{"schema":"warehousesim-energy-live/v1","parts":[]}`))
	code, body = get(t, srv, "/obs/energy")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/obs/energy after publish = %d %q", code, body)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	srv := httptest.NewServer(New().Handler())
	defer srv.Close()
	if code, body := get(t, srv, "/"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("index = %d (%d bytes)", code, len(body))
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path returned %d", code)
	}
}

func TestPprofEndpoints(t *testing.T) {
	srv := httptest.NewServer(New().Handler())
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof index = %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

func TestServeBindsAndStops(t *testing.T) {
	in := New()
	bound, stop, err := in.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in.Publish([]byte(`{}`))
	resp, err := http.Get("http://" + bound + "/obs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("served /obs = %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + bound + "/obs"); err == nil {
		t.Fatal("server still reachable after stop")
	}
}
