package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestOnGuard(t *testing.T) {
	if On(nil) {
		t.Fatal("On(nil) must be false")
	}
	if On(Nop{}) {
		t.Fatal("On(Nop{}) must be false")
	}
	if !On(NewSink()) {
		t.Fatal("On(Sink) must be true")
	}
}

func TestSinkCounters(t *testing.T) {
	s := NewSink()
	s.Count("a", 2)
	s.Count("a", 3)
	s.Count("b", 1)
	if got := s.CounterValue("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	if got := s.CounterValue("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestSinkSeries(t *testing.T) {
	s := NewSink()
	s.Gauge("util.cpu", 1, 0.5)
	s.Gauge("util.cpu", 2, 0.75)
	s.Gauge("qlen.cpu", 1, 3)
	sr := s.SeriesByName("util.cpu")
	if sr == nil || len(sr.Points) != 2 {
		t.Fatalf("util.cpu series = %+v, want 2 points", sr)
	}
	if sr.Points[1] != (Point{T: 2, V: 0.75}) {
		t.Fatalf("second point = %+v", sr.Points[1])
	}
	names := s.SeriesNames()
	if len(names) != 2 || names[0] != "qlen.cpu" || names[1] != "util.cpu" {
		t.Fatalf("series names = %v, want sorted [qlen.cpu util.cpu]", names)
	}
}

func TestHistStatistics(t *testing.T) {
	h := &Hist{Name: "lat"}
	for _, v := range []float64{0.001, 0.01, 0.01, 0.1, 1} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Mean(), (0.001+0.01+0.01+0.1+1)/5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	if h.Min() != 0.001 || h.Max() != 1 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	// Quantiles are bucket upper bounds: p50 must cover the 0.01 mass
	// without exceeding the next decade.
	if q := h.Quantile(0.5); q < 0.01 || q > 0.02 {
		t.Fatalf("p50 = %g, want within [0.01, 0.02]", q)
	}
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("p100 = %g, want clamped to max", q)
	}
}

func TestHistUnderflow(t *testing.T) {
	h := &Hist{}
	h.Add(0)
	h.Add(-1)
	h.Add(math.NaN())
	h.Add(2)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2 || h.Min() != 2 || h.Max() != 2 {
		t.Fatalf("stats over positives wrong: mean=%g min=%g max=%g", h.Mean(), h.Min(), h.Max())
	}
}

func TestSinkEventCapCountsDrops(t *testing.T) {
	s := NewSink()
	s.MaxEvents = 2
	for i := 0; i < 5; i++ {
		s.Event("req", float64(i))
	}
	if len(s.Events()) != 2 || s.DroppedEvents() != 3 {
		t.Fatalf("events=%d dropped=%d, want 2/3", len(s.Events()), s.DroppedEvents())
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs.dropped_events") {
		t.Fatal("dropped events must be reported, not silent")
	}
}

func TestManifestEvents(t *testing.T) {
	m := NewManifest("websearch", "emb1", 42)
	m.SimTimeSec = 100
	m.SetEvents(5000)
	if m.EventsPerSimSec != 50 {
		t.Fatalf("events/sim-sec = %g, want 50", m.EventsPerSimSec)
	}
	if m.Schema == "" || m.GoVersion == "" {
		t.Fatal("manifest missing schema or Go version")
	}
}
