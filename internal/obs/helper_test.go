package obs

import (
	"bytes"
	"os"
	"testing"
)

func checkFile(t *testing.T, path string, want []byte) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s content differs from direct export", path)
	}
}
