package obs

import "encoding/json"

// Progress describes how far a live run has advanced — published as
// part of every introspection snapshot so an operator can see where a
// long simulation is without touching it.
type Progress struct {
	// Phase names the stage of the run ("search", "replay", "done", or
	// an experiment id for suite runs).
	Phase string `json:"phase"`
	// SimTimeSec is the current simulated time; HorizonSec the planned
	// end of the run (0 when open-ended, e.g. batch jobs).
	SimTimeSec float64 `json:"sim_time_sec"`
	HorizonSec float64 `json:"horizon_sec,omitempty"`
	// Fraction is SimTimeSec/HorizonSec when a horizon is known.
	Fraction float64 `json:"fraction,omitempty"`
}

// snapshotDoc is the expvar-style JSON view of a Sink: run progress,
// every counter, the last point of every gauge series, histogram
// summaries, and the event-stream volume.
type snapshotDoc struct {
	Progress Progress                `json:"progress"`
	Manifest Manifest                `json:"manifest"`
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]Point        `json:"gauges,omitempty"`
	Hists    map[string]histSnapshot `json:"hists,omitempty"`
	Events   eventSnapshot           `json:"events"`
}

type histSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

type eventSnapshot struct {
	Retained int   `json:"retained"`
	Dropped  int64 `json:"dropped,omitempty"`
}

// Snapshot marshals the sink's current state plus run progress into an
// immutable JSON document for the introspection server. It must be
// called from the simulation goroutine (the sink is single-threaded);
// the returned bytes are safe to hand to introspect.Server.Publish,
// which the HTTP handlers read concurrently.
func (s *Sink) Snapshot(p Progress) ([]byte, error) {
	if p.HorizonSec > 0 {
		p.Fraction = p.SimTimeSec / p.HorizonSec
	}
	doc := snapshotDoc{
		Progress: p,
		Manifest: s.manifest,
		Events:   eventSnapshot{Retained: s.retainedEvents(), Dropped: s.dropped},
	}
	if len(s.counters) > 0 {
		doc.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			doc.Counters[k] = v
		}
	}
	if len(s.series) > 0 {
		doc.Gauges = make(map[string]Point, len(s.series))
		for k, sr := range s.series {
			if n := len(sr.Points); n > 0 {
				doc.Gauges[k] = sr.Points[n-1]
			}
		}
	}
	if len(s.hists) > 0 {
		doc.Hists = make(map[string]histSnapshot, len(s.hists))
		for k, h := range s.hists {
			doc.Hists[k] = histSnapshot{
				Count: h.Count(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	return json.Marshal(doc)
}
