package energy

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"warehousesim/internal/cooling"
	"warehousesim/internal/cost"
	"warehousesim/internal/obs"
	"warehousesim/internal/power"
)

// testActive is a fixed per-server active breakdown with every class
// populated, so class-level assertions cover the whole mapping.
func testActive() power.Breakdown {
	return power.Breakdown{CPUW: 100, MemoryW: 40, DiskW: 20, BoardW: 15, FanW: 10, FlashW: 5, SwitchW: 2}
}

func testModel() Model {
	return Model{Active: testActive(), Idle: power.DefaultIdleFractions()}
}

func mustNew(t *testing.T, cfg Config) *Collector {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	badIdle := power.DefaultIdleFractions()
	badIdle.CPU = 2
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{WidthSec: 1, Model: testModel()}, true},
		{"zero-width", Config{WidthSec: 0, Model: testModel()}, false},
		{"negative-width", Config{WidthSec: -1, Model: testModel()}, false},
		{"nan-width", Config{WidthSec: math.NaN(), Model: testModel()}, false},
		{"inf-width", Config{WidthSec: math.Inf(1), Model: testModel()}, false},
		{"bad-idle", Config{WidthSec: 1, Model: Model{Active: testActive(), Idle: badIdle}}, false},
		{"nan-active", Config{WidthSec: 1, Model: Model{Active: power.Breakdown{CPUW: math.NaN()}, Idle: power.StaticIdleFractions()}}, false},
		{"negative-active", Config{WidthSec: 1, Model: Model{Active: power.Breakdown{CPUW: -5}, Idle: power.StaticIdleFractions()}}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: New err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// The acceptance-pinned degenerate case: with every idle fraction at
// 1.0, every window's watts equal the static total bit-for-bit, at any
// utilization.
func TestStaticDegenerateBitExact(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, Model: Model{Active: testActive(), Idle: power.StaticIdleFractions()}})
	c.SampleUtil("cpu", 0.5, 0.31)
	c.SampleUtil("disk", 0.5, 0.92)
	c.ObserveRequest(1.5, false) // window 1: no util samples at all
	c.SampleUtil("net", 2.5, 0.11)
	c.Seal(3)

	static := testActive().TotalW()
	for _, w := range c.Windows() {
		if w.Watts != static {
			t.Errorf("window %d: watts %v != static %v (must be bit-exact)", w.Index, w.Watts, static)
		}
		for class, want := range map[string]float64{
			"cpu": 100, "memory": 40, "disk": 20, "board": 15, "fan": 10, "flash": 5, "switch": 2,
		} {
			if got := w.WattsByClass[class]; got != want {
				t.Errorf("window %d class %s: %v != %v", w.Index, class, got, want)
			}
		}
	}
	if tot := c.Totals(); tot.MeanW != static || tot.StaticW != static {
		t.Errorf("totals mean %v static %v, want both %v", tot.MeanW, tot.StaticW, static)
	}
}

func TestWattsAtDriverMapping(t *testing.T) {
	idle := power.IdleFractions{} // fully proportional: watts = active * util
	m := Model{Active: testActive(), Idle: idle}

	// cpu drives cpu, fan, and (absent memblade/net) memory and board.
	b := m.WattsAt(map[string]float64{"cpu": 0.5})
	if b.CPUW != 50 || b.FanW != 5 || b.MemoryW != 20 || b.BoardW != 7.5 {
		t.Errorf("cpu-only mapping: %+v", b)
	}
	if b.DiskW != 0 || b.FlashW != 0 || b.SwitchW != 0 {
		t.Errorf("undriven classes should idle: %+v", b)
	}
	// Rack-model names take precedence over flat stand-ins.
	b = m.WattsAt(map[string]float64{"cpu": 1, "memblade": 0.25, "net": 0.5, "san": 0.75})
	if b.MemoryW != 10 {
		t.Errorf("memblade should drive memory: %+v", b)
	}
	if b.BoardW != 7.5 || b.SwitchW != 1 {
		t.Errorf("net should drive board and switch: %+v", b)
	}
	if b.DiskW != 15 || b.FlashW != 3.75 {
		t.Errorf("san should drive disk and flash: %+v", b)
	}
	// Out-of-range samples clamp.
	b = m.WattsAt(map[string]float64{"cpu": 1.7, "disk": -0.3})
	if b.CPUW != 100 || b.DiskW != 0 {
		t.Errorf("clamping failed: %+v", b)
	}
}

func TestWindowDerivedMetrics(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 2, Model: Model{Active: power.Breakdown{CPUW: 100}, Idle: power.IdleFractions{CPU: 0.5}}})
	// Window 0: cpu util mean 0.5 -> 75 W over 2s = 150 J; 3 requests,
	// 1 violating.
	c.SampleUtil("cpu", 0.5, 0.4)
	c.SampleUtil("cpu", 1.5, 0.6)
	c.ObserveRequest(0.2, false)
	c.ObserveRequest(0.4, true)
	c.ObserveRequest(1.9, false)
	c.Seal(2)

	ws := c.Windows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows", len(ws))
	}
	w := ws[0]
	if math.Abs(w.Watts-75) > 1e-12 || math.Abs(w.Joules-150) > 1e-12 {
		t.Errorf("watts %g joules %g, want 75/150", w.Watts, w.Joules)
	}
	if math.Abs(w.JoulesPerRequest-50) > 1e-12 {
		t.Errorf("J/req = %g, want 50", w.JoulesPerRequest)
	}
	if math.Abs(w.JoulesPerGoodRequest-75) > 1e-12 {
		t.Errorf("J/good-req = %g, want 75", w.JoulesPerGoodRequest)
	}
	if want := (3.0 / 2.0) / 75.0; math.Abs(w.PerfPerWatt-want) > 1e-15 {
		t.Errorf("perf/W = %g, want %g", w.PerfPerWatt, want)
	}
}

func TestSealClampsFinalPartialWindow(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 10, Model: Model{Active: power.Breakdown{CPUW: 10}, Idle: power.StaticIdleFractions()}})
	c.ObserveRequest(12, false)
	c.Seal(15)
	ws := c.Windows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows", len(ws))
	}
	if ws[0].T0 != 10 || ws[0].T1 != 15 {
		t.Errorf("partial window spans [%g,%g], want [10,15]", ws[0].T0, ws[0].T1)
	}
	if math.Abs(ws[0].Joules-50) > 1e-12 {
		t.Errorf("partial window joules %g, want 10W * 5s = 50", ws[0].Joules)
	}
}

func TestTotalsAggregation(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, Model: Model{Active: power.Breakdown{CPUW: 100}, Idle: power.IdleFractions{CPU: 0.5}}})
	c.SampleUtil("cpu", 0.5, 1) // window 0: 100 W
	c.ObserveRequest(0.5, false)
	c.SampleUtil("cpu", 1.5, 0) // window 1: 50 W
	c.ObserveRequest(1.5, true)
	c.Seal(2)

	tot := c.Totals()
	if tot.Windows != 2 || tot.SpanSec != 2 {
		t.Fatalf("totals %+v", tot)
	}
	if math.Abs(tot.Joules-150) > 1e-12 || math.Abs(tot.MeanW-75) > 1e-12 {
		t.Errorf("joules %g meanW %g", tot.Joules, tot.MeanW)
	}
	if tot.Requests != 2 || tot.Violations != 1 {
		t.Errorf("requests %d violations %d", tot.Requests, tot.Violations)
	}
	if math.Abs(tot.JoulesPerRequest-75) > 1e-12 || math.Abs(tot.JoulesPerGoodRequest-150) > 1e-12 {
		t.Errorf("J/req %g J/good %g", tot.JoulesPerRequest, tot.JoulesPerGoodRequest)
	}
	if want := 2.0 / 150.0; math.Abs(tot.PerfPerWatt-want) > 1e-15 {
		t.Errorf("perf/W %g, want %g", tot.PerfPerWatt, want)
	}
}

func TestProportionalityFit(t *testing.T) {
	// Fully proportional single-class model: watts = 100*util, so the
	// fit must recover slope 100, intercept 0.
	c := mustNew(t, Config{WidthSec: 1, Model: Model{Active: power.Breakdown{CPUW: 100}, Idle: power.IdleFractions{}}})
	for i, u := range []float64{0.2, 0.4, 0.6, 0.8} {
		c.SampleUtil("cpu", float64(i)+0.5, u)
	}
	// A cpu-less window must be omitted from the curve.
	c.SampleUtil("disk", 4.5, 0.9)
	c.Seal(5)

	pts := c.Curve()
	if len(pts) != 4 {
		t.Fatalf("curve has %d points, want 4 (cpu-less window omitted)", len(pts))
	}
	p := c.Proportionality()
	if p.Points != 4 {
		t.Errorf("points %d", p.Points)
	}
	if math.Abs(p.SlopeWPerUtil-100) > 1e-9 || math.Abs(p.InterceptW) > 1e-9 {
		t.Errorf("fit slope %g intercept %g, want 100/0", p.SlopeWPerUtil, p.InterceptW)
	}
	if math.Abs(p.MinWatts-20) > 1e-12 || math.Abs(p.MaxWatts-80) > 1e-12 {
		t.Errorf("min %g max %g", p.MinWatts, p.MaxWatts)
	}
}

func TestProportionalityDegenerateInputs(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, Model: testModel()})
	if p := c.Proportionality(); p.Points != 0 || p.SlopeWPerUtil != 0 {
		t.Errorf("empty collector fit %+v", p)
	}
	// Zero utilization variance: slope stays 0, intercept is the mean.
	c.SampleUtil("cpu", 0.5, 0.5)
	c.SampleUtil("cpu", 1.5, 0.5)
	c.Seal(2)
	p := c.Proportionality()
	if p.SlopeWPerUtil != 0 || p.InterceptW <= 0 {
		t.Errorf("zero-variance fit %+v", p)
	}
}

// Partition independence: the same observations split across two part
// collectors and merged must export byte-identically to a single
// collector that saw everything.
func TestMergeMatchesSingleCollectorByteExact(t *testing.T) {
	cfg := Config{WidthSec: 1, Model: testModel()}
	// Each op belongs to one partition; the observation stream is
	// time-ordered globally (the single collector) and per part.
	ops := []struct {
		part int
		f    func(*Collector)
	}{
		{0, func(c *Collector) { c.SampleUtil("cpu", 0.25, 0.5) }},
		{0, func(c *Collector) { c.ObserveRequest(0.5, false) }},
		{1, func(c *Collector) { c.SampleUtil("cpu", 0.75, 0.7) }},
		{1, func(c *Collector) { c.ObserveRequest(1.5, true) }},
		{0, func(c *Collector) { c.SampleUtil("cpu", 2.25, 0.9) }},
		{1, func(c *Collector) { c.SampleUtil("disk", 2.75, 0.4) }},
	}

	single := mustNew(t, cfg)
	for _, op := range ops {
		op.f(single)
	}
	single.Seal(3)

	p0, p1 := mustNew(t, cfg), mustNew(t, cfg)
	for _, op := range ops {
		if op.part == 0 {
			op.f(p0)
		} else {
			op.f(p1)
		}
	}
	p0.Seal(3)
	p1.Seal(3)
	merged := mustNew(t, cfg)
	merged.MergeFrom(p0, p1)

	var a, b bytes.Buffer
	if err := single.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("merged export differs from single-collector export:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestMergePanics(t *testing.T) {
	cfg := Config{WidthSec: 1, Model: testModel()}
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	c := mustNew(t, cfg)
	expectPanic("self-merge", func() { c.MergeFrom(c) })
	other := mustNew(t, Config{WidthSec: 2, Model: testModel()})
	other.Seal(1)
	expectPanic("config-mismatch", func() { c.MergeFrom(other) })
	unsealed := mustNew(t, cfg)
	unsealed.ObserveRequest(0.5, false)
	expectPanic("unsealed", func() { c.MergeFrom(unsealed) })
}

func TestExportFormat(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, Model: testModel()})
	c.SampleUtil("cpu", 0.5, 0.5)
	c.ObserveRequest(0.5, false)
	c.Seal(1)

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // manifest + 1 window + 1 curve point
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var man map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &man); err != nil {
		t.Fatal(err)
	}
	if man["type"] != "energy_manifest" || man["schema"] != SchemaEnergy {
		t.Errorf("manifest %v", man)
	}
	if _, ok := man["idle_fractions"].(map[string]any); !ok {
		t.Errorf("manifest lacks idle_fractions: %v", man)
	}
	for i, wantType := range map[int]string{1: "window", 2: "curve"} {
		var line map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &line); err != nil {
			t.Fatal(err)
		}
		if line["type"] != wantType {
			t.Errorf("line %d type %v, want %s", i, line["type"], wantType)
		}
	}
}

func TestLiveWindowsAndSnapshot(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, Model: testModel()})
	if c.LiveWindows() != nil {
		t.Error("live windows before any seal")
	}
	c.SampleUtil("cpu", 0.5, 0.5)
	c.SampleUtil("cpu", 1.5, 0.5) // seals window 0
	if got := len(c.LiveWindows()); got != 1 {
		t.Errorf("live windows = %d, want 1", got)
	}
	b, err := LiveSnapshot([]*Collector{c})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Parts  []struct {
			Part    int              `json:"part"`
			Sealed  int              `json:"sealed"`
			Windows []map[string]any `json:"windows"`
		} `json:"parts"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaLive || len(doc.Parts) != 1 || doc.Parts[0].Sealed != 1 {
		t.Errorf("snapshot %s", b)
	}
	// Zero parts still yields a valid document.
	if b, err = LiveSnapshot(nil); err != nil || !bytes.Contains(b, []byte(SchemaLive)) {
		t.Errorf("empty snapshot %s, %v", b, err)
	}
}

func TestTeeRouting(t *testing.T) {
	sink := obs.NewSink()
	c := mustNew(t, Config{WidthSec: 1, Model: testModel()})
	rec := NewTee(sink, c)
	if !rec.Enabled() {
		t.Fatal("tee over a sink should be enabled")
	}
	rec.Gauge("util.cpu.e0.b1", 0.5, 0.7)
	rec.Gauge("util.san", 0.5, 0.2)
	rec.Gauge("latency.p95", 0.5, 0.9) // not a util gauge: ignored
	rec.Count("requests", 1)
	rec.Observe("latency_sec", 0.01)
	rec.Event("request", 0.6, obs.F("latency_sec", 0.01), obs.FB("qos_violation", true))
	rec.Event("probe", 0.6) // not a request event: ignored
	c.Seal(1)

	ws := c.Windows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows", len(ws))
	}
	if math.Abs(ws[0].Util["cpu"]-0.7) > 1e-12 || math.Abs(ws[0].Util["san"]-0.2) > 1e-12 {
		t.Errorf("routed util %v", ws[0].Util)
	}
	if len(ws[0].Util) != 2 {
		t.Errorf("non-util gauge leaked into classes: %v", ws[0].Util)
	}
	if ws[0].Requests != 1 || ws[0].Violations != 1 {
		t.Errorf("request routing: %+v", ws[0])
	}
	// The inner recorder saw the identical stream.
	if sink.CounterValue("requests") != 1 {
		t.Error("tee did not forward counters")
	}
	// A nil collector returns the inner recorder unchanged.
	if got := NewTee(sink, nil); got != obs.Recorder(sink) {
		t.Errorf("NewTee(nil) = %T", got)
	}
}

func TestEmitTotals(t *testing.T) {
	sink := obs.NewSink()
	c := mustNew(t, Config{WidthSec: 1, Model: testModel()})
	c.SampleUtil("cpu", 0.5, 0.5)
	c.ObserveRequest(0.5, false)
	c.Seal(1)
	c.EmitTotals(sink)
	if sink.CounterValue("energy.windows") != 1 {
		t.Error("energy.windows counter missing")
	}
	found := false
	for _, e := range sink.Events() {
		if e.Stream == "energy_total" {
			found = true
		}
	}
	if !found {
		t.Error("energy_total event missing")
	}
	// A nil recorder is a no-op, not a panic.
	c.EmitTotals(nil)
}

func TestTCORollup(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, Model: Model{Active: power.Breakdown{CPUW: 100}, Idle: power.IdleFractions{CPU: 0.5}}})
	c.SampleUtil("cpu", 0.5, 0) // 50 W vs static 100 W
	c.Seal(1)
	pc := cost.DefaultPCParams()
	r, err := c.TCO(pc, cooling.EnclosureFor(cooling.Conventional))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MeanW-50) > 1e-12 || math.Abs(r.StaticW-100) > 1e-12 {
		t.Errorf("rollup watts %+v", r)
	}
	if math.Abs(r.RoomFactor-1) > 1e-12 {
		t.Errorf("conventional room factor %g", r.RoomFactor)
	}
	if want := pc.BurdenedUSD(50); math.Abs(r.MeasuredUSD-want) > 1e-9 {
		t.Errorf("measured $%g, want $%g", r.MeasuredUSD, want)
	}
	if math.Abs(r.SavingsFrac-0.5) > 1e-12 {
		t.Errorf("savings frac %g, want 0.5 (half the watts, linear pricing)", r.SavingsFrac)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
	// A better enclosure scales only the cooling terms, so measured
	// dollars must drop but stay above the IT electricity floor.
	r2, err := c.TCO(pc, cooling.EnclosureFor(cooling.AggregatedMicroblade))
	if err != nil {
		t.Fatal(err)
	}
	if r2.MeasuredUSD >= r.MeasuredUSD || r2.BurdenMultiplier >= r.BurdenMultiplier {
		t.Errorf("aggregated enclosure did not cut burdened cost: %+v vs %+v", r2, r)
	}
	// Invalid params surface as errors.
	if _, err := c.TCO(cost.PCParams{Years: -1}, cooling.EnclosureFor(cooling.Conventional)); err == nil {
		t.Error("invalid PC params accepted")
	}
}
