package energy

import (
	"fmt"

	"warehousesim/internal/cooling"
	"warehousesim/internal/cost"
)

// Rollup joins the measured time-resolved energy with the burdened
// power-and-cooling cost model: what the run's mean draw costs over the
// depreciation cycle versus what the static activity-factor model
// charges, under the packaging design's room-cooling factor. This is
// the "dynamic TCO" number the ROADMAP's energy-proportionality
// direction asks for — the static model charges every design its flat
// activity-factor watts, so designs that idle well are indistinguishable
// from designs that don't until the measured curve is priced.
type Rollup struct {
	// MeanW and StaticW are the measured and static per-server draws;
	// Joules integrates the measured draw over the run.
	MeanW   float64 `json:"mean_watts"`
	StaticW float64 `json:"static_watts"`
	Joules  float64 `json:"joules"`
	SpanSec float64 `json:"span_sec"`
	// BurdenMultiplier is the effective burdened-dollars-per-IT-dollar
	// factor after the enclosure's room-cooling credit is applied to the
	// cooling terms (L1, K2).
	BurdenMultiplier float64 `json:"burden_multiplier"`
	RoomFactor       float64 `json:"room_cooling_factor"`
	// MeasuredUSD and StaticUSD are burdened P&C dollars per server over
	// the depreciation cycle, extrapolating each draw steady-state.
	MeasuredUSD float64 `json:"measured_usd"`
	StaticUSD   float64 `json:"static_usd"`
	// SavingsUSD is StaticUSD - MeasuredUSD (positive when the measured
	// draw undercuts the static provisioning estimate).
	SavingsUSD  float64 `json:"savings_usd"`
	SavingsFrac float64 `json:"savings_frac"`
}

// TCO prices the collector's measured energy under the burdened
// power-and-cooling model, with the packaging enclosure's room-cooling
// factor scaling the cooling terms (the same second-order credit
// core.Evaluator.EnclosureCoolingCredit applies; pass
// cooling.EnclosureFor(cooling.Conventional) for the paper's fixed
// factors). Call after Seal/MergeFrom.
func (c *Collector) TCO(pc cost.PCParams, enc cooling.Enclosure) (Rollup, error) {
	if err := pc.Validate(); err != nil {
		return Rollup{}, err
	}
	f := enc.RoomCoolingFactor()
	pc.L1 *= f
	pc.K2 *= f
	t := c.Totals()
	r := Rollup{
		MeanW: t.MeanW, StaticW: t.StaticW,
		Joules: t.Joules, SpanSec: t.SpanSec,
		BurdenMultiplier: pc.BurdenMultiplier(),
		RoomFactor:       f,
		MeasuredUSD:      pc.BurdenedUSD(t.MeanW),
		StaticUSD:        pc.BurdenedUSD(t.StaticW),
	}
	r.SavingsUSD = r.StaticUSD - r.MeasuredUSD
	if r.StaticUSD > 0 {
		r.SavingsFrac = r.SavingsUSD / r.StaticUSD
	}
	return r, nil
}

// String renders the rollup as a one-line summary.
func (r Rollup) String() string {
	return fmt.Sprintf("mean %.1f W vs static %.1f W; burdened P&C $%.0f vs $%.0f (%.0f%% saved)",
		r.MeanW, r.StaticW, r.MeasuredUSD, r.StaticUSD, r.SavingsFrac*100)
}
