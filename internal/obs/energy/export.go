package energy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"warehousesim/internal/power"
)

// SchemaEnergy identifies the -energy-out JSONL export.
const SchemaEnergy = "warehousesim-energy/v1"

// SchemaLive identifies the /obs/energy live snapshot document.
const SchemaLive = "warehousesim-energy-live/v1"

// idleMap flattens the typed idle split into a map (sorted keys in the
// JSON encoding), matching the WattsByClass class names.
func idleMap(f power.IdleFractions) map[string]float64 {
	return map[string]float64{
		"cpu": f.CPU, "memory": f.Memory, "disk": f.Disk, "board": f.Board,
		"fan": f.Fan, "flash": f.Flash, "switch": f.Switch,
	}
}

// energyManifest is the export's first line: the window configuration,
// the power model, the run totals, and the proportionality fit. It
// deliberately carries no shard or parallelism count, so the whole
// file — not just a body — is byte-identical across -shards and -par
// values at the same seed.
type energyManifest struct {
	Type          string             `json:"type"`
	Schema        string             `json:"schema"`
	WidthSec      float64            `json:"width_sec"`
	StaticWatts   float64            `json:"static_watts"`
	IdleFractions map[string]float64 `json:"idle_fractions"`
	Totals        Totals             `json:"totals"`
	Prop          Proportionality    `json:"proportionality"`
}

type windowLine struct {
	Type string `json:"type"`
	Window
}

type curveLine struct {
	Type string `json:"type"`
	CurvePoint
}

// WriteJSONL writes the sealed windows and the proportionality curve
// as JSONL: one energy_manifest line, one window line per sealed
// window in index order, one curve line per proportionality point.
// Maps marshal with sorted keys and the window fold order is fixed, so
// the output is deterministic.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(energyManifest{
		Type: "energy_manifest", Schema: SchemaEnergy,
		WidthSec:      c.cfg.WidthSec,
		StaticWatts:   c.cfg.Model.Active.TotalW(),
		IdleFractions: idleMap(c.cfg.Model.Idle),
		Totals:        c.Totals(),
		Prop:          c.Proportionality(),
	}); err != nil {
		return err
	}
	for _, s := range c.Windows() {
		if err := enc.Encode(windowLine{Type: "window", Window: s}); err != nil {
			return err
		}
	}
	for _, p := range c.Curve() {
		if err := enc.Encode(curveLine{Type: "curve", CurvePoint: p}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the JSONL export to path.
func (c *Collector) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("energy: %w", err)
	}
	if err := c.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("energy: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("energy: close %s: %w", path, err)
	}
	return nil
}

// liveDoc is the /obs/energy snapshot: per-part sealed-window
// summaries as of the last seal. Live views are per part — the merged
// truth needs the post-run fold — so a watcher follows each
// partition's recent tail and -energy-out carries the merged record.
type liveDoc struct {
	Schema      string     `json:"schema"`
	WidthSec    float64    `json:"width_sec"`
	StaticWatts float64    `json:"static_watts"`
	Parts       []livePart `json:"parts"`
}

type livePart struct {
	Part    int      `json:"part"`
	Sealed  int      `json:"sealed"`
	Windows []Window `json:"windows"`
}

// liveTail bounds how many recent windows each part contributes.
const liveTail = 32

// LiveSnapshot marshals the parts' recent sealed windows into an
// immutable JSON document for the introspection server. Safe to call
// concurrently with the collectors' owners (it only touches
// LiveWindows). Returns a valid document for zero parts.
func LiveSnapshot(parts []*Collector) ([]byte, error) {
	doc := liveDoc{Schema: SchemaLive, Parts: []livePart{}}
	for i, c := range parts {
		if i == 0 {
			cfg := c.Config()
			doc.WidthSec = cfg.WidthSec
			doc.StaticWatts = cfg.Model.Active.TotalW()
		}
		sums := c.LiveWindows()
		sealed := len(sums)
		if sealed > liveTail {
			sums = sums[sealed-liveTail:]
		}
		if sums == nil {
			sums = []Window{}
		}
		doc.Parts = append(doc.Parts, livePart{Part: i, Sealed: sealed, Windows: sums})
	}
	return json.Marshal(doc)
}
