package energy

import (
	"strings"

	"warehousesim/internal/obs"
)

// Tee is an obs.Recorder that forwards everything to an inner recorder
// unchanged and additionally routes the streams the energy model
// consumes into a Collector:
//
//   - "request" events feed the per-window request and QoS-violation
//     counts (field "qos_violation", the cluster models' per-request
//     row);
//   - "util.<resource>" gauges feed per-resource-class utilization
//     (class = the resource name's first dot-separated component, so
//     "util.cpu.e3.b1" lands in class "cpu") — the samples the window's
//     watts derive from.
//
// Like window.Tee, wrapping the recorder keeps the energy plane a pure
// stream consumer: recording call sites do not change, the inner
// recorder sees the exact same sequence, and the deterministic obs
// export is untouched. The two tees stack: the energy tee typically
// wraps the windowed-SLO tee, which wraps the run sink.
type Tee struct {
	inner obs.Recorder
	c     *Collector
}

// NewTee wraps inner; a nil collector returns inner unchanged.
func NewTee(inner obs.Recorder, c *Collector) obs.Recorder {
	if c == nil {
		return inner
	}
	return &Tee{inner: inner, c: c}
}

// Enabled implements obs.Recorder.
func (t *Tee) Enabled() bool { return t.inner.Enabled() }

// Count implements obs.Recorder.
func (t *Tee) Count(name string, delta int64) { t.inner.Count(name, delta) }

// Gauge implements obs.Recorder.
func (t *Tee) Gauge(name string, at, v float64) {
	t.inner.Gauge(name, at, v)
	if rest, ok := strings.CutPrefix(name, "util."); ok {
		class := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			class = rest[:i]
		}
		t.c.SampleUtil(class, at, v)
	}
}

// Observe implements obs.Recorder.
func (t *Tee) Observe(name string, v float64) { t.inner.Observe(name, v) }

// Event implements obs.Recorder.
func (t *Tee) Event(stream string, at float64, fields ...obs.Field) {
	t.inner.Event(stream, at, fields...)
	if stream != "request" {
		return
	}
	violation := false
	for _, f := range fields {
		if f.Key == "qos_violation" {
			violation = f.Num != 0
		}
	}
	t.c.ObserveRequest(at, violation)
}
